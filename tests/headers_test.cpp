#include "net/headers.hpp"

#include <gtest/gtest.h>

#include "net/checksum.hpp"

namespace repro::net {
namespace {

TEST(Ipv4Header, SerializeParseRoundTrip) {
  Ipv4Header h;
  h.dscp = 46;
  h.ecn = 1;
  h.total_length = 1500;
  h.identification = 0xBEEF;
  h.flag_dont_fragment = true;
  h.flag_more_fragments = true;
  h.fragment_offset = 0x1ABC & 0x1FFF;
  h.ttl = 57;
  h.protocol = IpProto::kUdp;
  h.src_addr = ipv4_from_string("192.168.1.2");
  h.dst_addr = ipv4_from_string("13.32.4.5");

  std::vector<std::uint8_t> buf;
  h.serialize(buf);
  ASSERT_EQ(buf.size(), 20u);

  ByteReader r{std::span<const std::uint8_t>(buf)};
  const Ipv4Header parsed = Ipv4Header::parse(r);
  EXPECT_EQ(parsed.version, 4);
  EXPECT_EQ(parsed.dscp, 46);
  EXPECT_EQ(parsed.ecn, 1);
  EXPECT_EQ(parsed.total_length, 1500);
  EXPECT_EQ(parsed.identification, 0xBEEF);
  EXPECT_TRUE(parsed.flag_dont_fragment);
  EXPECT_TRUE(parsed.flag_more_fragments);
  EXPECT_EQ(parsed.fragment_offset, 0x1ABC & 0x1FFF);
  EXPECT_EQ(parsed.ttl, 57);
  EXPECT_EQ(parsed.protocol, IpProto::kUdp);
  EXPECT_EQ(parsed.src_addr, h.src_addr);
  EXPECT_EQ(parsed.dst_addr, h.dst_addr);
}

TEST(Ipv4Header, ChecksumValidOnWire) {
  Ipv4Header h;
  h.total_length = 40;
  h.src_addr = 0x01020304;
  h.dst_addr = 0x05060708;
  std::vector<std::uint8_t> buf;
  h.serialize(buf);
  EXPECT_EQ(internet_checksum(buf), 0x0000);
}

TEST(Ipv4Header, OptionsExtendHeaderLength) {
  Ipv4Header h;
  h.options = {1, 1, 1, 1, 7, 3, 0, 0};  // 8 bytes
  std::vector<std::uint8_t> buf;
  h.serialize(buf);
  ASSERT_EQ(buf.size(), 28u);
  EXPECT_EQ(buf[0] & 0x0F, 7);  // ihl = 28/4
  ByteReader r{std::span<const std::uint8_t>(buf)};
  const Ipv4Header parsed = Ipv4Header::parse(r);
  EXPECT_EQ(parsed.options, h.options);
}

TEST(Ipv4Header, RejectsUnpaddedOptions) {
  Ipv4Header h;
  h.options = {1, 2, 3};
  std::vector<std::uint8_t> buf;
  EXPECT_THROW(h.serialize(buf), std::invalid_argument);
}

TEST(Ipv4Header, RejectsOversizedOptions) {
  Ipv4Header h;
  h.options.assign(44, 0);
  std::vector<std::uint8_t> buf;
  EXPECT_THROW(h.serialize(buf), std::invalid_argument);
}

TEST(Ipv4Header, ParseRejectsShortIhl) {
  std::vector<std::uint8_t> buf(20, 0);
  buf[0] = 0x42;  // version 4, ihl 2
  ByteReader r{std::span<const std::uint8_t>(buf)};
  EXPECT_THROW(Ipv4Header::parse(r), std::invalid_argument);
}

struct TcpFlagCase {
  const char* name;
  bool syn, ack, fin, rst, psh, urg, ece, cwr;
};

class TcpFlagsTest : public ::testing::TestWithParam<TcpFlagCase> {};

TEST_P(TcpFlagsTest, FlagsRoundTrip) {
  const auto& param = GetParam();
  TcpHeader h;
  h.src_port = 443;
  h.dst_port = 51514;
  h.seq = 0x11223344;
  h.ack = 0x55667788;
  h.syn = param.syn;
  h.ack_flag = param.ack;
  h.fin = param.fin;
  h.rst = param.rst;
  h.psh = param.psh;
  h.urg = param.urg;
  h.ece = param.ece;
  h.cwr = param.cwr;
  std::vector<std::uint8_t> buf;
  h.serialize(buf, {});
  ByteReader r{std::span<const std::uint8_t>(buf)};
  const TcpHeader parsed = TcpHeader::parse(r);
  EXPECT_EQ(parsed.syn, param.syn);
  EXPECT_EQ(parsed.ack_flag, param.ack);
  EXPECT_EQ(parsed.fin, param.fin);
  EXPECT_EQ(parsed.rst, param.rst);
  EXPECT_EQ(parsed.psh, param.psh);
  EXPECT_EQ(parsed.urg, param.urg);
  EXPECT_EQ(parsed.ece, param.ece);
  EXPECT_EQ(parsed.cwr, param.cwr);
  EXPECT_EQ(parsed.seq, h.seq);
  EXPECT_EQ(parsed.ack, h.ack);
}

INSTANTIATE_TEST_SUITE_P(
    AllFlagCombos, TcpFlagsTest,
    ::testing::Values(
        TcpFlagCase{"syn", true, false, false, false, false, false, false, false},
        TcpFlagCase{"synack", true, true, false, false, false, false, false, false},
        TcpFlagCase{"finack", false, true, true, false, false, false, false, false},
        TcpFlagCase{"rst", false, false, false, true, false, false, false, false},
        TcpFlagCase{"pshack", false, true, false, false, true, false, false, false},
        TcpFlagCase{"urg", false, false, false, false, false, true, false, false},
        TcpFlagCase{"ecn", false, true, false, false, false, false, true, true},
        TcpFlagCase{"none", false, false, false, false, false, false, false, false}),
    [](const ::testing::TestParamInfo<TcpFlagCase>& param_info) {
      return param_info.param.name;
    });

TEST(TcpHeader, PseudoHeaderChecksumVerifies) {
  TcpHeader h;
  h.src_port = 1234;
  h.dst_port = 80;
  h.seq = 42;
  h.ack_flag = true;
  h.ack = 77;
  const std::vector<std::uint8_t> payload = {'h', 'i', '!'};
  const std::uint32_t src = 0x0A000001, dst = 0x0A000002;
  std::vector<std::uint8_t> buf;
  h.serialize(buf, payload, src, dst);

  // Recompute over pseudo-header + segment: must cancel to zero.
  ChecksumAccumulator acc;
  acc.add_u32(src);
  acc.add_u32(dst);
  acc.add_u16(static_cast<std::uint16_t>(IpProto::kTcp));
  acc.add_u16(static_cast<std::uint16_t>(buf.size() + payload.size()));
  acc.add(buf);
  acc.add(payload);
  EXPECT_EQ(acc.finish(), 0x0000);
}

TEST(TcpHeader, OptionsRoundTripAndDataOffset) {
  TcpHeader h;
  h.options = {0x02, 0x04, 0x05, 0xb4, 0x01, 0x03, 0x03, 0x07};  // MSS + WS
  std::vector<std::uint8_t> buf;
  h.serialize(buf, {});
  ASSERT_EQ(buf.size(), 28u);
  EXPECT_EQ(buf[12] >> 4, 7);  // data offset = 28/4
  ByteReader r{std::span<const std::uint8_t>(buf)};
  EXPECT_EQ(TcpHeader::parse(r).options, h.options);
}

TEST(UdpHeader, SerializeSetsLengthAndChecksum) {
  UdpHeader h;
  h.src_port = 53;
  h.dst_port = 33000;
  const std::vector<std::uint8_t> payload(12, 0xAB);
  std::vector<std::uint8_t> buf;
  h.serialize(buf, payload, 0x01010101u, 0x02020202u);
  ASSERT_EQ(buf.size(), 8u);
  EXPECT_EQ((buf[4] << 8) | buf[5], 20);  // 8 + 12
  // Checksum must verify over pseudo header.
  ChecksumAccumulator acc;
  acc.add_u32(0x01010101u);
  acc.add_u32(0x02020202u);
  acc.add_u16(static_cast<std::uint16_t>(IpProto::kUdp));
  acc.add_u16(20);
  acc.add(buf);
  acc.add(payload);
  EXPECT_EQ(acc.finish(), 0x0000);
}

TEST(UdpHeader, ParseRoundTrip) {
  UdpHeader h;
  h.src_port = 5004;
  h.dst_port = 5005;
  std::vector<std::uint8_t> buf;
  h.serialize(buf, std::vector<std::uint8_t>(4, 0));
  ByteReader r{std::span<const std::uint8_t>(buf)};
  const UdpHeader parsed = UdpHeader::parse(r);
  EXPECT_EQ(parsed.src_port, 5004);
  EXPECT_EQ(parsed.dst_port, 5005);
  EXPECT_EQ(parsed.length, 12);
}

TEST(IcmpHeader, ChecksumCoversPayload) {
  IcmpHeader h;
  h.type = 8;
  h.code = 0;
  h.rest_of_header = 0x00010002;
  const std::vector<std::uint8_t> payload(56, 0x42);
  std::vector<std::uint8_t> buf;
  h.serialize(buf, payload);
  ChecksumAccumulator acc;
  acc.add(buf);
  acc.add(payload);
  EXPECT_EQ(acc.finish(), 0x0000);
}

TEST(IcmpHeader, ParseRoundTrip) {
  IcmpHeader h;
  h.type = 0;
  h.code = 0;
  h.rest_of_header = 0xAABB0007;
  std::vector<std::uint8_t> buf;
  h.serialize(buf, {});
  ByteReader r{std::span<const std::uint8_t>(buf)};
  const IcmpHeader parsed = IcmpHeader::parse(r);
  EXPECT_EQ(parsed.type, 0);
  EXPECT_EQ(parsed.rest_of_header, 0xAABB0007u);
}

TEST(Ipv4Strings, FormatAndParse) {
  EXPECT_EQ(ipv4_to_string(0xC0A80101), "192.168.1.1");
  EXPECT_EQ(ipv4_from_string("192.168.1.1"), 0xC0A80101u);
  EXPECT_EQ(ipv4_from_string("0.0.0.0"), 0u);
  EXPECT_EQ(ipv4_from_string("255.255.255.255"), 0xFFFFFFFFu);
}

TEST(Ipv4Strings, ParseRejectsMalformed) {
  EXPECT_THROW(ipv4_from_string("1.2.3"), std::invalid_argument);
  EXPECT_THROW(ipv4_from_string("1.2.3.4.5"), std::invalid_argument);
  EXPECT_THROW(ipv4_from_string("256.0.0.1"), std::invalid_argument);
  EXPECT_THROW(ipv4_from_string("a.b.c.d"), std::invalid_argument);
}

TEST(ProtoName, Names) {
  EXPECT_EQ(proto_name(IpProto::kTcp), "TCP");
  EXPECT_EQ(proto_name(IpProto::kUdp), "UDP");
  EXPECT_EQ(proto_name(IpProto::kIcmp), "ICMP");
}

}  // namespace
}  // namespace repro::net
