// End-to-end pipeline tests on a deliberately tiny configuration —
// these verify wiring (shapes, labels, constraints, prompts), not
// generation quality; the benches measure quality.
#include "diffusion/pipeline.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "flowgen/generator.hpp"

namespace repro::diffusion {
namespace {

PipelineConfig tiny_config() {
  PipelineConfig cfg;
  cfg.packets = 8;
  cfg.autoencoder.hidden_dim = 48;
  cfg.autoencoder.latent_dim = 8;
  cfg.unet.base_channels = 8;
  cfg.unet.temb_dim = 16;
  cfg.unet.groups = 4;
  cfg.timesteps = 20;
  cfg.ae_epochs = 15;
  cfg.diffusion_epochs = 3;
  cfg.diffusion_batch = 4;
  cfg.control_epochs = 2;
  cfg.seed = 5;
  return cfg;
}

flowgen::Dataset tiny_dataset(std::size_t per_class) {
  Rng rng(77);
  // Two-class subset (netflix, teams) keeps runtime small while covering
  // a TCP-dominant and a UDP-dominant class.
  flowgen::Dataset ds;
  for (std::size_t i = 0; i < per_class; ++i) {
    net::Flow a = flowgen::generate_flow(flowgen::App::kNetflix, 8, rng);
    a.label = 0;
    ds.flows.push_back(std::move(a));
    net::Flow b = flowgen::generate_flow(flowgen::App::kTeams, 8, rng);
    b.label = 1;
    ds.flows.push_back(std::move(b));
  }
  return ds;
}

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pipeline_ = new TraceDiffusion(tiny_config(), {"netflix", "teams"});
    stats_ = pipeline_->fit(tiny_dataset(6));
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }
  static TraceDiffusion* pipeline_;
  static FitStats stats_;
};

TraceDiffusion* PipelineTest::pipeline_ = nullptr;
FitStats PipelineTest::stats_;

TEST_F(PipelineTest, FitReportsFiniteLosses) {
  EXPECT_GT(stats_.flows_used, 0u);
  EXPECT_GT(stats_.unet_parameters, 1000u);
  EXPECT_TRUE(std::isfinite(stats_.ae_final_loss));
  EXPECT_TRUE(std::isfinite(stats_.diffusion_final_loss));
  EXPECT_TRUE(std::isfinite(stats_.control_final_loss));
  EXPECT_LT(stats_.ae_final_loss, 1.0f);
}

TEST_F(PipelineTest, GenerateProducesLabeledFlows) {
  GenerateOptions opts;
  opts.count = 3;
  opts.ddim_steps = 5;
  const auto flows = pipeline_->generate(1, opts);
  ASSERT_EQ(flows.size(), 3u);
  for (const auto& flow : flows) {
    EXPECT_EQ(flow.label, 1);
    EXPECT_FALSE(flow.packets.empty());
    EXPECT_LE(flow.packets.size(), 8u);
  }
}

TEST_F(PipelineTest, ProjectionEnforcesClassProtocol) {
  GenerateOptions opts;
  opts.count = 2;
  opts.ddim_steps = 5;
  opts.constraint = ConstraintMode::kProjected;
  const auto flows = pipeline_->generate(0, opts);  // netflix => TCP
  const auto& tmpl = pipeline_->class_template(0);
  for (const auto& flow : flows) {
    for (std::size_t i = 0; i < flow.packets.size(); ++i) {
      EXPECT_EQ(flow.packets[i].ip.protocol, tmpl.per_packet[i]);
    }
  }
}

TEST_F(PipelineTest, GeneratedPacketsAreReplayable) {
  GenerateOptions opts;
  opts.count = 1;
  opts.ddim_steps = 5;
  const auto flows = pipeline_->generate(0, opts);
  for (const auto& pkt : flows[0].packets) {
    const auto wire = pkt.serialize();
    const net::Packet parsed = net::Packet::parse(wire);
    EXPECT_TRUE(parsed.consistent());
  }
}

TEST_F(PipelineTest, PromptInterface) {
  GenerateOptions opts;
  opts.count = 1;
  opts.ddim_steps = 4;
  const auto by_name = pipeline_->generate_from_prompt("teams", opts);
  EXPECT_EQ(by_name[0].label, 1);
  const auto by_type = pipeline_->generate_from_prompt("Type-0", opts);
  EXPECT_EQ(by_type[0].label, 0);
  EXPECT_THROW(pipeline_->generate_from_prompt("hulu", opts),
               std::invalid_argument);
  EXPECT_THROW(pipeline_->generate_from_prompt("", opts),
               std::invalid_argument);
}

TEST_F(PipelineTest, GenerateDatasetRespectsCounts) {
  GenerateOptions opts;
  opts.ddim_steps = 4;
  const auto ds = pipeline_->generate_dataset({2, 3}, opts);
  EXPECT_EQ(ds.size(), 5u);
  std::size_t class0 = 0, class1 = 0;
  for (const auto& flow : ds.flows) {
    if (flow.label == 0) ++class0;
    if (flow.label == 1) ++class1;
  }
  EXPECT_EQ(class0, 2u);
  EXPECT_EQ(class1, 3u);
}

TEST_F(PipelineTest, GenerateMatrixIsTernary) {
  GenerateOptions opts;
  opts.ddim_steps = 4;
  ProtocolTemplate tmpl;
  const nprint::Matrix matrix = pipeline_->generate_matrix(0, opts, &tmpl);
  EXPECT_EQ(matrix.rows(), 8u);
  EXPECT_DOUBLE_EQ(nprint::ternary_fraction(matrix), 1.0);
  EXPECT_EQ(tmpl.per_packet.size(), 8u);
}

TEST_F(PipelineTest, PureNoiseStartAlsoWorks) {
  GenerateOptions opts;
  opts.count = 1;
  opts.ddim_steps = 4;
  opts.template_strength = 1.0f;  // disable one-shot image guidance
  const auto flows = pipeline_->generate(0, opts);
  EXPECT_EQ(flows.size(), 1u);
}

TEST_F(PipelineTest, ClassesGenerateDistinctMatrices) {
  // Conditioning must produce class-dependent output: the netflix (TCP)
  // and teams (UDP) matrices differ in many bits. (Sample-to-sample
  // diversity within a class is a scale-dependent property checked by
  // the bench harness, not at this unit scale, where a tiny denoiser
  // can legitimately collapse to its class mode.)
  GenerateOptions opts;
  opts.ddim_steps = 6;
  opts.count = 1;
  const nprint::Matrix a = pipeline_->generate_matrix(0, opts);
  const nprint::Matrix b = pipeline_->generate_matrix(1, opts);
  std::size_t diff = 0;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    if (a.data()[i] != b.data()[i]) ++diff;
  }
  EXPECT_GT(diff, 100u);
}

TEST_F(PipelineTest, DdpmSamplerAlsoWorks) {
  GenerateOptions opts;
  opts.count = 1;
  opts.sampler = SamplerKind::kDdpm;
  const auto flows = pipeline_->generate(0, opts);
  EXPECT_EQ(flows.size(), 1u);
}

TEST_F(PipelineTest, GuidanceScaleOneSkipsUnconditionalPass) {
  GenerateOptions opts;
  opts.count = 1;
  opts.ddim_steps = 3;
  opts.guidance_scale = 1.0f;
  const auto flows = pipeline_->generate(1, opts);
  EXPECT_EQ(flows.size(), 1u);
}

TEST_F(PipelineTest, BadClassIdRejected) {
  GenerateOptions opts;
  EXPECT_THROW(pipeline_->generate(7, opts), std::invalid_argument);
  EXPECT_THROW(pipeline_->generate(-1, opts), std::invalid_argument);
  EXPECT_THROW(pipeline_->class_template(9), std::out_of_range);
}

TEST(Pipeline, EpsilonParameterizationAlsoWorks) {
  PipelineConfig cfg = tiny_config();
  cfg.parameterization = PipelineConfig::Parameterization::kEpsilon;
  cfg.train_control = false;
  TraceDiffusion pipeline(cfg, {"netflix", "teams"});
  pipeline.fit(tiny_dataset(3));
  GenerateOptions opts;
  opts.count = 2;
  opts.ddim_steps = 5;
  const auto flows = pipeline.generate(0, opts);
  EXPECT_EQ(flows.size(), 2u);
  for (const auto& flow : flows) {
    EXPECT_EQ(flow.label, 0);
  }
}

TEST_F(PipelineTest, DeblurRestoresMissingPackets) {
  // Drop the middle packets of a real flow; deblurring must return the
  // observed packets verbatim and synthesize replacements for the rest.
  Rng rng(99);
  net::Flow flow = flowgen::generate_flow(flowgen::App::kTeams, 8, rng);
  flow.label = 1;
  std::vector<bool> known(8, false);
  known[0] = known[1] = known[7] = true;
  net::Flow corrupted = flow;
  for (std::size_t i = 0; i < corrupted.packets.size(); ++i) {
    if (!known[i]) {
      corrupted.packets[i] = net::Packet{};  // blanked slot
      corrupted.packets[i].udp = net::UdpHeader{};
      corrupted.packets[i].ip.protocol = net::IpProto::kUdp;
    }
  }
  GenerateOptions opts;
  opts.ddim_steps = 6;
  const net::Flow restored = pipeline_->deblur(corrupted, known, 1, opts);
  ASSERT_GE(restored.packets.size(), 3u);
  // Observed packets are byte-identical (modulo timestamps).
  auto strip_time = [](net::Packet pkt) {
    pkt.timestamp = 0.0;
    return pkt.serialize();
  };
  EXPECT_EQ(strip_time(restored.packets[0]), strip_time(flow.packets[0]));
  EXPECT_EQ(strip_time(restored.packets[1]), strip_time(flow.packets[1]));
  // Synthesized packets are structurally valid and replayable.
  for (const auto& pkt : restored.packets) {
    EXPECT_TRUE(pkt.consistent());
    EXPECT_NO_THROW(net::Packet::parse(pkt.serialize()));
  }
  // Timestamps stay monotone after reassembly.
  for (std::size_t i = 1; i < restored.packets.size(); ++i) {
    EXPECT_GE(restored.packets[i].timestamp,
              restored.packets[i - 1].timestamp);
  }
}

TEST(Pipeline, DeblurBeforeFitThrows) {
  TraceDiffusion fresh(tiny_config(), {"a", "b"});
  net::Flow flow;
  EXPECT_THROW(fresh.deblur(flow, {true}, 0, GenerateOptions{}),
               std::logic_error);
}

TEST_F(PipelineTest, GeneratedTimestampsFollowLearnedTiming) {
  GenerateOptions opts;
  opts.count = 3;
  opts.ddim_steps = 5;
  const auto flows = pipeline_->generate(1, opts);
  bool any_gap_variation = false;
  double prev_gap = -1.0;
  for (const auto& flow : flows) {
    for (std::size_t i = 1; i < flow.packets.size(); ++i) {
      const double gap =
          flow.packets[i].timestamp - flow.packets[i - 1].timestamp;
      EXPECT_GT(gap, 0.0);
      EXPECT_LE(gap, 10.0);
      if (prev_gap >= 0.0 && std::abs(gap - prev_gap) > 1e-9) {
        any_gap_variation = true;
      }
      prev_gap = gap;
    }
  }
  EXPECT_TRUE(any_gap_variation);  // not the degenerate fixed-1ms fallback
}

TEST_F(PipelineTest, ClassTimingFittedFromTrainingData) {
  const auto& timing = pipeline_->class_timing(0);
  // Fitted (not the default-constructed fallback used for unknown ids).
  const auto& fallback = pipeline_->class_timing(999);
  EXPECT_TRUE(timing.log_mu != fallback.log_mu ||
              timing.log_sigma != fallback.log_sigma);
}

void expect_flows_identical(const net::Flow& a, const net::Flow& b) {
  EXPECT_EQ(a.label, b.label);
  ASSERT_EQ(a.packets.size(), b.packets.size());
  for (std::size_t i = 0; i < a.packets.size(); ++i) {
    EXPECT_EQ(a.packets[i].serialize(), b.packets[i].serialize());
    EXPECT_EQ(a.packets[i].timestamp, b.packets[i].timestamp);  // bit-exact
  }
}

TEST_F(PipelineTest, SeededGenerationIsReproducible) {
  GenerateOptions opts;
  opts.count = 2;
  opts.ddim_steps = 4;
  const auto first = pipeline_->generate_seeded(0, opts, 42);
  // Interleave an unseeded call: generate_seeded must not read the
  // pipeline's internal RNG, so this cannot perturb the replay.
  (void)pipeline_->generate(1, opts);
  const auto again = pipeline_->generate_seeded(0, opts, 42);
  ASSERT_EQ(first.size(), 2u);
  ASSERT_EQ(again.size(), 2u);
  for (std::size_t i = 0; i < first.size(); ++i) {
    expect_flows_identical(first[i], again[i]);
  }
  // A different seed gives different flows (overwhelmingly likely).
  const auto other = pipeline_->generate_seeded(0, opts, 43);
  bool any_diff = false;
  for (std::size_t i = 0; i < other[0].packets.size() &&
                          i < first[0].packets.size();
       ++i) {
    if (other[0].packets[i].serialize() != first[0].packets[i].serialize() ||
        other[0].packets[i].timestamp != first[0].packets[i].timestamp) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(PipelineTest, SeededGenerationIsBatchInvariant) {
  // The serving determinism contract: a flow's bits depend only on its
  // own flow seed, never on which other flows shared the batched model
  // call. Generate three seeds in one [3] call and compare each against
  // its own [1] call.
  GenerateOptions opts;
  opts.ddim_steps = 4;
  const std::vector<std::uint64_t> seeds{fork_flow_seed(7, 0),
                                         fork_flow_seed(1234, 5),
                                         fork_flow_seed(7, 1)};
  const auto batched = pipeline_->generate_with_flow_seeds(0, opts, seeds);
  ASSERT_EQ(batched.size(), 3u);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const auto single =
        pipeline_->generate_with_flow_seeds(0, opts, {seeds[i]});
    ASSERT_EQ(single.size(), 1u);
    expect_flows_identical(batched[i], single[0]);
  }
  // generate_seeded is exactly the fork_flow_seed expansion.
  GenerateOptions two = opts;
  two.count = 2;
  const auto seeded = pipeline_->generate_seeded(0, two, 7);
  ASSERT_EQ(seeded.size(), 2u);
  expect_flows_identical(seeded[0], batched[0]);
  expect_flows_identical(seeded[1], batched[2]);
}

TEST_F(PipelineTest, SeededGenerationBatchInvariantUnderDdpm) {
  // Same contract through the stochastic sampler (per-step noise) and
  // the pure-noise start.
  GenerateOptions opts;
  opts.sampler = SamplerKind::kDdpm;
  opts.template_strength = 1.0f;
  const std::vector<std::uint64_t> seeds{fork_flow_seed(9, 0),
                                         fork_flow_seed(9, 1)};
  const auto batched = pipeline_->generate_with_flow_seeds(1, opts, seeds);
  const auto single =
      pipeline_->generate_with_flow_seeds(1, opts, {seeds[1]});
  ASSERT_EQ(batched.size(), 2u);
  expect_flows_identical(batched[1], single[0]);
}

TEST_F(PipelineTest, FlowSeedValidation) {
  GenerateOptions opts;
  EXPECT_TRUE(pipeline_->generate_with_flow_seeds(0, opts, {}).empty());
  TraceDiffusion fresh(tiny_config(), {"a", "b"});
  EXPECT_THROW(fresh.generate_with_flow_seeds(0, opts, {1}),
               std::logic_error);
  EXPECT_THROW(pipeline_->generate_with_flow_seeds(9, opts, {1}),
               std::invalid_argument);
  // fork_flow_seed mixes properly: no trivial collisions across nearby
  // (seed, index) pairs.
  EXPECT_NE(fork_flow_seed(0, 0), fork_flow_seed(0, 1));
  EXPECT_NE(fork_flow_seed(0, 0), fork_flow_seed(1, 0));
  EXPECT_NE(fork_flow_seed(1, 0), fork_flow_seed(0, 1));
}

TEST_F(PipelineTest, SaveLoadRoundTrip) {
  const std::string prefix = "/tmp/repro_pipeline_ckpt";
  pipeline_->save(prefix);

  TraceDiffusion restored(tiny_config(), {"netflix", "teams"});
  restored.load(prefix);
  EXPECT_FLOAT_EQ(restored.latent_scale(), pipeline_->latent_scale());
  // Templates restored (class template exists and matches protocol).
  const auto& orig = pipeline_->class_template(1);
  const auto& back = restored.class_template(1);
  ASSERT_EQ(back.per_packet.size(), orig.per_packet.size());
  for (std::size_t i = 0; i < back.per_packet.size(); ++i) {
    EXPECT_EQ(back.per_packet[i], orig.per_packet[i]);
  }
  // The restored pipeline generates without a fit() call.
  GenerateOptions opts;
  opts.count = 1;
  opts.ddim_steps = 4;
  const auto flows = restored.generate(0, opts);
  EXPECT_EQ(flows.size(), 1u);
  std::remove((prefix + ".weights").c_str());
  std::remove((prefix + ".meta").c_str());
}

TEST(Pipeline, SaveBeforeFitThrows) {
  TraceDiffusion fresh(tiny_config(), {"a", "b"});
  EXPECT_THROW(fresh.save("/tmp/repro_nofit"), std::logic_error);
  EXPECT_THROW(fresh.load("/tmp/repro_missing_ckpt"), std::runtime_error);
}

TEST(Pipeline, GenerateBeforeFitThrows) {
  TraceDiffusion fresh(tiny_config(), {"a", "b"});
  GenerateOptions opts;
  EXPECT_THROW(fresh.generate(0, opts), std::logic_error);
  EXPECT_THROW(fresh.generate_matrix(0, opts), std::logic_error);
}

TEST(Pipeline, RejectsBadPacketCount) {
  PipelineConfig cfg = tiny_config();
  cfg.packets = 10;  // not divisible by 4
  EXPECT_THROW(TraceDiffusion(cfg, {"a"}), std::invalid_argument);
}

TEST(Pipeline, FitRejectsEmptyDataset) {
  TraceDiffusion fresh(tiny_config(), {"a", "b"});
  EXPECT_THROW(fresh.fit(flowgen::Dataset{}), std::invalid_argument);
}

TEST(Pipeline, LoraFineTuneRequiresRankAndFit) {
  PipelineConfig cfg = tiny_config();
  TraceDiffusion no_rank(cfg, {"a", "b"});
  EXPECT_THROW(no_rank.fit_lora(tiny_dataset(1), 1), std::logic_error);

  cfg.unet.lora_rank = 2;
  cfg.train_control = false;
  TraceDiffusion with_rank(cfg, {"netflix", "teams"});
  EXPECT_THROW(with_rank.fit_lora(tiny_dataset(1), 1), std::logic_error);
  with_rank.fit(tiny_dataset(3));
  const float loss = with_rank.fit_lora(tiny_dataset(2), 1);
  EXPECT_TRUE(std::isfinite(loss));
  // Base must be unfrozen again afterwards.
  for (nn::Parameter* p : with_rank.unet().parameters()) {
    EXPECT_TRUE(p->trainable);
  }
}

}  // namespace
}  // namespace repro::diffusion
