#include "diffusion/schedule.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace repro::diffusion {
namespace {

class ScheduleKindTest : public ::testing::TestWithParam<ScheduleKind> {};

TEST_P(ScheduleKindTest, AlphaBarMonotonicallyDecreasing) {
  NoiseSchedule schedule(100, GetParam());
  for (std::size_t t = 1; t < schedule.timesteps(); ++t) {
    EXPECT_LT(schedule.alpha_bar(t), schedule.alpha_bar(t - 1)) << "t=" << t;
  }
  EXPECT_GT(schedule.alpha_bar(0), 0.9f);
  // The linear schedule at T=100 keeps noticeable signal at the terminal
  // step (its betas were tuned for T=1000); cosine decays to ~0 at any T.
  EXPECT_LT(schedule.alpha_bar(99), 0.5f);
}

TEST_P(ScheduleKindTest, BetasInUnitInterval) {
  NoiseSchedule schedule(200, GetParam());
  for (std::size_t t = 0; t < schedule.timesteps(); ++t) {
    EXPECT_GT(schedule.beta(t), 0.0f);
    EXPECT_LT(schedule.beta(t), 1.0f);
    EXPECT_NEAR(schedule.alpha(t), 1.0f - schedule.beta(t), 1e-7);
  }
}

TEST_P(ScheduleKindTest, SqrtIdentities) {
  NoiseSchedule schedule(50, GetParam());
  for (std::size_t t = 0; t < 50; ++t) {
    EXPECT_NEAR(schedule.sqrt_alpha_bar(t) * schedule.sqrt_alpha_bar(t),
                schedule.alpha_bar(t), 1e-6);
    EXPECT_NEAR(schedule.sqrt_one_minus_alpha_bar(t) *
                    schedule.sqrt_one_minus_alpha_bar(t),
                1.0f - schedule.alpha_bar(t), 1e-6);
  }
}

TEST_P(ScheduleKindTest, PosteriorVarianceNonNegativeAndBounded) {
  NoiseSchedule schedule(100, GetParam());
  for (std::size_t t = 0; t < 100; ++t) {
    EXPECT_GE(schedule.posterior_variance(t), 0.0f);
    EXPECT_LE(schedule.posterior_variance(t), schedule.beta(t) + 1e-6f);
  }
}

INSTANTIATE_TEST_SUITE_P(BothKinds, ScheduleKindTest,
                         ::testing::Values(ScheduleKind::kLinear,
                                           ScheduleKind::kCosine),
                         [](const auto& param_info) {
                           return param_info.param == ScheduleKind::kLinear
                                      ? "linear"
                                      : "cosine";
                         });

TEST(Schedule, RejectsZeroTimesteps) {
  EXPECT_THROW(NoiseSchedule(0, ScheduleKind::kLinear), std::invalid_argument);
}

TEST(Schedule, QSampleStatistics) {
  NoiseSchedule schedule(100, ScheduleKind::kCosine);
  Rng rng(1);
  nn::Tensor x0 = nn::Tensor::full({10000}, 2.0f);
  nn::Tensor noise;
  const std::size_t t = 50;
  const nn::Tensor xt = schedule.q_sample(x0, t, rng, noise);
  // Mean ~ sqrt(abar)*2, variance ~ 1 - abar.
  double mean = 0.0;
  for (std::size_t i = 0; i < xt.size(); ++i) mean += xt[i];
  mean /= static_cast<double>(xt.size());
  EXPECT_NEAR(mean, 2.0 * schedule.sqrt_alpha_bar(t), 0.05);
  double var = 0.0;
  for (std::size_t i = 0; i < xt.size(); ++i) {
    var += (xt[i] - mean) * (xt[i] - mean);
  }
  var /= static_cast<double>(xt.size());
  EXPECT_NEAR(var, 1.0 - schedule.alpha_bar(t), 0.05);
}

TEST(Schedule, PredictX0InvertsQSample) {
  NoiseSchedule schedule(100, ScheduleKind::kLinear);
  Rng rng(2);
  nn::Tensor x0({64});
  for (std::size_t i = 0; i < x0.size(); ++i) {
    x0[i] = static_cast<float>(rng.gaussian());
  }
  nn::Tensor noise;
  const std::size_t t = 70;
  const nn::Tensor xt = schedule.q_sample(x0, t, rng, noise);
  const nn::Tensor recovered = schedule.predict_x0(xt, noise, t);
  for (std::size_t i = 0; i < x0.size(); ++i) {
    EXPECT_NEAR(recovered[i], x0[i], 1e-3);
  }
}

TEST(Schedule, TimestepCountHonored) {
  NoiseSchedule schedule(42, ScheduleKind::kCosine);
  EXPECT_EQ(schedule.timesteps(), 42u);
}

}  // namespace
}  // namespace repro::diffusion
