#include "ml/random_forest.hpp"

#include <gtest/gtest.h>

#include <set>

#include "flowgen/dataset.hpp"
#include "flowgen/generator.hpp"
#include "ml/features.hpp"
#include "ml/split.hpp"

namespace repro::ml {
namespace {

FeatureMatrix gaussian_blobs(std::size_t per_class, std::size_t classes,
                             Rng& rng) {
  FeatureMatrix data;
  data.feature_count = 4;
  for (std::size_t cls = 0; cls < classes; ++cls) {
    for (std::size_t i = 0; i < per_class; ++i) {
      std::vector<float> row(4);
      for (std::size_t f = 0; f < 4; ++f) {
        row[f] = static_cast<float>(
            rng.gaussian(static_cast<double>(cls) * 3.0, 0.5));
      }
      data.rows.push_back(std::move(row));
      data.labels.push_back(static_cast<int>(cls));
    }
  }
  return data;
}

TEST(RandomForest, SeparatesGaussianBlobs) {
  Rng rng(1);
  const auto train = gaussian_blobs(40, 3, rng);
  const auto test = gaussian_blobs(20, 3, rng);
  ForestConfig cfg;
  cfg.num_trees = 15;
  RandomForest forest(cfg);
  forest.fit(train);
  EXPECT_GT(forest.score(test), 0.95);
  EXPECT_EQ(forest.num_classes(), 3u);
}

TEST(RandomForest, PredictProbaNormalized) {
  Rng rng(2);
  const auto train = gaussian_blobs(30, 2, rng);
  RandomForest forest;
  forest.fit(train);
  const auto proba = forest.predict_proba(train.rows[0]);
  float sum = 0.0f;
  for (float p : proba) sum += p;
  EXPECT_NEAR(sum, 1.0f, 1e-4);
}

TEST(RandomForest, BatchPredictMatchesSingle) {
  Rng rng(3);
  const auto train = gaussian_blobs(25, 2, rng);
  RandomForest forest;
  forest.fit(train);
  const auto batch = forest.predict(train);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(batch[i], forest.predict(train.rows[i]));
  }
}

TEST(RandomForest, DeterministicForSameSeed) {
  Rng rng(4);
  const auto train = gaussian_blobs(25, 2, rng);
  ForestConfig cfg;
  cfg.seed = 77;
  RandomForest a(cfg), b(cfg);
  a.fit(train);
  b.fit(train);
  for (std::size_t i = 0; i < train.size(); ++i) {
    EXPECT_EQ(a.predict(train.rows[i]), b.predict(train.rows[i]));
  }
}

TEST(RandomForest, ThrowsOnEmptyAndUnfitted) {
  RandomForest forest;
  FeatureMatrix empty;
  EXPECT_THROW(forest.fit(empty), std::invalid_argument);
  const std::vector<float> row = {1.0f};
  EXPECT_THROW(forest.predict(row), std::logic_error);
}

TEST(RandomForest, FeatureImportanceNormalized) {
  Rng rng(5);
  const auto train = gaussian_blobs(30, 2, rng);
  RandomForest forest;
  forest.fit(train);
  const auto imp = forest.feature_importance();
  double sum = 0.0;
  for (double v : imp) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(RandomForest, ClassifiesFlowgenAppsFromNprintFeatures) {
  // The §2.3 premise: raw-bit features make service recognition easy.
  Rng rng(6);
  flowgen::Dataset ds;
  for (std::size_t i = 0; i < 15; ++i) {
    ds.flows.push_back(flowgen::generate_flow(flowgen::App::kNetflix, rng));
    ds.flows.push_back(flowgen::generate_flow(flowgen::App::kTeams, rng));
  }
  auto features = nprint_features(ds.flows, 6);
  // Remap labels to 0/1 for the two-class task.
  for (int& label : features.labels) label = label == 4 ? 1 : 0;
  Rng split_rng(7);
  const auto split = stratified_split(features, 0.3, split_rng);
  ForestConfig cfg;
  cfg.num_trees = 10;
  RandomForest forest(cfg);
  forest.fit(split.train);
  EXPECT_GT(forest.score(split.test), 0.9);
}

TEST(Split, StratificationPreservesClassBalance) {
  FeatureMatrix data;
  data.feature_count = 1;
  for (int i = 0; i < 100; ++i) {
    data.rows.push_back({static_cast<float>(i)});
    data.labels.push_back(i < 80 ? 0 : 1);  // 80/20 imbalance
  }
  Rng rng(8);
  const auto split = stratified_split(data, 0.25, rng);
  std::size_t test0 = 0, test1 = 0;
  for (int label : split.test.labels) {
    if (label == 0) ++test0;
    if (label == 1) ++test1;
  }
  EXPECT_EQ(test0, 20u);  // 25% of 80
  EXPECT_EQ(test1, 5u);   // 25% of 20
  EXPECT_EQ(split.train.size() + split.test.size(), 100u);
}

TEST(Split, TinyClassesKeepTrainSample) {
  FeatureMatrix data;
  data.feature_count = 1;
  data.rows = {{0.0f}, {1.0f}, {2.0f}};
  data.labels = {0, 0, 1};  // class 1 has a single sample
  Rng rng(9);
  const auto split = stratified_split(data, 0.5, rng);
  // Single-sample class stays in training.
  bool class1_in_train = false;
  for (int label : split.train.labels) {
    if (label == 1) class1_in_train = true;
  }
  EXPECT_TRUE(class1_in_train);
}

TEST(Split, IndicesPartitionInput) {
  std::vector<int> labels(50);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int>(i % 5);
  }
  Rng rng(10);
  std::vector<std::size_t> train_idx, test_idx;
  stratified_split_indices(labels, 0.2, rng, train_idx, test_idx);
  EXPECT_EQ(train_idx.size() + test_idx.size(), labels.size());
  std::set<std::size_t> all(train_idx.begin(), train_idx.end());
  all.insert(test_idx.begin(), test_idx.end());
  EXPECT_EQ(all.size(), labels.size());
}

}  // namespace
}  // namespace repro::ml
