// Unit tests for the telemetry layer: metric semantics, histogram
// quantiles on known distributions, span tree shape, the enabled/disabled
// gate, and the JSON exporters.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "common/telemetry/export.hpp"
#include "common/telemetry/metrics.hpp"
#include "common/telemetry/trace.hpp"

namespace repro::telemetry {
namespace {

/// Every test starts from an enabled, empty registry/profile and leaves
/// the global switch as it found it.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = enabled();
    set_enabled(true);
    Registry::instance().reset();
    reset_profile();
  }
  void TearDown() override {
    Registry::instance().reset();
    reset_profile();
    set_enabled(was_enabled_);
  }

 private:
  bool was_enabled_ = false;
};

// --- Metric semantics -------------------------------------------------

TEST_F(TelemetryTest, CounterAddValueReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(TelemetryTest, GaugeSetAddReset) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST_F(TelemetryTest, RegistryFindOrCreateReturnsSameObject) {
  Counter& a = Registry::instance().counter("test.reg.counter");
  a.add(3);
  Counter& b = Registry::instance().counter("test.reg.counter");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);
}

TEST_F(TelemetryTest, RegistryResetZeroesButKeepsObjects) {
  Counter& c = Registry::instance().counter("test.reset.counter");
  Gauge& g = Registry::instance().gauge("test.reset.gauge");
  c.add(7);
  g.set(7.0);
  Registry::instance().reset();
  EXPECT_EQ(c.value(), 0u);  // same object, zeroed in place
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  const auto snap = Registry::instance().snapshot();
  EXPECT_EQ(snap.counters.at("test.reset.counter"), 0u);
}

TEST_F(TelemetryTest, ConvenienceRecordersFeedSnapshot) {
  count("test.conv.counter", 2);
  count("test.conv.counter");
  gauge_set("test.conv.gauge", 1.25);
  observe("test.conv.hist", 0.5);
  const auto snap = Registry::instance().snapshot();
  EXPECT_EQ(snap.counters.at("test.conv.counter"), 3u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.conv.gauge"), 1.25);
  EXPECT_EQ(snap.histograms.at("test.conv.hist").count, 1u);
}

// --- Histogram quantiles ---------------------------------------------

TEST_F(TelemetryTest, HistogramBasicStats) {
  Histogram h({1.0, 2.0, 4.0});
  for (double v : {0.5, 1.5, 1.5, 3.0, 10.0}) h.observe(v);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum, 16.5);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 10.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 3.3);
  // Bucket layout: (-inf,1], (1,2], (2,4], (4,inf) -> 1, 2, 1, 1.
  ASSERT_EQ(snap.buckets.size(), 4u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 2u);
  EXPECT_EQ(snap.buckets[2], 1u);
  EXPECT_EQ(snap.buckets[3], 1u);
}

TEST_F(TelemetryTest, QuantilesOnUniformDistribution) {
  // 1..1000 uniform into decile buckets: the q-quantile is ~1000q and
  // interpolation error is bounded by one bucket width (100).
  std::vector<double> bounds;
  for (int i = 1; i <= 10; ++i) bounds.push_back(100.0 * i);
  Histogram h(bounds);
  for (int v = 1; v <= 1000; ++v) h.observe(static_cast<double>(v));
  const auto snap = h.snapshot();
  EXPECT_NEAR(snap.quantile(0.50), 500.0, 100.0);
  EXPECT_NEAR(snap.quantile(0.95), 950.0, 100.0);
  EXPECT_NEAR(snap.quantile(0.99), 990.0, 100.0);
  // Edges are exact at the observed extremes.
  EXPECT_DOUBLE_EQ(snap.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 1000.0);
  // Monotone in q.
  double prev = snap.quantile(0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    const double cur = snap.quantile(q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST_F(TelemetryTest, QuantileSinglePointDistribution) {
  Histogram h({1.0, 10.0});
  for (int i = 0; i < 100; ++i) h.observe(5.0);
  const auto snap = h.snapshot();
  // All mass sits in one bucket; clipping to min/max makes every
  // quantile exactly the observed point.
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(snap.quantile(0.99), 5.0);
}

TEST_F(TelemetryTest, QuantileEmptyHistogramIsZero) {
  Histogram h({1.0});
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.5), 0.0);
}

TEST_F(TelemetryTest, ExponentialBoundsAreAscendingAndCover) {
  const auto bounds = Histogram::exponential_bounds(1e-6, 100.0, 33);
  ASSERT_EQ(bounds.size(), 33u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-6);
  EXPECT_NEAR(bounds.back(), 100.0, 1e-9);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);
  }
}

// --- Spans ------------------------------------------------------------

TEST_F(TelemetryTest, SpanNestingBuildsTree) {
  {
    REPRO_SPAN("test.outer");
    for (int i = 0; i < 3; ++i) {
      REPRO_SPAN("test.inner");
      {
        REPRO_SPAN("test.leaf");
      }
    }
  }
  {
    REPRO_SPAN("test.outer");  // second call of the same top-level span
  }
  const SpanReport root = profile_snapshot();
  ASSERT_EQ(root.children.size(), 1u);
  const SpanReport& outer = root.children[0];
  EXPECT_EQ(outer.name, "test.outer");
  EXPECT_EQ(outer.calls, 2u);
  ASSERT_EQ(outer.children.size(), 1u);
  const SpanReport& inner = outer.children[0];
  EXPECT_EQ(inner.name, "test.inner");
  EXPECT_EQ(inner.calls, 3u);
  ASSERT_EQ(inner.children.size(), 1u);
  EXPECT_EQ(inner.children[0].name, "test.leaf");
  EXPECT_EQ(inner.children[0].calls, 3u);
  // Inclusive time dominates children; self is the remainder.
  EXPECT_GE(outer.total_seconds, inner.total_seconds);
  EXPECT_GE(outer.self_seconds, 0.0);
  EXPECT_NEAR(outer.self_seconds, outer.total_seconds - inner.total_seconds,
              1e-9);
  EXPECT_EQ(root.node_count(), 3u);
}

TEST_F(TelemetryTest, SameNameUnderDifferentParentsIsTwoNodes) {
  {
    REPRO_SPAN("test.a");
    { REPRO_SPAN("test.shared"); }
  }
  {
    REPRO_SPAN("test.b");
    { REPRO_SPAN("test.shared"); }
  }
  const SpanReport root = profile_snapshot();
  ASSERT_EQ(root.children.size(), 2u);
  for (const auto& top : root.children) {
    ASSERT_EQ(top.children.size(), 1u);
    EXPECT_EQ(top.children[0].name, "test.shared");
    EXPECT_EQ(top.children[0].calls, 1u);
  }
}

TEST_F(TelemetryTest, ResetProfileClearsTree) {
  { REPRO_SPAN("test.tmp"); }
  EXPECT_EQ(profile_snapshot().children.size(), 1u);
  reset_profile();
  EXPECT_TRUE(profile_snapshot().children.empty());
}

TEST_F(TelemetryTest, TextReportListsSpans) {
  {
    REPRO_SPAN("test.report.outer");
    { REPRO_SPAN("test.report.inner"); }
  }
  const std::string report = profile_text_report();
  EXPECT_NE(report.find("test.report.outer"), std::string::npos);
  EXPECT_NE(report.find("test.report.inner"), std::string::npos);
}

// --- The enabled/disabled gate ---------------------------------------

TEST_F(TelemetryTest, DisabledRecordersHaveNoEffect) {
  set_enabled(false);
  count("test.off.counter", 5);
  gauge_set("test.off.gauge", 1.0);
  observe("test.off.hist", 1.0);
  { REPRO_SPAN("test.off.span"); }
  set_enabled(true);
  const auto snap = Registry::instance().snapshot();
  EXPECT_EQ(snap.counters.count("test.off.counter"), 0u);
  EXPECT_EQ(snap.gauges.count("test.off.gauge"), 0u);
  EXPECT_EQ(snap.histograms.count("test.off.hist"), 0u);
  EXPECT_TRUE(profile_snapshot().children.empty());
}

TEST_F(TelemetryTest, DirectRegistryAccessWorksEvenWhenDisabled) {
  // The gate applies to the convenience recorders; code holding explicit
  // references still records (callers opt in to that cost).
  set_enabled(false);
  Registry::instance().counter("test.direct").add();
  set_enabled(true);
  EXPECT_EQ(Registry::instance().snapshot().counters.at("test.direct"), 1u);
}

// --- JSON export ------------------------------------------------------

/// Minimal structural validator: quotes, escapes, and bracket balance.
/// Not a full parser — enough to catch broken comma/brace emission.
bool json_is_balanced(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      case ',':
        // A comma immediately before a closing bracket is invalid JSON.
        if (i + 1 < s.size() && (s[i + 1] == '}' || s[i + 1] == ']')) {
          return false;
        }
        break;
      default:
        break;
    }
  }
  return stack.empty() && !in_string;
}

TEST_F(TelemetryTest, JsonEscape) {
  EXPECT_EQ(json_escape("plain"), "\"plain\"");
  EXPECT_EQ(json_escape("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_escape("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(json_escape("a\nb"), "\"a\\nb\"");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "\"a\\u0001b\"");
}

TEST_F(TelemetryTest, JsonWriterCommasAndSpecials) {
  JsonWriter json;
  json.begin_object();
  json.key("a");
  json.value(std::uint64_t{1});
  json.key("b");
  json.begin_array();
  json.value(1.5);
  json.value(std::nan(""));  // not representable -> null
  json.value(true);
  json.end_array();
  json.key("s");
  json.value("x");
  json.end_object();
  const std::string out = std::move(json).str();
  EXPECT_EQ(out, "{\"a\":1,\"b\":[1.5,null,true],\"s\":\"x\"}");
}

TEST_F(TelemetryTest, MetricsJsonRoundTrip) {
  count("test.json.counter", 4);
  gauge_set("test.json.gauge", 0.5);
  for (int i = 1; i <= 10; ++i) {
    observe("test.json.hist", 0.001 * i);
  }
  const std::string json = metrics_json(Registry::instance().snapshot());
  EXPECT_TRUE(json_is_balanced(json)) << json;
  EXPECT_NE(json.find("\"test.json.counter\":4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.json.gauge\":0.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.json.hist\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":10"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p95\""), std::string::npos) << json;
}

TEST_F(TelemetryTest, TelemetryJsonIncludesSpans) {
  {
    REPRO_SPAN("test.json.span");
    count("test.json.inner");
  }
  const std::string json = telemetry_json();
  EXPECT_TRUE(json_is_balanced(json)) << json;
  EXPECT_NE(json.find("\"enabled\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.json.span\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"calls\":1"), std::string::npos) << json;
}

TEST_F(TelemetryTest, ChromeTraceJsonHasSliceEvents) {
  {
    REPRO_SPAN("test.trace.outer");
    { REPRO_SPAN("test.trace.inner"); }
  }
  const std::string json = chrome_trace_json();
  EXPECT_TRUE(json_is_balanced(json)) << json;
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"test.trace.outer\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.trace.inner\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
}

}  // namespace
}  // namespace repro::telemetry
