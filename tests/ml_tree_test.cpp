#include "ml/decision_tree.hpp"

#include <gtest/gtest.h>

namespace repro::ml {
namespace {

/// Axis-separable two-class problem: class = x0 > 0.5.
FeatureMatrix separable_data(std::size_t n, Rng& rng) {
  FeatureMatrix data;
  data.feature_count = 3;
  for (std::size_t i = 0; i < n; ++i) {
    const int label = rng.bernoulli(0.5) ? 1 : 0;
    std::vector<float> row(3);
    row[0] = label == 1 ? static_cast<float>(rng.uniform(0.6, 1.0))
                        : static_cast<float>(rng.uniform(0.0, 0.4));
    row[1] = static_cast<float>(rng.uniform());  // noise
    row[2] = static_cast<float>(rng.uniform());  // noise
    data.rows.push_back(std::move(row));
    data.labels.push_back(label);
  }
  return data;
}

std::vector<std::size_t> all_indices(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  return idx;
}

TEST(DecisionTree, LearnsSeparableProblem) {
  Rng rng(1);
  const auto data = separable_data(200, rng);
  DecisionTree tree;
  Rng tree_rng(2);
  tree.fit(data, all_indices(data.size()), 2, tree_rng);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (tree.predict(data.rows[i]) == data.labels[i]) ++correct;
  }
  EXPECT_EQ(correct, data.size());  // training accuracy on separable data
}

TEST(DecisionTree, ImportanceFavorsInformativeFeature) {
  Rng rng(3);
  const auto data = separable_data(300, rng);
  TreeConfig cfg;
  cfg.max_features = 3;  // examine all features each split
  DecisionTree tree(cfg);
  Rng tree_rng(4);
  tree.fit(data, all_indices(data.size()), 2, tree_rng);
  const auto& imp = tree.feature_importance();
  EXPECT_GT(imp[0], imp[1]);
  EXPECT_GT(imp[0], imp[2]);
}

TEST(DecisionTree, PredictProbaSumsToOne) {
  Rng rng(5);
  const auto data = separable_data(100, rng);
  DecisionTree tree;
  Rng tree_rng(6);
  tree.fit(data, all_indices(data.size()), 2, tree_rng);
  const auto& proba = tree.predict_proba(data.rows[0]);
  float sum = 0.0f;
  for (float p : proba) sum += p;
  EXPECT_NEAR(sum, 1.0f, 1e-5);
}

TEST(DecisionTree, MaxDepthLimitsTree) {
  Rng rng(7);
  const auto data = separable_data(200, rng);
  TreeConfig cfg;
  cfg.max_depth = 1;
  DecisionTree tree(cfg);
  Rng tree_rng(8);
  tree.fit(data, all_indices(data.size()), 2, tree_rng);
  EXPECT_LE(tree.depth(), 1u);
  EXPECT_LE(tree.node_count(), 3u);
}

TEST(DecisionTree, PureNodeBecomesLeafImmediately) {
  FeatureMatrix data;
  data.feature_count = 1;
  for (int i = 0; i < 10; ++i) {
    data.rows.push_back({static_cast<float>(i)});
    data.labels.push_back(1);  // all one class
  }
  DecisionTree tree;
  Rng rng(9);
  tree.fit(data, all_indices(10), 2, rng);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.predict({100.0f}), 1);
}

TEST(DecisionTree, ConstantFeaturesYieldLeaf) {
  FeatureMatrix data;
  data.feature_count = 2;
  for (int i = 0; i < 10; ++i) {
    data.rows.push_back({1.0f, 2.0f});
    data.labels.push_back(i % 2);
  }
  DecisionTree tree;
  Rng rng(10);
  tree.fit(data, all_indices(10), 2, rng);
  EXPECT_EQ(tree.node_count(), 1u);
  const auto& proba = tree.predict_proba({1.0f, 2.0f});
  EXPECT_NEAR(proba[0], 0.5f, 1e-5);
}

TEST(DecisionTree, ThrowsOnEmptyFitAndUnfittedPredict) {
  DecisionTree tree;
  FeatureMatrix data;
  data.feature_count = 1;
  Rng rng(11);
  EXPECT_THROW(tree.fit(data, {}, 2, rng), std::invalid_argument);
  EXPECT_THROW(tree.predict({1.0f}), std::logic_error);
}

TEST(DecisionTree, HandlesTernaryNprintLikeFeatures) {
  // Features in {-1, 0, 1} as the nprint matrix provides.
  FeatureMatrix data;
  data.feature_count = 4;
  Rng rng(12);
  for (int i = 0; i < 120; ++i) {
    const int label = i % 2;
    std::vector<float> row(4, -1.0f);
    // Class 1 has feature 2 occupied (protocol region present).
    if (label == 1) {
      row[2] = rng.bernoulli(0.5) ? 1.0f : 0.0f;
    }
    data.rows.push_back(std::move(row));
    data.labels.push_back(label);
  }
  TreeConfig cfg;
  cfg.max_features = 4;
  DecisionTree tree(cfg);
  Rng tree_rng(13);
  tree.fit(data, all_indices(data.size()), 2, tree_rng);
  std::vector<float> vacant(4, -1.0f);
  EXPECT_EQ(tree.predict(vacant), 0);
  std::vector<float> occupied(4, -1.0f);
  occupied[2] = 1.0f;
  EXPECT_EQ(tree.predict(occupied), 1);
}

}  // namespace
}  // namespace repro::ml
