// Golden determinism harness: the parallel layer must never change
// results. Each scenario rebuilds its state from a fixed seed and runs
// at REPRO_THREADS = 1, 2 and 8 lanes; outputs are hashed bit-exactly
// (float bit patterns, serialized packets) and must match across every
// thread count. A mismatch means a reduction reordered or a data race
// corrupted a hot path — the one failure mode parallelism must not have.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel/thread_pool.hpp"
#include "common/rng.hpp"
#include "diffusion/distill.hpp"
#include "diffusion/pipeline.hpp"
#include "diffusion/sampler.hpp"
#include "diffusion/schedule.hpp"
#include "diffusion/unet1d.hpp"
#include "flowgen/dataset.hpp"
#include "flowgen/generator.hpp"
#include "flowgen/tcp_session.hpp"
#include "ml/features.hpp"
#include "ml/random_forest.hpp"
#include "nn/kernels/qgemm.hpp"
#include "nn/precision.hpp"
#include "nn/tensor.hpp"
#include "nprint/codec.hpp"
#include "replay/emit/emitter.hpp"
#include "serve/registry.hpp"
#include "serve/service.hpp"

namespace repro {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void hash_bytes(std::uint64_t& h, const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

std::uint64_t hash_floats(const float* data, std::size_t count) {
  std::uint64_t h = kFnvOffset;
  hash_bytes(h, data, count * sizeof(float));
  return h;
}

std::uint64_t hash_tensor(const nn::Tensor& t) {
  return hash_floats(t.data(), t.size());
}

std::uint64_t hash_flows(const std::vector<net::Flow>& flows) {
  std::uint64_t h = kFnvOffset;
  for (const auto& flow : flows) {
    hash_bytes(h, &flow.label, sizeof(flow.label));
    for (const auto& pkt : flow.packets) {
      hash_bytes(h, &pkt.timestamp, sizeof(pkt.timestamp));
      const auto wire = pkt.serialize();
      hash_bytes(h, wire.data(), wire.size());
    }
  }
  return h;
}

/// Runs `scenario` at 1, 2 and 8 lanes and asserts bit-identical hashes.
void expect_thread_invariant(const char* what,
                             const std::function<std::uint64_t()>& scenario) {
  const std::size_t original = parallel::thread_count();
  parallel::set_thread_count(1);
  const std::uint64_t serial = scenario();
  for (const std::size_t lanes : {2u, 8u}) {
    parallel::set_thread_count(lanes);
    EXPECT_EQ(serial, scenario()) << what << " diverged at " << lanes
                                  << " threads";
  }
  parallel::set_thread_count(original);
}

TEST(Determinism, RandomForestTrainingAndPrediction) {
  expect_thread_invariant("random forest", [] {
    Rng rng(11);
    const flowgen::Dataset data = flowgen::build_uniform_dataset(6, rng);
    const ml::FeatureMatrix features = ml::netflow_features(data.flows);
    ml::ForestConfig config;
    config.num_trees = 12;
    ml::RandomForest forest(config);
    forest.fit(features);

    std::uint64_t h = kFnvOffset;
    const auto predictions = forest.predict(features);
    hash_bytes(h, predictions.data(), predictions.size() * sizeof(int));
    for (const auto& row : features.rows) {
      const auto probs = forest.predict_proba(row);
      hash_bytes(h, probs.data(), probs.size() * sizeof(float));
    }
    const auto importance = forest.feature_importance();
    hash_bytes(h, importance.data(), importance.size() * sizeof(double));
    const double accuracy = forest.score(features);
    hash_bytes(h, &accuracy, sizeof(accuracy));
    return h;
  });
}

TEST(Determinism, DiffusionSamplingSteps) {
  expect_thread_invariant("diffusion sampling", [] {
    Rng init_rng(23);
    diffusion::UNetConfig config;
    config.in_channels = 6;
    config.base_channels = 8;
    config.temb_dim = 16;
    config.num_classes = 3;
    config.groups = 2;
    diffusion::UNet1d unet(config, init_rng);

    const diffusion::NoiseSchedule schedule(20, diffusion::ScheduleKind::kCosine);
    const std::vector<int> class_ids(2, 1);
    diffusion::EpsFn eps_fn = [&](const nn::Tensor& x, std::size_t t) {
      const std::vector<float> timesteps(x.dim(0), static_cast<float>(t));
      return unet.forward(x, timesteps, class_ids);
    };
    // DDIM exercises the deterministic update; DDPM adds the serially
    // pre-drawn per-element noise. Both go through the parallel nn
    // forward paths (matmul, conv, attention) on every step.
    Rng sample_rng(31);
    const nn::Tensor ddim = diffusion::ddim_sample(
        eps_fn, schedule, {2, 6, 8}, /*steps=*/4, /*eta=*/0.5f, sample_rng);
    const nn::Tensor ddpm =
        diffusion::ddpm_sample_from(eps_fn, schedule, ddim, 3, sample_rng);
    std::uint64_t h = hash_tensor(ddim);
    hash_bytes(h, ddpm.data(), ddpm.size() * sizeof(float));
    return h;
  });
}

TEST(Determinism, NnTrainingStepGradients) {
  expect_thread_invariant("unet backward", [] {
    Rng rng(5);
    diffusion::UNetConfig config;
    config.in_channels = 4;
    config.base_channels = 8;
    config.temb_dim = 16;
    config.num_classes = 2;
    config.groups = 2;
    diffusion::UNet1d unet(config, rng);
    nn::Tensor x({2, 4, 8});
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = static_cast<float>(rng.gaussian());
    }
    const std::vector<float> timesteps(2, 3.0f);
    const std::vector<int> class_ids(2, 0);
    const nn::Tensor out = unet.forward(x, timesteps, class_ids);
    const nn::Tensor grad_x = unet.backward(out);

    std::uint64_t h = hash_tensor(out);
    hash_bytes(h, grad_x.data(), grad_x.size() * sizeof(float));
    for (nn::Parameter* p : unet.parameters()) {
      hash_bytes(h, p->grad.data(), p->grad.size() * sizeof(float));
    }
    return h;
  });
}

TEST(Determinism, GemmKernelOutputs) {
  // The GEMM layer chunks rows across threads (and takes a serial fast
  // path for small problems); every shape adapter must hash identically
  // at 1, 2 and 8 lanes. Sizes are big enough (m*n*k > 2^16) to force
  // the parallel path when lanes > 1, with odd dims to cover the
  // kMr / kNr tails.
  expect_thread_invariant("gemm kernels", [] {
    Rng rng(83);
    const std::size_t m = 97, k = 41, n = 83;
    nn::Tensor a({m, k});
    nn::Tensor b({k, n});
    nn::Tensor bt({n, k});
    nn::Tensor a2({m, n});
    for (auto* t : {&a, &b, &bt, &a2}) {
      for (std::size_t i = 0; i < t->size(); ++i) {
        (*t)[i] = static_cast<float>(rng.gaussian());
      }
    }
    std::uint64_t h = hash_tensor(nn::matmul(a, b));
    hash_bytes(h, &kFnvPrime, 1);  // separator
    const nn::Tensor c_bt = nn::matmul_bt(a, bt);  // [m, n]
    hash_bytes(h, c_bt.data(), c_bt.size() * sizeof(float));
    const nn::Tensor c_at = nn::matmul_at(a, a2);  // [k, n]
    hash_bytes(h, c_at.data(), c_at.size() * sizeof(float));
    return h;
  });
}

TEST(Determinism, QuantizedGemmKernelOutputs) {
  // The int8 route chunks rows across threads exactly like the fp32
  // GEMM, but its accumulation is integer — so lane invariance must be
  // exact, not just likely. Sizes force the parallel path (m*n*k > 2^16)
  // with odd dims covering the kMr / kNr tails; both layer-facing
  // adapters (per-call activation quantization included) are hashed.
  expect_thread_invariant("quantized gemm kernels", [] {
    Rng rng(89);
    const std::size_t m = 97, k = 41, n = 83;
    std::vector<float> a(m * k), b(k * n), w(n * k);
    for (auto* v : {&a, &b, &w}) {
      for (auto& x : *v) x = static_cast<float>(rng.gaussian());
    }
    const auto aq = nn::kernels::quantize_tensor(a.data(), a.size());
    const auto bq = nn::kernels::quantize_tensor(b.data(), b.size());
    std::vector<float> c(m * n, 0.0f);
    nn::kernels::qgemm(m, n, k, {aq.data.data(), k, 1}, {bq.data.data(), n, 1},
                       aq.scale * bq.scale, c.data(), n,
                       nn::kernels::Accumulate::kOverwrite);
    std::uint64_t h = hash_floats(c.data(), c.size());
    const auto wq = nn::kernels::quantize_tensor(w.data(), w.size());
    std::vector<float> c_nt(m * n, 0.0f);
    nn::kernels::qgemm_nt(m, k, n, a.data(), wq, c_nt.data());
    hash_bytes(h, c_nt.data(), c_nt.size() * sizeof(float));
    std::vector<float> c_nn(n * n, 0.0f);
    nn::kernels::qgemm_nn(n, k, n, wq, b.data(), c_nn.data());
    hash_bytes(h, c_nn.data(), c_nn.size() * sizeof(float));
    return h;
  });
}

TEST(Determinism, Int8UnetForward) {
  // A whole quantized U-Net forward: every Linear/Conv1d/attention
  // projection routed through qgemm must hash identically at any lane
  // count, with the fp32 pass alongside to prove toggling precision on
  // one module instance leaves the reference route untouched.
  expect_thread_invariant("int8 unet forward", [] {
    Rng init_rng(29);
    diffusion::UNetConfig config;
    config.in_channels = 6;
    config.base_channels = 8;
    config.temb_dim = 16;
    config.num_classes = 3;
    config.groups = 2;
    diffusion::UNet1d unet(config, init_rng);

    Rng data_rng(37);
    nn::Tensor x({2, 6, 8});
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = static_cast<float>(data_rng.gaussian());
    }
    const std::vector<float> timesteps(2, 4.0f);
    const std::vector<int> class_ids(2, 1);

    const nn::Tensor fp32 = unet.forward(x, timesteps, class_ids);
    unet.set_precision(nn::Precision::kInt8);
    const nn::Tensor int8 = unet.forward(x, timesteps, class_ids);
    unet.set_precision(nn::Precision::kFp32);
    const nn::Tensor fp32_again = unet.forward(x, timesteps, class_ids);

    std::uint64_t h = hash_tensor(int8);
    hash_bytes(h, fp32.data(), fp32.size() * sizeof(float));
    hash_bytes(h, fp32_again.data(), fp32_again.size() * sizeof(float));
    return h;
  });
}

TEST(Determinism, DistilledSamplerSteps) {
  // The distilled few-step trajectory: closed-form gain fitting (serial
  // double accumulation) plus the fixed-chunk elementwise updates must
  // be bit-identical at any lane count, through a real U-Net eps fn.
  expect_thread_invariant("distilled sampling", [] {
    Rng init_rng(71);
    diffusion::UNetConfig config;
    config.in_channels = 6;
    config.base_channels = 8;
    config.temb_dim = 16;
    config.num_classes = 3;
    config.groups = 2;
    diffusion::UNet1d unet(config, init_rng);

    const diffusion::NoiseSchedule schedule(20,
                                            diffusion::ScheduleKind::kCosine);
    const std::vector<int> class_ids(2, 1);
    diffusion::EpsFn eps_fn = [&](const nn::Tensor& x, std::size_t t) {
      const std::vector<float> timesteps(x.dim(0), static_cast<float>(t));
      return unet.forward(x, timesteps, class_ids);
    };
    Rng data_rng(73);
    nn::Tensor calib({2, 6, 8});
    for (std::size_t i = 0; i < calib.size(); ++i) {
      calib[i] = static_cast<float>(data_rng.gaussian());
    }
    const diffusion::StageFit fit = diffusion::distill_halve(
        eps_fn, schedule, diffusion::teacher_stage(19, 6), calib);
    const nn::Tensor out =
        diffusion::distilled_sample_from(eps_fn, schedule, calib, fit.stage);
    std::uint64_t h = hash_tensor(out);
    hash_bytes(h, fit.stage.gains.data(),
               fit.stage.gains.size() * sizeof(float));
    return h;
  });
}

TEST(Determinism, FlowgenDatasetBuild) {
  expect_thread_invariant("flowgen dataset", [] {
    Rng rng(47);
    const flowgen::Dataset data = flowgen::build_table1_dataset(5, rng);
    return hash_flows(data.flows);
  });
}

TEST(Determinism, OpenLoopReplayEmission) {
  // The replay emitter under a virtual pacer is pure discrete-event
  // simulation: pcap bytes and the conservation counters must be
  // bit-identical at any lane count (flow generation and emission both
  // run on top of the parallel layer's deterministic primitives).
  expect_thread_invariant("open-loop replay emission", [] {
    Rng rng(91);
    const auto& profile = flowgen::app_profile(flowgen::App::kNetflix);
    std::vector<net::Flow> flows;
    for (std::size_t i = 0; i < 10; ++i) {
      flowgen::Endpoints ep;
      ep.client_addr = 0x0A000001u + static_cast<std::uint32_t>(i);
      ep.server_addr = 0x0D000001u;
      ep.client_port = static_cast<std::uint16_t>(40000 + i);
      ep.server_port = 443;
      flows.push_back(flowgen::generate_tcp_flow(profile, ep, 8, rng));
    }

    replay::emit::EmitConfig config;
    config.target_pps = 20000.0;
    config.total_flows = 10;
    config.arrival = replay::emit::Arrival::kExponential;
    config.seed = 19;
    replay::emit::VectorFlowSource source(flows);
    replay::emit::VirtualPacer pacer;
    std::ostringstream bytes;
    replay::emit::PcapSink sink(bytes);
    replay::emit::OpenLoopEmitter emitter(config, source, pacer, sink);
    const replay::emit::EmitReport report = emitter.run();
    EXPECT_TRUE(report.conserved());

    std::uint64_t h = kFnvOffset;
    const std::string pcap = bytes.str();
    hash_bytes(h, pcap.data(), pcap.size());
    hash_bytes(h, &report.flows_emitted, sizeof(report.flows_emitted));
    hash_bytes(h, &report.packets_emitted, sizeof(report.packets_emitted));
    hash_bytes(h, &report.underruns, sizeof(report.underruns));
    hash_bytes(h, &report.last_emit, sizeof(report.last_emit));
    return h;
  });
}

TEST(Determinism, ServedReplayEmissionMatchesLibrary) {
  // Full-stack replay determinism: pacing flows through the serving
  // layer (queue -> batcher -> model) must emit the exact bytes of the
  // direct generate_seeded path, and those bytes must not move with the
  // lane count. The tiny pipeline is trained once, outside the
  // lane-swept scenario — only generation and emission are under test.
  diffusion::PipelineConfig cfg;
  cfg.packets = 8;
  cfg.autoencoder.hidden_dim = 48;
  cfg.autoencoder.latent_dim = 8;
  cfg.unet.base_channels = 8;
  cfg.unet.temb_dim = 16;
  cfg.unet.groups = 4;
  cfg.timesteps = 20;
  cfg.ae_epochs = 10;
  cfg.diffusion_epochs = 2;
  cfg.control_epochs = 1;
  cfg.seed = 5;
  auto pipeline = std::make_shared<diffusion::TraceDiffusion>(
      cfg, std::vector<std::string>{"netflix", "teams"});
  {
    Rng rng(77);
    flowgen::Dataset ds;
    for (std::size_t i = 0; i < 5; ++i) {
      net::Flow a = flowgen::generate_flow(flowgen::App::kNetflix, 8, rng);
      a.label = 0;
      ds.flows.push_back(std::move(a));
      net::Flow b = flowgen::generate_flow(flowgen::App::kTeams, 8, rng);
      b.label = 1;
      ds.flows.push_back(std::move(b));
    }
    pipeline->fit(ds);
  }

  expect_thread_invariant("served replay emission", [&pipeline] {
    replay::emit::EmitConfig config;
    config.target_pps = 10000.0;
    config.total_flows = 6;
    config.arrival = replay::emit::Arrival::kExponential;
    config.seed = 21;

    serve::ModelRegistry registry;
    registry.install("default", pipeline, "v1");
    auto now = std::make_shared<double>(0.0);
    serve::ServiceConfig svc;
    svc.batch.max_wait = 0.0;
    svc.base_options.ddim_steps = 4;
    svc.cache_capacity = 0;  // force the full generation path
    svc.clock = [now] { return *now; };
    serve::TraceService service(registry, svc);

    replay::emit::ServedSourceConfig src;
    src.class_id = 0;
    src.seed_base = 42;
    src.total_flows = 6;
    src.ring_capacity = 4;
    src.flows_per_request = 2;
    src.ddim_steps = 4;
    replay::emit::ServedFlowSource served(service, src);
    replay::emit::VirtualPacer served_pacer;
    std::ostringstream served_bytes;
    replay::emit::PcapSink served_sink(served_bytes);
    replay::emit::OpenLoopEmitter served_emitter(config, served, served_pacer,
                                                 served_sink);
    const replay::emit::EmitReport served_report = served_emitter.run();

    diffusion::GenerateOptions lib_opts;
    lib_opts.count = 2;  // == flows_per_request
    lib_opts.ddim_steps = 4;
    replay::emit::LibraryFlowSource library(*pipeline, 0, lib_opts, 42, 6);
    replay::emit::VirtualPacer lib_pacer;
    std::ostringstream lib_bytes;
    replay::emit::PcapSink lib_sink(lib_bytes);
    replay::emit::OpenLoopEmitter lib_emitter(config, library, lib_pacer,
                                              lib_sink);
    const replay::emit::EmitReport lib_report = lib_emitter.run();

    EXPECT_TRUE(served_report.conserved());
    EXPECT_EQ(served_report.underruns, 0u);
    EXPECT_FALSE(served_bytes.str().empty());
    EXPECT_EQ(served_bytes.str(), lib_bytes.str());
    (void)lib_report;

    std::uint64_t h = kFnvOffset;
    const std::string pcap = served_bytes.str();
    hash_bytes(h, pcap.data(), pcap.size());
    return h;
  });
}

TEST(Determinism, NprintEncodeDecodeRoundtrip) {
  expect_thread_invariant("nprint codec", [] {
    Rng rng(61);
    const flowgen::Dataset data = flowgen::build_uniform_dataset(2, rng);
    std::uint64_t h = kFnvOffset;
    for (const auto& flow : data.flows) {
      const nprint::Matrix matrix =
          nprint::encode_flow(flow, 32, /*pad_to_max=*/true);
      hash_bytes(h, matrix.data().data(),
                 matrix.data().size() * sizeof(float));
      const net::Flow decoded = nprint::decode_flow(matrix);
      const std::uint64_t fh = hash_flows({decoded});
      hash_bytes(h, &fh, sizeof(fh));
    }
    return h;
  });
}

}  // namespace
}  // namespace repro
