// Golden determinism harness: the parallel layer must never change
// results. Each scenario rebuilds its state from a fixed seed and runs
// at REPRO_THREADS = 1, 2 and 8 lanes; outputs are hashed bit-exactly
// (float bit patterns, serialized packets) and must match across every
// thread count. A mismatch means a reduction reordered or a data race
// corrupted a hot path — the one failure mode parallelism must not have.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <functional>
#include <vector>

#include "common/parallel/thread_pool.hpp"
#include "common/rng.hpp"
#include "diffusion/sampler.hpp"
#include "diffusion/schedule.hpp"
#include "diffusion/unet1d.hpp"
#include "flowgen/dataset.hpp"
#include "ml/features.hpp"
#include "ml/random_forest.hpp"
#include "nn/tensor.hpp"
#include "nprint/codec.hpp"

namespace repro {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void hash_bytes(std::uint64_t& h, const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

std::uint64_t hash_floats(const float* data, std::size_t count) {
  std::uint64_t h = kFnvOffset;
  hash_bytes(h, data, count * sizeof(float));
  return h;
}

std::uint64_t hash_tensor(const nn::Tensor& t) {
  return hash_floats(t.data(), t.size());
}

std::uint64_t hash_flows(const std::vector<net::Flow>& flows) {
  std::uint64_t h = kFnvOffset;
  for (const auto& flow : flows) {
    hash_bytes(h, &flow.label, sizeof(flow.label));
    for (const auto& pkt : flow.packets) {
      hash_bytes(h, &pkt.timestamp, sizeof(pkt.timestamp));
      const auto wire = pkt.serialize();
      hash_bytes(h, wire.data(), wire.size());
    }
  }
  return h;
}

/// Runs `scenario` at 1, 2 and 8 lanes and asserts bit-identical hashes.
void expect_thread_invariant(const char* what,
                             const std::function<std::uint64_t()>& scenario) {
  const std::size_t original = parallel::thread_count();
  parallel::set_thread_count(1);
  const std::uint64_t serial = scenario();
  for (const std::size_t lanes : {2u, 8u}) {
    parallel::set_thread_count(lanes);
    EXPECT_EQ(serial, scenario()) << what << " diverged at " << lanes
                                  << " threads";
  }
  parallel::set_thread_count(original);
}

TEST(Determinism, RandomForestTrainingAndPrediction) {
  expect_thread_invariant("random forest", [] {
    Rng rng(11);
    const flowgen::Dataset data = flowgen::build_uniform_dataset(6, rng);
    const ml::FeatureMatrix features = ml::netflow_features(data.flows);
    ml::ForestConfig config;
    config.num_trees = 12;
    ml::RandomForest forest(config);
    forest.fit(features);

    std::uint64_t h = kFnvOffset;
    const auto predictions = forest.predict(features);
    hash_bytes(h, predictions.data(), predictions.size() * sizeof(int));
    for (const auto& row : features.rows) {
      const auto probs = forest.predict_proba(row);
      hash_bytes(h, probs.data(), probs.size() * sizeof(float));
    }
    const auto importance = forest.feature_importance();
    hash_bytes(h, importance.data(), importance.size() * sizeof(double));
    const double accuracy = forest.score(features);
    hash_bytes(h, &accuracy, sizeof(accuracy));
    return h;
  });
}

TEST(Determinism, DiffusionSamplingSteps) {
  expect_thread_invariant("diffusion sampling", [] {
    Rng init_rng(23);
    diffusion::UNetConfig config;
    config.in_channels = 6;
    config.base_channels = 8;
    config.temb_dim = 16;
    config.num_classes = 3;
    config.groups = 2;
    diffusion::UNet1d unet(config, init_rng);

    const diffusion::NoiseSchedule schedule(20, diffusion::ScheduleKind::kCosine);
    const std::vector<int> class_ids(2, 1);
    diffusion::EpsFn eps_fn = [&](const nn::Tensor& x, std::size_t t) {
      const std::vector<float> timesteps(x.dim(0), static_cast<float>(t));
      return unet.forward(x, timesteps, class_ids);
    };
    // DDIM exercises the deterministic update; DDPM adds the serially
    // pre-drawn per-element noise. Both go through the parallel nn
    // forward paths (matmul, conv, attention) on every step.
    Rng sample_rng(31);
    const nn::Tensor ddim = diffusion::ddim_sample(
        eps_fn, schedule, {2, 6, 8}, /*steps=*/4, /*eta=*/0.5f, sample_rng);
    const nn::Tensor ddpm =
        diffusion::ddpm_sample_from(eps_fn, schedule, ddim, 3, sample_rng);
    std::uint64_t h = hash_tensor(ddim);
    hash_bytes(h, ddpm.data(), ddpm.size() * sizeof(float));
    return h;
  });
}

TEST(Determinism, NnTrainingStepGradients) {
  expect_thread_invariant("unet backward", [] {
    Rng rng(5);
    diffusion::UNetConfig config;
    config.in_channels = 4;
    config.base_channels = 8;
    config.temb_dim = 16;
    config.num_classes = 2;
    config.groups = 2;
    diffusion::UNet1d unet(config, rng);
    nn::Tensor x({2, 4, 8});
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = static_cast<float>(rng.gaussian());
    }
    const std::vector<float> timesteps(2, 3.0f);
    const std::vector<int> class_ids(2, 0);
    const nn::Tensor out = unet.forward(x, timesteps, class_ids);
    const nn::Tensor grad_x = unet.backward(out);

    std::uint64_t h = hash_tensor(out);
    hash_bytes(h, grad_x.data(), grad_x.size() * sizeof(float));
    for (nn::Parameter* p : unet.parameters()) {
      hash_bytes(h, p->grad.data(), p->grad.size() * sizeof(float));
    }
    return h;
  });
}

TEST(Determinism, GemmKernelOutputs) {
  // The GEMM layer chunks rows across threads (and takes a serial fast
  // path for small problems); every shape adapter must hash identically
  // at 1, 2 and 8 lanes. Sizes are big enough (m*n*k > 2^16) to force
  // the parallel path when lanes > 1, with odd dims to cover the
  // kMr / kNr tails.
  expect_thread_invariant("gemm kernels", [] {
    Rng rng(83);
    const std::size_t m = 97, k = 41, n = 83;
    nn::Tensor a({m, k});
    nn::Tensor b({k, n});
    nn::Tensor bt({n, k});
    nn::Tensor a2({m, n});
    for (auto* t : {&a, &b, &bt, &a2}) {
      for (std::size_t i = 0; i < t->size(); ++i) {
        (*t)[i] = static_cast<float>(rng.gaussian());
      }
    }
    std::uint64_t h = hash_tensor(nn::matmul(a, b));
    hash_bytes(h, &kFnvPrime, 1);  // separator
    const nn::Tensor c_bt = nn::matmul_bt(a, bt);  // [m, n]
    hash_bytes(h, c_bt.data(), c_bt.size() * sizeof(float));
    const nn::Tensor c_at = nn::matmul_at(a, a2);  // [k, n]
    hash_bytes(h, c_at.data(), c_at.size() * sizeof(float));
    return h;
  });
}

TEST(Determinism, FlowgenDatasetBuild) {
  expect_thread_invariant("flowgen dataset", [] {
    Rng rng(47);
    const flowgen::Dataset data = flowgen::build_table1_dataset(5, rng);
    return hash_flows(data.flows);
  });
}

TEST(Determinism, NprintEncodeDecodeRoundtrip) {
  expect_thread_invariant("nprint codec", [] {
    Rng rng(61);
    const flowgen::Dataset data = flowgen::build_uniform_dataset(2, rng);
    std::uint64_t h = kFnvOffset;
    for (const auto& flow : data.flows) {
      const nprint::Matrix matrix =
          nprint::encode_flow(flow, 32, /*pad_to_max=*/true);
      hash_bytes(h, matrix.data().data(),
                 matrix.data().size() * sizeof(float));
      const net::Flow decoded = nprint::decode_flow(matrix);
      const std::uint64_t fh = hash_flows({decoded});
      hash_bytes(h, &fh, sizeof(fh));
    }
    return h;
  });
}

}  // namespace
}  // namespace repro
