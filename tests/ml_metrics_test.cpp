#include "ml/metrics.hpp"

#include <gtest/gtest.h>

#include <set>

namespace repro::ml {
namespace {

TEST(Metrics, AccuracyBasics) {
  EXPECT_DOUBLE_EQ(accuracy({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(accuracy({1, 2, 3}, {1, 2, 4}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(accuracy({}, {}), 0.0);
  EXPECT_THROW(accuracy({1}, {1, 2}), std::invalid_argument);
}

TEST(Metrics, ConfusionMatrixLayout) {
  // actual -> predicted
  const auto cm = confusion_matrix({0, 1, 1, 0}, {0, 0, 1, 1}, 2);
  EXPECT_EQ(cm[0][0], 1u);  // actual 0 predicted 0
  EXPECT_EQ(cm[0][1], 1u);  // actual 0 predicted 1 (4th sample)
  EXPECT_EQ(cm[1][0], 1u);
  EXPECT_EQ(cm[1][1], 1u);
}

TEST(Metrics, ConfusionMatrixIgnoresOutOfRange) {
  const auto cm = confusion_matrix({0, 5}, {0, 1}, 2);
  EXPECT_EQ(cm[0][0], 1u);
  std::size_t total = 0;
  for (const auto& row : cm) {
    for (std::size_t v : row) total += v;
  }
  EXPECT_EQ(total, 1u);
}

TEST(Metrics, PerClassReportPerfectPrediction) {
  const auto reports = per_class_report({0, 1, 2}, {0, 1, 2}, 3);
  for (const auto& r : reports) {
    EXPECT_DOUBLE_EQ(r.precision, 1.0);
    EXPECT_DOUBLE_EQ(r.recall, 1.0);
    EXPECT_DOUBLE_EQ(r.f1, 1.0);
    EXPECT_EQ(r.support, 1u);
  }
}

TEST(Metrics, PerClassReportKnownValues) {
  // Class 0: tp=2, fn=1 (one 0 predicted as 1), fp=0 => p=1, r=2/3.
  const std::vector<int> actual = {0, 0, 0, 1, 1};
  const std::vector<int> predicted = {0, 0, 1, 1, 1};
  const auto reports = per_class_report(predicted, actual, 2);
  EXPECT_DOUBLE_EQ(reports[0].precision, 1.0);
  EXPECT_NEAR(reports[0].recall, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(reports[1].precision, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(reports[1].recall, 1.0);
}

TEST(Metrics, MacroF1SkipsEmptyClasses) {
  // Class 2 never appears in actual: excluded from the macro average.
  const std::vector<int> actual = {0, 0, 1, 1};
  const std::vector<int> predicted = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(macro_f1(predicted, actual, 3), 1.0);
}

TEST(Metrics, MacroF1WorstCase) {
  const std::vector<int> actual = {0, 0, 1, 1};
  const std::vector<int> predicted = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(macro_f1(predicted, actual, 2), 0.0);
}

}  // namespace
}  // namespace repro::ml
