// GEMM kernel layer (src/nn/kernels/gemm.hpp): every shape path the
// tensor ops route through — gemm_nn (matmul), gemm_nt (matmul_bt),
// gemm_tn (matmul_at) — checked against a naive double-accumulation
// reference over odd sizes that exercise the kMr row tails and kNr
// panel tails, plus the strided-view, accumulate-mode, IEEE-special
// (0 * inf must stay NaN) and arena-reuse contracts.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "nn/arena.hpp"
#include "nn/kernels/gemm.hpp"
#include "nn/tensor.hpp"

namespace repro::nn {
namespace {

std::vector<float> random_vec(std::size_t size, Rng& rng) {
  std::vector<float> v(size);
  for (auto& x : v) x = static_cast<float>(rng.gaussian());
  return v;
}

/// Naive reference: C[i,j] (+)= sum_p A(i,p) * B(p,j) with double
/// accumulation, against arbitrary strides.
void ref_gemm(std::size_t m, std::size_t n, std::size_t k, kernels::AView a,
              kernels::BView b, std::vector<float>& c, std::size_t ldc,
              kernels::Accumulate acc) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        sum += static_cast<double>(a.data[i * a.row_stride + p * a.k_stride]) *
               static_cast<double>(b.data[p * b.k_stride + j * b.col_stride]);
      }
      float& dst = c[i * ldc + j];
      dst = (acc == kernels::Accumulate::kAdd ? dst : 0.0f) +
            static_cast<float>(sum);
    }
  }
}

void expect_close(const std::vector<float>& got, const std::vector<float>& want,
                  const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-3f) << what << " at " << i;
  }
}

// Sizes straddle the kMr = 4 row tiles (1..5) and kNr = 16 panels
// (15/16/17), with odd k so nothing divides evenly.
const std::size_t kSizes[] = {1, 2, 3, 4, 5, 15, 16, 17, 33};

TEST(Kernels, GemmNnMatchesReferenceOverTails) {
  Rng rng(7);
  for (std::size_t m : kSizes) {
    for (std::size_t n : {std::size_t{1}, std::size_t{15}, std::size_t{16},
                          std::size_t{17}, std::size_t{40}}) {
      const std::size_t k = 13;
      const auto a = random_vec(m * k, rng);
      const auto b = random_vec(k * n, rng);
      std::vector<float> got(m * n, 0.5f), want(m * n, 0.5f);
      kernels::gemm_nn(m, k, n, a.data(), b.data(), got.data(),
                       kernels::Accumulate::kOverwrite);
      ref_gemm(m, n, k, {a.data(), k, 1}, {b.data(), n, 1}, want, n,
               kernels::Accumulate::kOverwrite);
      expect_close(got, want, "gemm_nn");
    }
  }
}

TEST(Kernels, GemmNtAndTnMatchReference) {
  Rng rng(11);
  for (std::size_t n : {std::size_t{3}, std::size_t{17}}) {
    for (std::size_t k : {std::size_t{5}, std::size_t{19}}) {
      const std::size_t d = 21;  // shared inner dimension
      const auto a = random_vec(n * d, rng);
      const auto b = random_vec(k * d, rng);
      // nt: C[n,k] = A[n,d] * B[k,d]^T
      std::vector<float> got(n * k), want(n * k);
      kernels::gemm_nt(n, d, k, a.data(), b.data(), got.data(),
                       kernels::Accumulate::kOverwrite);
      ref_gemm(n, k, d, {a.data(), d, 1}, {b.data(), 1, d}, want, k,
               kernels::Accumulate::kOverwrite);
      expect_close(got, want, "gemm_nt");
      // tn: C[d,k] = A2[n,d]^T * B2[n,k]
      const auto b2 = random_vec(n * k, rng);
      std::vector<float> got2(d * k), want2(d * k);
      kernels::gemm_tn(n, d, k, a.data(), b2.data(), got2.data(),
                       kernels::Accumulate::kOverwrite);
      ref_gemm(d, k, n, {a.data(), 1, d}, {b2.data(), k, 1}, want2, k,
               kernels::Accumulate::kOverwrite);
      expect_close(got2, want2, "gemm_tn");
    }
  }
}

TEST(Kernels, AccumulateAddFoldsIntoDestination) {
  Rng rng(13);
  const std::size_t m = 6, k = 9, n = 18;
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(k * n, rng);
  std::vector<float> got(m * n, 2.0f), want(m * n, 2.0f);
  kernels::gemm_nn(m, k, n, a.data(), b.data(), got.data(),
                   kernels::Accumulate::kAdd);
  ref_gemm(m, n, k, {a.data(), k, 1}, {b.data(), n, 1}, want, n,
           kernels::Accumulate::kAdd);
  expect_close(got, want, "gemm_nn kAdd");
}

TEST(Kernels, StridedViewsAndWideLdc) {
  Rng rng(17);
  const std::size_t m = 5, k = 7, n = 19, ldc = 32;
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(k * n, rng);
  std::vector<float> got(m * ldc, 0.0f), want(m * ldc, 0.0f);
  // A transposed in memory ([k, m], k_stride = m), C with padding cols.
  std::vector<float> at(k * m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) at[p * m + i] = a[i * k + p];
  }
  const kernels::AView av{at.data(), 1, m};
  const kernels::BView bv{b.data(), n, 1};
  kernels::gemm(m, n, k, av, bv, got.data(), ldc,
                kernels::Accumulate::kOverwrite);
  ref_gemm(m, n, k, av, bv, want, ldc, kernels::Accumulate::kOverwrite);
  expect_close(got, want, "strided gemm");
  // Padding columns beyond n must be untouched (still zero).
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = n; j < ldc; ++j) {
      EXPECT_EQ(got[i * ldc + j], 0.0f) << "ldc padding clobbered";
    }
  }
}

TEST(Kernels, DegenerateDimensions) {
  std::vector<float> a(8, 1.0f), b(8, 1.0f), c(4, 3.0f);
  // k == 0, kOverwrite: rows must be zeroed.
  kernels::gemm_nn(2, 0, 2, a.data(), b.data(), c.data(),
                   kernels::Accumulate::kOverwrite);
  for (float x : c) EXPECT_EQ(x, 0.0f);
  // k == 0, kAdd: destination untouched.
  std::vector<float> c2(4, 3.0f);
  kernels::gemm_nn(2, 0, 2, a.data(), b.data(), c2.data(),
                   kernels::Accumulate::kAdd);
  for (float x : c2) EXPECT_EQ(x, 3.0f);
  // m == 0 / n == 0: no-ops, must not crash.
  kernels::gemm_nn(0, 4, 2, a.data(), b.data(), c.data(),
                   kernels::Accumulate::kOverwrite);
  kernels::gemm_nn(2, 4, 0, a.data(), b.data(), c.data(),
                   kernels::Accumulate::kOverwrite);
}

// Regression for the zero-skip bug: the old matmul/matmul_at skipped
// a == 0.0f products, silently dropping 0 * inf = NaN and turning
// exploded activations into plausible-looking numbers.
TEST(Kernels, ZeroTimesInfPropagatesNaN) {
  const float inf = std::numeric_limits<float>::infinity();
  const float qnan = std::numeric_limits<float>::quiet_NaN();
  {
    Tensor a({1, 2});
    a[0] = 0.0f;
    a[1] = 1.0f;
    Tensor b({2, 1});
    b[0] = inf;
    b[1] = 1.0f;
    const Tensor c = matmul(a, b);
    EXPECT_TRUE(std::isnan(c[0])) << "matmul dropped 0 * inf";
  }
  {
    Tensor a({2, 1});
    a[0] = 0.0f;
    a[1] = 1.0f;
    Tensor b({2, 1});
    b[0] = inf;
    b[1] = 1.0f;
    const Tensor c = matmul_at(a, b);  // [1, 1] = sum over the 2 rows
    EXPECT_TRUE(std::isnan(c[0])) << "matmul_at dropped 0 * inf";
  }
  {
    Tensor a({1, 2});
    a[0] = 0.0f;
    a[1] = 1.0f;
    Tensor b({1, 2});
    b[0] = qnan;
    b[1] = 1.0f;
    const Tensor c = matmul_bt(a, b);
    EXPECT_TRUE(std::isnan(c[0])) << "matmul_bt dropped 0 * NaN";
  }
}

TEST(Kernels, MatmulShapeMismatchStillThrows) {
  Tensor a({2, 3});
  Tensor b({4, 5});
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
  EXPECT_THROW(matmul_bt(a, b), std::invalid_argument);
  EXPECT_THROW(matmul_at(a, b), std::invalid_argument);
  Tensor one({3});
  EXPECT_THROW(matmul(one, b), std::invalid_argument);
}

TEST(Kernels, ArenaReusesBuffersAcrossCalls) {
  TensorArena arena;
  {
    TensorArena::Handle h = arena.acquire(64);
    ASSERT_TRUE(h);
    EXPECT_EQ(h.size(), 64u);
    h.data()[0] = 1.0f;
  }
  const auto after_first = arena.stats();
  EXPECT_EQ(after_first.allocs, 1u);
  EXPECT_EQ(after_first.free_buffers, 1u);
  // Same-or-smaller request must reuse, not allocate.
  for (int i = 0; i < 5; ++i) {
    TensorArena::Handle h = arena.acquire(32);
    EXPECT_TRUE(h);
  }
  const auto after = arena.stats();
  EXPECT_EQ(after.allocs, 1u);
  EXPECT_EQ(after.reuses, 5u);
  EXPECT_GT(after.reuses, after.allocs)
      << "steady-state acquires must come from the free list";
  arena.trim();
  EXPECT_EQ(arena.stats().free_buffers, 0u);
}

TEST(Kernels, RepeatedGemmHitsArenaFreeList) {
  TensorArena& arena = TensorArena::scratch();
  Rng rng(23);
  const std::size_t m = 8, k = 24, n = 24;
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(k * n, rng);
  std::vector<float> c(m * n);
  kernels::gemm_nn(m, k, n, a.data(), b.data(), c.data(),
                   kernels::Accumulate::kOverwrite);  // warm the free list
  const auto before = arena.stats();
  for (int i = 0; i < 10; ++i) {
    kernels::gemm_nn(m, k, n, a.data(), b.data(), c.data(),
                     kernels::Accumulate::kOverwrite);
  }
  const auto after = arena.stats();
  EXPECT_EQ(after.allocs, before.allocs)
      << "steady-state gemm must not allocate";
  EXPECT_GE(after.reuses, before.reuses + 10);
}

}  // namespace
}  // namespace repro::nn
