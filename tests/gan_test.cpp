#include "gan/netflow_gan.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "flowgen/generator.hpp"

namespace repro::gan {
namespace {

TEST(NetFlow, ExtractionFromKnownFlow) {
  net::Flow flow;
  flow.label = 4;
  flow.packets.push_back(net::make_udp_packet(0x0A000001, 0x0B000001, 40000, 3478, 100, 0.0));
  flow.packets.push_back(net::make_udp_packet(0x0B000001, 0x0A000001, 3478, 40000, 200, 1.0));
  flow.packets.push_back(net::make_udp_packet(0x0A000001, 0x0B000001, 40000, 3478, 100, 2.0));
  const NetFlowRecord r = to_netflow(flow);
  EXPECT_EQ(r.label, 4);
  EXPECT_EQ(r.protocol, net::IpProto::kUdp);
  EXPECT_DOUBLE_EQ(r.duration, 2.0);
  EXPECT_DOUBLE_EQ(r.packet_count, 3.0);
  EXPECT_DOUBLE_EQ(r.byte_count, 128.0 + 228.0 + 128.0);
  EXPECT_NEAR(r.mean_interarrival, 1.0, 1e-9);
  EXPECT_NEAR(r.upstream_fraction, 2.0 / 3.0, 1e-9);
}

TEST(NetFlow, FeatureVectorLayout) {
  NetFlowRecord r;
  r.protocol = net::IpProto::kIcmp;
  r.duration = std::exp(1.0) - 1.0;  // log1p -> exactly 1.0
  const auto f = r.features();
  ASSERT_EQ(f.size(), NetFlowRecord::kFeatureCount);
  EXPECT_EQ(f[0], 0.0f);
  EXPECT_EQ(f[1], 0.0f);
  EXPECT_EQ(f[2], 1.0f);
  EXPECT_NEAR(f[3], 1.0f, 1e-5);
}

TEST(NetFlow, FeatureNamesSizeMatches) {
  EXPECT_EQ(NetFlowRecord::feature_names().size(),
            NetFlowRecord::kFeatureCount);
}

TEST(NetFlow, FromFeaturesRoundTrip) {
  NetFlowRecord r;
  r.protocol = net::IpProto::kUdp;
  r.duration = 12.5;
  r.packet_count = 420.0;
  r.byte_count = 123456.0;
  r.mean_packet_size = 294.0;
  r.mean_interarrival = 0.03;
  r.upstream_fraction = 0.4;
  const NetFlowRecord back = from_features(r.features(), 3);
  EXPECT_EQ(back.label, 3);
  EXPECT_EQ(back.protocol, net::IpProto::kUdp);
  EXPECT_NEAR(back.duration, r.duration, 0.01);
  EXPECT_NEAR(back.packet_count, r.packet_count, 0.5);
  EXPECT_NEAR(back.upstream_fraction, 0.4, 1e-5);
}

TEST(NetFlow, BatchExtraction) {
  Rng rng(1);
  std::vector<net::Flow> flows;
  for (int i = 0; i < 5; ++i) {
    flows.push_back(flowgen::generate_flow(flowgen::App::kNetflix, rng));
  }
  const auto records = to_netflow(flows);
  ASSERT_EQ(records.size(), 5u);
  for (const auto& r : records) {
    EXPECT_EQ(r.protocol, net::IpProto::kTcp);
    EXPECT_EQ(r.label, 0);
  }
}

std::vector<NetFlowRecord> training_records(std::size_t per_class,
                                            std::size_t classes) {
  Rng rng(9);
  std::vector<NetFlowRecord> records;
  for (std::size_t cls = 0; cls < classes; ++cls) {
    for (std::size_t i = 0; i < per_class; ++i) {
      net::Flow flow =
          flowgen::generate_flow(static_cast<flowgen::App>(cls), rng);
      flow.label = static_cast<int>(cls);
      records.push_back(to_netflow(flow));
    }
  }
  return records;
}

GanConfig tiny_gan_config() {
  GanConfig cfg;
  cfg.epochs = 30;
  cfg.hidden_dim = 32;
  cfg.num_classes = 3;
  return cfg;
}

TEST(NetFlowGan, TrainingRunsAndLossesFinite) {
  NetFlowGan gan(tiny_gan_config());
  const auto stats = gan.fit(training_records(20, 3));
  EXPECT_GT(stats.steps, 0u);
  EXPECT_TRUE(std::isfinite(stats.final_d_loss));
  EXPECT_TRUE(std::isfinite(stats.final_g_loss));
}

TEST(NetFlowGan, SampleCountAndLabelRange) {
  NetFlowGan gan(tiny_gan_config());
  gan.fit(training_records(15, 3));
  const auto samples = gan.sample(40);
  ASSERT_EQ(samples.size(), 40u);
  for (const auto& r : samples) {
    EXPECT_GE(r.label, 0);
    EXPECT_LT(r.label, 3);
    EXPECT_GE(r.upstream_fraction, 0.0);
    EXPECT_LE(r.upstream_fraction, 1.0);
    EXPECT_GE(r.packet_count, 0.0);
  }
}

TEST(NetFlowGan, LabelDistributionSumsToSampleCount) {
  NetFlowGan gan(tiny_gan_config());
  gan.fit(training_records(15, 3));
  const auto dist = gan.label_distribution(100);
  ASSERT_EQ(dist.size(), 3u);
  double total = 0.0;
  for (double d : dist) total += d;
  EXPECT_DOUBLE_EQ(total, 100.0);
}

TEST(NetFlowGan, EmptyFitIsNoOp) {
  NetFlowGan gan(tiny_gan_config());
  const auto stats = gan.fit({});
  EXPECT_EQ(stats.steps, 0u);
}

TEST(PerClassGan, SamplesCarryRequestedLabels) {
  GanConfig cfg = tiny_gan_config();
  cfg.epochs = 10;
  PerClassNetFlowGan gan(cfg);
  gan.fit(training_records(10, 3));
  const auto samples = gan.sample({5, 0, 7});
  ASSERT_EQ(samples.size(), 12u);
  std::size_t class0 = 0, class2 = 0;
  for (const auto& r : samples) {
    if (r.label == 0) ++class0;
    if (r.label == 2) ++class2;
    EXPECT_NE(r.label, 1);
  }
  EXPECT_EQ(class0, 5u);
  EXPECT_EQ(class2, 7u);
}

TEST(NetFlowGan, SingleClassConfigDoesNotDivideByZero) {
  GanConfig cfg = tiny_gan_config();
  cfg.num_classes = 1;
  cfg.epochs = 5;
  NetFlowGan gan(cfg);
  gan.fit(training_records(10, 1));
  const auto samples = gan.sample(10);
  for (const auto& r : samples) {
    EXPECT_EQ(r.label, 0);
  }
}

TEST(NetFlowGan, FromFeaturesClampsProtocolOneHot) {
  // Raw generator output is unconstrained; the arg-max decode must cope
  // with negative and >1 values.
  std::vector<float> features(NetFlowRecord::kFeatureCount, 0.0f);
  features[0] = -0.2f;
  features[1] = 1.7f;
  features[2] = 0.3f;
  features[8] = 2.5f;  // upstream fraction out of range
  const NetFlowRecord r = from_features(features, 2);
  EXPECT_EQ(r.protocol, net::IpProto::kUdp);
  EXPECT_DOUBLE_EQ(r.upstream_fraction, 1.0);
}

TEST(NetFlowGan, DeterministicForSameSeed) {
  const auto records = training_records(10, 3);
  NetFlowGan a(tiny_gan_config()), b(tiny_gan_config());
  a.fit(records);
  b.fit(records);
  const auto sa = a.sample(5);
  const auto sb = b.sample(5);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(sa[i].label, sb[i].label);
    EXPECT_DOUBLE_EQ(sa[i].duration, sb[i].duration);
  }
}

}  // namespace
}  // namespace repro::gan
