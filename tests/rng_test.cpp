#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace repro {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformU64Unbiased) {
  Rng rng(11);
  std::vector<int> counts(5, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.uniform_u64(5)];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.02);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(3, 6);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 6);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianScaled) {
  Rng rng(19);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ParetoAboveScale) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, PoissonMean) {
  Rng rng(37);
  const int n = 20000;
  double small_sum = 0.0, large_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    small_sum += static_cast<double>(rng.poisson(3.0));
    large_sum += static_cast<double>(rng.poisson(50.0));
  }
  EXPECT_NEAR(small_sum / n, 3.0, 0.1);
  EXPECT_NEAR(large_sum / n, 50.0, 0.5);
}

TEST(Rng, GeometricMean) {
  Rng rng(41);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.geometric(0.25));
  // Mean failures before success = (1-p)/p = 3.
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, WeightedChoiceFollowsWeights) {
  Rng rng(43);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_choice(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.02);
}

TEST(Rng, PermutationIsValid) {
  Rng rng(47);
  const auto perm = rng.permutation(100);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, PermutationEmptyAndSingle) {
  Rng rng(53);
  EXPECT_TRUE(rng.permutation(0).empty());
  const auto one = rng.permutation(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(59);
  Rng child = parent.fork();
  // Child stream differs from the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, LogNormalMedian) {
  Rng rng(61);
  std::vector<double> xs(20001);
  for (auto& x : xs) x = rng.log_normal(1.0, 0.5);
  std::nth_element(xs.begin(), xs.begin() + 10000, xs.end());
  EXPECT_NEAR(xs[10000], std::exp(1.0), 0.1);
}

}  // namespace
}  // namespace repro
