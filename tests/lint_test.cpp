// End-to-end tests for tools/repro_lint against the committed fixture
// corpus in tests/lint_fixtures/. Each fixture is a minimal file that
// violates exactly one rule (placed so the rule's path scoping fires),
// plus clean files proving the lexer ignores comments and strings.
//
// The lint binary and fixture directory are injected at configure time:
//   REPRO_LINT_BIN      — $<TARGET_FILE:repro_lint>
//   REPRO_LINT_FIXTURES — ${CMAKE_SOURCE_DIR}/tests/lint_fixtures

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>
#include <vector>

namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;
};

// Runs repro_lint with a fixture dir as --root (so repo-relative path
// scoping treats fixtures as if they lived at their mirrored location)
// and returns exit code + combined output. `subdir` selects one of the
// self-contained fixture trees (arch_cycle, ...); `env` is an optional
// VAR=value prefix (REPRO_THREADS for the determinism tests).
LintRun run_lint_in(const std::string& subdir, const std::string& env,
                    const std::vector<std::string>& args) {
  std::string cmd = "cd \"";
  cmd += REPRO_LINT_FIXTURES;
  if (!subdir.empty()) {
    cmd += '/';
    cmd += subdir;
  }
  cmd += "\" && ";
  if (!env.empty()) {
    cmd += env;
    cmd += ' ';
  }
  cmd += '"';
  cmd += REPRO_LINT_BIN;
  cmd += "\" --root .";
  for (const std::string& a : args) {
    cmd += " \"";
    cmd += a;
    cmd += '"';
  }
  cmd += " 2>&1";

  LintRun run;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    return run;
  }
  std::array<char, 512> buf{};
  while (std::fgets(buf.data(), static_cast<int>(buf.size()), pipe) != nullptr) {
    run.output += buf.data();
  }
  const int status = pclose(pipe);
  if (status >= 0 && WIFEXITED(status)) {
    run.exit_code = WEXITSTATUS(status);
  }
  return run;
}

LintRun run_lint(const std::vector<std::string>& args) {
  return run_lint_in("", "", args);
}

// Counts occurrences of `needle` in `haystack`.
int count_of(const std::string& haystack, const std::string& needle) {
  int n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

struct RuleCase {
  const char* fixture;
  const char* rule_id;
};

// One fixture per rule class; each must fire its own rule exactly once
// and nothing else.
const RuleCase kRuleCases[] = {
    {"src/flowgen/rl001_raw_rng.cpp.fixture", "RL001"},
    {"src/nn/rl002_raw_thread.cpp.fixture", "RL002"},
    {"src/eval/rl003_raw_getenv.cpp.fixture", "RL003"},
    {"src/ml/rl004_stdio.cpp.fixture", "RL004"},
    {"src/nprint/rl005_c_cast.cpp.fixture", "RL005"},
    {"src/diffusion/rl006_wall_clock.cpp.fixture", "RL006"},
    {"src/gan/rl007_bad_metric_name.cpp.fixture", "RL007"},
    {"src/replay/rl008_missing_pragma_once.hpp.fixture", "RL008"},
    {"src/net/rl009_using_namespace.cpp.fixture", "RL009"},
    {"src/serve/rl011_bad_serve_prefix.cpp.fixture", "RL011"},
    {"src/replay/rl012_raw_socket.cpp.fixture", "RL012"},
    {"src/flowgen/rl013_unordered_to_sink.cpp.fixture", "RL013"},
    {"src/replay/rl014_pointer_order.cpp.fixture", "RL014"},
    {"src/diffusion/rl015_thread_id.cpp.fixture", "RL015"},
    {"src/nn/rl016_atomic_float.cpp.fixture", "RL016"},
    {"src/net/rl017_reinterpret.cpp.fixture", "RL017"},
    {"src/nn/rl023_int8_outside_kernels.cpp.fixture", "RL023"},
    {"src/replay/rl024_bad_replay_prefix.cpp.fixture", "RL024"},
};

class LintRuleFires : public ::testing::TestWithParam<RuleCase> {};

TEST_P(LintRuleFires, FiresExactlyItsOwnRule) {
  const RuleCase& c = GetParam();
  const LintRun run = run_lint({c.fixture});
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(count_of(run.output, std::string("[") + c.rule_id + "/"), 1)
      << run.output;
  EXPECT_EQ(count_of(run.output, "error:"), 1) << run.output;
}

INSTANTIATE_TEST_SUITE_P(AllRules, LintRuleFires,
                         ::testing::ValuesIn(kRuleCases),
                         [](const ::testing::TestParamInfo<RuleCase>& param_info) {
                           return param_info.param.rule_id;
                         });

TEST(LintSuppression, AllowWithoutReasonFiresAndSuppressesNothing) {
  const LintRun run =
      run_lint({"src/common/rl010_allow_no_reason.cpp.fixture"});
  EXPECT_EQ(run.exit_code, 1) << run.output;
  // The bare allow() is itself a finding AND the rule it names still fires.
  EXPECT_EQ(count_of(run.output, "[RL010/"), 1) << run.output;
  EXPECT_EQ(count_of(run.output, "[RL006/"), 1) << run.output;
}

TEST(LintSuppression, JustifiedAllowSilencesTheNamedRule) {
  const LintRun run = run_lint({"src/diffusion/rl006_suppressed.cpp.fixture"});
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(count_of(run.output, "error:"), 0) << run.output;
}

TEST(LintClean, CommentsAndStringsDoNotFire) {
  const LintRun run = run_lint({"src/common/clean.cpp.fixture"});
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(LintClean, HeaderWithPragmaOnceIsClean) {
  const LintRun run = run_lint({"src/common/clean.hpp.fixture"});
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(LintScope, StdioIsExemptOutsideSrc) {
  const LintRun run = run_lint({"bench/stdio_ok.cpp.fixture"});
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

// src/serve/ is covered by the lane-model and wall-clock rules; only
// the two dedicated translation units (worker = the background pump's
// thread, clock = the ClockFn wrapper) carry path exemptions.
TEST(LintScope, ServeRawThreadFiresOutsideWorker) {
  const LintRun run = run_lint({"src/serve/rl002_raw_thread.cpp.fixture"});
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(count_of(run.output, "[RL002/"), 1) << run.output;
}

TEST(LintScope, ServeWorkerIsExemptFromRawThread) {
  const LintRun run = run_lint({"src/serve/worker.cpp.fixture"});
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(LintScope, ServeWallClockFiresOutsideClock) {
  const LintRun run = run_lint({"src/serve/rl006_wall_clock.cpp.fixture"});
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(count_of(run.output, "[RL006/"), 1) << run.output;
}

TEST(LintScope, ServeClockIsExemptFromWallClock) {
  const LintRun run = run_lint({"src/serve/clock.cpp.fixture"});
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

// RL011 is scoped to src/serve/: a serve.-prefixed name is clean there,
// and non-serve subsystems may use their own prefixes freely (the gan
// fixture's bad grammar fires RL007 but never RL011).
TEST(LintScope, ServePrefixedTelemetryIsClean) {
  const LintRun run = run_lint({"src/serve/rl011_good_prefix.cpp.fixture"});
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(LintScope, ServePrefixRuleDoesNotApplyOutsideServe) {
  const LintRun run = run_lint({"src/gan/rl007_bad_metric_name.cpp.fixture"});
  EXPECT_EQ(count_of(run.output, "[RL011/"), 0) << run.output;
}

// RL012 confines the socket/poll system headers to the socket
// front-end: the same includes that fire in src/replay are clean under
// src/serve/net/.
TEST(LintScope, SocketHeadersAllowedInServeNet) {
  const LintRun run = run_lint({"src/serve/net/rl012_socket_ok.cpp.fixture"});
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(count_of(run.output, "[RL012/"), 0) << run.output;
}

// RL023 confines the int8 storage types to the quantized-GEMM kernel
// directory: the same tokens that fire in src/nn are clean under
// src/nn/kernels/, and files outside src/nn are never in scope.
// RL024 mirrors the serve contracts for replay: clock reads confine to
// emit/pacer.cpp (the Pacer implementation), and telemetry registered
// from src/replay/ must carry the replay. prefix. A raw clock read
// elsewhere in replay/ double-fires — the repo-wide determinism rule
// AND the replay confinement angle — which is intentional: the finding
// names both the global contract and the local remedy.
TEST(LintScope, ReplayWallClockFiresBothDeterminismAndConfinement) {
  const LintRun run =
      run_lint({"src/replay/emit/rl024_wall_clock.cpp.fixture"});
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_EQ(count_of(run.output, "[RL006/"), 1) << run.output;
  EXPECT_EQ(count_of(run.output, "[RL024/"), 1) << run.output;
}

TEST(LintScope, ReplayPacerIsExemptFromWallClock) {
  const LintRun run = run_lint({"src/replay/emit/pacer.cpp.fixture"});
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(LintScope, ReplayPrefixedTelemetryIsClean) {
  const LintRun run = run_lint({"src/replay/rl024_good_prefix.cpp.fixture"});
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(LintScope, ReplayPrefixRuleDoesNotApplyOutsideReplay) {
  // The serve fixture's escaped prefix fires RL011, never RL024.
  const LintRun run =
      run_lint({"src/serve/rl011_bad_serve_prefix.cpp.fixture"});
  EXPECT_EQ(count_of(run.output, "[RL024/"), 0) << run.output;
}

TEST(LintScope, Int8AllowedInNnKernels) {
  const LintRun run = run_lint({"src/nn/kernels/rl023_int8_ok.cpp.fixture"});
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(count_of(run.output, "[RL023/"), 0) << run.output;
}

TEST(LintScope, Int8RuleDoesNotApplyOutsideNn) {
  // The reinterpret fixture under src/net carries int8 tokens; only its
  // own rule fires — the nn-scoped int8 confinement never does.
  const LintRun run = run_lint({"src/net/rl017_reinterpret.cpp.fixture"});
  EXPECT_EQ(count_of(run.output, "[RL023/"), 0) << run.output;
}

// RL013 only fires when the iteration can reach a sink: an
// order-insensitive reduction over the same container type is clean.
TEST(LintDeterminism, UnorderedIterationWithoutSinkIsClean) {
  const LintRun run =
      run_lint({"src/flowgen/rl013_unordered_no_sink.cpp.fixture"});
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

// ---------------------------------------------------------------------------
// Architecture pass (RL020-RL022) over the self-contained fixture
// trees. Each tree mirrors a src/ layout and violates exactly one rule.

struct ArchCase {
  const char* tree;        // subdirectory under tests/lint_fixtures/
  const char* layers;      // manifest inside the tree, or nullptr
  const char* rule_id;     // expected rule, or nullptr for clean
  const char* name;        // test-case label
};

const ArchCase kArchCases[] = {
    {"arch_cycle", nullptr, "RL020", "Cycle"},
    {"arch_layers", "layers.txt", "RL021", "UpwardInclude"},
    {"arch_confine", "layers.txt", "RL021", "ConfinedHeader"},
    {"arch_selfcontained", nullptr, "RL022", "CompanionNotFirst"},
    {"arch_dangling", nullptr, "RL022", "DanglingInclude"},
    {"arch_clean", "layers.txt", nullptr, "CleanWithAllowEdge"},
};

class LintArchitecture : public ::testing::TestWithParam<ArchCase> {};

TEST_P(LintArchitecture, TreeFiresExactlyItsRule) {
  const ArchCase& c = GetParam();
  std::vector<std::string> args;
  if (c.layers != nullptr) {
    args.push_back("--layers");
    args.push_back(c.layers);
  }
  args.push_back("--include-fixtures");
  args.push_back("src");
  const LintRun run = run_lint_in(c.tree, "", args);
  if (c.rule_id == nullptr) {
    EXPECT_EQ(run.exit_code, 0) << run.output;
    EXPECT_EQ(count_of(run.output, "error:"), 0) << run.output;
  } else {
    EXPECT_EQ(run.exit_code, 1) << run.output;
    EXPECT_EQ(count_of(run.output, std::string("[") + c.rule_id + "/"), 1)
        << run.output;
    EXPECT_EQ(count_of(run.output, "error:"), 1) << run.output;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTrees, LintArchitecture,
                         ::testing::ValuesIn(kArchCases),
                         [](const ::testing::TestParamInfo<ArchCase>& param_info) {
                           return std::string(param_info.param.name);
                         });

// ---------------------------------------------------------------------------
// Engine determinism: the --json stream over the whole fixture corpus
// must be byte-identical at every lane count (per-chunk buffers merged
// in path order; timings are deliberately not part of the stream).

TEST(LintEngine, JsonOutputIsByteIdenticalAcrossLaneCounts) {
  const std::vector<std::string> args = {"--json", "--include-fixtures",
                                         "src"};
  const LintRun one = run_lint_in("", "REPRO_THREADS=1", args);
  const LintRun two = run_lint_in("", "REPRO_THREADS=2", args);
  const LintRun eight = run_lint_in("", "REPRO_THREADS=8", args);
  ASSERT_EQ(one.exit_code, 1) << one.output;  // rule fixtures do fire
  EXPECT_NE(one.output.find("\"findings\""), std::string::npos) << one.output;
  EXPECT_EQ(one.output, two.output);
  EXPECT_EQ(one.output, eight.output);
  EXPECT_EQ(two.exit_code, 1);
  EXPECT_EQ(eight.exit_code, 1);
}

TEST(LintEngine, GraphDotEmitsModuleEdges) {
  const LintRun run = run_lint_in(
      "arch_clean", "",
      {"--layers", "layers.txt", "--graph-dot", "-", "--include-fixtures",
       "src"});
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("digraph include_graph"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("\"mid\" -> \"peer\""), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("\"mid\" -> \"base\""), std::string::npos)
      << run.output;
}

TEST(LintCli, BadManifestIsUsageError) {
  const LintRun run = run_lint_in(
      "arch_clean", "",
      {"--layers", "does_not_exist.txt", "--include-fixtures", "src"});
  EXPECT_EQ(run.exit_code, 2) << run.output;
}

struct FormatCase {
  const char* fixture;
  const char* rule_id;
};

const FormatCase kFormatCases[] = {
    {"format/rf001_trailing_ws.cpp.fixture", "RF001"},
    {"format/rf002_tab_indent.cpp.fixture", "RF002"},
    {"format/rf003_crlf.cpp.fixture", "RF003"},
    {"format/rf004_no_final_newline.cpp.fixture", "RF004"},
    {"format/rf005_long_line.cpp.fixture", "RF005"},
};

class LintFormatFires : public ::testing::TestWithParam<FormatCase> {};

TEST_P(LintFormatFires, FiresItsFormatRule) {
  const FormatCase& c = GetParam();
  const LintRun run = run_lint({"--format-check", c.fixture});
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_GE(count_of(run.output, std::string("[") + c.rule_id + "/"), 1)
      << run.output;
}

INSTANTIATE_TEST_SUITE_P(
    AllFormatRules, LintFormatFires, ::testing::ValuesIn(kFormatCases),
    [](const ::testing::TestParamInfo<FormatCase>& param_info) {
      return param_info.param.rule_id;
    });

TEST(LintFormat, CleanFilePasses) {
  const LintRun run = run_lint({"--format-check", "format/rf_clean.cpp.fixture"});
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(LintCli, ListRulesNamesEveryRuleClass) {
  const LintRun run = run_lint({"--list-rules"});
  EXPECT_EQ(run.exit_code, 0) << run.output;
  for (const RuleCase& c : kRuleCases) {
    EXPECT_NE(run.output.find(c.rule_id), std::string::npos)
        << "missing " << c.rule_id << " in:\n"
        << run.output;
  }
  EXPECT_NE(run.output.find("RL010"), std::string::npos) << run.output;
  // Whole-corpus rules have no single-file fixture row above; the rule
  // table must still document them.
  for (const char* id : {"RL020", "RL021", "RL022"}) {
    EXPECT_NE(run.output.find(id), std::string::npos)
        << "missing " << id << " in:\n"
        << run.output;
  }
}

TEST(LintCli, UnknownFlagIsUsageError) {
  const LintRun run = run_lint({"--definitely-not-a-flag"});
  EXPECT_EQ(run.exit_code, 2) << run.output;
}

}  // namespace
