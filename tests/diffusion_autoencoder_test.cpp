#include "diffusion/autoencoder.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "flowgen/generator.hpp"

namespace repro::diffusion {
namespace {

AutoencoderConfig tiny_config() {
  AutoencoderConfig cfg;
  cfg.hidden_dim = 64;
  cfg.latent_dim = 12;
  return cfg;
}

nn::Tensor sample_rows(std::size_t count, Rng& rng) {
  nn::Tensor rows({count, nprint::kBitsPerPacket});
  for (std::size_t i = 0; i < count; ++i) {
    const auto app = static_cast<flowgen::App>(rng.uniform_u64(3));
    const net::Flow flow = flowgen::generate_flow(app, 4, rng);
    const auto row = nprint::encode_packet(flow.packets[0]);
    std::copy(row.begin(), row.end(),
              rows.data() + i * nprint::kBitsPerPacket);
  }
  return rows;
}

TEST(Autoencoder, EncodeDecodeShapes) {
  Rng rng(1);
  PacketAutoencoder ae(tiny_config(), rng);
  nn::Tensor rows({5, nprint::kBitsPerPacket});
  const nn::Tensor z = ae.encode(rows);
  EXPECT_EQ(z.shape(), (std::vector<std::size_t>{5, 12}));
  const nn::Tensor recon = ae.decode(z);
  EXPECT_EQ(recon.shape(), rows.shape());
}

TEST(Autoencoder, TrainingReducesReconstructionLoss) {
  Rng rng(2);
  PacketAutoencoder ae(tiny_config(), rng);
  const nn::Tensor rows = sample_rows(48, rng);
  const float before = ae.reconstruction_loss(rows);
  ae.train(rows, /*epochs=*/12, /*batch_size=*/16, /*lr=*/2e-3f, rng);
  const float after = ae.reconstruction_loss(rows);
  EXPECT_LT(after, before * 0.5f);
}

TEST(Autoencoder, MatrixRoundTripShapes) {
  Rng rng(3);
  PacketAutoencoder ae(tiny_config(), rng);
  const net::Flow flow = flowgen::generate_flow(flowgen::App::kNetflix, 6, rng);
  const nprint::Matrix matrix = nprint::encode_flow(flow, 8, true);
  const nn::Tensor latent = ae.encode_matrix(matrix);
  EXPECT_EQ(latent.shape(), (std::vector<std::size_t>{1, 12, 8}));
  const nprint::Matrix back = ae.decode_matrix(latent);
  EXPECT_EQ(back.rows(), 8u);
  EXPECT_EQ(back.cols(), nprint::kBitsPerPacket);
}

TEST(Autoencoder, EncodeMatrixTransposesConsistently) {
  // encode_matrix must place packet t's latent at [:, t].
  Rng rng(4);
  PacketAutoencoder ae(tiny_config(), rng);
  const net::Flow flow = flowgen::generate_flow(flowgen::App::kTeams, 4, rng);
  const nprint::Matrix matrix = nprint::encode_flow(flow, 4, true);
  const nn::Tensor latent = ae.encode_matrix(matrix);

  nn::Tensor row0({1, nprint::kBitsPerPacket});
  std::copy(matrix.data().begin(),
            matrix.data().begin() + nprint::kBitsPerPacket, row0.data());
  const nn::Tensor z0 = ae.encode(row0);
  for (std::size_t c = 0; c < 12; ++c) {
    EXPECT_FLOAT_EQ(latent.at3(0, c, 0), z0.at2(0, c));
  }
}

TEST(Autoencoder, ParameterCountMatchesArchitecture) {
  Rng rng(5);
  AutoencoderConfig cfg = tiny_config();
  PacketAutoencoder ae(cfg, rng);
  std::size_t total = 0;
  for (nn::Parameter* p : ae.parameters()) total += p->value.size();
  const std::size_t expected =
      (cfg.input_dim * cfg.hidden_dim + cfg.hidden_dim) +
      (cfg.hidden_dim * cfg.latent_dim + cfg.latent_dim) +
      (cfg.latent_dim * cfg.hidden_dim + cfg.hidden_dim) +
      (cfg.hidden_dim * cfg.input_dim + cfg.input_dim);
  EXPECT_EQ(total, expected);
}

TEST(Autoencoder, RegionWeightingFlagChangesLoss) {
  // Same data, same seed: the weighted loss differs from the plain MSE
  // (it emphasizes the small UDP/ICMP regions), while both train.
  Rng rng_a(21), rng_b(21);
  AutoencoderConfig weighted = tiny_config();
  AutoencoderConfig plain = tiny_config();
  plain.region_weighting = false;
  PacketAutoencoder ae_weighted(weighted, rng_a);
  PacketAutoencoder ae_plain(plain, rng_b);
  Rng data_rng(22);
  const nn::Tensor rows = sample_rows(32, data_rng);
  Rng train_a(23), train_b(23);
  const float loss_weighted = ae_weighted.train(rows, 3, 16, 2e-3f, train_a);
  const float loss_plain = ae_plain.train(rows, 3, 16, 2e-3f, train_b);
  EXPECT_TRUE(std::isfinite(loss_weighted));
  EXPECT_TRUE(std::isfinite(loss_plain));
  EXPECT_NE(loss_weighted, loss_plain);
}

TEST(Autoencoder, LearnsVacancyStructure) {
  // After training on TCP-only rows, reconstructions must clearly
  // separate occupied (TCP/IPv4) regions from vacant (UDP/ICMP) ones.
  Rng rng(6);
  PacketAutoencoder ae(tiny_config(), rng);
  nn::Tensor rows({40, nprint::kBitsPerPacket});
  for (std::size_t i = 0; i < 40; ++i) {
    const net::Flow flow =
        flowgen::generate_flow(flowgen::App::kNetflix, 4, rng);
    const auto row = nprint::encode_packet(flow.packets[0]);
    std::copy(row.begin(), row.end(), rows.data() + i * nprint::kBitsPerPacket);
  }
  ae.train(rows, 40, 16, 2e-3f, rng);
  const nn::Tensor recon = ae.decode(ae.encode(rows));
  // UDP region (vacant in TCP rows) must reconstruct clearly negative.
  double udp_mean = 0.0;
  std::size_t n = 0;
  for (std::size_t r = 0; r < 40; ++r) {
    for (std::size_t i = nprint::kUdpOffset;
         i < nprint::kUdpOffset + nprint::kUdpBits; ++i) {
      udp_mean += recon[r * nprint::kBitsPerPacket + i];
      ++n;
    }
  }
  udp_mean /= static_cast<double>(n);
  EXPECT_LT(udp_mean, -0.5);
}

}  // namespace
}  // namespace repro::diffusion
