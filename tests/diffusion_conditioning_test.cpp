#include "diffusion/conditioning.hpp"

#include <gtest/gtest.h>

namespace repro::diffusion {
namespace {

PromptCodec codec() {
  return PromptCodec({"netflix", "youtube", "amazon"});
}

TEST(PromptCodec, EncodeProducesTypePrompts) {
  const auto c = codec();
  EXPECT_EQ(c.encode_prompt(0), "Type-0");
  EXPECT_EQ(c.encode_prompt(2), "Type-2");
  EXPECT_THROW(c.encode_prompt(3), std::out_of_range);
  EXPECT_THROW(c.encode_prompt(-1), std::out_of_range);
}

TEST(PromptCodec, ParseTypePrompts) {
  const auto c = codec();
  EXPECT_EQ(c.parse_prompt("Type-1"), 1);
  EXPECT_EQ(c.parse_prompt("type-2"), 2);
  EXPECT_EQ(c.parse_prompt("TYPE-0"), 0);
}

TEST(PromptCodec, ParseClassNames) {
  const auto c = codec();
  EXPECT_EQ(c.parse_prompt("netflix"), 0);
  EXPECT_EQ(c.parse_prompt("Amazon"), 2);
}

TEST(PromptCodec, EmptyPromptIsNull) {
  const auto c = codec();
  EXPECT_EQ(c.parse_prompt(""), c.null_id());
  EXPECT_EQ(c.null_id(), 3);
}

TEST(PromptCodec, UnknownPromptsRejected) {
  const auto c = codec();
  EXPECT_EQ(c.parse_prompt("Type-9"), std::nullopt);
  EXPECT_EQ(c.parse_prompt("Type-x"), std::nullopt);
  EXPECT_EQ(c.parse_prompt("hulu"), std::nullopt);
}

TEST(PromptCodec, RoundTripAllClasses) {
  const auto c = codec();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(c.parse_prompt(c.encode_prompt(i)), i);
  }
}

TEST(PromptCodec, ClassNameLookup) {
  const auto c = codec();
  EXPECT_EQ(c.class_name(1), "youtube");
  EXPECT_THROW(c.class_name(5), std::out_of_range);
}

TEST(PromptCodec, RejectsEmptyClassList) {
  EXPECT_THROW(PromptCodec({}), std::invalid_argument);
}

}  // namespace
}  // namespace repro::diffusion
