// Property-style sweeps over randomized inputs: invariants that must
// hold for *every* flow the traffic models can produce, not just
// hand-picked cases. Parameterized over (app, seed) pairs.
#include <gtest/gtest.h>

#include "flowgen/generator.hpp"
#include "net/checksum.hpp"
#include "net/pcap.hpp"
#include "nprint/codec.hpp"

namespace repro {
namespace {

struct SweepCase {
  int app;
  std::uint64_t seed;
};

class FlowSweepTest : public ::testing::TestWithParam<SweepCase> {
 protected:
  net::Flow make_flow() {
    Rng rng(GetParam().seed * 1000003ULL + 17);
    return flowgen::generate_flow(
        static_cast<flowgen::App>(GetParam().app), rng);
  }
};

TEST_P(FlowSweepTest, EveryPacketHasValidIpChecksumOnWire) {
  const net::Flow flow = make_flow();
  for (const auto& pkt : flow.packets) {
    const auto wire = pkt.serialize();
    const std::size_t ihl = (wire[0] & 0x0F) * 4;
    EXPECT_EQ(net::internet_checksum(
                  std::span<const std::uint8_t>(wire.data(), ihl)),
              0x0000);
  }
}

TEST_P(FlowSweepTest, TransportChecksumsVerify) {
  const net::Flow flow = make_flow();
  for (const auto& pkt : flow.packets) {
    const auto wire = pkt.serialize();
    const std::size_t ihl = (wire[0] & 0x0F) * 4;
    net::ChecksumAccumulator acc;
    if (pkt.ip.protocol == net::IpProto::kIcmp) {
      acc.add(std::span<const std::uint8_t>(wire.data() + ihl,
                                            wire.size() - ihl));
    } else {
      acc.add_u32(pkt.ip.src_addr);
      acc.add_u32(pkt.ip.dst_addr);
      acc.add_u16(static_cast<std::uint16_t>(pkt.ip.protocol));
      acc.add_u16(static_cast<std::uint16_t>(wire.size() - ihl));
      acc.add(std::span<const std::uint8_t>(wire.data() + ihl,
                                            wire.size() - ihl));
    }
    EXPECT_EQ(acc.finish(), 0x0000)
        << net::proto_name(pkt.ip.protocol);
  }
}

TEST_P(FlowSweepTest, WireRoundTripPreservesHeaders) {
  const net::Flow flow = make_flow();
  for (const auto& pkt : flow.packets) {
    const net::Packet parsed = net::Packet::parse(pkt.serialize());
    EXPECT_TRUE(parsed.consistent());
    EXPECT_EQ(parsed.ip.src_addr, pkt.ip.src_addr);
    EXPECT_EQ(parsed.ip.ttl, pkt.ip.ttl);
    EXPECT_EQ(parsed.ip.protocol, pkt.ip.protocol);
    EXPECT_EQ(parsed.payload.size(), pkt.payload.size());
    if (pkt.tcp) {
      EXPECT_EQ(parsed.tcp->seq, pkt.tcp->seq);
      EXPECT_EQ(parsed.tcp->options, pkt.tcp->options);
    }
  }
}

TEST_P(FlowSweepTest, NprintRoundTripPreservesKeyFields) {
  const net::Flow flow = make_flow();
  const std::size_t take = std::min<std::size_t>(flow.packets.size(), 8);
  for (std::size_t i = 0; i < take; ++i) {
    const auto& pkt = flow.packets[i];
    const auto row = nprint::encode_packet(pkt);
    net::Packet decoded;
    ASSERT_TRUE(nprint::decode_packet(row.data(), decoded));
    EXPECT_EQ(decoded.ip.protocol, pkt.ip.protocol);
    EXPECT_EQ(decoded.ip.ttl, pkt.ip.ttl);
    EXPECT_EQ(decoded.ip.src_addr, pkt.ip.src_addr);
    EXPECT_EQ(decoded.ip.dscp, pkt.ip.dscp);
    if (pkt.tcp) {
      ASSERT_TRUE(decoded.tcp.has_value());
      EXPECT_EQ(decoded.tcp->src_port, pkt.tcp->src_port);
      EXPECT_EQ(decoded.tcp->dst_port, pkt.tcp->dst_port);
      EXPECT_EQ(decoded.tcp->syn, pkt.tcp->syn);
      EXPECT_EQ(decoded.tcp->fin, pkt.tcp->fin);
      EXPECT_EQ(decoded.tcp->window, pkt.tcp->window);
    }
    if (pkt.udp) {
      ASSERT_TRUE(decoded.udp.has_value());
      EXPECT_EQ(decoded.udp->src_port, pkt.udp->src_port);
      EXPECT_EQ(decoded.udp->dst_port, pkt.udp->dst_port);
    }
    if (pkt.icmp) {
      ASSERT_TRUE(decoded.icmp.has_value());
      EXPECT_EQ(decoded.icmp->type, pkt.icmp->type);
    }
  }
}

TEST_P(FlowSweepTest, PcapFileRoundTripIsByteExact) {
  const net::Flow flow = make_flow();
  const std::string path =
      std::string("/tmp/repro_prop_") +
      std::to_string(GetParam().app) + "_" +
      std::to_string(GetParam().seed) + ".pcap";
  net::write_pcap_file(path, flow.packets);
  const auto loaded = net::read_pcap_file(path);
  ASSERT_EQ(loaded.size(), flow.packets.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].serialize(), flow.packets[i].serialize());
  }
  std::remove(path.c_str());
}

TEST_P(FlowSweepTest, QuantizeIsIdempotentOnEncodedFlows) {
  const net::Flow flow = make_flow();
  nprint::Matrix matrix = nprint::encode_flow(flow, 16, true);
  const auto before = matrix.data();
  nprint::quantize(matrix);
  EXPECT_EQ(matrix.data(), before);  // already ternary
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (int app = 0; app < 11; ++app) {
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      cases.push_back({app, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllAppsSeeds, FlowSweepTest, ::testing::ValuesIn(sweep_cases()),
    [](const ::testing::TestParamInfo<SweepCase>& param_info) {
      return flowgen::app_name(static_cast<flowgen::App>(param_info.param.app)) +
             "_s" + std::to_string(param_info.param.seed);
    });

}  // namespace
}  // namespace repro
