#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/rng.hpp"
#include "nn/linear.hpp"

namespace repro::nn {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Serialize, SaveLoadRoundTrip) {
  Rng rng(1);
  Linear a(4, 3, rng, true, "layer");
  Linear b(4, 3, rng, true, "layer");  // different random init
  const std::string path = temp_path("repro_ckpt_roundtrip.bin");
  save_parameters(path, a.parameters());
  load_parameters(path, b.parameters());
  for (std::size_t i = 0; i < a.weight().value.size(); ++i) {
    EXPECT_EQ(b.weight().value[i], a.weight().value[i]);
  }
  for (std::size_t i = 0; i < a.bias().value.size(); ++i) {
    EXPECT_EQ(b.bias().value[i], a.bias().value[i]);
  }
  std::remove(path.c_str());
}

TEST(Serialize, RejectsNameMismatch) {
  Rng rng(2);
  Linear a(2, 2, rng, true, "alpha");
  Linear b(2, 2, rng, true, "beta");
  const std::string path = temp_path("repro_ckpt_name.bin");
  save_parameters(path, a.parameters());
  EXPECT_THROW(load_parameters(path, b.parameters()), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsShapeMismatch) {
  Rng rng(3);
  Linear a(2, 2, rng, true, "layer");
  Linear b(3, 2, rng, true, "layer");
  const std::string path = temp_path("repro_ckpt_shape.bin");
  save_parameters(path, a.parameters());
  EXPECT_THROW(load_parameters(path, b.parameters()), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsCountMismatch) {
  Rng rng(4);
  Linear a(2, 2, rng, true, "layer");
  Linear b(2, 2, rng, false, "layer");  // no bias -> fewer params
  const std::string path = temp_path("repro_ckpt_count.bin");
  save_parameters(path, a.parameters());
  EXPECT_THROW(load_parameters(path, b.parameters()), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsGarbageFile) {
  const std::string path = temp_path("repro_ckpt_garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a checkpoint";
  }
  Rng rng(5);
  Linear a(2, 2, rng);
  EXPECT_THROW(load_parameters(path, a.parameters()), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  Rng rng(6);
  Linear a(2, 2, rng);
  EXPECT_THROW(load_parameters("/nonexistent/ckpt.bin", a.parameters()),
               std::runtime_error);
  EXPECT_THROW(save_parameters("/nonexistent/ckpt.bin", a.parameters()),
               std::runtime_error);
}

}  // namespace
}  // namespace repro::nn
