// Regression tests for REPRO_BENCH_DIR: bench reports and telemetry
// exports must land where the environment points, and default to the
// working directory when unset.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "../bench/bench_common.hpp"
#include "common/telemetry/export.hpp"

namespace repro::telemetry {
namespace {

/// Restores REPRO_BENCH_DIR on scope exit so tests cannot leak state.
class ScopedBenchDir {
 public:
  explicit ScopedBenchDir(const char* value) {
    // repro-lint: allow(RL003) -- must see set-vs-unset to restore exactly
    const char* prev = std::getenv("REPRO_BENCH_DIR");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    if (value != nullptr) {
      ::setenv("REPRO_BENCH_DIR", value, 1);
    } else {
      ::unsetenv("REPRO_BENCH_DIR");
    }
  }
  ~ScopedBenchDir() {
    if (had_prev_) {
      ::setenv("REPRO_BENCH_DIR", prev_.c_str(), 1);
    } else {
      ::unsetenv("REPRO_BENCH_DIR");
    }
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

TEST(BenchReportPath, UnsetEnvPassesFilenameThrough) {
  ScopedBenchDir env(nullptr);
  EXPECT_EQ(report_path("BENCH_foo.json"), "BENCH_foo.json");
}

TEST(BenchReportPath, EmptyEnvPassesFilenameThrough) {
  ScopedBenchDir env("");
  EXPECT_EQ(report_path("BENCH_foo.json"), "BENCH_foo.json");
}

TEST(BenchReportPath, PrefixesFilenameWithDirectory) {
  const auto dir =
      std::filesystem::temp_directory_path() / "repro_bench_dir_test";
  std::filesystem::remove_all(dir);
  ScopedBenchDir env(dir.c_str());
  const std::string path = report_path("BENCH_foo.json");
  EXPECT_EQ(path, (dir / "BENCH_foo.json").string());
  // The directory is created eagerly so a following fopen(path, "w")
  // cannot fail on a missing parent.
  EXPECT_TRUE(std::filesystem::is_directory(dir));
  std::filesystem::remove_all(dir);
}

TEST(BenchReportPath, ReReadsEnvironmentOnEveryCall) {
  const auto dir_a =
      std::filesystem::temp_directory_path() / "repro_bench_dir_a";
  const auto dir_b =
      std::filesystem::temp_directory_path() / "repro_bench_dir_b";
  ScopedBenchDir env(dir_a.c_str());
  EXPECT_EQ(report_path("x.json"), (dir_a / "x.json").string());
  {
    ScopedBenchDir inner(dir_b.c_str());
    EXPECT_EQ(report_path("x.json"), (dir_b / "x.json").string());
  }
  EXPECT_EQ(report_path("x.json"), (dir_a / "x.json").string());
  std::filesystem::remove_all(dir_a);
  std::filesystem::remove_all(dir_b);
}

// Every bench report must carry the run's determinism provenance —
// thread count, compiled SIMD width, and whether runtime contracts were
// active — so two BENCH_*.json files can be compared apples-to-apples.
TEST(BenchReport, RecordsRuntimeProvenance) {
  const auto dir =
      std::filesystem::temp_directory_path() / "repro_bench_provenance";
  std::filesystem::remove_all(dir);
  ScopedBenchDir env(dir.c_str());
  {
    bench::BenchReport report("provenance_probe", "provenance regression");
    report.finish();
  }
  std::ifstream in(dir / "BENCH_provenance_probe.json");
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"threads\""), std::string::npos);
  EXPECT_NE(json.find("\"simd_width\":" +
                      std::to_string(REPRO_SIMD_WIDTH)),
            std::string::npos);
  const std::string checks =
      std::string("\"checks\":") + (contracts_enabled() ? "true" : "false");
  EXPECT_NE(json.find(checks), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(BenchReportPath, WrittenReportLandsInBenchDir) {
  const auto dir =
      std::filesystem::temp_directory_path() / "repro_bench_dir_write";
  std::filesystem::remove_all(dir);
  ScopedBenchDir env(dir.c_str());
  const std::string path = report_path("BENCH_smoke.json");
  ASSERT_TRUE(write_text_file(path, "{\"bench\":\"smoke\"}\n"));
  EXPECT_TRUE(std::filesystem::exists(dir / "BENCH_smoke.json"));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace repro::telemetry
