#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "nn/activation.hpp"
#include "nn/attention.hpp"
#include "nn/conv1d.hpp"
#include "nn/embedding.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/lora.hpp"
#include "nn/norm.hpp"

namespace repro::nn {
namespace {

TEST(Linear, OutputShapeAndBias) {
  Rng rng(1);
  Linear layer(3, 2, rng);
  layer.weight().value.fill(0.0f);
  layer.bias().value[0] = 1.5f;
  layer.bias().value[1] = -2.0f;
  Tensor x = Tensor::full({4, 3}, 1.0f);
  const Tensor y = layer.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{4, 2}));
  EXPECT_FLOAT_EQ(y.at2(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(y.at2(3, 1), -2.0f);
}

TEST(Linear, RejectsWrongInputShape) {
  Rng rng(2);
  Linear layer(3, 2, rng);
  EXPECT_THROW(layer.forward(Tensor({4, 5})), std::invalid_argument);
}

TEST(Conv1d, SameConvolutionPreservesLength) {
  Rng rng(3);
  Conv1d layer(2, 3, 3, rng);
  const Tensor y = layer.forward(Tensor({1, 2, 10}));
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{1, 3, 10}));
}

TEST(Conv1d, StrideTwoHalvesLength) {
  Rng rng(4);
  Conv1d layer(2, 2, 3, rng, 2);
  const Tensor y = layer.forward(Tensor({1, 2, 10}));
  EXPECT_EQ(y.dim(2), 5u);
}

TEST(Conv1d, IdentityKernelCopiesInput) {
  Rng rng(5);
  Conv1d layer(1, 1, 1, rng, 1, 0);
  layer.weight().value[0] = 1.0f;
  layer.bias().value[0] = 0.0f;
  Tensor x({1, 1, 5});
  for (std::size_t i = 0; i < 5; ++i) x[i] = static_cast<float>(i);
  const Tensor y = layer.forward(x);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv1d, ZeroInitProducesZeroOutput) {
  Rng rng(6);
  Conv1d layer(3, 3, 1, rng, 1, 0);
  layer.zero_init();
  Tensor x({2, 3, 4});
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 1.0f;
  const Tensor y = layer.forward(x);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_EQ(y[i], 0.0f);
}

TEST(GroupNorm, NormalizesPerGroup) {
  GroupNorm layer(4, 2);
  Rng rng(7);
  Tensor x({1, 4, 8});
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(rng.gaussian(5.0, 3.0));
  }
  const Tensor y = layer.forward(x);
  // Each group's (channels 0-1, then 2-3) output has mean~0, var~1.
  for (int g = 0; g < 2; ++g) {
    double sum = 0.0, sq = 0.0;
    for (int c = g * 2; c < g * 2 + 2; ++c) {
      for (int t = 0; t < 8; ++t) {
        const float v = y.at3(0, static_cast<std::size_t>(c),
                              static_cast<std::size_t>(t));
        sum += v;
        sq += static_cast<double>(v) * v;
      }
    }
    EXPECT_NEAR(sum / 16.0, 0.0, 1e-4);
    EXPECT_NEAR(sq / 16.0, 1.0, 1e-2);
  }
}

TEST(GroupNorm, RejectsIndivisibleGroups) {
  EXPECT_THROW(GroupNorm(5, 2), std::invalid_argument);
  EXPECT_THROW(GroupNorm(4, 0), std::invalid_argument);
}

TEST(LayerNorm, NormalizesRows) {
  LayerNorm layer(6);
  Rng rng(8);
  Tensor x({3, 6});
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(rng.gaussian(-2.0, 4.0));
  }
  const Tensor y = layer.forward(x);
  for (std::size_t r = 0; r < 3; ++r) {
    double sum = 0.0;
    for (std::size_t j = 0; j < 6; ++j) sum += y.at2(r, j);
    EXPECT_NEAR(sum / 6.0, 0.0, 1e-4);
  }
}

TEST(Activations, KnownValues) {
  Tensor x({3});
  x[0] = 0.0f;
  x[1] = 10.0f;
  x[2] = -10.0f;
  SiLU silu;
  const Tensor ys = silu.forward(x);
  EXPECT_FLOAT_EQ(ys[0], 0.0f);
  EXPECT_NEAR(ys[1], 10.0f, 1e-3);
  EXPECT_NEAR(ys[2], 0.0f, 1e-3);
  ReLU relu;
  const Tensor yr = relu.forward(x);
  EXPECT_FLOAT_EQ(yr[1], 10.0f);
  EXPECT_FLOAT_EQ(yr[2], 0.0f);
  Sigmoid sig;
  const Tensor yg = sig.forward(x);
  EXPECT_FLOAT_EQ(yg[0], 0.5f);
}

TEST(Attention, PreservesShape) {
  Rng rng(9);
  SelfAttention1d layer(4, rng);
  const Tensor y = layer.forward(Tensor({2, 4, 6}));
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 4, 6}));
}

TEST(Lora, ZeroRankIsPassThrough) {
  Rng rng(10);
  auto base = std::make_unique<Linear>(4, 3, rng);
  Linear reference = *base;  // copy weights
  LoraLinear lora(std::move(base), 0, 1.0f, rng);
  Tensor x({2, 4});
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<float>(i);
  const Tensor y1 = lora.forward(x);
  const Tensor y2 = reference.forward(x);
  for (std::size_t i = 0; i < y1.size(); ++i) {
    EXPECT_FLOAT_EQ(y1[i], y2[i]);
  }
}

TEST(Lora, FreshAdapterIsIdentityDelta) {
  // B is zero-initialized, so before any training the adapter must not
  // change the base layer's output (the defining LoRA property).
  Rng rng(11);
  auto base = std::make_unique<Linear>(4, 3, rng);
  Linear reference = *base;
  LoraLinear lora(std::move(base), 2, 8.0f, rng);
  Tensor x({2, 4});
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<float>(i) - 3;
  const Tensor y1 = lora.forward(x);
  const Tensor y2 = reference.forward(x);
  for (std::size_t i = 0; i < y1.size(); ++i) {
    EXPECT_FLOAT_EQ(y1[i], y2[i]);
  }
}

TEST(Lora, MergedWeightMatchesForward) {
  Rng rng(12);
  auto base = std::make_unique<Linear>(3, 2, rng);
  LoraLinear lora(std::move(base), 2, 4.0f, rng);
  // Give B nonzero values.
  for (Parameter* p : lora.parameters()) {
    if (p->name.rfind(".B") != std::string::npos) {
      for (std::size_t i = 0; i < p->value.size(); ++i) {
        p->value[i] = 0.1f * static_cast<float>(i + 1);
      }
    }
  }
  Tensor x({1, 3});
  x[0] = 1.0f;
  x[1] = -2.0f;
  x[2] = 0.5f;
  const Tensor y = lora.forward(x);
  const Tensor merged = lora.merged_weight();
  // y = merged @ x + bias
  const Tensor& bias = lora.base().bias().value;
  for (std::size_t o = 0; o < 2; ++o) {
    float acc = bias[o];
    for (std::size_t i = 0; i < 3; ++i) {
      acc += merged.at2(o, i) * x[i];
    }
    EXPECT_NEAR(y[o], acc, 1e-5);
  }
}

TEST(Lora, FreezeBaseKeepsAdaptersTrainable) {
  Rng rng(13);
  auto base = std::make_unique<Linear>(3, 2, rng);
  LoraLinear lora(std::move(base), 2, 4.0f, rng);
  lora.freeze_base();
  int trainable = 0, frozen = 0;
  for (Parameter* p : lora.parameters()) {
    if (p->trainable) {
      ++trainable;
      EXPECT_TRUE(p->name.rfind(".A") != std::string::npos ||
                  p->name.rfind(".B") != std::string::npos);
    } else {
      ++frozen;
    }
  }
  EXPECT_EQ(trainable, 2);
  EXPECT_EQ(frozen, 2);  // weight + bias
}

TEST(Embedding, LookupAndRangeCheck) {
  Rng rng(14);
  Embedding emb(4, 3, rng);
  Tensor ids({2});
  ids[0] = 0;
  ids[1] = 3;
  const Tensor out = emb.forward(ids);
  EXPECT_EQ(out.shape(), (std::vector<std::size_t>{2, 3}));
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(out.at2(0, j), emb.table().value[j]);
    EXPECT_EQ(out.at2(1, j), emb.table().value[3 * 3 + j]);
  }
  ids[0] = 4;
  EXPECT_THROW(emb.forward(ids), std::out_of_range);
}

TEST(Sinusoidal, StructureAndRange) {
  const Tensor emb = sinusoidal_embedding({0.0f, 5.0f}, 8);
  EXPECT_EQ(emb.shape(), (std::vector<std::size_t>{2, 8}));
  // t = 0: all sin terms 0, all cos terms 1.
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(emb.at2(0, 2 * j), 0.0f);
    EXPECT_FLOAT_EQ(emb.at2(0, 2 * j + 1), 1.0f);
  }
  // Bounded by [-1, 1].
  for (std::size_t i = 0; i < emb.size(); ++i) {
    EXPECT_LE(std::abs(emb[i]), 1.0f);
  }
  EXPECT_THROW(sinusoidal_embedding({1.0f}, 7), std::invalid_argument);
}

TEST(Loss, MseKnownValue) {
  Tensor pred({2});
  pred[0] = 1.0f;
  pred[1] = 3.0f;
  Tensor target({2});
  target[0] = 0.0f;
  target[1] = 1.0f;
  Tensor grad;
  const float loss = mse_loss(pred, target, grad);
  EXPECT_FLOAT_EQ(loss, (1.0f + 4.0f) / 2.0f);
  EXPECT_FLOAT_EQ(grad[0], 1.0f);   // 2*1/2
  EXPECT_FLOAT_EQ(grad[1], 2.0f);   // 2*2/2
}

TEST(Loss, BceWithLogitsMatchesReference) {
  Tensor logits({2});
  logits[0] = 0.0f;
  logits[1] = 2.0f;
  Tensor targets({2});
  targets[0] = 1.0f;
  targets[1] = 0.0f;
  Tensor grad;
  const float loss = bce_with_logits_loss(logits, targets, grad);
  const float expected =
      (std::log(2.0f) + std::log1p(std::exp(2.0f))) / 2.0f;
  EXPECT_NEAR(loss, expected, 1e-5);
  EXPECT_NEAR(grad[0], (0.5f - 1.0f) / 2.0f, 1e-6);
}

TEST(Loss, L1KnownValue) {
  Tensor pred = Tensor::full({4}, 2.0f);
  Tensor target = Tensor::full({4}, 3.0f);
  Tensor grad;
  EXPECT_FLOAT_EQ(l1_loss(pred, target, grad), 1.0f);
  EXPECT_FLOAT_EQ(grad[0], -0.25f);
}

}  // namespace
}  // namespace repro::nn
