#include "replay/engine.hpp"

#include <gtest/gtest.h>

#include "replay/functions.hpp"

namespace repro::replay {
namespace {

net::Packet udp_at(double t, std::uint16_t dport = 53,
                   std::size_t payload = 20) {
  return net::make_udp_packet(0xC0A80001, 0x08080808, 40000, dport, payload, t);
}

TEST(ReplayEngine, EmptyChainDeliversEverything) {
  ReplayEngine engine;
  const std::vector<net::Packet> packets = {udp_at(0.0), udp_at(0.5)};
  const ReplayReport report = engine.replay(packets);
  EXPECT_EQ(report.input_packets, 2u);
  EXPECT_EQ(report.delivered_packets, 2u);
  EXPECT_DOUBLE_EQ(report.trace_duration, 0.5);
}

TEST(ReplayEngine, EmptyTrace) {
  ReplayEngine engine;
  engine.add_function(std::make_unique<FlowCounter>());
  const ReplayReport report = engine.replay({});
  EXPECT_EQ(report.input_packets, 0u);
  EXPECT_EQ(report.delivered_packets, 0u);
}

TEST(ReplayEngine, ChainOrderShortCircuitsOnDrop) {
  ReplayEngine engine;
  engine.add_function(std::make_unique<PortAcl>(std::set<std::uint16_t>{53}));
  auto counter = std::make_unique<FlowCounter>();
  FlowCounter* counter_ptr = counter.get();
  engine.add_function(std::move(counter));

  const std::vector<net::Packet> packets = {udp_at(0.0, 53), udp_at(0.1, 80)};
  const ReplayReport report = engine.replay(packets);
  EXPECT_EQ(report.delivered_packets, 1u);
  EXPECT_EQ(report.functions[0].dropped, 1u);
  EXPECT_EQ(report.functions[0].forwarded, 1u);
  // The dropped packet never reached the counter.
  EXPECT_EQ(report.functions[1].processed, 1u);
  EXPECT_EQ(counter_ptr->flows().size(), 1u);
}

TEST(ReplayEngine, ReplaysInTimestampOrder) {
  ReplayEngine engine;
  auto counter = std::make_unique<FlowCounter>();
  FlowCounter* ptr = counter.get();
  engine.add_function(std::move(counter));
  // Deliberately out of order input.
  std::vector<net::Packet> packets = {udp_at(2.0), udp_at(0.0), udp_at(1.0)};
  engine.replay(packets);
  const auto& entry = ptr->flows().begin()->second;
  EXPECT_DOUBLE_EQ(entry.first_seen, 0.0);
  EXPECT_DOUBLE_EQ(entry.last_seen, 2.0);
}

TEST(ReplayEngine, TimeScaleStretchesTimestamps) {
  ReplayEngine engine;
  auto counter = std::make_unique<FlowCounter>();
  FlowCounter* ptr = counter.get();
  engine.add_function(std::move(counter));
  const std::vector<net::Packet> packets = {udp_at(10.0), udp_at(11.0)};
  const ReplayReport report = engine.replay(packets, 3.0);
  EXPECT_DOUBLE_EQ(report.trace_duration, 3.0);
  EXPECT_DOUBLE_EQ(ptr->flows().begin()->second.last_seen, 13.0);
}

TEST(FlowCounter, AggregatesPerFlowAndProtocol) {
  FlowCounter counter;
  net::Packet a = udp_at(0.0);
  net::Packet b = udp_at(1.0);
  net::Packet c = net::make_tcp_packet(1, 2, 3, 4, 10, 2.0);
  counter.process(a, 0.0);
  counter.process(b, 1.0);
  counter.process(c, 2.0);
  EXPECT_EQ(counter.flows().size(), 2u);
  EXPECT_EQ(counter.packets_by_protocol(net::IpProto::kUdp), 2u);
  EXPECT_EQ(counter.packets_by_protocol(net::IpProto::kTcp), 1u);
  EXPECT_EQ(counter.packets_by_protocol(net::IpProto::kIcmp), 0u);
}

TEST(PortAcl, DropsOnlyDeniedPorts) {
  PortAcl acl({443, 8801});
  net::Packet allowed = udp_at(0.0, 53);
  net::Packet denied = udp_at(0.0, 8801);
  net::Packet icmp = net::make_icmp_packet(1, 2, 8, 0, 0, 0.0);
  EXPECT_EQ(acl.process(allowed, 0.0), Verdict::kForward);
  EXPECT_EQ(acl.process(denied, 0.0), Verdict::kDrop);
  EXPECT_EQ(acl.process(icmp, 0.0), Verdict::kForward);  // no port -> pass
  EXPECT_EQ(acl.drops(), 1u);
}

TEST(RateLimiter, EnforcesTokenBucket) {
  // 100 B/s with a 150 B burst; 3 x 100B packets back-to-back: the first
  // passes on burst, the second drains to 50 tokens -> dropped, the
  // third after 1s (+100 tokens) passes.
  RateLimiter limiter(100.0, 150.0);
  net::Packet p1 = udp_at(0.0, 53, 72);   // 100 B datagram
  net::Packet p2 = udp_at(0.0, 53, 72);
  net::Packet p3 = udp_at(1.0, 53, 72);
  EXPECT_EQ(limiter.process(p1, 0.0), Verdict::kForward);
  EXPECT_EQ(limiter.process(p2, 0.0), Verdict::kDrop);
  EXPECT_EQ(limiter.process(p3, 1.0), Verdict::kForward);
  EXPECT_EQ(limiter.drops(), 1u);
}

TEST(RateLimiter, BurstCapsTokenAccumulation) {
  RateLimiter limiter(1000.0, 100.0);
  net::Packet big = udp_at(100.0, 53, 200);  // 228 B > burst cap
  EXPECT_EQ(limiter.process(big, 100.0), Verdict::kDrop);
}

TEST(SourceNat, RewritesPrivateSourcesOnly) {
  SourceNat nat(net::ipv4_from_string("203.0.113.7"));
  net::Packet priv = net::make_tcp_packet(
      net::ipv4_from_string("192.168.1.5"), 0x08080808, 1, 2, 0, 0.0);
  net::Packet pub = net::make_tcp_packet(
      net::ipv4_from_string("8.8.4.4"), 0x08080808, 1, 2, 0, 0.0);
  nat.process(priv, 0.0);
  nat.process(pub, 0.0);
  EXPECT_EQ(priv.ip.src_addr, net::ipv4_from_string("203.0.113.7"));
  EXPECT_EQ(pub.ip.src_addr, net::ipv4_from_string("8.8.4.4"));
  EXPECT_EQ(nat.rewrites(), 1u);
}

TEST(SourceNat, ReverseTranslationRestoresPrivateHost) {
  // WAN view: outbound masqueraded, inbound addressed to the public IP
  // translated back to the recorded private host by client port.
  const std::uint32_t pub = net::ipv4_from_string("203.0.113.7");
  SourceNat nat(pub);
  net::Packet out = net::make_udp_packet(
      net::ipv4_from_string("192.168.1.5"), 0x08080808, 40001, 53, 8, 0.0);
  nat.process(out, 0.0);
  EXPECT_EQ(out.ip.src_addr, pub);
  net::Packet back = net::make_udp_packet(
      0x08080808, pub, 53, 40001, 8, 0.1);
  nat.process(back, 0.1);
  EXPECT_EQ(back.ip.dst_addr, net::ipv4_from_string("192.168.1.5"));
  EXPECT_EQ(nat.reverse_rewrites(), 1u);
}

TEST(SourceNat, ReverseIgnoresUnknownPorts) {
  const std::uint32_t pub = net::ipv4_from_string("203.0.113.7");
  SourceNat nat(pub);
  net::Packet back = net::make_udp_packet(0x08080808, pub, 53, 5555, 8, 0.0);
  nat.process(back, 0.0);
  EXPECT_EQ(back.ip.dst_addr, pub);  // no mapping -> untouched
  EXPECT_EQ(nat.reverse_rewrites(), 0u);
}

TEST(SourceNat, PrivateRangeClassification) {
  EXPECT_TRUE(SourceNat::is_private(net::ipv4_from_string("10.0.0.1")));
  EXPECT_TRUE(SourceNat::is_private(net::ipv4_from_string("172.16.0.1")));
  EXPECT_TRUE(SourceNat::is_private(net::ipv4_from_string("172.31.255.255")));
  EXPECT_TRUE(SourceNat::is_private(net::ipv4_from_string("192.168.99.1")));
  EXPECT_FALSE(SourceNat::is_private(net::ipv4_from_string("172.32.0.1")));
  EXPECT_FALSE(SourceNat::is_private(net::ipv4_from_string("11.0.0.1")));
  EXPECT_FALSE(SourceNat::is_private(net::ipv4_from_string("193.168.0.1")));
}

}  // namespace
}  // namespace repro::replay
