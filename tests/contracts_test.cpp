// Tests for the contract layer (common/contracts.hpp) and the checked
// narrowing helper built on it (repro::narrow in common/bytes.hpp).
//
// The suite is compiled in whichever mode the build selected; the
// REPRO_CHECKS branches assert enforcing behaviour, the #else branches
// assert that disabled contracts are free of side effects.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "common/bytes.hpp"
#include "common/contracts.hpp"

namespace {

TEST(Contracts, EnabledFlagMatchesBuildMode) {
#ifdef REPRO_CHECKS
  EXPECT_TRUE(repro::contracts_enabled());
#else
  EXPECT_FALSE(repro::contracts_enabled());
#endif
}

TEST(Contracts, RequirePassesOnTrue) {
  EXPECT_NO_THROW(REPRO_REQUIRE(1 + 1 == 2, "arithmetic holds"));
  EXPECT_NO_THROW(REPRO_ENSURE(true, "trivially true"));
}

#ifdef REPRO_CHECKS

TEST(Contracts, RequireThrowsWithDiagnostics) {
  try {
    REPRO_REQUIRE(2 < 1, "impossible ordering");
    FAIL() << "REPRO_REQUIRE did not throw";
  } catch (const repro::ContractViolation& e) {
    EXPECT_EQ(std::string(e.kind()), "precondition");
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos) << what;
    EXPECT_NE(what.find("impossible ordering"), std::string::npos) << what;
    EXPECT_NE(what.find("contracts_test.cpp"), std::string::npos) << what;
  }
}

TEST(Contracts, EnsureReportsPostconditionKind) {
  try {
    REPRO_ENSURE(false, "result out of range");
    FAIL() << "REPRO_ENSURE did not throw";
  } catch (const repro::ContractViolation& e) {
    EXPECT_EQ(std::string(e.kind()), "postcondition");
  }
}

TEST(Contracts, UnreachableThrowsWhenChecked) {
  EXPECT_THROW(REPRO_UNREACHABLE("switch fell through"),
               repro::ContractViolation);
}

TEST(Contracts, ViolationIsALogicError) {
  try {
    REPRO_REQUIRE(false, "caught as logic_error");
    FAIL() << "did not throw";
  } catch (const std::logic_error&) {
    SUCCEED();
  }
}

#else  // !REPRO_CHECKS

TEST(Contracts, DisabledRequireDoesNotEvaluateCondition) {
  int evaluations = 0;
  const auto probe = [&evaluations] {
    ++evaluations;
    return false;
  };
  REPRO_REQUIRE(probe(), "must not run");
  REPRO_ENSURE(probe(), "must not run");
  EXPECT_EQ(evaluations, 0);
}

#endif  // REPRO_CHECKS

TEST(Narrow, RoundTripValuesPass) {
  EXPECT_EQ(repro::narrow<std::uint8_t>(255), 255);
  EXPECT_EQ(repro::narrow<std::int16_t>(-32768), -32768);
  EXPECT_EQ(repro::narrow<std::uint32_t>(std::int64_t{7}), 7u);
  EXPECT_DOUBLE_EQ(repro::narrow<double>(1.5f), 1.5);
}

#ifdef REPRO_CHECKS

TEST(Narrow, OutOfRangeThrowsWhenChecked) {
  EXPECT_THROW(repro::narrow<std::uint8_t>(256), repro::ContractViolation);
  EXPECT_THROW(repro::narrow<std::int8_t>(200), repro::ContractViolation);
}

TEST(Narrow, SignFlipThrowsWhenChecked) {
  EXPECT_THROW(repro::narrow<std::uint32_t>(-1), repro::ContractViolation);
  const auto big = std::numeric_limits<std::uint64_t>::max();
  EXPECT_THROW(repro::narrow<std::int64_t>(big), repro::ContractViolation);
}

#endif  // REPRO_CHECKS

}  // namespace
