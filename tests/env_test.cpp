#include "common/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <optional>

namespace repro {
namespace {

TEST(Env, SizeFallbackWhenUnset) {
  ::unsetenv("REPRO_TEST_UNSET_VAR");
  EXPECT_EQ(env_size("REPRO_TEST_UNSET_VAR", 42), 42u);
}

TEST(Env, SizeParsesValue) {
  ::setenv("REPRO_TEST_SIZE", "128", 1);
  EXPECT_EQ(env_size("REPRO_TEST_SIZE", 1), 128u);
  ::unsetenv("REPRO_TEST_SIZE");
}

TEST(Env, SizeFallbackOnGarbage) {
  ::setenv("REPRO_TEST_SIZE", "abc", 1);
  EXPECT_EQ(env_size("REPRO_TEST_SIZE", 9), 9u);
  ::unsetenv("REPRO_TEST_SIZE");
}

TEST(Env, DoubleParsesValue) {
  ::setenv("REPRO_TEST_DOUBLE", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double("REPRO_TEST_DOUBLE", 0.0), 2.5);
  ::unsetenv("REPRO_TEST_DOUBLE");
}

TEST(Env, ParseSizeAcceptsCanonicalForms) {
  EXPECT_EQ(parse_size("0"), 0u);
  EXPECT_EQ(parse_size("128"), 128u);
  EXPECT_EQ(parse_size("  64  "), 64u);
  EXPECT_EQ(parse_size("+7"), 7u);
}

TEST(Env, ParseSizeRejectsMalformedInput) {
  EXPECT_EQ(parse_size(""), std::nullopt);
  EXPECT_EQ(parse_size("   "), std::nullopt);
  EXPECT_EQ(parse_size("abc"), std::nullopt);
  EXPECT_EQ(parse_size("12abc"), std::nullopt);
  EXPECT_EQ(parse_size("-3"), std::nullopt);
  EXPECT_EQ(parse_size("1.5"), std::nullopt);
  EXPECT_EQ(parse_size("+"), std::nullopt);
}

TEST(Env, ParseSizeRejectsOverflow) {
  // 2^64 = 18446744073709551616 does not fit in std::size_t.
  EXPECT_EQ(parse_size("18446744073709551616"), std::nullopt);
  EXPECT_EQ(parse_size("99999999999999999999999"), std::nullopt);
  EXPECT_EQ(parse_size("18446744073709551615"),
            std::numeric_limits<std::size_t>::max());
}

TEST(Env, ParseDoubleAcceptsFiniteValues) {
  EXPECT_DOUBLE_EQ(parse_double("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(parse_double("-0.125").value(), -0.125);
  EXPECT_DOUBLE_EQ(parse_double("1e3").value(), 1000.0);
}

TEST(Env, ParseDoubleRejectsGarbageAndNonFinite) {
  EXPECT_EQ(parse_double(""), std::nullopt);
  EXPECT_EQ(parse_double("banana"), std::nullopt);
  EXPECT_EQ(parse_double("1.5x"), std::nullopt);
  EXPECT_EQ(parse_double("inf"), std::nullopt);
  EXPECT_EQ(parse_double("nan"), std::nullopt);
  EXPECT_EQ(parse_double("1e999"), std::nullopt);
}

TEST(Env, SizeFallbackOnNegative) {
  ::setenv("REPRO_TEST_SIZE_NEG", "-3", 1);
  EXPECT_EQ(env_size("REPRO_TEST_SIZE_NEG", 4), 4u);
  ::unsetenv("REPRO_TEST_SIZE_NEG");
}

TEST(Env, DoubleFallbackOnGarbage) {
  ::setenv("REPRO_TEST_DOUBLE_BAD", "not-a-number", 1);
  EXPECT_DOUBLE_EQ(env_double("REPRO_TEST_DOUBLE_BAD", 1.25), 1.25);
  ::unsetenv("REPRO_TEST_DOUBLE_BAD");
}

TEST(Env, StringFallback) {
  ::unsetenv("REPRO_TEST_STRING");
  EXPECT_EQ(env_string("REPRO_TEST_STRING", "dflt"), "dflt");
  ::setenv("REPRO_TEST_STRING", "hello", 1);
  EXPECT_EQ(env_string("REPRO_TEST_STRING", "dflt"), "hello");
  ::unsetenv("REPRO_TEST_STRING");
}

}  // namespace
}  // namespace repro
