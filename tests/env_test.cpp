#include "common/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace repro {
namespace {

TEST(Env, SizeFallbackWhenUnset) {
  ::unsetenv("REPRO_TEST_UNSET_VAR");
  EXPECT_EQ(env_size("REPRO_TEST_UNSET_VAR", 42), 42u);
}

TEST(Env, SizeParsesValue) {
  ::setenv("REPRO_TEST_SIZE", "128", 1);
  EXPECT_EQ(env_size("REPRO_TEST_SIZE", 1), 128u);
  ::unsetenv("REPRO_TEST_SIZE");
}

TEST(Env, SizeFallbackOnGarbage) {
  ::setenv("REPRO_TEST_SIZE", "abc", 1);
  EXPECT_EQ(env_size("REPRO_TEST_SIZE", 9), 9u);
  ::unsetenv("REPRO_TEST_SIZE");
}

TEST(Env, DoubleParsesValue) {
  ::setenv("REPRO_TEST_DOUBLE", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double("REPRO_TEST_DOUBLE", 0.0), 2.5);
  ::unsetenv("REPRO_TEST_DOUBLE");
}

TEST(Env, StringFallback) {
  ::unsetenv("REPRO_TEST_STRING");
  EXPECT_EQ(env_string("REPRO_TEST_STRING", "dflt"), "dflt");
  ::setenv("REPRO_TEST_STRING", "hello", 1);
  EXPECT_EQ(env_string("REPRO_TEST_STRING", "dflt"), "hello");
  ::unsetenv("REPRO_TEST_STRING");
}

}  // namespace
}  // namespace repro
