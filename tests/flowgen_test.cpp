#include "flowgen/generator.hpp"

#include <gtest/gtest.h>

#include <set>

#include "flowgen/dataset.hpp"
#include "flowgen/icmp_session.hpp"
#include "flowgen/tcp_session.hpp"
#include "flowgen/udp_session.hpp"

namespace repro::flowgen {
namespace {

TEST(Catalog, ElevenAppsInPaperOrder) {
  const auto& profiles = all_profiles();
  ASSERT_EQ(profiles.size(), kNumApps);
  EXPECT_EQ(profiles[0].name, "netflix");
  EXPECT_EQ(profiles[1].name, "youtube");
  EXPECT_EQ(profiles[2].name, "amazon");
  EXPECT_EQ(profiles[3].name, "twitch");
  EXPECT_EQ(profiles[4].name, "teams");
  EXPECT_EQ(profiles[5].name, "meet");
  EXPECT_EQ(profiles[6].name, "zoom");
  EXPECT_EQ(profiles[7].name, "facebook");
  EXPECT_EQ(profiles[8].name, "twitter");
  EXPECT_EQ(profiles[9].name, "instagram");
  EXPECT_EQ(profiles[10].name, "other");
}

TEST(Catalog, MacroMappingMatchesTable1) {
  EXPECT_EQ(macro_of(0), MacroService::kVideoStreaming);
  EXPECT_EQ(macro_of(3), MacroService::kVideoStreaming);
  EXPECT_EQ(macro_of(4), MacroService::kVideoConferencing);
  EXPECT_EQ(macro_of(6), MacroService::kVideoConferencing);
  EXPECT_EQ(macro_of(7), MacroService::kSocialMedia);
  EXPECT_EQ(macro_of(9), MacroService::kSocialMedia);
  EXPECT_EQ(macro_of(10), MacroService::kIotDevice);
}

TEST(Catalog, Table1CountsMatchPaper) {
  const auto& counts = table1_flow_counts();
  ASSERT_EQ(counts.size(), kNumApps);
  EXPECT_EQ(counts[0], 4104u);   // Netflix
  EXPECT_EQ(counts[4], 3886u);   // MS Teams
  EXPECT_EQ(counts[10], 3901u);  // IoT Other
  std::size_t streaming = counts[0] + counts[1] + counts[2] + counts[3];
  EXPECT_EQ(streaming, 9465u);  // Table 1 total for Video Streaming
  std::size_t conferencing = counts[4] + counts[5] + counts[6];
  EXPECT_EQ(conferencing, 6511u);
  std::size_t social = counts[7] + counts[8] + counts[9];
  EXPECT_EQ(social, 3610u);
}

TEST(Catalog, NameLookupRoundTrip) {
  for (std::size_t i = 0; i < kNumApps; ++i) {
    const App app = static_cast<App>(i);
    EXPECT_EQ(app_from_name(app_name(app)), app);
  }
  EXPECT_THROW(app_from_name("myspace"), std::invalid_argument);
}

TEST(Catalog, ProtocolMixesSumToOne) {
  for (const auto& profile : all_profiles()) {
    EXPECT_NEAR(profile.p_tcp + profile.p_udp + profile.p_icmp, 1.0, 1e-9)
        << profile.name;
  }
}

class PerAppTest : public ::testing::TestWithParam<int> {};

TEST_P(PerAppTest, FlowsHaveProfilePorts) {
  const App app = static_cast<App>(GetParam());
  const AppProfile& profile = app_profile(app);
  Rng rng(static_cast<std::uint64_t>(100 + GetParam()));
  std::set<std::uint16_t> allowed;
  for (const auto& [port, weight] : profile.server_ports) allowed.insert(port);
  for (int i = 0; i < 10; ++i) {
    const net::Flow flow = generate_flow(app, rng);
    ASSERT_FALSE(flow.packets.empty());
    if (flow.key.protocol == net::IpProto::kIcmp) continue;
    // One endpoint port of the flow key must be a profile server port.
    const bool ok = allowed.count(flow.key.src_port) ||
                    allowed.count(flow.key.dst_port);
    EXPECT_TRUE(ok) << profile.name;
  }
}

TEST_P(PerAppTest, FlowsAreLabeled) {
  const App app = static_cast<App>(GetParam());
  Rng rng(static_cast<std::uint64_t>(200 + GetParam()));
  const net::Flow flow = generate_flow(app, rng);
  EXPECT_EQ(flow.label, GetParam());
}

TEST_P(PerAppTest, SingleProtocolPerFlow) {
  // The paper's inter-packet constraint: real flows do not mix transport
  // protocols, so neither may generated ones.
  const App app = static_cast<App>(GetParam());
  Rng rng(static_cast<std::uint64_t>(300 + GetParam()));
  for (int i = 0; i < 5; ++i) {
    const net::Flow flow = generate_flow(app, rng);
    EXPECT_DOUBLE_EQ(flow.protocol_fraction(flow.dominant_protocol()), 1.0);
  }
}

TEST_P(PerAppTest, PacketsAreChronological) {
  const App app = static_cast<App>(GetParam());
  Rng rng(static_cast<std::uint64_t>(400 + GetParam()));
  const net::Flow flow = generate_flow(app, 50, rng);
  for (std::size_t i = 1; i < flow.packets.size(); ++i) {
    EXPECT_GE(flow.packets[i].timestamp, flow.packets[i - 1].timestamp);
  }
}

TEST_P(PerAppTest, AllPacketsConsistentAndSerializable) {
  const App app = static_cast<App>(GetParam());
  Rng rng(static_cast<std::uint64_t>(500 + GetParam()));
  const net::Flow flow = generate_flow(app, 30, rng);
  for (const auto& pkt : flow.packets) {
    EXPECT_TRUE(pkt.consistent());
    const auto wire = pkt.serialize();
    EXPECT_EQ(wire.size(), pkt.datagram_length());
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, PerAppTest, ::testing::Range(0, 11),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           return app_name(static_cast<App>(param_info.param));
                         });

TEST(ProtocolMix, NetflixIsTcpDominant) {
  // §2.3: "the predominance of TCP packets in Netflix traffic".
  Rng rng(1);
  std::size_t tcp = 0, total = 0;
  for (int i = 0; i < 30; ++i) {
    const auto flow = generate_flow(App::kNetflix, rng);
    if (flow.dominant_protocol() == net::IpProto::kTcp) ++tcp;
    ++total;
  }
  EXPECT_EQ(tcp, total);
}

TEST(ProtocolMix, TeamsIsUdpDominant) {
  // §2.3: "UDP packets in Teams traffic".
  Rng rng(2);
  std::size_t udp = 0;
  const int n = 50;
  for (int i = 0; i < n; ++i) {
    if (generate_flow(App::kTeams, rng).dominant_protocol() ==
        net::IpProto::kUdp) {
      ++udp;
    }
  }
  EXPECT_GT(static_cast<double>(udp) / n, 0.75);
}

TEST(TcpSession, HandshakeAndTeardownStructure) {
  Rng rng(3);
  const AppProfile& profile = app_profile(App::kNetflix);
  Endpoints ep{0x0A000001, 0x0D000001, 44444, 443};
  const net::Flow flow = generate_tcp_flow(profile, ep, 20, rng);
  ASSERT_GE(flow.packets.size(), 6u);
  // SYN from client.
  const auto& syn = flow.packets[0];
  EXPECT_TRUE(syn.tcp->syn);
  EXPECT_FALSE(syn.tcp->ack_flag);
  EXPECT_EQ(syn.ip.src_addr, ep.client_addr);
  EXPECT_FALSE(syn.tcp->options.empty());
  // SYN-ACK from server.
  const auto& synack = flow.packets[1];
  EXPECT_TRUE(synack.tcp->syn);
  EXPECT_TRUE(synack.tcp->ack_flag);
  EXPECT_EQ(synack.ip.src_addr, ep.server_addr);
  EXPECT_EQ(synack.tcp->ack, syn.tcp->seq + 1);
  // Final ACK.
  const auto& ack = flow.packets[2];
  EXPECT_FALSE(ack.tcp->syn);
  EXPECT_TRUE(ack.tcp->ack_flag);
  EXPECT_EQ(ack.tcp->ack, synack.tcp->seq + 1);
  // Teardown: FIN, FIN-ACK, ACK at the end.
  const auto& fin = flow.packets[flow.packets.size() - 3];
  const auto& finack = flow.packets[flow.packets.size() - 2];
  const auto& last = flow.packets.back();
  EXPECT_TRUE(fin.tcp->fin);
  EXPECT_TRUE(finack.tcp->fin);
  EXPECT_TRUE(finack.tcp->ack_flag);
  EXPECT_TRUE(last.tcp->ack_flag);
  EXPECT_FALSE(last.tcp->fin);
}

TEST(TcpSession, SequenceNumbersAdvanceWithPayload) {
  Rng rng(4);
  const AppProfile& profile = app_profile(App::kTwitch);
  Endpoints ep{1, 2, 1000, 443};
  const net::Flow flow = generate_tcp_flow(profile, ep, 40, rng);
  // Server-side segments: each next seq must equal prev seq + prev payload.
  std::uint32_t expected = 0;
  bool first = true;
  for (const auto& pkt : flow.packets) {
    if (pkt.ip.src_addr != ep.server_addr) continue;
    if (!first) {
      EXPECT_EQ(pkt.tcp->seq, expected);
    }
    first = false;
    expected = pkt.tcp->seq + static_cast<std::uint32_t>(pkt.payload.size()) +
               (pkt.tcp->syn || pkt.tcp->fin ? 1 : 0);
  }
}

TEST(TcpSession, RespectsTargetLength) {
  Rng rng(5);
  Endpoints ep{1, 2, 1000, 443};
  const net::Flow flow =
      generate_tcp_flow(app_profile(App::kNetflix), ep, 25, rng);
  EXPECT_EQ(flow.packets.size(), 25u);
}

TEST(UdpSession, DscpMarkingApplied) {
  Rng rng(6);
  const AppProfile& teams = app_profile(App::kTeams);
  Endpoints ep{1, 2, 40000, 3478};
  const net::Flow flow = generate_udp_flow(teams, ep, 20, rng);
  for (const auto& pkt : flow.packets) {
    EXPECT_EQ(pkt.ip.dscp, 46);
  }
}

TEST(UdpSession, BidirectionalTraffic) {
  Rng rng(7);
  Endpoints ep{1, 2, 40000, 19305};
  const net::Flow flow =
      generate_udp_flow(app_profile(App::kMeet), ep, 100, rng);
  std::size_t up = 0;
  for (const auto& pkt : flow.packets) {
    if (pkt.ip.src_addr == ep.client_addr) ++up;
  }
  EXPECT_GT(up, 20u);
  EXPECT_LT(up, 80u);
}

TEST(IcmpSession, EchoRequestReplyPairs) {
  Rng rng(8);
  Endpoints ep{1, 2, 0, 0};
  const net::Flow flow =
      generate_icmp_flow(app_profile(App::kOther), ep, 10, rng);
  ASSERT_EQ(flow.packets.size(), 10u);
  for (std::size_t i = 0; i < flow.packets.size(); ++i) {
    const auto& icmp = *flow.packets[i].icmp;
    if (i % 2 == 0) {
      EXPECT_EQ(icmp.type, 8) << "packet " << i;
    } else {
      EXPECT_EQ(icmp.type, 0) << "packet " << i;
      // Reply identifier matches request identifier.
      EXPECT_EQ(icmp.rest_of_header >> 16,
                flow.packets[i - 1].icmp->rest_of_header >> 16);
    }
  }
}

TEST(AppProfile, SizeMixtureStaysWithinMtu) {
  Rng rng(71);
  const AppProfile& p = app_profile(App::kNetflix);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LE(p.downstream.sample(rng), 1460u);
    EXPECT_LE(p.upstream.sample(rng), 1460u);
  }
}

TEST(AppProfile, FlowLengthClampedToBounds) {
  Rng rng(72);
  const AppProfile& p = app_profile(App::kOther);  // min_packets = 4
  for (int i = 0; i < 500; ++i) {
    const std::size_t len = p.sample_flow_length(rng);
    EXPECT_GE(len, p.min_packets);
    EXPECT_LE(len, p.max_packets);
  }
}

TEST(AppProfile, ArrivalGapsPositiveAndBounded) {
  Rng rng(73);
  for (const auto& profile : all_profiles()) {
    for (int i = 0; i < 200; ++i) {
      const double gap = profile.arrivals.sample_gap(rng);
      EXPECT_GT(gap, 0.0) << profile.name;
      EXPECT_LE(gap, 10.0) << profile.name;
    }
  }
}

TEST(AppProfile, ServerPortsComeFromProfile) {
  Rng rng(74);
  const AppProfile& teams = app_profile(App::kTeams);
  std::set<std::uint16_t> allowed;
  for (const auto& [port, w] : teams.server_ports) allowed.insert(port);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(allowed.count(teams.sample_server_port(rng)));
  }
}

TEST(AppProfile, EmptyPortListFallsBackTo443) {
  AppProfile p;
  p.server_ports.clear();
  Rng rng(75);
  EXPECT_EQ(p.sample_server_port(rng), 443);
}

TEST(TcpSession, IpIdModesAreDistinguishable) {
  Rng rng(76);
  // Zero-mode server (twitch) vs increment-mode server (netflix).
  Endpoints ep{1, 2, 1000, 443};
  const net::Flow twitch =
      generate_tcp_flow(app_profile(App::kTwitch), ep, 30, rng);
  for (const auto& pkt : twitch.packets) {
    if (pkt.ip.src_addr == ep.server_addr) {
      EXPECT_EQ(pkt.ip.identification, 0);
    }
  }
  const net::Flow netflix =
      generate_tcp_flow(app_profile(App::kNetflix), ep, 30, rng);
  std::vector<std::uint16_t> server_ids;
  for (const auto& pkt : netflix.packets) {
    if (pkt.ip.src_addr == ep.server_addr) {
      server_ids.push_back(pkt.ip.identification);
    }
  }
  ASSERT_GE(server_ids.size(), 3u);
  for (std::size_t i = 1; i < server_ids.size(); ++i) {
    EXPECT_EQ(static_cast<std::uint16_t>(server_ids[i] - server_ids[i - 1]),
              1);
  }
}

TEST(TcpSession, SynCarriesProfileMss) {
  Rng rng(77);
  Endpoints ep{1, 2, 1000, 443};
  const net::Flow flow =
      generate_tcp_flow(app_profile(App::kTwitter), ep, 16, rng);
  const auto& opts = flow.packets[0].tcp->options;
  // MSS option: kind 2, len 4, value 1380 (twitter's fingerprint).
  ASSERT_GE(opts.size(), 4u);
  EXPECT_EQ(opts[0], 0x02);
  EXPECT_EQ(opts[1], 0x04);
  EXPECT_EQ((opts[2] << 8) | opts[3], 1380);
}

TEST(Dataset, BuildExactCounts) {
  Rng rng(9);
  const Dataset ds = build_dataset({3, 0, 2, 0, 0, 0, 0, 0, 0, 0, 1}, rng);
  EXPECT_EQ(ds.size(), 6u);
  const auto counts = ds.per_class_counts();
  EXPECT_EQ(counts[0], 3u);
  EXPECT_EQ(counts[2], 2u);
  EXPECT_EQ(counts[10], 1u);
}

TEST(Dataset, Table1ScalingPreservesProportions) {
  const auto scaled = scaled_table1_counts(100);
  EXPECT_EQ(scaled[0], 100u);  // netflix is the largest class
  // youtube/netflix ratio 2702/4104 ~ 0.658.
  EXPECT_NEAR(static_cast<double>(scaled[1]) / static_cast<double>(scaled[0]), 2702.0 / 4104.0,
              0.02);
  for (std::size_t c : scaled) EXPECT_GE(c, 1u);
}

TEST(Dataset, UniformDatasetBalanced) {
  Rng rng(10);
  const Dataset ds = build_uniform_dataset(4, rng);
  for (std::size_t c : ds.per_class_counts()) {
    EXPECT_EQ(c, 4u);
  }
}

TEST(Dataset, MicroAndMacroLabels) {
  Rng rng(11);
  Dataset ds = build_dataset({1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 1}, rng);
  const auto micro = ds.micro_labels();
  const auto macro = ds.macro_labels();
  ASSERT_EQ(micro.size(), 3u);
  for (std::size_t i = 0; i < micro.size(); ++i) {
    EXPECT_EQ(macro[i], static_cast<int>(macro_of(
                            static_cast<std::size_t>(micro[i]))));
  }
}

TEST(Dataset, SamplePerClassCaps) {
  Rng rng(12);
  const Dataset ds = build_uniform_dataset(10, rng);
  const Dataset capped = ds.sample_per_class(3, rng);
  for (std::size_t c : capped.per_class_counts()) {
    EXPECT_EQ(c, 3u);
  }
}

TEST(Dataset, DeterministicForSameSeed) {
  Rng a(42), b(42);
  const Dataset da = build_uniform_dataset(2, a);
  const Dataset db = build_uniform_dataset(2, b);
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da.flows[i].label, db.flows[i].label);
    ASSERT_EQ(da.flows[i].packets.size(), db.flows[i].packets.size());
    EXPECT_EQ(da.flows[i].packets[0].serialize(),
              db.flows[i].packets[0].serialize());
  }
}

}  // namespace
}  // namespace repro::flowgen
