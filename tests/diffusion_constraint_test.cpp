#include "diffusion/constraint.hpp"

#include <gtest/gtest.h>

#include "flowgen/generator.hpp"

namespace repro::diffusion {
namespace {

using net::IpProto;

TEST(ProtocolTemplate, UniformFillsAllRows) {
  const auto t = ProtocolTemplate::uniform(IpProto::kUdp, 5);
  ASSERT_EQ(t.per_packet.size(), 5u);
  for (const auto proto : t.per_packet) {
    EXPECT_EQ(proto, IpProto::kUdp);
  }
}

TEST(ProtocolTemplate, FromFlowCopiesPerPacketAndPadsWithDominant) {
  net::Flow flow;
  flow.packets.push_back(net::make_udp_packet(1, 2, 3, 4, 8, 0.0));
  flow.packets.push_back(net::make_udp_packet(1, 2, 3, 4, 8, 0.1));
  flow.packets.push_back(net::make_tcp_packet(1, 2, 3, 4, 8, 0.2));
  const auto t = ProtocolTemplate::from_flow(flow, 6);
  ASSERT_EQ(t.per_packet.size(), 6u);
  EXPECT_EQ(t.per_packet[0], IpProto::kUdp);
  EXPECT_EQ(t.per_packet[2], IpProto::kTcp);
  EXPECT_EQ(t.per_packet[5], IpProto::kUdp);  // dominant pads
}

TEST(Constraint, ProjectionForcesFullCompliance) {
  // Encode a UDP flow, demand TCP: projection must flip every row.
  Rng rng(1);
  const net::Flow flow = flowgen::generate_flow(flowgen::App::kTeams, 6, rng);
  nprint::Matrix matrix = nprint::encode_flow(flow, 8, true);
  const auto target = ProtocolTemplate::uniform(IpProto::kTcp, 8);
  EXPECT_LT(template_compliance(matrix, target), 0.5);
  project_to_template(matrix, target);
  EXPECT_DOUBLE_EQ(template_compliance(matrix, target), 1.0);
}

TEST(Constraint, ProjectionSetsIpv4ProtocolField) {
  Rng rng(2);
  const net::Flow flow = flowgen::generate_flow(flowgen::App::kTeams, 4, rng);
  nprint::Matrix matrix = nprint::encode_flow(flow, 4, true);
  project_to_template(matrix, ProtocolTemplate::uniform(IpProto::kTcp, 4));
  const net::Flow decoded = nprint::decode_flow(matrix);
  for (const auto& pkt : decoded.packets) {
    EXPECT_EQ(pkt.ip.protocol, IpProto::kTcp);
    EXPECT_TRUE(pkt.tcp.has_value());
  }
}

TEST(Constraint, ProjectionSkipsVacantRows) {
  nprint::Matrix matrix(4);  // all vacant
  project_to_template(matrix, ProtocolTemplate::uniform(IpProto::kTcp, 4));
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_TRUE(matrix.row_vacant(r));
  }
}

TEST(Constraint, ProjectionPreservesMatchingContent) {
  // A TCP row projected onto a TCP template keeps its TCP content bits.
  Rng rng(3);
  const net::Flow flow = flowgen::generate_flow(flowgen::App::kNetflix, 4, rng);
  nprint::Matrix matrix = nprint::encode_flow(flow, 4, true);
  const nprint::Matrix before = matrix;
  project_to_template(matrix, ProtocolTemplate::from_flow(flow, 4));
  // TCP source-port bits (0..15) must be untouched.
  for (std::size_t r = 0; r < matrix.active_rows(); ++r) {
    for (std::size_t i = 0; i < 16; ++i) {
      EXPECT_EQ(matrix.at(r, i), before.at(r, i));
    }
  }
}

TEST(Constraint, ComplianceIgnoresRowsBeyondTemplate) {
  Rng rng(4);
  const net::Flow flow = flowgen::generate_flow(flowgen::App::kNetflix, 6, rng);
  const nprint::Matrix matrix = nprint::encode_flow(flow, 6, false);
  const auto target = ProtocolTemplate::uniform(IpProto::kTcp, 3);
  EXPECT_DOUBLE_EQ(template_compliance(matrix, target), 1.0);
}

TEST(Constraint, ComplianceZeroWhenAllVacant) {
  nprint::Matrix matrix(4);
  EXPECT_DOUBLE_EQ(
      template_compliance(matrix, ProtocolTemplate::uniform(IpProto::kTcp, 4)),
      0.0);
}

TEST(Constraint, MixedTemplateRespectedPerRow) {
  Rng rng(5);
  const net::Flow flow = flowgen::generate_flow(flowgen::App::kOther, 4, rng);
  nprint::Matrix matrix = nprint::encode_flow(flow, 4, true);
  ProtocolTemplate target;
  target.per_packet = {IpProto::kTcp, IpProto::kUdp, IpProto::kIcmp,
                       IpProto::kTcp};
  project_to_template(matrix, target);
  EXPECT_DOUBLE_EQ(template_compliance(matrix, target), 1.0);
  const net::Flow decoded = nprint::decode_flow(matrix);
  ASSERT_EQ(decoded.packets.size(), 4u);
  EXPECT_TRUE(decoded.packets[0].tcp.has_value());
  EXPECT_TRUE(decoded.packets[1].udp.has_value());
  EXPECT_TRUE(decoded.packets[2].icmp.has_value());
}

/// Fabricates a "generated" TCP flow with garbage flags/sequence numbers
/// but meaningful content fields (windows, TTLs, sizes).
net::Flow scrambled_tcp_flow(std::size_t packets, Rng& rng) {
  net::Flow flow;
  for (std::size_t i = 0; i < packets; ++i) {
    net::Packet pkt = net::make_tcp_packet(
        0xC0A80005, 0x0D0D0D01, 50123, 443,
        static_cast<std::size_t>(rng.uniform_int(0, 1200)), static_cast<double>(i) * 0.01);
    pkt.tcp->seq = static_cast<std::uint32_t>(rng.next_u64());
    pkt.tcp->ack = static_cast<std::uint32_t>(rng.next_u64());
    pkt.tcp->syn = rng.bernoulli(0.3);
    pkt.tcp->fin = rng.bernoulli(0.3);
    pkt.tcp->ack_flag = rng.bernoulli(0.5);
    pkt.tcp->window = static_cast<std::uint16_t>(rng.uniform_int(1000, 60000));
    pkt.ip.ttl = static_cast<std::uint8_t>(rng.uniform_int(50, 64));
    flow.packets.push_back(std::move(pkt));
  }
  flow.key = net::FlowKey::from_packet(flow.packets.front()).canonical();
  return flow;
}

TEST(StatefulRepair, ProducesValidHandshake) {
  Rng rng(11);
  const net::Flow tmpl = flowgen::generate_flow(flowgen::App::kNetflix, 16, rng);
  const net::Flow garbage = scrambled_tcp_flow(16, rng);
  const net::Flow fixed = enforce_tcp_state(garbage, tmpl);
  ASSERT_EQ(fixed.packets.size(), 16u);
  EXPECT_TRUE(fixed.packets[0].tcp->syn);
  EXPECT_FALSE(fixed.packets[0].tcp->ack_flag);
  EXPECT_TRUE(fixed.packets[1].tcp->syn);
  EXPECT_TRUE(fixed.packets[1].tcp->ack_flag);
  EXPECT_FALSE(fixed.packets[2].tcp->syn);
  EXPECT_TRUE(fixed.packets[2].tcp->ack_flag);
}

TEST(StatefulRepair, PreservesGeneratedContentFields) {
  Rng rng(12);
  const net::Flow tmpl = flowgen::generate_flow(flowgen::App::kNetflix, 16, rng);
  const net::Flow garbage = scrambled_tcp_flow(16, rng);
  const net::Flow fixed = enforce_tcp_state(garbage, tmpl);
  for (std::size_t i = 1; i < fixed.packets.size(); ++i) {
    EXPECT_EQ(fixed.packets[i].tcp->window, garbage.packets[i].tcp->window);
    EXPECT_EQ(fixed.packets[i].ip.ttl, garbage.packets[i].ip.ttl);
    if (!fixed.packets[i].tcp->syn) {
      EXPECT_EQ(fixed.packets[i].payload.size(),
                garbage.packets[i].payload.size());
    }
  }
}

TEST(StatefulRepair, UdpTemplateHarmonizesEndpoints) {
  Rng rng(15);
  net::Flow tmpl = flowgen::generate_flow(flowgen::App::kMeet, 8, rng);
  while (tmpl.dominant_protocol() != net::IpProto::kUdp) {
    tmpl = flowgen::generate_flow(flowgen::App::kMeet, 8, rng);
  }
  // Scrambled UDP flow: every packet has different endpoints.
  net::Flow garbage;
  for (std::size_t i = 0; i < 8; ++i) {
    garbage.packets.push_back(net::make_udp_packet(
        static_cast<std::uint32_t>(rng.next_u64()),
        static_cast<std::uint32_t>(rng.next_u64()),
        static_cast<std::uint16_t>(rng.next_u64()),
        static_cast<std::uint16_t>(rng.next_u64()), 50, static_cast<double>(i) * 0.01));
  }
  const net::Flow fixed = enforce_tcp_state(garbage, tmpl);
  // One canonical 5-tuple across the whole flow now.
  const net::FlowKey key = net::FlowKey::from_packet(fixed.packets[0]).canonical();
  for (const auto& pkt : fixed.packets) {
    EXPECT_EQ(net::FlowKey::from_packet(pkt).canonical(), key);
    // Payload lengths untouched.
    EXPECT_EQ(pkt.payload.size(), 50u);
  }
  // Both directions present (templates are bidirectional).
  bool up = false, down = false;
  for (const auto& pkt : fixed.packets) {
    if (pkt.ip.src_addr == fixed.packets[0].ip.src_addr) {
      up = true;
    } else {
      down = true;
    }
  }
  EXPECT_TRUE(up);
  EXPECT_TRUE(down);
}

TEST(StatefulRepair, NonTcpTemplateIsNoOp) {
  Rng rng(13);
  const net::Flow tmpl = flowgen::generate_flow(flowgen::App::kTeams, 8, rng);
  if (tmpl.dominant_protocol() == net::IpProto::kTcp) {
    GTEST_SKIP() << "drew the rare TCP teams flow";
  }
  const net::Flow garbage = scrambled_tcp_flow(8, rng);
  const net::Flow same = enforce_tcp_state(garbage, tmpl);
  for (std::size_t i = 0; i < same.packets.size(); ++i) {
    EXPECT_EQ(same.packets[i].tcp->seq, garbage.packets[i].tcp->seq);
  }
}

TEST(StatefulRepair, EmptyFlowsHandled) {
  const net::Flow empty;
  Rng rng(14);
  const net::Flow tmpl = flowgen::generate_flow(flowgen::App::kNetflix, 8, rng);
  EXPECT_TRUE(enforce_tcp_state(empty, tmpl).packets.empty());
  const net::Flow garbage = scrambled_tcp_flow(4, rng);
  EXPECT_EQ(enforce_tcp_state(garbage, empty).packets.size(), 4u);
}

TEST(Constraint, ProjectedMatrixStaysTernary) {
  Rng rng(6);
  const net::Flow flow = flowgen::generate_flow(flowgen::App::kMeet, 4, rng);
  nprint::Matrix matrix = nprint::encode_flow(flow, 4, true);
  project_to_template(matrix, ProtocolTemplate::uniform(IpProto::kTcp, 4));
  EXPECT_DOUBLE_EQ(nprint::ternary_fraction(matrix), 1.0);
}

}  // namespace
}  // namespace repro::diffusion
