#include "diffusion/unet1d.hpp"

#include <gtest/gtest.h>

#include "diffusion/controlnet.hpp"
#include "flowgen/generator.hpp"

namespace repro::diffusion {
namespace {

UNetConfig tiny_config(std::size_t lora_rank = 0) {
  UNetConfig cfg;
  cfg.in_channels = 4;
  cfg.base_channels = 8;
  cfg.temb_dim = 16;
  cfg.num_classes = 3;
  cfg.groups = 4;
  cfg.lora_rank = lora_rank;
  return cfg;
}

TEST(UNet, OutputShapeMatchesInput) {
  Rng rng(1);
  UNet1d unet(tiny_config(), rng);
  nn::Tensor x({2, 4, 16});
  const nn::Tensor eps = unet.forward(x, {1.0f, 2.0f}, {0, 1});
  EXPECT_EQ(eps.shape(), x.shape());
}

TEST(UNet, RejectsBadInput) {
  Rng rng(2);
  UNet1d unet(tiny_config(), rng);
  EXPECT_THROW(unet.forward(nn::Tensor({1, 3, 16}), {0.0f}, {0}),
               std::invalid_argument);
  EXPECT_THROW(unet.forward(nn::Tensor({1, 4, 10}), {0.0f}, {0}),
               std::invalid_argument);  // L not divisible by 4
}

TEST(UNet, ClassConditioningChangesOutput) {
  Rng rng(3);
  UNet1d unet(tiny_config(), rng);
  nn::Tensor x({1, 4, 16});
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(rng.gaussian());
  }
  const nn::Tensor a = unet.forward(x, {5.0f}, {0});
  const nn::Tensor b = unet.forward(x, {5.0f}, {1});
  float diff = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) diff += std::abs(a[i] - b[i]);
  EXPECT_GT(diff, 1e-4f);
}

TEST(UNet, TimestepConditioningChangesOutput) {
  Rng rng(4);
  UNet1d unet(tiny_config(), rng);
  nn::Tensor x({1, 4, 16});
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(rng.gaussian());
  }
  const nn::Tensor a = unet.forward(x, {1.0f}, {0});
  const nn::Tensor b = unet.forward(x, {90.0f}, {0});
  float diff = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) diff += std::abs(a[i] - b[i]);
  EXPECT_GT(diff, 1e-4f);
}

TEST(UNet, FreshControlBranchIsNoOp) {
  // ControlNet's zero convolutions must make the control residuals exact
  // zeros before training, so conditioning on a hint changes nothing.
  Rng rng(5);
  const UNetConfig cfg = tiny_config();
  UNet1d unet(cfg, rng);
  ControlNetBranch control(cfg, rng);
  nn::Tensor x({1, 4, 16});
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(rng.gaussian());
  }
  nn::Tensor hint({1, kHintChannels, 16});
  for (std::size_t t = 0; t < 16; ++t) hint.at3(0, 0, t) = 1.0f;

  const ControlResiduals residuals =
      control.forward(x, {3.0f}, {1}, hint);
  for (std::size_t i = 0; i < residuals.skip1.size(); ++i) {
    EXPECT_EQ(residuals.skip1[i], 0.0f);
  }
  for (std::size_t i = 0; i < residuals.mid.size(); ++i) {
    EXPECT_EQ(residuals.mid[i], 0.0f);
  }

  const nn::Tensor without = unet.forward(x, {3.0f}, {1});
  const nn::Tensor with_ctrl = unet.forward(x, {3.0f}, {1}, &residuals);
  for (std::size_t i = 0; i < without.size(); ++i) {
    EXPECT_FLOAT_EQ(with_ctrl[i], without[i]);
  }
}

TEST(UNet, ControlResidualShapes) {
  Rng rng(6);
  const UNetConfig cfg = tiny_config();
  ControlNetBranch control(cfg, rng);
  nn::Tensor x({2, 4, 16});
  nn::Tensor hint({2, kHintChannels, 16});
  const ControlResiduals res = control.forward(x, {1.0f, 2.0f}, {0, 1}, hint);
  EXPECT_EQ(res.skip1.shape(), (std::vector<std::size_t>{2, 8, 16}));
  EXPECT_EQ(res.skip2.shape(), (std::vector<std::size_t>{2, 16, 8}));
  EXPECT_EQ(res.mid.shape(), (std::vector<std::size_t>{2, 16, 4}));
}

TEST(UNet, LoraParametersOnlyWithPositiveRank) {
  Rng rng(7);
  UNet1d plain(tiny_config(0), rng);
  EXPECT_TRUE(plain.lora_parameters().empty());
  UNet1d lora(tiny_config(4), rng);
  const auto adapters = lora.lora_parameters();
  EXPECT_EQ(adapters.size(), 8u);  // q,k,v,o each A+B
}

TEST(UNet, FreezeBaseLeavesOnlyAdaptersTrainable) {
  Rng rng(8);
  UNet1d unet(tiny_config(2), rng);
  unet.freeze_base();
  std::size_t trainable = 0;
  for (nn::Parameter* p : unet.parameters()) {
    if (p->trainable) ++trainable;
  }
  // Adapters plus the class ("word") embedding table stay trainable.
  EXPECT_EQ(trainable, unet.lora_parameters().size() + 1);
  EXPECT_TRUE(unet.class_embedding_table().trainable);
  unet.unfreeze_all();
  for (nn::Parameter* p : unet.parameters()) {
    EXPECT_TRUE(p->trainable);
  }
}

TEST(UNet, GradControlMatchesResidualShapes) {
  Rng rng(9);
  const UNetConfig cfg = tiny_config();
  UNet1d unet(cfg, rng);
  ControlNetBranch control(cfg, rng);
  nn::Tensor x({1, 4, 16});
  nn::Tensor hint({1, kHintChannels, 16});
  const ControlResiduals res = control.forward(x, {1.0f}, {0}, hint);
  const nn::Tensor out = unet.forward(x, {1.0f}, {0}, &res);
  unet.zero_grad();
  ControlResiduals grads;
  unet.backward(nn::Tensor::full(out.shape(), 1.0f), &grads);
  EXPECT_EQ(grads.skip1.shape(), res.skip1.shape());
  EXPECT_EQ(grads.skip2.shape(), res.skip2.shape());
  EXPECT_EQ(grads.mid.shape(), res.mid.shape());
  // Feeding the grads into the branch must accumulate nonzero gradients
  // on the zero convs (their input is nonzero).
  control.zero_grad();
  control.backward(grads);
  bool any_nonzero = false;
  for (nn::Parameter* p : control.parameters()) {
    for (std::size_t i = 0; i < p->grad.size(); ++i) {
      if (p->grad[i] != 0.0f) {
        any_nonzero = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(UNet, UpsampleHelpers) {
  nn::Tensor x({1, 2, 3});
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<float>(i);
  const nn::Tensor up = upsample2x(x);
  EXPECT_EQ(up.dim(2), 6u);
  EXPECT_EQ(up.at3(0, 0, 0), x.at3(0, 0, 0));
  EXPECT_EQ(up.at3(0, 0, 1), x.at3(0, 0, 0));
  EXPECT_EQ(up.at3(0, 1, 4), x.at3(0, 1, 2));
  const nn::Tensor back = upsample2x_backward(up);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_FLOAT_EQ(back[i], 2.0f * x[i]);
  }
}

TEST(UNet, ConcatSplitInverse) {
  nn::Tensor a({1, 2, 3});
  nn::Tensor b({1, 3, 3});
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = static_cast<float>(i);
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = 100.0f + static_cast<float>(i);
  const nn::Tensor cat = concat_channels(a, b);
  EXPECT_EQ(cat.dim(1), 5u);
  nn::Tensor ga, gb;
  split_channels(cat, 2, ga, gb);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(ga[i], a[i]);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_EQ(gb[i], b[i]);
  EXPECT_THROW(concat_channels(a, nn::Tensor({1, 3, 4})),
               std::invalid_argument);
}

TEST(ProtocolHint, OneHotPerPacket) {
  Rng rng(10);
  const net::Flow flow = flowgen::generate_flow(flowgen::App::kTeams, 6, rng);
  const nn::Tensor hint = protocol_hint(flow, 8);
  EXPECT_EQ(hint.shape(), (std::vector<std::size_t>{1, 3, 8}));
  for (std::size_t t = 0; t < 8; ++t) {
    float sum = 0.0f;
    for (std::size_t c = 0; c < 3; ++c) sum += hint.at3(0, c, t);
    EXPECT_FLOAT_EQ(sum, 1.0f) << "column " << t;
  }
}

TEST(UNet, WidenedHintChannelsAccepted) {
  // The pipeline widens the hint with the template latent; the branch
  // must consume whatever hint width the config declares.
  Rng rng(11);
  UNetConfig cfg = tiny_config();
  cfg.hint_channels = 7;
  ControlNetBranch control(cfg, rng);
  nn::Tensor x({1, 4, 16});
  nn::Tensor hint({1, 7, 16});
  const ControlResiduals res = control.forward(x, {1.0f}, {0}, hint);
  EXPECT_EQ(res.skip1.dim(1), cfg.base_channels);
}

TEST(ProtocolHint, PaddingUsesDominantProtocol) {
  net::Flow flow;
  flow.packets.push_back(net::make_udp_packet(1, 2, 3, 4, 8, 0.0));
  const nn::Tensor hint = protocol_hint(flow, 4);
  for (std::size_t t = 0; t < 4; ++t) {
    EXPECT_FLOAT_EQ(hint.at3(0, 1, t), 1.0f);  // UDP channel
  }
}

}  // namespace
}  // namespace repro::diffusion
