#include "nn/tensor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>

#include "nn/reshape.hpp"

namespace repro::nn {
namespace {

TEST(Tensor, ConstructionAndShape) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.size(), 24u);
  EXPECT_EQ(t.rank(), 3u);
  EXPECT_EQ(t.dim(1), 3u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FullFill) {
  Tensor t = Tensor::full({2, 2}, 3.5f);
  EXPECT_EQ(t[3], 3.5f);
  t.fill(-1.0f);
  EXPECT_EQ(t[0], -1.0f);
}

TEST(Tensor, IndexedAccess) {
  Tensor t({2, 3});
  t.at2(1, 2) = 7.0f;
  EXPECT_EQ(t[5], 7.0f);
  Tensor u({2, 3, 4});
  u.at3(1, 2, 3) = 9.0f;
  EXPECT_EQ(u[23], 9.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3});
  for (std::size_t i = 0; i < 6; ++i) t[i] = static_cast<float>(i);
  const Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.dim(0), 3u);
  EXPECT_EQ(r[5], 5.0f);
  EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
}

TEST(Tensor, RvalueReshapedStealsStorage) {
  Tensor t({2, 3});
  for (std::size_t i = 0; i < 6; ++i) t[i] = static_cast<float>(i);
  const float* before = t.data();
  const Tensor r = std::move(t).reshaped({6});
  // The rvalue overload must move the buffer, not deep-copy it.
  EXPECT_EQ(r.data(), before);
  EXPECT_EQ(r.rank(), 1u);
  EXPECT_EQ(r[5], 5.0f);
}

TEST(Tensor, ReshapeInplace) {
  Tensor t({2, 3});
  for (std::size_t i = 0; i < 6; ++i) t[i] = static_cast<float>(i);
  const float* before = t.data();
  t.reshape_inplace({3, 2});
  EXPECT_EQ(t.data(), before);
  EXPECT_EQ(t.dim(0), 3u);
  EXPECT_EQ(t.at2(2, 1), 5.0f);
  EXPECT_THROW(t.reshape_inplace({7}), std::invalid_argument);
}

TEST(Tensor, ArithmeticHelpers) {
  Tensor a = Tensor::full({3}, 2.0f);
  Tensor b = Tensor::full({3}, 5.0f);
  a.add(b);
  EXPECT_EQ(a[0], 7.0f);
  a.add_scaled(b, -0.2f);
  EXPECT_FLOAT_EQ(a[0], 6.0f);
  a.scale(0.5f);
  EXPECT_FLOAT_EQ(a[0], 3.0f);
  EXPECT_THROW(a.add(Tensor({4})), std::invalid_argument);
}

TEST(Tensor, Reductions) {
  Tensor t({4});
  t[0] = 1.0f;
  t[1] = -5.0f;
  t[2] = 2.0f;
  t[3] = 2.0f;
  EXPECT_FLOAT_EQ(t.sum(), 0.0f);
  EXPECT_FLOAT_EQ(t.mean(), 0.0f);
  EXPECT_FLOAT_EQ(t.abs_max(), 5.0f);
  EXPECT_FLOAT_EQ(t.l2_norm(), std::sqrt(34.0f));
}

TEST(Tensor, MatmulKnownValues) {
  Tensor a({2, 3});
  Tensor b({3, 2});
  // a = [[1,2,3],[4,5,6]], b = [[7,8],[9,10],[11,12]]
  for (std::size_t i = 0; i < 6; ++i) a[i] = static_cast<float>(i + 1);
  for (std::size_t i = 0; i < 6; ++i) b[i] = static_cast<float>(i + 7);
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at2(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at2(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at2(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at2(1, 1), 154.0f);
}

TEST(Tensor, MatmulTransposedVariantsAgree) {
  Tensor a({3, 4});
  Tensor b({4, 5});
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = static_cast<float>(i % 7) - 3.0f;
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = static_cast<float>(i % 5) - 2.0f;
  const Tensor c = matmul(a, b);

  // matmul_bt(a, b^T) == matmul(a, b)
  Tensor bt({5, 4});
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 5; ++j) bt.at2(j, i) = b.at2(i, j);
  }
  const Tensor c2 = matmul_bt(a, bt);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c2[i], c[i], 1e-5);
  }

  // matmul_at(a^T stored as a, b): (a^T)^T b  == a^T stored... verify
  // against explicit transpose.
  Tensor at({4, 3});
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 4; ++j) at.at2(j, i) = a.at2(i, j);
  }
  const Tensor c3 = matmul_at(a, matmul(a, b));  // [4, 5] = a^T (a b)
  const Tensor c3_ref = matmul(at, matmul(a, b));
  for (std::size_t i = 0; i < c3.size(); ++i) {
    EXPECT_NEAR(c3[i], c3_ref[i], 1e-4);
  }
}

TEST(Tensor, MatmulShapeErrors) {
  EXPECT_THROW(matmul(Tensor({2, 3}), Tensor({2, 3})), std::invalid_argument);
  EXPECT_THROW(matmul_bt(Tensor({2, 3}), Tensor({2, 4})),
               std::invalid_argument);
  EXPECT_THROW(matmul_at(Tensor({2, 3}), Tensor({3, 4})),
               std::invalid_argument);
}

TEST(Tensor, ElementwiseOps) {
  Tensor a = Tensor::full({2}, 3.0f);
  Tensor b = Tensor::full({2}, 2.0f);
  EXPECT_FLOAT_EQ(add(a, b)[0], 5.0f);
  EXPECT_FLOAT_EQ(sub(a, b)[0], 1.0f);
  EXPECT_FLOAT_EQ(mul(a, b)[0], 6.0f);
}

TEST(Reshape, NclNlcInverse) {
  Tensor x({2, 3, 4});
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<float>(i);
  const Tensor rows = ncl_to_nlc(x);
  EXPECT_EQ(rows.dim(0), 8u);
  EXPECT_EQ(rows.dim(1), 3u);
  // Position (n=1, l=2) channel 1 == x[1, 1, 2].
  EXPECT_EQ(rows.at2(1 * 4 + 2, 1), x.at3(1, 1, 2));
  const Tensor back = nlc_to_ncl(rows, 2, 4);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(back[i], x[i]);
  }
}

}  // namespace
}  // namespace repro::nn
