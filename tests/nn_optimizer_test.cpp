#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace repro::nn {
namespace {

TEST(Adam, MinimizesQuadratic) {
  // f(w) = sum (w - 3)^2, df/dw = 2(w - 3).
  Parameter w("w", Tensor::full({4}, 10.0f));
  Adam::Config cfg;
  cfg.lr = 0.1f;
  Adam opt({&w}, cfg);
  for (int step = 0; step < 500; ++step) {
    for (std::size_t i = 0; i < 4; ++i) {
      w.grad[i] = 2.0f * (w.value[i] - 3.0f);
    }
    opt.step();
    w.zero_grad();
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(w.value[i], 3.0f, 1e-2);
  }
}

TEST(Adam, SkipsFrozenParameters) {
  Parameter frozen("frozen", Tensor::full({2}, 5.0f));
  frozen.trainable = false;
  Parameter live("live", Tensor::full({2}, 5.0f));
  Adam opt({&frozen, &live});
  frozen.grad.fill(1.0f);
  live.grad.fill(1.0f);
  opt.step();
  EXPECT_FLOAT_EQ(frozen.value[0], 5.0f);
  EXPECT_NE(live.value[0], 5.0f);
}

TEST(Adam, WeightDecayShrinksWeights) {
  Parameter w("w", Tensor::full({1}, 4.0f));
  Adam::Config cfg;
  cfg.lr = 0.1f;
  cfg.weight_decay = 0.1f;
  Adam opt({&w}, cfg);
  // Zero gradient: only decay acts.
  for (int i = 0; i < 10; ++i) {
    opt.step();
  }
  EXPECT_LT(w.value[0], 4.0f);
  EXPECT_GT(w.value[0], 0.0f);
}

TEST(Adam, ResetStateClearsMoments) {
  Parameter w("w", Tensor::full({1}, 1.0f));
  Adam::Config cfg;
  cfg.lr = 0.5f;
  Adam opt({&w}, cfg);
  w.grad[0] = 1.0f;
  opt.step();
  const float after_one = w.value[0];
  opt.reset_state();
  // After reset, a step with the same gradient behaves like the first.
  Parameter w2("w2", Tensor::full({1}, after_one));
  Adam opt2({&w2}, cfg);
  w.grad[0] = 1.0f;
  w2.grad[0] = 1.0f;
  opt.step();
  opt2.step();
  EXPECT_NEAR(w.value[0], w2.value[0], 1e-6);
}

TEST(Sgd, SimpleStep) {
  Parameter w("w", Tensor::full({2}, 1.0f));
  Sgd opt({&w}, 0.5f);
  w.grad.fill(2.0f);
  opt.step();
  EXPECT_FLOAT_EQ(w.value[0], 0.0f);
}

TEST(ClipGradNorm, ScalesWhenAboveThreshold) {
  Parameter a("a", Tensor::zeros({2}));
  a.grad[0] = 3.0f;
  a.grad[1] = 4.0f;  // norm 5
  const float norm = clip_grad_norm({&a}, 1.0f);
  EXPECT_FLOAT_EQ(norm, 5.0f);
  EXPECT_NEAR(a.grad[0], 0.6f, 1e-6);
  EXPECT_NEAR(a.grad[1], 0.8f, 1e-6);
}

TEST(ClipGradNorm, LeavesSmallGradientsAlone) {
  Parameter a("a", Tensor::zeros({2}));
  a.grad[0] = 0.1f;
  clip_grad_norm({&a}, 1.0f);
  EXPECT_FLOAT_EQ(a.grad[0], 0.1f);
}

TEST(ClipGradNorm, IgnoresFrozenParams) {
  Parameter frozen("f", Tensor::zeros({1}));
  frozen.trainable = false;
  frozen.grad[0] = 100.0f;
  Parameter live("l", Tensor::zeros({1}));
  live.grad[0] = 0.5f;
  const float norm = clip_grad_norm({&frozen, &live}, 1.0f);
  EXPECT_FLOAT_EQ(norm, 0.5f);
  EXPECT_FLOAT_EQ(frozen.grad[0], 100.0f);
}

}  // namespace
}  // namespace repro::nn
