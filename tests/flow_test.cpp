#include "net/flow.hpp"

#include <gtest/gtest.h>

namespace repro::net {
namespace {

TEST(FlowKey, CanonicalOrdersEndpoints) {
  FlowKey a{0x0A000002, 0x0A000001, 50000, 443, IpProto::kTcp};
  FlowKey b{0x0A000001, 0x0A000002, 443, 50000, IpProto::kTcp};
  EXPECT_EQ(a.canonical(), b.canonical());
}

TEST(FlowKey, CanonicalIsIdempotent) {
  FlowKey a{0x0A000001, 0x0B000001, 1234, 80, IpProto::kUdp};
  EXPECT_EQ(a.canonical(), a.canonical().canonical());
}

TEST(FlowKey, FromPacketExtractsPorts) {
  const auto pkt = make_tcp_packet(1, 2, 1000, 2000, 0, 0.0);
  const FlowKey key = FlowKey::from_packet(pkt);
  EXPECT_EQ(key.src_port, 1000);
  EXPECT_EQ(key.dst_port, 2000);
  EXPECT_EQ(key.protocol, IpProto::kTcp);
}

TEST(FlowKey, IcmpHasZeroPorts) {
  const auto pkt = make_icmp_packet(1, 2, 8, 0, 0, 0.0);
  const FlowKey key = FlowKey::from_packet(pkt);
  EXPECT_EQ(key.src_port, 0);
  EXPECT_EQ(key.dst_port, 0);
}

TEST(Flow, ByteCountAndDuration) {
  Flow flow;
  flow.packets.push_back(make_udp_packet(1, 2, 3, 4, 100, 1.0));
  flow.packets.push_back(make_udp_packet(2, 1, 4, 3, 50, 3.5));
  EXPECT_EQ(flow.byte_count(), (20u + 8u + 100u) + (20u + 8u + 50u));
  EXPECT_DOUBLE_EQ(flow.duration(), 2.5);
}

TEST(Flow, DurationZeroForSinglePacket) {
  Flow flow;
  flow.packets.push_back(make_udp_packet(1, 2, 3, 4, 0, 9.0));
  EXPECT_DOUBLE_EQ(flow.duration(), 0.0);
}

TEST(Flow, DominantProtocolMajority) {
  Flow flow;
  flow.packets.push_back(make_tcp_packet(1, 2, 3, 4, 0, 0.0));
  flow.packets.push_back(make_udp_packet(1, 2, 3, 4, 0, 0.1));
  flow.packets.push_back(make_udp_packet(1, 2, 3, 4, 0, 0.2));
  EXPECT_EQ(flow.dominant_protocol(), IpProto::kUdp);
  EXPECT_NEAR(flow.protocol_fraction(IpProto::kUdp), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(flow.protocol_fraction(IpProto::kTcp), 1.0 / 3.0, 1e-12);
}

TEST(Flow, AssembleGroupsBidirectionalTraffic) {
  std::vector<Packet> packets;
  packets.push_back(make_tcp_packet(0x0A000001, 0x0B000001, 1000, 443, 0, 0.0));
  packets.push_back(make_tcp_packet(0x0B000001, 0x0A000001, 443, 1000, 0, 0.1));
  packets.push_back(make_udp_packet(0x0A000001, 0x0B000001, 1000, 443, 0, 0.2));
  const auto flows = assemble_flows(packets);
  // TCP pair collapses into one flow; UDP with the same 4-tuple is a
  // separate flow because the protocol differs.
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_EQ(flows[0].packets.size(), 2u);
  EXPECT_EQ(flows[1].packets.size(), 1u);
}

TEST(Flow, AssemblePreservesArrivalOrderWithinFlow) {
  std::vector<Packet> packets;
  for (int i = 0; i < 5; ++i) {
    packets.push_back(
        make_udp_packet(1, 2, 10, 20, static_cast<std::size_t>(i), i * 0.1));
  }
  const auto flows = assemble_flows(packets);
  ASSERT_EQ(flows.size(), 1u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(flows[0].packets[i].payload.size(), i);
  }
}

TEST(Flow, FlattenSortsByTimestamp) {
  Flow a, b;
  a.packets.push_back(make_udp_packet(1, 2, 3, 4, 0, 5.0));
  a.packets.push_back(make_udp_packet(1, 2, 3, 4, 0, 7.0));
  b.packets.push_back(make_udp_packet(5, 6, 7, 8, 0, 6.0));
  const auto flat = flatten_flows({a, b});
  ASSERT_EQ(flat.size(), 3u);
  EXPECT_DOUBLE_EQ(flat[0].timestamp, 5.0);
  EXPECT_DOUBLE_EQ(flat[1].timestamp, 6.0);
  EXPECT_DOUBLE_EQ(flat[2].timestamp, 7.0);
}

TEST(Flow, FlattenBreaksTimestampTiesByFlowThenPacketIndex) {
  // Regression: equal timestamps must order by (flow index, packet
  // index), never by allocation address or sort instability — the
  // open-loop emitter relies on this for byte-identical pcap output.
  Flow a, b;
  a.packets.push_back(make_udp_packet(1, 2, 3, 4, 10, 1.0));
  a.packets.push_back(make_udp_packet(1, 2, 3, 4, 11, 1.0));
  b.packets.push_back(make_udp_packet(5, 6, 7, 8, 20, 1.0));
  b.packets.push_back(make_udp_packet(5, 6, 7, 8, 21, 2.0));
  const auto flat = flatten_flows({a, b});
  ASSERT_EQ(flat.size(), 4u);
  // All three t=1.0 packets: flow 0's packets first (in packet order),
  // then flow 1's.
  EXPECT_EQ(flat[0].payload.size(), 10u);
  EXPECT_EQ(flat[1].payload.size(), 11u);
  EXPECT_EQ(flat[2].payload.size(), 20u);
  EXPECT_EQ(flat[3].payload.size(), 21u);
}

TEST(FlowKey, ToStringIsReadable) {
  FlowKey key{0xC0A80101, 0x0D0D0D0D, 50000, 443, IpProto::kTcp};
  const std::string s = key.to_string();
  EXPECT_NE(s.find("192.168.1.1:50000"), std::string::npos);
  EXPECT_NE(s.find("TCP"), std::string::npos);
}

}  // namespace
}  // namespace repro::net
