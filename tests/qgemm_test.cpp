// Quantized GEMM kernel layer (src/nn/kernels/qgemm.hpp): the int8 fast
// path is checked bit-for-bit against a naive integer-accumulation
// reference (int32 sums are exact, so equality is ==, not EXPECT_NEAR)
// over odd sizes that exercise the kMr row tails and kNr panel tails,
// plus the absmax-calibration round-trip bound, the accumulate mode,
// the layer-facing adapters' per-call activation quantization, and the
// byte arena's lease-and-reuse contract.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "nn/kernels/qgemm.hpp"

namespace repro::nn {
namespace {

std::vector<float> random_vec(std::size_t size, Rng& rng) {
  std::vector<float> v(size);
  for (auto& x : v) x = static_cast<float>(rng.gaussian());
  return v;
}

/// Naive reference: exact integer accumulation then one dequantizing
/// multiply per element — the same arithmetic the blocked kernel
/// performs, so results must match bit for bit.
void ref_qgemm(std::size_t m, std::size_t n, std::size_t k,
               kernels::QAView a, kernels::QBView b, float dq,
               std::vector<float>& c, std::size_t ldc,
               kernels::Accumulate acc) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      std::int64_t sum = 0;
      for (std::size_t p = 0; p < k; ++p) {
        sum += static_cast<std::int64_t>(
                   a.data[i * a.row_stride + p * a.k_stride]) *
               static_cast<std::int64_t>(
                   b.data[p * b.k_stride + j * b.col_stride]);
      }
      // volatile pins the two-roundings semantics the kernel promises
      // (qgemm.cpp builds with -ffp-contract=off): without it the
      // compiler may fuse multiply and add into one FMA here, which
      // rounds once and breaks the bit-for-bit comparison under kAdd.
      volatile float v =
          static_cast<float>(static_cast<std::int32_t>(sum)) * dq;
      float& dst = c[i * ldc + j];
      dst = (acc == kernels::Accumulate::kAdd ? dst + v : v);
    }
  }
}

void expect_identical(const std::vector<float>& got,
                      const std::vector<float>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << what << " at " << i;
  }
}

TEST(Qgemm, ScaleRoundTripStaysWithinHalfStep) {
  Rng rng(3);
  const auto x = random_vec(257, rng);
  const kernels::QuantizedTensor qt =
      kernels::quantize_tensor(x.data(), x.size());
  const float amax = kernels::absmax(x.data(), x.size());
  EXPECT_FLOAT_EQ(qt.scale, amax / 127.0f);
  for (std::size_t i = 0; i < x.size(); ++i) {
    // Round half away from zero: the dequantized value sits within half
    // a quantization step of the original (no clamp can bite — absmax
    // itself maps to exactly +-127).
    const float back = static_cast<float>(qt.data[i]) * qt.scale;
    EXPECT_LE(std::fabs(x[i] - back), 0.5f * qt.scale + 1e-6f) << i;
    EXPECT_LE(std::abs(static_cast<int>(qt.data[i])), 127) << i;
  }
}

TEST(Qgemm, AllZeroTensorGetsUnitScale) {
  const std::vector<float> zeros(64, 0.0f);
  const kernels::QuantizedTensor qt =
      kernels::quantize_tensor(zeros.data(), zeros.size());
  EXPECT_FLOAT_EQ(qt.scale, 1.0f);
  for (const std::int8_t q : qt.data) EXPECT_EQ(q, 0);
}

// Sizes straddle the kMr = 4 row tiles (1..5) and kNr = 16 panels
// (15/16/17), with odd k so nothing divides evenly.
TEST(Qgemm, MatchesIntegerReferenceOverTails) {
  Rng rng(7);
  for (std::size_t m : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                        std::size_t{4}, std::size_t{5}, std::size_t{17}}) {
    for (std::size_t n : {std::size_t{1}, std::size_t{15}, std::size_t{16},
                          std::size_t{17}, std::size_t{40}}) {
      const std::size_t k = 13;
      const auto af = random_vec(m * k, rng);
      const auto bf = random_vec(k * n, rng);
      const auto aq = kernels::quantize_tensor(af.data(), af.size());
      const auto bq = kernels::quantize_tensor(bf.data(), bf.size());
      const float dq = aq.scale * bq.scale;
      std::vector<float> got(m * n, 0.5f), want(m * n, 0.5f);
      kernels::qgemm(m, n, k, {aq.data.data(), k, 1}, {bq.data.data(), n, 1},
                     dq, got.data(), n, kernels::Accumulate::kOverwrite);
      ref_qgemm(m, n, k, {aq.data.data(), k, 1}, {bq.data.data(), n, 1}, dq,
                want, n, kernels::Accumulate::kOverwrite);
      expect_identical(got, want, "qgemm");
    }
  }
}

TEST(Qgemm, AccumulateAddsIntoExistingC) {
  Rng rng(11);
  const std::size_t m = 5, n = 19, k = 9;
  const auto af = random_vec(m * k, rng);
  const auto bf = random_vec(k * n, rng);
  const auto aq = kernels::quantize_tensor(af.data(), af.size());
  const auto bq = kernels::quantize_tensor(bf.data(), bf.size());
  const float dq = aq.scale * bq.scale;
  std::vector<float> got(m * n, 0.25f), want(m * n, 0.25f);
  kernels::qgemm(m, n, k, {aq.data.data(), k, 1}, {bq.data.data(), n, 1}, dq,
                 got.data(), n, kernels::Accumulate::kAdd);
  ref_qgemm(m, n, k, {aq.data.data(), k, 1}, {bq.data.data(), n, 1}, dq, want,
            n, kernels::Accumulate::kAdd);
  expect_identical(got, want, "qgemm kAdd");
}

TEST(Qgemm, NtAdapterMatchesManualActivationQuantization) {
  Rng rng(13);
  const std::size_t n = 6, m = 21, k = 10;  // C[n,k] = A[n,m] x W[k,m]^T
  const auto a = random_vec(n * m, rng);
  const auto w = random_vec(k * m, rng);
  const auto wq = kernels::quantize_tensor(w.data(), w.size());

  std::vector<float> got(n * k, 0.0f);
  kernels::qgemm_nt(n, m, k, a.data(), wq, got.data());

  // Reference replays the adapter's own quantization choice (per-call
  // absmax over the activation), then the exact integer product.
  const float scale_a = kernels::quant_scale(kernels::absmax(a.data(), n * m));
  std::vector<std::int8_t> aq(n * m);
  kernels::quantize(a.data(), n * m, scale_a, aq.data());
  std::vector<float> want(n * k, 0.0f);
  ref_qgemm(n, k, m, {aq.data(), m, 1}, {wq.data.data(), 1, m},
            scale_a * wq.scale, want, k, kernels::Accumulate::kOverwrite);
  expect_identical(got, want, "qgemm_nt");
}

TEST(Qgemm, NnAdapterMatchesManualActivationQuantization) {
  Rng rng(17);
  const std::size_t n = 7, k = 12, m = 33;  // C[n,m] = Wq[n,k] x B[k,m]
  const auto w = random_vec(n * k, rng);
  const auto b = random_vec(k * m, rng);
  const auto wq = kernels::quantize_tensor(w.data(), w.size());

  std::vector<float> got(n * m, 0.0f);
  kernels::qgemm_nn(n, k, m, wq, b.data(), got.data());

  const float scale_b = kernels::quant_scale(kernels::absmax(b.data(), k * m));
  std::vector<std::int8_t> bqv(k * m);
  kernels::quantize(b.data(), k * m, scale_b, bqv.data());
  std::vector<float> want(n * m, 0.0f);
  ref_qgemm(n, m, k, {wq.data.data(), k, 1}, {bqv.data(), m, 1},
            wq.scale * scale_b, want, m, kernels::Accumulate::kOverwrite);
  expect_identical(got, want, "qgemm_nn");
}

TEST(Qgemm, ByteArenaReusesScratchAcrossCalls) {
  Rng rng(19);
  const std::size_t n = 8, m = 24, k = 16;
  const auto a = random_vec(n * m, rng);
  const auto w = random_vec(k * m, rng);
  const auto wq = kernels::quantize_tensor(w.data(), w.size());
  std::vector<float> c(n * k, 0.0f);

  kernels::quant_arena_trim();
  kernels::qgemm_nt(n, m, k, a.data(), wq, c.data());  // warm the free list
  const kernels::QuantArenaStats warm = kernels::quant_arena_stats();
  EXPECT_GT(warm.free_buffers, 0u);

  kernels::qgemm_nt(n, m, k, a.data(), wq, c.data());
  const kernels::QuantArenaStats after = kernels::quant_arena_stats();
  // A same-shape call is served entirely from the free list: reuse
  // count rises, allocation count does not.
  EXPECT_EQ(after.allocs, warm.allocs);
  EXPECT_GT(after.reuses, warm.reuses);
  EXPECT_EQ(after.free_buffers, warm.free_buffers);
}

}  // namespace
}  // namespace repro::nn
