// Full-pipeline checkpoint round-trip: a trained TraceDiffusion with
// every component populated (autoencoder + U-Net + LoRA adapters +
// ControlNet) is saved, reloaded into a fresh pipeline, and must
// generate bit-identical flows — the invariant ModelRegistry hot-swap
// depends on (a hot-swapped checkpoint must reproduce exactly what the
// process that saved it would have generated).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "diffusion/pipeline.hpp"
#include "flowgen/generator.hpp"
#include "serve/registry.hpp"

namespace repro::diffusion {
namespace {

PipelineConfig lora_config() {
  PipelineConfig cfg;
  cfg.packets = 8;
  cfg.autoencoder.hidden_dim = 48;
  cfg.autoencoder.latent_dim = 8;
  cfg.unet.base_channels = 8;
  cfg.unet.temb_dim = 16;
  cfg.unet.groups = 4;
  cfg.unet.lora_rank = 2;  // LoRA adapters in the checkpoint
  cfg.timesteps = 20;
  cfg.ae_epochs = 12;
  cfg.diffusion_epochs = 2;
  cfg.diffusion_batch = 4;
  cfg.control_epochs = 1;  // ControlNet branch trained too
  cfg.seed = 9;
  return cfg;
}

flowgen::Dataset small_dataset(std::size_t per_class, std::uint64_t seed) {
  Rng rng(seed);
  flowgen::Dataset ds;
  for (std::size_t i = 0; i < per_class; ++i) {
    net::Flow a = flowgen::generate_flow(flowgen::App::kNetflix, 8, rng);
    a.label = 0;
    ds.flows.push_back(std::move(a));
    net::Flow b = flowgen::generate_flow(flowgen::App::kTeams, 8, rng);
    b.label = 1;
    ds.flows.push_back(std::move(b));
  }
  return ds;
}

void expect_same_packets(const std::vector<net::Flow>& a,
                         const std::vector<net::Flow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    ASSERT_EQ(a[i].packets.size(), b[i].packets.size());
    for (std::size_t p = 0; p < a[i].packets.size(); ++p) {
      EXPECT_EQ(a[i].packets[p].serialize(), b[i].packets[p].serialize());
    }
  }
}

void expect_same_flows(const std::vector<net::Flow>& a,
                       const std::vector<net::Flow>& b) {
  expect_same_packets(a, b);
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    for (std::size_t p = 0;
         p < a[i].packets.size() && p < b[i].packets.size(); ++p) {
      EXPECT_EQ(a[i].packets[p].timestamp, b[i].packets[p].timestamp);
    }
  }
}

TEST(PipelineCheckpoint, FullRoundTripGeneratesIdenticalFlows) {
  const std::string prefix = "/tmp/repro_full_ckpt";
  GenerateOptions opts;
  opts.count = 3;
  opts.ddim_steps = 5;

  std::vector<net::Flow> expected_a, expected_b, expected_ddpm;
  {
    TraceDiffusion trained(lora_config(), {"netflix", "teams"});
    trained.fit(small_dataset(4, 77));
    trained.fit_lora(small_dataset(2, 88), /*epochs=*/1);  // adapters != 0
    trained.save(prefix);
    expected_a = trained.generate_seeded(0, opts, 31337);
    expected_b = trained.generate_seeded(1, opts, 31338);
    GenerateOptions ddpm = opts;
    ddpm.sampler = SamplerKind::kDdpm;
    ddpm.count = 1;
    expected_ddpm = trained.generate_seeded(0, ddpm, 99);
  }  // trained pipeline destroyed: only the checkpoint survives

  TraceDiffusion restored(lora_config(), {"netflix", "teams"});
  restored.load(prefix);
  expect_same_flows(restored.generate_seeded(0, opts, 31337), expected_a);
  expect_same_flows(restored.generate_seeded(1, opts, 31338), expected_b);
  GenerateOptions ddpm = opts;
  ddpm.sampler = SamplerKind::kDdpm;
  ddpm.count = 1;
  expect_same_flows(restored.generate_seeded(0, ddpm, 99), expected_ddpm);

  std::remove((prefix + ".weights").c_str());
  std::remove((prefix + ".meta").c_str());
}

TEST(PipelineCheckpoint, RegistryLoadsCheckpointWithLoraOverlay) {
  const std::string prefix = "/tmp/repro_reg_ckpt";
  const std::string lora_path = "/tmp/repro_reg_ckpt.lora";
  GenerateOptions opts;
  opts.count = 2;
  opts.ddim_steps = 4;

  std::vector<net::Flow> base_flows, tuned_flows;
  {
    TraceDiffusion trained(lora_config(), {"netflix", "teams"});
    trained.fit(small_dataset(4, 77));
    trained.save(prefix);  // base checkpoint: adapters still at init
    base_flows = trained.generate_seeded(0, opts, 5);
    trained.fit_lora(small_dataset(3, 88), /*epochs=*/2);
    serve::save_lora_adapter(trained, lora_path);  // adapter-only file
    tuned_flows = trained.generate_seeded(0, opts, 5);
  }

  serve::ModelRegistry registry;
  registry.load_checkpoint("base", lora_config(), {"netflix", "teams"},
                           prefix, "b1");
  registry.load_checkpoint("tuned", lora_config(), {"netflix", "teams"},
                           prefix, "t1", lora_path);
  ASSERT_EQ(registry.size(), 2u);

  // Base entry reproduces the pre-LoRA flows exactly.
  expect_same_flows(
      registry.snapshot("base")->pipeline->generate_seeded(0, opts, 5),
      base_flows);
  // The overlay entry reproduces the fine-tuned MODEL bits (packet
  // bytes) from the same base checkpoint. Timestamps may differ from
  // the live fine-tuned pipeline: fit_lora also refits the timing
  // models, which live in the base checkpoint's meta, not in the
  // adapter-only weight file.
  const auto tuned_served =
      registry.snapshot("tuned")->pipeline->generate_seeded(0, opts, 5);
  expect_same_packets(tuned_served, tuned_flows);
  // And it is bit-identical (timestamps included) to a manual
  // load-base-then-overlay reconstruction — what hot-swap replays.
  TraceDiffusion manual(lora_config(), {"netflix", "teams"});
  manual.load(prefix);
  serve::load_lora_adapter(manual, lora_path);
  expect_same_flows(manual.generate_seeded(0, opts, 5), tuned_served);

  // Adapter helpers refuse models without LoRA rank.
  PipelineConfig no_rank = lora_config();
  no_rank.unet.lora_rank = 0;
  TraceDiffusion plain(no_rank, {"netflix", "teams"});
  EXPECT_THROW(serve::lora_adapter_parameters(plain), std::logic_error);

  std::remove((prefix + ".weights").c_str());
  std::remove((prefix + ".meta").c_str());
  std::remove(lora_path.c_str());
}

}  // namespace
}  // namespace repro::diffusion
