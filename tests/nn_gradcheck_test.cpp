// Finite-difference gradient verification for every layer with a
// hand-written backward pass. Each check builds a scalar loss
// L = sum(w_out * forward(x)) with fixed random output weights, then
// compares analytic input/parameter gradients against central
// differences. Double-precision would be nicer, but float32 with loose
// tolerances and small magnitudes is sufficient to catch every sign,
// index and reduction error.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/parallel/thread_pool.hpp"
#include "common/rng.hpp"
#include "diffusion/resblock.hpp"
#include "diffusion/unet1d.hpp"
#include "nn/activation.hpp"
#include "nn/attention.hpp"
#include "nn/conv1d.hpp"
#include "nn/embedding.hpp"
#include "nn/linear.hpp"
#include "nn/lora.hpp"
#include "nn/norm.hpp"

namespace repro::nn {
namespace {

constexpr float kEps = 1e-3f;
constexpr float kTol = 2e-2f;  // relative-ish tolerance for float32

void randomize(Tensor& t, Rng& rng, float scale = 0.5f) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.gaussian(0.0, scale));
  }
}

/// Weighted-sum loss and its gradient wrt the module output.
float weighted_loss(const Tensor& out, const Tensor& w) {
  double acc = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    acc += static_cast<double>(out[i]) * w[i];
  }
  return static_cast<float>(acc);
}

void expect_close(float analytic, float numeric, const std::string& what) {
  const float denom = std::max({std::abs(analytic), std::abs(numeric), 0.1f});
  EXPECT_NEAR(analytic / denom, numeric / denom, kTol) << what;
}

/// Checks d loss / d x for a single-input module.
void check_input_grad(Module& module, Tensor x, Rng& rng,
                      std::size_t probes = 6) {
  Tensor out = module.forward(x);
  Tensor w(out.shape());
  randomize(w, rng, 1.0f);
  module.zero_grad();
  const Tensor grad_x = module.backward(w);
  for (std::size_t p = 0; p < probes; ++p) {
    const std::size_t i = rng.uniform_u64(x.size());
    Tensor xp = x, xm = x;
    xp[i] += kEps;
    xm[i] -= kEps;
    const float lp = weighted_loss(module.forward(xp), w);
    const float lm = weighted_loss(module.forward(xm), w);
    const float numeric = (lp - lm) / (2.0f * kEps);
    expect_close(grad_x[i], numeric, "input grad index " + std::to_string(i));
  }
  // Restore cached state for any following checks.
  module.forward(x);
}

/// Checks d loss / d theta for every parameter of the module.
void check_param_grads(Module& module, const Tensor& x, Rng& rng,
                       std::size_t probes_per_param = 4) {
  Tensor out = module.forward(x);
  Tensor w(out.shape());
  randomize(w, rng, 1.0f);
  module.zero_grad();
  module.backward(w);
  for (Parameter* param : module.parameters()) {
    for (std::size_t p = 0; p < probes_per_param; ++p) {
      const std::size_t i = rng.uniform_u64(param->value.size());
      const float saved = param->value[i];
      param->value[i] = saved + kEps;
      const float lp = weighted_loss(module.forward(x), w);
      param->value[i] = saved - kEps;
      const float lm = weighted_loss(module.forward(x), w);
      param->value[i] = saved;
      const float numeric = (lp - lm) / (2.0f * kEps);
      expect_close(param->grad[i], numeric,
                   param->name + "[" + std::to_string(i) + "]");
    }
  }
  module.forward(x);
}

TEST(GradCheck, Linear) {
  Rng rng(1);
  Linear layer(5, 4, rng);
  Tensor x({3, 5});
  randomize(x, rng);
  check_input_grad(layer, x, rng);
  check_param_grads(layer, x, rng);
}

TEST(GradCheck, LinearNoBias) {
  Rng rng(2);
  Linear layer(4, 3, rng, /*bias=*/false);
  Tensor x({2, 4});
  randomize(x, rng);
  check_input_grad(layer, x, rng);
  check_param_grads(layer, x, rng);
}

TEST(GradCheck, Conv1dStride1) {
  Rng rng(3);
  Conv1d layer(3, 4, 3, rng);
  Tensor x({2, 3, 8});
  randomize(x, rng);
  check_input_grad(layer, x, rng);
  check_param_grads(layer, x, rng);
}

TEST(GradCheck, Conv1dStride2) {
  Rng rng(4);
  Conv1d layer(2, 3, 3, rng, /*stride=*/2);
  Tensor x({2, 2, 8});
  randomize(x, rng);
  check_input_grad(layer, x, rng);
  check_param_grads(layer, x, rng);
}

TEST(GradCheck, Conv1dKernel1NoPadding) {
  Rng rng(5);
  Conv1d layer(3, 3, 1, rng, 1, 0);
  Tensor x({1, 3, 6});
  randomize(x, rng);
  check_input_grad(layer, x, rng);
  check_param_grads(layer, x, rng);
}

TEST(GradCheck, GroupNorm) {
  Rng rng(6);
  GroupNorm layer(6, 2);
  Tensor x({2, 6, 5});
  randomize(x, rng, 1.0f);
  check_input_grad(layer, x, rng);
  check_param_grads(layer, x, rng);
}

TEST(GradCheck, LayerNorm) {
  Rng rng(7);
  LayerNorm layer(8);
  Tensor x({4, 8});
  randomize(x, rng, 1.0f);
  check_input_grad(layer, x, rng);
  check_param_grads(layer, x, rng);
}

TEST(GradCheck, Activations) {
  Rng rng(8);
  Tensor x({3, 7});
  randomize(x, rng, 1.5f);
  SiLU silu;
  check_input_grad(silu, x, rng);
  Tanh tanh_layer;
  check_input_grad(tanh_layer, x, rng);
  Sigmoid sigmoid;
  check_input_grad(sigmoid, x, rng);
  LeakyReLU lrelu(0.2f);
  check_input_grad(lrelu, x, rng);
}

TEST(GradCheck, SelfAttention) {
  Rng rng(9);
  SelfAttention1d layer(6, rng);
  Tensor x({2, 6, 5});
  randomize(x, rng);
  check_input_grad(layer, x, rng);
  check_param_grads(layer, x, rng, 2);
}

TEST(GradCheck, LoraLinear) {
  Rng rng(10);
  auto base = std::make_unique<Linear>(5, 4, rng);
  LoraLinear layer(std::move(base), /*rank=*/2, /*alpha=*/4.0f, rng);
  // Perturb B away from zero so its gradient check is non-trivial.
  for (Parameter* p : layer.parameters()) {
    if (p->name.rfind(".B") != std::string::npos) {
      randomize(p->value, rng, 0.3f);
    }
  }
  Tensor x({3, 5});
  randomize(x, rng);
  check_input_grad(layer, x, rng);
  check_param_grads(layer, x, rng);
}

TEST(GradCheck, EmbeddingScattersGrad) {
  Rng rng(11);
  Embedding layer(5, 3, rng);
  Tensor ids({4});
  ids[0] = 1;
  ids[1] = 3;
  ids[2] = 1;
  ids[3] = 0;
  Tensor out = layer.forward(ids);
  Tensor w(out.shape());
  randomize(w, rng, 1.0f);
  layer.zero_grad();
  layer.backward(w);
  // Row 1 receives grads from samples 0 and 2.
  Parameter& table = layer.table();
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_FLOAT_EQ(table.grad[1 * 3 + j], w.at2(0, j) + w.at2(2, j));
    EXPECT_FLOAT_EQ(table.grad[3 * 3 + j], w.at2(1, j));
    EXPECT_FLOAT_EQ(table.grad[2 * 3 + j], 0.0f);
  }
}

TEST(GradCheck, ResBlock) {
  Rng rng(12);
  diffusion::ResBlock block(4, 6, 8, 2, rng, "test.res");
  Tensor x({2, 4, 8});
  Tensor temb({2, 8});
  randomize(x, rng);
  randomize(temb, rng);

  Tensor out = block.forward(x, temb);
  Tensor w(out.shape());
  randomize(w, rng, 1.0f);
  for (Parameter* p : block.parameters()) p->zero_grad();
  Tensor grad_temb({2, 8});
  const Tensor grad_x = block.backward(w, grad_temb);

  auto loss_at = [&](const Tensor& xx, const Tensor& tt) {
    return weighted_loss(block.forward(xx, tt), w);
  };
  for (int probe = 0; probe < 4; ++probe) {
    const std::size_t i = rng.uniform_u64(x.size());
    Tensor xp = x, xm = x;
    xp[i] += kEps;
    xm[i] -= kEps;
    expect_close(grad_x[i], (loss_at(xp, temb) - loss_at(xm, temb)) / (2 * kEps),
                 "resblock x grad");
    const std::size_t j = rng.uniform_u64(temb.size());
    Tensor tp = temb, tm = temb;
    tp[j] += kEps;
    tm[j] -= kEps;
    expect_close(grad_temb[j],
                 (loss_at(x, tp) - loss_at(x, tm)) / (2 * kEps),
                 "resblock temb grad");
  }
  // Spot-check a few parameters.
  block.forward(x, temb);
  for (Parameter* p : block.parameters()) p->zero_grad();
  block.backward(w, grad_temb);
  auto params = block.parameters();
  for (std::size_t pi = 0; pi < params.size(); pi += 3) {
    Parameter* param = params[pi];
    const std::size_t i = rng.uniform_u64(param->value.size());
    const float saved = param->value[i];
    param->value[i] = saved + kEps;
    const float lp = loss_at(x, temb);
    param->value[i] = saved - kEps;
    const float lm = loss_at(x, temb);
    param->value[i] = saved;
    expect_close(param->grad[i], (lp - lm) / (2 * kEps), param->name);
  }
}

TEST(GradCheck, UNetEndToEnd) {
  Rng rng(13);
  diffusion::UNetConfig cfg;
  cfg.in_channels = 3;
  cfg.base_channels = 4;
  cfg.temb_dim = 8;
  cfg.num_classes = 2;
  cfg.groups = 2;
  diffusion::UNet1d unet(cfg, rng);
  Tensor x({2, 3, 8});
  randomize(x, rng);
  const std::vector<float> t = {3.0f, 7.0f};
  const std::vector<int> cls = {0, 2};  // one conditional, one null

  Tensor out = unet.forward(x, t, cls);
  ASSERT_EQ(out.shape(), x.shape());
  Tensor w(out.shape());
  randomize(w, rng, 1.0f);
  unet.zero_grad();
  const Tensor grad_x = unet.backward(w);

  auto loss_at = [&](const Tensor& xx) {
    return weighted_loss(unet.forward(xx, t, cls), w);
  };
  for (int probe = 0; probe < 5; ++probe) {
    const std::size_t i = rng.uniform_u64(x.size());
    Tensor xp = x, xm = x;
    xp[i] += kEps;
    xm[i] -= kEps;
    expect_close(grad_x[i], (loss_at(xp) - loss_at(xm)) / (2 * kEps),
                 "unet x grad " + std::to_string(i));
  }

  // Parameter spot checks across the depth of the network.
  unet.forward(x, t, cls);
  unet.zero_grad();
  unet.backward(w);
  auto params = unet.parameters();
  for (std::size_t pi = 0; pi < params.size(); pi += 7) {
    Parameter* param = params[pi];
    const std::size_t i = rng.uniform_u64(param->value.size());
    const float saved = param->value[i];
    param->value[i] = saved + kEps;
    const float lp = loss_at(x);
    param->value[i] = saved - kEps;
    const float lm = loss_at(x);
    param->value[i] = saved;
    expect_close(param->grad[i], (lp - lm) / (2 * kEps), param->name);
  }
}

// The same analytic-vs-numeric checks with the thread pool engaged
// (REPRO_THREADS=4): the parallel forward/backward paths of Linear,
// Conv1d and SelfAttention1d must produce the exact gradients the
// serial code does — static chunking makes them bit-identical, so the
// tolerances need no loosening.
class GradCheckParallel : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_threads_ = parallel::thread_count();
    parallel::set_thread_count(4);
  }
  void TearDown() override { parallel::set_thread_count(saved_threads_); }

 private:
  std::size_t saved_threads_ = 1;
};

TEST_F(GradCheckParallel, Linear) {
  Rng rng(1);
  Linear layer(5, 4, rng);
  Tensor x({3, 5});
  randomize(x, rng);
  check_input_grad(layer, x, rng);
  check_param_grads(layer, x, rng);
}

TEST_F(GradCheckParallel, Conv1d) {
  Rng rng(3);
  Conv1d layer(3, 4, 3, rng);
  Tensor x({2, 3, 8});
  randomize(x, rng);
  check_input_grad(layer, x, rng);
  check_param_grads(layer, x, rng);
}

TEST_F(GradCheckParallel, LoraLinear) {
  // The LoRA forward/backward route through the arena-backed GEMM
  // kernels (ax cache + delta scratch); gradients must stay exact.
  Rng rng(10);
  auto base = std::make_unique<Linear>(5, 4, rng);
  LoraLinear layer(std::move(base), /*rank=*/2, /*alpha=*/4.0f, rng);
  for (Parameter* p : layer.parameters()) {
    if (p->name.rfind(".B") != std::string::npos) {
      randomize(p->value, rng, 0.3f);
    }
  }
  Tensor x({3, 5});
  randomize(x, rng);
  check_input_grad(layer, x, rng);
  check_param_grads(layer, x, rng);
}

TEST_F(GradCheckParallel, SelfAttention) {
  Rng rng(9);
  SelfAttention1d layer(6, rng);
  Tensor x({2, 6, 5});
  randomize(x, rng);
  check_input_grad(layer, x, rng);
  check_param_grads(layer, x, rng, 2);
}

TEST_F(GradCheckParallel, UNetEndToEnd) {
  Rng rng(13);
  diffusion::UNetConfig cfg;
  cfg.in_channels = 3;
  cfg.base_channels = 4;
  cfg.temb_dim = 8;
  cfg.num_classes = 2;
  cfg.groups = 2;
  diffusion::UNet1d unet(cfg, rng);
  Tensor x({2, 3, 8});
  randomize(x, rng);
  const std::vector<float> t = {3.0f, 7.0f};
  const std::vector<int> cls = {0, 2};

  Tensor out = unet.forward(x, t, cls);
  Tensor w(out.shape());
  randomize(w, rng, 1.0f);
  unet.zero_grad();
  const Tensor grad_x = unet.backward(w);
  auto loss_at = [&](const Tensor& xx) {
    return weighted_loss(unet.forward(xx, t, cls), w);
  };
  for (int probe = 0; probe < 4; ++probe) {
    const std::size_t i = rng.uniform_u64(x.size());
    Tensor xp = x, xm = x;
    xp[i] += kEps;
    xm[i] -= kEps;
    expect_close(grad_x[i], (loss_at(xp) - loss_at(xm)) / (2 * kEps),
                 "parallel unet x grad " + std::to_string(i));
  }
}

}  // namespace
}  // namespace repro::nn
