#include "nprint/image.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "net/packet.hpp"

namespace repro::nprint {
namespace {

Matrix sample_matrix() {
  net::Flow flow;
  flow.packets.push_back(net::make_tcp_packet(1, 2, 100, 443, 64, 0.0));
  flow.packets.push_back(net::make_udp_packet(1, 2, 100, 53, 32, 0.1));
  return encode_flow(flow, 4, /*pad_to_max=*/true);
}

TEST(Image, RenderDimensionsMatchMatrix) {
  const Matrix m = sample_matrix();
  const Image img = render(m);
  EXPECT_EQ(img.width, kBitsPerPacket);
  EXPECT_EQ(img.height, 4u);
  EXPECT_EQ(img.pixels.size(), img.width * img.height * 3);
}

TEST(Image, ColorsFollowPaperConvention) {
  Matrix m(1);
  m.at(0, 0) = 1.0f;
  m.at(0, 1) = 0.0f;
  // bit 2 stays -1 (vacant)
  const Image img = render(m);
  EXPECT_EQ(img.pixel(0, 0), kColorSet);     // red for 1
  EXPECT_EQ(img.pixel(1, 0), kColorClear);   // green for 0
  EXPECT_EQ(img.pixel(2, 0), kColorVacant);  // grey for -1
}

TEST(Image, RenderParseInverse) {
  const Matrix m = sample_matrix();
  const Matrix back = parse_image(render(m));
  ASSERT_EQ(back.rows(), m.rows());
  for (std::size_t i = 0; i < m.data().size(); ++i) {
    EXPECT_EQ(back.data()[i], m.data()[i]) << "index " << i;
  }
}

TEST(Image, ParseToleratesNoisyColors) {
  Image img = render(sample_matrix());
  // Perturb every channel slightly; nearest-color matching must recover.
  for (auto& byte : img.pixels) {
    byte = static_cast<std::uint8_t>(
        std::min<int>(255, std::max<int>(0, int(byte) + 11)));
  }
  const Matrix noisy = parse_image(img);
  const Matrix clean = parse_image(render(sample_matrix()));
  EXPECT_EQ(noisy.data(), clean.data());
}

TEST(Image, ParseRejectsWrongWidth) {
  Image img;
  img.width = 10;
  img.height = 1;
  img.pixels.assign(30, 0);
  EXPECT_THROW(parse_image(img), std::invalid_argument);
}

TEST(Image, PpmFileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "repro_image_test.ppm").string();
  const Image img = render(sample_matrix());
  write_ppm(path, img);
  const Image loaded = read_ppm(path);
  EXPECT_EQ(loaded.width, img.width);
  EXPECT_EQ(loaded.height, img.height);
  EXPECT_EQ(loaded.pixels, img.pixels);
  std::remove(path.c_str());
}

TEST(Image, PpmRejectsMissingFile) {
  EXPECT_THROW(read_ppm("/nonexistent-dir/foo.ppm"), std::runtime_error);
}

TEST(Image, FullImagePipelineRoundTrip) {
  // matrix -> image -> ppm -> image -> matrix -> flow: the exact path a
  // user inspecting Figure 2 artifacts takes.
  const std::string path =
      (std::filesystem::temp_directory_path() / "repro_pipe_test.ppm").string();
  const Matrix m = sample_matrix();
  write_ppm(path, render(m));
  const Matrix back = parse_image(read_ppm(path));
  const net::Flow flow = decode_flow(back);
  ASSERT_EQ(flow.packets.size(), 2u);
  EXPECT_EQ(flow.packets[0].ip.protocol, net::IpProto::kTcp);
  EXPECT_EQ(flow.packets[1].ip.protocol, net::IpProto::kUdp);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace repro::nprint
