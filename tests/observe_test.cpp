// Unit tests for src/serve/observe: flight recorder ring semantics and
// its zero-cost disabled path, SLO error-budget windows, the JSON
// reader, and timeline reconstruction.
//
// This suite lives in its own test executable: it overrides the global
// operator new to count heap allocations, which must not leak into any
// other suite's accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "common/telemetry/metrics.hpp"
#include "serve/observe/flight_recorder.hpp"
#include "serve/observe/inspect.hpp"
#include "serve/observe/slo.hpp"

// The replaced global allocator below intentionally pairs ::operator new
// with std::free; GCC cannot see that the new side is malloc-backed.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {

std::atomic<std::size_t> g_allocations{0};

}  // namespace

// Counting global allocator: proves the recorder's hot paths are
// allocation-free. (gtest itself allocates constantly; tests diff the
// counter around the critical region only.)
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace repro;
using namespace repro::serve;
using namespace repro::serve::observe;

FlightEvent make_event(EventKind kind, std::uint64_t request,
                       std::uint64_t batch = 0, double t = 0.0,
                       std::uint8_t lane = 1, std::uint32_t flows = 2,
                       std::uint16_t detail = 0) {
  FlightEvent e;
  e.time = t;
  e.request_id = request;
  e.batch_id = batch;
  e.flows = flows;
  e.kind = kind;
  e.lane = lane;
  e.detail = detail;
  return e;
}

/// Restores the global telemetry switch on scope exit.
struct TelemetryGuard {
  bool saved;
  TelemetryGuard() : saved(telemetry::enabled()) {}
  ~TelemetryGuard() { telemetry::set_enabled(saved); }
};

// --- FlightRecorder -------------------------------------------------------

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo) {
  FlightRecorder rec(5);
  EXPECT_EQ(rec.capacity(), 8u);
  FlightRecorder zero(0);
  EXPECT_EQ(zero.capacity(), 0u);
}

TEST(FlightRecorder, DisabledPathRecordsNothingAndNeverAllocates) {
  TelemetryGuard guard;
  telemetry::set_enabled(false);
  FlightRecorder rec(64);
  const FlightEvent e = make_event(EventKind::kSubmitted, 1);
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) rec.record(e);
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before);
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_FALSE(rec.armed());
}

TEST(FlightRecorder, ArmedRecordingIsAllocationFree) {
  TelemetryGuard guard;
  telemetry::set_enabled(false);
  FlightRecorder rec(64);
  rec.set_forced(true);
  EXPECT_TRUE(rec.armed());
  const FlightEvent e = make_event(EventKind::kSubmitted, 1);
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) rec.record(e);
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before);
  EXPECT_EQ(rec.recorded(), 10000u);
}

TEST(FlightRecorder, ZeroCapacityDisablesEvenWhenForced) {
  FlightRecorder rec(0);
  rec.set_forced(true);
  EXPECT_FALSE(rec.armed());
  rec.force_record(make_event(EventKind::kSubmitted, 1));
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_TRUE(rec.dump().empty());
}

TEST(FlightRecorder, RingKeepsMostRecentEventsInOrder) {
  FlightRecorder rec(8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    rec.force_record(
        make_event(EventKind::kSubmitted, i, 0, static_cast<double>(i)));
  }
  EXPECT_EQ(rec.recorded(), 20u);
  EXPECT_EQ(rec.overwritten(), 12u);
  const std::vector<FlightEvent> events = rec.dump();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].request_id, 12 + i);  // oldest-to-newest window
  }
}

TEST(FlightRecorder, DumpJsonRoundTripsThroughParser) {
  FlightRecorder rec(16);
  rec.force_record(make_event(EventKind::kSubmitted, 7, 0, 1.5, 2, 3));
  rec.force_record(make_event(
      EventKind::kRejected, 8, 0, 1.6, 0, 1,
      static_cast<std::uint16_t>(RejectReason::kQueueFull)));
  const auto dump = parse_flight_dump(rec.dump_json());
  ASSERT_TRUE(dump.has_value());
  EXPECT_EQ(dump->capacity, 16u);
  EXPECT_EQ(dump->recorded, 2u);
  EXPECT_EQ(dump->overwritten, 0u);
  ASSERT_EQ(dump->events.size(), 2u);
  EXPECT_EQ(dump->events[0].request_id, 7u);
  EXPECT_EQ(dump->events[0].kind, EventKind::kSubmitted);
  EXPECT_EQ(dump->events[0].lane, 2);
  EXPECT_EQ(dump->events[0].flows, 3u);
  EXPECT_DOUBLE_EQ(dump->events[0].time, 1.5);
  EXPECT_EQ(dump->events[1].kind, EventKind::kRejected);
  EXPECT_EQ(static_cast<RejectReason>(dump->events[1].detail),
            RejectReason::kQueueFull);
}

// --- SloTracker -----------------------------------------------------------

SloPolicy test_policy() {
  SloPolicy policy;
  policy.latency_objective = {0.1, 0.5, 2.0};
  policy.window = 60.0;
  policy.buckets = 12;
  policy.error_budget = 0.1;
  return policy;
}

TEST(SloTracker, HealthyLaneKeepsFullBudget) {
  SloTracker slo(test_policy());
  for (int i = 0; i < 10; ++i) slo.on_completed(0, 0.05, 1.0);
  const LaneBudget budget = slo.lane_budget(0, 1.0);
  EXPECT_EQ(budget.total, 10u);
  EXPECT_EQ(budget.violations, 0u);
  EXPECT_DOUBLE_EQ(budget.budget_remaining, 1.0);
  EXPECT_STREQ(budget.status, "ok");
  EXPECT_STREQ(slo.overall_status(1.0), "ok");
}

TEST(SloTracker, ViolationsBurnBudgetThroughAtRiskToBreached) {
  SloTracker slo(test_policy());
  for (int i = 0; i < 10; ++i) slo.on_completed(0, 0.05, 1.0);
  slo.on_completed(0, 0.2, 1.0);  // over the 0.1 s lane-0 objective
  LaneBudget budget = slo.lane_budget(0, 1.0);
  EXPECT_EQ(budget.violations, 1u);
  EXPECT_STREQ(budget.status, "at_risk");
  EXPECT_STREQ(slo.overall_status(1.0), "at_risk");

  slo.on_completed(0, 0.3, 1.0);
  budget = slo.lane_budget(0, 1.0);
  EXPECT_EQ(budget.violations, 2u);
  EXPECT_LE(budget.budget_remaining, 0.0);
  EXPECT_STREQ(budget.status, "breached");
  EXPECT_STREQ(slo.overall_status(1.0), "breached");
  // Other lanes are unaffected.
  EXPECT_STREQ(slo.lane_budget(1, 1.0).status, "ok");
}

TEST(SloTracker, CancellationIsAlwaysAViolation) {
  SloTracker slo(test_policy());
  slo.on_cancelled(1, 1.0);
  const LaneBudget budget = slo.lane_budget(1, 1.0);
  EXPECT_EQ(budget.total, 1u);
  EXPECT_EQ(budget.violations, 1u);
  EXPECT_STREQ(budget.status, "breached");
}

TEST(SloTracker, WindowExpiryForgivesOldViolations) {
  SloTracker slo(test_policy());
  for (int i = 0; i < 5; ++i) slo.on_completed(0, 0.9, 10.0);  // violations
  EXPECT_STREQ(slo.lane_budget(0, 10.0).status, "breached");
  // One full window later the old buckets have rotated out.
  const LaneBudget later = slo.lane_budget(0, 10.0 + 61.0);
  EXPECT_EQ(later.total, 0u);
  EXPECT_DOUBLE_EQ(later.budget_remaining, 1.0);
  EXPECT_STREQ(later.status, "ok");
}

// --- JSON reader ----------------------------------------------------------

TEST(JsonReader, ParsesScalarsContainersAndEscapes) {
  const auto doc = parse_json(
      R"({"a":[1,2.5,-3e2],"s":"x\"y\n","t":true,"f":false,"n":null})");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  const JsonValue* a = doc->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[0].number, 1.0);
  EXPECT_DOUBLE_EQ(a->array[1].number, 2.5);
  EXPECT_DOUBLE_EQ(a->array[2].number, -300.0);
  EXPECT_EQ(doc->find("s")->str_or(""), "x\"y\n");
  EXPECT_TRUE(doc->find("t")->boolean);
  EXPECT_FALSE(doc->find("f")->boolean);
  EXPECT_EQ(doc->find("n")->type, JsonValue::Type::kNull);
}

TEST(JsonReader, RejectsMalformedDocuments) {
  EXPECT_FALSE(parse_json("").has_value());
  EXPECT_FALSE(parse_json("{\"a\":}").has_value());
  EXPECT_FALSE(parse_json("[1,2").has_value());
  EXPECT_FALSE(parse_json("{} trailing").has_value());
  EXPECT_FALSE(parse_json("{\"a\" 1}").has_value());
}

// --- Reconstruction -------------------------------------------------------

TEST(Reconstruct, BuildsTimelinesAndBatchComposition) {
  std::vector<FlightEvent> events;
  events.push_back(make_event(EventKind::kSubmitted, 1, 0, 1.0));
  events.push_back(make_event(EventKind::kAdmitted, 1, 0, 1.0));
  events.push_back(make_event(EventKind::kSubmitted, 2, 0, 1.1));
  events.push_back(make_event(EventKind::kAdmitted, 2, 0, 1.1));
  events.push_back(make_event(EventKind::kCoalesced, 1, 5, 1.2));
  events.push_back(make_event(EventKind::kCoalesced, 2, 5, 1.2));
  events.push_back(make_event(EventKind::kModelStart, 0, 5, 1.2, 0, 4));
  events.push_back(make_event(EventKind::kModelEnd, 0, 5, 1.4, 0, 4));
  events.push_back(make_event(EventKind::kCompleted, 1, 5, 1.4));
  // Request 2 never completes; request 3 is rejected outright.
  events.push_back(make_event(
      EventKind::kSubmitted, 3, 0, 1.5));
  events.push_back(make_event(
      EventKind::kRejected, 3, 0, 1.5, 1, 2,
      static_cast<std::uint16_t>(RejectReason::kQueueFull)));

  const InspectReport report = reconstruct(events);
  ASSERT_EQ(report.requests.size(), 3u);
  EXPECT_EQ(report.complete, 2u);

  const RequestTimeline& r1 = report.requests[0];
  EXPECT_EQ(r1.request_id, 1u);
  EXPECT_TRUE(r1.complete);
  EXPECT_EQ(r1.batch_id, 5u);
  EXPECT_EQ(r1.terminal, EventKind::kCompleted);
  EXPECT_DOUBLE_EQ(r1.start, 1.0);
  EXPECT_DOUBLE_EQ(r1.end, 1.4);

  EXPECT_FALSE(report.requests[1].complete);
  EXPECT_TRUE(report.requests[2].complete);
  EXPECT_EQ(report.requests[2].terminal, EventKind::kRejected);

  ASSERT_EQ(report.batches.size(), 1u);
  const BatchComposition& batch = report.batches[0];
  EXPECT_EQ(batch.batch_id, 5u);
  EXPECT_EQ(batch.flows, 4u);
  ASSERT_EQ(batch.request_ids.size(), 2u);
  EXPECT_EQ(batch.request_ids[0], 1u);
  EXPECT_EQ(batch.request_ids[1], 2u);
  EXPECT_DOUBLE_EQ(batch.model_start, 1.2);
  EXPECT_DOUBLE_EQ(batch.model_end, 1.4);
}

TEST(Reconstruct, ReportJsonIsParsable) {
  std::vector<FlightEvent> events;
  events.push_back(make_event(EventKind::kSubmitted, 1, 0, 1.0));
  events.push_back(make_event(EventKind::kCacheHit, 1, 0, 1.0));
  const InspectReport report = reconstruct(events);
  const auto doc = parse_json(report_json(report));
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  EXPECT_DOUBLE_EQ(doc->find("requests")->num_or(-1), 1.0);
  EXPECT_DOUBLE_EQ(doc->find("complete")->num_or(-1), 1.0);
  const std::string text = report_text(report);
  EXPECT_NE(text.find("cache_hit"), std::string::npos);
}

}  // namespace
