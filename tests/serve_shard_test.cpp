// Sharded-serving determinism conformance: the same request set must
// produce bit-identical per-request bytes at 1, 2, and 8 worker lanes,
// with shuffled arrival orders, in-process AND over the socket, for
// both the DDIM and DDPM sampler paths — always equal to the direct
// library call. Plus the sharding invariants the contract depends on:
// stable (model, class) routing, cache hits identical to cold misses,
// and registry hot-swap during in-flight sharded batches.
#include "serve/shard.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "flowgen/generator.hpp"
#include "serve/net/client.hpp"
#include "serve/net/server.hpp"

namespace repro::serve {
namespace {

diffusion::PipelineConfig tiny_config() {
  diffusion::PipelineConfig cfg;
  cfg.packets = 8;
  cfg.autoencoder.hidden_dim = 48;
  cfg.autoencoder.latent_dim = 8;
  cfg.unet.base_channels = 8;
  cfg.unet.temb_dim = 16;
  cfg.unet.groups = 4;
  cfg.timesteps = 20;
  cfg.ae_epochs = 15;
  cfg.diffusion_epochs = 3;
  cfg.diffusion_batch = 4;
  cfg.control_epochs = 2;
  cfg.seed = 5;
  return cfg;
}

flowgen::Dataset tiny_dataset(std::size_t per_class) {
  Rng rng(77);
  flowgen::Dataset ds;
  for (std::size_t i = 0; i < per_class; ++i) {
    net::Flow a = flowgen::generate_flow(flowgen::App::kNetflix, 8, rng);
    a.label = 0;
    ds.flows.push_back(std::move(a));
    net::Flow b = flowgen::generate_flow(flowgen::App::kTeams, 8, rng);
    b.label = 1;
    ds.flows.push_back(std::move(b));
  }
  return ds;
}

/// Arrival order for a given lane count: a fixed permutation that
/// differs per lane count (stride 5 is coprime with the set size), so
/// each configuration sees the requests in a different shuffle.
std::vector<std::size_t> arrival_order(std::size_t n, std::size_t salt) {
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = (i * 5 + salt) % n;
  return order;
}

class ShardTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pipeline_ = std::make_shared<diffusion::TraceDiffusion>(
        tiny_config(), std::vector<std::string>{"netflix", "teams"});
    pipeline_->fit(tiny_dataset(6));
  }
  static void TearDownTestSuite() { pipeline_.reset(); }

  void SetUp() override { registry_.install("default", pipeline_, "v1"); }

  /// The conformance request set: both classes, both samplers, mixed
  /// flow counts, distinct seeds.
  static std::vector<GenerateRequest> request_set() {
    std::vector<GenerateRequest> out;
    for (std::uint64_t k = 0; k < 8; ++k) {
      GenerateRequest r;
      r.class_id = static_cast<int>(k % 2);
      r.count = 1 + k % 2;
      r.seed = 4000 + k;
      r.sampler = k < 4 ? diffusion::SamplerKind::kDdim
                        : diffusion::SamplerKind::kDdpm;
      r.ddim_steps = 4;
      out.push_back(r);
    }
    return out;
  }

  /// Library-side reference hash per request. Computed BEFORE any shard
  /// worker runs — the references are the ground truth every transport
  /// and lane count must reproduce.
  static std::vector<std::uint64_t> library_hashes(
      const std::vector<GenerateRequest>& requests) {
    std::vector<std::uint64_t> out;
    out.reserve(requests.size());
    for (const GenerateRequest& r : requests) {
      diffusion::GenerateOptions opts;
      opts.count = r.count;
      opts.ddim_steps = r.ddim_steps;
      opts.sampler = r.sampler;
      out.push_back(
          wire::hash_flows(pipeline_->generate_seeded(r.class_id, opts, r.seed)));
    }
    return out;
  }

  static ShardedConfig sharded_config(std::size_t lanes) {
    ShardedConfig cfg;
    cfg.lanes = lanes;
    cfg.service.batch.max_wait = 0.0;
    cfg.service.cache_capacity = 0;  // cold path unless a test opts in
    return cfg;
  }

  static std::shared_ptr<diffusion::TraceDiffusion> pipeline_;
  ModelRegistry registry_;
};

std::shared_ptr<diffusion::TraceDiffusion> ShardTest::pipeline_;

TEST_F(ShardTest, RoutingIsStableAndNeverSplitsABatchKey) {
  const ShardRing ring(8, 16);
  const ShardRing again(8, 16);
  std::set<std::size_t> hit;
  for (int class_id = 0; class_id < 64; ++class_id) {
    const std::size_t shard = ring.shard_of("default", class_id);
    EXPECT_LT(shard, 8u);
    // The ring is a pure function of (model, class): a rebuilt ring
    // (lane restart, another process) routes identically.
    EXPECT_EQ(shard, again.shard_of("default", class_id));
    hit.insert(shard);
  }
  // 64 keys over 8 shards with 16 vnodes each must actually spread.
  EXPECT_GE(hit.size(), 4u);
  // Different models may not collapse onto the same hash.
  EXPECT_NE(shard_key_hash("default", 0), shard_key_hash("default", 1));
  EXPECT_NE(shard_key_hash("a", 0), shard_key_hash("b", 0));
}

TEST_F(ShardTest, InProcessLanesProduceBitIdenticalResponses) {
  const auto requests = request_set();
  const auto reference = library_hashes(requests);

  for (const std::size_t lanes : {std::size_t{1}, std::size_t{2},
                                  std::size_t{8}}) {
    ShardedService sharded(registry_, sharded_config(lanes));
    const auto order = arrival_order(requests.size(), lanes);
    std::vector<SubmitResult> results(requests.size());
    for (const std::size_t k : order) {
      results[k] = sharded.submit(requests[k]);
      ASSERT_TRUE(results[k].accepted) << "lanes=" << lanes << " k=" << k;
    }
    sharded.drain();
    for (std::size_t k = 0; k < requests.size(); ++k) {
      const Response resp = results[k].response.get();
      ASSERT_EQ(resp.status, ResponseStatus::kOk);
      EXPECT_FALSE(resp.cache_hit);
      EXPECT_EQ(wire::hash_flows(resp.flows), reference[k])
          << "request " << k << " diverged from the library at " << lanes
          << " lanes";
    }
  }
}

TEST_F(ShardTest, OverSocketLanesProduceBitIdenticalBytes) {
  const auto requests = request_set();
  const auto reference = library_hashes(requests);

  for (const std::size_t lanes : {std::size_t{1}, std::size_t{2},
                                  std::size_t{8}}) {
    ShardedService sharded(registry_, sharded_config(lanes));
    wire::SocketServer server(sharded, wire::ServerConfig{});
    sharded.start();
    server.start();

    // Pipelined shuffled burst on one connection. Trace ids are minted
    // at frame decode from the fleet allocator (fresh service: ids
    // 1..n in send order), so reply request_id j+1 <=> order[j] even
    // when sharded completion reorders the replies.
    const auto order = arrival_order(requests.size(), lanes);
    wire::BlockingClient client(server.port());
    for (const std::size_t k : order) {
      client.send(requests[k]);
    }
    std::vector<bool> seen(requests.size(), false);
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const auto reply = client.read_reply(120.0);
      ASSERT_TRUE(reply.has_value()) << "lanes=" << lanes;
      ASSERT_TRUE(reply->ok())
          << "lanes=" << lanes << ": " << reply->error->error;
      const wire::WireResponse& resp = *reply->response;
      ASSERT_EQ(resp.status, "ok");
      ASSERT_GE(resp.request_id, 1u);
      ASSERT_LE(resp.request_id, requests.size());
      const std::size_t k = order[resp.request_id - 1];
      EXPECT_FALSE(seen[k]) << "duplicate reply for request " << k;
      seen[k] = true;
      EXPECT_EQ(wire::hash_wire_flows(resp.flows), reference[k])
          << "request " << k << " diverged over the socket at " << lanes
          << " lanes";
    }
    server.stop();
    sharded.stop();
  }
}

TEST_F(ShardTest, CacheHitServesBytesIdenticalToColdMiss) {
  const auto requests = request_set();
  ShardedConfig cfg = sharded_config(2);
  cfg.service.cache_capacity = 64;
  ShardedService sharded(registry_, cfg);

  std::vector<std::uint64_t> cold(requests.size());
  {
    std::vector<SubmitResult> results(requests.size());
    for (std::size_t k = 0; k < requests.size(); ++k) {
      results[k] = sharded.submit(requests[k]);
      ASSERT_TRUE(results[k].accepted);
    }
    sharded.drain();
    for (std::size_t k = 0; k < requests.size(); ++k) {
      const Response resp = results[k].response.get();
      ASSERT_EQ(resp.status, ResponseStatus::kOk);
      EXPECT_FALSE(resp.cache_hit);
      cold[k] = wire::hash_flows(resp.flows);
    }
  }
  // Resubmitting the identical set hits every shard's cache — ready
  // without a pump, bytes identical to the cold run.
  for (std::size_t k = 0; k < requests.size(); ++k) {
    auto r = sharded.submit(requests[k]);
    ASSERT_TRUE(r.accepted);
    const Response resp = r.response.get();
    ASSERT_EQ(resp.status, ResponseStatus::kOk);
    EXPECT_TRUE(resp.cache_hit) << "request " << k;
    EXPECT_EQ(wire::hash_flows(resp.flows), cold[k]) << "request " << k;
  }
  EXPECT_EQ(sharded.pending(), 0u);
}

TEST_F(ShardTest, HotSwapDuringInFlightShardedBatchesCompletesCleanly) {
  const auto requests = request_set();
  const auto reference = library_hashes(requests);

  ShardedService sharded(registry_, sharded_config(2));
  const auto old_snap = registry_.snapshot("default");
  ASSERT_NE(old_snap, nullptr);
  sharded.start();

  std::vector<SubmitResult> results(requests.size());
  for (std::size_t k = 0; k < requests.size(); ++k) {
    results[k] = sharded.submit(requests[k]);
    ASSERT_TRUE(results[k].accepted);
  }
  // Swap while the shard workers are mid-burst: a batch that already
  // captured the v1 snapshot completes on it; batches formed after the
  // swap serve v2. Either way every byte is the library's.
  registry_.install("default", pipeline_, "v2");

  for (std::size_t k = 0; k < requests.size(); ++k) {
    const Response resp = results[k].response.get();
    ASSERT_EQ(resp.status, ResponseStatus::kOk);
    EXPECT_TRUE(resp.model_version == "v1" || resp.model_version == "v2")
        << resp.model_version;
    EXPECT_EQ(wire::hash_flows(resp.flows), reference[k])
        << "request " << k << " diverged across the hot-swap";
  }
  sharded.stop();
  // The snapshot in-flight batches held is still alive and untouched.
  EXPECT_EQ(old_snap->version, "v1");
}

}  // namespace
}  // namespace repro::serve
