#include "eval/fidelity.hpp"

#include <gtest/gtest.h>

#include "flowgen/generator.hpp"

namespace repro::eval {
namespace {

std::vector<gan::NetFlowRecord> records_for(flowgen::App app, std::size_t n,
                                            std::uint64_t seed) {
  Rng rng(seed);
  std::vector<gan::NetFlowRecord> out;
  for (std::size_t i = 0; i < n; ++i) {
    net::Flow flow = flowgen::generate_flow(app, rng);
    out.push_back(gan::to_netflow(flow));
  }
  return out;
}

TEST(Fidelity, IdenticalSetsScoreNearZero) {
  const auto records = records_for(flowgen::App::kNetflix, 40, 1);
  const auto fid = netflow_fidelity(records, records);
  EXPECT_EQ(fid.size(), gan::NetFlowRecord::kFeatureCount);
  for (const auto& f : fid) {
    EXPECT_NEAR(f.ks, 0.0, 1e-9) << f.feature;
    EXPECT_NEAR(f.jsd, 0.0, 1e-9) << f.feature;
    EXPECT_NEAR(f.wasserstein, 0.0, 1e-9) << f.feature;
  }
  EXPECT_NEAR(mean_ks(fid), 0.0, 1e-9);
  EXPECT_NEAR(mean_jsd(fid), 0.0, 1e-9);
}

TEST(Fidelity, SameDistributionScoresLow) {
  const auto a = records_for(flowgen::App::kTwitch, 60, 2);
  const auto b = records_for(flowgen::App::kTwitch, 60, 3);
  EXPECT_LT(mean_ks(netflow_fidelity(a, b)), 0.25);
}

TEST(Fidelity, DifferentAppsScoreHigher) {
  const auto netflix = records_for(flowgen::App::kNetflix, 50, 4);
  const auto netflix2 = records_for(flowgen::App::kNetflix, 50, 5);
  const auto teams = records_for(flowgen::App::kTeams, 50, 6);
  const double same = mean_ks(netflow_fidelity(netflix, netflix2));
  const double cross = mean_ks(netflow_fidelity(netflix, teams));
  EXPECT_GT(cross, same);
  // Protocol one-hot features alone force a large cross-app KS.
  EXPECT_GT(cross, 0.2);
}

TEST(Fidelity, RejectsEmptyInput) {
  const auto records = records_for(flowgen::App::kZoom, 5, 7);
  EXPECT_THROW(netflow_fidelity({}, records), std::invalid_argument);
  EXPECT_THROW(netflow_fidelity(records, {}), std::invalid_argument);
}

TEST(Fidelity, ClassConditionalDetectsPerClassShift) {
  // Aggregate: both sets contain 50% netflix-like and 50% teams-like
  // records, but labels are swapped in the synthetic set — aggregate
  // marginals match, class-conditional KS must be large.
  auto real = records_for(flowgen::App::kNetflix, 30, 8);
  {
    auto teams = records_for(flowgen::App::kTeams, 30, 9);
    for (auto& r : teams) real.push_back(r);
  }
  for (std::size_t i = 0; i < real.size(); ++i) {
    real[i].label = i < 30 ? 0 : 4;
  }
  std::vector<gan::NetFlowRecord> swapped = real;
  for (auto& r : swapped) {
    r.label = r.label == 0 ? 4 : 0;  // the per-class structure is broken
  }
  const double aggregate = mean_ks(netflow_fidelity(real, swapped));
  const double conditional =
      class_conditional_ks(real, swapped, flowgen::kNumApps);
  EXPECT_NEAR(aggregate, 0.0, 1e-9);  // identical marginals
  EXPECT_GT(conditional, 0.3);
}

TEST(Fidelity, ClassConditionalSkipsTinyClasses) {
  const auto a = records_for(flowgen::App::kNetflix, 20, 10);
  auto b = records_for(flowgen::App::kNetflix, 20, 11);
  // All class 0: classes 1..10 have no samples and must be skipped
  // without contaminating the average.
  const double ks = class_conditional_ks(a, b, flowgen::kNumApps);
  EXPECT_GE(ks, 0.0);
  EXPECT_LT(ks, 0.3);
}

TEST(Fidelity, MeanHelpersOnEmpty) {
  EXPECT_DOUBLE_EQ(mean_ks({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_jsd({}), 0.0);
}

}  // namespace
}  // namespace repro::eval
