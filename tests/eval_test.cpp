#include "eval/coverage.hpp"
#include "eval/report.hpp"
#include "eval/scenario.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "flowgen/dataset.hpp"
#include "flowgen/generator.hpp"

namespace repro::eval {
namespace {

flowgen::Dataset small_real(std::size_t per_class) {
  Rng rng(31);
  return flowgen::build_uniform_dataset(per_class, rng);
}

ScenarioConfig fast_config() {
  ScenarioConfig cfg;
  cfg.nprint_packets = 6;
  cfg.forest.num_trees = 20;
  return cfg;
}

TEST(Scenario, RealRealNprintIsAccurate) {
  const auto real = small_real(12);
  const auto result = run_real_real(real, Granularity::kNprintPcap, fast_config());
  EXPECT_EQ(result.name, "Real/Real");
  EXPECT_GT(result.micro_accuracy, 0.6);
  EXPECT_GT(result.macro_accuracy, 0.7);
  EXPECT_GT(result.train_size, result.test_size);
}

TEST(Scenario, RealRealNprintBeatsNetflow) {
  // The paper's granularity claim (§2.3: 94% raw bits vs 85% NetFlow).
  const auto real = small_real(12);
  const auto nprint =
      run_real_real(real, Granularity::kNprintPcap, fast_config());
  const auto netflow =
      run_real_real(real, Granularity::kNetFlow, fast_config());
  EXPECT_GE(nprint.micro_accuracy, netflow.micro_accuracy - 0.05);
}

TEST(Scenario, CrossScenarioUsesDistinctSets) {
  Rng rng(32);
  const auto train = flowgen::build_uniform_dataset(8, rng);
  const auto test = flowgen::build_uniform_dataset(4, rng);
  const auto result =
      run_cross_scenario("Synthetic/Real", train.flows, test.flows,
                         Granularity::kNprintPcap, fast_config());
  EXPECT_EQ(result.train_size, train.size());
  EXPECT_EQ(result.test_size, test.size());
  EXPECT_GT(result.micro_accuracy, 0.5);  // same generator both sides
}

TEST(Scenario, NetflowRecordPath) {
  Rng rng(33);
  const auto train = flowgen::build_uniform_dataset(8, rng);
  const auto test = flowgen::build_uniform_dataset(4, rng);
  const auto result = run_cross_scenario_netflow(
      "Real/Real", gan::to_netflow(train.flows), gan::to_netflow(test.flows),
      fast_config());
  EXPECT_EQ(result.granularity, Granularity::kNetFlow);
  EXPECT_GT(result.micro_accuracy, 0.2);
}

TEST(Scenario, GranularityNames) {
  EXPECT_EQ(granularity_name(Granularity::kNprintPcap),
            "nprint-formatted pcap");
  EXPECT_EQ(granularity_name(Granularity::kNetFlow), "NetFlow");
}

TEST(Coverage, ProportionsNormalized) {
  const auto p = label_proportions({0, 0, 1, 2, 9}, 3);
  EXPECT_NEAR(p[0], 0.5, 1e-12);
  EXPECT_NEAR(p[1], 0.25, 1e-12);
  EXPECT_NEAR(p[2], 0.25, 1e-12);
}

TEST(Coverage, UniformHasZeroDivergenceAndUnitImbalance) {
  const std::vector<double> uniform = {0.25, 0.25, 0.25, 0.25};
  EXPECT_NEAR(divergence_from_uniform(uniform), 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(coverage_imbalance(uniform), 1.0);
}

TEST(Coverage, SkewIncreasesDivergence) {
  const std::vector<double> mild = {0.3, 0.25, 0.25, 0.2};
  const std::vector<double> severe = {0.85, 0.05, 0.05, 0.05};
  EXPECT_LT(divergence_from_uniform(mild), divergence_from_uniform(severe));
}

TEST(Coverage, TableRendersAllSeries) {
  CoverageReport report;
  report.class_names = {"netflix", "youtube"};
  report.series = {{"Real", {0.6, 0.4}}, {"Ours", {0.5, 0.5}}};
  const std::string table = format_coverage_table(report);
  EXPECT_NE(table.find("netflix"), std::string::npos);
  EXPECT_NE(table.find("Real %"), std::string::npos);
  EXPECT_NE(table.find("Ours %"), std::string::npos);
  EXPECT_NE(table.find("imbalance"), std::string::npos);
}

TEST(Coverage, SampleDiversityDetectsClones) {
  Rng rng(41);
  std::vector<net::Flow> varied;
  for (int i = 0; i < 6; ++i) {
    varied.push_back(flowgen::generate_flow(flowgen::App::kNetflix, rng));
  }
  std::vector<net::Flow> clones(6, varied[0]);
  const double varied_div = sample_diversity(varied, 8, 40, 1);
  const double clone_div = sample_diversity(clones, 8, 40, 1);
  EXPECT_GT(varied_div, 0.01);
  EXPECT_DOUBLE_EQ(clone_div, 0.0);
}

TEST(Coverage, SampleDiversityDegenerateInputs) {
  EXPECT_DOUBLE_EQ(sample_diversity({}, 8, 10, 1), 0.0);
  Rng rng(42);
  const auto one = flowgen::generate_flow(flowgen::App::kZoom, rng);
  EXPECT_DOUBLE_EQ(sample_diversity({one}, 8, 10, 1), 0.0);
}

TEST(Report, FormatTableAligns) {
  const std::string table =
      format_table({"name", "value"}, {{"a", "1"}, {"long-name", "2"}});
  EXPECT_NE(table.find("name"), std::string::npos);
  EXPECT_NE(table.find("long-name"), std::string::npos);
  EXPECT_NE(table.find("---"), std::string::npos);
}

TEST(Report, CsvQuotesSpecialCharacters) {
  const std::string csv =
      format_csv({"a", "b"}, {{"x,y", "he said \"hi\""}});
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Report, FmtPrecision) {
  EXPECT_EQ(fmt(0.94321), "0.94");
  EXPECT_EQ(fmt(0.94321, 3), "0.943");
}

TEST(Report, WriteTextFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "repro_report_test.txt").string();
  write_text_file(path, "hello");
  std::ifstream in(path);
  std::string content;
  std::getline(in, content);
  EXPECT_EQ(content, "hello");
  std::remove(path.c_str());
  EXPECT_THROW(write_text_file("/nonexistent-dir/x.txt", "y"),
               std::runtime_error);
}

}  // namespace
}  // namespace repro::eval
