// Open-loop emitter tests: event-queue tie-breaks, arrival-process
// determinism, virtual pacing, source behavior (including the
// backpressure -> underrun conversion of the served source), sinks, and
// the served-vs-library bit-identity contract for paced emission.
#include "replay/emit/emitter.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "flowgen/generator.hpp"
#include "flowgen/tcp_session.hpp"
#include "net/pcap.hpp"
#include "replay/conntrack.hpp"
#include "replay/functions.hpp"
#include "serve/registry.hpp"
#include "serve/service.hpp"

namespace repro::replay::emit {
namespace {

Event make_event(double time, EventKind kind, std::uint64_t flow,
                 std::uint32_t packet) {
  Event e;
  e.time = time;
  e.kind = kind;
  e.flow_id = flow;
  e.packet_index = packet;
  return e;
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  queue.push(make_event(3.0, EventKind::kPacket, 0, 0));
  queue.push(make_event(1.0, EventKind::kPacket, 0, 1));
  queue.push(make_event(2.0, EventKind::kFlowArrival, 1, 0));
  EXPECT_EQ(queue.pop().time, 1.0);
  EXPECT_EQ(queue.pop().time, 2.0);
  EXPECT_EQ(queue.pop().time, 3.0);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, EqualTimestampsBreakByFlowThenPacketIndex) {
  // The satellite contract: simultaneous events have one canonical
  // order — (flow id, kind, packet index) — regardless of insertion
  // order.
  EventQueue queue;
  queue.push(make_event(1.0, EventKind::kPacket, 2, 0));
  queue.push(make_event(1.0, EventKind::kPacket, 1, 1));
  queue.push(make_event(1.0, EventKind::kPacket, 1, 0));
  queue.push(make_event(1.0, EventKind::kFlowArrival, 2, 0));
  queue.push(make_event(1.0, EventKind::kPacket, 0, 3));

  const Event a = queue.pop();
  EXPECT_EQ(a.flow_id, 0u);
  EXPECT_EQ(a.packet_index, 3u);
  const Event b = queue.pop();
  EXPECT_EQ(b.flow_id, 1u);
  EXPECT_EQ(b.packet_index, 0u);
  const Event c = queue.pop();
  EXPECT_EQ(c.flow_id, 1u);
  EXPECT_EQ(c.packet_index, 1u);
  // Same instant, same flow id: the arrival sorts before the packet.
  const Event d = queue.pop();
  EXPECT_EQ(d.flow_id, 2u);
  EXPECT_EQ(d.kind, EventKind::kFlowArrival);
  const Event e = queue.pop();
  EXPECT_EQ(e.flow_id, 2u);
  EXPECT_EQ(e.kind, EventKind::kPacket);
}

TEST(ArrivalModel, FixedRateIsConstant) {
  ArrivalModel model(Arrival::kFixedRate, 100.0, 1.5, 7);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(model.next_gap(), 0.01);
}

TEST(ArrivalModel, ExponentialIsSeedDeterministic) {
  ArrivalModel a(Arrival::kExponential, 50.0, 1.5, 7);
  ArrivalModel b(Arrival::kExponential, 50.0, 1.5, 7);
  ArrivalModel c(Arrival::kExponential, 50.0, 1.5, 8);
  bool any_differs = false;
  for (int i = 0; i < 32; ++i) {
    const double gap_a = a.next_gap();
    EXPECT_GT(gap_a, 0.0);
    EXPECT_DOUBLE_EQ(gap_a, b.next_gap());
    if (gap_a != c.next_gap()) any_differs = true;
  }
  EXPECT_TRUE(any_differs) << "different seeds produced the same stream";
}

TEST(ArrivalModel, ParetoBurstKeepsTheTargetMeanRate) {
  // xm is chosen so E[gap] = 1/rate; the empirical mean over many draws
  // must land near it (heavy tail => loose tolerance).
  ArrivalModel model(Arrival::kParetoBurst, 200.0, 2.5, 11);
  double total = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const double gap = model.next_gap();
    ASSERT_GT(gap, 0.0);
    total += gap;
  }
  const double mean = total / kDraws;
  EXPECT_NEAR(mean, 1.0 / 200.0, 0.2 / 200.0);
}

TEST(VirtualPacer, JumpsForwardNeverBack) {
  VirtualPacer pacer;
  EXPECT_DOUBLE_EQ(pacer.now(), 0.0);
  EXPECT_DOUBLE_EQ(pacer.wait_until(1.5), 1.5);
  // A deadline in the past does not rewind time: the caller observes
  // its lateness exactly as under a real clock.
  EXPECT_DOUBLE_EQ(pacer.wait_until(1.0), 1.5);
  EXPECT_DOUBLE_EQ(pacer.now(), 1.5);
}

std::vector<net::Flow> session_flows(std::size_t flows, std::size_t packets,
                                     std::uint64_t seed) {
  std::vector<net::Flow> out;
  out.reserve(flows);
  Rng rng(seed);
  const auto& profile = flowgen::app_profile(flowgen::App::kNetflix);
  for (std::size_t i = 0; i < flows; ++i) {
    flowgen::Endpoints ep;
    ep.client_addr = 0x0A000001u + static_cast<std::uint32_t>(i);
    ep.server_addr = 0x0D000001u;
    ep.client_port = static_cast<std::uint16_t>(40000 + i);
    ep.server_port = 443;
    out.push_back(flowgen::generate_tcp_flow(profile, ep, packets, rng));
  }
  return out;
}

EmitConfig fast_emit_config(std::uint64_t total_flows) {
  EmitConfig config;
  config.target_pps = 10000.0;
  config.total_flows = total_flows;
  config.arrival = Arrival::kExponential;
  config.seed = 21;
  return config;
}

TEST(VectorFlowSource, ExhaustsUnlessLooping) {
  std::vector<net::Flow> flows = session_flows(2, 6, 3);
  VectorFlowSource once(flows);
  EXPECT_TRUE(once.next_flow().has_value());
  EXPECT_TRUE(once.next_flow().has_value());
  EXPECT_FALSE(once.next_flow().has_value());
  EXPECT_TRUE(once.exhausted());

  VectorFlowSource looped(flows, /*loop=*/true);
  for (int i = 0; i < 7; ++i) EXPECT_TRUE(looped.next_flow().has_value());
  EXPECT_FALSE(looped.exhausted());
}

TEST(OpenLoopEmitter, ConservesEventsAndEmitsEveryPacket) {
  const std::vector<net::Flow> flows = session_flows(12, 8, 5);
  std::size_t expected_packets = 0;
  for (const auto& flow : flows) expected_packets += flow.packets.size();

  VectorFlowSource source(flows);
  VirtualPacer pacer;
  NullSink sink;
  OpenLoopEmitter emitter(fast_emit_config(12), source, pacer, sink);
  const EmitReport report = emitter.run();

  EXPECT_TRUE(report.conserved());
  EXPECT_EQ(report.flows_scheduled, 12u);
  EXPECT_EQ(report.flows_emitted, 12u);
  EXPECT_EQ(report.underruns, 0u);
  EXPECT_EQ(report.packets_emitted, expected_packets);
  EXPECT_EQ(sink.packets(), expected_packets);
}

TEST(OpenLoopEmitter, StarvedSourceBecomesUnderrunsNotStalls) {
  // Open-loop contract: 12 arrivals against an 8-flow source => 4
  // underruns, and the schedule still conserves every event.
  const std::vector<net::Flow> flows = session_flows(8, 6, 5);
  VectorFlowSource source(flows);
  VirtualPacer pacer;
  NullSink sink;
  OpenLoopEmitter emitter(fast_emit_config(12), source, pacer, sink);
  const EmitReport report = emitter.run();

  EXPECT_TRUE(report.conserved());
  EXPECT_EQ(report.flows_scheduled, 12u);
  EXPECT_EQ(report.flows_emitted, 8u);
  EXPECT_EQ(report.underruns, 4u);
}

TEST(OpenLoopEmitter, TimeScaleCompressesIntraFlowGaps) {
  const std::vector<net::Flow> flows = session_flows(4, 8, 9);
  EmitConfig slow = fast_emit_config(4);
  EmitConfig fast = fast_emit_config(4);
  fast.time_scale = 0.01;

  const auto span_of = [&flows](const EmitConfig& config) {
    VectorFlowSource source(flows);
    VirtualPacer pacer;
    NullSink sink;
    OpenLoopEmitter emitter(config, source, pacer, sink);
    const EmitReport report = emitter.run();
    EXPECT_TRUE(report.conserved());
    return report.last_emit - report.first_emit;
  };
  const double slow_span = span_of(slow);
  const double fast_span = span_of(fast);
  EXPECT_LT(fast_span, slow_span);
}

std::pair<std::string, EmitReport> pcap_emit(const std::vector<net::Flow>& f,
                                             const EmitConfig& config) {
  VectorFlowSource source(f);
  VirtualPacer pacer;
  std::ostringstream bytes;
  PcapSink sink(bytes);
  OpenLoopEmitter emitter(config, source, pacer, sink);
  EmitReport report = emitter.run();
  return {bytes.str(), report};
}

TEST(OpenLoopEmitter, SameSeedProducesByteIdenticalPcap) {
  const std::vector<net::Flow> flows = session_flows(10, 6, 13);
  const EmitConfig config = fast_emit_config(10);
  const auto [bytes_a, report_a] = pcap_emit(flows, config);
  const auto [bytes_b, report_b] = pcap_emit(flows, config);
  EXPECT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, bytes_b);
  EXPECT_EQ(report_a.packets_emitted, report_b.packets_emitted);

  EmitConfig reseeded = config;
  reseeded.seed = 22;
  const auto [bytes_c, report_c] = pcap_emit(flows, reseeded);
  EXPECT_EQ(report_c.packets_emitted, report_a.packets_emitted);
  EXPECT_NE(bytes_c, bytes_a) << "seed does not reach the schedule";
}

TEST(PcapSink, EmittedPcapParsesBackInEmissionOrder) {
  const std::vector<net::Flow> flows = session_flows(6, 6, 17);
  const auto [bytes, report] = pcap_emit(flows, fast_emit_config(6));

  std::istringstream in(bytes);
  net::PcapReader reader(in);
  net::Packet packet;
  std::size_t count = 0;
  double last_time = -1.0;
  while (reader.next_packet(packet)) {
    EXPECT_GE(packet.timestamp, last_time) << "emission order violated";
    last_time = packet.timestamp;
    ++count;
  }
  EXPECT_EQ(count, report.packets_emitted);
}

TEST(ChainSink, StrictConntrackAcceptsEmittedSessionsAtRate) {
  const std::vector<net::Flow> flows = session_flows(16, 8, 19);
  VectorFlowSource source(flows);
  VirtualPacer pacer;
  ChainSink sink;
  // Firewall before NAT (LAN-side ordering): conntrack must see the
  // recorded consistent 5-tuples; the NAT masquerades on egress.
  auto conntrack = std::make_unique<ConntrackFunction>();
  const auto* tracker = conntrack.get();
  sink.engine().add_function(std::move(conntrack));
  sink.engine().add_function(std::make_unique<SourceNat>(0xC0A80001u));

  OpenLoopEmitter emitter(fast_emit_config(16), source, pacer, sink);
  const EmitReport report = emitter.run();

  EXPECT_TRUE(report.conserved());
  const ReplayReport& chain = sink.report();
  EXPECT_EQ(chain.input_packets, report.packets_emitted);
  EXPECT_EQ(chain.delivered_packets, chain.input_packets);
  EXPECT_DOUBLE_EQ(tracker->stats().tcp_acceptance(), 1.0);
  EXPECT_EQ(tracker->stats().connections_tracked, 16u);
}

// ---------------------------------------------------------------------------
// Served source: one tiny trained pipeline shared across the fixture
// (training is the expensive part), cooperative pump on a fake clock.

diffusion::PipelineConfig tiny_config() {
  diffusion::PipelineConfig cfg;
  cfg.packets = 8;
  cfg.autoencoder.hidden_dim = 48;
  cfg.autoencoder.latent_dim = 8;
  cfg.unet.base_channels = 8;
  cfg.unet.temb_dim = 16;
  cfg.unet.groups = 4;
  cfg.timesteps = 20;
  cfg.ae_epochs = 10;
  cfg.diffusion_epochs = 2;
  cfg.control_epochs = 1;
  cfg.seed = 5;
  return cfg;
}

flowgen::Dataset tiny_dataset(std::size_t per_class) {
  Rng rng(77);
  flowgen::Dataset ds;
  for (std::size_t i = 0; i < per_class; ++i) {
    net::Flow a = flowgen::generate_flow(flowgen::App::kNetflix, 8, rng);
    a.label = 0;
    ds.flows.push_back(std::move(a));
    net::Flow b = flowgen::generate_flow(flowgen::App::kTeams, 8, rng);
    b.label = 1;
    ds.flows.push_back(std::move(b));
  }
  return ds;
}

class ServedEmitTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pipeline_ = std::make_shared<diffusion::TraceDiffusion>(
        tiny_config(), std::vector<std::string>{"netflix", "teams"});
    pipeline_->fit(tiny_dataset(5));
  }
  static void TearDownTestSuite() { pipeline_.reset(); }

  void SetUp() override {
    registry_.install("default", pipeline_, "v1");
    now_ = std::make_shared<double>(0.0);
  }

  serve::ServiceConfig fast_config() {
    serve::ServiceConfig cfg;
    cfg.batch.max_wait = 0.0;  // dispatch on first pump
    cfg.base_options.ddim_steps = 4;
    cfg.clock = [now = now_] { return *now; };
    return cfg;
  }

  static ServedSourceConfig served_config(std::uint64_t total_flows) {
    ServedSourceConfig src;
    src.class_id = 0;
    src.seed_base = 42;
    src.total_flows = total_flows;
    src.ring_capacity = 4;
    src.flows_per_request = 2;
    src.ddim_steps = 4;
    return src;
  }

  static std::shared_ptr<diffusion::TraceDiffusion> pipeline_;
  serve::ModelRegistry registry_;
  std::shared_ptr<double> now_;
};

std::shared_ptr<diffusion::TraceDiffusion> ServedEmitTest::pipeline_;

TEST_F(ServedEmitTest, ServedEmissionMatchesLibrarySourceBitExact) {
  // The loop-closing contract: pacing flows through the full service
  // (queue -> batcher -> model) emits the exact bytes of pacing flows
  // pulled straight from generate_seeded with the same seed ladder.
  EmitConfig config = fast_emit_config(6);

  serve::ServiceConfig cfg = fast_config();
  cfg.cache_capacity = 0;  // force the full generation path
  serve::TraceService service(registry_, cfg);
  ServedFlowSource served(service, served_config(6));
  VirtualPacer served_pacer;
  std::ostringstream served_bytes;
  PcapSink served_sink(served_bytes);
  OpenLoopEmitter served_emitter(config, served, served_pacer, served_sink);
  const EmitReport served_report = served_emitter.run();

  diffusion::GenerateOptions lib_opts;
  lib_opts.count = 2;  // == flows_per_request
  lib_opts.ddim_steps = 4;
  LibraryFlowSource library(*pipeline_, 0, lib_opts, 42, 6);
  VirtualPacer lib_pacer;
  std::ostringstream lib_bytes;
  PcapSink lib_sink(lib_bytes);
  OpenLoopEmitter lib_emitter(config, library, lib_pacer, lib_sink);
  const EmitReport lib_report = lib_emitter.run();

  EXPECT_TRUE(served_report.conserved());
  EXPECT_TRUE(lib_report.conserved());
  EXPECT_EQ(served_report.underruns, 0u);
  EXPECT_EQ(lib_report.underruns, 0u);
  EXPECT_FALSE(served_bytes.str().empty());
  EXPECT_EQ(served_bytes.str(), lib_bytes.str());

  // Steady state burns no typed rejects: the headroom probe gated
  // every submit.
  EXPECT_EQ(served.stats().queue_full_rejects, 0u);
  EXPECT_EQ(served.stats().flows_served, 6u);
}

TEST_F(ServedEmitTest, UnpumpedServiceConvertsToUnderruns) {
  // Nobody drives the service: every arrival finds an empty ring and is
  // recorded as an underrun — wire time never waits on the model.
  serve::TraceService service(registry_, fast_config());
  ServedSourceConfig src = served_config(4);
  src.pump_service = false;
  ServedFlowSource source(service, src);

  VirtualPacer pacer;
  NullSink sink;
  OpenLoopEmitter emitter(fast_emit_config(4), source, pacer, sink);
  const EmitReport report = emitter.run();

  EXPECT_TRUE(report.conserved());
  EXPECT_EQ(report.flows_emitted, 0u);
  EXPECT_EQ(report.underruns, 4u);
  EXPECT_EQ(report.packets_emitted, 0u);
  EXPECT_GT(source.stats().submitted, 0u);  // prefetch did submit
  EXPECT_EQ(source.stats().flows_served, 0u);
}

TEST_F(ServedEmitTest, PrefetchProbeAvoidsQueueFullRejects) {
  // A ring bigger than the queue: without the headroom probe, prefetch
  // would slam the bounded queue and burn kQueueFull rejects. With it,
  // submissions stop at the queue's capacity.
  serve::ServiceConfig cfg = fast_config();
  cfg.queue_capacity = 2;
  serve::TraceService service(registry_, cfg);

  ServedSourceConfig src = served_config(8);
  src.ring_capacity = 8;
  src.flows_per_request = 1;
  ServedFlowSource source(service, src);

  source.prefetch();
  EXPECT_EQ(service.pending(), 2u);
  EXPECT_EQ(service.queue_headroom(), 0u);
  EXPECT_EQ(source.stats().queue_full_rejects, 0u);
  EXPECT_EQ(source.stats().submitted, 2u);

  // Cooperative emission still serves every flow: next_flow() drains
  // the service when the ring runs dry.
  VirtualPacer pacer;
  NullSink sink;
  OpenLoopEmitter emitter(fast_emit_config(8), source, pacer, sink);
  const EmitReport report = emitter.run();
  EXPECT_TRUE(report.conserved());
  EXPECT_EQ(report.flows_emitted, 8u);
  EXPECT_EQ(source.stats().queue_full_rejects, 0u);
}

}  // namespace
}  // namespace repro::replay::emit
