// Wire-protocol conformance tests for the socket front-end
// (src/serve/net): golden byte-level frame layout, torn/coalesced
// delivery, every typed error frame, and a malformed-frame corpus
// thrown at both the FrameDecoder and a LIVE SocketServer — the server
// must answer every abuse with a typed bad_request frame (closing only
// when byte sync is lost) and keep serving new connections.
//
// No model is trained here: the live-server tests run against an EMPTY
// registry, so every well-formed request is answered synchronously with
// a typed unknown_model error and no shard worker ever touches a
// pipeline. That keeps the whole suite cheap enough for the `sanitize`
// label (ASan/UBSan/TSan runs).
#include "serve/net/protocol.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "flowgen/generator.hpp"
#include "serve/net/client.hpp"
#include "serve/net/server.hpp"
#include "serve/shard.hpp"

namespace repro::serve::wire {
namespace {

std::uint32_t header_length(const std::vector<std::uint8_t>& frame) {
  return (static_cast<std::uint32_t>(frame[4]) << 24) |
         (static_cast<std::uint32_t>(frame[5]) << 16) |
         (static_cast<std::uint32_t>(frame[6]) << 8) |
         static_cast<std::uint32_t>(frame[7]);
}

/// Hand-crafts a frame around an arbitrary payload (FrameWriter only
/// emits well-formed JSON; the corpus needs broken payloads too).
std::vector<std::uint8_t> raw_frame(FrameType type,
                                    const std::string& payload) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  const std::uint8_t header[8] = {
      kFrameMagic,
      kProtocolVersion,
      static_cast<std::uint8_t>(type),
      0,
      static_cast<std::uint8_t>(len >> 24),
      static_cast<std::uint8_t>(len >> 16),
      static_cast<std::uint8_t>(len >> 8),
      static_cast<std::uint8_t>(len),
  };
  std::vector<std::uint8_t> out(sizeof(header) + payload.size());
  std::memcpy(out.data(), header, sizeof(header));
  if (!payload.empty()) {
    std::memcpy(out.data() + sizeof(header), payload.data(), payload.size());
  }
  return out;
}

GenerateRequest sample_request() {
  GenerateRequest r;
  r.model = "default";
  r.class_id = 1;
  r.count = 2;
  r.seed = 42;
  r.sampler = diffusion::SamplerKind::kDdim;
  r.ddim_steps = 4;
  r.priority = Priority::kNormal;
  return r;
}

TEST(WireProtocol, RequestFrameGoldenBytes) {
  // The byte-level contract: 8-byte header (magic, version, type,
  // flags, big-endian length) followed by one canonical JSON document.
  // A change to any of these bytes is a protocol break.
  std::vector<std::uint8_t> out;
  append_request_frame(out, sample_request());

  const std::string payload =
      "{\"model\":\"default\",\"class_id\":1,\"count\":2,\"seed\":\"42\","
      "\"sampler\":\"ddim\",\"steps\":4,\"precision\":\"fp32\","
      "\"priority\":\"normal\"}";
  ASSERT_EQ(out.size(), kHeaderBytes + payload.size());
  EXPECT_EQ(out[0], kFrameMagic);
  EXPECT_EQ(out[1], kProtocolVersion);
  EXPECT_EQ(out[2], static_cast<std::uint8_t>(FrameType::kRequest));
  EXPECT_EQ(out[3], 0u);  // flags reserved
  EXPECT_EQ(header_length(out), payload.size());
  EXPECT_EQ(std::string(out.begin() + kHeaderBytes, out.end()), payload);
}

TEST(WireProtocol, RequestRoundTripPreservesEveryField) {
  GenerateRequest r;
  r.model = "m\"odel \\ with specials";
  r.class_id = 3;
  r.count = 7;
  r.seed = 18446744073709551615ULL;  // > 2^53: needs the string path
  r.sampler = diffusion::SamplerKind::kDdpm;
  r.ddim_steps = 11;
  r.precision = nn::Precision::kInt8;
  r.priority = Priority::kHigh;

  std::vector<std::uint8_t> out;
  append_request_frame(out, r, 1500.0);
  FrameDecoder decoder;
  decoder.feed(out.data(), out.size());
  Frame frame;
  ASSERT_EQ(decoder.next(frame), DecodeStatus::kFrame);
  ASSERT_EQ(frame.type, FrameType::kRequest);

  std::string error;
  const auto decoded = parse_request_payload(frame.payload, error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->request.model, r.model);
  EXPECT_EQ(decoded->request.class_id, r.class_id);
  EXPECT_EQ(decoded->request.count, r.count);
  EXPECT_EQ(decoded->request.seed, r.seed);  // bit-exact above 2^53
  EXPECT_EQ(decoded->request.sampler, r.sampler);
  EXPECT_EQ(decoded->request.ddim_steps, r.ddim_steps);
  EXPECT_EQ(decoded->request.precision, r.precision);
  EXPECT_EQ(decoded->request.priority, r.priority);
  EXPECT_DOUBLE_EQ(decoded->deadline_ms, 1500.0);
}

TEST(WireProtocol, DecoderHandlesTornAndCoalescedDelivery) {
  // TCP may deliver any byte split: one frame per byte, three frames in
  // one segment — the decoder must yield the identical frame sequence.
  std::vector<std::uint8_t> stream;
  for (std::uint64_t k = 0; k < 3; ++k) {
    GenerateRequest r = sample_request();
    r.seed = 100 + k;
    append_request_frame(stream, r);
  }

  FrameDecoder torn;
  std::vector<std::string> torn_payloads;
  for (const std::uint8_t byte : stream) {
    torn.feed(&byte, 1);
    Frame frame;
    while (torn.next(frame) == DecodeStatus::kFrame) {
      torn_payloads.push_back(frame.payload);
    }
    EXPECT_FALSE(torn.poisoned());
  }

  FrameDecoder coalesced;
  coalesced.feed(stream.data(), stream.size());
  std::vector<std::string> coalesced_payloads;
  Frame frame;
  while (coalesced.next(frame) == DecodeStatus::kFrame) {
    coalesced_payloads.push_back(frame.payload);
  }
  EXPECT_EQ(coalesced.next(frame), DecodeStatus::kNeedMore);
  EXPECT_EQ(coalesced.buffered(), 0u);

  ASSERT_EQ(torn_payloads.size(), 3u);
  EXPECT_EQ(torn_payloads, coalesced_payloads);
}

TEST(WireProtocol, TruncatedLengthPrefixIsNeedMoreNotError) {
  std::vector<std::uint8_t> whole;
  append_request_frame(whole, sample_request());
  for (std::size_t cut = 0; cut < kHeaderBytes; ++cut) {
    FrameDecoder decoder;
    decoder.feed(whole.data(), cut);
    Frame frame;
    EXPECT_EQ(decoder.next(frame), DecodeStatus::kNeedMore) << cut;
    EXPECT_FALSE(decoder.poisoned()) << cut;
  }
}

TEST(WireProtocol, FramingErrorsPoisonTheDecoderSticky) {
  struct Corrupt {
    std::size_t offset;
    std::uint8_t value;
    DecodeStatus expect;
    const char* name;
  };
  const Corrupt corpus[] = {
      {0, 0x00, DecodeStatus::kBadMagic, "bad_magic"},
      {1, 0x7F, DecodeStatus::kBadVersion, "bad_version"},
      {2, 0x09, DecodeStatus::kBadType, "bad_type"},
      {3, 0x01, DecodeStatus::kBadFlags, "bad_flags"},
  };
  for (const Corrupt& c : corpus) {
    std::vector<std::uint8_t> bytes;
    append_request_frame(bytes, sample_request());
    bytes[c.offset] = c.value;
    FrameDecoder decoder;
    decoder.feed(bytes.data(), bytes.size());
    Frame frame;
    EXPECT_EQ(decoder.next(frame), c.expect) << c.name;
    EXPECT_TRUE(decoder.poisoned()) << c.name;
    EXPECT_STREQ(to_string(c.expect), c.name);
    // Sticky: more input never un-poisons, the verdict never changes.
    decoder.feed(bytes.data(), bytes.size());
    EXPECT_EQ(decoder.next(frame), c.expect) << c.name;
  }
}

TEST(WireProtocol, OversizedFrameRejectedFromHeaderAlone) {
  // Only the 8 header bytes arrive — the decoder must refuse without
  // waiting for (or buffering) a payload it will never accept.
  const std::vector<std::uint8_t> header =
      raw_frame(FrameType::kRequest, std::string());
  std::vector<std::uint8_t> bytes(header.begin(),
                                  header.begin() + kHeaderBytes);
  const std::uint32_t huge = 4097;
  bytes[4] = static_cast<std::uint8_t>(huge >> 24);
  bytes[5] = static_cast<std::uint8_t>(huge >> 16);
  bytes[6] = static_cast<std::uint8_t>(huge >> 8);
  bytes[7] = static_cast<std::uint8_t>(huge);
  FrameDecoder decoder(4096);
  decoder.feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(decoder.next(frame), DecodeStatus::kOversized);
  EXPECT_TRUE(decoder.poisoned());
}

TEST(WireProtocol, ResponseRoundTripIsBitExact) {
  // Timestamps travel as the 16-hex-digit bit pattern of the double and
  // packet bytes as hex of Packet::serialize(); the decoded reply must
  // hash identically to the in-process flows.
  Rng rng(123);
  Response response;
  response.request_id = 77;
  response.model_version = "v1";
  response.cache_hit = true;
  response.batch_flows = 5;
  for (int label = 0; label < 2; ++label) {
    net::Flow flow =
        flowgen::generate_flow(flowgen::App::kNetflix, 6, rng);
    flow.label = label;
    response.flows.push_back(std::move(flow));
  }
  // A timestamp whose decimal printing would not round-trip bits.
  response.flows[0].packets[0].timestamp = 0.1 + 0.2;

  std::vector<std::uint8_t> out;
  append_response_frame(out, response);
  FrameDecoder decoder;
  decoder.feed(out.data(), out.size());
  Frame frame;
  ASSERT_EQ(decoder.next(frame), DecodeStatus::kFrame);
  ASSERT_EQ(frame.type, FrameType::kResponse);

  const auto decoded = parse_response_payload(frame.payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->request_id, 77u);
  EXPECT_EQ(decoded->status, "ok");
  EXPECT_EQ(decoded->model_version, "v1");
  EXPECT_TRUE(decoded->cache_hit);
  EXPECT_EQ(decoded->batch_flows, 5u);
  ASSERT_EQ(decoded->flows.size(), 2u);
  EXPECT_EQ(hash_wire_flows(decoded->flows), hash_flows(response.flows));

  std::uint64_t ts_bits = 0;
  std::memcpy(&ts_bits, &response.flows[0].packets[0].timestamp,
              sizeof ts_bits);
  EXPECT_EQ(decoded->flows[0].packets[0].ts_bits, ts_bits);
}

TEST(WireProtocol, CancelledResponseRoundTripsReason) {
  Response response;
  response.status = ResponseStatus::kCancelled;
  response.cancel_reason = RejectReason::kDeadlineExpired;
  response.request_id = 9;

  std::vector<std::uint8_t> out;
  append_response_frame(out, response);
  FrameDecoder decoder;
  decoder.feed(out.data(), out.size());
  Frame frame;
  ASSERT_EQ(decoder.next(frame), DecodeStatus::kFrame);
  const auto decoded = parse_response_payload(frame.payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->status, "cancelled");
  EXPECT_EQ(decoded->reason, "deadline_expired");
  EXPECT_TRUE(decoded->flows.empty());
}

TEST(WireProtocol, EveryTypedErrorFrameRoundTrips) {
  // The full reject vocabulary crosses the wire with the in-process
  // to_string(RejectReason) spellings — queue_full over the socket is
  // indistinguishable from queue_full out of SubmitResult.
  const RejectReason reasons[] = {
      RejectReason::kQueueFull,    RejectReason::kDeadlineExpired,
      RejectReason::kUnknownModel, RejectReason::kUnknownClass,
      RejectReason::kBadRequest,   RejectReason::kShuttingDown,
  };
  for (const RejectReason reason : reasons) {
    std::vector<std::uint8_t> out;
    append_error_frame(out, 31, to_string(reason), "detail text");
    FrameDecoder decoder;
    decoder.feed(out.data(), out.size());
    Frame frame;
    ASSERT_EQ(decoder.next(frame), DecodeStatus::kFrame);
    ASSERT_EQ(frame.type, FrameType::kError);
    const auto decoded = parse_error_payload(frame.payload);
    ASSERT_TRUE(decoded.has_value()) << to_string(reason);
    EXPECT_EQ(decoded->request_id, 31u);
    EXPECT_EQ(decoded->error, to_string(reason));
    EXPECT_EQ(decoded->message, "detail text");
  }
}

TEST(WireProtocol, Utf8ValidatorRejectsTheClassicAbuses) {
  EXPECT_TRUE(valid_utf8("plain ascii"));
  EXPECT_TRUE(valid_utf8("\xC3\xA9\xE2\x82\xAC\xF0\x9F\x98\x80"));
  EXPECT_FALSE(valid_utf8("\xFF"));               // invalid lead
  EXPECT_FALSE(valid_utf8("\x80"));               // bare continuation
  EXPECT_FALSE(valid_utf8("\xC0\xAF"));           // overlong '/'
  EXPECT_FALSE(valid_utf8("\xED\xA0\x80"));       // UTF-16 surrogate
  EXPECT_FALSE(valid_utf8("\xF4\x90\x80\x80"));   // beyond U+10FFFF
  EXPECT_FALSE(valid_utf8("\xE2\x82"));           // truncated sequence
}

TEST(WireProtocol, MalformedRequestPayloadsAreTypedErrors) {
  const char* corpus[] = {
      "\xC7\xC7 not utf8",                    // invalid UTF-8
      "{\"model\": nope}",                    // malformed JSON
      "{\"model\":\"m\"} trailing junk",      // junk after the document
      "[1,2,3]",                              // not an object
      "{\"model\":\"\"}",                     // empty model
      "{\"model\":42}",                       // wrong model type
      "{\"count\":2.5}",                      // fractional count
      "{\"count\":1e300}",                    // absurd count
      "{\"seed\":\"12x4\"}",                  // non-decimal seed string
      "{\"sampler\":\"euler\"}",              // unknown sampler
      "{\"precision\":\"fp16\"}",             // unknown precision
      "{\"steps\":0}",                        // zero steps
      "{\"priority\":\"urgent\"}",            // unknown priority
      "{\"deadline_ms\":-5}",                 // negative deadline
  };
  for (const char* payload : corpus) {
    std::string error;
    EXPECT_FALSE(parse_request_payload(payload, error).has_value())
        << payload;
    EXPECT_FALSE(error.empty()) << payload;
  }
  // Unknown keys are ignored (forward compatibility), not errors.
  std::string error;
  const auto ok = parse_request_payload(
      "{\"model\":\"default\",\"future_field\":true}", error);
  ASSERT_TRUE(ok.has_value()) << error;
  EXPECT_EQ(ok->request.model, "default");
  // The fast-path spellings parse to their enums.
  const auto fast = parse_request_payload(
      "{\"model\":\"default\",\"sampler\":\"distilled\","
      "\"precision\":\"int8\"}",
      error);
  ASSERT_TRUE(fast.has_value()) << error;
  EXPECT_EQ(fast->request.sampler, diffusion::SamplerKind::kDistilled);
  EXPECT_EQ(fast->request.precision, nn::Precision::kInt8);
}

// --- Live-server conformance ----------------------------------------------

/// A real SocketServer over 2 sharded lanes and an EMPTY registry: every
/// well-formed request is rejected synchronously (unknown_model), so no
/// background shard worker is needed — only the server's poll loop runs.
class SocketConformanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ShardedConfig cfg;
    cfg.lanes = 2;
    cfg.service.batch.max_wait = 0.0;
    cfg.service.flightrec_force = true;
    sharded_ = std::make_unique<ShardedService>(registry_, cfg);
    ServerConfig server_cfg;
    server_cfg.max_payload = 4096;  // small ceiling: cheap oversized tests
    server_ = std::make_unique<SocketServer>(*sharded_, server_cfg);
    server_->start();
  }

  void TearDown() override {
    server_->stop();
    server_.reset();
    sharded_.reset();
  }

  /// A well-formed request the empty registry rejects as unknown_model
  /// — the cheapest end-to-end proof a connection is still served.
  static void expect_conn_alive(BlockingClient& client) {
    const auto reply = client.call(sample_request(), -1.0, 10.0);
    ASSERT_TRUE(reply.has_value());
    ASSERT_FALSE(reply->ok());
    EXPECT_EQ(reply->error->error, "unknown_model");
    EXPECT_NE(reply->error->request_id, 0u);
  }

  ModelRegistry registry_;
  std::unique_ptr<ShardedService> sharded_;
  std::unique_ptr<SocketServer> server_;
};

TEST_F(SocketConformanceTest, WellFormedRequestGetsTypedAdmissionError) {
  BlockingClient client(server_->port());
  expect_conn_alive(client);
  // The reject consumed nothing: the same connection serves again.
  expect_conn_alive(client);
}

TEST_F(SocketConformanceTest, MalformedPayloadsKeepTheConnectionOpen) {
  // Payload-level abuse (framing intact): each gets a typed bad_request
  // frame with a real trace id, and the SAME connection keeps working.
  const char* corpus[] = {
      "\xC7\xC7 not utf8",
      "{\"model\": nope}",
      "{\"model\":\"m\"} trailing junk",
      "[1,2,3]",
      "{\"sampler\":\"euler\"}",
  };
  BlockingClient client(server_->port());
  for (const char* payload : corpus) {
    const auto frame = raw_frame(FrameType::kRequest, payload);
    client.send_raw(frame.data(), frame.size());
    const auto reply = client.read_reply(10.0);
    ASSERT_TRUE(reply.has_value()) << payload;
    ASSERT_FALSE(reply->ok()) << payload;
    EXPECT_EQ(reply->error->error, "bad_request") << payload;
    EXPECT_NE(reply->error->request_id, 0u) << payload;
  }
  expect_conn_alive(client);
}

TEST_F(SocketConformanceTest, NonRequestFrameTypeIsBadRequest) {
  BlockingClient client(server_->port());
  const auto frame =
      raw_frame(FrameType::kResponse, "{\"request_id\":1,\"status\":\"ok\"}");
  client.send_raw(frame.data(), frame.size());
  const auto reply = client.read_reply(10.0);
  ASSERT_TRUE(reply.has_value());
  ASSERT_FALSE(reply->ok());
  EXPECT_EQ(reply->error->error, "bad_request");
  expect_conn_alive(client);
}

TEST_F(SocketConformanceTest, FramingErrorsAnswerOnceThenClose) {
  // Byte sync is lost: one typed error frame with request_id 0, then
  // the server closes — and keeps accepting NEW connections.
  struct Corrupt {
    std::size_t offset;
    std::uint8_t value;
    const char* name;
  };
  const Corrupt corpus[] = {
      {0, 0x00, "bad magic"},
      {1, 0x7F, "unknown version"},
      {2, 0x09, "bad type"},
      {3, 0x01, "bad flags"},
      {4, 0xFF, "oversized length"},  // 0xFF...: far above max_payload
  };
  for (const Corrupt& c : corpus) {
    BlockingClient client(server_->port());
    auto frame = raw_frame(FrameType::kRequest, "{}");
    frame[c.offset] = c.value;
    client.send_raw(frame.data(), frame.size());

    const auto reply = client.read_reply(10.0);
    ASSERT_TRUE(reply.has_value()) << c.name;
    ASSERT_FALSE(reply->ok()) << c.name;
    EXPECT_EQ(reply->error->error, "bad_request") << c.name;
    EXPECT_EQ(reply->error->request_id, 0u) << c.name;
    // Then EOF: the connection is gone.
    EXPECT_FALSE(client.read_reply(10.0).has_value()) << c.name;
    EXPECT_TRUE(client.eof()) << c.name;
  }
  BlockingClient fresh(server_->port());
  expect_conn_alive(fresh);
}

TEST_F(SocketConformanceTest, TornDeliveryDecodesAcrossSegments) {
  // A request frame split into single-byte writes must decode exactly
  // like one contiguous segment.
  std::vector<std::uint8_t> frame;
  append_request_frame(frame, sample_request());
  BlockingClient client(server_->port());
  for (const std::uint8_t byte : frame) {
    client.send_raw(&byte, 1);
  }
  const auto reply = client.read_reply(10.0);
  ASSERT_TRUE(reply.has_value());
  ASSERT_FALSE(reply->ok());
  EXPECT_EQ(reply->error->error, "unknown_model");
}

TEST_F(SocketConformanceTest, HalfCloseStillDeliversPendingReplies) {
  BlockingClient client(server_->port());
  client.send(sample_request());
  client.shutdown_writes();
  const auto reply = client.read_reply(10.0);
  ASSERT_TRUE(reply.has_value());
  ASSERT_FALSE(reply->ok());
  EXPECT_EQ(reply->error->error, "unknown_model");
  EXPECT_FALSE(client.read_reply(10.0).has_value());  // then EOF
  EXPECT_TRUE(client.eof());
}

TEST_F(SocketConformanceTest, AbruptDisconnectMidFrameNeverWedges) {
  // A peer that dies after half a frame must not crash, hang, or leak
  // the connection: once the client is gone the server's open count
  // returns to zero and new connections still work.
  {
    BlockingClient client(server_->port());
    std::vector<std::uint8_t> frame;
    append_request_frame(frame, sample_request());
    client.send_raw(frame.data(), frame.size() / 2);
  }  // destructor closes the socket with the frame torn
  BlockingClient fresh(server_->port());
  expect_conn_alive(fresh);
}

}  // namespace
}  // namespace repro::serve::wire
