#include "net/packet.hpp"

#include <gtest/gtest.h>

namespace repro::net {
namespace {

TEST(Packet, MakeTcpIsConsistent) {
  const Packet pkt = make_tcp_packet(0x0A000001, 0x0A000002, 50000, 443, 100, 1.5);
  EXPECT_TRUE(pkt.consistent());
  EXPECT_TRUE(pkt.tcp.has_value());
  EXPECT_FALSE(pkt.udp.has_value());
  EXPECT_EQ(pkt.timestamp, 1.5);
  EXPECT_EQ(pkt.payload.size(), 100u);
  EXPECT_EQ(pkt.datagram_length(), 20u + 20u + 100u);
  EXPECT_EQ(pkt.ip.total_length, 140);
}

TEST(Packet, MakeUdpIsConsistent) {
  const Packet pkt = make_udp_packet(1, 2, 5353, 5353, 64, 0.0);
  EXPECT_TRUE(pkt.consistent());
  EXPECT_EQ(pkt.l4_length(), 8u + 64u);
  EXPECT_EQ(pkt.udp->length, 72);
}

TEST(Packet, MakeIcmpIsConsistent) {
  const Packet pkt = make_icmp_packet(1, 2, 8, 0, 56, 0.0);
  EXPECT_TRUE(pkt.consistent());
  EXPECT_EQ(pkt.icmp->type, 8);
  EXPECT_EQ(pkt.datagram_length(), 20u + 8u + 56u);
}

TEST(Packet, InconsistentWhenTransportMismatch) {
  Packet pkt = make_tcp_packet(1, 2, 3, 4, 0, 0.0);
  pkt.ip.protocol = IpProto::kUdp;
  EXPECT_FALSE(pkt.consistent());
}

TEST(Packet, SerializeParseRoundTripTcp) {
  Packet pkt = make_tcp_packet(0xC0A80001, 0x0D200101, 40000, 443, 33, 0.0);
  pkt.tcp->syn = true;
  pkt.tcp->seq = 12345;
  pkt.tcp->window = 29200;
  pkt.ip.ttl = 61;
  const auto wire = pkt.serialize();
  const Packet parsed = Packet::parse(wire, 2.0);
  EXPECT_EQ(parsed.timestamp, 2.0);
  EXPECT_EQ(parsed.ip.src_addr, pkt.ip.src_addr);
  EXPECT_EQ(parsed.ip.ttl, 61);
  ASSERT_TRUE(parsed.tcp.has_value());
  EXPECT_TRUE(parsed.tcp->syn);
  EXPECT_EQ(parsed.tcp->seq, 12345u);
  EXPECT_EQ(parsed.tcp->window, 29200);
  EXPECT_EQ(parsed.payload.size(), 33u);
  EXPECT_TRUE(parsed.consistent());
}

TEST(Packet, SerializeParseRoundTripUdp) {
  const Packet pkt = make_udp_packet(0x01010101, 0x02020202, 5000, 8801, 200, 0.0);
  const Packet parsed = Packet::parse(pkt.serialize());
  ASSERT_TRUE(parsed.udp.has_value());
  EXPECT_EQ(parsed.udp->src_port, 5000);
  EXPECT_EQ(parsed.udp->dst_port, 8801);
  EXPECT_EQ(parsed.payload.size(), 200u);
}

TEST(Packet, SerializeParseRoundTripIcmp) {
  Packet pkt = make_icmp_packet(0x01010101, 0x02020202, 8, 0, 56, 0.0);
  pkt.icmp->rest_of_header = 0x12340001;
  const Packet parsed = Packet::parse(pkt.serialize());
  ASSERT_TRUE(parsed.icmp.has_value());
  EXPECT_EQ(parsed.icmp->rest_of_header, 0x12340001u);
}

TEST(Packet, SerializeFixesTotalLength) {
  Packet pkt = make_tcp_packet(1, 2, 3, 4, 10, 0.0);
  pkt.ip.total_length = 9999;  // wrong on purpose
  const auto wire = pkt.serialize();
  EXPECT_EQ(wire.size(), 50u);
  const Packet parsed = Packet::parse(wire);
  EXPECT_EQ(parsed.ip.total_length, 50);
}

TEST(Packet, ParseRejectsTruncated) {
  const Packet pkt = make_tcp_packet(1, 2, 3, 4, 10, 0.0);
  auto wire = pkt.serialize();
  wire.resize(15);  // cut inside the IP header
  EXPECT_THROW(Packet::parse(wire), std::out_of_range);
}

TEST(Packet, ParseUnknownProtocolKeepsPayload) {
  Packet pkt = make_udp_packet(1, 2, 3, 4, 0, 0.0);
  auto wire = pkt.serialize();
  wire[9] = 47;  // GRE: not modeled
  // Patch the header checksum so the test documents that parse() does not
  // verify checksums (robustness-first for generated data).
  const Packet parsed = Packet::parse(wire);
  EXPECT_FALSE(parsed.tcp || parsed.udp || parsed.icmp);
  EXPECT_EQ(parsed.payload.size(), 8u);  // the UDP header bytes became payload
}

}  // namespace
}  // namespace repro::net
