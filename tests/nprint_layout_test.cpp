#include "nprint/layout.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace repro::nprint {
namespace {

TEST(Layout, TotalMatchesPaper) {
  EXPECT_EQ(kBitsPerPacket, 1088u);
  EXPECT_EQ(kTcpBits, 480u);
  EXPECT_EQ(kUdpBits, 64u);
  EXPECT_EQ(kIcmpBits, 64u);
  EXPECT_EQ(kIpv4Bits, 480u);
  EXPECT_EQ(kMaxPacketsPerFlow, 1024u);
}

TEST(Layout, RegionsAreContiguous) {
  EXPECT_EQ(kTcpOffset, 0u);
  EXPECT_EQ(kUdpOffset, kTcpBits);
  EXPECT_EQ(kIcmpOffset, kTcpBits + kUdpBits);
  EXPECT_EQ(kIpv4Offset, kTcpBits + kUdpBits + kIcmpBits);
  EXPECT_EQ(kIpv4Offset + kIpv4Bits, kBitsPerPacket);
}

TEST(Layout, RegionOfBoundaries) {
  EXPECT_EQ(region_of(0), Region::kTcp);
  EXPECT_EQ(region_of(kTcpBits - 1), Region::kTcp);
  EXPECT_EQ(region_of(kUdpOffset), Region::kUdp);
  EXPECT_EQ(region_of(kIcmpOffset - 1), Region::kUdp);
  EXPECT_EQ(region_of(kIcmpOffset), Region::kIcmp);
  EXPECT_EQ(region_of(kIpv4Offset - 1), Region::kIcmp);
  EXPECT_EQ(region_of(kIpv4Offset), Region::kIpv4);
  EXPECT_EQ(region_of(kBitsPerPacket - 1), Region::kIpv4);
}

TEST(Layout, RegionOffsetAndSizeConsistent) {
  for (Region r : {Region::kTcp, Region::kUdp, Region::kIcmp, Region::kIpv4}) {
    const std::size_t off = region_offset(r);
    const std::size_t size = region_size(r);
    EXPECT_EQ(region_of(off), r);
    EXPECT_EQ(region_of(off + size - 1), r);
  }
}

TEST(Layout, FeatureNamesForKnownFields) {
  EXPECT_EQ(feature_name(0), "tcp_sprt_0");
  EXPECT_EQ(feature_name(15), "tcp_sprt_15");
  EXPECT_EQ(feature_name(16), "tcp_dprt_0");
  EXPECT_EQ(feature_name(kUdpOffset), "udp_sport_0");
  EXPECT_EQ(feature_name(kIcmpOffset), "icmp_type_0");
  EXPECT_EQ(feature_name(kIpv4Offset), "ipv4_ver_0");
  EXPECT_EQ(feature_name(kIpv4Offset + 64), "ipv4_ttl_0");
  EXPECT_EQ(feature_name(kIpv4Offset + 72), "ipv4_proto_0");
  EXPECT_EQ(feature_name(kIpv4Offset + 160), "ipv4_opt_0");
  EXPECT_EQ(feature_name(160), "tcp_opt_0");
}

TEST(Layout, FeatureNamesUniqueAcrossLayout) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < kBitsPerPacket; ++i) {
    names.insert(feature_name(i));
  }
  EXPECT_EQ(names.size(), kBitsPerPacket);
}

TEST(Layout, FeatureNameRejectsOutOfRange) {
  EXPECT_THROW(feature_name(kBitsPerPacket), std::out_of_range);
}

}  // namespace
}  // namespace repro::nprint
