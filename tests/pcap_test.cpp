#include "net/pcap.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/bytes.hpp"

namespace repro::net {
namespace {

std::vector<Packet> sample_packets() {
  std::vector<Packet> packets;
  packets.push_back(make_tcp_packet(0x0A000001, 0x0D0D0D0D, 40000, 443, 100, 0.000001));
  packets.push_back(make_udp_packet(0x0A000001, 0x0D0D0D0D, 40001, 3478, 160, 0.25));
  packets.push_back(make_icmp_packet(0x0A000001, 0x08080808, 8, 0, 56, 1.5));
  return packets;
}

TEST(Pcap, StreamRoundTrip) {
  std::stringstream stream;
  {
    PcapWriter writer(stream);
    for (const auto& pkt : sample_packets()) writer.write_packet(pkt);
    EXPECT_EQ(writer.records_written(), 3u);
  }
  stream.seekg(0);
  PcapReader reader(stream);
  EXPECT_EQ(reader.link_type(), 101u);  // raw IP
  Packet pkt;
  ASSERT_TRUE(reader.next_packet(pkt));
  EXPECT_TRUE(pkt.tcp.has_value());
  EXPECT_NEAR(pkt.timestamp, 0.000001, 1e-9);
  ASSERT_TRUE(reader.next_packet(pkt));
  EXPECT_TRUE(pkt.udp.has_value());
  EXPECT_NEAR(pkt.timestamp, 0.25, 1e-6);
  ASSERT_TRUE(reader.next_packet(pkt));
  EXPECT_TRUE(pkt.icmp.has_value());
  EXPECT_FALSE(reader.next_packet(pkt));
}

TEST(Pcap, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "repro_pcap_test.pcap").string();
  const auto original = sample_packets();
  write_pcap_file(path, original);
  const auto loaded = read_pcap_file(path);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].serialize(), original[i].serialize()) << "packet " << i;
  }
  std::remove(path.c_str());
}

TEST(Pcap, GlobalHeaderFormat) {
  std::stringstream stream;
  PcapWriter writer(stream);
  const std::string raw = stream.str();
  ASSERT_EQ(raw.size(), 24u);
  // Little-endian microsecond magic.
  EXPECT_EQ(static_cast<unsigned char>(raw[0]), 0xd4);
  EXPECT_EQ(static_cast<unsigned char>(raw[1]), 0xc3);
  EXPECT_EQ(static_cast<unsigned char>(raw[2]), 0xb2);
  EXPECT_EQ(static_cast<unsigned char>(raw[3]), 0xa1);
}

TEST(Pcap, ReaderRejectsBadMagic) {
  std::stringstream stream;
  stream << "this is definitely not a pcap file......";
  EXPECT_THROW(PcapReader reader(stream), std::runtime_error);
}

TEST(Pcap, ReaderRejectsTruncatedHeader) {
  std::stringstream stream;
  stream << "\xd4\xc3\xb2\xa1";
  EXPECT_THROW(PcapReader reader(stream), std::runtime_error);
}

TEST(Pcap, ReaderThrowsOnTruncatedRecordBody) {
  std::stringstream stream;
  {
    PcapWriter writer(stream);
    writer.write_packet(sample_packets()[0]);
  }
  std::string raw = stream.str();
  raw.resize(raw.size() - 10);  // chop the record body
  std::stringstream cut(raw);
  PcapReader reader(cut);
  PcapRecord record;
  EXPECT_THROW(reader.next(record), std::runtime_error);
}

TEST(Pcap, EthernetLinkTypeSkipsMacHeader) {
  // Hand-build an Ethernet-framed capture of one IPv4/UDP packet.
  std::vector<std::uint8_t> file;
  repro::ByteWriter w(file);
  w.u32_le(0xa1b2c3d4);
  w.u16_le(2);
  w.u16_le(4);
  w.u32_le(0);
  w.u32_le(0);
  w.u32_le(65535);
  w.u32_le(1);  // LINKTYPE_ETHERNET
  const auto datagram = make_udp_packet(1, 2, 3, 4, 8, 0.0).serialize();
  const std::size_t frame_len = 14 + datagram.size();
  w.u32_le(3);  // ts sec
  w.u32_le(0);  // ts usec
  w.u32_le(static_cast<std::uint32_t>(frame_len));
  w.u32_le(static_cast<std::uint32_t>(frame_len));
  for (int i = 0; i < 12; ++i) w.u8(0xAA);  // MACs
  w.u16_be(0x0800);                         // EtherType IPv4
  w.bytes(datagram);

  std::stringstream stream(std::string(file.begin(), file.end()));
  PcapReader reader(stream);
  EXPECT_EQ(reader.link_type(), 1u);
  Packet pkt;
  ASSERT_TRUE(reader.next_packet(pkt));
  ASSERT_TRUE(pkt.udp.has_value());
  EXPECT_EQ(pkt.udp->dst_port, 4);
  EXPECT_NEAR(pkt.timestamp, 3.0, 1e-9);
}

TEST(Pcap, NextPacketSkipsNonIpv4EthernetFrames) {
  std::vector<std::uint8_t> file;
  repro::ByteWriter w(file);
  w.u32_le(0xa1b2c3d4);
  w.u16_le(2);
  w.u16_le(4);
  w.u32_le(0);
  w.u32_le(0);
  w.u32_le(65535);
  w.u32_le(1);
  // One ARP frame (should be skipped)...
  w.u32_le(0);
  w.u32_le(0);
  w.u32_le(16);
  w.u32_le(16);
  for (int i = 0; i < 12; ++i) w.u8(0xBB);
  w.u16_be(0x0806);  // ARP
  w.u16_be(0x0001);
  // ...then an IPv4 frame.
  const auto datagram = make_tcp_packet(1, 2, 3, 4, 0, 0.0).serialize();
  w.u32_le(1);
  w.u32_le(0);
  w.u32_le(static_cast<std::uint32_t>(14 + datagram.size()));
  w.u32_le(static_cast<std::uint32_t>(14 + datagram.size()));
  for (int i = 0; i < 12; ++i) w.u8(0xCC);
  w.u16_be(0x0800);
  w.bytes(datagram);

  std::stringstream stream(std::string(file.begin(), file.end()));
  PcapReader reader(stream);
  Packet pkt;
  ASSERT_TRUE(reader.next_packet(pkt));
  EXPECT_TRUE(pkt.tcp.has_value());
  EXPECT_FALSE(reader.next_packet(pkt));
}

TEST(Pcap, ReadsByteSwappedCaptures) {
  // A capture written on a big-endian machine: every header field is
  // byte-swapped relative to this host's pcap writer.
  std::vector<std::uint8_t> file;
  repro::ByteWriter w(file);
  w.u32_be(0xa1b2c3d4);  // magic in big-endian order -> swapped for us
  w.u16_be(2);
  w.u16_be(4);
  w.u32_be(0);
  w.u32_be(0);
  w.u32_be(65535);
  w.u32_be(101);  // raw IP
  const auto datagram = make_udp_packet(1, 2, 7, 9, 4, 0.0).serialize();
  w.u32_be(5);  // ts sec
  w.u32_be(250000);
  w.u32_be(static_cast<std::uint32_t>(datagram.size()));
  w.u32_be(static_cast<std::uint32_t>(datagram.size()));
  w.bytes(datagram);

  std::stringstream stream(std::string(file.begin(), file.end()));
  PcapReader reader(stream);
  EXPECT_EQ(reader.link_type(), 101u);
  Packet pkt;
  ASSERT_TRUE(reader.next_packet(pkt));
  ASSERT_TRUE(pkt.udp.has_value());
  EXPECT_EQ(pkt.udp->dst_port, 9);
  EXPECT_NEAR(pkt.timestamp, 5.25, 1e-6);
}

TEST(Pcap, WriteFileFailsOnBadPath) {
  EXPECT_THROW(write_pcap_file("/nonexistent-dir/x.pcap", {}),
               std::runtime_error);
  EXPECT_THROW(read_pcap_file("/nonexistent-dir/x.pcap"), std::runtime_error);
}

}  // namespace
}  // namespace repro::net
