#include "diffusion/sampler.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace repro::diffusion {
namespace {

/// A predictor that always returns zero noise. The DDIM update then maps
/// x -> sqrt(abar_prev/abar_t) * x, so the final output is analytically
/// x_T / sqrt(abar_T)... scaled forward to abar=1: x_T * sqrt(1/abar_T).
EpsFn zero_eps() {
  return [](const nn::Tensor& x, std::size_t) {
    return nn::Tensor::zeros(x.shape());
  };
}

TEST(Ddim, ShapeAndDeterminismWithEtaZero) {
  NoiseSchedule schedule(50, ScheduleKind::kLinear);
  Rng rng1(7), rng2(7);
  const std::vector<std::size_t> shape{2, 3, 4};
  const nn::Tensor a = ddim_sample(zero_eps(), schedule, shape, 10, 0.0f, rng1);
  const nn::Tensor b = ddim_sample(zero_eps(), schedule, shape, 10, 0.0f, rng2);
  EXPECT_EQ(a.shape(), shape);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
}

TEST(Ddim, ZeroNoisePredictorScalesInitialNoise) {
  // With eps == 0 and eta == 0, each DDIM step multiplies x by
  // sqrt(abar_prev / abar_t); telescoping gives x_out = x_T / sqrt(abar_T).
  NoiseSchedule schedule(40, ScheduleKind::kLinear);
  const std::vector<std::size_t> shape{1, 1, 8};
  Rng rng_ref(3);
  // Reproduce the sampler's initial noise draw.
  nn::Tensor x0(shape);
  for (std::size_t i = 0; i < x0.size(); ++i) {
    x0[i] = static_cast<float>(rng_ref.gaussian());
  }
  Rng rng(3);
  const nn::Tensor out = ddim_sample(zero_eps(), schedule, shape, 40, 0.0f, rng);
  const float expected_scale =
      1.0f / schedule.sqrt_alpha_bar(schedule.timesteps() - 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out[i], x0[i] * expected_scale, 5e-2f * expected_scale);
  }
}

TEST(Ddim, FewerStepsMeansFewerEvaluations) {
  NoiseSchedule schedule(100, ScheduleKind::kCosine);
  std::size_t evals = 0;
  EpsFn counting = [&evals](const nn::Tensor& x, std::size_t) {
    ++evals;
    return nn::Tensor::zeros(x.shape());
  };
  Rng rng(1);
  ddim_sample(counting, schedule, {1, 2, 4}, 10, 0.0f, rng);
  EXPECT_EQ(evals, 10u);
  evals = 0;
  ddpm_sample(counting, schedule, {1, 2, 4}, rng);
  EXPECT_EQ(evals, 100u);
}

TEST(Ddim, RejectsBadStepCounts) {
  NoiseSchedule schedule(20, ScheduleKind::kLinear);
  Rng rng(1);
  EXPECT_THROW(ddim_sample(zero_eps(), schedule, {1, 1, 1}, 0, 0.0f, rng),
               std::invalid_argument);
  EXPECT_THROW(ddim_sample(zero_eps(), schedule, {1, 1, 1}, 21, 0.0f, rng),
               std::invalid_argument);
}

TEST(Ddim, TimestepsVisitedAreDecreasing) {
  NoiseSchedule schedule(100, ScheduleKind::kLinear);
  std::vector<std::size_t> visited;
  EpsFn recorder = [&visited](const nn::Tensor& x, std::size_t t) {
    visited.push_back(t);
    return nn::Tensor::zeros(x.shape());
  };
  Rng rng(5);
  ddim_sample(recorder, schedule, {1, 1, 2}, 7, 0.0f, rng);
  ASSERT_EQ(visited.size(), 7u);
  EXPECT_EQ(visited.front(), 99u);
  EXPECT_EQ(visited.back(), 0u);
  for (std::size_t i = 1; i < visited.size(); ++i) {
    EXPECT_LT(visited[i], visited[i - 1]);
  }
}

TEST(Ddpm, VisitsAllTimestepsInReverse) {
  NoiseSchedule schedule(25, ScheduleKind::kLinear);
  std::vector<std::size_t> visited;
  EpsFn recorder = [&visited](const nn::Tensor& x, std::size_t t) {
    visited.push_back(t);
    return nn::Tensor::zeros(x.shape());
  };
  Rng rng(6);
  ddpm_sample(recorder, schedule, {1, 1, 2}, rng);
  ASSERT_EQ(visited.size(), 25u);
  for (std::size_t i = 0; i < 25; ++i) {
    EXPECT_EQ(visited[i], 24 - i);
  }
}

TEST(Ddpm, OutputIsFinite) {
  NoiseSchedule schedule(30, ScheduleKind::kCosine);
  Rng rng(8);
  const nn::Tensor out = ddpm_sample(zero_eps(), schedule, {2, 2, 4}, rng);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(std::isfinite(out[i]));
  }
}

TEST(Ddim, EtaOneInjectsNoise) {
  // eta = 1 makes the trajectory stochastic: two different rngs diverge
  // even with the same zero predictor (beyond the initial draw).
  NoiseSchedule schedule(50, ScheduleKind::kLinear);
  Rng rng1(9);
  const nn::Tensor a = ddim_sample(zero_eps(), schedule, {1, 1, 16}, 25, 1.0f, rng1);
  Rng rng2(9);
  const nn::Tensor b = ddim_sample(zero_eps(), schedule, {1, 1, 16}, 25, 0.0f, rng2);
  // Same initial noise, different eta -> different outputs.
  float diff = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) diff += std::abs(a[i] - b[i]);
  EXPECT_GT(diff, 1e-3f);
}

TEST(DdimFrom, PartialTrajectoryStartsAtT0) {
  NoiseSchedule schedule(80, ScheduleKind::kLinear);
  std::vector<std::size_t> visited;
  EpsFn recorder = [&visited](const nn::Tensor& x, std::size_t t) {
    visited.push_back(t);
    return nn::Tensor::zeros(x.shape());
  };
  Rng rng(21);
  nn::Tensor start = nn::Tensor::full({1, 1, 4}, 0.5f);
  ddim_sample_from(recorder, schedule, start, 40, 5, 0.0f, rng);
  ASSERT_EQ(visited.size(), 5u);
  EXPECT_EQ(visited.front(), 40u);
  EXPECT_EQ(visited.back(), 0u);
}

TEST(DdimFrom, RejectsBadArguments) {
  NoiseSchedule schedule(20, ScheduleKind::kLinear);
  Rng rng(22);
  nn::Tensor start({1, 1, 2});
  EXPECT_THROW(
      ddim_sample_from(zero_eps(), schedule, start, 20, 3, 0.0f, rng),
      std::invalid_argument);  // t0 out of range
  EXPECT_THROW(
      ddim_sample_from(zero_eps(), schedule, start, 5, 0, 0.0f, rng),
      std::invalid_argument);  // zero steps
  EXPECT_THROW(
      ddim_sample_from(zero_eps(), schedule, start, 5, 7, 0.0f, rng),
      std::invalid_argument);  // more steps than timesteps in range
}

TEST(DdpmFrom, PartialTrajectoryVisitsT0DownToZero) {
  NoiseSchedule schedule(30, ScheduleKind::kCosine);
  std::vector<std::size_t> visited;
  EpsFn recorder = [&visited](const nn::Tensor& x, std::size_t t) {
    visited.push_back(t);
    return nn::Tensor::zeros(x.shape());
  };
  Rng rng(23);
  nn::Tensor start({1, 1, 2});
  ddpm_sample_from(recorder, schedule, start, 10, rng);
  ASSERT_EQ(visited.size(), 11u);
  EXPECT_EQ(visited.front(), 10u);
  EXPECT_EQ(visited.back(), 0u);
}

/// Oracle noise predictor for a known clean sample: eps_true =
/// (x_t - sqrt(abar_t) x0*) / sqrt(1 - abar_t). With this predictor the
/// reverse process must recover x0* exactly — a strong correctness check
/// of the DDIM update equations.
EpsFn oracle_eps(const nn::Tensor& x0, const NoiseSchedule& schedule) {
  return [&x0, &schedule](const nn::Tensor& x, std::size_t t) {
    const float sa = schedule.sqrt_alpha_bar(t);
    const float sb = schedule.sqrt_one_minus_alpha_bar(t);
    nn::Tensor eps(x.shape());
    for (std::size_t i = 0; i < x.size(); ++i) {
      eps[i] = (x[i] - sa * x0[i]) / sb;
    }
    return eps;
  };
}

TEST(Ddim, OraclePredictorRecoversCleanSample) {
  NoiseSchedule schedule(60, ScheduleKind::kCosine);
  Rng rng(31);
  nn::Tensor x0({1, 2, 6});
  for (std::size_t i = 0; i < x0.size(); ++i) {
    x0[i] = static_cast<float>(rng.gaussian(0.0, 2.0));
  }
  const nn::Tensor out =
      ddim_sample(oracle_eps(x0, schedule), schedule, x0.shape(), 20, 0.0f,
                  rng);
  for (std::size_t i = 0; i < x0.size(); ++i) {
    EXPECT_NEAR(out[i], x0[i], 2e-2f) << "index " << i;
  }
}

TEST(Ddim, OracleRecoveryFromPartialTrajectory) {
  NoiseSchedule schedule(60, ScheduleKind::kLinear);
  Rng rng(32);
  nn::Tensor x0({1, 1, 8});
  for (std::size_t i = 0; i < x0.size(); ++i) {
    x0[i] = static_cast<float>(rng.gaussian());
  }
  // Start mid-schedule from a properly noised x_t0.
  const std::size_t t0 = 30;
  nn::Tensor xt(x0.shape());
  const float sa = schedule.sqrt_alpha_bar(t0);
  const float sb = schedule.sqrt_one_minus_alpha_bar(t0);
  for (std::size_t i = 0; i < xt.size(); ++i) {
    xt[i] = sa * x0[i] + sb * static_cast<float>(rng.gaussian());
  }
  const nn::Tensor out = ddim_sample_from(oracle_eps(x0, schedule), schedule,
                                          xt, t0, 10, 0.0f, rng);
  for (std::size_t i = 0; i < x0.size(); ++i) {
    EXPECT_NEAR(out[i], x0[i], 2e-2f);
  }
}

TEST(DdimInpaint, OracleFillsUnknownAndClampsKnown) {
  NoiseSchedule schedule(50, ScheduleKind::kCosine);
  Rng rng(33);
  nn::Tensor x0({1, 1, 8});
  for (std::size_t i = 0; i < x0.size(); ++i) {
    x0[i] = static_cast<float>(rng.gaussian(0.0, 1.5));
  }
  std::vector<std::uint8_t> mask(x0.size(), 0);
  mask[0] = mask[1] = mask[7] = 1;
  const nn::Tensor out = ddim_inpaint(oracle_eps(x0, schedule), schedule, x0,
                                      mask, 15, 0.0f, rng);
  // Known elements exact, unknown elements recovered by the oracle.
  EXPECT_FLOAT_EQ(out[0], x0[0]);
  EXPECT_FLOAT_EQ(out[1], x0[1]);
  EXPECT_FLOAT_EQ(out[7], x0[7]);
  for (std::size_t i = 2; i < 7; ++i) {
    EXPECT_NEAR(out[i], x0[i], 5e-2f);
  }
}

TEST(DdimInpaint, RejectsMismatchedMask) {
  NoiseSchedule schedule(20, ScheduleKind::kLinear);
  Rng rng(34);
  nn::Tensor x0({1, 1, 4});
  std::vector<std::uint8_t> mask(3, 0);
  EXPECT_THROW(
      ddim_inpaint(zero_eps(), schedule, x0, mask, 5, 0.0f, rng),
      std::invalid_argument);
}

TEST(Ddim, SingleStepJumpsToX0Estimate) {
  NoiseSchedule schedule(60, ScheduleKind::kLinear);
  std::size_t evals = 0;
  EpsFn counting = [&evals](const nn::Tensor& x, std::size_t) {
    ++evals;
    return nn::Tensor::zeros(x.shape());
  };
  Rng rng(10);
  const nn::Tensor out = ddim_sample(counting, schedule, {1, 1, 4}, 1, 0.0f, rng);
  EXPECT_EQ(evals, 1u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(std::isfinite(out[i]));
  }
}

}  // namespace
}  // namespace repro::diffusion
