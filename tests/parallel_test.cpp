// Pool lifecycle, chunking edge cases, exception propagation, nesting,
// and the static-chunking determinism contract of parallel_for.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/parallel/parallel_for.hpp"

namespace repro::parallel {
namespace {

/// Restores the lane count a test changed, even on failure.
class ScopedThreads {
 public:
  explicit ScopedThreads(std::size_t n) : saved_(thread_count()) {
    set_thread_count(n);
  }
  ~ScopedThreads() { set_thread_count(saved_); }

 private:
  std::size_t saved_;
};

/// Collects every chunk parallel_for hands out, in sorted order.
std::vector<std::pair<std::size_t, std::size_t>> collect_chunks(
    std::size_t begin, std::size_t end, std::size_t grain) {
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  parallel_for(begin, end, grain, [&](std::size_t cb, std::size_t ce) {
    std::lock_guard<std::mutex> lock(mutex);
    chunks.emplace_back(cb, ce);
  });
  std::sort(chunks.begin(), chunks.end());
  return chunks;
}

TEST(ParallelFor, EmptyRangeNeverInvokes) {
  ScopedThreads threads(4);
  std::atomic<int> calls{0};
  parallel_for(5, 5, 2, [&](std::size_t, std::size_t) { ++calls; });
  parallel_for(7, 3, 2, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, RangeSmallerThanGrainIsOneChunk) {
  ScopedThreads threads(4);
  const auto chunks = collect_chunks(10, 13, 100);
  ASSERT_EQ(chunks.size(), 1u);
  const std::pair<std::size_t, std::size_t> expected{10, 13};
  EXPECT_EQ(chunks[0], expected);
}

TEST(ParallelFor, GrainOneYieldsOneChunkPerItem) {
  ScopedThreads threads(4);
  const auto chunks = collect_chunks(0, 17, 1);
  ASSERT_EQ(chunks.size(), 17u);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].first, i);
    EXPECT_EQ(chunks[i].second, i + 1);
  }
}

TEST(ParallelFor, GrainZeroBehavesLikeGrainOne) {
  ScopedThreads threads(2);
  EXPECT_EQ(collect_chunks(0, 5, 0).size(), 5u);
  EXPECT_EQ(chunk_count(5, 0), 5u);
}

TEST(ParallelFor, ChunksPartitionTheRangeExactly) {
  ScopedThreads threads(8);
  for (const std::size_t grain : {1u, 3u, 7u, 64u}) {
    const auto chunks = collect_chunks(5, 103, grain);
    EXPECT_EQ(chunks.size(), chunk_count(103 - 5, grain));
    std::size_t expect_begin = 5;
    for (const auto& [cb, ce] : chunks) {
      EXPECT_EQ(cb, expect_begin) << "grain " << grain;
      EXPECT_LE(ce - cb, grain);
      expect_begin = ce;
    }
    EXPECT_EQ(expect_begin, 103u) << "grain " << grain;
  }
}

TEST(ParallelFor, ChunkBoundariesIndependentOfThreadCount) {
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> per_count;
  for (const std::size_t n : {1u, 2u, 8u}) {
    ScopedThreads threads(n);
    per_count.push_back(collect_chunks(3, 200, 9));
  }
  EXPECT_EQ(per_count[0], per_count[1]);
  EXPECT_EQ(per_count[0], per_count[2]);
}

TEST(ParallelFor, PerChunkPartialSumsAreBitIdenticalAcrossThreadCounts) {
  // The canonical deterministic-reduction recipe: accumulate into a slot
  // per chunk, combine in chunk order.
  std::vector<float> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = 1.0f / static_cast<float>(i + 1);
  }
  const std::size_t grain = 37;
  auto reduce = [&] {
    std::vector<float> partials(chunk_count(data.size(), grain), 0.0f);
    parallel_for(0, data.size(), grain, [&](std::size_t cb, std::size_t ce) {
      float acc = 0.0f;
      for (std::size_t i = cb; i < ce; ++i) acc += data[i];
      partials[chunk_index(0, grain, cb)] = acc;
    });
    float total = 0.0f;
    for (const float p : partials) total += p;
    return total;
  };
  float reference = 0.0f;
  {
    ScopedThreads threads(1);
    reference = reduce();
  }
  for (const std::size_t n : {2u, 8u}) {
    ScopedThreads threads(n);
    EXPECT_EQ(reference, reduce()) << n << " threads";
  }
}

TEST(ParallelFor, WorkerExceptionPropagatesToCaller) {
  ScopedThreads threads(4);
  EXPECT_THROW(
      parallel_for(0, 100, 1,
                   [&](std::size_t cb, std::size_t) {
                     if (cb == 13) throw std::runtime_error("chunk 13");
                   }),
      std::runtime_error);
  // The pool survives the exception and keeps scheduling.
  std::atomic<std::size_t> items{0};
  parallel_for(0, 50, 4, [&](std::size_t cb, std::size_t ce) {
    items += ce - cb;
  });
  EXPECT_EQ(items.load(), 50u);
}

TEST(ParallelFor, NestedCallsRunInlineWithoutDeadlock) {
  ScopedThreads threads(4);
  std::atomic<std::size_t> inner_items{0};
  parallel_for(0, 8, 1, [&](std::size_t, std::size_t) {
    EXPECT_TRUE(in_worker());
    parallel_for(0, 10, 2, [&](std::size_t cb, std::size_t ce) {
      inner_items += ce - cb;
    });
  });
  EXPECT_EQ(inner_items.load(), 80u);
  EXPECT_FALSE(in_worker());
}

TEST(ParallelFor, SetThreadCountReconfiguresPool) {
  const std::size_t original = thread_count();
  set_thread_count(3);
  EXPECT_EQ(thread_count(), 3u);
  std::atomic<std::size_t> items{0};
  parallel_for(0, 100, 5, [&](std::size_t cb, std::size_t ce) {
    items += ce - cb;
  });
  EXPECT_EQ(items.load(), 100u);
  set_thread_count(0);  // clamps to 1
  EXPECT_EQ(thread_count(), 1u);
  std::size_t serial_items = 0;
  parallel_for(0, 10, 1, [&](std::size_t, std::size_t) { ++serial_items; });
  EXPECT_EQ(serial_items, 10u);
  set_thread_count(original);
  EXPECT_EQ(thread_count(), original);
}

TEST(ParallelForEach, VisitsEveryIndexOnce) {
  ScopedThreads threads(4);
  std::vector<std::atomic<int>> seen(200);
  parallel_for_each(0, seen.size(), 7, [&](std::size_t i) { ++seen[i]; });
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(GrainFor, ScalesInverselyWithItemCost) {
  EXPECT_EQ(grain_for(1u << 16), 1u);
  EXPECT_EQ(grain_for(1u << 15), 2u);
  EXPECT_EQ(grain_for(0), 1u << 16);      // degenerate cost clamps
  EXPECT_GE(grain_for(1u << 30), 1u);     // never returns 0
}

}  // namespace
}  // namespace repro::parallel
