#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace repro {
namespace {

TEST(Stats, MeanAndVariance) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({1.0}), 0.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
}

TEST(Stats, QuantileThrowsOnEmpty) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
}

TEST(Stats, NormalizeSumsToOne) {
  const auto p = normalize({2.0, 3.0, 5.0});
  EXPECT_DOUBLE_EQ(p[0], 0.2);
  EXPECT_DOUBLE_EQ(p[1], 0.3);
  EXPECT_DOUBLE_EQ(p[2], 0.5);
}

TEST(Stats, NormalizeZeroTotalGivesUniform) {
  const auto p = normalize({0.0, 0.0});
  EXPECT_DOUBLE_EQ(p[0], 0.5);
  EXPECT_DOUBLE_EQ(p[1], 0.5);
}

TEST(Stats, NormalizeClampsNegatives) {
  const auto p = normalize({-1.0, 1.0});
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  EXPECT_DOUBLE_EQ(p[1], 1.0);
}

TEST(Stats, KlDivergenceZeroForIdentical) {
  const std::vector<double> p = {0.25, 0.25, 0.5};
  EXPECT_NEAR(kl_divergence(p, p), 0.0, 1e-9);
}

TEST(Stats, KlDivergenceNonNegative) {
  const std::vector<double> p = {0.9, 0.1};
  const std::vector<double> q = {0.5, 0.5};
  EXPECT_GT(kl_divergence(p, q), 0.0);
}

TEST(Stats, JsDivergenceSymmetricAndBounded) {
  const std::vector<double> p = {1.0, 0.0};
  const std::vector<double> q = {0.0, 1.0};
  const double d = js_divergence(p, q);
  EXPECT_NEAR(d, js_divergence(q, p), 1e-12);
  EXPECT_NEAR(d, std::log(2.0), 1e-6);  // maximal for disjoint support
}

TEST(Stats, JsThrowsOnSizeMismatch) {
  EXPECT_THROW(js_divergence({0.5, 0.5}, {1.0}), std::invalid_argument);
}

TEST(Stats, TotalVariation) {
  EXPECT_DOUBLE_EQ(total_variation({1.0, 0.0}, {0.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(total_variation({0.5, 0.5}, {0.5, 0.5}), 0.0);
}

TEST(Stats, KsStatisticIdenticalSamples) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  EXPECT_NEAR(ks_statistic(a, a), 0.0, 1e-12);
}

TEST(Stats, KsStatisticDisjointSamples) {
  EXPECT_NEAR(ks_statistic({1.0, 2.0}, {10.0, 20.0}), 1.0, 1e-12);
}

TEST(Stats, Wasserstein1ShiftedSample) {
  // A constant shift by delta has W1 = delta.
  const std::vector<double> a = {0.0, 1.0, 2.0};
  const std::vector<double> b = {3.0, 4.0, 5.0};
  EXPECT_NEAR(wasserstein1(a, b), 3.0, 1e-9);
}

TEST(Stats, ImbalanceRatio) {
  EXPECT_DOUBLE_EQ(imbalance_ratio({0.25, 0.25, 0.25, 0.25}), 1.0);
  EXPECT_DOUBLE_EQ(imbalance_ratio({0.6, 0.2, 0.2}), 3.0);
  EXPECT_TRUE(std::isinf(imbalance_ratio({1.0, 0.0})));
}

TEST(Stats, HistogramCountsAndClamping) {
  const auto h = histogram({0.1, 0.9, 1.5, -5.0, 100.0}, 0.0, 2.0, 2);
  // -5 clamps into bin 0, 100 clamps into bin 1.
  EXPECT_DOUBLE_EQ(h[0], 3.0);
  EXPECT_DOUBLE_EQ(h[1], 2.0);
}

TEST(Stats, HistogramRejectsBadArguments) {
  EXPECT_THROW(histogram({}, 0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(histogram({}, 1.0, 0.0, 4), std::invalid_argument);
}

TEST(Stats, ClassCountsIgnoresOutOfRange) {
  const auto counts = class_counts({0, 1, 1, 2, -1, 7}, 3);
  EXPECT_DOUBLE_EQ(counts[0], 1.0);
  EXPECT_DOUBLE_EQ(counts[1], 2.0);
  EXPECT_DOUBLE_EQ(counts[2], 1.0);
}

}  // namespace
}  // namespace repro
