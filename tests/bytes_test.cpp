#include "common/bytes.hpp"

#include <gtest/gtest.h>

namespace repro {
namespace {

TEST(Bytes, BigEndianRoundTrip) {
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  w.u8(0xAB);
  w.u16_be(0x1234);
  w.u32_be(0xDEADBEEF);
  ByteReader r{std::span<const std::uint8_t>(buf)};
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16_be(), 0x1234);
  EXPECT_EQ(r.u32_be(), 0xDEADBEEFu);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Bytes, LittleEndianRoundTrip) {
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  w.u16_le(0x1234);
  w.u32_le(0xCAFEBABE);
  ByteReader r{std::span<const std::uint8_t>(buf)};
  EXPECT_EQ(r.u16_le(), 0x1234);
  EXPECT_EQ(r.u32_le(), 0xCAFEBABEu);
}

TEST(Bytes, BigEndianByteOrderOnWire) {
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  w.u16_be(0x0102);
  ASSERT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[1], 0x02);
}

TEST(Bytes, LittleEndianByteOrderOnWire) {
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  w.u32_le(0x01020304);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(buf[3], 0x01);
}

TEST(Bytes, ReaderThrowsOnUnderflow) {
  const std::uint8_t raw[3] = {1, 2, 3};
  ByteReader r{std::span<const std::uint8_t>(raw, 3)};
  EXPECT_THROW(r.u32_be(), std::out_of_range);
  EXPECT_EQ(r.u16_be(), 0x0102);
  EXPECT_THROW(r.u16_be(), std::out_of_range);
}

TEST(Bytes, SkipAndBytes) {
  const std::uint8_t raw[5] = {1, 2, 3, 4, 5};
  ByteReader r{std::span<const std::uint8_t>(raw, 5)};
  r.skip(2);
  const auto rest = r.bytes(2);
  EXPECT_EQ(rest[0], 3);
  EXPECT_EQ(rest[1], 4);
  EXPECT_EQ(r.remaining(), 1u);
  EXPECT_THROW(r.skip(2), std::out_of_range);
}

TEST(Bytes, WriterAppendsSpan) {
  std::vector<std::uint8_t> buf = {9};
  ByteWriter w(buf);
  const std::uint8_t extra[2] = {7, 8};
  w.bytes(std::span<const std::uint8_t>(extra, 2));
  EXPECT_EQ(buf, (std::vector<std::uint8_t>{9, 7, 8}));
}

}  // namespace
}  // namespace repro
