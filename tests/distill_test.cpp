// Progressive sampler distillation (diffusion/distill.hpp): schedule
// halving, the closed-form eps-gain fit, and the distilled sampler's
// determinism — plus pipeline integration: fitting stages per class,
// generating through SamplerKind::kDistilled, and carrying the fitted
// stages bit-exactly through a checkpoint round trip (TDM3 section).
#include "diffusion/distill.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "diffusion/pipeline.hpp"
#include "flowgen/generator.hpp"

namespace repro::diffusion {
namespace {

/// Oracle noise predictor for a known clean sample: eps_true =
/// (x_t - sqrt(abar_t) x0) / sqrt(1 - abar_t). The eta = 0 DDIM update
/// composes exactly under this predictor, so a one-step student already
/// matches a two-step teacher with unit gains.
EpsFn oracle_eps(const nn::Tensor& x0, const NoiseSchedule& schedule) {
  return [&x0, &schedule](const nn::Tensor& x, std::size_t t) {
    const float sa = schedule.sqrt_alpha_bar(t);
    const float sb = schedule.sqrt_one_minus_alpha_bar(t);
    nn::Tensor eps(x.shape());
    for (std::size_t i = 0; i < x.size(); ++i) {
      eps[i] = (x[i] - sa * x0[i]) / sb;
    }
    return eps;
  };
}

nn::Tensor random_tensor(const std::vector<std::size_t>& shape, Rng& rng) {
  nn::Tensor t(shape);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.gaussian());
  }
  return t;
}

/// A latent properly noised to timestep t0 for a known x0.
nn::Tensor noised_to(const nn::Tensor& x0, const NoiseSchedule& schedule,
                     std::size_t t0, Rng& rng) {
  const float sa = schedule.sqrt_alpha_bar(t0);
  const float sb = schedule.sqrt_one_minus_alpha_bar(t0);
  nn::Tensor xt(x0.shape());
  for (std::size_t i = 0; i < xt.size(); ++i) {
    xt[i] = sa * x0[i] + sb * static_cast<float>(rng.gaussian());
  }
  return xt;
}

TEST(Distill, TeacherStageIsPlainDdimScheduleWithUnitGains) {
  const DistilledStage teacher = teacher_stage(99, 8);
  EXPECT_EQ(teacher.taus, ddim_tau_schedule(99, 8));
  EXPECT_EQ(teacher.steps(), 8u);
  EXPECT_EQ(teacher.t0(), 99u);
  ASSERT_EQ(teacher.gains.size(), 8u);
  for (const float g : teacher.gains) EXPECT_FLOAT_EQ(g, 1.0f);
}

TEST(Distill, HalvingKeepsEveryOtherTeacherTau) {
  NoiseSchedule schedule(100, ScheduleKind::kCosine);
  Rng rng(41);
  const nn::Tensor x0 = random_tensor({2, 3, 8}, rng);
  const nn::Tensor calib = noised_to(x0, schedule, 99, rng);
  const DistilledStage teacher = teacher_stage(99, 7);  // odd step count
  const StageFit fit =
      distill_halve(oracle_eps(x0, schedule), schedule, teacher, calib);
  ASSERT_EQ(fit.stage.steps(), 4u);  // ceil(7 / 2)
  for (std::size_t i = 0; i < fit.stage.steps(); ++i) {
    EXPECT_EQ(fit.stage.taus[i], teacher.taus[2 * i]) << i;
  }
  EXPECT_EQ(fit.stage.t0(), teacher.t0());
}

TEST(Distill, OraclePredictorYieldsUnitGainsAndZeroError) {
  // The exact predictor makes DDIM steps compose exactly, so the best
  // one-step imitation of two steps is the plain step itself.
  NoiseSchedule schedule(80, ScheduleKind::kLinear);
  Rng rng(43);
  const nn::Tensor x0 = random_tensor({1, 2, 16}, rng);
  const nn::Tensor calib = noised_to(x0, schedule, 79, rng);
  const StageFit fit = distill_halve(oracle_eps(x0, schedule), schedule,
                                     teacher_stage(79, 8), calib);
  EXPECT_LT(fit.mse_plain, 1e-8f);
  EXPECT_LT(fit.mse_fitted, 1e-8f);
  for (const float g : fit.stage.gains) EXPECT_NEAR(g, 1.0f, 1e-3f);
}

TEST(Distill, FitCorrectsBiasedPredictor) {
  // Overscale the oracle by 15%: plain one-step error becomes real and
  // the closed-form least-squares gain must strictly reduce it.
  NoiseSchedule schedule(80, ScheduleKind::kCosine);
  Rng rng(47);
  const nn::Tensor x0 = random_tensor({2, 2, 12}, rng);
  const nn::Tensor calib = noised_to(x0, schedule, 79, rng);
  const EpsFn oracle = oracle_eps(x0, schedule);
  const EpsFn biased = [&oracle](const nn::Tensor& x, std::size_t t) {
    nn::Tensor eps = oracle(x, t);
    for (std::size_t i = 0; i < eps.size(); ++i) eps[i] *= 1.15f;
    return eps;
  };
  const StageFit fit =
      distill_halve(biased, schedule, teacher_stage(79, 8), calib);
  EXPECT_GT(fit.mse_plain, 0.0f);
  EXPECT_LT(fit.mse_fitted, fit.mse_plain);
  // At least one gain must have moved off 1.0 to absorb the bias.
  float max_dev = 0.0f;
  for (const float g : fit.stage.gains) {
    max_dev = std::max(max_dev, std::fabs(g - 1.0f));
  }
  EXPECT_GT(max_dev, 1e-3f);
}

TEST(Distill, StudentTracksTeacherTrajectory) {
  NoiseSchedule schedule(100, ScheduleKind::kCosine);
  Rng rng(53);
  const nn::Tensor x0 = random_tensor({1, 3, 8}, rng);
  const nn::Tensor calib = noised_to(x0, schedule, 99, rng);
  const EpsFn oracle = oracle_eps(x0, schedule);
  const DistilledStage teacher = teacher_stage(99, 8);
  const StageFit fit = distill_halve(oracle, schedule, teacher, calib);

  const nn::Tensor from_teacher =
      distilled_sample_from(oracle, schedule, calib, teacher);
  const nn::Tensor from_student =
      distilled_sample_from(oracle, schedule, calib, fit.stage);
  ASSERT_EQ(from_student.size(), from_teacher.size());
  for (std::size_t i = 0; i < from_student.size(); ++i) {
    EXPECT_NEAR(from_student[i], from_teacher[i], 1e-3f) << i;
  }
}

TEST(Distill, SampleUsesOneEvaluationPerStepAndIsDeterministic) {
  NoiseSchedule schedule(60, ScheduleKind::kLinear);
  Rng rng(59);
  const nn::Tensor x = random_tensor({1, 2, 8}, rng);
  std::size_t evals = 0;
  const EpsFn counting = [&evals](const nn::Tensor& xt, std::size_t) {
    ++evals;
    return nn::Tensor::zeros(xt.shape());
  };
  const DistilledStage stage = teacher_stage(59, 5);
  const nn::Tensor a = distilled_sample_from(counting, schedule, x, stage);
  EXPECT_EQ(evals, 5u);
  const nn::Tensor b = distilled_sample_from(counting, schedule, x, stage);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << i;  // no noise source: bit-identical reruns
  }
}

TEST(Distill, RejectsMalformedInputs) {
  NoiseSchedule schedule(20, ScheduleKind::kLinear);
  Rng rng(61);
  const nn::Tensor x = random_tensor({1, 1, 4}, rng);
  const EpsFn zero = [](const nn::Tensor& xt, std::size_t) {
    return nn::Tensor::zeros(xt.shape());
  };
  // distill_halve: a one-step teacher has nothing to merge.
  EXPECT_THROW(distill_halve(zero, schedule, teacher_stage(19, 1), x),
               std::invalid_argument);
  // distilled_sample_from: empty stage, gains/taus mismatch, t0 range.
  EXPECT_THROW(distilled_sample_from(zero, schedule, x, DistilledStage{}),
               std::invalid_argument);
  DistilledStage mismatched = teacher_stage(19, 4);
  mismatched.gains.pop_back();
  EXPECT_THROW(distilled_sample_from(zero, schedule, x, mismatched),
               std::invalid_argument);
  EXPECT_THROW(
      distilled_sample_from(zero, schedule, x, teacher_stage(20, 4)),
      std::invalid_argument);  // t0 == timesteps
}

// ---------------------------------------------------------------------
// Pipeline integration: fit once, distill once, share across tests.

PipelineConfig tiny_config() {
  PipelineConfig cfg;
  cfg.packets = 8;
  cfg.autoencoder.hidden_dim = 48;
  cfg.autoencoder.latent_dim = 8;
  cfg.unet.base_channels = 8;
  cfg.unet.temb_dim = 16;
  cfg.unet.groups = 4;
  cfg.timesteps = 20;
  cfg.ae_epochs = 15;
  cfg.diffusion_epochs = 3;
  cfg.diffusion_batch = 4;
  cfg.control_epochs = 2;
  cfg.seed = 5;
  return cfg;
}

flowgen::Dataset tiny_dataset(std::size_t per_class) {
  Rng rng(77);
  flowgen::Dataset ds;
  for (std::size_t i = 0; i < per_class; ++i) {
    net::Flow a = flowgen::generate_flow(flowgen::App::kNetflix, 8, rng);
    a.label = 0;
    ds.flows.push_back(std::move(a));
    net::Flow b = flowgen::generate_flow(flowgen::App::kTeams, 8, rng);
    b.label = 1;
    ds.flows.push_back(std::move(b));
  }
  return ds;
}

bool flows_equal(const std::vector<net::Flow>& a,
                 const std::vector<net::Flow>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t f = 0; f < a.size(); ++f) {
    if (a[f].label != b[f].label) return false;
    if (a[f].packets.size() != b[f].packets.size()) return false;
    for (std::size_t p = 0; p < a[f].packets.size(); ++p) {
      if (a[f].packets[p].timestamp != b[f].packets[p].timestamp) return false;
      if (a[f].packets[p].serialize() != b[f].packets[p].serialize()) {
        return false;
      }
    }
  }
  return true;
}

class DistillPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pipeline_ = new TraceDiffusion(tiny_config(), {"netflix", "teams"});
    pipeline_->fit(tiny_dataset(4));
    DistillConfig cfg;
    cfg.teacher_steps = 8;
    cfg.rounds = 2;
    cfg.calibration_count = 2;
    fitted_stages_ = pipeline_->distill(cfg);
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }
  static GenerateOptions distilled_opts(std::size_t steps) {
    GenerateOptions opts;
    opts.sampler = SamplerKind::kDistilled;
    opts.ddim_steps = steps;
    opts.count = 2;
    return opts;
  }
  static TraceDiffusion* pipeline_;
  static std::size_t fitted_stages_;
};

TraceDiffusion* DistillPipelineTest::pipeline_ = nullptr;
std::size_t DistillPipelineTest::fitted_stages_ = 0;

TEST_F(DistillPipelineTest, FitsHalvedStagesPerClass) {
  // Two classes x two halving rounds. With timesteps = 20 and the
  // default template_strength the start timestep is 6, so the round-0
  // teacher is clamped to 7 steps and the rounds yield 4- and 2-step
  // students.
  EXPECT_EQ(fitted_stages_, 4u);
  const auto counts = pipeline_->distilled_step_counts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 4u);
  for (int cls : {0, 1}) {
    EXPECT_TRUE(pipeline_->has_distilled(cls, 4));
    EXPECT_TRUE(pipeline_->has_distilled(cls, 2));
    EXPECT_FALSE(pipeline_->has_distilled(cls, 5));
  }
}

TEST_F(DistillPipelineTest, GeneratesThroughDistilledSampler) {
  const auto flows =
      pipeline_->generate_seeded(1, distilled_opts(4), /*seed=*/900);
  ASSERT_EQ(flows.size(), 2u);
  for (const auto& flow : flows) {
    EXPECT_EQ(flow.label, 1);
    EXPECT_FALSE(flow.packets.empty());
  }
  // Same (class, seed, opts) => bit-identical flows, same as the other
  // samplers — the distilled trajectory draws no per-step noise.
  const auto again =
      pipeline_->generate_seeded(1, distilled_opts(4), /*seed=*/900);
  EXPECT_TRUE(flows_equal(flows, again));
}

TEST_F(DistillPipelineTest, BatchCompositionDoesNotChangeDistilledFlows) {
  // The serving-layer coalescing contract must hold for the distilled
  // path too: one batched call == separate calls with the same streams.
  const GenerateOptions opts = distilled_opts(2);
  const auto batched =
      pipeline_->generate_with_flow_seeds(0, opts, {111, 222, 333});
  auto separate = pipeline_->generate_with_flow_seeds(0, opts, {111});
  for (const std::uint64_t s : {std::uint64_t{222}, std::uint64_t{333}}) {
    auto one = pipeline_->generate_with_flow_seeds(0, opts, {s});
    separate.insert(separate.end(), one.begin(), one.end());
  }
  EXPECT_TRUE(flows_equal(batched, separate));
}

TEST_F(DistillPipelineTest, RejectsUnfittedStepCount) {
  EXPECT_THROW(pipeline_->generate_seeded(0, distilled_opts(5), 1),
               std::invalid_argument);
}

TEST_F(DistillPipelineTest, CheckpointRoundTripPreservesStagesBitExactly) {
  const char* prefix = "/tmp/repro_distill_ckpt";
  pipeline_->save(prefix);
  TraceDiffusion restored(tiny_config(), {"netflix", "teams"});
  restored.load(prefix);
  EXPECT_EQ(restored.distilled_step_counts(),
            pipeline_->distilled_step_counts());
  // The restored stages (taus AND float gains) must reproduce the exact
  // same flows: distilled generation is deterministic given (class,
  // seed, opts), so any serialization drift shows up as a bit diff.
  for (const std::size_t steps : {std::size_t{2}, std::size_t{4}}) {
    const auto want =
        pipeline_->generate_seeded(0, distilled_opts(steps), 4242);
    const auto got = restored.generate_seeded(0, distilled_opts(steps), 4242);
    EXPECT_TRUE(flows_equal(want, got)) << "steps=" << steps;
  }
  // And the int8 route survives the round trip the same way (load calls
  // prepare_quantized, so the restored pipeline requantizes eagerly).
  GenerateOptions int8_opts = distilled_opts(4);
  int8_opts.precision = nn::Precision::kInt8;
  EXPECT_TRUE(flows_equal(pipeline_->generate_seeded(1, int8_opts, 77),
                          restored.generate_seeded(1, int8_opts, 77)));
  std::remove((std::string(prefix) + ".meta").c_str());
  std::remove((std::string(prefix) + ".weights").c_str());
}

}  // namespace
}  // namespace repro::diffusion
