#include "net/checksum.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace repro::net {
namespace {

TEST(Checksum, Rfc1071ReferenceVector) {
  // Classic example from RFC 1071 §3: the words 0x0001, 0xf203, 0xf4f5,
  // 0xf6f7 sum to 0xddf2 (before complement), so the checksum is ~0xddf2.
  const std::vector<std::uint8_t> data = {0x00, 0x01, 0xf2, 0x03,
                                          0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), static_cast<std::uint16_t>(~0xddf2));
}

TEST(Checksum, ZeroBufferIsAllOnes) {
  const std::vector<std::uint8_t> data(8, 0);
  EXPECT_EQ(internet_checksum(data), 0xFFFF);
}

TEST(Checksum, OddLengthPadsWithZero) {
  const std::vector<std::uint8_t> odd = {0x12, 0x34, 0x56};
  const std::vector<std::uint8_t> even = {0x12, 0x34, 0x56, 0x00};
  EXPECT_EQ(internet_checksum(odd), internet_checksum(even));
}

TEST(Checksum, BufferWithChecksumFieldSumsToAllOnes) {
  // Verification property used by every IP stack: inserting the checksum
  // back into the data makes the one's-complement sum 0xFFFF (i.e. the
  // computed checksum of the patched buffer is 0).
  std::vector<std::uint8_t> data = {0x45, 0x00, 0x00, 0x28, 0x1c, 0x46,
                                    0x40, 0x00, 0x40, 0x06, 0x00, 0x00,
                                    0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8,
                                    0x00, 0xc7};
  const std::uint16_t sum = internet_checksum(data);
  data[10] = static_cast<std::uint8_t>(sum >> 8);
  data[11] = static_cast<std::uint8_t>(sum);
  EXPECT_EQ(internet_checksum(data), 0x0000);
}

TEST(Checksum, KnownIpv4HeaderChecksum) {
  // Wikipedia's worked IPv4 header example; checksum field must come out
  // as 0xB861.
  std::vector<std::uint8_t> header = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00,
                                      0x40, 0x00, 0x40, 0x11, 0x00, 0x00,
                                      0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8,
                                      0x00, 0xc7};
  EXPECT_EQ(internet_checksum(header), 0xB861);
}

TEST(Checksum, AccumulatorMatchesOneShot) {
  const std::vector<std::uint8_t> data = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  ChecksumAccumulator acc;
  acc.add(std::span<const std::uint8_t>(data.data(), 3));
  acc.add(std::span<const std::uint8_t>(data.data() + 3, 4));
  acc.add(std::span<const std::uint8_t>(data.data() + 7, 2));
  EXPECT_EQ(acc.finish(), internet_checksum(data));
}

TEST(Checksum, AccumulatorOddSplitAcrossBuffers) {
  // Splitting at an odd offset must preserve 16-bit word alignment
  // semantics of the overall stream.
  const std::vector<std::uint8_t> data = {0xAA, 0xBB, 0xCC, 0xDD, 0xEE};
  ChecksumAccumulator acc;
  acc.add(std::span<const std::uint8_t>(data.data(), 1));
  acc.add(std::span<const std::uint8_t>(data.data() + 1, 1));
  acc.add(std::span<const std::uint8_t>(data.data() + 2, 3));
  EXPECT_EQ(acc.finish(), internet_checksum(data));
}

TEST(Checksum, AccumulatorHelpers) {
  ChecksumAccumulator a, b;
  a.add_u16(0x1234);
  a.add_u32(0xAABBCCDD);
  const std::vector<std::uint8_t> same = {0x12, 0x34, 0xAA, 0xBB, 0xCC, 0xDD};
  b.add(same);
  EXPECT_EQ(a.finish(), b.finish());
}

}  // namespace
}  // namespace repro::net
