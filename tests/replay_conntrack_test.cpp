#include "replay/conntrack.hpp"

#include <gtest/gtest.h>

#include "diffusion/constraint.hpp"
#include "flowgen/generator.hpp"
#include "flowgen/tcp_session.hpp"

namespace repro::replay {
namespace {

/// Feeds a whole flow through the tracker, returning the number of
/// accepted packets.
std::size_t feed(ConntrackFunction& tracker, const net::Flow& flow) {
  std::size_t accepted = 0;
  for (const auto& src : flow.packets) {
    net::Packet pkt = src;
    if (tracker.process(pkt, pkt.timestamp) == Verdict::kForward) {
      ++accepted;
    }
  }
  return accepted;
}

net::Flow tcp_flow(std::size_t packets, std::uint64_t seed = 1) {
  Rng rng(seed);
  return flowgen::generate_tcp_flow(
      flowgen::app_profile(flowgen::App::kNetflix),
      flowgen::Endpoints{0x0A000001, 0x0D000001, 50000, 443}, packets, rng);
}

TEST(Conntrack, AcceptsWellFormedTcpSession) {
  ConntrackFunction tracker;
  const net::Flow flow = tcp_flow(30);
  const std::size_t accepted = feed(tracker, flow);
  EXPECT_EQ(accepted, flow.packets.size());
  EXPECT_DOUBLE_EQ(tracker.stats().tcp_acceptance(), 1.0);
  EXPECT_EQ(tracker.stats().handshakes_completed, 1u);
  EXPECT_EQ(tracker.stats().teardowns_completed, 1u);
}

TEST(Conntrack, AcceptsEveryGeneratedAppTcpFlow) {
  // Property: the flowgen TCP state machine always satisfies a strict
  // stateful firewall, for every app profile.
  for (int app = 0; app < 11; ++app) {
    const auto& profile = flowgen::app_profile(static_cast<std::size_t>(app));
    if (profile.p_tcp < 0.05) continue;
    Rng rng(static_cast<std::uint64_t>(100 + app));
    const net::Flow flow = flowgen::generate_tcp_flow(
        profile, flowgen::Endpoints{0x0A000001, 0x0D000001, 44444, 443}, 24,
        rng);
    ConntrackFunction tracker;
    EXPECT_EQ(feed(tracker, flow), flow.packets.size()) << profile.name;
  }
}

TEST(Conntrack, DropsDataBeforeHandshake) {
  ConntrackFunction tracker;
  net::Packet data = net::make_tcp_packet(1, 2, 1000, 443, 100, 0.0);
  data.tcp->ack_flag = true;
  EXPECT_EQ(tracker.process(data, 0.0), Verdict::kDrop);
  EXPECT_EQ(tracker.stats().invalid_state, 1u);
}

TEST(Conntrack, DropsSynAckWithoutSyn) {
  ConntrackFunction tracker;
  net::Packet synack = net::make_tcp_packet(2, 1, 443, 1000, 0, 0.0);
  synack.tcp->syn = true;
  synack.tcp->ack_flag = true;
  EXPECT_EQ(tracker.process(synack, 0.0), Verdict::kDrop);
}

TEST(Conntrack, DropsOutOfWindowSequence) {
  ConntrackFunction tracker;
  net::Flow flow = tcp_flow(20);
  // Corrupt a mid-stream data segment's sequence number wildly.
  for (std::size_t i = 4; i < flow.packets.size(); ++i) {
    auto& pkt = flow.packets[i];
    if (!pkt.tcp->syn && !pkt.tcp->fin && !pkt.payload.empty()) {
      pkt.tcp->seq += 0x40000000;
      break;
    }
  }
  const std::size_t accepted = feed(tracker, flow);
  EXPECT_LT(accepted, flow.packets.size());
  EXPECT_GE(tracker.stats().invalid_sequence, 1u);
}

TEST(Conntrack, MonitorModeForwardsButCounts) {
  ConntrackConfig config;
  config.enforce = false;
  ConntrackFunction tracker(config);
  net::Packet data = net::make_tcp_packet(1, 2, 1000, 443, 100, 0.0);
  data.tcp->ack_flag = true;
  EXPECT_EQ(tracker.process(data, 0.0), Verdict::kForward);
  EXPECT_EQ(tracker.stats().invalid_state, 1u);
}

TEST(Conntrack, RstClosesConnection) {
  ConntrackFunction tracker;
  net::Flow flow = tcp_flow(20);
  // Handshake.
  for (int i = 0; i < 3; ++i) {
    net::Packet pkt = flow.packets[static_cast<std::size_t>(i)];
    EXPECT_EQ(tracker.process(pkt, pkt.timestamp), Verdict::kForward);
  }
  net::Packet rst = flow.packets[3];
  rst.tcp->rst = true;
  rst.tcp->syn = false;
  rst.tcp->fin = false;
  EXPECT_EQ(tracker.process(rst, rst.timestamp), Verdict::kForward);
  EXPECT_EQ(tracker.state_of(rst), TcpState::kClosed);
  // Fresh data on the closed connection is invalid.
  net::Packet after = flow.packets[4];
  after.tcp->syn = false;
  after.tcp->fin = false;
  after.tcp->ack_flag = false;
  EXPECT_EQ(tracker.process(after, after.timestamp), Verdict::kDrop);
}

TEST(Conntrack, StateProgression) {
  ConntrackFunction tracker;
  const net::Flow flow = tcp_flow(24);
  net::Packet probe = flow.packets[0];
  EXPECT_EQ(tracker.state_of(probe), TcpState::kNone);
  net::Packet syn = flow.packets[0];
  tracker.process(syn, 0.0);
  EXPECT_EQ(tracker.state_of(probe), TcpState::kSynSent);
  net::Packet synack = flow.packets[1];
  tracker.process(synack, 0.0);
  EXPECT_EQ(tracker.state_of(probe), TcpState::kSynReceived);
  net::Packet ack = flow.packets[2];
  tracker.process(ack, 0.0);
  EXPECT_EQ(tracker.state_of(probe), TcpState::kEstablished);
}

TEST(Conntrack, IdleTimeoutRecyclesEntries) {
  ConntrackConfig config;
  config.idle_timeout = 10.0;
  ConntrackFunction tracker(config);
  const net::Flow flow = tcp_flow(24);
  net::Packet syn = flow.packets[0];
  tracker.process(syn, 0.0);
  // After the timeout, a new SYN on the same tuple re-opens cleanly.
  net::Packet syn2 = flow.packets[0];
  EXPECT_EQ(tracker.process(syn2, 100.0), Verdict::kForward);
  EXPECT_EQ(tracker.state_of(syn2), TcpState::kSynSent);
  EXPECT_EQ(tracker.stats().connections_tracked, 2u);
}

TEST(Conntrack, UdpAndIcmpPassStateless) {
  ConntrackFunction tracker;
  net::Packet udp = net::make_udp_packet(1, 2, 3, 4, 8, 0.0);
  net::Packet icmp = net::make_icmp_packet(1, 2, 8, 0, 8, 0.0);
  EXPECT_EQ(tracker.process(udp, 0.0), Verdict::kForward);
  EXPECT_EQ(tracker.process(icmp, 0.0), Verdict::kForward);
  EXPECT_EQ(tracker.stats().udp_packets, 1u);
  EXPECT_EQ(tracker.stats().icmp_packets, 1u);
  EXPECT_EQ(tracker.stats().tcp_packets, 0u);
}

TEST(Conntrack, InterleavedConnectionsTrackIndependently) {
  ConntrackFunction tracker;
  const net::Flow a = tcp_flow(16, 7);
  Rng rng(8);
  const net::Flow b = flowgen::generate_tcp_flow(
      flowgen::app_profile(flowgen::App::kTwitch),
      flowgen::Endpoints{0x0A000002, 0x0D000002, 50001, 443}, 16, rng);
  // Interleave packet by packet.
  std::size_t accepted = 0, total = 0;
  for (std::size_t i = 0; i < std::max(a.packets.size(), b.packets.size());
       ++i) {
    for (const net::Flow* flow : {&a, &b}) {
      if (i >= flow->packets.size()) continue;
      net::Packet pkt = flow->packets[i];
      ++total;
      if (tracker.process(pkt, pkt.timestamp) == Verdict::kForward) {
        ++accepted;
      }
    }
  }
  EXPECT_EQ(accepted, total);
  EXPECT_EQ(tracker.stats().handshakes_completed, 2u);
}

TEST(Conntrack, AcceptsStatefulRepairedScrambledFlow) {
  // The diffusion extension's promise: any TCP flow run through
  // enforce_tcp_state passes the strict firewall in full.
  Rng rng(55);
  const net::Flow tmpl =
      flowgen::generate_flow(flowgen::App::kNetflix, 20, rng);
  net::Flow garbage;
  for (std::size_t i = 0; i < 20; ++i) {
    net::Packet pkt = net::make_tcp_packet(
        0xC0A80005, 0x0D0D0D01, 50123, 443,
        static_cast<std::size_t>(rng.uniform_int(0, 900)), static_cast<double>(i) * 0.01);
    pkt.tcp->seq = static_cast<std::uint32_t>(rng.next_u64());
    pkt.tcp->syn = rng.bernoulli(0.4);
    pkt.tcp->fin = rng.bernoulli(0.4);
    garbage.packets.push_back(std::move(pkt));
  }
  const net::Flow fixed = diffusion::enforce_tcp_state(garbage, tmpl);
  ConntrackFunction tracker;
  EXPECT_EQ(feed(tracker, fixed), fixed.packets.size());
  EXPECT_EQ(tracker.stats().handshakes_completed, 1u);
}

TEST(Conntrack, AcceptanceStatsOnEmptyTraffic) {
  ConntrackFunction tracker;
  EXPECT_DOUBLE_EQ(tracker.stats().tcp_acceptance(), 1.0);
}

// --- Teardown edges the open-loop emitter exercises at rate ----------------

TEST(Conntrack, RstAfterFinClosesImmediately) {
  // One side FINs (kFinWait), then the peer aborts with RST instead of
  // finishing the orderly teardown — common when an application closes
  // with unread data. The RST must be accepted and close the entry; the
  // orphaned final ACK of the half-finished teardown stays legitimate,
  // but fresh data must not.
  ConntrackFunction tracker;
  const net::Flow flow = tcp_flow(20);
  // Handshake.
  for (int i = 0; i < 3; ++i) {
    net::Packet pkt = flow.packets[static_cast<std::size_t>(i)];
    ASSERT_EQ(tracker.process(pkt, pkt.timestamp), Verdict::kForward);
  }
  // Client FIN -> kFinWait. After the handshake the tracker expects the
  // client's next segment at SYN.seq + 1.
  const double t0 = flow.packets[2].timestamp;
  net::Packet fin = net::make_tcp_packet(0x0A000001, 0x0D000001, 50000, 443,
                                         0, t0 + 0.001);
  fin.tcp->fin = true;
  fin.tcp->ack_flag = true;
  fin.tcp->seq = flow.packets[0].tcp->seq + 1;
  ASSERT_EQ(tracker.process(fin, fin.timestamp), Verdict::kForward);
  EXPECT_EQ(tracker.state_of(fin), TcpState::kFinWait);
  // Server aborts with RST from kFinWait.
  net::Packet rst = net::make_tcp_packet(0x0D000001, 0x0A000001, 443, 50000,
                                         0, fin.timestamp + 0.001);
  rst.tcp->rst = true;
  EXPECT_EQ(tracker.process(rst, rst.timestamp), Verdict::kForward);
  EXPECT_EQ(tracker.state_of(rst), TcpState::kClosed);
  // The straggling pure ACK is tolerated...
  net::Packet ack = net::make_tcp_packet(0x0A000001, 0x0D000001, 50000, 443,
                                         0, rst.timestamp + 0.001);
  ack.tcp->ack_flag = true;
  EXPECT_EQ(tracker.process(ack, ack.timestamp), Verdict::kForward);
  // ...but new data on the aborted connection is not.
  net::Packet data = net::make_tcp_packet(0x0A000001, 0x0D000001, 50000, 443,
                                          64, rst.timestamp + 0.002);
  EXPECT_EQ(tracker.process(data, data.timestamp), Verdict::kDrop);
}

TEST(Conntrack, SimultaneousCloseCompletesTeardown) {
  // Both sides FIN before seeing the other's FIN (simultaneous close).
  // The second FIN must complete the teardown, and both final ACKs must
  // still be accepted in kClosed.
  ConntrackFunction tracker;
  const net::Flow flow = tcp_flow(20);
  for (int i = 0; i < 3; ++i) {
    net::Packet pkt = flow.packets[static_cast<std::size_t>(i)];
    ASSERT_EQ(tracker.process(pkt, pkt.timestamp), Verdict::kForward);
  }
  const double t0 = flow.packets[2].timestamp;
  // Client FIN at the client's expected next sequence (SYN.seq + 1 —
  // the handshake ACK does not consume sequence space).
  net::Packet fin_a = net::make_tcp_packet(0x0A000001, 0x0D000001, 50000, 443,
                                           0, t0 + 0.001);
  fin_a.tcp->fin = true;
  fin_a.tcp->ack_flag = true;
  fin_a.tcp->seq = flow.packets[0].tcp->seq + 1;
  ASSERT_EQ(tracker.process(fin_a, fin_a.timestamp), Verdict::kForward);
  EXPECT_EQ(tracker.state_of(fin_a), TcpState::kFinWait);
  // Server FIN crosses in flight (no ACK of the client FIN yet), at the
  // server's expected next sequence (SYN-ACK.seq + 1).
  net::Packet fin_b = net::make_tcp_packet(0x0D000001, 0x0A000001, 443, 50000,
                                           0, t0 + 0.002);
  fin_b.tcp->fin = true;
  fin_b.tcp->ack_flag = true;
  fin_b.tcp->seq = flow.packets[1].tcp->seq + 1;
  EXPECT_EQ(tracker.process(fin_b, fin_b.timestamp), Verdict::kForward);
  EXPECT_EQ(tracker.state_of(fin_b), TcpState::kClosed);
  EXPECT_EQ(tracker.stats().teardowns_completed, 1u);
  // Both directions' closing ACKs are still legitimate in kClosed.
  net::Packet ack_a = net::make_tcp_packet(0x0A000001, 0x0D000001, 50000, 443,
                                           0, t0 + 0.003);
  ack_a.tcp->ack_flag = true;
  net::Packet ack_b = net::make_tcp_packet(0x0D000001, 0x0A000001, 443, 50000,
                                           0, t0 + 0.004);
  ack_b.tcp->ack_flag = true;
  EXPECT_EQ(tracker.process(ack_a, ack_a.timestamp), Verdict::kForward);
  EXPECT_EQ(tracker.process(ack_b, ack_b.timestamp), Verdict::kForward);
  EXPECT_DOUBLE_EQ(tracker.stats().tcp_acceptance(), 1.0);
}

TEST(Conntrack, SynRetransmitInSynSentIsTolerated) {
  // A lossy client retransmits its SYN before the SYN-ACK arrives. The
  // duplicate must be accepted without disturbing the opening state,
  // and the handshake must then complete normally.
  ConntrackFunction tracker;
  const net::Flow flow = tcp_flow(20);
  net::Packet syn = flow.packets[0];
  ASSERT_EQ(tracker.process(syn, syn.timestamp), Verdict::kForward);
  EXPECT_EQ(tracker.state_of(syn), TcpState::kSynSent);
  // Retransmitted SYN: same segment, slightly later.
  net::Packet syn_rtx = flow.packets[0];
  EXPECT_EQ(tracker.process(syn_rtx, syn.timestamp + 0.2), Verdict::kForward);
  EXPECT_EQ(tracker.state_of(syn_rtx), TcpState::kSynSent);
  EXPECT_EQ(tracker.stats().invalid_state, 0u);
  // A duplicate SYN from the *peer* direction is not an opener
  // retransmission and must be rejected (SYN-ACK is the only legal
  // peer segment here).
  net::Packet bogus = net::make_tcp_packet(0x0D000001, 0x0A000001, 443, 50000,
                                           0, syn.timestamp + 0.25);
  bogus.tcp->syn = true;
  EXPECT_EQ(tracker.process(bogus, bogus.timestamp), Verdict::kDrop);
  // Handshake still completes.
  net::Packet synack = flow.packets[1];
  net::Packet ack = flow.packets[2];
  EXPECT_EQ(tracker.process(synack, syn.timestamp + 0.3), Verdict::kForward);
  EXPECT_EQ(tracker.process(ack, syn.timestamp + 0.31), Verdict::kForward);
  EXPECT_EQ(tracker.state_of(ack), TcpState::kEstablished);
  EXPECT_EQ(tracker.stats().handshakes_completed, 1u);
}

}  // namespace
}  // namespace repro::replay
