// Serving-layer tests: admission control, deadlines, priority lanes,
// micro-batching, the result cache, registry hot-swap, and the
// served-response determinism contract (service output bit-identical to
// the direct library call, at 1 and 4 parallel lanes).
//
// All scheduling here is driven cooperatively (TraceService::pump) on a
// fake clock, so deadline and max-wait behavior is tested without any
// real sleeping.
#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>

#include "common/parallel/thread_pool.hpp"
#include "common/telemetry/metrics.hpp"
#include "flowgen/generator.hpp"
#include "serve/observe/inspect.hpp"

namespace repro::serve {
namespace {

diffusion::PipelineConfig tiny_config() {
  diffusion::PipelineConfig cfg;
  cfg.packets = 8;
  cfg.autoencoder.hidden_dim = 48;
  cfg.autoencoder.latent_dim = 8;
  cfg.unet.base_channels = 8;
  cfg.unet.temb_dim = 16;
  cfg.unet.groups = 4;
  cfg.timesteps = 20;
  cfg.ae_epochs = 15;
  cfg.diffusion_epochs = 3;
  cfg.diffusion_batch = 4;
  cfg.control_epochs = 2;
  cfg.seed = 5;
  return cfg;
}

flowgen::Dataset tiny_dataset(std::size_t per_class) {
  Rng rng(77);
  flowgen::Dataset ds;
  for (std::size_t i = 0; i < per_class; ++i) {
    net::Flow a = flowgen::generate_flow(flowgen::App::kNetflix, 8, rng);
    a.label = 0;
    ds.flows.push_back(std::move(a));
    net::Flow b = flowgen::generate_flow(flowgen::App::kTeams, 8, rng);
    b.label = 1;
    ds.flows.push_back(std::move(b));
  }
  return ds;
}

std::uint64_t hash_flows(const std::vector<net::Flow>& flows) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  };
  for (const auto& flow : flows) {
    mix(&flow.label, sizeof(flow.label));
    for (const auto& pkt : flow.packets) {
      mix(&pkt.timestamp, sizeof(pkt.timestamp));
      const auto wire = pkt.serialize();
      mix(wire.data(), wire.size());
    }
  }
  return h;
}

/// Shared fitted pipeline: training is the expensive part, so it runs
/// once for the whole suite; every test builds its own service/registry
/// around the shared model.
class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pipeline_ = std::make_shared<diffusion::TraceDiffusion>(
        tiny_config(), std::vector<std::string>{"netflix", "teams"});
    pipeline_->fit(tiny_dataset(6));
    // Fit few-step stages (4- and 2-step students here) so the suite can
    // exercise the kDistilled serving path and its admission check.
    diffusion::DistillConfig dcfg;
    dcfg.teacher_steps = 8;
    dcfg.rounds = 2;
    dcfg.calibration_count = 2;
    pipeline_->distill(dcfg);
  }
  static void TearDownTestSuite() { pipeline_.reset(); }

  void SetUp() override {
    registry_.install("default", pipeline_, "v1");
    now_ = std::make_shared<double>(0.0);
  }

  ServiceConfig fast_config() {
    ServiceConfig cfg;
    cfg.batch.max_wait = 0.0;  // dispatch on first pump
    cfg.base_options.ddim_steps = 4;
    cfg.clock = [now = now_] { return *now; };
    return cfg;
  }

  static GenerateRequest request(int class_id, std::uint64_t seed,
                                 std::size_t count = 1) {
    GenerateRequest r;
    r.class_id = class_id;
    r.seed = seed;
    r.count = count;
    r.ddim_steps = 4;
    return r;
  }

  static std::shared_ptr<diffusion::TraceDiffusion> pipeline_;
  ModelRegistry registry_;
  std::shared_ptr<double> now_;
};

std::shared_ptr<diffusion::TraceDiffusion> ServeTest::pipeline_;

TEST_F(ServeTest, ServedResponseMatchesLibraryBitExact) {
  // The acceptance contract: queue -> batcher -> cache-miss path yields
  // bits identical to TraceDiffusion::generate_seeded, at 1 and 4
  // parallel lanes, and regardless of what else shared the batch.
  diffusion::GenerateOptions lib_opts;
  lib_opts.count = 2;
  lib_opts.ddim_steps = 4;

  const std::size_t original_lanes = parallel::thread_count();
  std::uint64_t reference = 0;
  for (const std::size_t lanes : {std::size_t{1}, std::size_t{4}}) {
    parallel::set_thread_count(lanes);
    const std::uint64_t lib_hash =
        hash_flows(pipeline_->generate_seeded(0, lib_opts, 42));

    ServiceConfig cfg = fast_config();
    cfg.cache_capacity = 0;  // force the full generation path
    TraceService service(registry_, cfg);
    auto target = service.submit(request(0, 42, 2));
    // Batch-mates with different seeds and a different class must not
    // perturb the target request's bits.
    auto mate = service.submit(request(0, 7, 1));
    auto other = service.submit(request(1, 9, 1));
    ASSERT_TRUE(target.accepted && mate.accepted && other.accepted);
    service.drain();

    const Response response = target.response.get();
    ASSERT_EQ(response.status, ResponseStatus::kOk);
    EXPECT_FALSE(response.cache_hit);
    EXPECT_EQ(response.model_version, "v1");
    EXPECT_GE(response.batch_flows, 3u);  // target coalesced with mate
    EXPECT_EQ(hash_flows(response.flows), lib_hash)
        << "served flows diverged from library at " << lanes << " lanes";
    if (lanes == 1) {
      reference = lib_hash;
    } else {
      EXPECT_EQ(lib_hash, reference) << "lane count changed the bits";
    }
  }
  parallel::set_thread_count(original_lanes);
}

TEST_F(ServeTest, RepeatedRequestIsCacheHitWithIdenticalPayload) {
  TraceService service(registry_, fast_config());
  auto first = service.submit(request(0, 123, 2));
  ASSERT_TRUE(first.accepted);
  service.drain();
  const Response miss = first.response.get();
  ASSERT_EQ(miss.status, ResponseStatus::kOk);
  EXPECT_FALSE(miss.cache_hit);

  const std::uint64_t hits_before = service.stats().cache_hits.value();
  auto second = service.submit(request(0, 123, 2));
  ASSERT_TRUE(second.accepted);
  // A hit is ready immediately — no pump needed.
  const Response hit = second.response.get();
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hash_flows(hit.flows), hash_flows(miss.flows));
  EXPECT_EQ(service.stats().cache_hits.value(), hits_before + 1);
  EXPECT_EQ(service.pending(), 0u);

  // Different seed (or count) is a distinct key — not a hit.
  auto third = service.submit(request(0, 124, 2));
  ASSERT_TRUE(third.accepted);
  EXPECT_EQ(service.stats().cache_hits.value(), hits_before + 1);
  service.drain();
  EXPECT_FALSE(third.response.get().cache_hit);
}

TEST_F(ServeTest, FullQueueRejectsTypedWithoutDroppingAcceptedWork) {
  ServiceConfig cfg = fast_config();
  cfg.queue_capacity = 3;
  cfg.cache_capacity = 0;
  TraceService service(registry_, cfg);

  std::vector<SubmitResult> accepted;
  for (std::uint64_t s = 0; s < 3; ++s) {
    auto r = service.submit(request(0, 1000 + s));
    ASSERT_TRUE(r.accepted);
    accepted.push_back(std::move(r));
  }
  const std::uint64_t rejects_before =
      service.stats().rejected_full.value();
  auto overflow = service.submit(request(0, 2000));
  EXPECT_FALSE(overflow.accepted);
  EXPECT_EQ(overflow.reject, RejectReason::kQueueFull);
  EXPECT_STREQ(to_string(overflow.reject), "queue_full");
  EXPECT_EQ(service.stats().rejected_full.value(), rejects_before + 1);

  // Every accepted request completes; nothing was dropped.
  service.drain();
  for (auto& r : accepted) {
    EXPECT_EQ(r.response.get().status, ResponseStatus::kOk);
  }
  EXPECT_EQ(service.pending(), 0u);

  // Capacity freed: admission works again.
  EXPECT_TRUE(service.submit(request(0, 3000)).accepted);
}

TEST_F(ServeTest, QueueHeadroomTracksDepthAndRecoversAfterDrain) {
  // The headroom probe lets cooperative producers (the replay
  // prefetcher) stop submitting before burning a typed reject; it must
  // mirror queue depth exactly in single-threaded use.
  ServiceConfig cfg = fast_config();
  cfg.queue_capacity = 3;
  cfg.cache_capacity = 0;
  TraceService service(registry_, cfg);
  EXPECT_EQ(service.queue_headroom(), 3u);

  std::vector<SubmitResult> accepted;
  for (std::uint64_t s = 0; s < 3; ++s) {
    EXPECT_EQ(service.queue_headroom(), 3u - s);
    auto r = service.submit(request(0, 4000 + s));
    ASSERT_TRUE(r.accepted);
    accepted.push_back(std::move(r));
  }
  // Zero headroom is exactly the point where submit would reject.
  EXPECT_EQ(service.queue_headroom(), 0u);
  auto overflow = service.submit(request(0, 4100));
  EXPECT_FALSE(overflow.accepted);
  EXPECT_EQ(overflow.reject, RejectReason::kQueueFull);

  service.drain();
  EXPECT_EQ(service.queue_headroom(), 3u);
  for (auto& r : accepted) {
    EXPECT_EQ(r.response.get().status, ResponseStatus::kOk);
  }
}

TEST_F(ServeTest, ExpiredDeadlineCancelsBeforeModelWork) {
  ServiceConfig cfg = fast_config();
  cfg.cache_capacity = 0;
  TraceService service(registry_, cfg);

  GenerateRequest doomed = request(0, 55);
  doomed.deadline = 1.0;
  auto d = service.submit(doomed);
  auto alive = service.submit(request(0, 56));
  ASSERT_TRUE(d.accepted && alive.accepted);

  const std::uint64_t batches_before = service.stats().batches.value();
  const std::uint64_t cancelled_before =
      service.stats().cancelled_deadline.value();
  *now_ = 2.0;  // deadline passes while queued
  service.drain();

  const Response cancelled = d.response.get();
  EXPECT_EQ(cancelled.status, ResponseStatus::kCancelled);
  EXPECT_EQ(cancelled.cancel_reason, RejectReason::kDeadlineExpired);
  EXPECT_TRUE(cancelled.flows.empty());
  EXPECT_EQ(service.stats().cancelled_deadline.value(),
            cancelled_before + 1);
  // The surviving request got its own batch; the cancelled one consumed
  // no model work (exactly one dispatch happened).
  EXPECT_EQ(alive.response.get().status, ResponseStatus::kOk);
  EXPECT_EQ(service.stats().batches.value(), batches_before + 1);
}

TEST_F(ServeTest, MaxWaitDefersThenDispatches) {
  ServiceConfig cfg = fast_config();
  cfg.batch.max_wait = 0.5;
  cfg.batch.max_batch_flows = 8;
  cfg.cache_capacity = 0;
  TraceService service(registry_, cfg);

  auto r = service.submit(request(0, 1));
  ASSERT_TRUE(r.accepted);
  EXPECT_EQ(service.pump(), 0u);  // young head, shallow queue: wait
  EXPECT_EQ(service.pending(), 1u);
  *now_ = 0.6;  // head has now waited past max_wait
  EXPECT_EQ(service.pump(), 1u);
  EXPECT_EQ(r.response.get().status, ResponseStatus::kOk);

  // A backlog at/above the flow budget dispatches without waiting.
  std::vector<SubmitResult> burst;
  for (std::uint64_t s = 0; s < 8; ++s) {
    burst.push_back(service.submit(request(0, 100 + s)));
  }
  EXPECT_GT(service.pump(), 0u);
}

TEST_F(ServeTest, CompatibleRequestsCoalesceIntoOneBatch) {
  ServiceConfig cfg = fast_config();
  cfg.batch.max_batch_flows = 16;
  cfg.cache_capacity = 0;
  TraceService service(registry_, cfg);

  std::vector<SubmitResult> results;
  for (std::uint64_t s = 0; s < 4; ++s) {
    results.push_back(service.submit(request(1, 500 + s, 2)));
  }
  const std::uint64_t batches_before = service.stats().batches.value();
  EXPECT_EQ(service.pump(), 4u);  // one pump serves all four
  EXPECT_EQ(service.stats().batches.value(), batches_before + 1);
  for (auto& r : results) {
    const Response resp = r.response.get();
    EXPECT_EQ(resp.status, ResponseStatus::kOk);
    EXPECT_EQ(resp.batch_flows, 8u);  // 4 requests x 2 flows
    EXPECT_EQ(resp.flows.size(), 2u);
  }
}

TEST_F(ServeTest, IncompatibleRequestsAreNotCoalesced) {
  ServiceConfig cfg = fast_config();
  cfg.cache_capacity = 0;
  TraceService service(registry_, cfg);
  auto a = service.submit(request(0, 1));
  GenerateRequest b_req = request(0, 2);
  b_req.ddim_steps = 6;  // different steps => different batch key
  auto b = service.submit(b_req);
  ASSERT_TRUE(a.accepted && b.accepted);
  EXPECT_EQ(service.pump(), 1u);  // only the head's key dispatches
  EXPECT_EQ(service.pending(), 1u);
  EXPECT_EQ(service.pump(), 1u);
  EXPECT_EQ(a.response.get().batch_flows, 1u);
  EXPECT_EQ(b.response.get().batch_flows, 1u);
}

TEST_F(ServeTest, PrecisionAndSamplerAreCoalescingBarriers) {
  // Requests on different numeric routes (or samplers) produce different
  // bits by design, so coalescing them into one model call would let
  // batch-mates change a request's payload. Each must get its own batch.
  ServiceConfig cfg = fast_config();
  cfg.cache_capacity = 0;
  TraceService service(registry_, cfg);
  auto fp32 = service.submit(request(0, 1));
  GenerateRequest int8_req = request(0, 2);
  int8_req.precision = nn::Precision::kInt8;
  auto int8 = service.submit(int8_req);
  GenerateRequest distilled_req = request(0, 3);
  distilled_req.sampler = diffusion::SamplerKind::kDistilled;
  auto distilled = service.submit(distilled_req);
  ASSERT_TRUE(fp32.accepted && int8.accepted && distilled.accepted);
  // Three distinct batch keys: each pump dispatches exactly one batch.
  EXPECT_EQ(service.pump(), 1u);
  EXPECT_EQ(service.pending(), 2u);
  EXPECT_EQ(service.pump(), 1u);
  EXPECT_EQ(service.pump(), 1u);
  EXPECT_EQ(fp32.response.get().batch_flows, 1u);
  EXPECT_EQ(int8.response.get().batch_flows, 1u);
  EXPECT_EQ(distilled.response.get().batch_flows, 1u);
}

TEST_F(ServeTest, PrecisionIsPartOfTheCacheKey) {
  TraceService service(registry_, fast_config());
  auto fp32 = service.submit(request(0, 321, 2));
  ASSERT_TRUE(fp32.accepted);
  service.drain();
  ASSERT_EQ(fp32.response.get().status, ResponseStatus::kOk);

  // Identical (model, class, seed, steps, count) on the int8 route must
  // NOT be served from the fp32 entry — the routes differ numerically.
  GenerateRequest int8_req = request(0, 321, 2);
  int8_req.precision = nn::Precision::kInt8;
  auto int8_first = service.submit(int8_req);
  ASSERT_TRUE(int8_first.accepted);
  service.drain();
  const Response int8_miss = int8_first.response.get();
  ASSERT_EQ(int8_miss.status, ResponseStatus::kOk);
  EXPECT_FALSE(int8_miss.cache_hit);

  // Each route then hits its own entry.
  auto int8_again = service.submit(int8_req);
  ASSERT_TRUE(int8_again.accepted);
  EXPECT_TRUE(int8_again.response.get().cache_hit);
  auto fp32_again = service.submit(request(0, 321, 2));
  ASSERT_TRUE(fp32_again.accepted);
  EXPECT_TRUE(fp32_again.response.get().cache_hit);
}

TEST_F(ServeTest, ServedInt8MatchesLibraryBitExact) {
  // The serve-vs-direct contract on the quantized route, with a batch
  // mate sharing the dispatch — and the fp32 route must be bit-identical
  // to the library afterwards (precision never leaks between requests).
  diffusion::GenerateOptions lib_opts;
  lib_opts.count = 2;
  lib_opts.ddim_steps = 4;
  lib_opts.precision = nn::Precision::kInt8;
  const std::uint64_t int8_lib =
      hash_flows(pipeline_->generate_seeded(1, lib_opts, 88));
  lib_opts.precision = nn::Precision::kFp32;
  const std::uint64_t fp32_lib =
      hash_flows(pipeline_->generate_seeded(1, lib_opts, 88));

  ServiceConfig cfg = fast_config();
  cfg.cache_capacity = 0;
  TraceService service(registry_, cfg);
  GenerateRequest int8_req = request(1, 88, 2);
  int8_req.precision = nn::Precision::kInt8;
  auto target = service.submit(int8_req);
  GenerateRequest mate_req = request(1, 99, 1);
  mate_req.precision = nn::Precision::kInt8;
  auto mate = service.submit(mate_req);
  ASSERT_TRUE(target.accepted && mate.accepted);
  service.drain();
  const Response int8_resp = target.response.get();
  ASSERT_EQ(int8_resp.status, ResponseStatus::kOk);
  EXPECT_GE(int8_resp.batch_flows, 3u);
  EXPECT_EQ(hash_flows(int8_resp.flows), int8_lib);

  auto fp32 = service.submit(request(1, 88, 2));
  ASSERT_TRUE(fp32.accepted);
  service.drain();
  EXPECT_EQ(hash_flows(fp32.response.get().flows), fp32_lib);
}

TEST_F(ServeTest, ServedDistilledMatchesLibraryBitExact) {
  diffusion::GenerateOptions lib_opts;
  lib_opts.count = 2;
  lib_opts.ddim_steps = 4;
  lib_opts.sampler = diffusion::SamplerKind::kDistilled;
  const std::uint64_t lib_hash =
      hash_flows(pipeline_->generate_seeded(0, lib_opts, 777));

  ServiceConfig cfg = fast_config();
  cfg.cache_capacity = 0;
  TraceService service(registry_, cfg);
  GenerateRequest req = request(0, 777, 2);
  req.sampler = diffusion::SamplerKind::kDistilled;
  auto target = service.submit(req);
  GenerateRequest mate_req = request(0, 778, 1);
  mate_req.sampler = diffusion::SamplerKind::kDistilled;
  auto mate = service.submit(mate_req);
  ASSERT_TRUE(target.accepted && mate.accepted);
  service.drain();
  const Response resp = target.response.get();
  ASSERT_EQ(resp.status, ResponseStatus::kOk);
  EXPECT_GE(resp.batch_flows, 3u);  // coalesced with the mate
  EXPECT_EQ(hash_flows(resp.flows), lib_hash);
}

TEST_F(ServeTest, DistilledAdmissionRejectsUnfittedStepCount) {
  // Admission validates the step count against the snapshot's fitted
  // stages: failing fast beats throwing mid-batch, where the error would
  // take every coalesced batch-mate down too.
  TraceService service(registry_, fast_config());
  GenerateRequest bad = request(0, 5);
  bad.sampler = diffusion::SamplerKind::kDistilled;
  bad.ddim_steps = 3;  // fitted stages are 4 and 2
  EXPECT_EQ(service.submit(bad).reject, RejectReason::kBadRequest);

  GenerateRequest good = request(0, 5);
  good.sampler = diffusion::SamplerKind::kDistilled;
  good.ddim_steps = 4;
  auto r = service.submit(good);
  ASSERT_TRUE(r.accepted);
  service.drain();
  EXPECT_EQ(r.response.get().status, ResponseStatus::kOk);
}

TEST_F(ServeTest, PriorityLanesDrainHighFirst) {
  ServiceConfig cfg = fast_config();
  cfg.cache_capacity = 0;
  TraceService service(registry_, cfg);

  GenerateRequest low = request(0, 1);
  low.priority = Priority::kLow;
  low.ddim_steps = 3;  // distinct keys keep the batches separate
  GenerateRequest high = request(0, 2);
  high.priority = Priority::kHigh;
  high.ddim_steps = 5;
  auto l = service.submit(low);
  auto h = service.submit(high);
  ASSERT_TRUE(l.accepted && h.accepted);

  EXPECT_EQ(service.pump(), 1u);
  // The high lane dispatched first even though low was submitted first.
  EXPECT_EQ(h.response.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_NE(l.response.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  service.drain();
  EXPECT_EQ(l.response.get().status, ResponseStatus::kOk);
}

TEST_F(ServeTest, AdmissionValidatesModelClassAndCount) {
  TraceService service(registry_, fast_config());
  GenerateRequest bad_model = request(0, 1);
  bad_model.model = "nope";
  EXPECT_EQ(service.submit(bad_model).reject, RejectReason::kUnknownModel);
  GenerateRequest bad_class = request(7, 1);
  EXPECT_EQ(service.submit(bad_class).reject, RejectReason::kUnknownClass);
  GenerateRequest empty = request(0, 1);
  empty.count = 0;
  EXPECT_EQ(service.submit(empty).reject, RejectReason::kBadRequest);
  service.close();
  EXPECT_EQ(service.submit(request(0, 1)).reject,
            RejectReason::kShuttingDown);
}

TEST_F(ServeTest, HotSwapUsesNewVersionAndKeepsOldSnapshotAlive) {
  ServiceConfig cfg = fast_config();
  TraceService service(registry_, cfg);
  auto v1 = service.submit(request(0, 77));
  ASSERT_TRUE(v1.accepted);
  service.drain();
  EXPECT_EQ(v1.response.get().model_version, "v1");

  // An in-flight holder of the old snapshot survives the swap.
  const auto old_snap = registry_.snapshot("default");
  registry_.install("default", pipeline_, "v2");
  ASSERT_NE(old_snap, nullptr);
  EXPECT_EQ(old_snap->version, "v1");
  EXPECT_NE(registry_.snapshot("default"), old_snap);

  // The v1 cache entry must not satisfy a v2 request (version is part
  // of the key), but the flows themselves are identical here because
  // both versions share the same weights.
  auto v2 = service.submit(request(0, 77));
  ASSERT_TRUE(v2.accepted);
  const Response hit_check = [&] {
    if (v2.response.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      return v2.response.get();  // would be a (wrong) cache hit
    }
    service.drain();
    return v2.response.get();
  }();
  EXPECT_FALSE(hit_check.cache_hit);
  EXPECT_EQ(hit_check.model_version, "v2");
}

TEST_F(ServeTest, RemovedModelCancelsQueuedWorkTyped) {
  ServiceConfig cfg = fast_config();
  cfg.cache_capacity = 0;
  TraceService service(registry_, cfg);
  auto r = service.submit(request(0, 5));
  ASSERT_TRUE(r.accepted);
  registry_.remove("default");
  service.drain();
  const Response resp = r.response.get();
  EXPECT_EQ(resp.status, ResponseStatus::kCancelled);
  EXPECT_EQ(resp.cancel_reason, RejectReason::kUnknownModel);
}

TEST_F(ServeTest, BackgroundWorkerServesSubmissions) {
  ServiceConfig cfg = fast_config();
  cfg.clock = ClockFn{};  // real clock in background mode
  cfg.worker_idle_wait = 0.001;
  TraceService service(registry_, cfg);
  service.start();
  auto r = service.submit(request(0, 31337));
  ASSERT_TRUE(r.accepted);
  const Response resp = r.response.get();  // blocks on the worker
  EXPECT_EQ(resp.status, ResponseStatus::kOk);
  EXPECT_EQ(resp.flows.size(), 1u);
  service.stop();
  // Bit-identical to the library even through the background thread.
  diffusion::GenerateOptions lib_opts;
  lib_opts.count = 1;
  lib_opts.ddim_steps = 4;
  EXPECT_EQ(hash_flows(resp.flows),
            hash_flows(pipeline_->generate_seeded(0, lib_opts, 31337)));
}

TEST_F(ServeTest, TracingOnOrOffNeverChangesServedBits) {
  // The observability contract: arming the flight recorder and span
  // tracing must be bit-transparent — the generated flows are identical
  // whether telemetry is on or off, at 1 and 4 parallel lanes.
  const bool telemetry_was_on = telemetry::enabled();
  const std::size_t original_lanes = parallel::thread_count();
  for (const std::size_t lanes : {std::size_t{1}, std::size_t{4}}) {
    parallel::set_thread_count(lanes);
    std::uint64_t hashes[2] = {0, 0};
    for (const bool traced : {false, true}) {
      telemetry::set_enabled(traced);
      ServiceConfig cfg = fast_config();
      cfg.cache_capacity = 0;
      cfg.flightrec_force = traced;
      TraceService service(registry_, cfg);
      auto a = service.submit(request(0, 42, 2));
      auto b = service.submit(request(1, 9, 1));
      ASSERT_TRUE(a.accepted && b.accepted);
      service.drain();
      const Response ra = a.response.get();
      const Response rb = b.response.get();
      ASSERT_EQ(ra.status, ResponseStatus::kOk);
      ASSERT_EQ(rb.status, ResponseStatus::kOk);
      std::uint64_t h = hash_flows(ra.flows);
      h ^= hash_flows(rb.flows) * 1099511628211ULL;
      hashes[traced ? 1 : 0] = h;
      // Traced run actually recorded a timeline; untraced recorded none.
      EXPECT_EQ(service.flight_recorder().recorded() > 0, traced);
    }
    EXPECT_EQ(hashes[0], hashes[1])
        << "tracing changed the served bits at " << lanes << " lanes";
  }
  parallel::set_thread_count(original_lanes);
  telemetry::set_enabled(telemetry_was_on);
}

TEST_F(ServeTest, PerLaneStatsAndTypedRejectCountersTrack) {
  ServiceConfig cfg = fast_config();
  cfg.cache_capacity = 0;
  cfg.queue_capacity = 2;
  TraceService service(registry_, cfg);

  // Registry counters are process-global; assert on deltas.
  ServiceStats& stats = service.stats();
  LaneStats& high = stats.lane_of(Priority::kHigh);
  LaneStats& low = stats.lane_of(Priority::kLow);
  const std::uint64_t high_admitted = high.admitted.value();
  const std::uint64_t high_completed = high.completed.value();
  const std::uint64_t low_admitted = low.admitted.value();
  const std::uint64_t full_rejects =
      stats.reject_reason(RejectReason::kQueueFull).value();
  const std::uint64_t class_rejects =
      stats.reject_reason(RejectReason::kUnknownClass).value();

  GenerateRequest urgent = request(0, 1);
  urgent.priority = Priority::kHigh;
  GenerateRequest lazy = request(0, 2);
  lazy.priority = Priority::kLow;
  lazy.ddim_steps = 3;  // separate batch key from the high request
  ASSERT_TRUE(service.submit(urgent).accepted);
  ASSERT_TRUE(service.submit(lazy).accepted);
  EXPECT_EQ(high.admitted.value(), high_admitted + 1);
  EXPECT_EQ(low.admitted.value(), low_admitted + 1);
  EXPECT_EQ(high.queue_depth.value(), 1.0);
  EXPECT_EQ(low.queue_depth.value(), 1.0);

  // Queue is full now: the typed overload counter ticks...
  EXPECT_FALSE(service.submit(request(0, 3)).accepted);
  EXPECT_EQ(stats.reject_reason(RejectReason::kQueueFull).value(),
            full_rejects + 1);
  // ...and invalid input ticks its own reason, not the overload one.
  EXPECT_EQ(service.submit(request(9, 4)).reject,
            RejectReason::kUnknownClass);
  EXPECT_EQ(stats.reject_reason(RejectReason::kUnknownClass).value(),
            class_rejects + 1);
  EXPECT_EQ(stats.reject_reason(RejectReason::kQueueFull).value(),
            full_rejects + 1);

  service.drain();
  EXPECT_EQ(high.completed.value(), high_completed + 1);
  EXPECT_EQ(high.queue_depth.value(), 0.0);
  EXPECT_EQ(low.queue_depth.value(), 0.0);
}

TEST_F(ServeTest, FlightRecorderCoversDrainedWorkload) {
  ServiceConfig cfg = fast_config();
  cfg.cache_capacity = 0;
  cfg.flightrec_force = true;  // record even with REPRO_TELEMETRY off
  TraceService service(registry_, cfg);
  *now_ = 1.0;  // nonzero timestamps distinguish "recorded" from default

  constexpr std::uint64_t kRequests = 6;
  std::vector<SubmitResult> results;
  for (std::uint64_t s = 0; s < kRequests; ++s) {
    results.push_back(service.submit(request(s % 2 ? 1 : 0, 700 + s)));
    ASSERT_TRUE(results.back().accepted);
  }
  service.drain();

  const auto dump =
      observe::parse_flight_dump(service.flight_recorder().dump_json());
  ASSERT_TRUE(dump.has_value());
  EXPECT_EQ(dump->overwritten, 0u);
  const observe::InspectReport report = observe::reconstruct(dump->events);
  ASSERT_EQ(report.requests.size(), kRequests);
  EXPECT_EQ(report.complete, kRequests);
  for (const observe::RequestTimeline& timeline : report.requests) {
    EXPECT_TRUE(timeline.complete);
    EXPECT_EQ(timeline.terminal, observe::EventKind::kCompleted);
    EXPECT_NE(timeline.batch_id, 0u);
  }
  // Every response joins its flight-recorder batch via Response.batch_id.
  for (auto& r : results) {
    const Response resp = r.response.get();
    ASSERT_EQ(resp.status, ResponseStatus::kOk);
    bool found = false;
    for (const observe::BatchComposition& batch : report.batches) {
      if (batch.batch_id != resp.batch_id) continue;
      found = true;
      EXPECT_GT(batch.model_end, 0.0);
    }
    EXPECT_TRUE(found) << "response batch " << resp.batch_id
                       << " missing from the flight dump";
  }
}

TEST_F(ServeTest, HealthJsonReportsLanesBudgetsAndRecorderState) {
  ServiceConfig cfg = fast_config();
  cfg.cache_capacity = 0;
  cfg.flightrec_force = true;
  TraceService service(registry_, cfg);
  auto r = service.submit(request(0, 4242));
  ASSERT_TRUE(r.accepted);
  service.drain();
  ASSERT_EQ(r.response.get().status, ResponseStatus::kOk);

  const auto doc = observe::parse_json(service.health_json());
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  // Instant completions on the fake clock cannot violate any objective.
  EXPECT_EQ(doc->find("status")->str_or(""), "ok");
  const observe::JsonValue* requests = doc->find("requests");
  ASSERT_NE(requests, nullptr);
  EXPECT_GE(requests->find("completed")->num_or(0), 1.0);
  const observe::JsonValue* lanes = doc->find("lanes");
  ASSERT_NE(lanes, nullptr);
  ASSERT_EQ(lanes->array.size(), static_cast<std::size_t>(kPriorityLanes));
  const observe::JsonValue& normal = lanes->array[1];  // Priority::kNormal
  EXPECT_GE(normal.find("admitted")->num_or(0), 1.0);
  EXPECT_DOUBLE_EQ(normal.find("budget_remaining")->num_or(-1), 1.0);
  EXPECT_EQ(normal.find("budget_status")->str_or(""), "ok");
  ASSERT_NE(normal.find("latency_p95"), nullptr);
  const observe::JsonValue* recorder = doc->find("flight_recorder");
  ASSERT_NE(recorder, nullptr);
  EXPECT_TRUE(recorder->find("armed")->boolean);
  EXPECT_GE(recorder->find("recorded")->num_or(0), 1.0);
}

TEST_F(ServeTest, DeadlineSweepSeesOneClockReadPerPump) {
  // Regression: pump() samples the clock exactly ONCE per iteration and
  // injects that `now` into the deadline sweep. Under a clock that
  // advances on every read (each tick = 1s here), a sweep that re-read
  // time per queued request would compare later queue positions against
  // fresher timestamps and cancel work that was inside its deadline
  // when the iteration began.
  ServiceConfig cfg = fast_config();
  cfg.cache_capacity = 0;
  cfg.batch.max_wait = 10.0;  // hold dispatch: pump takes the sweep path
  cfg.clock = [t = now_] { *t += 1.0; return *t; };
  TraceService service(registry_, cfg);  // ctor read: t = 1

  // Each submit reads the clock once (enqueue times 2, 3, 4). The next
  // read — the one pump() performs — sees t = 5; a deadline of 5.5
  // outlives that single read but not a second (6) or third (7).
  std::vector<SubmitResult> results;
  for (std::uint64_t s = 0; s < 3; ++s) {
    GenerateRequest r = request(0, 9100 + s);
    r.deadline = 5.5;
    results.push_back(service.submit(r));
    ASSERT_TRUE(results.back().accepted);
  }
  ASSERT_DOUBLE_EQ(*now_, 4.0);
  EXPECT_EQ(service.pump(), 0u);  // t = 5: nothing expired, none swept
  EXPECT_DOUBLE_EQ(*now_, 5.0);
  EXPECT_EQ(service.pending(), 3u);

  // Once the single per-pump read does pass the deadline, one iteration
  // sweeps all three against that same timestamp.
  EXPECT_EQ(service.pump(), 3u);  // t = 6 > 5.5
  for (auto& r : results) {
    const Response resp = r.response.get();
    EXPECT_EQ(resp.status, ResponseStatus::kCancelled);
    EXPECT_EQ(resp.cancel_reason, RejectReason::kDeadlineExpired);
  }
}

TEST(RequestQueueTest, SweepExpiredUsesOneInjectedTimestamp) {
  RequestQueue queue(8);
  for (std::uint64_t id = 1; id <= 4; ++id) {
    Pending p;
    p.id = id;
    p.request.deadline = static_cast<double>(id);  // deadlines 1..4
    ASSERT_FALSE(queue.try_push(std::move(p)).has_value());
  }
  // One injected `now` governs the whole sweep: deadlines 1 and 2
  // precede 2.5, deadlines 3 and 4 do not.
  auto expired = queue.sweep_expired(2.5, 16);
  ASSERT_EQ(expired.size(), 2u);
  EXPECT_EQ(expired[0].id, 1u);
  EXPECT_EQ(expired[1].id, 2u);
  EXPECT_EQ(queue.size(), 2u);
  // `max` caps the sweep; survivors stay queued in FIFO order.
  expired = queue.sweep_expired(10.0, 1);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].id, 3u);
  EXPECT_EQ(queue.size(), 1u);
}

TEST(ResultCacheTest, LruEvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  net::Flow f;
  f.label = 7;
  CacheKey a{"v1", 0, 1, diffusion::SamplerKind::kDdim, 4,
             nn::Precision::kFp32, 1};
  CacheKey b = a;
  b.seed = 2;
  CacheKey c = a;
  c.seed = 3;
  cache.put(a, {f});
  cache.put(b, {f});
  EXPECT_TRUE(cache.get(a).has_value());  // touch a => b is now LRU
  cache.put(c, {f});                      // evicts b
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.get(a).has_value());
  EXPECT_FALSE(cache.get(b).has_value());
  EXPECT_TRUE(cache.get(c).has_value());
  // Capacity 0 disables caching entirely.
  ResultCache off(0);
  off.put(a, {f});
  EXPECT_FALSE(off.get(a).has_value());
  EXPECT_EQ(off.size(), 0u);
}

TEST(RequestQueueTest, BoundedAdmissionAndPriorityOrder) {
  RequestQueue queue(2);
  Pending a;
  a.request.priority = Priority::kLow;
  a.id = 1;
  Pending b;
  b.request.priority = Priority::kHigh;
  b.id = 2;
  EXPECT_FALSE(queue.try_push(std::move(a)).has_value());
  EXPECT_FALSE(queue.try_push(std::move(b)).has_value());
  Pending c;
  const auto reject = queue.try_push(std::move(c));
  ASSERT_TRUE(reject.has_value());
  EXPECT_EQ(*reject, RejectReason::kQueueFull);

  auto head = queue.pop_head();
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->id, 2u);  // high priority first
  EXPECT_EQ(queue.pop_head()->id, 1u);
  EXPECT_FALSE(queue.pop_head().has_value());
}

}  // namespace
}  // namespace repro::serve
