#include "nprint/codec.hpp"

#include <gtest/gtest.h>

#include "net/packet.hpp"

namespace repro::nprint {
namespace {

using net::IpProto;
using net::Packet;

TEST(Codec, EncodedRowHasTernaryValuesOnly) {
  const Packet pkt = net::make_tcp_packet(1, 2, 1000, 443, 64, 0.0);
  const auto row = encode_packet(pkt);
  ASSERT_EQ(row.size(), kBitsPerPacket);
  for (float v : row) {
    EXPECT_TRUE(v == -1.0f || v == 0.0f || v == 1.0f);
  }
}

TEST(Codec, TcpPacketVacatesUdpAndIcmpRegions) {
  const Packet pkt = net::make_tcp_packet(1, 2, 1000, 443, 64, 0.0);
  const auto row = encode_packet(pkt);
  for (std::size_t i = kUdpOffset; i < kUdpOffset + kUdpBits; ++i) {
    EXPECT_EQ(row[i], -1.0f);
  }
  for (std::size_t i = kIcmpOffset; i < kIcmpOffset + kIcmpBits; ++i) {
    EXPECT_EQ(row[i], -1.0f);
  }
  // TCP fixed header (160 bits) must be fully occupied.
  for (std::size_t i = 0; i < 160; ++i) {
    EXPECT_NE(row[i], -1.0f) << "bit " << i;
  }
}

TEST(Codec, UdpPacketVacatesTcpRegion) {
  const Packet pkt = net::make_udp_packet(1, 2, 5000, 53, 32, 0.0);
  const auto row = encode_packet(pkt);
  for (std::size_t i = kTcpOffset; i < kTcpOffset + kTcpBits; ++i) {
    EXPECT_EQ(row[i], -1.0f);
  }
  for (std::size_t i = kUdpOffset; i < kUdpOffset + kUdpBits; ++i) {
    EXPECT_NE(row[i], -1.0f);
  }
}

TEST(Codec, OptionBitsVacantWithoutOptions) {
  const Packet pkt = net::make_tcp_packet(1, 2, 1, 2, 0, 0.0);
  const auto row = encode_packet(pkt);
  // No TCP options -> bits 160..479 vacant.
  for (std::size_t i = 160; i < kTcpBits; ++i) {
    EXPECT_EQ(row[i], -1.0f);
  }
  // Same for IPv4 options.
  for (std::size_t i = kIpv4Offset + 160; i < kIpv4Offset + kIpv4Bits; ++i) {
    EXPECT_EQ(row[i], -1.0f);
  }
}

TEST(Codec, TcpOptionsOccupyOptionBits) {
  Packet pkt = net::make_tcp_packet(1, 2, 1, 2, 0, 0.0);
  pkt.tcp->options = {0x02, 0x04, 0x05, 0xb4};  // MSS 1460
  const auto row = encode_packet(pkt);
  for (std::size_t i = 160; i < 160 + 32; ++i) {
    EXPECT_NE(row[i], -1.0f);
  }
  for (std::size_t i = 160 + 32; i < kTcpBits; ++i) {
    EXPECT_EQ(row[i], -1.0f);
  }
}

struct RoundTripCase {
  const char* name;
  IpProto proto;
};

class CodecRoundTripTest : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(CodecRoundTripTest, FieldLevelRoundTrip) {
  Packet pkt;
  switch (GetParam().proto) {
    case IpProto::kTcp: {
      pkt = net::make_tcp_packet(0xC0A80105, 0x17202122, 49152, 443, 512, 0.0);
      pkt.tcp->seq = 0xA1B2C3D4;
      pkt.tcp->ack = 0x01020304;
      pkt.tcp->ack_flag = true;
      pkt.tcp->psh = true;
      pkt.tcp->window = 29200;
      pkt.ip.ttl = 57;
      break;
    }
    case IpProto::kUdp: {
      pkt = net::make_udp_packet(0xC0A80105, 0x17202122, 40000, 3478, 180, 0.0);
      pkt.ip.dscp = 46;
      pkt.ip.ttl = 61;
      break;
    }
    case IpProto::kIcmp: {
      pkt = net::make_icmp_packet(0xC0A80105, 0x08080404, 8, 0, 56, 0.0);
      pkt.icmp->rest_of_header = 0x00420007;
      break;
    }
  }
  const auto row = encode_packet(pkt);
  Packet decoded;
  ASSERT_TRUE(decode_packet(row.data(), decoded));
  EXPECT_EQ(decoded.ip.protocol, pkt.ip.protocol);
  EXPECT_EQ(decoded.ip.src_addr, pkt.ip.src_addr);
  EXPECT_EQ(decoded.ip.dst_addr, pkt.ip.dst_addr);
  EXPECT_EQ(decoded.ip.ttl, pkt.ip.ttl);
  EXPECT_EQ(decoded.ip.dscp, pkt.ip.dscp);
  EXPECT_EQ(decoded.payload.size(), pkt.payload.size());
  switch (GetParam().proto) {
    case IpProto::kTcp:
      ASSERT_TRUE(decoded.tcp.has_value());
      EXPECT_EQ(decoded.tcp->src_port, pkt.tcp->src_port);
      EXPECT_EQ(decoded.tcp->dst_port, pkt.tcp->dst_port);
      EXPECT_EQ(decoded.tcp->seq, pkt.tcp->seq);
      EXPECT_EQ(decoded.tcp->ack, pkt.tcp->ack);
      EXPECT_EQ(decoded.tcp->ack_flag, pkt.tcp->ack_flag);
      EXPECT_EQ(decoded.tcp->psh, pkt.tcp->psh);
      EXPECT_EQ(decoded.tcp->window, pkt.tcp->window);
      break;
    case IpProto::kUdp:
      ASSERT_TRUE(decoded.udp.has_value());
      EXPECT_EQ(decoded.udp->src_port, pkt.udp->src_port);
      EXPECT_EQ(decoded.udp->dst_port, pkt.udp->dst_port);
      break;
    case IpProto::kIcmp:
      ASSERT_TRUE(decoded.icmp.has_value());
      EXPECT_EQ(decoded.icmp->type, pkt.icmp->type);
      EXPECT_EQ(decoded.icmp->rest_of_header, pkt.icmp->rest_of_header);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, CodecRoundTripTest,
    ::testing::Values(RoundTripCase{"tcp", IpProto::kTcp},
                      RoundTripCase{"udp", IpProto::kUdp},
                      RoundTripCase{"icmp", IpProto::kIcmp}),
    [](const ::testing::TestParamInfo<RoundTripCase>& param_info) {
      return param_info.param.name;
    });

TEST(Codec, DecodeVacantRowReturnsFalse) {
  const std::vector<float> vacant(kBitsPerPacket, -1.0f);
  Packet pkt;
  EXPECT_FALSE(decode_packet(vacant.data(), pkt));
}

TEST(Codec, TcpOptionsRoundTrip) {
  Packet pkt = net::make_tcp_packet(1, 2, 80, 8080, 0, 0.0);
  pkt.tcp->syn = true;
  pkt.tcp->options = {0x02, 0x04, 0x05, 0xb4, 0x01, 0x03, 0x03, 0x07};
  const auto row = encode_packet(pkt);
  Packet decoded;
  ASSERT_TRUE(decode_packet(row.data(), decoded));
  ASSERT_TRUE(decoded.tcp.has_value());
  EXPECT_EQ(decoded.tcp->options, pkt.tcp->options);
}

TEST(Codec, EncodeFlowShapesAndPadding) {
  net::Flow flow;
  for (int i = 0; i < 5; ++i) {
    flow.packets.push_back(net::make_tcp_packet(1, 2, 10, 20, 0, i * 0.1));
  }
  const Matrix unpadded = encode_flow(flow, 16, /*pad_to_max=*/false);
  EXPECT_EQ(unpadded.rows(), 5u);
  const Matrix padded = encode_flow(flow, 16, /*pad_to_max=*/true);
  EXPECT_EQ(padded.rows(), 16u);
  EXPECT_EQ(padded.active_rows(), 5u);
  for (std::size_t r = 5; r < 16; ++r) {
    EXPECT_TRUE(padded.row_vacant(r));
  }
}

TEST(Codec, EncodeFlowTruncatesLongFlows) {
  net::Flow flow;
  for (int i = 0; i < 40; ++i) {
    flow.packets.push_back(net::make_udp_packet(1, 2, 10, 20, 8, i * 0.1));
  }
  const Matrix matrix = encode_flow(flow, 16);
  EXPECT_EQ(matrix.rows(), 16u);
  EXPECT_EQ(matrix.active_rows(), 16u);
}

TEST(Codec, DecodeFlowSkipsVacantRowsAndAssignsTimestamps) {
  net::Flow flow;
  for (int i = 0; i < 3; ++i) {
    flow.packets.push_back(net::make_udp_packet(1, 2, 10, 20, 8, 0.0));
  }
  const Matrix matrix = encode_flow(flow, 8, /*pad_to_max=*/true);
  const net::Flow decoded = decode_flow(matrix, 0.01);
  ASSERT_EQ(decoded.packets.size(), 3u);
  EXPECT_DOUBLE_EQ(decoded.packets[0].timestamp, 0.0);
  EXPECT_NEAR(decoded.packets[2].timestamp, 0.02, 1e-9);
}

TEST(Codec, QuantizeSnapsToNearest) {
  Matrix m(1);
  m.at(0, 0) = 0.9f;
  m.at(0, 1) = 0.4f;
  m.at(0, 2) = -0.2f;
  m.at(0, 3) = -0.8f;
  m.at(0, 4) = 3.7f;
  quantize(m);
  EXPECT_EQ(m.at(0, 0), 1.0f);
  EXPECT_EQ(m.at(0, 1), 0.0f);
  EXPECT_EQ(m.at(0, 2), 0.0f);
  EXPECT_EQ(m.at(0, 3), -1.0f);
  EXPECT_EQ(m.at(0, 4), 1.0f);
}

TEST(Codec, TernaryFraction) {
  Matrix m(1);  // all -1 initially
  EXPECT_DOUBLE_EQ(ternary_fraction(m), 1.0);
  m.at(0, 0) = 0.5f;
  EXPECT_LT(ternary_fraction(m), 1.0);
  quantize(m);
  EXPECT_DOUBLE_EQ(ternary_fraction(m), 1.0);
}

TEST(Codec, CsvExportShapeAndValues) {
  net::Flow flow;
  flow.packets.push_back(net::make_udp_packet(1, 2, 53, 53, 4, 0.0));
  const Matrix m = encode_flow(flow, 2, /*pad_to_max=*/true);
  const std::string csv = to_csv(m);
  // Header + 2 data lines.
  std::size_t lines = 0;
  for (char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 3u);
  EXPECT_EQ(csv.rfind("tcp_sprt_0,", 0), 0u);  // header starts with bit 0
  // Padding row is all -1.
  const std::size_t last_line = csv.rfind("-1,-1,");
  EXPECT_NE(last_line, std::string::npos);
  const std::string headerless = to_csv(m, /*include_header=*/false);
  std::size_t data_lines = 0;
  for (char c : headerless) {
    if (c == '\n') ++data_lines;
  }
  EXPECT_EQ(data_lines, 2u);
}

TEST(Codec, FieldSpansTileLayoutExactly) {
  const auto& spans = field_spans();
  std::vector<bool> covered(kBitsPerPacket, false);
  for (const auto& span : spans) {
    for (std::size_t i = 0; i < span.bits; ++i) {
      ASSERT_LT(span.offset + i, kBitsPerPacket);
      EXPECT_FALSE(covered[span.offset + i]) << "overlap at " << span.offset + i;
      covered[span.offset + i] = true;
    }
  }
  for (std::size_t i = 0; i < kBitsPerPacket; ++i) {
    EXPECT_TRUE(covered[i]) << "gap at " << i;
  }
}

TEST(Codec, DecodeRepairsCorruptedProtocolField) {
  // Encode a UDP packet, then corrupt the IPv4 protocol field to a random
  // pattern; occupancy voting must still pick UDP.
  const Packet pkt = net::make_udp_packet(1, 2, 1000, 53, 16, 0.0);
  auto row = encode_packet(pkt);
  for (std::size_t i = 0; i < 8; ++i) {
    row[kIpv4Offset + 72 + i] = 1.0f;  // protocol = 255
  }
  Packet decoded;
  ASSERT_TRUE(decode_packet(row.data(), decoded));
  EXPECT_EQ(decoded.ip.protocol, IpProto::kUdp);
  EXPECT_TRUE(decoded.udp.has_value());
}

TEST(Codec, DecodeClampsAbsurdTotalLength) {
  Packet pkt = net::make_udp_packet(1, 2, 1000, 53, 16, 0.0);
  auto row = encode_packet(pkt);
  // Force total_length bits (ipv4 offset + 16..31) to all ones = 65535.
  for (std::size_t i = 16; i < 32; ++i) {
    row[kIpv4Offset + i] = 1.0f;
  }
  Packet decoded;
  ASSERT_TRUE(decode_packet(row.data(), decoded));
  EXPECT_LE(decoded.payload.size(), 9000u);
}

TEST(Codec, DecodedFlowSerializesToValidPcapBytes) {
  // The full §3.1 back-transform: matrix -> flow -> wire bytes -> parse.
  net::Flow flow;
  flow.packets.push_back(net::make_tcp_packet(11, 22, 333, 443, 100, 0.0));
  const Matrix matrix = encode_flow(flow, 4, /*pad_to_max=*/true);
  const net::Flow decoded = decode_flow(matrix);
  ASSERT_EQ(decoded.packets.size(), 1u);
  const auto wire = decoded.packets[0].serialize();
  const Packet parsed = net::Packet::parse(wire);
  EXPECT_TRUE(parsed.consistent());
  EXPECT_EQ(parsed.tcp->dst_port, 443);
}

}  // namespace
}  // namespace repro::nprint
