#include "diffusion/distill.hpp"

#include <cmath>
#include <stdexcept>

#include "common/contracts.hpp"
#include "common/parallel/parallel_for.hpp"
#include "common/telemetry/trace.hpp"

namespace repro::diffusion {
namespace {

constexpr std::size_t kStepGrain = 4096;  // elementwise ops per chunk

/// The eta = 0 DDIM update written in its affine form x' = c1 x + c2 eps.
struct StepCoefs {
  float c1 = 0.0f;
  float c2 = 0.0f;
};

StepCoefs step_coefs(float abar_t, float abar_prev) {
  REPRO_REQUIRE(abar_t > 0.0f && abar_prev >= abar_t,
                "distill: alpha_bar must be positive and non-increasing in t");
  const float sqrt_abar_t = std::sqrt(abar_t);
  const float sqrt_1m_t = std::sqrt(1.0f - abar_t);
  const float sqrt_abar_prev = std::sqrt(abar_prev);
  const float dir_coef = std::sqrt(std::max(1.0f - abar_prev, 0.0f));
  StepCoefs coefs;
  coefs.c1 = sqrt_abar_prev / sqrt_abar_t;
  coefs.c2 = dir_coef - sqrt_abar_prev * sqrt_1m_t / sqrt_abar_t;
  return coefs;
}

StepCoefs stage_step_coefs(const NoiseSchedule& schedule,
                           const DistilledStage& stage, std::size_t i) {
  const bool last = i + 1 == stage.steps();
  const float abar_t = schedule.alpha_bar(stage.taus[i]);
  const float abar_prev = last ? 1.0f : schedule.alpha_bar(stage.taus[i + 1]);
  return step_coefs(abar_t, abar_prev);
}

/// x = c1 * x + c2g * eps, elementwise. Fixed chunks, disjoint writes —
/// bit-identical at any lane count.
void apply_step(nn::Tensor& x, const nn::Tensor& eps, float c1, float c2g) {
  REPRO_REQUIRE(eps.size() == x.size(),
                "distill: eps_fn returned a tensor of the wrong size");
  parallel::parallel_for(0, x.size(), kStepGrain,
                         [&](std::size_t cb, std::size_t ce) {
                           for (std::size_t j = cb; j < ce; ++j) {
                             x[j] = c1 * x[j] + c2g * eps[j];
                           }
                         });
}

}  // namespace

DistilledStage teacher_stage(std::size_t t0, std::size_t steps) {
  DistilledStage stage;
  stage.taus = ddim_tau_schedule(t0, steps);
  stage.gains.assign(steps, 1.0f);
  return stage;
}

StageFit distill_halve(const EpsFn& eps_fn, const NoiseSchedule& schedule,
                       const DistilledStage& teacher,
                       const nn::Tensor& calib_x) {
  const std::size_t s = teacher.steps();
  if (s < 2) {
    throw std::invalid_argument("distill_halve: teacher needs >= 2 steps");
  }
  REPRO_REQUIRE(teacher.gains.size() == s, "distill_halve: malformed stage");
  // Roll the teacher out once, recording every intermediate state and
  // every eps prediction. states[j] sits at timestep teacher.taus[j]
  // (states[s] is the clean latent); the student reuses epss[2i]
  // verbatim because its merged step starts from the same state.
  std::vector<nn::Tensor> states;
  std::vector<nn::Tensor> epss;
  states.reserve(s + 1);
  epss.reserve(s);
  states.push_back(calib_x);
  for (std::size_t j = 0; j < s; ++j) {
    epss.push_back(eps_fn(states[j], teacher.taus[j]));
    const StepCoefs coefs = stage_step_coefs(schedule, teacher, j);
    nn::Tensor next = states[j];
    apply_step(next, epss[j], coefs.c1, coefs.c2 * teacher.gains[j]);
    states.push_back(std::move(next));
  }
  // Student schedule: every other teacher tau (ceil(s/2) survive).
  StageFit fit;
  for (std::size_t j = 0; j < s; j += 2) fit.stage.taus.push_back(teacher.taus[j]);
  const std::size_t ssteps = fit.stage.taus.size();
  fit.stage.gains.assign(ssteps, 1.0f);
  double sum_plain = 0.0, sum_fitted = 0.0, count = 0.0;
  for (std::size_t i = 0; i < ssteps; ++i) {
    const nn::Tensor& src = states[2 * i];
    const nn::Tensor& target = states[std::min(2 * i + 2, s)];
    const nn::Tensor& eps = epss[2 * i];
    const StepCoefs coefs = stage_step_coefs(schedule, fit.stage, i);
    // Closed-form least squares for min_g || c1 src + c2 g eps - target ||:
    // g = <eps, target - c1 src> / (c2 <eps, eps>). Serial accumulation
    // in doubles keeps the fit reproducible.
    double num = 0.0, den = 0.0;
    for (std::size_t e = 0; e < src.size(); ++e) {
      const double r = static_cast<double>(target[e]) -
                       static_cast<double>(coefs.c1) * src[e];
      num += static_cast<double>(eps[e]) * r;
      den += static_cast<double>(eps[e]) * eps[e];
    }
    float gain = 1.0f;
    if (den > 0.0 && coefs.c2 != 0.0f) {
      gain = static_cast<float>(num / (static_cast<double>(coefs.c2) * den));
    }
    fit.stage.gains[i] = gain;
    for (std::size_t e = 0; e < src.size(); ++e) {
      const double base = static_cast<double>(coefs.c1) * src[e];
      const double tgt = target[e];
      const double dp = base + static_cast<double>(coefs.c2) * eps[e] - tgt;
      const double df =
          base + static_cast<double>(coefs.c2 * gain) * eps[e] - tgt;
      sum_plain += dp * dp;
      sum_fitted += df * df;
    }
    count += static_cast<double>(src.size());
  }
  if (count > 0.0) {
    fit.mse_plain = static_cast<float>(sum_plain / count);
    fit.mse_fitted = static_cast<float>(sum_fitted / count);
  }
  return fit;
}

nn::Tensor distilled_sample_from(const EpsFn& eps_fn,
                                 const NoiseSchedule& schedule, nn::Tensor x,
                                 const DistilledStage& stage) {
  if (stage.taus.empty() || stage.gains.size() != stage.taus.size()) {
    throw std::invalid_argument("distilled_sample_from: malformed stage");
  }
  if (stage.t0() >= schedule.timesteps()) {
    throw std::invalid_argument("distilled_sample_from: t0 out of range");
  }
  for (std::size_t i = 0; i < stage.steps(); ++i) {
    REPRO_SPAN("diffusion.sample.distilled_step");
    const nn::Tensor eps = eps_fn(x, stage.taus[i]);
    const StepCoefs coefs = stage_step_coefs(schedule, stage, i);
    apply_step(x, eps, coefs.c1, coefs.c2 * stage.gains[i]);
  }
  return x;
}

}  // namespace repro::diffusion
