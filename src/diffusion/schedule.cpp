#include "diffusion/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/contracts.hpp"

namespace repro::diffusion {

NoiseSchedule::NoiseSchedule(std::size_t timesteps, ScheduleKind kind,
                             float beta_start, float beta_end) {
  if (timesteps == 0) {
    throw std::invalid_argument("NoiseSchedule: timesteps must be > 0");
  }
  REPRO_REQUIRE(beta_start > 0.0f && beta_start <= beta_end && beta_end < 1.0f,
                "NoiseSchedule: betas must satisfy 0 < start <= end < 1");
  betas_.resize(timesteps);
  if (kind == ScheduleKind::kLinear) {
    for (std::size_t t = 0; t < timesteps; ++t) {
      const float frac = timesteps == 1
                             ? 0.0f
                             : static_cast<float>(t) /
                                   static_cast<float>(timesteps - 1);
      betas_[t] = beta_start + (beta_end - beta_start) * frac;
    }
  } else {
    // Cosine schedule: alpha_bar(t) = cos^2((t/T + s)/(1 + s) * pi/2).
    const double s = 0.008;
    auto abar = [&](double t) {
      const double x = (t / static_cast<double>(timesteps) + s) / (1.0 + s) *
                       3.14159265358979323846 / 2.0;
      return std::cos(x) * std::cos(x);
    };
    const double abar0 = abar(0.0);
    double prev = 1.0;
    for (std::size_t t = 0; t < timesteps; ++t) {
      const double cur = abar(static_cast<double>(t) + 1.0) / abar0;
      const double beta = 1.0 - cur / prev;
      betas_[t] = static_cast<float>(std::clamp(beta, 1e-5, 0.999));
      prev = cur;
    }
  }
  alphas_.resize(timesteps);
  alpha_bars_.resize(timesteps);
  sqrt_alpha_bars_.resize(timesteps);
  sqrt_one_minus_alpha_bars_.resize(timesteps);
  posterior_variance_.resize(timesteps);
  double running = 1.0;
  for (std::size_t t = 0; t < timesteps; ++t) {
    alphas_[t] = 1.0f - betas_[t];
    running *= alphas_[t];
    alpha_bars_[t] = static_cast<float>(running);
    sqrt_alpha_bars_[t] = std::sqrt(alpha_bars_[t]);
    sqrt_one_minus_alpha_bars_[t] = std::sqrt(1.0f - alpha_bars_[t]);
    const float abar_prev = t == 0 ? 1.0f : alpha_bars_[t - 1];
    posterior_variance_[t] =
        betas_[t] * (1.0f - abar_prev) / (1.0f - alpha_bars_[t]);
  }
  // The forward process only ever removes signal: alpha_bar must decay
  // monotonically and stay positive, or q_sample/predict_x0 divide by 0.
  REPRO_ENSURE(alpha_bars_.front() <= 1.0f && alpha_bars_.back() > 0.0f &&
                   std::is_sorted(alpha_bars_.rbegin(), alpha_bars_.rend()),
               "NoiseSchedule: alpha_bar must decay monotonically in (0, 1]");
}

nn::Tensor NoiseSchedule::q_sample(const nn::Tensor& x0, std::size_t t,
                                   Rng& rng, nn::Tensor& noise) const {
  REPRO_REQUIRE(t < timesteps(), "q_sample: timestep out of range");
  noise = nn::Tensor(x0.shape());
  for (std::size_t i = 0; i < noise.size(); ++i) {
    noise[i] = static_cast<float>(rng.gaussian());
  }
  nn::Tensor xt = x0;
  const float sa = sqrt_alpha_bars_[t];
  const float sb = sqrt_one_minus_alpha_bars_[t];
  for (std::size_t i = 0; i < xt.size(); ++i) {
    xt[i] = sa * x0[i] + sb * noise[i];
  }
  return xt;
}

nn::Tensor NoiseSchedule::predict_x0(const nn::Tensor& xt,
                                     const nn::Tensor& eps,
                                     std::size_t t) const {
  xt.require_shape(eps.shape(), "predict_x0");
  REPRO_REQUIRE(t < timesteps(), "predict_x0: timestep out of range");
  nn::Tensor x0 = xt;
  const float sa = sqrt_alpha_bars_[t];
  const float sb = sqrt_one_minus_alpha_bars_[t];
  for (std::size_t i = 0; i < x0.size(); ++i) {
    x0[i] = (xt[i] - sb * eps[i]) / sa;
  }
  return x0;
}

}  // namespace repro::diffusion
