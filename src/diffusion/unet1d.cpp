#include "diffusion/unet1d.hpp"

#include <stdexcept>

#include "nn/lora.hpp"

namespace repro::diffusion {
namespace {

std::unique_ptr<nn::Module> make_proj(std::size_t channels, std::size_t rank,
                                      float alpha, Rng& rng,
                                      const std::string& name) {
  auto base = std::make_unique<nn::Linear>(channels, channels, rng, true, name);
  if (rank == 0) return base;
  return std::make_unique<nn::LoraLinear>(std::move(base), rank, alpha, rng,
                                          name + ".lora");
}

std::unique_ptr<nn::SelfAttention1d> make_attention(const UNetConfig& c,
                                                    Rng& rng) {
  const std::size_t ch = c.base_channels * 2;
  return std::make_unique<nn::SelfAttention1d>(
      ch, make_proj(ch, c.lora_rank, c.lora_alpha, rng, "unet.attn.q"),
      make_proj(ch, c.lora_rank, c.lora_alpha, rng, "unet.attn.k"),
      make_proj(ch, c.lora_rank, c.lora_alpha, rng, "unet.attn.v"),
      make_proj(ch, c.lora_rank, c.lora_alpha, rng, "unet.attn.o"),
      "unet.attn");
}

}  // namespace

UNet1d::UNet1d(const UNetConfig& config, Rng& rng)
    : config_(config),
      time_mlp1_(config.temb_dim, config.temb_dim, rng, true, "unet.time1"),
      time_mlp2_(config.temb_dim, config.temb_dim, rng, true, "unet.time2"),
      class_embedding_(config.num_classes + 1, config.temb_dim, rng,
                       "unet.class_embedding"),
      conv_in_(config.in_channels, config.base_channels, 3, rng, 1, SIZE_MAX,
               "unet.conv_in"),
      res_d1_(config.base_channels, config.base_channels, config.temb_dim,
              config.groups, rng, "unet.res_d1"),
      down1_(config.base_channels, config.base_channels * 2, 3, rng, 2,
             SIZE_MAX, "unet.down1"),
      res_d2_(config.base_channels * 2, config.base_channels * 2,
              config.temb_dim, config.groups, rng, "unet.res_d2"),
      down2_(config.base_channels * 2, config.base_channels * 2, 3, rng, 2,
             SIZE_MAX, "unet.down2"),
      res_m1_(config.base_channels * 2, config.base_channels * 2,
              config.temb_dim, config.groups, rng, "unet.res_m1"),
      attention_(make_attention(config, rng)),
      res_m2_(config.base_channels * 2, config.base_channels * 2,
              config.temb_dim, config.groups, rng, "unet.res_m2"),
      up_conv2_(config.base_channels * 2, config.base_channels * 2, 3, rng, 1,
                SIZE_MAX, "unet.up_conv2"),
      res_u2_(config.base_channels * 4, config.base_channels * 2,
              config.temb_dim, config.groups, rng, "unet.res_u2"),
      up_conv1_(config.base_channels * 2, config.base_channels, 3, rng, 1,
                SIZE_MAX, "unet.up_conv1"),
      res_u1_(config.base_channels * 2, config.base_channels, config.temb_dim,
              config.groups, rng, "unet.res_u1"),
      norm_out_(config.base_channels,
                std::min<std::size_t>(config.groups, config.base_channels),
                "unet.norm_out"),
      conv_out_(config.base_channels, config.in_channels, 3, rng, 1, SIZE_MAX,
                "unet.conv_out") {}

nn::Tensor UNet1d::embed(const std::vector<float>& timesteps,
                         const std::vector<int>& class_ids) {
  sin_emb_ = nn::sinusoidal_embedding(timesteps, config_.temb_dim);
  nn::Tensor temb =
      time_mlp2_.forward(time_act_.forward(time_mlp1_.forward(sin_emb_)));
  nn::Tensor ids({class_ids.size()});
  for (std::size_t i = 0; i < class_ids.size(); ++i) {
    ids[i] = static_cast<float>(class_ids[i]);
  }
  temb.add(class_embedding_.forward(ids));
  return temb;
}

void UNet1d::embed_backward(const nn::Tensor& grad_temb) {
  class_embedding_.backward(grad_temb);
  time_mlp1_.backward(
      time_act_.backward(time_mlp2_.backward(grad_temb)));
}

nn::Tensor UNet1d::forward(const nn::Tensor& x,
                           const std::vector<float>& timesteps,
                           const std::vector<int>& class_ids,
                           const ControlResiduals* control) {
  if (x.rank() != 3 || x.dim(1) != config_.in_channels) {
    throw std::invalid_argument("UNet1d::forward: bad input " +
                                x.shape_string());
  }
  if (x.dim(2) % 4 != 0) {
    throw std::invalid_argument("UNet1d::forward: L must be divisible by 4");
  }
  n_ = x.dim(0);
  l_ = x.dim(2);
  has_control_ = control != nullptr;

  temb_ = embed(timesteps, class_ids);

  nn::Tensor h = conv_in_.forward(x);
  nn::Tensor d1 = res_d1_.forward(h, temb_);
  nn::Tensor skip1 = d1;
  if (control) skip1.add(control->skip1);

  nn::Tensor d2 = res_d2_.forward(down1_.forward(d1), temb_);
  nn::Tensor skip2 = d2;
  if (control) skip2.add(control->skip2);

  nn::Tensor m = res_m1_.forward(down2_.forward(d2), temb_);
  m = attention_->forward(m);
  m = res_m2_.forward(m, temb_);
  if (control) m.add(control->mid);

  nn::Tensor u2 = up_conv2_.forward(upsample2x(m));
  nn::Tensor cat2 = concat_channels(u2, skip2);
  nn::Tensor r2 = res_u2_.forward(cat2, temb_);

  nn::Tensor u1 = up_conv1_.forward(upsample2x(r2));
  nn::Tensor cat1 = concat_channels(u1, skip1);
  nn::Tensor r1 = res_u1_.forward(cat1, temb_);

  return conv_out_.forward(act_out_.forward(norm_out_.forward(r1)));
}

nn::Tensor UNet1d::backward(const nn::Tensor& grad_eps,
                            ControlResiduals* grad_control) {
  nn::Tensor grad_temb({n_, config_.temb_dim});

  nn::Tensor g =
      norm_out_.backward(act_out_.backward(conv_out_.backward(grad_eps)));
  nn::Tensor gcat1 = res_u1_.backward(g, grad_temb);
  nn::Tensor gu1(nn::Tensor({n_, config_.base_channels, l_}));
  nn::Tensor gskip1(nn::Tensor({n_, config_.base_channels, l_}));
  split_channels(gcat1, config_.base_channels, gu1, gskip1);
  nn::Tensor gr2 = upsample2x_backward(up_conv1_.backward(gu1));

  nn::Tensor gcat2 = res_u2_.backward(gr2, grad_temb);
  const std::size_t c2 = config_.base_channels * 2;
  nn::Tensor gu2({n_, c2, l_ / 2});
  nn::Tensor gskip2({n_, c2, l_ / 2});
  split_channels(gcat2, c2, gu2, gskip2);
  nn::Tensor gm = upsample2x_backward(up_conv2_.backward(gu2));

  if (grad_control) grad_control->mid = gm;
  gm = res_m2_.backward(gm, grad_temb);
  gm = attention_->backward(gm);
  nn::Tensor gd2_in = res_m1_.backward(gm, grad_temb);
  nn::Tensor gd2 = down2_.backward(gd2_in);
  gd2.add(gskip2);  // skip2 fed both the decoder concat and down2's input
  if (grad_control) grad_control->skip2 = gskip2;

  nn::Tensor gd1_in = res_d2_.backward(gd2, grad_temb);
  nn::Tensor gd1 = down1_.backward(gd1_in);
  gd1.add(gskip1);
  if (grad_control) grad_control->skip1 = gskip1;

  nn::Tensor gh = res_d1_.backward(gd1, grad_temb);
  nn::Tensor gx = conv_in_.backward(gh);

  embed_backward(grad_temb);
  return gx;
}

std::vector<nn::Parameter*> UNet1d::parameters() {
  std::vector<nn::Parameter*> params;
  auto append = [&params](std::vector<nn::Parameter*> more) {
    params.insert(params.end(), more.begin(), more.end());
  };
  append(time_mlp1_.parameters());
  append(time_mlp2_.parameters());
  append(class_embedding_.parameters());
  append(conv_in_.parameters());
  append(res_d1_.parameters());
  append(down1_.parameters());
  append(res_d2_.parameters());
  append(down2_.parameters());
  append(res_m1_.parameters());
  append(attention_->parameters());
  append(res_m2_.parameters());
  append(up_conv2_.parameters());
  append(res_u2_.parameters());
  append(up_conv1_.parameters());
  append(res_u1_.parameters());
  append(norm_out_.parameters());
  append(conv_out_.parameters());
  return params;
}

std::vector<nn::Parameter*> UNet1d::lora_parameters() {
  std::vector<nn::Parameter*> params;
  for (nn::Parameter* p : attention_->parameters()) {
    // LoRA adapters carry ".A" / ".B" suffixes from LoraLinear.
    if (p->name.size() >= 2 &&
        (p->name.rfind(".A") == p->name.size() - 2 ||
         p->name.rfind(".B") == p->name.size() - 2)) {
      params.push_back(p);
    }
  }
  return params;
}

void UNet1d::freeze_base() noexcept {
  for (nn::Parameter* p : parameters()) p->trainable = false;
  for (nn::Parameter* p : lora_parameters()) p->trainable = true;
  // The class ("word") embedding table stays trainable: the paper's
  // add-on model extends coverage "by allowing the flexible addition of
  // new classes via word embeddings" (§3.1), so new class rows must be
  // learnable while the backbone is frozen.
  class_embedding_.table().trainable = true;
}

void UNet1d::unfreeze_all() noexcept {
  for (nn::Parameter* p : parameters()) p->trainable = true;
}

void UNet1d::zero_grad() {
  for (nn::Parameter* p : parameters()) p->zero_grad();
}

std::size_t UNet1d::parameter_count() {
  std::size_t n = 0;
  for (nn::Parameter* p : parameters()) n += p->value.size();
  return n;
}

nn::Tensor upsample2x(const nn::Tensor& x) {
  const std::size_t n = x.dim(0), c = x.dim(1), l = x.dim(2);
  nn::Tensor out({n, c, l * 2});
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* in_row = x.data() + (b * c + ch) * l;
      float* out_row = out.data() + (b * c + ch) * l * 2;
      for (std::size_t t = 0; t < l; ++t) {
        out_row[2 * t] = in_row[t];
        out_row[2 * t + 1] = in_row[t];
      }
    }
  }
  return out;
}

nn::Tensor upsample2x_backward(const nn::Tensor& grad) {
  const std::size_t n = grad.dim(0), c = grad.dim(1), l2 = grad.dim(2);
  const std::size_t l = l2 / 2;
  nn::Tensor out({n, c, l});
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* grow = grad.data() + (b * c + ch) * l2;
      float* orow = out.data() + (b * c + ch) * l;
      for (std::size_t t = 0; t < l; ++t) {
        orow[t] = grow[2 * t] + grow[2 * t + 1];
      }
    }
  }
  return out;
}

nn::Tensor concat_channels(const nn::Tensor& a, const nn::Tensor& b) {
  const std::size_t n = a.dim(0), ca = a.dim(1), cb = b.dim(1), l = a.dim(2);
  if (b.dim(0) != n || b.dim(2) != l) {
    throw std::invalid_argument("concat_channels: shape mismatch");
  }
  nn::Tensor out({n, ca + cb, l});
  for (std::size_t bt = 0; bt < n; ++bt) {
    for (std::size_t c = 0; c < ca; ++c) {
      const float* src = a.data() + (bt * ca + c) * l;
      float* dst = out.data() + (bt * (ca + cb) + c) * l;
      for (std::size_t t = 0; t < l; ++t) dst[t] = src[t];
    }
    for (std::size_t c = 0; c < cb; ++c) {
      const float* src = b.data() + (bt * cb + c) * l;
      float* dst = out.data() + (bt * (ca + cb) + ca + c) * l;
      for (std::size_t t = 0; t < l; ++t) dst[t] = src[t];
    }
  }
  return out;
}

template <class Fn>
void UNet1d::for_each_quantizable(Fn&& fn) {
  fn(time_mlp1_);
  fn(time_mlp2_);
  fn(conv_in_);
  fn(res_d1_);
  fn(down1_);
  fn(res_d2_);
  fn(down2_);
  fn(res_m1_);
  fn(*attention_);
  fn(res_m2_);
  fn(up_conv2_);
  fn(res_u2_);
  fn(up_conv1_);
  fn(res_u1_);
  fn(conv_out_);
}

void UNet1d::set_precision(nn::Precision p) {
  for_each_quantizable([p](auto& m) { m.set_precision(p); });
}

void UNet1d::refresh_quantized() {
  for_each_quantizable([](auto& m) { m.refresh_quantized(); });
}

void UNet1d::invalidate_quantized() {
  for_each_quantizable([](auto& m) { m.invalidate_quantized(); });
}

void split_channels(const nn::Tensor& grad, std::size_t ca, nn::Tensor& ga,
                    nn::Tensor& gb) {
  const std::size_t n = grad.dim(0), ctot = grad.dim(1), l = grad.dim(2);
  const std::size_t cb = ctot - ca;
  ga = nn::Tensor({n, ca, l});
  gb = nn::Tensor({n, cb, l});
  for (std::size_t bt = 0; bt < n; ++bt) {
    for (std::size_t c = 0; c < ca; ++c) {
      const float* src = grad.data() + (bt * ctot + c) * l;
      float* dst = ga.data() + (bt * ca + c) * l;
      for (std::size_t t = 0; t < l; ++t) dst[t] = src[t];
    }
    for (std::size_t c = 0; c < cb; ++c) {
      const float* src = grad.data() + (bt * ctot + ca + c) * l;
      float* dst = gb.data() + (bt * cb + c) * l;
      for (std::size_t t = 0; t < l; ++t) dst[t] = src[t];
    }
  }
}

}  // namespace repro::diffusion
