#include "diffusion/sampler.hpp"

#include <cmath>
#include <stdexcept>

#include "common/contracts.hpp"
#include "common/parallel/parallel_for.hpp"
#include "common/telemetry/trace.hpp"
#include "nn/arena.hpp"

namespace repro::diffusion {
namespace {

/// Where sampler noise comes from: either ONE shared stream consumed in
/// element order (the legacy path — bit-identical to the pre-refactor
/// per-element loops), or one stream PER SAMPLE, each consumed in that
/// sample's element order. The per-sample mode is what makes a sample's
/// bits independent of how requests were coalesced into a batch.
class NoiseSource {
 public:
  explicit NoiseSource(Rng& rng) : single_(&rng) {}
  NoiseSource(std::vector<Rng>& rngs, std::size_t stride)
      : multi_(&rngs), stride_(stride) {}

  /// Serially draws `count` standard normals (drawing stays serial so
  /// the stream order never depends on the thread count; the arithmetic
  /// that follows runs on the pool). The buffer comes from the scratch
  /// arena so repeated sampler steps reuse one allocation.
  nn::TensorArena::Handle draw(std::size_t count) {
    nn::TensorArena::Handle noise = nn::TensorArena::scratch().acquire(count);
    float* p = noise.data();
    if (single_ != nullptr) {
      for (std::size_t i = 0; i < count; ++i) {
        p[i] = static_cast<float>(single_->gaussian());
      }
    } else {
      REPRO_REQUIRE(stride_ > 0 && count == multi_->size() * stride_,
                    "NoiseSource: draw size must be samples * stride");
      for (std::size_t b = 0; b < multi_->size(); ++b) {
        Rng& rng = (*multi_)[b];
        for (std::size_t i = 0; i < stride_; ++i) {
          p[b * stride_ + i] = static_cast<float>(rng.gaussian());
        }
      }
    }
    return noise;
  }

 private:
  Rng* single_ = nullptr;
  std::vector<Rng>* multi_ = nullptr;
  std::size_t stride_ = 0;
};

std::size_t sample_stride(const std::vector<std::size_t>& shape) {
  std::size_t stride = 1;
  for (std::size_t i = 1; i < shape.size(); ++i) stride *= shape[i];
  return stride;
}

nn::Tensor gaussian_tensor(const std::vector<std::size_t>& shape,
                           NoiseSource& noise) {
  nn::Tensor x(shape);
  nn::TensorArena::Handle buf = noise.draw(x.size());
  std::copy(buf.data(), buf.data() + x.size(), x.data());
  return x;
}

constexpr std::size_t kStepGrain = 4096;  // elementwise ops per chunk

/// One DDPM ancestral update from timestep `t`.
void ddpm_step(nn::Tensor& x, const nn::Tensor& eps,
               const NoiseSchedule& schedule, std::size_t t,
               NoiseSource& source) {
  REPRO_REQUIRE(eps.size() == x.size(),
                "ddpm_step: eps_fn returned a tensor of the wrong size");
  const float beta = schedule.beta(t);
  const float alpha = schedule.alpha(t);
  const float coef = beta / schedule.sqrt_one_minus_alpha_bar(t);
  const float inv_sqrt_alpha = 1.0f / std::sqrt(alpha);
  const float sigma = std::sqrt(schedule.posterior_variance(t));
  nn::TensorArena::Handle noise;
  if (t > 0) noise = source.draw(x.size());
  const float* np = noise.data();
  parallel::parallel_for(
      0, x.size(), kStepGrain, [&](std::size_t cb, std::size_t ce) {
        for (std::size_t i = cb; i < ce; ++i) {
          float mean = inv_sqrt_alpha * (x[i] - coef * eps[i]);
          if (t > 0) {
            mean += sigma * np[i];
          }
          x[i] = mean;
        }
      });
}

/// Decreasing timestep subsequence from `t0` to 0 with `steps` entries.
std::vector<std::size_t> ddim_taus(std::size_t t0, std::size_t steps) {
  std::vector<std::size_t> taus(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    taus[i] = t0 * (steps - 1 - i) / std::max<std::size_t>(steps - 1, 1);
  }
  if (steps == 1) taus[0] = t0;
  REPRO_ENSURE(taus.front() == t0 && (steps == 1 || taus.back() == 0),
               "ddim_taus: subsequence must start at t0 and end at 0");
  return taus;
}

/// One DDIM update from abar_t to abar_prev.
void ddim_step(nn::Tensor& x, const nn::Tensor& eps, float abar_t,
               float abar_prev, float eta, bool last, NoiseSource& source) {
  REPRO_REQUIRE(eps.size() == x.size(),
                "ddim_step: eps_fn returned a tensor of the wrong size");
  REPRO_REQUIRE(abar_t > 0.0f && abar_prev >= abar_t,
                "ddim_step: alpha_bar must be positive and non-increasing in t");
  const float sqrt_abar_t = std::sqrt(abar_t);
  const float sqrt_1m_t = std::sqrt(1.0f - abar_t);
  // sigma_t per Song et al. eq. 16.
  const float sigma = eta *
                      std::sqrt((1.0f - abar_prev) / (1.0f - abar_t)) *
                      std::sqrt(1.0f - abar_t / abar_prev);
  const float dir_coef =
      std::sqrt(std::max(1.0f - abar_prev - sigma * sigma, 0.0f));
  const float sqrt_abar_prev = std::sqrt(abar_prev);
  const bool noisy = !last && sigma > 0.0f;
  nn::TensorArena::Handle noise;
  if (noisy) noise = source.draw(x.size());
  const float* np = noise.data();
  parallel::parallel_for(
      0, x.size(), kStepGrain, [&](std::size_t cb, std::size_t ce) {
        for (std::size_t j = cb; j < ce; ++j) {
          const float x0 = (x[j] - sqrt_1m_t * eps[j]) / sqrt_abar_t;
          float next = sqrt_abar_prev * x0 + dir_coef * eps[j];
          if (noisy) {
            next += sigma * np[j];
          }
          x[j] = next;
        }
      });
}

nn::Tensor ddpm_sample_from_source(const EpsFn& eps_fn,
                                   const NoiseSchedule& schedule,
                                   nn::Tensor x_t0, std::size_t t0,
                                   NoiseSource& source) {
  if (t0 >= schedule.timesteps()) {
    throw std::invalid_argument("ddpm_sample_from: t0 out of range");
  }
  for (std::size_t step = t0 + 1; step-- > 0;) {
    REPRO_SPAN("diffusion.sample.ddpm_step");
    const nn::Tensor eps = eps_fn(x_t0, step);
    ddpm_step(x_t0, eps, schedule, step, source);
  }
  return x_t0;
}

nn::Tensor ddim_sample_from_source(const EpsFn& eps_fn,
                                   const NoiseSchedule& schedule,
                                   nn::Tensor x_t0, std::size_t t0,
                                   std::size_t steps, float eta,
                                   NoiseSource& source) {
  if (t0 >= schedule.timesteps()) {
    throw std::invalid_argument("ddim_sample_from: t0 out of range");
  }
  if (steps == 0 || steps > t0 + 1) {
    throw std::invalid_argument("ddim_sample_from: bad step count");
  }
  const std::vector<std::size_t> taus = ddim_taus(t0, steps);
  for (std::size_t i = 0; i < steps; ++i) {
    REPRO_SPAN("diffusion.sample.ddim_step");
    const std::size_t t = taus[i];
    const bool last = i + 1 == steps;
    const float abar_t = schedule.alpha_bar(t);
    const float abar_prev = last ? 1.0f : schedule.alpha_bar(taus[i + 1]);
    const nn::Tensor eps = eps_fn(x_t0, t);
    ddim_step(x_t0, eps, abar_t, abar_prev, eta, last, source);
  }
  return x_t0;
}

void check_multi_rngs(const std::vector<Rng>& rngs, std::size_t samples,
                      const char* what) {
  if (rngs.size() != samples) {
    throw std::invalid_argument(std::string(what) +
                                ": need one Rng stream per sample");
  }
}

}  // namespace

std::vector<std::size_t> ddim_tau_schedule(std::size_t t0, std::size_t steps) {
  return ddim_taus(t0, steps);
}

nn::Tensor ddpm_sample_from(const EpsFn& eps_fn, const NoiseSchedule& schedule,
                            nn::Tensor x_t0, std::size_t t0, Rng& rng) {
  NoiseSource source(rng);
  return ddpm_sample_from_source(eps_fn, schedule, std::move(x_t0), t0,
                                 source);
}

nn::Tensor ddpm_sample_from(const EpsFn& eps_fn, const NoiseSchedule& schedule,
                            nn::Tensor x_t0, std::size_t t0,
                            std::vector<Rng>& rngs) {
  check_multi_rngs(rngs, x_t0.dim(0), "ddpm_sample_from");
  NoiseSource source(rngs, sample_stride(x_t0.shape()));
  return ddpm_sample_from_source(eps_fn, schedule, std::move(x_t0), t0,
                                 source);
}

nn::Tensor ddpm_sample(const EpsFn& eps_fn, const NoiseSchedule& schedule,
                       const std::vector<std::size_t>& shape, Rng& rng) {
  NoiseSource source(rng);
  return ddpm_sample_from_source(eps_fn, schedule,
                                 gaussian_tensor(shape, source),
                                 schedule.timesteps() - 1, source);
}

nn::Tensor ddpm_sample(const EpsFn& eps_fn, const NoiseSchedule& schedule,
                       const std::vector<std::size_t>& shape,
                       std::vector<Rng>& rngs) {
  check_multi_rngs(rngs, shape.at(0), "ddpm_sample");
  NoiseSource source(rngs, sample_stride(shape));
  return ddpm_sample_from_source(eps_fn, schedule,
                                 gaussian_tensor(shape, source),
                                 schedule.timesteps() - 1, source);
}

nn::Tensor ddim_sample_from(const EpsFn& eps_fn, const NoiseSchedule& schedule,
                            nn::Tensor x_t0, std::size_t t0,
                            std::size_t steps, float eta, Rng& rng) {
  NoiseSource source(rng);
  return ddim_sample_from_source(eps_fn, schedule, std::move(x_t0), t0, steps,
                                 eta, source);
}

nn::Tensor ddim_sample_from(const EpsFn& eps_fn, const NoiseSchedule& schedule,
                            nn::Tensor x_t0, std::size_t t0,
                            std::size_t steps, float eta,
                            std::vector<Rng>& rngs) {
  check_multi_rngs(rngs, x_t0.dim(0), "ddim_sample_from");
  NoiseSource source(rngs, sample_stride(x_t0.shape()));
  return ddim_sample_from_source(eps_fn, schedule, std::move(x_t0), t0, steps,
                                 eta, source);
}

nn::Tensor ddim_sample(const EpsFn& eps_fn, const NoiseSchedule& schedule,
                       const std::vector<std::size_t>& shape,
                       std::size_t steps, float eta, Rng& rng) {
  if (steps == 0 || steps > schedule.timesteps()) {
    throw std::invalid_argument("ddim_sample: bad step count");
  }
  NoiseSource source(rng);
  return ddim_sample_from_source(eps_fn, schedule,
                                 gaussian_tensor(shape, source),
                                 schedule.timesteps() - 1, steps, eta, source);
}

nn::Tensor ddim_sample(const EpsFn& eps_fn, const NoiseSchedule& schedule,
                       const std::vector<std::size_t>& shape,
                       std::size_t steps, float eta, std::vector<Rng>& rngs) {
  if (steps == 0 || steps > schedule.timesteps()) {
    throw std::invalid_argument("ddim_sample: bad step count");
  }
  check_multi_rngs(rngs, shape.at(0), "ddim_sample");
  NoiseSource source(rngs, sample_stride(shape));
  return ddim_sample_from_source(eps_fn, schedule,
                                 gaussian_tensor(shape, source),
                                 schedule.timesteps() - 1, steps, eta, source);
}

nn::Tensor ddim_inpaint(const EpsFn& eps_fn, const NoiseSchedule& schedule,
                        const nn::Tensor& known_x0,
                        const std::vector<std::uint8_t>& known_mask,
                        std::size_t steps, float eta, Rng& rng) {
  if (known_mask.size() != known_x0.size()) {
    throw std::invalid_argument("ddim_inpaint: mask size mismatch");
  }
  const std::size_t t0 = schedule.timesteps() - 1;
  if (steps == 0 || steps > schedule.timesteps()) {
    throw std::invalid_argument("ddim_inpaint: bad step count");
  }
  auto clamp_known = [&](nn::Tensor& x, std::size_t t, bool final) {
    const float sa = schedule.sqrt_alpha_bar(t);
    const float sb = schedule.sqrt_one_minus_alpha_bar(t);
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (!known_mask[i]) continue;
      x[i] = final ? known_x0[i]
                   : sa * known_x0[i] +
                         sb * static_cast<float>(rng.gaussian());
    }
  };

  NoiseSource source(rng);
  nn::Tensor x = gaussian_tensor(known_x0.shape(), source);
  clamp_known(x, t0, /*final=*/false);
  const std::vector<std::size_t> taus = ddim_taus(t0, steps);
  for (std::size_t i = 0; i < steps; ++i) {
    REPRO_SPAN("diffusion.sample.ddim_step");
    const std::size_t t = taus[i];
    const bool last = i + 1 == steps;
    const float abar_t = schedule.alpha_bar(t);
    const float abar_prev = last ? 1.0f : schedule.alpha_bar(taus[i + 1]);
    const nn::Tensor eps = eps_fn(x, t);
    ddim_step(x, eps, abar_t, abar_prev, eta, last, source);
    if (last) {
      clamp_known(x, 0, /*final=*/true);
    } else {
      clamp_known(x, taus[i + 1], /*final=*/false);
    }
  }
  return x;
}

}  // namespace repro::diffusion
