#include "diffusion/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include <fstream>

#include "common/bytes.hpp"
#include "common/logging.hpp"
#include "common/parallel/parallel_for.hpp"
#include "common/stats.hpp"
#include "common/telemetry/trace.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/serialize.hpp"
#include "nprint/codec.hpp"

namespace repro::diffusion {
namespace {

/// Tiles a [1, C, L] hint to [N, C, L].
nn::Tensor tile_hint(const nn::Tensor& hint, std::size_t n) {
  const std::size_t c = hint.dim(1), l = hint.dim(2);
  nn::Tensor out({n, c, l});
  for (std::size_t b = 0; b < n; ++b) {
    std::copy(hint.data(), hint.data() + c * l, out.data() + b * c * l);
  }
  return out;
}

/// Stacks a [N, ...] residual tensor with itself into `out` ([2N, ...]),
/// reusing out's storage across sampler steps.
void tile_residual(const nn::Tensor& r, nn::Tensor& out) {
  std::vector<std::size_t> shape = r.shape();
  shape[0] *= 2;
  if (out.shape() != shape) out = nn::Tensor(shape);
  std::copy(r.data(), r.data() + r.size(), out.data());
  std::copy(r.data(), r.data() + r.size(), out.data() + r.size());
}

}  // namespace

std::uint64_t fork_flow_seed(std::uint64_t seed,
                             std::size_t flow_index) noexcept {
  // splitmix64 finalizer over (seed, index): nearby indices give
  // unrelated streams, and index 0 does not collapse to the raw seed.
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL *
                               (static_cast<std::uint64_t>(flow_index) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

TraceDiffusion::TraceDiffusion(PipelineConfig config,
                               std::vector<std::string> class_names)
    : config_(std::move(config)),
      prompts_(std::move(class_names)),
      rng_(config_.seed),
      schedule_(config_.timesteps, config_.schedule) {
  if (config_.packets % 4 != 0) {
    throw std::invalid_argument("TraceDiffusion: packets must be divisible by 4");
  }
  config_.unet.in_channels = config_.autoencoder.latent_dim;
  config_.unet.num_classes = prompts_.num_classes();
  config_.unet.hint_channels = kHintChannels + config_.autoencoder.latent_dim;
  autoencoder_ = std::make_unique<PacketAutoencoder>(config_.autoencoder, rng_);
  unet_ = std::make_unique<UNet1d>(config_.unet, rng_);
  control_ = std::make_unique<ControlNetBranch>(config_.unet, rng_);
}

void TraceDiffusion::fit_timing(const flowgen::Dataset& data) {
  std::map<int, std::vector<double>> log_gaps;
  for (const auto& flow : data.flows) {
    if (flow.label < 0) continue;
    auto& gaps = log_gaps[flow.label];
    for (std::size_t i = 1;
         i < flow.packets.size() && gaps.size() < 4000; ++i) {
      const double gap =
          flow.packets[i].timestamp - flow.packets[i - 1].timestamp;
      if (gap > 1e-7) gaps.push_back(std::log(gap));
    }
  }
  for (auto& [cls, gaps] : log_gaps) {
    if (gaps.size() < 2) continue;
    TimingModel model;
    model.log_mu = static_cast<float>(mean(gaps));
    model.log_sigma =
        std::max(0.01f, static_cast<float>(stddev(gaps)));
    timing_[cls] = model;
  }
}

const TraceDiffusion::TimingModel& TraceDiffusion::class_timing(
    int class_id) const {
  static const TimingModel kDefault{};
  const auto it = timing_.find(class_id);
  return it == timing_.end() ? kDefault : it->second;
}

void TraceDiffusion::assign_timestamps(net::Flow& flow, int class_id,
                                       Rng& rng) {
  const TimingModel& model = class_timing(class_id);
  double t = 0.0;
  for (auto& pkt : flow.packets) {
    pkt.timestamp = t;
    const double gap =
        std::min(rng.log_normal(model.log_mu, model.log_sigma), 10.0);
    t += gap;
  }
}

const nn::Tensor& TraceDiffusion::class_hint(int class_id) {
  auto it = hints_.find(class_id);
  if (it != hints_.end()) return it->second;
  const std::size_t c_lat = config_.autoencoder.latent_dim;
  const std::size_t l = config_.packets;
  nn::Tensor hint({1, kHintChannels + c_lat, l});
  const net::Flow& tmpl = template_flows_.count(class_id)
                              ? template_flows_.at(class_id)
                              : net::Flow{};
  const nn::Tensor proto = protocol_hint(tmpl, l);
  std::copy(proto.data(), proto.data() + kHintChannels * l, hint.data());
  nn::Tensor latent = autoencoder_->encode_matrix(
      nprint::encode_flow(tmpl, l, /*pad_to_max=*/true));
  latent.scale(latent_scale_);
  std::copy(latent.data(), latent.data() + c_lat * l,
            hint.data() + kHintChannels * l);
  return hints_.emplace(class_id, std::move(hint)).first->second;
}

std::vector<TraceDiffusion::Encoded> TraceDiffusion::encode_dataset(
    const flowgen::Dataset& data) {
  REPRO_SPAN("diffusion.encode_dataset");
  std::vector<Encoded> encoded;
  encoded.reserve(data.flows.size());
  for (const auto& flow : data.flows) {
    const nprint::Matrix matrix =
        nprint::encode_flow(flow, config_.packets, /*pad_to_max=*/true);
    Encoded e;
    e.latent = autoencoder_->encode_matrix(matrix);
    e.latent.scale(latent_scale_);
    e.label = flow.label;
    encoded.push_back(std::move(e));
  }
  return encoded;
}

FitStats TraceDiffusion::fit(const flowgen::Dataset& real) {
  if (real.flows.empty()) {
    throw std::invalid_argument("TraceDiffusion::fit: empty dataset");
  }
  REPRO_SPAN("diffusion.fit");
  telemetry::count("diffusion.fit.flows", real.flows.size());
  FitStats stats;
  stats.flows_used = real.flows.size();
  stats.unet_parameters = unet_->parameter_count();

  // --- Capture one-shot control templates (first flow of each class)
  // and fit per-class timing models. ---
  for (const auto& flow : real.flows) {
    if (flow.label >= 0 && !template_flows_.count(flow.label)) {
      template_flows_[flow.label] = flow;
      templates_[flow.label] =
          ProtocolTemplate::from_flow(flow, config_.packets);
    }
  }
  fit_timing(real);

  // --- Phase A: packet autoencoder. ---
  {
    REPRO_SPAN("diffusion.fit.autoencoder");
    // Gather training rows (active packet rows only; padding rows are
    // trivially all -1 and would dominate the loss).
    std::vector<const net::Flow*> flows;
    for (const auto& flow : real.flows) flows.push_back(&flow);
    std::vector<std::vector<float>> rows;
    for (const net::Flow* flow : flows) {
      const std::size_t take =
          std::min(flow->packets.size(), config_.packets);
      for (std::size_t i = 0; i < take; ++i) {
        rows.push_back(nprint::encode_packet(flow->packets[i]));
      }
    }
    // A slice of vacant rows keeps the AE able to represent padding.
    const std::size_t vacant_rows = rows.size() / 16 + 1;
    for (std::size_t i = 0; i < vacant_rows; ++i) {
      rows.emplace_back(nprint::kBitsPerPacket, -1.0f);
    }
    if (rows.size() > config_.ae_max_rows) {
      const auto perm = rng_.permutation(rows.size());
      std::vector<std::vector<float>> subset;
      subset.reserve(config_.ae_max_rows);
      for (std::size_t i = 0; i < config_.ae_max_rows; ++i) {
        subset.push_back(std::move(rows[perm[i]]));
      }
      rows = std::move(subset);
    }
    nn::Tensor row_tensor({rows.size(), nprint::kBitsPerPacket});
    for (std::size_t i = 0; i < rows.size(); ++i) {
      std::copy(rows[i].begin(), rows[i].end(),
                row_tensor.data() + i * nprint::kBitsPerPacket);
    }
    stats.ae_final_loss = autoencoder_->train(
        row_tensor, config_.ae_epochs, config_.ae_batch, config_.ae_lr, rng_);
    REPRO_LOG_DEBUG() << "autoencoder loss " << stats.ae_final_loss;
  }

  // --- Latent statistics: scale latents to ~unit variance. ---
  latent_scale_ = 1.0f;
  {
    std::vector<Encoded> probe = encode_dataset(real);
    double sq = 0.0;
    std::size_t count = 0;
    for (const auto& e : probe) {
      for (std::size_t i = 0; i < e.latent.size(); ++i) {
        sq += static_cast<double>(e.latent[i]) * e.latent[i];
      }
      count += e.latent.size();
    }
    const double std_dev = std::sqrt(
        sq / static_cast<double>(std::max<std::size_t>(count, 1)));
    latent_scale_ = std_dev > 1e-6 ? static_cast<float>(1.0 / std_dev) : 1.0f;
  }
  hints_.clear();  // control hints embed scaled latents; rebuild lazily

  // --- Phase B: conditional latent diffusion. ---
  std::vector<Encoded> encoded = encode_dataset(real);
  unet_->unfreeze_all();
  {
    REPRO_SPAN("diffusion.fit.unet");
    stats.diffusion_final_loss = train_diffusion_epochs(
        encoded, config_.diffusion_epochs, config_.diffusion_lr,
        unet_->parameters(), /*with_control_hints=*/false);
  }

  // --- Phase C: ControlNet branch (base frozen). ---
  if (config_.train_control) {
    REPRO_SPAN("diffusion.fit.controlnet");
    for (nn::Parameter* p : unet_->parameters()) p->trainable = false;
    stats.control_final_loss = train_diffusion_epochs(
        encoded, config_.control_epochs, config_.control_lr,
        control_->parameters(), /*with_control_hints=*/true);
    unet_->unfreeze_all();
  }

  // The weights changed: any recorded int8 calibration and any fitted
  // distilled stages describe the old model.
  unet_->invalidate_quantized();
  control_->invalidate_quantized();
  distilled_.clear();

  fitted_ = true;
  return stats;
}

float TraceDiffusion::train_diffusion_epochs(
    const std::vector<Encoded>& data, std::size_t epochs, float lr,
    const std::vector<nn::Parameter*>& params, bool with_control_hints) {
  nn::Adam::Config acfg;
  acfg.lr = lr;
  nn::Adam optimizer(params, acfg);
  const std::size_t c = config_.autoencoder.latent_dim;
  const std::size_t l = config_.packets;
  const std::size_t batch_size = std::max<std::size_t>(config_.diffusion_batch, 1);
  float last_loss = 0.0f;
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    const auto perm = rng_.permutation(data.size());
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < data.size(); start += batch_size) {
      const std::size_t count = std::min(batch_size, data.size() - start);
      nn::Tensor x0({count, c, l});
      std::vector<int> class_ids(count);
      std::vector<float> timesteps(count);
      nn::Tensor noise({count, c, l});
      nn::Tensor xt({count, c, l});
      const std::size_t hc = config_.unet.hint_channels;
      nn::Tensor hint({count, hc, l});
      for (std::size_t i = 0; i < count; ++i) {
        const Encoded& e = data[perm[start + i]];
        std::copy(e.latent.data(), e.latent.data() + c * l,
                  x0.data() + i * c * l);
        int cls = e.label;
        if (!with_control_hints && rng_.uniform() < config_.cfg_dropout) {
          cls = prompts_.null_id();  // CFG: train the unconditional branch
        }
        class_ids[i] = cls;
        const auto t = static_cast<std::size_t>(
            rng_.uniform_u64(schedule_.timesteps()));
        timesteps[i] = static_cast<float>(t);
        const float sa = schedule_.sqrt_alpha_bar(t);
        const float sb = schedule_.sqrt_one_minus_alpha_bar(t);
        for (std::size_t j = 0; j < c * l; ++j) {
          const float eps = static_cast<float>(rng_.gaussian());
          noise[i * c * l + j] = eps;
          xt[i * c * l + j] = sa * x0[i * c * l + j] + sb * eps;
        }
        if (with_control_hints) {
          const nn::Tensor& h = class_hint(e.label);
          std::copy(h.data(), h.data() + hc * l, hint.data() + i * hc * l);
        }
      }

      unet_->zero_grad();
      nn::Tensor pred;
      ControlResiduals residuals;
      if (with_control_hints) {
        control_->zero_grad();
        residuals = control_->forward(xt, timesteps, class_ids, hint);
        pred = unet_->forward(xt, timesteps, class_ids, &residuals);
      } else {
        pred = unet_->forward(xt, timesteps, class_ids);
      }
      nn::Tensor target;
      if (config_.parameterization ==
          PipelineConfig::Parameterization::kX0) {
        // EDM-style skip: the network learns F = x0 - sqrt(abar_t) x_t.
        target = x0;
        for (std::size_t i = 0; i < count; ++i) {
          const float sa = schedule_.sqrt_alpha_bar(
              static_cast<std::size_t>(timesteps[i]));
          for (std::size_t j = 0; j < c * l; ++j) {
            target[i * c * l + j] -= sa * xt[i * c * l + j];
          }
        }
      } else {
        target = noise;
      }
      nn::Tensor grad;
      const float loss = nn::mse_loss(pred, target, grad);
      if (with_control_hints) {
        ControlResiduals grad_res;
        unet_->backward(grad, &grad_res);
        control_->backward(grad_res);
      } else {
        unet_->backward(grad);
      }
      nn::clip_grad_norm(params, config_.grad_clip);
      optimizer.step();
      epoch_loss += loss;
      ++batches;
    }
    last_loss = static_cast<float>(
        epoch_loss / static_cast<double>(std::max<std::size_t>(batches, 1)));
    telemetry::count("diffusion.train.epochs");
    telemetry::count("diffusion.train.batches", batches);
    telemetry::observe("diffusion.train.epoch_loss", last_loss);
    REPRO_LOG_DEBUG() << (with_control_hints ? "control" : "diffusion")
                      << " epoch " << epoch << " loss " << last_loss;
  }
  return last_loss;
}

float TraceDiffusion::fit_lora(const flowgen::Dataset& data,
                               std::size_t epochs) {
  if (!fitted_) {
    throw std::logic_error("TraceDiffusion::fit_lora: call fit() first");
  }
  if (config_.unet.lora_rank == 0) {
    throw std::logic_error("TraceDiffusion::fit_lora: lora_rank is 0");
  }
  // Register templates for classes first seen during fine-tuning (class
  // extension adds new classes whose one-shot controls come from the
  // fine-tuning data).
  for (const auto& flow : data.flows) {
    if (flow.label >= 0 && !template_flows_.count(flow.label)) {
      template_flows_[flow.label] = flow;
      templates_[flow.label] =
          ProtocolTemplate::from_flow(flow, config_.packets);
    }
  }
  fit_timing(data);
  REPRO_SPAN("diffusion.fit_lora");
  std::vector<Encoded> encoded = encode_dataset(data);
  unet_->freeze_base();
  std::vector<nn::Parameter*> params = unet_->lora_parameters();
  params.push_back(&unet_->class_embedding_table());
  const float loss = train_diffusion_epochs(
      encoded, epochs, config_.diffusion_lr, params,
      /*with_control_hints=*/false);
  unet_->unfreeze_all();
  // Adapter weights changed the effective model; stale int8 scales and
  // distilled stages must not survive.
  unet_->invalidate_quantized();
  control_->invalidate_quantized();
  distilled_.clear();
  return loss;
}

namespace {

/// Rescales each sample of a [N, C, L] batch to the target standard
/// deviation (about its own mean).
void renormalize_batch(nn::Tensor& x, float target_std) {
  const std::size_t n = x.dim(0);
  const std::size_t stride = x.size() / n;
  parallel::parallel_for(
      0, n, parallel::grain_for(stride), [&](std::size_t bb, std::size_t be) {
        for (std::size_t b = bb; b < be; ++b) {
          float* s = x.data() + b * stride;
          double sum = 0.0, sq = 0.0;
          for (std::size_t i = 0; i < stride; ++i) {
            sum += s[i];
            sq += static_cast<double>(s[i]) * s[i];
          }
          const double mean = sum / static_cast<double>(stride);
          const double var = sq / static_cast<double>(stride) - mean * mean;
          if (var <= 1e-12) continue;
          const float scale = target_std / static_cast<float>(std::sqrt(var));
          for (std::size_t i = 0; i < stride; ++i) {
            s[i] = static_cast<float>(mean) +
                   scale * (s[i] - static_cast<float>(mean));
          }
        }
      });
}

/// Applies the requested inference precision to the denoiser stack for
/// the duration of one sampling call and restores the bit-exact fp32
/// route on exit (exceptions included), so the precision knob never
/// leaks into training or a later fp32 request.
class PrecisionScope {
 public:
  PrecisionScope(nn::Precision p, UNet1d& unet, ControlNetBranch& control)
      : unet_(unet), control_(control) {
    unet_.set_precision(p);
    control_.set_precision(p);
  }
  ~PrecisionScope() {
    unet_.set_precision(nn::Precision::kFp32);
    control_.set_precision(nn::Precision::kFp32);
  }
  PrecisionScope(const PrecisionScope&) = delete;
  PrecisionScope& operator=(const PrecisionScope&) = delete;

 private:
  UNet1d& unet_;
  ControlNetBranch& control_;
};

/// Standard deviation of one tensor (about its mean).
float tensor_std(const nn::Tensor& x) {
  double sum = 0.0, sq = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sum += x[i];
    sq += static_cast<double>(x[i]) * x[i];
  }
  const double mean = sum / static_cast<double>(x.size());
  return static_cast<float>(
      std::sqrt(std::max(sq / static_cast<double>(x.size()) - mean * mean,
                         0.0)));
}

}  // namespace

EpsFn TraceDiffusion::guided_eps_fn(int class_id, std::size_t count,
                                    const GenerateOptions& opts) {
  // Shared closure state: id/timestep vectors built once, plus step
  // scratch (stacked CFG input, tiled residuals) reused across steps.
  struct State {
    std::vector<int> cond_ids, uncond_ids, both_ids;
    std::vector<float> ts_n, ts_2n;
    nn::Tensor hint;         // [N, hc, L] tiled control hint
    bool control = false;
    float guidance = 1.0f;
    nn::Tensor xx;           // [2N, C, L] stacked cond|uncond input
    ControlResiduals tiled;  // [2N] residuals (both halves identical)
  };
  auto st = std::make_shared<State>();
  st->cond_ids.assign(count, class_id);
  st->uncond_ids.assign(count, prompts_.null_id());
  st->both_ids = st->cond_ids;
  st->both_ids.insert(st->both_ids.end(), st->uncond_ids.begin(),
                      st->uncond_ids.end());
  st->ts_n.assign(count, 0.0f);
  st->ts_2n.assign(2 * count, 0.0f);
  st->control = opts.use_control && template_flows_.count(class_id) != 0;
  if (st->control) st->hint = tile_hint(class_hint(class_id), count);
  st->guidance = opts.guidance_scale;

  return [this, st](const nn::Tensor& x, std::size_t t) {
    REPRO_SPAN("diffusion.sample.eps_eval");
    telemetry::count("diffusion.sample.eps_evals");
    for (float& v : st->ts_n) v = static_cast<float>(t);
    // Control residuals are computed once on the cond ids and shared by
    // both guidance branches, exactly as the unbatched path did.
    ControlResiduals residuals;
    const ControlResiduals* res_ptr = nullptr;
    if (st->control) {
      residuals = control_->forward(x, st->ts_n, st->cond_ids, st->hint);
      res_ptr = &residuals;
    }
    nn::Tensor out;
    if (st->guidance == 1.0f) {
      out = unet_->forward(x, st->ts_n, st->cond_ids, res_ptr);
    } else {
      // Batched classifier-free guidance: ONE [2N] forward over the
      // stacked cond|uncond rows, then out = uncond + g (cond - uncond).
      std::vector<std::size_t> xx_shape = x.shape();
      xx_shape[0] *= 2;
      if (st->xx.shape() != xx_shape) st->xx = nn::Tensor(xx_shape);
      std::copy(x.data(), x.data() + x.size(), st->xx.data());
      std::copy(x.data(), x.data() + x.size(), st->xx.data() + x.size());
      for (float& v : st->ts_2n) v = static_cast<float>(t);
      const ControlResiduals* both_res = nullptr;
      if (st->control) {
        tile_residual(residuals.skip1, st->tiled.skip1);
        tile_residual(residuals.skip2, st->tiled.skip2);
        tile_residual(residuals.mid, st->tiled.mid);
        both_res = &st->tiled;
      }
      nn::Tensor both =
          unet_->forward(st->xx, st->ts_2n, st->both_ids, both_res);
      out = nn::Tensor(x.shape());
      const float g = st->guidance;
      const float* cond = both.data();
      const float* uncond = both.data() + x.size();
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = uncond[i] + g * (cond[i] - uncond[i]);
      }
    }
    if (config_.parameterization == PipelineConfig::Parameterization::kX0) {
      // x0_pred = sa * x_t + F(x_t) (skip), then convert for the
      // eps-consuming samplers: eps = (x_t - sa * x0_pred) / sb.
      const float sa = schedule_.sqrt_alpha_bar(t);
      const float sb = schedule_.sqrt_one_minus_alpha_bar(t);
      for (std::size_t i = 0; i < out.size(); ++i) {
        const float x0_pred = sa * x[i] + out[i];
        out[i] = (x[i] - sa * x0_pred) / sb;
      }
    }
    return out;
  };
}

nn::Tensor TraceDiffusion::sample_latents(int class_id, std::size_t count,
                                          const GenerateOptions& opts) {
  REPRO_SPAN("diffusion.sample.latents");
  const std::size_t c = config_.autoencoder.latent_dim;
  const std::size_t l = config_.packets;
  const bool control = opts.use_control && template_flows_.count(class_id);
  const PrecisionScope precision(opts.precision, *unet_, *control_);
  EpsFn eps_fn = guided_eps_fn(class_id, count, opts);

  const std::vector<std::size_t> shape{count, c, l};
  const bool from_template =
      control && opts.template_strength < 1.0f && opts.template_strength > 0.0f;
  const std::size_t t0 = start_timestep(class_id, opts);
  nn::Tensor out;
  float target_std = 1.0f;  // training latents are scaled to unit std
  if (!from_template) {
    if (opts.sampler == SamplerKind::kDistilled) {
      const DistilledStage& stage =
          find_distilled(class_id, t0, opts.ddim_steps);
      nn::Tensor xt(shape);
      for (std::size_t i = 0; i < xt.size(); ++i) {
        xt[i] = static_cast<float>(rng_.gaussian());
      }
      out = distilled_sample_from(eps_fn, schedule_, std::move(xt), stage);
    } else {
      out = opts.sampler == SamplerKind::kDdpm
                ? ddpm_sample(eps_fn, schedule_, shape, rng_)
                : ddim_sample(eps_fn, schedule_, shape, opts.ddim_steps,
                              opts.eta, rng_);
    }
  } else {
    // SDEdit-style start: noise the class template latent to t0 and
    // denoise from there.
    const nn::Tensor& hint_full = class_hint(class_id);
    nn::Tensor x0({count, c, l});
    for (std::size_t b = 0; b < count; ++b) {
      // The template latent occupies the hint channels after the
      // protocol one-hot block.
      std::copy(hint_full.data() + kHintChannels * l,
                hint_full.data() + (kHintChannels + c) * l,
                x0.data() + b * c * l);
    }
    {
      nn::Tensor one({c, l});
      std::copy(x0.data(), x0.data() + c * l, one.data());
      target_std = tensor_std(one);  // class-specific latent scale
    }
    const float sa = schedule_.sqrt_alpha_bar(t0);
    const float sb = schedule_.sqrt_one_minus_alpha_bar(t0);
    nn::Tensor xt(x0.shape());
    for (std::size_t i = 0; i < xt.size(); ++i) {
      xt[i] = sa * x0[i] + sb * static_cast<float>(rng_.gaussian());
    }
    if (opts.sampler == SamplerKind::kDdpm) {
      out = ddpm_sample_from(eps_fn, schedule_, std::move(xt), t0, rng_);
    } else if (opts.sampler == SamplerKind::kDistilled) {
      const std::size_t steps = std::min(opts.ddim_steps, t0 + 1);
      out = distilled_sample_from(eps_fn, schedule_, std::move(xt),
                                  find_distilled(class_id, t0, steps));
    } else {
      const std::size_t steps = std::min(opts.ddim_steps, t0 + 1);
      out = ddim_sample_from(eps_fn, schedule_, std::move(xt), t0, steps,
                             opts.eta, rng_);
    }
  }
  if (opts.renormalize_latents && target_std > 1e-6f) {
    renormalize_batch(out, target_std);
  }
  return out;
}

nn::Tensor TraceDiffusion::sample_latents_multi(int class_id,
                                                const GenerateOptions& opts,
                                                std::vector<Rng>& rngs) {
  REPRO_SPAN("diffusion.sample.latents");
  const std::size_t count = rngs.size();
  const std::size_t c = config_.autoencoder.latent_dim;
  const std::size_t l = config_.packets;
  const bool control = opts.use_control && template_flows_.count(class_id);
  const PrecisionScope precision(opts.precision, *unet_, *control_);
  EpsFn eps_fn = guided_eps_fn(class_id, count, opts);

  const std::vector<std::size_t> shape{count, c, l};
  const bool from_template =
      control && opts.template_strength < 1.0f && opts.template_strength > 0.0f;
  const std::size_t t0 = start_timestep(class_id, opts);
  nn::Tensor out;
  float target_std = 1.0f;  // training latents are scaled to unit std
  if (!from_template) {
    if (opts.sampler == SamplerKind::kDistilled) {
      // Per-flow noise discipline: sample b's initial noise comes
      // entirely from rngs[b] (the distilled trajectory itself draws no
      // further noise), so batch composition cannot change a flow.
      const DistilledStage& stage =
          find_distilled(class_id, t0, opts.ddim_steps);
      nn::Tensor xt(shape);
      for (std::size_t b = 0; b < count; ++b) {
        float* dst = xt.data() + b * c * l;
        for (std::size_t i = 0; i < c * l; ++i) {
          dst[i] = static_cast<float>(rngs[b].gaussian());
        }
      }
      out = distilled_sample_from(eps_fn, schedule_, std::move(xt), stage);
    } else {
      out = opts.sampler == SamplerKind::kDdpm
                ? ddpm_sample(eps_fn, schedule_, shape, rngs)
                : ddim_sample(eps_fn, schedule_, shape, opts.ddim_steps,
                              opts.eta, rngs);
    }
  } else {
    // Same SDEdit-style start as sample_latents, except sample b's
    // template noising draws from rngs[b] — the per-flow stream order
    // (template noise, then per-step sampler noise, then timestamps)
    // is therefore independent of batch composition.
    const nn::Tensor& hint_full = class_hint(class_id);
    const float* tmpl = hint_full.data() + kHintChannels * l;
    {
      nn::Tensor one({c, l});
      std::copy(tmpl, tmpl + c * l, one.data());
      target_std = tensor_std(one);  // class-specific latent scale
    }
    const float sa = schedule_.sqrt_alpha_bar(t0);
    const float sb = schedule_.sqrt_one_minus_alpha_bar(t0);
    nn::Tensor xt({count, c, l});
    for (std::size_t b = 0; b < count; ++b) {
      float* dst = xt.data() + b * c * l;
      Rng& rng = rngs[b];
      for (std::size_t i = 0; i < c * l; ++i) {
        dst[i] = sa * tmpl[i] + sb * static_cast<float>(rng.gaussian());
      }
    }
    if (opts.sampler == SamplerKind::kDdpm) {
      out = ddpm_sample_from(eps_fn, schedule_, std::move(xt), t0, rngs);
    } else if (opts.sampler == SamplerKind::kDistilled) {
      const std::size_t steps = std::min(opts.ddim_steps, t0 + 1);
      out = distilled_sample_from(eps_fn, schedule_, std::move(xt),
                                  find_distilled(class_id, t0, steps));
    } else {
      const std::size_t steps = std::min(opts.ddim_steps, t0 + 1);
      out = ddim_sample_from(eps_fn, schedule_, std::move(xt), t0, steps,
                             opts.eta, rngs);
    }
  }
  if (opts.renormalize_latents && target_std > 1e-6f) {
    renormalize_batch(out, target_std);
  }
  return out;
}

std::size_t TraceDiffusion::start_timestep(int class_id,
                                           const GenerateOptions& opts) const {
  const bool control = opts.use_control && template_flows_.count(class_id);
  const bool from_template =
      control && opts.template_strength < 1.0f && opts.template_strength > 0.0f;
  if (!from_template) return schedule_.timesteps() - 1;
  return static_cast<std::size_t>(opts.template_strength *
                                  static_cast<float>(schedule_.timesteps() - 1));
}

const DistilledStage& TraceDiffusion::find_distilled(int class_id,
                                                     std::size_t t0,
                                                     std::size_t steps) const {
  const auto it = distilled_.find(DistillKey{class_id, t0, steps});
  if (it == distilled_.end()) {
    throw std::invalid_argument(
        "TraceDiffusion: no distilled stage for class " +
        std::to_string(class_id) + " at " + std::to_string(steps) +
        " steps (t0 " + std::to_string(t0) +
        "); run distill() or request an available step count");
  }
  return it->second;
}

std::size_t TraceDiffusion::distill(const DistillConfig& cfg) {
  if (!fitted_) {
    throw std::logic_error("TraceDiffusion::distill: call fit() first");
  }
  if (cfg.rounds == 0 || cfg.teacher_steps < 2 || cfg.calibration_count == 0) {
    throw std::invalid_argument("TraceDiffusion::distill: bad config");
  }
  REPRO_SPAN("diffusion.distill");
  const std::size_t c = config_.autoencoder.latent_dim;
  const std::size_t l = config_.packets;
  std::size_t fitted_stages = 0;
  for (std::size_t cls = 0; cls < prompts_.num_classes(); ++cls) {
    const int class_id = static_cast<int>(cls);
    GenerateOptions proto = cfg.options;
    proto.count = cfg.calibration_count;
    const std::size_t t0 = start_timestep(class_id, proto);
    const std::size_t n = cfg.calibration_count;

    // Calibration batch at t0 — the same construction sample_latents
    // uses, but drawn from a dedicated stream so distill() never reads
    // or advances the pipeline RNG.
    Rng rng(fork_flow_seed(cfg.seed, cls));
    nn::Tensor xt({n, c, l});
    const bool control = proto.use_control && template_flows_.count(class_id);
    const bool from_template = control && proto.template_strength < 1.0f &&
                               proto.template_strength > 0.0f;
    if (from_template) {
      const nn::Tensor& hint_full = class_hint(class_id);
      const float* tmpl = hint_full.data() + kHintChannels * l;
      const float sa = schedule_.sqrt_alpha_bar(t0);
      const float sb = schedule_.sqrt_one_minus_alpha_bar(t0);
      for (std::size_t b = 0; b < n; ++b) {
        float* dst = xt.data() + b * c * l;
        for (std::size_t i = 0; i < c * l; ++i) {
          dst[i] = sa * tmpl[i] + sb * static_cast<float>(rng.gaussian());
        }
      }
    } else {
      for (std::size_t i = 0; i < xt.size(); ++i) {
        xt[i] = static_cast<float>(rng.gaussian());
      }
    }

    // Progressive halving against the fp32 reference eps function.
    EpsFn eps_fn = guided_eps_fn(class_id, n, proto);
    DistilledStage teacher =
        teacher_stage(t0, std::min(cfg.teacher_steps, t0 + 1));
    for (std::size_t round = 0; round < cfg.rounds && teacher.steps() >= 2;
         ++round) {
      StageFit fit = distill_halve(eps_fn, schedule_, teacher, xt);
      telemetry::observe("diffusion.distill.mse_fitted", fit.mse_fitted);
      REPRO_LOG_DEBUG() << "distill class " << class_id << " "
                        << teacher.steps() << "->" << fit.stage.steps()
                        << " steps, mse " << fit.mse_plain << " -> "
                        << fit.mse_fitted;
      teacher = fit.stage;
      distilled_[DistillKey{class_id, t0, fit.stage.steps()}] =
          std::move(fit.stage);
      ++fitted_stages;
    }
  }
  return fitted_stages;
}

bool TraceDiffusion::has_distilled(int class_id, std::size_t steps) const {
  for (const auto& [key, stage] : distilled_) {
    if (key.class_id == class_id && key.steps == steps) return true;
  }
  return false;
}

std::vector<std::size_t> TraceDiffusion::distilled_step_counts() const {
  std::vector<std::size_t> out;
  for (const auto& [key, stage] : distilled_) out.push_back(key.steps);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void TraceDiffusion::prepare_quantized() {
  unet_->refresh_quantized();
  control_->refresh_quantized();
}

std::vector<net::Flow> TraceDiffusion::generate(int class_id,
                                                const GenerateOptions& opts) {
  if (!fitted_) {
    throw std::logic_error("TraceDiffusion::generate: call fit() first");
  }
  if (class_id < 0 ||
      static_cast<std::size_t>(class_id) >= prompts_.num_classes()) {
    throw std::invalid_argument("TraceDiffusion::generate: bad class id");
  }
  REPRO_SPAN("diffusion.generate");
  telemetry::count("diffusion.generate.flows", opts.count);
  nn::Tensor latents = sample_latents(class_id, opts.count, opts);
  return decode_flows(std::move(latents), class_id, opts, nullptr);
}

std::vector<net::Flow> TraceDiffusion::decode_flows(
    nn::Tensor latents, int class_id, const GenerateOptions& opts,
    std::vector<Rng>* flow_rngs) {
  REPRO_SPAN("diffusion.generate.decode");
  const std::size_t n = latents.dim(0);
  if (flow_rngs != nullptr && flow_rngs->size() != n) {
    throw std::invalid_argument("decode_flows: one RNG per flow required");
  }
  latents.scale(1.0f / latent_scale_);
  // One batched decoder pass over all flows' packet rows.
  std::vector<nprint::Matrix> matrices = autoencoder_->decode_matrices(latents);
  std::vector<net::Flow> flows;
  flows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    nprint::Matrix& matrix = matrices[i];
    nprint::quantize(matrix);
    if (opts.constraint == ConstraintMode::kProjected &&
        templates_.count(class_id)) {
      project_to_template(matrix, templates_.at(class_id));
    }
    net::Flow flow = nprint::decode_flow(matrix);
    if (opts.stateful_tcp_repair && template_flows_.count(class_id)) {
      flow = enforce_tcp_state(flow, template_flows_.at(class_id));
    }
    flow.label = class_id;
    assign_timestamps(flow, class_id,
                      flow_rngs != nullptr ? (*flow_rngs)[i] : rng_);
    flows.push_back(std::move(flow));
  }
  return flows;
}

std::vector<net::Flow> TraceDiffusion::generate_seeded(
    int class_id, const GenerateOptions& opts, std::uint64_t seed) {
  std::vector<std::uint64_t> flow_seeds(opts.count);
  for (std::size_t i = 0; i < opts.count; ++i) {
    flow_seeds[i] = fork_flow_seed(seed, i);
  }
  return generate_with_flow_seeds(class_id, opts, flow_seeds);
}

std::vector<net::Flow> TraceDiffusion::generate_with_flow_seeds(
    int class_id, const GenerateOptions& opts,
    const std::vector<std::uint64_t>& flow_seeds) {
  if (!fitted_) {
    throw std::logic_error(
        "TraceDiffusion::generate_with_flow_seeds: call fit() first");
  }
  if (class_id < 0 ||
      static_cast<std::size_t>(class_id) >= prompts_.num_classes()) {
    throw std::invalid_argument(
        "TraceDiffusion::generate_with_flow_seeds: bad class id");
  }
  if (flow_seeds.empty()) return {};
  REPRO_SPAN("diffusion.generate");
  telemetry::count("diffusion.generate.flows", flow_seeds.size());
  std::vector<Rng> rngs;
  rngs.reserve(flow_seeds.size());
  for (const std::uint64_t s : flow_seeds) rngs.emplace_back(s);
  nn::Tensor latents = sample_latents_multi(class_id, opts, rngs);
  return decode_flows(std::move(latents), class_id, opts, &rngs);
}

std::vector<net::Flow> TraceDiffusion::generate_from_prompt(
    const std::string& prompt, const GenerateOptions& opts) {
  const auto id = prompts_.parse_prompt(prompt);
  if (!id || *id == prompts_.null_id()) {
    throw std::invalid_argument("generate_from_prompt: unknown prompt '" +
                                prompt + "'");
  }
  return generate(*id, opts);
}

nprint::Matrix TraceDiffusion::generate_matrix(int class_id,
                                               const GenerateOptions& opts,
                                               ProtocolTemplate* used_template) {
  if (!fitted_) {
    throw std::logic_error("TraceDiffusion::generate_matrix: call fit() first");
  }
  GenerateOptions one = opts;
  one.count = 1;
  nn::Tensor latents = sample_latents(class_id, 1, one);
  latents.scale(1.0f / latent_scale_);
  nprint::Matrix matrix = autoencoder_->decode_matrix(latents);
  nprint::quantize(matrix);
  if (templates_.count(class_id)) {
    if (used_template) *used_template = templates_.at(class_id);
    if (one.constraint == ConstraintMode::kProjected) {
      project_to_template(matrix, templates_.at(class_id));
    }
  }
  return matrix;
}

net::Flow TraceDiffusion::deblur(const net::Flow& corrupted,
                                 const std::vector<bool>& packet_known,
                                 int class_id, const GenerateOptions& opts) {
  if (!fitted_) {
    throw std::logic_error("TraceDiffusion::deblur: call fit() first");
  }
  REPRO_SPAN("diffusion.deblur");
  const std::size_t c = config_.autoencoder.latent_dim;
  const std::size_t l = config_.packets;

  nn::Tensor known = autoencoder_->encode_matrix(
      nprint::encode_flow(corrupted, l, /*pad_to_max=*/true));
  known.scale(latent_scale_);
  std::vector<std::uint8_t> mask(known.size(), 0);
  for (std::size_t t = 0; t < l; ++t) {
    if (t < packet_known.size() && packet_known[t]) {
      for (std::size_t ch = 0; ch < c; ++ch) {
        mask[ch * l + t] = 1;
      }
    }
  }

  EpsFn eps_fn = guided_eps_fn(class_id, /*count=*/1, opts);

  nn::Tensor restored = ddim_inpaint(eps_fn, schedule_, known, mask,
                                     opts.ddim_steps, opts.eta, rng_);
  restored.scale(1.0f / latent_scale_);
  nprint::Matrix matrix = autoencoder_->decode_matrix(restored);
  nprint::quantize(matrix);
  if (opts.constraint == ConstraintMode::kProjected &&
      templates_.count(class_id)) {
    project_to_template(matrix, templates_.at(class_id));
  }
  // Row-preserving reassembly: observed slots take the original packet
  // verbatim; missing slots take the synthesized row (skipped when it
  // decodes vacant). decode_flow cannot be used here because it drops
  // vacant rows and would shift the slot <-> packet mapping.
  net::Flow flow;
  flow.label = class_id;
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    const bool observed = r < packet_known.size() && packet_known[r] &&
                          r < corrupted.packets.size();
    net::Packet pkt;
    if (observed) {
      pkt = corrupted.packets[r];
    } else if (!nprint::decode_packet(
                   matrix.data().data() + r * nprint::kBitsPerPacket, pkt)) {
      continue;  // vacant synthesized row
    }
    flow.packets.push_back(std::move(pkt));
  }
  assign_timestamps(flow, class_id, rng_);
  if (!flow.packets.empty()) {
    flow.key = net::FlowKey::from_packet(flow.packets.front()).canonical();
  }
  return flow;
}

flowgen::Dataset TraceDiffusion::generate_dataset(
    const std::vector<std::size_t>& per_class, const GenerateOptions& opts) {
  flowgen::Dataset out;
  for (std::size_t cls = 0; cls < per_class.size(); ++cls) {
    if (per_class[cls] == 0) continue;
    GenerateOptions batch = opts;
    batch.count = per_class[cls];
    auto flows = generate(static_cast<int>(cls), batch);
    for (auto& flow : flows) out.flows.push_back(std::move(flow));
  }
  return out;
}

const ProtocolTemplate& TraceDiffusion::class_template(int class_id) const {
  const auto it = templates_.find(class_id);
  if (it == templates_.end()) {
    throw std::out_of_range("class_template: no template for class");
  }
  return it->second;
}

namespace {

// Meta-file versions: V2 predates sampler distillation, V3 appends the
// distilled-stage section. save() always writes V3; load() accepts both.
constexpr std::uint32_t kMetaMagicV2 = 0x54444D32;  // "TDM2"
constexpr std::uint32_t kMetaMagic = 0x54444D33;    // "TDM3"

std::vector<nn::Parameter*> all_parameters(PacketAutoencoder& ae,
                                           UNet1d& unet,
                                           ControlNetBranch& control) {
  std::vector<nn::Parameter*> params = ae.parameters();
  for (nn::Parameter* p : unet.parameters()) params.push_back(p);
  for (nn::Parameter* p : control.parameters()) params.push_back(p);
  return params;
}

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  repro::write_pod(out, value);
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  if (!repro::read_pod(in, value)) {
    throw std::runtime_error("pipeline meta: truncated file");
  }
  return value;
}

}  // namespace

void TraceDiffusion::save(const std::string& prefix) const {
  if (!fitted_) {
    throw std::logic_error("TraceDiffusion::save: call fit() first");
  }
  nn::save_parameters(prefix + ".weights",
                      all_parameters(*autoencoder_, *unet_, *control_));
  std::ofstream out(prefix + ".meta", std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("TraceDiffusion::save: cannot open " + prefix +
                             ".meta");
  }
  write_pod(out, kMetaMagic);
  write_pod(out, latent_scale_);
  write_pod(out, static_cast<std::uint32_t>(template_flows_.size()));
  for (const auto& [class_id, flow] : template_flows_) {
    write_pod(out, static_cast<std::int32_t>(class_id));
    write_pod(out, static_cast<std::uint32_t>(flow.packets.size()));
    for (const auto& pkt : flow.packets) {
      write_pod(out, pkt.timestamp);
      const auto wire = pkt.serialize();
      write_pod(out, static_cast<std::uint32_t>(wire.size()));
      repro::write_bytes(out, wire.data(), wire.size());
    }
  }
  write_pod(out, static_cast<std::uint32_t>(timing_.size()));
  for (const auto& [class_id, model] : timing_) {
    write_pod(out, static_cast<std::int32_t>(class_id));
    write_pod(out, model.log_mu);
    write_pod(out, model.log_sigma);
  }
  write_pod(out, static_cast<std::uint32_t>(distilled_.size()));
  for (const auto& [key, stage] : distilled_) {
    write_pod(out, static_cast<std::int32_t>(key.class_id));
    write_pod(out, static_cast<std::uint32_t>(key.t0));
    write_pod(out, static_cast<std::uint32_t>(key.steps));
    for (const std::size_t tau : stage.taus) {
      write_pod(out, static_cast<std::uint32_t>(tau));
    }
    for (const float gain : stage.gains) write_pod(out, gain);
  }
  if (!out) throw std::runtime_error("TraceDiffusion::save: write failed");
}

void TraceDiffusion::load(const std::string& prefix) {
  nn::load_parameters(prefix + ".weights",
                      all_parameters(*autoencoder_, *unet_, *control_));
  std::ifstream in(prefix + ".meta", std::ios::binary);
  if (!in) {
    throw std::runtime_error("TraceDiffusion::load: cannot open " + prefix +
                             ".meta");
  }
  const auto magic = read_pod<std::uint32_t>(in);
  if (magic != kMetaMagic && magic != kMetaMagicV2) {
    throw std::runtime_error("TraceDiffusion::load: bad meta magic");
  }
  latent_scale_ = read_pod<float>(in);
  const auto template_count = read_pod<std::uint32_t>(in);
  template_flows_.clear();
  templates_.clear();
  hints_.clear();
  for (std::uint32_t t = 0; t < template_count; ++t) {
    const auto class_id = read_pod<std::int32_t>(in);
    const auto packet_count = read_pod<std::uint32_t>(in);
    net::Flow flow;
    flow.label = class_id;
    for (std::uint32_t p = 0; p < packet_count; ++p) {
      const double timestamp = read_pod<double>(in);
      const auto wire_len = read_pod<std::uint32_t>(in);
      std::vector<std::uint8_t> wire(wire_len);
      if (!repro::read_bytes(in, wire.data(), wire.size())) {
        throw std::runtime_error("TraceDiffusion::load: truncated");
      }
      flow.packets.push_back(net::Packet::parse(wire, timestamp));
    }
    if (!flow.packets.empty()) {
      flow.key = net::FlowKey::from_packet(flow.packets.front()).canonical();
    }
    templates_[class_id] = ProtocolTemplate::from_flow(flow, config_.packets);
    template_flows_[class_id] = std::move(flow);
  }
  timing_.clear();
  const auto timing_count = read_pod<std::uint32_t>(in);
  for (std::uint32_t t = 0; t < timing_count; ++t) {
    const auto class_id = read_pod<std::int32_t>(in);
    TimingModel model;
    model.log_mu = read_pod<float>(in);
    model.log_sigma = read_pod<float>(in);
    timing_[class_id] = model;
  }
  distilled_.clear();
  if (magic == kMetaMagic) {
    const auto stage_count = read_pod<std::uint32_t>(in);
    for (std::uint32_t s = 0; s < stage_count; ++s) {
      DistillKey key;
      key.class_id = read_pod<std::int32_t>(in);
      key.t0 = read_pod<std::uint32_t>(in);
      key.steps = read_pod<std::uint32_t>(in);
      DistilledStage stage;
      stage.taus.resize(key.steps);
      stage.gains.resize(key.steps);
      for (auto& tau : stage.taus) tau = read_pod<std::uint32_t>(in);
      for (auto& gain : stage.gains) gain = read_pod<float>(in);
      distilled_[key] = std::move(stage);
    }
  }
  fitted_ = true;
  // Record the int8 absmax calibration for the freshly loaded weights so
  // the first quantized request pays no calibration latency.
  prepare_quantized();
}

}  // namespace repro::diffusion
