// ControlNet-style control branch (Zhang & Agrawala 2023, scaled down).
//
// A trainable copy of the U-Net encoder consumes x_t plus an encoded
// control hint and emits additive residuals for the base U-Net's skip
// connections and middle block through zero-initialized 1x1 convolutions
// ("zero convs"), so training starts from an exact no-op and gradually
// learns to steer generation. The hint here is the paper's one-shot
// protocol-template image: a [3, L] one-hot sequence giving each packet
// row's transport protocol (TCP/UDP/ICMP), derived from one real flow of
// the target class (§3.1 "guiding the generation via one-shot controls").
#pragma once

#include "diffusion/resblock.hpp"
#include "diffusion/unet1d.hpp"
#include "net/flow.hpp"
#include "nn/embedding.hpp"

namespace repro::diffusion {

inline constexpr std::size_t kHintChannels = 3;  // one-hot TCP/UDP/ICMP

class ControlNetBranch {
 public:
  ControlNetBranch(const UNetConfig& config, Rng& rng);

  /// x: [N, C, L] (the current noisy latent), hint: [N, 3, L].
  /// Residual shapes match ControlResiduals' documentation.
  ControlResiduals forward(const nn::Tensor& x,
                           const std::vector<float>& timesteps,
                           const std::vector<int>& class_ids,
                           const nn::Tensor& hint);

  /// Consumes the gradients the base U-Net reported for the residuals.
  void backward(const ControlResiduals& grad_residuals);

  std::vector<nn::Parameter*> parameters();
  void zero_grad();

  /// Precision propagation mirroring UNet1d (unet1d.hpp).
  void set_precision(nn::Precision p);
  void refresh_quantized();
  void invalidate_quantized();

 private:
  template <class Fn>
  void for_each_quantizable(Fn&& fn);
  UNetConfig config_;
  // Conditioning (own copy; ControlNet clones the encoder conditioning).
  nn::Linear time_mlp1_;
  nn::SiLU time_act_;
  nn::Linear time_mlp2_;
  nn::Embedding class_embedding_;
  // Hint encoder.
  nn::Conv1d hint_conv1_;
  nn::SiLU hint_act_;
  nn::Conv1d hint_conv2_;
  // Encoder copy.
  nn::Conv1d conv_in_;
  ResBlock res_d1_;
  nn::Conv1d down1_;
  ResBlock res_d2_;
  nn::Conv1d down2_;
  ResBlock res_m_;
  // Zero convolutions.
  nn::Conv1d zero1_;  // base -> base
  nn::Conv1d zero2_;  // 2*base -> 2*base
  nn::Conv1d zero_m_;
  // Cache.
  std::size_t n_ = 0;
  nn::Tensor sin_emb_;
};

/// Builds the [3, L] one-hot protocol hint from a template flow (row i =
/// protocol of packet i; rows beyond the flow's length repeat the
/// dominant protocol, matching the padded image rows).
nn::Tensor protocol_hint(const net::Flow& flow, std::size_t packets);

}  // namespace repro::diffusion
