// TraceDiffusion: the end-to-end text-to-traffic pipeline of §3.1.
//
//   pcap flows -> nprint matrices -> packet autoencoder (latents)
//   -> conditional latent DDPM (class prompts, classifier-free guidance,
//      LoRA adapters, ControlNet protocol hints)
//   -> DDPM/DDIM sampling -> color quantization -> constraint projection
//   -> nprint decode -> replayable pcap flows.
//
// This is the library's primary public entry point; examples/ and bench/
// drive everything through it.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "diffusion/autoencoder.hpp"
#include "diffusion/conditioning.hpp"
#include "diffusion/constraint.hpp"
#include "diffusion/controlnet.hpp"
#include "diffusion/distill.hpp"
#include "diffusion/sampler.hpp"
#include "diffusion/schedule.hpp"
#include "diffusion/unet1d.hpp"
#include "flowgen/dataset.hpp"
#include "nn/precision.hpp"

namespace repro::diffusion {

struct PipelineConfig {
  /// Flow image height (packets per flow); must be divisible by 4.
  /// The paper renders up to 1024 rows; the CPU default is smaller.
  std::size_t packets = 32;

  AutoencoderConfig autoencoder;  // latent_dim feeds unet.in_channels
  UNetConfig unet;
  std::size_t timesteps = 100;
  ScheduleKind schedule = ScheduleKind::kCosine;

  /// Network parameterization. kEpsilon predicts the added noise (Ho et
  /// al.'s default). kX0 predicts the clean latent through an EDM-style
  /// skip (Karras et al. 2022): x0_pred = sqrt(abar_t) * x_t + F(x_t),
  /// so the network only learns the residual — exactly zero in the
  /// low-noise limit, which a small model cannot otherwise represent
  /// (learning the identity through a deep conv stack is the hard
  /// part). Markedly more sample-efficient for structured data at this
  /// scale; the pipeline's default.
  enum class Parameterization { kEpsilon, kX0 };
  Parameterization parameterization = Parameterization::kX0;

  // Training hyper-parameters.
  std::size_t ae_epochs = 8;
  std::size_t ae_batch = 64;
  float ae_lr = 2e-3f;
  std::size_t ae_max_rows = 20000;  // row subsample cap for AE training

  std::size_t diffusion_epochs = 30;
  std::size_t diffusion_batch = 8;
  float diffusion_lr = 2e-3f;
  float cfg_dropout = 0.1f;  // prompt-drop probability for CFG training
  float grad_clip = 1.0f;

  bool train_control = true;
  std::size_t control_epochs = 8;
  float control_lr = 2e-3f;

  std::uint64_t seed = 1234;
};

/// kDistilled runs a progressively distilled few-step schedule
/// (distill.hpp) fitted by TraceDiffusion::distill(); requests must ask
/// for a step count that was actually fitted (distilled_step_counts()).
enum class SamplerKind { kDdpm, kDdim, kDistilled };

/// Derives the per-flow RNG seed for flow `flow_index` of a seeded
/// generation request (splitmix64-style mixing). The serving layer uses
/// the same derivation when it concatenates several requests into one
/// batched model call, so a flow's noise streams do not depend on how
/// requests were coalesced — the root of the served-response determinism
/// contract.
std::uint64_t fork_flow_seed(std::uint64_t seed,
                             std::size_t flow_index) noexcept;

struct GenerateOptions {
  std::size_t count = 1;
  SamplerKind sampler = SamplerKind::kDdim;
  std::size_t ddim_steps = 20;
  float eta = 0.0f;
  float guidance_scale = 2.0f;  // 1.0 disables classifier-free guidance
  bool use_control = true;      // ControlNet hints during sampling
  ConstraintMode constraint = ConstraintMode::kProjected;

  /// Extension of the hard projection to the TCP state machine
  /// (constraint.hpp enforce_tcp_state): makes generated TCP flows pass
  /// a strict stateful firewall. Off by default — the paper's pipeline
  /// only projects protocol usage; see bench/replay_validity for the
  /// ablation.
  bool stateful_tcp_repair = false;

  /// MSE-trained denoisers systematically shrink their output toward the
  /// conditional mean; on quantized bit data the lost amplitude pushes
  /// marginal field bits (DSCP, option words) across the decoder's
  /// thresholds. When set, each generated latent is rescaled to the
  /// class template's standard deviation (cf. the guidance-rescale trick
  /// of Lin et al. 2023).
  bool renormalize_latents = true;

  /// One-shot image guidance (SDEdit-style): generation starts from the
  /// class template latent noised to `template_strength` of the schedule
  /// instead of pure noise, so the re-noised stretch is resampled by the
  /// model while the template's flow structure persists — the "image fed
  /// into the fine-tuned base model" part of §3.1. 1.0 = pure noise
  /// (template ignored); 0.0 would copy the template verbatim. Only
  /// active when use_control is set and the class has a template.
  float template_strength = 0.35f;

  /// Inference numeric route. kFp32 is the bit-exact reference path;
  /// kInt8 routes the U-Net / control-branch weight GEMMs through the
  /// quantized kernels (nn/kernels/qgemm.hpp) — faster, still
  /// bit-identical across REPRO_THREADS, but numerically distinct from
  /// fp32 (fidelity-gated by bench/fidelity_fastpath). Sampling-only:
  /// training always runs fp32, and the pipeline restores fp32 after
  /// every sampling call.
  nn::Precision precision = nn::Precision::kFp32;
};

/// Progressive-distillation configuration (TraceDiffusion::distill).
struct DistillConfig {
  /// Round-0 teacher step count (clamped to the trajectory length the
  /// prototype options produce). 20 -> 10 -> 5 -> 3 with rounds = 3.
  std::size_t teacher_steps = 20;
  std::size_t rounds = 3;
  /// Calibration latents per class for the closed-form gain fit.
  std::size_t calibration_count = 4;
  /// Seed for the calibration noise; independent of the pipeline RNG so
  /// distill() never perturbs generate() streams.
  std::uint64_t seed = 4321;
  /// Prototype sampling options: guidance / control / template_strength
  /// determine the start timestep and eps function the stages are
  /// fitted against, and must match the options later used with
  /// SamplerKind::kDistilled. sampler/ddim_steps/count are ignored.
  GenerateOptions options;
};

struct FitStats {
  float ae_final_loss = 0.0f;
  float diffusion_final_loss = 0.0f;
  float control_final_loss = 0.0f;
  std::size_t flows_used = 0;
  std::size_t unet_parameters = 0;
};

class TraceDiffusion {
 public:
  TraceDiffusion(PipelineConfig config, std::vector<std::string> class_names);

  const PipelineConfig& config() const noexcept { return config_; }
  const PromptCodec& prompts() const noexcept { return prompts_; }
  float latent_scale() const noexcept { return latent_scale_; }

  /// Trains autoencoder, diffusion model and (optionally) the control
  /// branch on the given labeled dataset.
  FitStats fit(const flowgen::Dataset& real);

  /// LoRA fine-tuning: freezes the base U-Net and trains only the
  /// adapters on `data` (requires config.unet.lora_rank > 0 and a prior
  /// fit()). Returns the final epoch loss.
  float fit_lora(const flowgen::Dataset& data, std::size_t epochs);

  /// Generates labeled flows for a class. Throws std::logic_error before
  /// fit().
  std::vector<net::Flow> generate(int class_id, const GenerateOptions& opts);

  /// Text-to-traffic: accepts "Type-k" or an application name.
  /// Throws std::invalid_argument for unknown prompts.
  std::vector<net::Flow> generate_from_prompt(const std::string& prompt,
                                              const GenerateOptions& opts);

  /// Deterministic seeded generation: flow i of the `opts.count` flows
  /// draws ALL of its randomness (initial noise, per-step sampler noise,
  /// timestamp gaps) from an independent stream seeded with
  /// fork_flow_seed(seed, i). Unlike generate(), this neither reads nor
  /// advances the pipeline's internal RNG, so the same (class, seed,
  /// opts) always yields bit-identical flows — the library-side half of
  /// the serving determinism contract.
  std::vector<net::Flow> generate_seeded(int class_id,
                                         const GenerateOptions& opts,
                                         std::uint64_t seed);

  /// Batch-friendly seeded entry point: one flow per entry of
  /// `flow_seeds`, all sampled in ONE batched model call
  /// (opts.count is ignored). Because every per-flow noise stream is
  /// keyed by its own seed, concatenating the flow-seed lists of several
  /// requests produces bit-identical flows to issuing those requests
  /// separately — this is what the serving layer's micro-batcher calls.
  std::vector<net::Flow> generate_with_flow_seeds(
      int class_id, const GenerateOptions& opts,
      const std::vector<std::uint64_t>& flow_seeds);

  /// One raw generated matrix (already quantized/projected per
  /// opts.constraint) plus the template used — the Figure 2 artifact.
  nprint::Matrix generate_matrix(int class_id, const GenerateOptions& opts,
                                 ProtocolTemplate* used_template = nullptr);

  /// Balanced or custom-distribution dataset synthesis (§3.2 Coverage:
  /// "invoke the generation process an equal number of times for each").
  flowgen::Dataset generate_dataset(const std::vector<std::size_t>& per_class,
                                    const GenerateOptions& opts);

  /// The per-class one-shot control template captured during fit().
  const ProtocolTemplate& class_template(int class_id) const;

  /// Per-class inter-arrival model fitted from the training flows
  /// (lognormal over packet gaps). nprint deliberately drops timing, so
  /// the pcap back-transform re-synthesizes timestamps from this model;
  /// without it every generated flow would have degenerate duration.
  struct TimingModel {
    float log_mu = -6.0f;    // ln(seconds); default ~2.5 ms
    float log_sigma = 1.0f;
  };
  const TimingModel& class_timing(int class_id) const;

  /// §4 "traffic deblurring": restores the missing packets of a
  /// partially observed flow by diffusion inpainting. `packet_known[i]`
  /// marks packet slots that were observed; those packets are returned
  /// verbatim while the vacant slots are synthesized conditioned on the
  /// observed ones (and the class prompt). Slots beyond
  /// `packet_known.size()` count as missing.
  net::Flow deblur(const net::Flow& corrupted,
                   const std::vector<bool>& packet_known, int class_id,
                   const GenerateOptions& opts);

  /// Persists the fitted pipeline: `<prefix>.weights` (autoencoder +
  /// U-Net + control branch parameters) and `<prefix>.meta` (latent
  /// scale and the per-class template flows). Throws std::logic_error
  /// before fit() and std::runtime_error on I/O failure.
  void save(const std::string& prefix) const;

  /// Restores a pipeline saved with `save`. The receiving pipeline must
  /// have been constructed with an identical PipelineConfig and class
  /// list (verified via parameter names/shapes). Marks the pipeline
  /// fitted, records the int8 absmax calibration for every weight
  /// (prepare_quantized), and restores any distilled stages saved with
  /// the checkpoint.
  void load(const std::string& prefix);

  /// Fits distilled few-step sampler stages for every class by
  /// progressive halving (teacher_steps -> /2 -> /2 ...), storing each
  /// round's stage so any of the halved step counts can be requested.
  /// Stages serialize with save()/load(). Returns the number of stages
  /// fitted. Throws std::logic_error before fit().
  std::size_t distill(const DistillConfig& cfg);

  /// True when a distilled stage with this step count exists for the
  /// class (at any start timestep).
  bool has_distilled(int class_id, std::size_t steps) const;

  /// Sorted unique step counts available across all classes — what the
  /// serving layer advertises and admits for SamplerKind::kDistilled.
  std::vector<std::size_t> distilled_step_counts() const;

  /// Eagerly records the int8 absmax calibration (per-tensor scale +
  /// quantized copy) for every U-Net / control-branch weight, so the
  /// first kInt8 request pays no calibration latency. Called by load();
  /// idempotent. fit()/fit_lora() invalidate the recorded calibration.
  void prepare_quantized();

  UNet1d& unet() noexcept { return *unet_; }
  PacketAutoencoder& autoencoder() noexcept { return *autoencoder_; }

 private:
  struct Encoded {
    nn::Tensor latent;  // [1, C, L], scaled
    int label = 0;
  };

  std::vector<Encoded> encode_dataset(const flowgen::Dataset& data);

  /// Builds (and caches) the one-shot control hint for a class: the
  /// protocol one-hot stacked with the AE-encoded template-flow latent —
  /// the "class-specific ... image fed into ControlNet" of §3.1.
  const nn::Tensor& class_hint(int class_id);
  float train_diffusion_epochs(const std::vector<Encoded>& data,
                               std::size_t epochs, float lr,
                               const std::vector<nn::Parameter*>& params,
                               bool with_control_hints);
  nn::Tensor sample_latents(int class_id, std::size_t count,
                            const GenerateOptions& opts);

  /// sample_latents with one noise stream per sample (count =
  /// rngs.size()); see generate_with_flow_seeds.
  nn::Tensor sample_latents_multi(int class_id, const GenerateOptions& opts,
                                  std::vector<Rng>& rngs);

  /// Shared decode tail: latent batch -> quantize -> project -> packets
  /// -> timestamps. `flow_rngs`, when non-null (one per flow), supplies
  /// the per-flow timestamp streams; otherwise the pipeline RNG is used.
  std::vector<net::Flow> decode_flows(nn::Tensor latents, int class_id,
                                      const GenerateOptions& opts,
                                      std::vector<Rng>* flow_rngs);

  /// Builds the classifier-free-guided noise predictor shared by
  /// sample_latents and deblur. With guidance enabled, the cond and
  /// uncond evaluations run as ONE batched [2N] U-Net forward (inputs
  /// stacked cond-first); control residuals are computed once on the
  /// cond ids and tiled across both halves. Per-step scratch (the
  /// stacked input, tiled residuals) lives in state shared by the
  /// returned closure and is reused across sampler steps.
  EpsFn guided_eps_fn(int class_id, std::size_t count,
                      const GenerateOptions& opts);

  PipelineConfig config_;
  PromptCodec prompts_;
  Rng rng_;
  NoiseSchedule schedule_;
  std::unique_ptr<PacketAutoencoder> autoencoder_;
  std::unique_ptr<UNet1d> unet_;
  std::unique_ptr<ControlNetBranch> control_;
  float latent_scale_ = 1.0f;
  bool fitted_ = false;
  /// Fits/updates per-class timing models from labeled flows.
  void fit_timing(const flowgen::Dataset& data);

  /// Assigns model-sampled timestamps to a generated flow, drawing the
  /// inter-arrival gaps from `rng`.
  void assign_timestamps(net::Flow& flow, int class_id, Rng& rng);

  /// Start timestep a generation request denoises from: the SDEdit
  /// template noising point when the class template is in play, else
  /// the top of the schedule. Distilled stages are keyed on it.
  std::size_t start_timestep(int class_id, const GenerateOptions& opts) const;

  /// Stage lookup for SamplerKind::kDistilled; throws
  /// std::invalid_argument when (class, t0, steps) was never fitted.
  const DistilledStage& find_distilled(int class_id, std::size_t t0,
                                       std::size_t steps) const;

  std::map<int, net::Flow> template_flows_;   // one-shot control sources
  std::map<int, ProtocolTemplate> templates_;
  std::map<int, nn::Tensor> hints_;           // cached control images
  std::map<int, TimingModel> timing_;
  std::map<DistillKey, DistilledStage> distilled_;  // fitted few-step stages
};

}  // namespace repro::diffusion
