// Post-generation constraint handling ("color processing" + protocol
// compliance, §3.1/§3.2).
//
// Raw sampler output is real-valued; `quantize` (in nprint/codec.hpp)
// snaps it to the ternary alphabet. The projector then optionally
// enforces the hard inter-packet constraint the paper highlights: every
// packet of a flow must carry the protocol the control template dictates
// (Figure 2: "all packets strictly conform to the dominant protocol
// type"). Projection edits only structural bits — region vacancy and the
// IPv4 protocol field — leaving learned content bits untouched.
#pragma once

#include <vector>

#include "net/flow.hpp"
#include "nprint/codec.hpp"

namespace repro::diffusion {

/// Per-row protocol targets for one flow image.
struct ProtocolTemplate {
  std::vector<net::IpProto> per_packet;

  /// Uniform template: every row carries `proto`.
  static ProtocolTemplate uniform(net::IpProto proto, std::size_t packets);

  /// Template copied from a real flow (the one-shot control source);
  /// rows past the flow's end use its dominant protocol.
  static ProtocolTemplate from_flow(const net::Flow& flow,
                                    std::size_t packets);
};

enum class ConstraintMode {
  kOff,        // raw quantized output
  kProjected,  // quantize + hard protocol projection
};

/// In-place hard projection of `matrix` onto the template: for each row,
/// vacate the transport regions of non-target protocols, materialize the
/// target region's fixed header bits (vacant bits become 0 so the header
/// parses), de-vacate the IPv4 fixed header, and overwrite the IPv4
/// protocol field with the target protocol number.
void project_to_template(nprint::Matrix& matrix,
                         const ProtocolTemplate& target);

/// Fraction of non-vacant rows whose decoded transport matches the
/// template (1.0 = full compliance). Rows beyond the template length are
/// ignored.
double template_compliance(const nprint::Matrix& matrix,
                           const ProtocolTemplate& target);

/// Stateful TCP projection — the §4 "stricter constraints such as those
/// offered by network protocols" extension. Rewrites a generated
/// TCP-dominant flow so a strict stateful firewall accepts it: packet
/// direction and flag pattern are taken from the one-shot template flow,
/// endpoints are made self-consistent, and sequence/ack numbers are
/// renumbered from the generated initial sequence numbers. Everything
/// else the model generated — payload sizes, windows, TTLs, options,
/// DSCP, IP IDs, ports — is preserved. UDP-dominant templates get the
/// UDP analogue (endpoint harmonization: one address/port pair, template
/// directions); other templates are returned unchanged.
net::Flow enforce_tcp_state(const net::Flow& generated,
                            const net::Flow& template_flow);

}  // namespace repro::diffusion
