// Conditional 1-D U-Net noise predictor over latent flow sequences —
// the repo's CPU-scale stand-in for Stable Diffusion's denoiser
// (DESIGN.md §2). Input/output: [N, C, L] where C is the per-packet
// latent dimension and L the packet axis (L must be divisible by 4).
//
// Topology:
//   conv_in -> res_d1 --(skip1)--> down1 -> res_d2 --(skip2)--> down2
//   -> res_m1 -> self-attention -> res_m2
//   -> up2(+skip2) -> res_u2 -> up1(+skip1) -> res_u1 -> norm/act/conv_out
//
// Conditioning: sinusoidal timestep embedding through a 2-layer MLP,
// plus a learned class embedding ("Type-k" prompt, null id for
// classifier-free guidance), summed and FiLM-injected into every
// residual block. Optional LoRA adapters wrap the attention projections.
// Optional ControlNet residuals are added to skip1/skip2/mid.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "diffusion/resblock.hpp"
#include "nn/attention.hpp"
#include "nn/embedding.hpp"

namespace repro::diffusion {

struct UNetConfig {
  std::size_t in_channels = 16;    // latent dim per packet
  std::size_t base_channels = 32;  // doubled after the first downsample
  std::size_t temb_dim = 64;
  std::size_t num_classes = 11;
  std::size_t groups = 8;
  std::size_t lora_rank = 0;   // 0 = plain Linear attention projections
  float lora_alpha = 8.0f;
  /// Channels of the ControlNet hint image. Minimum 3 (protocol one-hot);
  /// the pipeline widens it with the encoded template-flow latent so the
  /// one-shot control carries class structure, as the paper's ControlNet
  /// consumes a class-specific template *image* (§3.1).
  std::size_t hint_channels = 3;
};

/// Additive residuals a ControlNet branch feeds into the decoder path.
struct ControlResiduals {
  nn::Tensor skip1;  // [N, B, L]
  nn::Tensor skip2;  // [N, 2B, L/2]
  nn::Tensor mid;    // [N, 2B, L/4]
};

class UNet1d {
 public:
  UNet1d(const UNetConfig& config, Rng& rng);

  const UNetConfig& config() const noexcept { return config_; }

  /// Predicts the noise eps for x_t. `timesteps` and `class_ids` have one
  /// entry per batch element; use PromptCodec::null_id() for the
  /// unconditional branch. `control` may be nullptr.
  nn::Tensor forward(const nn::Tensor& x, const std::vector<float>& timesteps,
                     const std::vector<int>& class_ids,
                     const ControlResiduals* control = nullptr);

  /// Backpropagates the loss gradient; returns grad wrt x. When
  /// `grad_control` is non-null it receives the gradients flowing into
  /// the control residuals (for ControlNet training).
  nn::Tensor backward(const nn::Tensor& grad_eps,
                      ControlResiduals* grad_control = nullptr);

  std::vector<nn::Parameter*> parameters();

  /// Adapter-only parameters (empty when lora_rank == 0).
  std::vector<nn::Parameter*> lora_parameters();

  /// The class ("word") embedding table — trained alongside the adapters
  /// during fine-tuning to register new classes.
  nn::Parameter& class_embedding_table() noexcept {
    return class_embedding_.table();
  }

  /// Freezes everything except LoRA adapters (fine-tuning mode).
  void freeze_base() noexcept;
  void unfreeze_all() noexcept;

  void zero_grad();
  std::size_t parameter_count();

  /// Propagates the execution precision to every matmul-backed layer
  /// (convs, FiLM/time projections, attention projections incl. LoRA
  /// bases). The class-embedding lookup has no matmul and is unaffected.
  void set_precision(nn::Precision p);
  /// (Re)runs absmax calibration on all quantizable weights — called at
  /// checkpoint-load time so int8 scales are recorded per weight.
  void refresh_quantized();
  /// Invalidates the int8 caches after the weights change (training).
  void invalidate_quantized();

 private:
  template <class Fn>
  void for_each_quantizable(Fn&& fn);
  nn::Tensor embed(const std::vector<float>& timesteps,
                   const std::vector<int>& class_ids);
  void embed_backward(const nn::Tensor& grad_temb);

  UNetConfig config_;
  // Conditioning.
  nn::Linear time_mlp1_;
  nn::SiLU time_act_;
  nn::Linear time_mlp2_;
  nn::Embedding class_embedding_;
  // Encoder.
  nn::Conv1d conv_in_;
  ResBlock res_d1_;
  nn::Conv1d down1_;
  ResBlock res_d2_;
  nn::Conv1d down2_;
  // Middle.
  ResBlock res_m1_;
  std::unique_ptr<nn::SelfAttention1d> attention_;
  ResBlock res_m2_;
  // Decoder.
  nn::Conv1d up_conv2_;
  ResBlock res_u2_;
  nn::Conv1d up_conv1_;
  ResBlock res_u1_;
  nn::GroupNorm norm_out_;
  nn::SiLU act_out_;
  nn::Conv1d conv_out_;
  // Forward cache.
  std::size_t n_ = 0, l_ = 0;
  nn::Tensor temb_;
  nn::Tensor sin_emb_;
  bool has_control_ = false;
};

/// Nearest-neighbour 2x upsampling along L and its adjoint.
nn::Tensor upsample2x(const nn::Tensor& x);
nn::Tensor upsample2x_backward(const nn::Tensor& grad);

/// Channel concat/split helpers for skip connections.
nn::Tensor concat_channels(const nn::Tensor& a, const nn::Tensor& b);
void split_channels(const nn::Tensor& grad, std::size_t ca, nn::Tensor& ga,
                    nn::Tensor& gb);

}  // namespace repro::diffusion
