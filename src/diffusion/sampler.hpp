// Reverse-process samplers.
//
// DDPM (Ho et al. 2020): full ancestral sampling, one network evaluation
// per schedule step. DDIM (Song et al. 2021): deterministic (eta = 0) or
// stochastic subsequence sampling with far fewer steps — the standard
// answer to the paper's "generative speed" open challenge (§4), measured
// by bench/speed_sampling.
#pragma once

#include <functional>

#include "common/rng.hpp"
#include "diffusion/schedule.hpp"

namespace repro::diffusion {

/// Noise predictor: eps = f(x_t, t). Guidance/conditioning/control are
/// composed inside the callable by the pipeline.
using EpsFn = std::function<nn::Tensor(const nn::Tensor& x, std::size_t t)>;

/// The decreasing timestep subsequence DDIM visits from `t0` down to 0
/// with `steps` entries — exposed so the distilled sampler (distill.hpp)
/// fits its student schedules against the exact teacher trajectory.
std::vector<std::size_t> ddim_tau_schedule(std::size_t t0, std::size_t steps);

/// Full DDPM ancestral sampling from pure noise; `shape` is the latent
/// shape [N, C, L].
nn::Tensor ddpm_sample(const EpsFn& eps_fn, const NoiseSchedule& schedule,
                       const std::vector<std::size_t>& shape, Rng& rng);

/// DDIM sampling over `steps` evenly spaced timesteps. eta = 0 gives the
/// deterministic sampler; eta = 1 matches DDPM variance.
nn::Tensor ddim_sample(const EpsFn& eps_fn, const NoiseSchedule& schedule,
                       const std::vector<std::size_t>& shape,
                       std::size_t steps, float eta, Rng& rng);

/// Per-sample-stream variants backing the serving layer's determinism
/// contract: sample b of the batch draws ALL of its noise (initial x_T
/// and any per-step noise) from `rngs[b]`, in the exact order a
/// single-sample call would consume it. Consequently regrouping flows
/// across batched calls — one [4] call vs four [1] calls with the same
/// four streams — yields bit-identical samples, which is what lets the
/// batch scheduler coalesce independently seeded requests into one model
/// call. Requires rngs.size() == shape[0].
nn::Tensor ddpm_sample(const EpsFn& eps_fn, const NoiseSchedule& schedule,
                       const std::vector<std::size_t>& shape,
                       std::vector<Rng>& rngs);
nn::Tensor ddim_sample(const EpsFn& eps_fn, const NoiseSchedule& schedule,
                       const std::vector<std::size_t>& shape,
                       std::size_t steps, float eta, std::vector<Rng>& rngs);

/// Partial-trajectory variants (SDEdit-style image guidance): start from
/// a given x_{t0} — typically q_sample(guide, t0) — and denoise from
/// timestep `t0` down to 0. `steps` counts the DDIM evaluations spent on
/// the [0, t0] stretch.
nn::Tensor ddpm_sample_from(const EpsFn& eps_fn, const NoiseSchedule& schedule,
                            nn::Tensor x_t0, std::size_t t0, Rng& rng);
nn::Tensor ddim_sample_from(const EpsFn& eps_fn, const NoiseSchedule& schedule,
                            nn::Tensor x_t0, std::size_t t0,
                            std::size_t steps, float eta, Rng& rng);

/// Per-sample-stream partial-trajectory variants (see above).
nn::Tensor ddpm_sample_from(const EpsFn& eps_fn, const NoiseSchedule& schedule,
                            nn::Tensor x_t0, std::size_t t0,
                            std::vector<Rng>& rngs);
nn::Tensor ddim_sample_from(const EpsFn& eps_fn, const NoiseSchedule& schedule,
                            nn::Tensor x_t0, std::size_t t0,
                            std::size_t steps, float eta,
                            std::vector<Rng>& rngs);

/// Diffusion inpainting (RePaint-style, without resampling): elements
/// where `known_mask` is nonzero are clamped to the appropriately noised
/// `known_x0` after every reverse step, so the model only synthesizes
/// the unknown elements — conditioned on the known ones through the
/// denoiser's receptive field. Backs the paper's §4 "traffic deblurring"
/// agenda item (restoring missing/corrupted parts of a trace).
nn::Tensor ddim_inpaint(const EpsFn& eps_fn, const NoiseSchedule& schedule,
                        const nn::Tensor& known_x0,
                        const std::vector<std::uint8_t>& known_mask,
                        std::size_t steps, float eta, Rng& rng);

}  // namespace repro::diffusion
