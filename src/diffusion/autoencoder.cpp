#include "diffusion/autoencoder.hpp"

#include <algorithm>
#include <utility>

#include "common/telemetry/trace.hpp"
#include "nn/loss.hpp"

namespace repro::diffusion {

PacketAutoencoder::PacketAutoencoder(const AutoencoderConfig& config, Rng& rng)
    : config_(config),
      weights_(column_weights()),
      enc1_(config.input_dim, config.hidden_dim, rng, true, "ae.enc1"),
      enc2_(config.hidden_dim, config.latent_dim, rng, true, "ae.enc2"),
      dec1_(config.latent_dim, config.hidden_dim, rng, true, "ae.dec1"),
      dec2_(config.hidden_dim, config.input_dim, rng, true, "ae.dec2") {}

std::vector<float> PacketAutoencoder::column_weights() const {
  std::vector<float> weights(config_.input_dim, 1.0f);
  if (!config_.region_weighting ||
      config_.input_dim != nprint::kBitsPerPacket) {
    return weights;
  }
  // Equal total weight per header *field* (option areas count as one
  // field per 32-bit word): under a plain MSE, a 6-bit field like DSCP
  // contributes 0.6% of the loss and is the first thing a narrow
  // bottleneck sacrifices, yet such small fields (DSCP, TTL, protocol,
  // flags) carry most of the class signal. Weights are normalized to
  // mean 1 so loss magnitudes stay comparable.
  const auto& spans = nprint::field_spans();
  const float per_span = static_cast<float>(nprint::kBitsPerPacket) /
                         static_cast<float>(spans.size());
  for (const auto& span : spans) {
    const float w = per_span / static_cast<float>(span.bits);
    for (std::size_t i = 0; i < span.bits; ++i) {
      weights[span.offset + i] = w;
    }
  }
  return weights;
}

nn::Tensor PacketAutoencoder::encode(const nn::Tensor& rows) {
  return enc2_.forward(enc_act_.forward(enc1_.forward(rows)));
}

nn::Tensor PacketAutoencoder::decode(const nn::Tensor& latents) {
  return dec2_.forward(dec_act_.forward(dec1_.forward(latents)));
}

float PacketAutoencoder::train_step(const nn::Tensor& rows,
                                    nn::Adam& optimizer) {
  for (nn::Parameter* p : parameters()) p->zero_grad();
  nn::Tensor recon = decode(encode(rows));
  // Column-weighted MSE: loss = mean(w_j * (recon - x)^2).
  const std::size_t n = rows.dim(0), d = rows.dim(1);
  nn::Tensor grad(rows.shape());
  double loss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      const float diff = recon.at2(i, j) - rows.at2(i, j);
      const float w = weights_[j];
      loss += static_cast<double>(w) * diff * diff;
      grad.at2(i, j) = 2.0f * w * diff / static_cast<float>(n * d);
    }
  }
  nn::Tensor g = dec1_.backward(dec_act_.backward(dec2_.backward(grad)));
  enc1_.backward(enc_act_.backward(enc2_.backward(g)));
  optimizer.step();
  return static_cast<float>(loss / static_cast<double>(n * d));
}

float PacketAutoencoder::train(const nn::Tensor& rows, std::size_t epochs,
                               std::size_t batch_size, float lr, Rng& rng) {
  REPRO_SPAN("diffusion.ae.train");
  const std::size_t n = rows.dim(0);
  const std::size_t d = rows.dim(1);
  nn::Adam::Config cfg;
  cfg.lr = lr;
  nn::Adam optimizer(parameters(), cfg);
  float last_epoch_loss = 0.0f;
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    const auto perm = rng.permutation(n);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < n; start += batch_size) {
      const std::size_t count = std::min(batch_size, n - start);
      nn::Tensor batch({count, d});
      for (std::size_t i = 0; i < count; ++i) {
        const float* src = rows.data() + perm[start + i] * d;
        std::copy(src, src + d, batch.data() + i * d);
      }
      epoch_loss += train_step(batch, optimizer);
      ++batches;
    }
    last_epoch_loss = static_cast<float>(
        epoch_loss / static_cast<double>(std::max<std::size_t>(batches, 1)));
    telemetry::count("diffusion.ae.epochs");
    telemetry::observe("diffusion.ae.epoch_loss", last_epoch_loss);
  }
  return last_epoch_loss;
}

float PacketAutoencoder::reconstruction_loss(const nn::Tensor& rows) {
  nn::Tensor recon = decode(encode(rows));
  nn::Tensor grad;
  return nn::mse_loss(recon, rows, grad);
}

std::vector<nn::Parameter*> PacketAutoencoder::parameters() {
  std::vector<nn::Parameter*> params;
  for (nn::Linear* layer : {&enc1_, &enc2_, &dec1_, &dec2_}) {
    for (nn::Parameter* p : layer->parameters()) params.push_back(p);
  }
  return params;
}

nn::Tensor PacketAutoencoder::encode_matrix(const nprint::Matrix& matrix) {
  REPRO_SPAN("diffusion.ae.encode_matrix");
  const std::size_t l = matrix.rows();
  nn::Tensor rows({l, config_.input_dim});
  std::copy(matrix.data().begin(), matrix.data().end(), rows.data());
  nn::Tensor latents = encode(rows);  // [L, latent]
  nn::Tensor out({1, config_.latent_dim, l});
  for (std::size_t t = 0; t < l; ++t) {
    for (std::size_t c = 0; c < config_.latent_dim; ++c) {
      out.at3(0, c, t) = latents.at2(t, c);
    }
  }
  return out;
}

nprint::Matrix PacketAutoencoder::decode_matrix(const nn::Tensor& latent) {
  return std::move(decode_matrices(latent).front());
}

std::vector<nprint::Matrix> PacketAutoencoder::decode_matrices(
    const nn::Tensor& latents) {
  REPRO_SPAN("diffusion.ae.decode_matrix");
  const std::size_t n = latents.dim(0);
  const std::size_t l = latents.dim(2);
  nn::Tensor rows({n * l, config_.latent_dim});
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t t = 0; t < l; ++t) {
      for (std::size_t c = 0; c < config_.latent_dim; ++c) {
        rows.at2(b * l + t, c) = latents.at3(b, c, t);
      }
    }
  }
  nn::Tensor recon = decode(rows);  // [N*L, input_dim]
  std::vector<nprint::Matrix> out;
  out.reserve(n);
  const std::size_t per = l * config_.input_dim;
  for (std::size_t b = 0; b < n; ++b) {
    nprint::Matrix matrix(l);
    std::copy(recon.data() + b * per, recon.data() + (b + 1) * per,
              matrix.data().begin());
    out.push_back(std::move(matrix));
  }
  return out;
}

}  // namespace repro::diffusion
