// Noise schedules for denoising diffusion (Ho et al. 2020; Nichol &
// Dhariwal 2021 cosine variant). Precomputes every per-timestep constant
// the trainers and samplers need.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "nn/tensor.hpp"

namespace repro::diffusion {

enum class ScheduleKind { kLinear, kCosine };

class NoiseSchedule {
 public:
  NoiseSchedule(std::size_t timesteps, ScheduleKind kind,
                float beta_start = 1e-4f, float beta_end = 2e-2f);

  std::size_t timesteps() const noexcept { return betas_.size(); }
  float beta(std::size_t t) const noexcept { return betas_[t]; }
  float alpha(std::size_t t) const noexcept { return alphas_[t]; }
  float alpha_bar(std::size_t t) const noexcept { return alpha_bars_[t]; }
  float sqrt_alpha_bar(std::size_t t) const noexcept {
    return sqrt_alpha_bars_[t];
  }
  float sqrt_one_minus_alpha_bar(std::size_t t) const noexcept {
    return sqrt_one_minus_alpha_bars_[t];
  }
  /// Variance of the DDPM posterior q(x_{t-1} | x_t, x_0).
  float posterior_variance(std::size_t t) const noexcept {
    return posterior_variance_[t];
  }

  /// q(x_t | x_0): x_t = sqrt(a_bar_t) x0 + sqrt(1 - a_bar_t) eps.
  /// `noise` receives the sampled eps (same shape as x0).
  nn::Tensor q_sample(const nn::Tensor& x0, std::size_t t, Rng& rng,
                      nn::Tensor& noise) const;

  /// Reconstructs x0 from x_t and predicted noise.
  nn::Tensor predict_x0(const nn::Tensor& xt, const nn::Tensor& eps,
                        std::size_t t) const;

 private:
  std::vector<float> betas_;
  std::vector<float> alphas_;
  std::vector<float> alpha_bars_;
  std::vector<float> sqrt_alpha_bars_;
  std::vector<float> sqrt_one_minus_alpha_bars_;
  std::vector<float> posterior_variance_;
};

}  // namespace repro::diffusion
