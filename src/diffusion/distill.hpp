// Progressive sampler distillation (Salimans & Ho 2022, scaled to the
// student-schedule form): instead of training a second UNet, each
// distillation round halves the DDIM timestep subsequence and fits one
// scalar eps-gain per remaining step so that a single gained DDIM
// update reproduces the teacher's TWO updates on a calibration batch.
//
// Why this works here: with eta = 0 the DDIM update is affine in eps,
//
//   x' = c1 * x + c2 * eps,   c1 = sqrt(abar_prev / abar_t),
//   c2 = sqrt(1 - abar_prev) - sqrt(abar_prev) * sqrt(1 - abar_t)
//                              / sqrt(abar_t),
//
// so the best one-step imitation of a two-step teacher given the
// network's own eps prediction is a least-squares gain g on eps —
// solvable in closed form from the recorded teacher trajectory, no
// gradient steps and no second model. Halving 20 -> 10 -> 5 -> 3 keeps
// each student within reach of its teacher (the progressive-distillation
// argument), and the fitted stages serialize into the pipeline
// checkpoint (.meta, TDM3 section).
//
// Determinism: the distilled trajectory is deterministic (no per-step
// noise), every update is elementwise with fixed kStepGrain chunks, and
// the fit accumulates its dot products serially — so distilled samples
// are bit-identical at any REPRO_THREADS, and fitting is reproducible.
#pragma once

#include <cstddef>
#include <vector>

#include "diffusion/sampler.hpp"

namespace repro::diffusion {

/// One few-step sampler: the timestep subsequence it visits (descending,
/// taus.front() is the start timestep) plus the fitted per-step eps
/// gains (gains.size() == taus.size(); 1.0 everywhere = plain DDIM).
struct DistilledStage {
  std::vector<std::size_t> taus;
  std::vector<float> gains;

  std::size_t steps() const noexcept { return taus.size(); }
  std::size_t t0() const noexcept { return taus.empty() ? 0 : taus.front(); }
};

/// Lookup key for a pipeline's stored stages: a stage is only valid for
/// the (class, start-timestep, step-count) combination it was fitted on.
struct DistillKey {
  int class_id = 0;
  std::size_t t0 = 0;
  std::size_t steps = 0;

  friend bool operator<(const DistillKey& a, const DistillKey& b) {
    if (a.class_id != b.class_id) return a.class_id < b.class_id;
    if (a.t0 != b.t0) return a.t0 < b.t0;
    return a.steps < b.steps;
  }
};

/// Plain-DDIM stage over ddim_tau_schedule(t0, steps) with unit gains —
/// the round-0 teacher.
DistilledStage teacher_stage(std::size_t t0, std::size_t steps);

/// Fit diagnostics for one halving round.
struct StageFit {
  DistilledStage stage;
  /// Mean squared one-step error vs the teacher's two-step states over
  /// the calibration batch, before (unit gains) and after the fit.
  float mse_plain = 0.0f;
  float mse_fitted = 0.0f;
};

/// One progressive round: halves `teacher`'s schedule (every other tau,
/// ceil(steps/2) survive) and fits the per-step gains in closed form
/// against the teacher's recorded trajectory from `calib_x` (a latent
/// batch [B, C, L] at the stage's start timestep).
StageFit distill_halve(const EpsFn& eps_fn, const NoiseSchedule& schedule,
                       const DistilledStage& teacher,
                       const nn::Tensor& calib_x);

/// Runs `stage` from `x` (which must sit at timestep stage.t0()) down to
/// the clean latent. Deterministic — no noise source needed.
nn::Tensor distilled_sample_from(const EpsFn& eps_fn,
                                 const NoiseSchedule& schedule, nn::Tensor x,
                                 const DistilledStage& stage);

}  // namespace repro::diffusion
