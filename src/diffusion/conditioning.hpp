// Text-prompt conditioning ("text-to-traffic").
//
// The paper deliberately encodes class prompts as opaque tokens
// ("'Type-0' for 'Netflix'") so the base model's original word embeddings
// do not interfere (§3.1) — i.e. the text encoder degenerates to a learned
// class-embedding lookup, which is what PromptCodec + the U-Net's
// embedding table implement. The codec accepts both encoded prompts
// ("Type-3") and application names ("twitch"), and reserves a null id for
// classifier-free guidance's unconditional branch.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace repro::diffusion {

class PromptCodec {
 public:
  /// `class_names[i]` is the plain-text name of class i.
  explicit PromptCodec(std::vector<std::string> class_names);

  std::size_t num_classes() const noexcept { return names_.size(); }

  /// Id used for the unconditional (empty-prompt) branch.
  int null_id() const noexcept { return static_cast<int>(names_.size()); }

  /// "Type-3" for class 3 — the encoded prompt fed to the model.
  std::string encode_prompt(int class_id) const;

  /// Parses "Type-k", "type-k", a class name, or "" (-> null id).
  /// Returns nullopt for unrecognized prompts.
  std::optional<int> parse_prompt(const std::string& prompt) const;

  const std::string& class_name(int class_id) const;

 private:
  std::vector<std::string> names_;
};

}  // namespace repro::diffusion
