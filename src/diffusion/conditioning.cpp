#include "diffusion/conditioning.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace repro::diffusion {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

PromptCodec::PromptCodec(std::vector<std::string> class_names)
    : names_(std::move(class_names)) {
  if (names_.empty()) {
    throw std::invalid_argument("PromptCodec: need at least one class");
  }
}

std::string PromptCodec::encode_prompt(int class_id) const {
  if (class_id < 0 || static_cast<std::size_t>(class_id) >= names_.size()) {
    throw std::out_of_range("PromptCodec::encode_prompt: bad class id");
  }
  return "Type-" + std::to_string(class_id);
}

std::optional<int> PromptCodec::parse_prompt(const std::string& prompt) const {
  const std::string p = lower(prompt);
  if (p.empty()) return null_id();
  if (p.rfind("type-", 0) == 0) {
    try {
      const int id = std::stoi(p.substr(5));
      if (id >= 0 && static_cast<std::size_t>(id) < names_.size()) return id;
    } catch (const std::exception&) {
    }
    return std::nullopt;
  }
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (lower(names_[i]) == p) return static_cast<int>(i);
  }
  return std::nullopt;
}

const std::string& PromptCodec::class_name(int class_id) const {
  if (class_id < 0 || static_cast<std::size_t>(class_id) >= names_.size()) {
    throw std::out_of_range("PromptCodec::class_name: bad class id");
  }
  return names_[static_cast<std::size_t>(class_id)];
}

}  // namespace repro::diffusion
