#include "diffusion/constraint.hpp"

#include <algorithm>

namespace repro::diffusion {
namespace {

using nprint::kBitsPerPacket;
using nprint::kIcmpBits;
using nprint::kIcmpOffset;
using nprint::kIpv4Offset;
using nprint::kTcpBits;
using nprint::kTcpOffset;
using nprint::kUdpBits;
using nprint::kUdpOffset;

struct RegionSpan {
  std::size_t offset;
  std::size_t fixed_bits;  // non-option portion that must be materialized
  std::size_t total_bits;
};

RegionSpan region_for(net::IpProto proto) {
  switch (proto) {
    case net::IpProto::kTcp:
      return {kTcpOffset, 160, kTcpBits};
    case net::IpProto::kUdp:
      return {kUdpOffset, 64, kUdpBits};
    case net::IpProto::kIcmp:
      return {kIcmpOffset, 64, kIcmpBits};
  }
  return {kTcpOffset, 160, kTcpBits};
}

void vacate(float* row, std::size_t offset, std::size_t bits) {
  for (std::size_t i = 0; i < bits; ++i) row[offset + i] = -1.0f;
}

void materialize(float* row, std::size_t offset, std::size_t bits) {
  for (std::size_t i = 0; i < bits; ++i) {
    if (row[offset + i] < -0.5f) row[offset + i] = 0.0f;
  }
}

void write_field(float* row, std::size_t offset, std::uint32_t value,
                 std::size_t bits) {
  for (std::size_t i = 0; i < bits; ++i) {
    row[offset + i] =
        (value >> (bits - 1 - i)) & 1 ? 1.0f : 0.0f;
  }
}

net::IpProto row_protocol(const float* row) {
  auto occupancy = [&](std::size_t offset, std::size_t bits) {
    std::size_t n = 0;
    for (std::size_t i = 0; i < bits; ++i) {
      if (row[offset + i] > -0.5f) ++n;
    }
    return static_cast<double>(n) / static_cast<double>(bits);
  };
  const double tcp = occupancy(kTcpOffset, kTcpBits);
  const double udp = occupancy(kUdpOffset, kUdpBits);
  const double icmp = occupancy(kIcmpOffset, kIcmpBits);
  if (tcp >= udp && tcp >= icmp) return net::IpProto::kTcp;
  if (udp >= icmp) return net::IpProto::kUdp;
  return net::IpProto::kIcmp;
}

}  // namespace

ProtocolTemplate ProtocolTemplate::uniform(net::IpProto proto,
                                           std::size_t packets) {
  ProtocolTemplate t;
  t.per_packet.assign(packets, proto);
  return t;
}

ProtocolTemplate ProtocolTemplate::from_flow(const net::Flow& flow,
                                             std::size_t packets) {
  ProtocolTemplate t;
  const net::IpProto dominant =
      flow.packets.empty() ? net::IpProto::kTcp : flow.dominant_protocol();
  t.per_packet.reserve(packets);
  for (std::size_t i = 0; i < packets; ++i) {
    t.per_packet.push_back(i < flow.packets.size()
                               ? flow.packets[i].ip.protocol
                               : dominant);
  }
  return t;
}

void project_to_template(nprint::Matrix& matrix,
                         const ProtocolTemplate& target) {
  const std::size_t rows =
      std::min(matrix.rows(), target.per_packet.size());
  for (std::size_t r = 0; r < rows; ++r) {
    if (matrix.row_vacant(r)) continue;
    float* row = matrix.data().data() + r * kBitsPerPacket;
    const net::IpProto proto = target.per_packet[r];
    for (net::IpProto other :
         {net::IpProto::kTcp, net::IpProto::kUdp, net::IpProto::kIcmp}) {
      if (other == proto) continue;
      const RegionSpan span = region_for(other);
      vacate(row, span.offset, span.total_bits);
    }
    const RegionSpan span = region_for(proto);
    materialize(row, span.offset, span.fixed_bits);
    // IPv4 fixed header must be present and its protocol field correct.
    materialize(row, kIpv4Offset, 160);
    write_field(row, kIpv4Offset + 72,
                static_cast<std::uint32_t>(proto), 8);
    // Version = 4, IHL = 5 — keeps the decoded header parseable.
    write_field(row, kIpv4Offset, 4, 4);
    write_field(row, kIpv4Offset + 4, 5, 4);
  }
}

namespace {

/// Endpoint harmonization for UDP-dominant generated flows: every packet
/// shares the first packet's endpoint pair, with per-packet direction
/// taken from the template — removing the per-row address jitter that
/// otherwise fragments a generated flow into single-packet 5-tuples.
net::Flow harmonize_udp_endpoints(net::Flow out,
                                  const net::Flow& template_flow) {
  const net::Packet& first = out.packets.front();
  const std::uint32_t client_addr = first.ip.src_addr;
  const std::uint32_t server_addr = first.ip.dst_addr;
  std::uint16_t client_port = 40000, server_port = 443;
  if (first.udp) {
    client_port = first.udp->src_port;
    server_port = first.udp->dst_port;
  }
  const std::uint32_t template_client = template_flow.packets[0].ip.src_addr;
  for (std::size_t i = 0; i < out.packets.size(); ++i) {
    net::Packet& pkt = out.packets[i];
    if (!pkt.udp) continue;
    const net::Packet& tmpl =
        template_flow.packets[std::min(i, template_flow.packets.size() - 1)];
    const bool from_client = tmpl.ip.src_addr == template_client;
    pkt.ip.src_addr = from_client ? client_addr : server_addr;
    pkt.ip.dst_addr = from_client ? server_addr : client_addr;
    pkt.udp->src_port = from_client ? client_port : server_port;
    pkt.udp->dst_port = from_client ? server_port : client_port;
  }
  if (!out.packets.empty()) {
    out.key = net::FlowKey::from_packet(out.packets.front()).canonical();
  }
  return out;
}

}  // namespace

net::Flow enforce_tcp_state(const net::Flow& generated,
                            const net::Flow& template_flow) {
  if (generated.packets.empty() || template_flow.packets.empty()) {
    return generated;
  }
  if (template_flow.dominant_protocol() == net::IpProto::kUdp) {
    return harmonize_udp_endpoints(generated, template_flow);
  }
  if (template_flow.dominant_protocol() != net::IpProto::kTcp) {
    return generated;
  }
  net::Flow out = generated;

  // Self-consistent endpoints from the first generated packet.
  const net::Packet& first = generated.packets.front();
  const std::uint32_t client_addr = first.ip.src_addr;
  const std::uint32_t server_addr = first.ip.dst_addr;
  std::uint16_t client_port = 49152, server_port = 443;
  if (first.tcp) {
    client_port = first.tcp->src_port;
    server_port = first.tcp->dst_port;
  }

  // Generated initial sequence numbers (fall back to header bits of the
  // first packets so the ISNs still come from the model).
  std::uint32_t client_seq =
      first.tcp ? first.tcp->seq : 0x10000001;
  std::uint32_t server_seq = client_seq ^ 0x5A5A5A5A;
  const std::uint32_t template_client = template_flow.packets[0].ip.src_addr;
  for (const auto& pkt : generated.packets) {
    if (pkt.tcp && pkt.ip.src_addr != client_addr) {
      server_seq = pkt.tcp->seq;
      break;
    }
  }

  std::uint32_t client_next = client_seq;
  std::uint32_t server_next = server_seq;
  bool client_fin = false, server_fin = false;
  for (std::size_t i = 0; i < out.packets.size(); ++i) {
    net::Packet& pkt = out.packets[i];
    if (!pkt.tcp) continue;
    // Direction and flags follow the template row (its own dominant
    // pattern continues past its end).
    const net::Packet& tmpl =
        template_flow.packets[std::min(i, template_flow.packets.size() - 1)];
    const bool from_client = tmpl.ip.src_addr == template_client;
    const bool tmpl_tcp = tmpl.tcp.has_value();
    bool syn = tmpl_tcp && tmpl.tcp->syn;
    bool fin = tmpl_tcp && tmpl.tcp->fin;

    // A second FIN from the same side (template repetition) degrades to
    // a plain ACK so sequence accounting stays valid; SYNs never appear
    // mid-stream.
    bool& fin_flag = from_client ? client_fin : server_fin;
    if (fin && fin_flag) fin = false;
    if (syn && i >= 3) syn = false;

    pkt.ip.src_addr = from_client ? client_addr : server_addr;
    pkt.ip.dst_addr = from_client ? server_addr : client_addr;
    pkt.tcp->src_port = from_client ? client_port : server_port;
    pkt.tcp->dst_port = from_client ? server_port : client_port;
    pkt.tcp->syn = syn;
    pkt.tcp->fin = fin;
    pkt.tcp->rst = false;
    // Everything after the bare opening SYN acks the peer.
    pkt.tcp->ack_flag = i > 0;
    if (i == 0) {
      pkt.tcp->syn = true;
      pkt.tcp->fin = false;
    }
    if (pkt.tcp->syn) pkt.payload.clear();

    std::uint32_t& self_next = from_client ? client_next : server_next;
    const std::uint32_t peer_next = from_client ? server_next : client_next;
    pkt.tcp->seq = self_next;
    pkt.tcp->ack = pkt.tcp->ack_flag ? peer_next : 0;
    self_next += static_cast<std::uint32_t>(pkt.payload.size()) +
                 (pkt.tcp->syn ? 1 : 0) + (pkt.tcp->fin ? 1 : 0);
    if (pkt.tcp->fin) fin_flag = true;
    pkt.ip.total_length = static_cast<std::uint16_t>(pkt.datagram_length());
  }
  if (!out.packets.empty()) {
    out.key = net::FlowKey::from_packet(out.packets.front()).canonical();
  }
  return out;
}

double template_compliance(const nprint::Matrix& matrix,
                           const ProtocolTemplate& target) {
  const std::size_t rows =
      std::min(matrix.rows(), target.per_packet.size());
  std::size_t active = 0, matching = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    if (matrix.row_vacant(r)) continue;
    ++active;
    const float* row = matrix.data().data() + r * kBitsPerPacket;
    if (row_protocol(row) == target.per_packet[r]) ++matching;
  }
  if (active == 0) return 0.0;
  return static_cast<double>(matching) / static_cast<double>(active);
}

}  // namespace repro::diffusion
