#include "diffusion/controlnet.hpp"

namespace repro::diffusion {

ControlNetBranch::ControlNetBranch(const UNetConfig& config, Rng& rng)
    : config_(config),
      time_mlp1_(config.temb_dim, config.temb_dim, rng, true, "ctrl.time1"),
      time_mlp2_(config.temb_dim, config.temb_dim, rng, true, "ctrl.time2"),
      class_embedding_(config.num_classes + 1, config.temb_dim, rng,
                       "ctrl.class_embedding"),
      hint_conv1_(config.hint_channels, config.base_channels, 3, rng, 1,
                  SIZE_MAX, "ctrl.hint1"),
      hint_conv2_(config.base_channels, config.base_channels, 3, rng, 1,
                  SIZE_MAX, "ctrl.hint2"),
      conv_in_(config.in_channels, config.base_channels, 3, rng, 1, SIZE_MAX,
               "ctrl.conv_in"),
      res_d1_(config.base_channels, config.base_channels, config.temb_dim,
              config.groups, rng, "ctrl.res_d1"),
      down1_(config.base_channels, config.base_channels * 2, 3, rng, 2,
             SIZE_MAX, "ctrl.down1"),
      res_d2_(config.base_channels * 2, config.base_channels * 2,
              config.temb_dim, config.groups, rng, "ctrl.res_d2"),
      down2_(config.base_channels * 2, config.base_channels * 2, 3, rng, 2,
             SIZE_MAX, "ctrl.down2"),
      res_m_(config.base_channels * 2, config.base_channels * 2,
             config.temb_dim, config.groups, rng, "ctrl.res_m"),
      zero1_(config.base_channels, config.base_channels, 1, rng, 1, 0,
             "ctrl.zero1"),
      zero2_(config.base_channels * 2, config.base_channels * 2, 1, rng, 1, 0,
             "ctrl.zero2"),
      zero_m_(config.base_channels * 2, config.base_channels * 2, 1, rng, 1,
              0, "ctrl.zero_m") {
  // The defining ControlNet property: fusion starts as a strict no-op.
  zero1_.zero_init();
  zero2_.zero_init();
  zero_m_.zero_init();
}

ControlResiduals ControlNetBranch::forward(const nn::Tensor& x,
                                           const std::vector<float>& timesteps,
                                           const std::vector<int>& class_ids,
                                           const nn::Tensor& hint) {
  n_ = x.dim(0);
  sin_emb_ = nn::sinusoidal_embedding(timesteps, config_.temb_dim);
  nn::Tensor temb =
      time_mlp2_.forward(time_act_.forward(time_mlp1_.forward(sin_emb_)));
  nn::Tensor ids({class_ids.size()});
  for (std::size_t i = 0; i < class_ids.size(); ++i) {
    ids[i] = static_cast<float>(class_ids[i]);
  }
  temb.add(class_embedding_.forward(ids));

  nn::Tensor h = conv_in_.forward(x);
  h.add(hint_conv2_.forward(hint_act_.forward(hint_conv1_.forward(hint))));
  nn::Tensor d1 = res_d1_.forward(h, temb);
  nn::Tensor d2 = res_d2_.forward(down1_.forward(d1), temb);
  nn::Tensor m = res_m_.forward(down2_.forward(d2), temb);

  ControlResiduals out;
  out.skip1 = zero1_.forward(d1);
  out.skip2 = zero2_.forward(d2);
  out.mid = zero_m_.forward(m);
  return out;
}

void ControlNetBranch::backward(const ControlResiduals& grad_residuals) {
  nn::Tensor grad_temb({n_, config_.temb_dim});

  nn::Tensor gm = zero_m_.backward(grad_residuals.mid);
  nn::Tensor gd2 = down2_.backward(res_m_.backward(gm, grad_temb));
  gd2.add(zero2_.backward(grad_residuals.skip2));
  nn::Tensor gd1 = down1_.backward(res_d2_.backward(gd2, grad_temb));
  gd1.add(zero1_.backward(grad_residuals.skip1));
  nn::Tensor gh = res_d1_.backward(gd1, grad_temb);
  conv_in_.backward(gh);
  hint_conv1_.backward(hint_act_.backward(hint_conv2_.backward(gh)));

  class_embedding_.backward(grad_temb);
  time_mlp1_.backward(time_act_.backward(time_mlp2_.backward(grad_temb)));
}

std::vector<nn::Parameter*> ControlNetBranch::parameters() {
  std::vector<nn::Parameter*> params;
  auto append = [&params](std::vector<nn::Parameter*> more) {
    params.insert(params.end(), more.begin(), more.end());
  };
  append(time_mlp1_.parameters());
  append(time_mlp2_.parameters());
  append(class_embedding_.parameters());
  append(hint_conv1_.parameters());
  append(hint_conv2_.parameters());
  append(conv_in_.parameters());
  append(res_d1_.parameters());
  append(down1_.parameters());
  append(res_d2_.parameters());
  append(down2_.parameters());
  append(res_m_.parameters());
  append(zero1_.parameters());
  append(zero2_.parameters());
  append(zero_m_.parameters());
  return params;
}

void ControlNetBranch::zero_grad() {
  for (nn::Parameter* p : parameters()) p->zero_grad();
}

nn::Tensor protocol_hint(const net::Flow& flow, std::size_t packets) {
  nn::Tensor hint({1, kHintChannels, packets});
  const net::IpProto dominant =
      flow.packets.empty() ? net::IpProto::kTcp : flow.dominant_protocol();
  for (std::size_t t = 0; t < packets; ++t) {
    const net::IpProto proto =
        t < flow.packets.size() ? flow.packets[t].ip.protocol : dominant;
    std::size_t channel = 0;
    switch (proto) {
      case net::IpProto::kTcp:
        channel = 0;
        break;
      case net::IpProto::kUdp:
        channel = 1;
        break;
      case net::IpProto::kIcmp:
        channel = 2;
        break;
    }
    hint.at3(0, channel, t) = 1.0f;
  }
  return hint;
}

template <class Fn>
void ControlNetBranch::for_each_quantizable(Fn&& fn) {
  fn(time_mlp1_);
  fn(time_mlp2_);
  fn(hint_conv1_);
  fn(hint_conv2_);
  fn(conv_in_);
  fn(res_d1_);
  fn(down1_);
  fn(res_d2_);
  fn(down2_);
  fn(res_m_);
  fn(zero1_);
  fn(zero2_);
  fn(zero_m_);
}

void ControlNetBranch::set_precision(nn::Precision p) {
  for_each_quantizable([p](auto& m) { m.set_precision(p); });
}

void ControlNetBranch::refresh_quantized() {
  for_each_quantizable([](auto& m) { m.refresh_quantized(); });
}

void ControlNetBranch::invalidate_quantized() {
  for_each_quantizable([](auto& m) { m.invalidate_quantized(); });
}

}  // namespace repro::diffusion
