// U-Net residual block with FiLM-style timestep/condition injection:
//
//   h = Conv(SiLU(GN(x)));  h += Linear(temb) broadcast over L;
//   h = Conv(SiLU(GN(h)));  y = h + skip(x)
//
// (skip is a 1x1 conv when the channel count changes). Not a plain
// Module because forward takes two inputs (x, temb) and backward yields
// two gradients.
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "nn/activation.hpp"
#include "nn/conv1d.hpp"
#include "nn/linear.hpp"
#include "nn/norm.hpp"

namespace repro::diffusion {

class ResBlock {
 public:
  ResBlock(std::size_t in_channels, std::size_t out_channels,
           std::size_t temb_dim, std::size_t groups, Rng& rng,
           const std::string& name);

  /// x: [N, Cin, L], temb: [N, temb_dim] -> [N, Cout, L].
  nn::Tensor forward(const nn::Tensor& x, const nn::Tensor& temb);

  /// Returns grad_x; accumulates the temb gradient into `grad_temb`
  /// (shape [N, temb_dim], must be pre-sized).
  nn::Tensor backward(const nn::Tensor& grad_out, nn::Tensor& grad_temb);

  std::vector<nn::Parameter*> parameters();
  void set_trainable(bool trainable) noexcept;

  /// Forwards the precision knob to the convs and the FiLM projection
  /// (module.hpp set_precision / refresh_quantized / invalidate_quantized).
  template <class Fn>
  void for_each_quantizable(Fn&& fn) {
    fn(conv1_);
    fn(temb_proj_);
    fn(conv2_);
    if (skip_) fn(*skip_);
  }
  void set_precision(nn::Precision p) {
    for_each_quantizable([p](nn::Module& m) { m.set_precision(p); });
  }
  void refresh_quantized() {
    for_each_quantizable([](nn::Module& m) { m.refresh_quantized(); });
  }
  void invalidate_quantized() {
    for_each_quantizable([](nn::Module& m) { m.invalidate_quantized(); });
  }

  std::size_t out_channels() const noexcept { return cout_; }

 private:
  std::size_t cin_, cout_;
  nn::GroupNorm norm1_;
  nn::SiLU act1_;
  nn::Conv1d conv1_;
  nn::Linear temb_proj_;
  nn::SiLU temb_act_;
  nn::GroupNorm norm2_;
  nn::SiLU act2_;
  nn::Conv1d conv2_;
  std::unique_ptr<nn::Conv1d> skip_;  // present iff cin != cout
  std::size_t last_len_ = 0;
};

}  // namespace repro::diffusion
