// Per-packet autoencoder: the "pre-trained autoencoder" stage of latent
// diffusion (Stable Diffusion's VAE, scaled down; see DESIGN.md §2).
//
// Each nprint packet row (1088 ternary features) is compressed to a small
// latent vector; the diffusion model then operates on the [latent, L]
// sequence instead of the raw [1088, L] image, "effectively balancing
// detail retention and complexity reduction" (§3.1). The encoder/decoder
// are shared across packet positions (weight tying over the packet axis).
#pragma once

#include "common/rng.hpp"
#include "nn/activation.hpp"
#include "nn/linear.hpp"
#include "nn/optimizer.hpp"
#include "nprint/codec.hpp"

namespace repro::diffusion {

struct AutoencoderConfig {
  std::size_t input_dim = nprint::kBitsPerPacket;
  std::size_t hidden_dim = 160;
  std::size_t latent_dim = 16;

  /// Weight the reconstruction loss so each header region (TCP 480 /
  /// UDP 64 / ICMP 64 / IPv4 480 bits) contributes equally. Without
  /// this, the small UDP/ICMP regions are <7% of the plain MSE and the
  /// encoder sacrifices their port/type bits first — exactly the fields
  /// the downstream classifier needs.
  bool region_weighting = true;
};

class PacketAutoencoder {
 public:
  PacketAutoencoder(const AutoencoderConfig& config, Rng& rng);

  const AutoencoderConfig& config() const noexcept { return config_; }

  /// rows: [R, input_dim] -> [R, latent_dim].
  nn::Tensor encode(const nn::Tensor& rows);
  /// latents: [R, latent_dim] -> [R, input_dim].
  nn::Tensor decode(const nn::Tensor& latents);

  /// One reconstruction-training step on a batch of rows; returns the MSE.
  float train_step(const nn::Tensor& rows, nn::Adam& optimizer);

  /// Trains on all rows for `epochs` passes with the given batch size;
  /// returns the final epoch's mean loss.
  float train(const nn::Tensor& rows, std::size_t epochs,
              std::size_t batch_size, float lr, Rng& rng);

  /// Mean reconstruction MSE over rows (no training).
  float reconstruction_loss(const nn::Tensor& rows);

  std::vector<nn::Parameter*> parameters();

  /// Encodes an nprint matrix to a [1, latent, L] tensor (and back).
  nn::Tensor encode_matrix(const nprint::Matrix& matrix);
  nprint::Matrix decode_matrix(const nn::Tensor& latent);

  /// Batched decode: [N, latent, L] -> N matrices through ONE decoder
  /// pass over all N*L packet rows (amortizes the per-call GEMM cost
  /// that dominates a row-wise decode loop).
  std::vector<nprint::Matrix> decode_matrices(const nn::Tensor& latents);

 private:
  /// Per-column loss weights (mean 1); all-ones when region_weighting is
  /// off or input_dim is not the nprint layout.
  std::vector<float> column_weights() const;

  AutoencoderConfig config_;
  std::vector<float> weights_;
  nn::Linear enc1_;
  nn::SiLU enc_act_;
  nn::Linear enc2_;
  nn::Linear dec1_;
  nn::SiLU dec_act_;
  nn::Linear dec2_;
};

}  // namespace repro::diffusion
