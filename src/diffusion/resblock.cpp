#include "diffusion/resblock.hpp"

namespace repro::diffusion {
namespace {

std::size_t pick_groups(std::size_t channels, std::size_t want) {
  std::size_t g = std::min(want, channels);
  while (g > 1 && channels % g != 0) --g;
  return g;
}

}  // namespace

ResBlock::ResBlock(std::size_t in_channels, std::size_t out_channels,
                   std::size_t temb_dim, std::size_t groups, Rng& rng,
                   const std::string& name)
    : cin_(in_channels),
      cout_(out_channels),
      norm1_(in_channels, pick_groups(in_channels, groups), name + ".norm1"),
      conv1_(in_channels, out_channels, 3, rng, 1, SIZE_MAX, name + ".conv1"),
      temb_proj_(temb_dim, out_channels, rng, true, name + ".temb"),
      norm2_(out_channels, pick_groups(out_channels, groups), name + ".norm2"),
      conv2_(out_channels, out_channels, 3, rng, 1, SIZE_MAX, name + ".conv2") {
  if (cin_ != cout_) {
    skip_ = std::make_unique<nn::Conv1d>(cin_, cout_, 1, rng, 1, 0,
                                         name + ".skip");
  }
}

nn::Tensor ResBlock::forward(const nn::Tensor& x, const nn::Tensor& temb) {
  last_len_ = x.dim(2);
  nn::Tensor h = conv1_.forward(act1_.forward(norm1_.forward(x)));
  // FiLM add: per-sample, per-channel bias from the embedding.
  nn::Tensor tproj = temb_proj_.forward(temb_act_.forward(temb));  // [N, Cout]
  const std::size_t n = h.dim(0), l = h.dim(2);
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t c = 0; c < cout_; ++c) {
      float* row = h.data() + (b * cout_ + c) * l;
      const float bias = tproj.at2(b, c);
      for (std::size_t t = 0; t < l; ++t) row[t] += bias;
    }
  }
  nn::Tensor out = conv2_.forward(act2_.forward(norm2_.forward(h)));
  if (skip_) {
    out.add(skip_->forward(x));
  } else {
    out.add(x);
  }
  return out;
}

nn::Tensor ResBlock::backward(const nn::Tensor& grad_out,
                              nn::Tensor& grad_temb) {
  const std::size_t n = grad_out.dim(0), l = grad_out.dim(2);
  // Through conv2 branch.
  nn::Tensor gh = norm2_.backward(act2_.backward(conv2_.backward(grad_out)));
  // FiLM add: channel-bias gradient reduces over L.
  nn::Tensor gproj({n, cout_});
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t c = 0; c < cout_; ++c) {
      const float* row = gh.data() + (b * cout_ + c) * l;
      double acc = 0.0;
      for (std::size_t t = 0; t < l; ++t) acc += row[t];
      gproj.at2(b, c) = static_cast<float>(acc);
    }
  }
  grad_temb.add(temb_act_.backward(temb_proj_.backward(gproj)));
  nn::Tensor gx = norm1_.backward(act1_.backward(conv1_.backward(gh)));
  // Residual path.
  if (skip_) {
    gx.add(skip_->backward(grad_out));
  } else {
    gx.add(grad_out);
  }
  return gx;
}

std::vector<nn::Parameter*> ResBlock::parameters() {
  std::vector<nn::Parameter*> params;
  for (auto* p : norm1_.parameters()) params.push_back(p);
  for (auto* p : conv1_.parameters()) params.push_back(p);
  for (auto* p : temb_proj_.parameters()) params.push_back(p);
  for (auto* p : norm2_.parameters()) params.push_back(p);
  for (auto* p : conv2_.parameters()) params.push_back(p);
  if (skip_) {
    for (auto* p : skip_->parameters()) params.push_back(p);
  }
  return params;
}

void ResBlock::set_trainable(bool trainable) noexcept {
  norm1_.set_trainable(trainable);
  conv1_.set_trainable(trainable);
  temb_proj_.set_trainable(trainable);
  norm2_.set_trainable(trainable);
  conv2_.set_trainable(trainable);
  if (skip_) skip_->set_trainable(trainable);
}

}  // namespace repro::diffusion
