// CART decision tree (Gini impurity, axis-aligned thresholds) with
// per-node random feature subsampling — the building block of the
// random forest.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "ml/features.hpp"

namespace repro::ml {

struct TreeConfig {
  std::size_t max_depth = 14;
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Features examined per node; 0 = sqrt(feature_count).
  std::size_t max_features = 0;
};

class DecisionTree {
 public:
  explicit DecisionTree(const TreeConfig& config = TreeConfig{});

  /// Fits on the rows selected by `sample_indices` (bootstrap sampling is
  /// the forest's job). `num_classes` sizes the leaf distributions.
  void fit(const FeatureMatrix& data,
           const std::vector<std::size_t>& sample_indices,
           std::size_t num_classes, Rng& rng);

  /// Majority-class prediction.
  int predict(const std::vector<float>& row) const;

  /// Leaf class distribution (normalized).
  const std::vector<float>& predict_proba(const std::vector<float>& row) const;

  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t depth() const noexcept { return depth_; }

  /// Total Gini decrease attributed to each feature (impurity
  /// importance); used by tests to confirm protocol bits matter.
  const std::vector<double>& feature_importance() const noexcept {
    return importance_;
  }

 private:
  struct Node {
    bool leaf = true;
    std::size_t feature = 0;
    float threshold = 0.0f;
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::vector<float> distribution;  // filled for leaves
  };

  std::size_t build(const FeatureMatrix& data, std::vector<std::size_t>& idx,
                    std::size_t begin, std::size_t end, std::size_t depth,
                    std::size_t num_classes, Rng& rng);

  TreeConfig config_;
  std::vector<Node> nodes_;
  std::size_t depth_ = 0;
  std::vector<double> importance_;
  std::vector<std::size_t> feature_pool_;  // scratch for per-node sampling
};

}  // namespace repro::ml
