// Feature extraction for the service-recognition task, at the paper's two
// granularities:
//  * NetFlow features — the coarse aggregate record (gan/netflow.hpp),
//    what NetShare-like baselines can generate;
//  * nprint features — the raw bit-level packet representation ("raw
//    packet bits"), what the diffusion pipeline generates.
// §2.3 measures the gap between the two on real data (85% vs 94% micro
// accuracy); Table 2 measures both across synthetic scenarios.
#pragma once

#include <cstddef>
#include <vector>

#include "net/flow.hpp"

namespace repro::ml {

/// A dense feature matrix with labels; the classifier's input.
struct FeatureMatrix {
  std::size_t feature_count = 0;
  std::vector<std::vector<float>> rows;
  std::vector<int> labels;

  std::size_t size() const noexcept { return rows.size(); }
};

/// NetFlow-granularity features for each flow.
FeatureMatrix netflow_features(const std::vector<net::Flow>& flows);

/// nprint-granularity features: the first `packets` rows of the flow's
/// bit matrix, flattened (packets x 1088 values in {-1, 0, 1}).
FeatureMatrix nprint_features(const std::vector<net::Flow>& flows,
                              std::size_t packets);

/// Replaces micro labels with macro-service labels in place.
void to_macro_labels(FeatureMatrix& matrix);

}  // namespace repro::ml
