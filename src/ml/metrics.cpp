#include "ml/metrics.hpp"

#include <stdexcept>

namespace repro::ml {

double accuracy(const std::vector<int>& predicted,
                const std::vector<int>& actual) {
  if (predicted.size() != actual.size()) {
    throw std::invalid_argument("accuracy: size mismatch");
  }
  if (predicted.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] == actual[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(predicted.size());
}

std::vector<std::vector<std::size_t>> confusion_matrix(
    const std::vector<int>& predicted, const std::vector<int>& actual,
    std::size_t num_classes) {
  if (predicted.size() != actual.size()) {
    throw std::invalid_argument("confusion_matrix: size mismatch");
  }
  std::vector<std::vector<std::size_t>> matrix(
      num_classes, std::vector<std::size_t>(num_classes, 0));
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const int a = actual[i], p = predicted[i];
    if (a >= 0 && static_cast<std::size_t>(a) < num_classes && p >= 0 &&
        static_cast<std::size_t>(p) < num_classes) {
      ++matrix[static_cast<std::size_t>(a)][static_cast<std::size_t>(p)];
    }
  }
  return matrix;
}

std::vector<ClassReport> per_class_report(const std::vector<int>& predicted,
                                          const std::vector<int>& actual,
                                          std::size_t num_classes) {
  const auto cm = confusion_matrix(predicted, actual, num_classes);
  std::vector<ClassReport> reports(num_classes);
  for (std::size_t c = 0; c < num_classes; ++c) {
    std::size_t tp = cm[c][c], fp = 0, fn = 0, support = 0;
    for (std::size_t other = 0; other < num_classes; ++other) {
      if (other != c) {
        fp += cm[other][c];
        fn += cm[c][other];
      }
      support += cm[c][other];
    }
    ClassReport& r = reports[c];
    r.support = support;
    r.precision = tp + fp > 0
                      ? static_cast<double>(tp) / static_cast<double>(tp + fp)
                      : 0.0;
    r.recall = tp + fn > 0
                   ? static_cast<double>(tp) / static_cast<double>(tp + fn)
                   : 0.0;
    r.f1 = r.precision + r.recall > 0.0
               ? 2.0 * r.precision * r.recall / (r.precision + r.recall)
               : 0.0;
  }
  return reports;
}

double macro_f1(const std::vector<int>& predicted,
                const std::vector<int>& actual, std::size_t num_classes) {
  const auto reports = per_class_report(predicted, actual, num_classes);
  double sum = 0.0;
  std::size_t counted = 0;
  for (const auto& r : reports) {
    if (r.support == 0) continue;
    sum += r.f1;
    ++counted;
  }
  return counted > 0 ? sum / static_cast<double>(counted) : 0.0;
}

}  // namespace repro::ml
