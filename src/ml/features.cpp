#include "ml/features.hpp"

#include "flowgen/catalog.hpp"
#include "gan/netflow.hpp"
#include "nprint/codec.hpp"

namespace repro::ml {

FeatureMatrix netflow_features(const std::vector<net::Flow>& flows) {
  FeatureMatrix out;
  out.feature_count = gan::NetFlowRecord::kFeatureCount;
  out.rows.reserve(flows.size());
  out.labels.reserve(flows.size());
  for (const auto& flow : flows) {
    const gan::NetFlowRecord record = gan::to_netflow(flow);
    out.rows.push_back(record.features());
    out.labels.push_back(flow.label);
  }
  return out;
}

FeatureMatrix nprint_features(const std::vector<net::Flow>& flows,
                              std::size_t packets) {
  FeatureMatrix out;
  out.feature_count = packets * nprint::kBitsPerPacket;
  out.rows.reserve(flows.size());
  out.labels.reserve(flows.size());
  for (const auto& flow : flows) {
    const nprint::Matrix matrix =
        nprint::encode_flow(flow, packets, /*pad_to_max=*/true);
    out.rows.emplace_back(matrix.data().begin(), matrix.data().end());
    out.labels.push_back(flow.label);
  }
  return out;
}

void to_macro_labels(FeatureMatrix& matrix) {
  for (int& label : matrix.labels) {
    label = static_cast<int>(
        flowgen::macro_of(static_cast<std::size_t>(label)));
  }
}

}  // namespace repro::ml
