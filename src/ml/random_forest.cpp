#include "ml/random_forest.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "common/contracts.hpp"
#include "common/parallel/parallel_for.hpp"
#include "common/telemetry/trace.hpp"

namespace repro::ml {

RandomForest::RandomForest(const ForestConfig& config) : config_(config) {}

void RandomForest::fit(const FeatureMatrix& train) {
  if (train.rows.empty()) {
    throw std::invalid_argument("RandomForest::fit: empty training set");
  }
  REPRO_REQUIRE(train.labels.size() == train.rows.size(),
                "RandomForest::fit: one label per row");
  REPRO_REQUIRE(config_.num_trees > 0, "RandomForest::fit: need >= 1 tree");
  REPRO_REQUIRE(config_.bootstrap_fraction > 0.0,
                "RandomForest::fit: bootstrap fraction must be positive");
  REPRO_SPAN("ml.rf.fit");
  telemetry::count("ml.rf.trees_fit", config_.num_trees);
  telemetry::count("ml.rf.rows_fit", train.rows.size());
  int max_label = 0;
  for (int label : train.labels) max_label = std::max(max_label, label);
  num_classes_ = static_cast<std::size_t>(max_label) + 1;
  feature_count_ = train.feature_count;

  Rng rng(config_.seed);
  const auto bootstrap_size = static_cast<std::size_t>(
      config_.bootstrap_fraction * static_cast<double>(train.rows.size()));
  // Bootstrap samples and per-tree RNG streams are drawn serially in
  // tree order (consuming the master stream exactly as the serial
  // implementation did); the trees then fit independently in parallel,
  // each owning its slot and its forked stream.
  std::vector<std::vector<std::size_t>> samples(config_.num_trees);
  std::vector<Rng> tree_rngs;
  tree_rngs.reserve(config_.num_trees);
  for (std::size_t t = 0; t < config_.num_trees; ++t) {
    samples[t].resize(std::max<std::size_t>(bootstrap_size, 1));
    for (auto& s : samples[t]) s = rng.uniform_u64(train.rows.size());
    tree_rngs.push_back(rng.fork());
  }
  trees_.assign(config_.num_trees, DecisionTree(config_.tree));
  parallel::parallel_for_each(0, config_.num_trees, 1, [&](std::size_t t) {
    trees_[t].fit(train, samples[t], num_classes_, tree_rngs[t]);
  });
}

std::vector<float> RandomForest::predict_proba(
    const std::vector<float>& row) const {
  if (trees_.empty()) {
    throw std::logic_error("RandomForest::predict_proba: not fitted");
  }
  REPRO_REQUIRE(row.size() == feature_count_,
                "RandomForest::predict_proba: row width != training width");
  std::vector<float> probs(num_classes_, 0.0f);
  for (const auto& tree : trees_) {
    const auto& dist = tree.predict_proba(row);
    for (std::size_t c = 0; c < num_classes_; ++c) probs[c] += dist[c];
  }
  const float inv = 1.0f / static_cast<float>(trees_.size());
  for (float& p : probs) p *= inv;
  return probs;
}

int RandomForest::predict(const std::vector<float>& row) const {
  const auto probs = predict_proba(row);
  return static_cast<int>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
}

std::vector<int> RandomForest::predict(const FeatureMatrix& data) const {
  REPRO_SPAN("ml.rf.predict");
  telemetry::count("ml.rf.rows_predicted", data.rows.size());
  std::vector<int> out(data.rows.size());
  parallel::parallel_for(
      0, data.rows.size(), parallel::grain_for(trees_.size() * 64),
      [&](std::size_t rb, std::size_t re) {
        for (std::size_t i = rb; i < re; ++i) out[i] = predict(data.rows[i]);
      });
  return out;
}

double RandomForest::score(const FeatureMatrix& data) const {
  if (data.rows.empty()) return 0.0;
  REPRO_SPAN("ml.rf.score");
  telemetry::count("ml.rf.rows_predicted", data.rows.size());
  // Integer reduction: the accumulation order cannot affect the result,
  // so a relaxed atomic count is deterministic at any thread count.
  std::atomic<std::size_t> correct{0};
  parallel::parallel_for(
      0, data.rows.size(), parallel::grain_for(trees_.size() * 64),
      [&](std::size_t rb, std::size_t re) {
        std::size_t local = 0;
        for (std::size_t i = rb; i < re; ++i) {
          // Labels outside the trained range can never be predicted;
          // they count as errors, which is the honest accuracy.
          if (predict(data.rows[i]) == data.labels[i]) ++local;
        }
        correct.fetch_add(local, std::memory_order_relaxed);
      });
  return static_cast<double>(correct.load()) /
         static_cast<double>(data.rows.size());
}

std::vector<double> RandomForest::feature_importance() const {
  std::vector<double> total(feature_count_, 0.0);
  for (const auto& tree : trees_) {
    const auto& imp = tree.feature_importance();
    for (std::size_t f = 0; f < feature_count_; ++f) total[f] += imp[f];
  }
  double sum = 0.0;
  for (double v : total) sum += v;
  if (sum > 0.0) {
    for (double& v : total) v /= sum;
  }
  return total;
}

}  // namespace repro::ml
