#include "ml/random_forest.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/telemetry/trace.hpp"

namespace repro::ml {

RandomForest::RandomForest(const ForestConfig& config) : config_(config) {}

void RandomForest::fit(const FeatureMatrix& train) {
  if (train.rows.empty()) {
    throw std::invalid_argument("RandomForest::fit: empty training set");
  }
  REPRO_SPAN("ml.rf.fit");
  telemetry::count("ml.rf.trees_fit", config_.num_trees);
  telemetry::count("ml.rf.rows_fit", train.rows.size());
  int max_label = 0;
  for (int label : train.labels) max_label = std::max(max_label, label);
  num_classes_ = static_cast<std::size_t>(max_label) + 1;
  feature_count_ = train.feature_count;

  Rng rng(config_.seed);
  trees_.clear();
  trees_.reserve(config_.num_trees);
  const auto bootstrap_size = static_cast<std::size_t>(
      config_.bootstrap_fraction * static_cast<double>(train.rows.size()));
  for (std::size_t t = 0; t < config_.num_trees; ++t) {
    std::vector<std::size_t> sample(std::max<std::size_t>(bootstrap_size, 1));
    for (auto& s : sample) s = rng.uniform_u64(train.rows.size());
    DecisionTree tree(config_.tree);
    Rng tree_rng = rng.fork();
    tree.fit(train, sample, num_classes_, tree_rng);
    trees_.push_back(std::move(tree));
  }
}

std::vector<float> RandomForest::predict_proba(
    const std::vector<float>& row) const {
  if (trees_.empty()) {
    throw std::logic_error("RandomForest::predict_proba: not fitted");
  }
  std::vector<float> probs(num_classes_, 0.0f);
  for (const auto& tree : trees_) {
    const auto& dist = tree.predict_proba(row);
    for (std::size_t c = 0; c < num_classes_; ++c) probs[c] += dist[c];
  }
  const float inv = 1.0f / static_cast<float>(trees_.size());
  for (float& p : probs) p *= inv;
  return probs;
}

int RandomForest::predict(const std::vector<float>& row) const {
  const auto probs = predict_proba(row);
  return static_cast<int>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
}

std::vector<int> RandomForest::predict(const FeatureMatrix& data) const {
  REPRO_SPAN("ml.rf.predict");
  telemetry::count("ml.rf.rows_predicted", data.rows.size());
  std::vector<int> out;
  out.reserve(data.rows.size());
  for (const auto& row : data.rows) out.push_back(predict(row));
  return out;
}

double RandomForest::score(const FeatureMatrix& data) const {
  if (data.rows.empty()) return 0.0;
  REPRO_SPAN("ml.rf.score");
  telemetry::count("ml.rf.rows_predicted", data.rows.size());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.rows.size(); ++i) {
    // Labels outside the trained range can never be predicted; they count
    // as errors, which is the honest accuracy.
    if (predict(data.rows[i]) == data.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.rows.size());
}

std::vector<double> RandomForest::feature_importance() const {
  std::vector<double> total(feature_count_, 0.0);
  for (const auto& tree : trees_) {
    const auto& imp = tree.feature_importance();
    for (std::size_t f = 0; f < feature_count_; ++f) total[f] += imp[f];
  }
  double sum = 0.0;
  for (double v : total) sum += v;
  if (sum > 0.0) {
    for (double& v : total) v /= sum;
  }
  return total;
}

}  // namespace repro::ml
