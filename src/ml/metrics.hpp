// Classification metrics: accuracy, confusion matrix, per-class
// precision/recall/F1 and macro averages.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace repro::ml {

double accuracy(const std::vector<int>& predicted,
                const std::vector<int>& actual);

/// confusion[actual][predicted], dense num_classes x num_classes.
std::vector<std::vector<std::size_t>> confusion_matrix(
    const std::vector<int>& predicted, const std::vector<int>& actual,
    std::size_t num_classes);

struct ClassReport {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  std::size_t support = 0;
};

std::vector<ClassReport> per_class_report(const std::vector<int>& predicted,
                                          const std::vector<int>& actual,
                                          std::size_t num_classes);

/// Unweighted mean of per-class F1 (classes with zero support skipped).
double macro_f1(const std::vector<int>& predicted,
                const std::vector<int>& actual, std::size_t num_classes);

}  // namespace repro::ml
