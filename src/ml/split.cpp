#include "ml/split.hpp"

#include <algorithm>
#include <map>

namespace repro::ml {

void stratified_split_indices(const std::vector<int>& labels,
                              double test_fraction, Rng& rng,
                              std::vector<std::size_t>& train_idx,
                              std::vector<std::size_t>& test_idx) {
  train_idx.clear();
  test_idx.clear();
  std::map<int, std::vector<std::size_t>> buckets;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    buckets[labels[i]].push_back(i);
  }
  for (auto& [label, bucket] : buckets) {
    const auto perm = rng.permutation(bucket.size());
    std::size_t test_count = static_cast<std::size_t>(
        test_fraction * static_cast<double>(bucket.size()) + 0.5);
    if (bucket.size() >= 2) {
      test_count = std::clamp<std::size_t>(test_count, 1, bucket.size() - 1);
    } else {
      test_count = 0;
    }
    for (std::size_t k = 0; k < bucket.size(); ++k) {
      if (k < test_count) {
        test_idx.push_back(bucket[perm[k]]);
      } else {
        train_idx.push_back(bucket[perm[k]]);
      }
    }
  }
  std::sort(train_idx.begin(), train_idx.end());
  std::sort(test_idx.begin(), test_idx.end());
}

FeatureMatrix subset(const FeatureMatrix& data,
                     const std::vector<std::size_t>& indices) {
  FeatureMatrix out;
  out.feature_count = data.feature_count;
  out.rows.reserve(indices.size());
  out.labels.reserve(indices.size());
  for (std::size_t i : indices) {
    out.rows.push_back(data.rows[i]);
    out.labels.push_back(data.labels[i]);
  }
  return out;
}

TrainTestSplit stratified_split(const FeatureMatrix& data,
                                double test_fraction, Rng& rng) {
  std::vector<std::size_t> train_idx, test_idx;
  stratified_split_indices(data.labels, test_fraction, rng, train_idx,
                           test_idx);
  return {subset(data, train_idx), subset(data, test_idx)};
}

}  // namespace repro::ml
