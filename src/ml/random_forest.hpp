// Random forest classifier (Breiman 2001): bootstrap-bagged CART trees
// with per-node feature subsampling and soft-vote aggregation — the
// paper's downstream model ("a Random Forest (RF) model", §2.3/§3.2).
#pragma once

#include <memory>

#include "ml/decision_tree.hpp"

namespace repro::ml {

struct ForestConfig {
  std::size_t num_trees = 30;
  TreeConfig tree;
  /// Bootstrap sample size as a fraction of the training set.
  double bootstrap_fraction = 1.0;
  std::uint64_t seed = 7;
};

class RandomForest {
 public:
  explicit RandomForest(const ForestConfig& config = ForestConfig{});

  /// Fits on the full matrix; class count is inferred from labels.
  void fit(const FeatureMatrix& train);

  int predict(const std::vector<float>& row) const;
  std::vector<float> predict_proba(const std::vector<float>& row) const;
  std::vector<int> predict(const FeatureMatrix& data) const;

  /// Mean accuracy over a labeled matrix.
  double score(const FeatureMatrix& data) const;

  std::size_t num_classes() const noexcept { return num_classes_; }

  /// Sum of per-tree impurity importances, normalized to 1.
  std::vector<double> feature_importance() const;

 private:
  ForestConfig config_;
  std::vector<DecisionTree> trees_;
  std::size_t num_classes_ = 0;
  std::size_t feature_count_ = 0;
};

}  // namespace repro::ml
