#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace repro::ml {
namespace {

double gini(const std::vector<std::size_t>& counts, std::size_t total) {
  if (total == 0) return 0.0;
  double sum_sq = 0.0;
  for (std::size_t c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

}  // namespace

DecisionTree::DecisionTree(const TreeConfig& config) : config_(config) {}

void DecisionTree::fit(const FeatureMatrix& data,
                       const std::vector<std::size_t>& sample_indices,
                       std::size_t num_classes, Rng& rng) {
  if (sample_indices.empty()) {
    throw std::invalid_argument("DecisionTree::fit: no samples");
  }
  nodes_.clear();
  depth_ = 0;
  importance_.assign(data.feature_count, 0.0);
  feature_pool_.resize(data.feature_count);
  for (std::size_t f = 0; f < data.feature_count; ++f) feature_pool_[f] = f;
  std::vector<std::size_t> idx = sample_indices;
  build(data, idx, 0, idx.size(), 0, num_classes, rng);
}

std::size_t DecisionTree::build(const FeatureMatrix& data,
                                std::vector<std::size_t>& idx,
                                std::size_t begin, std::size_t end,
                                std::size_t depth, std::size_t num_classes,
                                Rng& rng) {
  depth_ = std::max(depth_, depth);
  const std::size_t node_id = nodes_.size();
  nodes_.emplace_back();

  const std::size_t n = end - begin;
  std::vector<std::size_t> counts(num_classes, 0);
  for (std::size_t i = begin; i < end; ++i) {
    ++counts[static_cast<std::size_t>(data.labels[idx[i]])];
  }
  const double node_gini = gini(counts, n);

  auto make_leaf = [&] {
    Node& node = nodes_[node_id];
    node.leaf = true;
    node.distribution.assign(num_classes, 0.0f);
    for (std::size_t c = 0; c < num_classes; ++c) {
      node.distribution[c] =
          static_cast<float>(counts[c]) / static_cast<float>(n);
    }
  };

  if (depth >= config_.max_depth || n < config_.min_samples_split ||
      node_gini == 0.0) {
    make_leaf();
    return node_id;
  }

  // --- Find the best split over a random feature subset. ---
  std::size_t mtry = config_.max_features;
  if (mtry == 0) {
    mtry = static_cast<std::size_t>(
        std::sqrt(static_cast<double>(data.feature_count)));
    mtry = std::max<std::size_t>(mtry, 1);
  }
  mtry = std::min(mtry, data.feature_count);

  double best_score = std::numeric_limits<double>::infinity();
  std::size_t best_feature = 0;
  float best_threshold = 0.0f;

  std::vector<std::pair<float, std::size_t>> values(n);  // (value, label)
  for (std::size_t trial = 0; trial < mtry; ++trial) {
    // Partial Fisher–Yates over the shared pool: mtry *distinct* features
    // per node, matching standard random-forest semantics.
    const std::size_t pick =
        trial + rng.uniform_u64(data.feature_count - trial);
    std::swap(feature_pool_[trial], feature_pool_[pick]);
    const std::size_t feature = feature_pool_[trial];
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t row = idx[begin + i];
      values[i] = {data.rows[row][feature],
                   static_cast<std::size_t>(data.labels[row])};
    }
    std::sort(values.begin(), values.end());
    if (values.front().first == values.back().first) continue;  // constant

    std::vector<std::size_t> left_counts(num_classes, 0);
    std::vector<std::size_t> right_counts = counts;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const auto label = values[i].second;
      ++left_counts[label];
      --right_counts[label];
      if (values[i].first == values[i + 1].first) continue;
      const std::size_t nl = i + 1, nr = n - nl;
      if (nl < config_.min_samples_leaf || nr < config_.min_samples_leaf) {
        continue;
      }
      const double score =
          (static_cast<double>(nl) * gini(left_counts, nl) +
           static_cast<double>(nr) * gini(right_counts, nr)) /
          static_cast<double>(n);
      if (score < best_score) {
        best_score = score;
        best_feature = feature;
        best_threshold = 0.5f * (values[i].first + values[i + 1].first);
      }
    }
  }

  if (!std::isfinite(best_score) || best_score >= node_gini) {
    make_leaf();
    return node_id;
  }
  importance_[best_feature] +=
      (node_gini - best_score) * static_cast<double>(n);

  // Partition idx[begin, end) around the threshold.
  auto middle = std::partition(
      idx.begin() + static_cast<std::ptrdiff_t>(begin),
      idx.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t row) {
        return data.rows[row][best_feature] <= best_threshold;
      });
  const auto mid =
      static_cast<std::size_t>(middle - idx.begin());
  if (mid == begin || mid == end) {  // numeric degeneracy: bail to leaf
    make_leaf();
    return node_id;
  }

  const std::size_t left_id =
      build(data, idx, begin, mid, depth + 1, num_classes, rng);
  const std::size_t right_id =
      build(data, idx, mid, end, depth + 1, num_classes, rng);
  Node& node = nodes_[node_id];
  node.leaf = false;
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = static_cast<std::int32_t>(left_id);
  node.right = static_cast<std::int32_t>(right_id);
  return node_id;
}

const std::vector<float>& DecisionTree::predict_proba(
    const std::vector<float>& row) const {
  if (nodes_.empty()) {
    throw std::logic_error("DecisionTree::predict_proba: not fitted");
  }
  std::size_t cur = 0;
  while (!nodes_[cur].leaf) {
    const Node& node = nodes_[cur];
    cur = static_cast<std::size_t>(
        row[node.feature] <= node.threshold ? node.left : node.right);
  }
  return nodes_[cur].distribution;
}

int DecisionTree::predict(const std::vector<float>& row) const {
  const auto& dist = predict_proba(row);
  return static_cast<int>(
      std::max_element(dist.begin(), dist.end()) - dist.begin());
}

}  // namespace repro::ml
