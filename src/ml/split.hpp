// Train/test splitting — stratified by class to mirror the paper's
// "conventional 80-20 training-testing split" on an imbalanced dataset.
#pragma once

#include "common/rng.hpp"
#include "ml/features.hpp"

namespace repro::ml {

struct TrainTestSplit {
  FeatureMatrix train;
  FeatureMatrix test;
};

/// Splits rows so each class contributes ~`test_fraction` of its samples
/// to the test set (at least one per class when the class has >= 2 rows).
TrainTestSplit stratified_split(const FeatureMatrix& data,
                                double test_fraction, Rng& rng);

/// Same split logic on flows (used when two granularities must share one
/// split). Returns index sets.
void stratified_split_indices(const std::vector<int>& labels,
                              double test_fraction, Rng& rng,
                              std::vector<std::size_t>& train_idx,
                              std::vector<std::size_t>& test_idx);

/// Gathers a FeatureMatrix subset by row index.
FeatureMatrix subset(const FeatureMatrix& data,
                     const std::vector<std::size_t>& indices);

}  // namespace repro::ml
