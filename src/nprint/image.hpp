// Image rendering of nprint matrices (Figure 2 of the paper): each pixel
// row is one packet, each column one bit; red = 1, green = 0, grey = -1.
// Written as binary PPM (P6) so no image library is needed; any viewer or
// converter handles PPM.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "nprint/codec.hpp"

namespace repro::nprint {

/// RGB triple.
using Rgb = std::array<std::uint8_t, 3>;

inline constexpr Rgb kColorSet = {220, 50, 47};     // red   -> bit 1
inline constexpr Rgb kColorClear = {64, 160, 43};   // green -> bit 0
inline constexpr Rgb kColorVacant = {128, 128, 128};  // grey -> vacant

/// RGB image buffer (row-major, 3 bytes/pixel).
struct Image {
  std::size_t width = 0;
  std::size_t height = 0;
  std::vector<std::uint8_t> pixels;  // width * height * 3

  Rgb pixel(std::size_t x, std::size_t y) const noexcept {
    const std::size_t base = (y * width + x) * 3;
    return {pixels[base], pixels[base + 1], pixels[base + 2]};
  }
};

/// Renders a ternary matrix to RGB.
Image render(const Matrix& matrix);

/// Inverse of `render` with nearest-color matching, so arbitrary RGB
/// (e.g. a hand-edited or re-encoded image) maps back to {-1, 0, 1}.
Matrix parse_image(const Image& image);

/// Binary PPM (P6) I/O. Throws std::runtime_error on I/O failure or
/// malformed files.
void write_ppm(const std::string& path, const Image& image);
Image read_ppm(const std::string& path);

}  // namespace repro::nprint
