// nprint codec: packets/flows <-> ternary bit matrices, both directions.
//
// Encoding is bit-faithful: every bit of every present header is emitted
// in wire order into its layout region; absent headers and bytes beyond
// the actual header length are vacant (-1). Decoding reverses this and is
// deliberately *robust*: it is fed model-generated matrices, so it infers
// the transport from region vacancy, repairs the IPv4 protocol/length
// fields, and recomputes checksums when re-serialized — exactly the
// "back-transformed into nprint and finally into pcap" step of §3.1.
#pragma once

#include <cstdint>
#include <vector>

#include "net/flow.hpp"
#include "net/packet.hpp"
#include "nprint/layout.hpp"

namespace repro::nprint {

/// A flow as a (packets x 1088) ternary matrix; row-major, values are
/// exactly -1.0f, 0.0f or 1.0f after encode/quantize.
class Matrix {
 public:
  Matrix() = default;
  explicit Matrix(std::size_t rows) : rows_(rows), data_(rows * kBitsPerPacket, -1.0f) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return kBitsPerPacket; }

  float& at(std::size_t row, std::size_t col) noexcept {
    return data_[row * kBitsPerPacket + col];
  }
  float at(std::size_t row, std::size_t col) const noexcept {
    return data_[row * kBitsPerPacket + col];
  }

  std::vector<float>& data() noexcept { return data_; }
  const std::vector<float>& data() const noexcept { return data_; }

  /// True when a row has no non-vacant bit (padding row).
  bool row_vacant(std::size_t row) const noexcept;

  /// Number of leading non-vacant rows (decoded packet count).
  std::size_t active_rows() const noexcept;

 private:
  std::size_t rows_ = 0;
  std::vector<float> data_;
};

/// Encodes one packet into a 1088-entry ternary vector.
std::vector<float> encode_packet(const net::Packet& packet);

/// Encodes up to `max_packets` of the flow (paper default 1024); remaining
/// rows, if `pad_to_max`, are vacant padding so every image has the same
/// height.
Matrix encode_flow(const net::Flow& flow, std::size_t max_packets = kMaxPacketsPerFlow,
                   bool pad_to_max = false);

/// Decodes one row back into a packet. Vacancy decides the transport
/// header; malformed field values are repaired (see codec.cpp). Returns
/// false for a fully vacant row.
bool decode_packet(const float* row, net::Packet& out);

/// Decodes a matrix into a flow, skipping vacant rows. Timestamps are
/// synthesized at `inter_packet_gap` seconds apart (nprint does not carry
/// timing).
net::Flow decode_flow(const Matrix& matrix, double inter_packet_gap = 1e-3);

/// Snaps arbitrary real values to the nearest of {-1, 0, +1} — the
/// "color processing" step applied to raw diffusion output.
void quantize(Matrix& matrix) noexcept;

/// Renders the matrix in the nprint tool's CSV convention: one packet
/// per line, integer values in {-1, 0, 1}, optional header line with
/// the 1088 feature names from layout.hpp.
std::string to_csv(const Matrix& matrix, bool include_header = true);

/// Fraction of entries already exactly ternary (diagnostic).
double ternary_fraction(const Matrix& matrix) noexcept;

}  // namespace repro::nprint
