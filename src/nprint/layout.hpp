// The nprint bit layout (Figure 2 of the paper).
//
// Each packet becomes a vector of 1088 ternary features, one per header
// *bit*, ordered as the paper's Figure 2 renders them:
//
//   [ TCP 480 | UDP 64 | ICMP 64 | IPv4 480 ]
//
// TCP and IPv4 regions are sized for the maximum header (60 bytes = 480
// bits, i.e. 40 bytes of options each); UDP and ICMP are fixed 8-byte
// headers. Feature values are +1 (bit set), 0 (bit clear) and -1 (bit
// vacant: header absent, or beyond the actual header length).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace repro::nprint {

inline constexpr std::size_t kTcpBits = 480;
inline constexpr std::size_t kUdpBits = 64;
inline constexpr std::size_t kIcmpBits = 64;
inline constexpr std::size_t kIpv4Bits = 480;

inline constexpr std::size_t kTcpOffset = 0;
inline constexpr std::size_t kUdpOffset = kTcpOffset + kTcpBits;
inline constexpr std::size_t kIcmpOffset = kUdpOffset + kUdpBits;
inline constexpr std::size_t kIpv4Offset = kIcmpOffset + kIcmpBits;

/// Total bit-features per packet (the paper's 1088).
inline constexpr std::size_t kBitsPerPacket =
    kTcpBits + kUdpBits + kIcmpBits + kIpv4Bits;
static_assert(kBitsPerPacket == 1088);

/// Maximum packets per flow image (paper: 1024 rows of pixels).
inline constexpr std::size_t kMaxPacketsPerFlow = 1024;

/// Region of the layout a bit index belongs to.
enum class Region { kTcp, kUdp, kIcmp, kIpv4 };

/// Region containing bit `index`; requires index < kBitsPerPacket.
Region region_of(std::size_t index) noexcept;

/// Half-open [begin, end) bit range of a region.
std::size_t region_offset(Region region) noexcept;
std::size_t region_size(Region region) noexcept;

/// Human-readable feature name for a bit index, in nprint's style, e.g.
/// "tcp_sprt_3", "ipv4_ttl_0", "udp_len_12", "icmp_type_1". Option
/// regions are named "tcp_opt_N" / "ipv4_opt_N".
std::string feature_name(std::size_t index);

/// A contiguous header field in the layout. Option areas are split into
/// 32-bit words so no span dwarfs the others.
struct FieldSpan {
  const char* name;
  std::size_t offset;  // absolute bit offset in the 1088-bit layout
  std::size_t bits;
};

/// All field spans in layout order; spans tile [0, kBitsPerPacket)
/// exactly. Used for field-balanced losses and reporting.
const std::vector<FieldSpan>& field_spans();

}  // namespace repro::nprint
