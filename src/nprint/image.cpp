#include "nprint/image.hpp"

#include <fstream>
#include <stdexcept>

namespace repro::nprint {
namespace {

int color_distance(const Rgb& a, const Rgb& b) noexcept {
  int d = 0;
  for (int i = 0; i < 3; ++i) {
    const int diff = static_cast<int>(a[static_cast<std::size_t>(i)]) -
                     static_cast<int>(b[static_cast<std::size_t>(i)]);
    d += diff * diff;
  }
  return d;
}

float nearest_value(const Rgb& px) noexcept {
  const int d_set = color_distance(px, kColorSet);
  const int d_clear = color_distance(px, kColorClear);
  const int d_vacant = color_distance(px, kColorVacant);
  if (d_set <= d_clear && d_set <= d_vacant) return 1.0f;
  if (d_clear <= d_vacant) return 0.0f;
  return -1.0f;
}

}  // namespace

Image render(const Matrix& matrix) {
  Image img;
  img.width = matrix.cols();
  img.height = matrix.rows();
  img.pixels.resize(img.width * img.height * 3);
  for (std::size_t y = 0; y < img.height; ++y) {
    for (std::size_t x = 0; x < img.width; ++x) {
      const float v = matrix.at(y, x);
      const Rgb& c = v > 0.5f ? kColorSet : (v > -0.5f ? kColorClear : kColorVacant);
      const std::size_t base = (y * img.width + x) * 3;
      img.pixels[base] = c[0];
      img.pixels[base + 1] = c[1];
      img.pixels[base + 2] = c[2];
    }
  }
  return img;
}

Matrix parse_image(const Image& image) {
  if (image.width != kBitsPerPacket) {
    throw std::invalid_argument("parse_image: width must be 1088");
  }
  Matrix matrix(image.height);
  for (std::size_t y = 0; y < image.height; ++y) {
    for (std::size_t x = 0; x < image.width; ++x) {
      matrix.at(y, x) = nearest_value(image.pixel(x, y));
    }
  }
  return matrix;
}

void write_ppm(const std::string& path, const Image& image) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("write_ppm: cannot open " + path);
  out << "P6\n" << image.width << " " << image.height << "\n255\n";
  out.write(reinterpret_cast<const char*>(image.pixels.data()),
            static_cast<std::streamsize>(image.pixels.size()));
  if (!out) throw std::runtime_error("write_ppm: write failed for " + path);
}

Image read_ppm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_ppm: cannot open " + path);
  std::string magic;
  in >> magic;
  if (magic != "P6") throw std::runtime_error("read_ppm: not a P6 file");
  std::size_t width = 0, height = 0;
  int maxval = 0;
  in >> width >> height >> maxval;
  if (maxval != 255) throw std::runtime_error("read_ppm: expected maxval 255");
  in.get();  // single whitespace after header
  Image img;
  img.width = width;
  img.height = height;
  img.pixels.resize(width * height * 3);
  in.read(reinterpret_cast<char*>(img.pixels.data()),
          static_cast<std::streamsize>(img.pixels.size()));
  if (static_cast<std::size_t>(in.gcount()) != img.pixels.size()) {
    throw std::runtime_error("read_ppm: truncated pixel data");
  }
  return img;
}

}  // namespace repro::nprint
