#include "nprint/layout.hpp"

#include <array>
#include <stdexcept>

namespace repro::nprint {
namespace {

struct Field {
  const char* name;
  std::size_t bits;
};

// Bit-accurate field tables matching the header layouts in net/headers.hpp
// and the column naming convention of the nprint tool.
constexpr std::array<Field, 10> kTcpFields = {{
    {"tcp_sprt", 16},
    {"tcp_dprt", 16},
    {"tcp_seq", 32},
    {"tcp_ackn", 32},
    {"tcp_doff", 4},
    {"tcp_res", 4},
    {"tcp_flags", 8},  // cwr..fin
    {"tcp_wsize", 16},
    {"tcp_cksum", 16},
    {"tcp_urp", 16},
}};

constexpr std::array<Field, 4> kUdpFields = {{
    {"udp_sport", 16},
    {"udp_dport", 16},
    {"udp_len", 16},
    {"udp_cksum", 16},
}};

constexpr std::array<Field, 4> kIcmpFields = {{
    {"icmp_type", 8},
    {"icmp_code", 8},
    {"icmp_cksum", 16},
    {"icmp_roh", 32},
}};

constexpr std::array<Field, 13> kIpv4Fields = {{
    {"ipv4_ver", 4},
    {"ipv4_hl", 4},
    {"ipv4_dscp", 6},
    {"ipv4_ecn", 2},
    {"ipv4_tl", 16},
    {"ipv4_id", 16},
    {"ipv4_flags", 3},
    {"ipv4_foff", 13},
    {"ipv4_ttl", 8},
    {"ipv4_proto", 8},
    {"ipv4_cksum", 16},
    {"ipv4_src", 32},
    {"ipv4_dst", 32},
}};

template <std::size_t N>
std::string name_in_region(const std::array<Field, N>& fields,
                           std::size_t bit, const char* opt_name,
                           std::size_t region_bits) {
  std::size_t pos = 0;
  for (const auto& f : fields) {
    if (bit < pos + f.bits) {
      return std::string(f.name) + "_" + std::to_string(bit - pos);
    }
    pos += f.bits;
  }
  // Remaining bits are the variable-length options area.
  if (bit < region_bits) {
    return std::string(opt_name) + "_" + std::to_string(bit - pos);
  }
  throw std::out_of_range("feature_name: bit outside region");
}

}  // namespace

namespace {

template <std::size_t N>
void append_spans(std::vector<FieldSpan>& spans,
                  const std::array<Field, N>& fields, std::size_t base,
                  const char* opt_name, std::size_t region_bits) {
  std::size_t pos = 0;
  for (const auto& f : fields) {
    spans.push_back({f.name, base + pos, f.bits});
    pos += f.bits;
  }
  // Remaining variable-length option area as 32-bit words.
  while (pos < region_bits) {
    const std::size_t chunk = std::min<std::size_t>(32, region_bits - pos);
    spans.push_back({opt_name, base + pos, chunk});
    pos += chunk;
  }
}

std::vector<FieldSpan> build_spans() {
  std::vector<FieldSpan> spans;
  append_spans(spans, kTcpFields, kTcpOffset, "tcp_opt", kTcpBits);
  append_spans(spans, kUdpFields, kUdpOffset, "udp_pad", kUdpBits);
  append_spans(spans, kIcmpFields, kIcmpOffset, "icmp_pad", kIcmpBits);
  append_spans(spans, kIpv4Fields, kIpv4Offset, "ipv4_opt", kIpv4Bits);
  return spans;
}

}  // namespace

const std::vector<FieldSpan>& field_spans() {
  static const std::vector<FieldSpan> spans = build_spans();
  return spans;
}

Region region_of(std::size_t index) noexcept {
  if (index < kUdpOffset) return Region::kTcp;
  if (index < kIcmpOffset) return Region::kUdp;
  if (index < kIpv4Offset) return Region::kIcmp;
  return Region::kIpv4;
}

std::size_t region_offset(Region region) noexcept {
  switch (region) {
    case Region::kTcp:
      return kTcpOffset;
    case Region::kUdp:
      return kUdpOffset;
    case Region::kIcmp:
      return kIcmpOffset;
    case Region::kIpv4:
      return kIpv4Offset;
  }
  return 0;
}

std::size_t region_size(Region region) noexcept {
  switch (region) {
    case Region::kTcp:
      return kTcpBits;
    case Region::kUdp:
      return kUdpBits;
    case Region::kIcmp:
      return kIcmpBits;
    case Region::kIpv4:
      return kIpv4Bits;
  }
  return 0;
}

std::string feature_name(std::size_t index) {
  if (index >= kBitsPerPacket) {
    throw std::out_of_range("feature_name: index out of range");
  }
  switch (region_of(index)) {
    case Region::kTcp:
      return name_in_region(kTcpFields, index - kTcpOffset, "tcp_opt",
                            kTcpBits);
    case Region::kUdp:
      return name_in_region(kUdpFields, index - kUdpOffset, "udp_pad",
                            kUdpBits);
    case Region::kIcmp:
      return name_in_region(kIcmpFields, index - kIcmpOffset, "icmp_pad",
                            kIcmpBits);
    case Region::kIpv4:
      return name_in_region(kIpv4Fields, index - kIpv4Offset, "ipv4_opt",
                            kIpv4Bits);
  }
  throw std::out_of_range("feature_name: unreachable");
}

}  // namespace repro::nprint
