#include "nprint/codec.hpp"

#include <algorithm>
#include <cmath>

#include "common/bytes.hpp"
#include "common/contracts.hpp"
#include "common/parallel/parallel_for.hpp"
#include "common/telemetry/trace.hpp"

namespace repro::nprint {
namespace {

/// Writes `bytes` as bits (MSB first) into `row` starting at `offset`.
void write_bits(float* row, std::size_t offset,
                std::span<const std::uint8_t> bytes) noexcept {
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int b = 0; b < 8; ++b) {
      row[offset + i * 8 + static_cast<std::size_t>(b)] =
          (bytes[i] >> (7 - b)) & 1 ? 1.0f : 0.0f;
    }
  }
}

/// Reads `count` bytes from `row` at bit `offset`; vacant bits read as 0.
std::vector<std::uint8_t> read_bytes(const float* row, std::size_t offset,
                                     std::size_t count) {
  std::vector<std::uint8_t> out(count, 0);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint8_t byte = 0;
    for (int b = 0; b < 8; ++b) {
      byte = static_cast<std::uint8_t>(byte << 1);
      if (row[offset + i * 8 + static_cast<std::size_t>(b)] > 0.5f) byte |= 1;
    }
    out[i] = byte;
  }
  return out;
}

/// Count of non-vacant bits in [offset, offset+size).
std::size_t occupancy(const float* row, std::size_t offset,
                      std::size_t size) noexcept {
  std::size_t n = 0;
  for (std::size_t i = 0; i < size; ++i) {
    if (row[offset + i] > -0.5f) ++n;
  }
  return n;
}

}  // namespace

bool Matrix::row_vacant(std::size_t row) const noexcept {
  const float* r = data_.data() + row * kBitsPerPacket;
  for (std::size_t i = 0; i < kBitsPerPacket; ++i) {
    if (r[i] > -0.5f) return false;
  }
  return true;
}

std::size_t Matrix::active_rows() const noexcept {
  std::size_t n = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    if (!row_vacant(r)) ++n;
  }
  return n;
}

std::vector<float> encode_packet(const net::Packet& packet) {
  std::vector<float> row(kBitsPerPacket, -1.0f);

  // IPv4: serialize the header alone (checksum recomputed) and emit its
  // ihl*4 bytes; the remaining option area stays vacant.
  {
    std::vector<std::uint8_t> bytes;
    net::Ipv4Header header = packet.ip;
    header.total_length = repro::narrow<std::uint16_t>(packet.datagram_length());
    header.serialize(bytes);
    REPRO_REQUIRE(kIpv4Offset + bytes.size() * 8 <= kBitsPerPacket,
                  "encode_packet: IPv4 header overflows its bit region");
    write_bits(row.data(), kIpv4Offset, bytes);
  }

  if (packet.tcp) {
    std::vector<std::uint8_t> bytes;
    packet.tcp->serialize(bytes, packet.payload, packet.ip.src_addr,
                          packet.ip.dst_addr);
    write_bits(row.data(), kTcpOffset, bytes);
  } else if (packet.udp) {
    std::vector<std::uint8_t> bytes;
    net::UdpHeader header = *packet.udp;
    header.length =
        repro::narrow<std::uint16_t>(net::UdpHeader::kLength + packet.payload.size());
    header.serialize(bytes, packet.payload, packet.ip.src_addr,
                     packet.ip.dst_addr);
    write_bits(row.data(), kUdpOffset, bytes);
  } else if (packet.icmp) {
    std::vector<std::uint8_t> bytes;
    packet.icmp->serialize(bytes, packet.payload);
    write_bits(row.data(), kIcmpOffset, bytes);
  }
  return row;
}

Matrix encode_flow(const net::Flow& flow, std::size_t max_packets,
                   bool pad_to_max) {
  REPRO_SPAN("nprint.encode_flow");
  const std::size_t active = std::min(flow.packets.size(), max_packets);
  telemetry::count("nprint.flows_encoded");
  telemetry::count("nprint.packets_encoded", active);
  const std::size_t rows = pad_to_max ? max_packets : active;
  Matrix matrix(rows);
  // Packet rows occupy disjoint slices of the matrix.
  parallel::parallel_for_each(0, active, 8, [&](std::size_t i) {
    const auto row = encode_packet(flow.packets[i]);
    std::copy(row.begin(), row.end(),
              matrix.data().begin() +
                  static_cast<std::ptrdiff_t>(i * kBitsPerPacket));
  });
  return matrix;
}

bool decode_packet(const float* row, net::Packet& out) {
  const std::size_t ip_occ = occupancy(row, kIpv4Offset, kIpv4Bits);
  const std::size_t tcp_occ = occupancy(row, kTcpOffset, kTcpBits);
  const std::size_t udp_occ = occupancy(row, kUdpOffset, kUdpBits);
  const std::size_t icmp_occ = occupancy(row, kIcmpOffset, kIcmpBits);
  if (ip_occ + tcp_occ + udp_occ + icmp_occ == 0) return false;

  out = net::Packet{};

  // --- IPv4 header: read the fixed 20 bytes, then options per ihl. ---
  auto fixed = read_bytes(row, kIpv4Offset, 20);
  repro::ByteReader r20{std::span<const std::uint8_t>(fixed)};
  net::Ipv4Header ip;
  {
    const std::uint8_t vihl = r20.u8();
    ip.version = 4;  // repaired: we only model IPv4
    std::uint8_t ihl = vihl & 0x0F;
    ihl = std::clamp<std::uint8_t>(ihl, 5, 15);
    const std::uint8_t tos = r20.u8();
    ip.dscp = tos >> 2;
    ip.ecn = tos & 0x3;
    ip.total_length = r20.u16_be();
    ip.identification = r20.u16_be();
    const std::uint16_t frag = r20.u16_be();
    ip.flag_reserved = (frag & 0x8000) != 0;
    ip.flag_dont_fragment = (frag & 0x4000) != 0;
    ip.flag_more_fragments = (frag & 0x2000) != 0;
    ip.fragment_offset = frag & 0x1FFF;
    ip.ttl = r20.u8();
    ip.protocol = static_cast<net::IpProto>(r20.u8());
    ip.header_checksum = r20.u16_be();
    ip.src_addr = r20.u32_be();
    ip.dst_addr = r20.u32_be();
    // Options: only keep bytes actually occupied in the matrix; clamp to
    // the ihl-declared length so the header stays parseable.
    const std::size_t declared_opt = (static_cast<std::size_t>(ihl) - 5) * 4;
    const std::size_t occupied_opt_bits =
        occupancy(row, kIpv4Offset + 160, kIpv4Bits - 160);
    const std::size_t occupied_opt = (occupied_opt_bits / 32) * 4;
    const std::size_t opt_len = std::min(declared_opt, occupied_opt);
    ip.options = read_bytes(row, kIpv4Offset + 160, opt_len);
  }
  out.ip = ip;

  // --- Transport: choose the region with highest relative occupancy. ---
  const double tcp_frac = static_cast<double>(tcp_occ) / kTcpBits;
  const double udp_frac = static_cast<double>(udp_occ) / kUdpBits;
  const double icmp_frac = static_cast<double>(icmp_occ) / kIcmpBits;
  // The IPv4 protocol field votes too: a clean generated matrix has both
  // signals agreeing, a noisy one is resolved by occupancy.
  double tcp_score = tcp_frac, udp_score = udp_frac, icmp_score = icmp_frac;
  switch (ip.protocol) {
    case net::IpProto::kTcp:
      tcp_score += 0.25;
      break;
    case net::IpProto::kUdp:
      udp_score += 0.25;
      break;
    case net::IpProto::kIcmp:
      icmp_score += 0.25;
      break;
    default:
      break;
  }

  if (tcp_score >= udp_score && tcp_score >= icmp_score && tcp_occ > 0) {
    auto bytes = read_bytes(row, kTcpOffset, 20);
    repro::ByteReader tr{std::span<const std::uint8_t>(bytes)};
    net::TcpHeader tcp = net::TcpHeader{};
    tcp.src_port = tr.u16_be();
    tcp.dst_port = tr.u16_be();
    tcp.seq = tr.u32_be();
    tcp.ack = tr.u32_be();
    const std::uint8_t off_res = tr.u8();
    std::uint8_t doff = off_res >> 4;
    doff = std::clamp<std::uint8_t>(doff, 5, 15);
    tcp.reserved = off_res & 0x0F;
    const std::uint8_t flags = tr.u8();
    tcp.cwr = (flags & 0x80) != 0;
    tcp.ece = (flags & 0x40) != 0;
    tcp.urg = (flags & 0x20) != 0;
    tcp.ack_flag = (flags & 0x10) != 0;
    tcp.psh = (flags & 0x08) != 0;
    tcp.rst = (flags & 0x04) != 0;
    tcp.syn = (flags & 0x02) != 0;
    tcp.fin = (flags & 0x01) != 0;
    tcp.window = tr.u16_be();
    tcp.checksum = tr.u16_be();
    tcp.urgent_pointer = tr.u16_be();
    const std::size_t declared_opt = (static_cast<std::size_t>(doff) - 5) * 4;
    const std::size_t occupied_opt_bits =
        occupancy(row, kTcpOffset + 160, kTcpBits - 160);
    const std::size_t occupied_opt = (occupied_opt_bits / 32) * 4;
    tcp.options = read_bytes(row, kTcpOffset + 160,
                             std::min(declared_opt, occupied_opt));
    out.tcp = std::move(tcp);
    out.ip.protocol = net::IpProto::kTcp;
  } else if (udp_score >= icmp_score && udp_occ > 0) {
    auto bytes = read_bytes(row, kUdpOffset, 8);
    repro::ByteReader ur{std::span<const std::uint8_t>(bytes)};
    out.udp = net::UdpHeader::parse(ur);
    out.ip.protocol = net::IpProto::kUdp;
  } else if (icmp_occ > 0) {
    auto bytes = read_bytes(row, kIcmpOffset, 8);
    repro::ByteReader ir{std::span<const std::uint8_t>(bytes)};
    out.icmp = net::IcmpHeader::parse(ir);
    out.ip.protocol = net::IpProto::kIcmp;
  } else {
    // IP-only row (no transport region occupied): synthesize a payload-less
    // UDP packet so the result is still replayable.
    out.udp = net::UdpHeader{};
    out.ip.protocol = net::IpProto::kUdp;
  }

  // Reconstruct payload length from the IPv4 total length, clamped to a
  // sane range (generated lengths can be arbitrary bit patterns).
  const std::size_t header_len = out.ip.header_length() + out.l4_length();
  std::size_t payload_len = 0;
  if (out.ip.total_length > header_len) {
    payload_len = std::min<std::size_t>(out.ip.total_length - header_len, 9000);
  }
  out.payload.assign(payload_len, 0);
  out.ip.total_length = repro::narrow<std::uint16_t>(out.datagram_length());
  REPRO_ENSURE(out.ip.header_length() >= 20,
               "decode_packet: reconstructed IPv4 header shorter than minimum");
  return true;
}

net::Flow decode_flow(const Matrix& matrix, double inter_packet_gap) {
  REPRO_SPAN("nprint.decode_flow");
  REPRO_REQUIRE(inter_packet_gap >= 0.0,
                "decode_flow: inter-packet gap must be non-negative");
  telemetry::count("nprint.flows_decoded");
  net::Flow flow;
  // Rows decode independently into per-row slots; the serial pass after
  // preserves row order and assigns timestamps only to occupied rows.
  std::vector<net::Packet> decoded(matrix.rows());
  std::vector<std::uint8_t> occupied(matrix.rows(), 0);
  parallel::parallel_for_each(0, matrix.rows(), 8, [&](std::size_t r) {
    occupied[r] =
        decode_packet(matrix.data().data() + r * kBitsPerPacket, decoded[r])
            ? 1
            : 0;
  });
  double t = 0.0;
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    if (!occupied[r]) continue;
    decoded[r].timestamp = t;
    t += inter_packet_gap;
    flow.packets.push_back(std::move(decoded[r]));
  }
  if (!flow.packets.empty()) {
    flow.key = net::FlowKey::from_packet(flow.packets.front()).canonical();
  }
  return flow;
}

void quantize(Matrix& matrix) noexcept {
  for (float& v : matrix.data()) {
    if (v < -0.5f) {
      v = -1.0f;
    } else if (v < 0.5f) {
      v = 0.0f;
    } else {
      v = 1.0f;
    }
  }
  REPRO_ENSURE(ternary_fraction(matrix) == 1.0,
               "quantize: every cell must land exactly on {-1, 0, 1}");
}

std::string to_csv(const Matrix& matrix, bool include_header) {
  std::string out;
  out.reserve(matrix.rows() * kBitsPerPacket * 3);
  if (include_header) {
    for (std::size_t i = 0; i < kBitsPerPacket; ++i) {
      if (i) out += ',';
      out += feature_name(i);
    }
    out += '\n';
  }
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    for (std::size_t i = 0; i < kBitsPerPacket; ++i) {
      if (i) out += ',';
      const float v = matrix.at(r, i);
      out += v > 0.5f ? "1" : (v > -0.5f ? "0" : "-1");
    }
    out += '\n';
  }
  return out;
}

double ternary_fraction(const Matrix& matrix) noexcept {
  if (matrix.data().empty()) return 1.0;
  std::size_t n = 0;
  for (float v : matrix.data()) {
    if (v == -1.0f || v == 0.0f || v == 1.0f) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(matrix.data().size());
}

}  // namespace repro::nprint
