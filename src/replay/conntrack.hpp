// Stateful connection tracker (netfilter-conntrack style): a TCP state
// machine that only accepts packets consistent with a properly
// established connection, plus UDP/ICMP pseudo-state.
//
// This is the strictest consumer of generated traces in the repository:
// a synthetic TCP flow is only "replayable" in the paper's sense if a
// stateful firewall accepts it — SYN first, three-way handshake in
// order, sequence numbers advancing consistently, FIN/RST teardown. The
// acceptance rate of generated traffic through this tracker is the
// repro's quantitative answer to §2.3's criticism that GAN output
// "cannot be reliably replayed to test network functions".
#pragma once

#include <cstdint>
#include <map>

#include "net/flow.hpp"
#include "replay/engine.hpp"

namespace repro::replay {

/// TCP connection states (simplified netfilter model).
enum class TcpState {
  kNone,
  kSynSent,
  kSynReceived,
  kEstablished,
  kFinWait,    // one side sent FIN
  kClosed,     // both FINs (or RST) seen
};

struct ConntrackConfig {
  /// Drop packets that do not match an established/opening connection
  /// (strict firewall). When false, violations are counted but
  /// forwarded (monitor mode).
  bool enforce = true;
  /// Require in-window sequence progression for TCP data segments.
  bool check_sequence = true;
  /// Acceptable forward jump in sequence numbers (bytes) before a
  /// segment counts as a violation.
  std::uint32_t max_sequence_jump = 1 << 20;
  /// Idle timeout (seconds) after which a connection entry is recycled.
  double idle_timeout = 300.0;
};

struct ConntrackStats {
  std::size_t tcp_packets = 0;
  std::size_t tcp_accepted = 0;
  std::size_t invalid_state = 0;     // e.g. data before handshake
  std::size_t invalid_sequence = 0;  // out-of-window segment
  std::size_t handshakes_completed = 0;
  std::size_t teardowns_completed = 0;
  std::size_t udp_packets = 0;
  std::size_t icmp_packets = 0;
  std::size_t connections_tracked = 0;

  double tcp_acceptance() const noexcept {
    return tcp_packets == 0 ? 1.0
                            : static_cast<double>(tcp_accepted) /
                                  static_cast<double>(tcp_packets);
  }
};

class ConntrackFunction : public NetworkFunction {
 public:
  explicit ConntrackFunction(ConntrackConfig config = ConntrackConfig{});

  std::string name() const override { return "conntrack"; }
  Verdict process(net::Packet& packet, double timestamp) override;

  const ConntrackStats& stats() const noexcept { return stats_; }

  /// State of the connection carrying `packet`'s 5-tuple (kNone if
  /// untracked).
  TcpState state_of(const net::Packet& packet) const;

 private:
  struct Entry {
    TcpState state = TcpState::kNone;
    // Endpoint A is the canonical-key source; we track per-direction
    // next expected sequence numbers.
    std::uint32_t next_seq_a = 0;
    std::uint32_t next_seq_b = 0;
    bool has_seq_a = false;
    bool has_seq_b = false;
    bool fin_a = false;
    bool fin_b = false;
    double last_seen = 0.0;
  };

  Verdict process_tcp(net::Packet& packet, double timestamp);

  ConntrackConfig config_;
  ConntrackStats stats_;
  std::map<net::FlowKey, Entry> table_;
};

}  // namespace repro::replay
