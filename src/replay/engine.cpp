#include "replay/engine.hpp"

#include <algorithm>
#include <utility>

#include "common/contracts.hpp"
#include "common/telemetry/trace.hpp"

namespace repro::replay {

void ReplayEngine::add_function(std::unique_ptr<NetworkFunction> function) {
  chain_.push_back(std::move(function));
}

void ReplayEngine::begin() {
  report_ = ReplayReport{};
  report_.functions.resize(chain_.size());
  for (std::size_t i = 0; i < chain_.size(); ++i) {
    report_.functions[i].name = chain_[i]->name();
  }
  active_ = true;
  have_time_ = false;
  first_time_ = 0.0;
  last_time_ = 0.0;
}

bool ReplayEngine::process(net::Packet& packet, double timestamp) {
  REPRO_REQUIRE(active_, "ReplayEngine::process before begin()");
  ++report_.input_packets;
  if (!have_time_) {
    first_time_ = timestamp;
    have_time_ = true;
  }
  last_time_ = timestamp;
  bool alive = true;
  for (std::size_t i = 0; i < chain_.size() && alive; ++i) {
    FunctionStats& stats = report_.functions[i];
    ++stats.processed;
    if (chain_[i]->process(packet, timestamp) == Verdict::kForward) {
      ++stats.forwarded;
    } else {
      ++stats.dropped;
      alive = false;
    }
  }
  if (alive) ++report_.delivered_packets;
  return alive;
}

ReplayReport ReplayEngine::finish() {
  REPRO_REQUIRE(active_, "ReplayEngine::finish before begin()");
  for (auto& function : chain_) function->finish();
  report_.trace_duration = have_time_ ? last_time_ - first_time_ : 0.0;
  telemetry::count("replay.packets_in", report_.input_packets);
  telemetry::count("replay.packets_delivered", report_.delivered_packets);
  active_ = false;
  return std::move(report_);
}

ReplayReport ReplayEngine::replay(const std::vector<net::Packet>& packets,
                                  double time_scale) {
  REPRO_SPAN("replay.run");
  begin();
  if (packets.empty()) return finish();

  std::vector<const net::Packet*> ordered;
  ordered.reserve(packets.size());
  for (const auto& pkt : packets) ordered.push_back(&pkt);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const net::Packet* a, const net::Packet* b) {
                     return a->timestamp < b->timestamp;
                   });

  const double t0 = ordered.front()->timestamp;
  for (const net::Packet* src : ordered) {
    net::Packet pkt = *src;
    const double timestamp = t0 + (src->timestamp - t0) * time_scale;
    pkt.timestamp = timestamp;
    process(pkt, timestamp);
  }
  return finish();
}

}  // namespace repro::replay
