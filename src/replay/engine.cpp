#include "replay/engine.hpp"

#include <algorithm>

#include "common/telemetry/trace.hpp"

namespace repro::replay {

void ReplayEngine::add_function(std::unique_ptr<NetworkFunction> function) {
  chain_.push_back(std::move(function));
}

ReplayReport ReplayEngine::replay(const std::vector<net::Packet>& packets,
                                  double time_scale) {
  REPRO_SPAN("replay.run");
  telemetry::count("replay.packets_in", packets.size());
  ReplayReport report;
  report.input_packets = packets.size();
  report.functions.resize(chain_.size());
  for (std::size_t i = 0; i < chain_.size(); ++i) {
    report.functions[i].name = chain_[i]->name();
  }
  if (packets.empty()) return report;

  std::vector<const net::Packet*> ordered;
  ordered.reserve(packets.size());
  for (const auto& pkt : packets) ordered.push_back(&pkt);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const net::Packet* a, const net::Packet* b) {
                     return a->timestamp < b->timestamp;
                   });

  const double t0 = ordered.front()->timestamp;
  for (const net::Packet* src : ordered) {
    net::Packet pkt = *src;
    const double timestamp = t0 + (src->timestamp - t0) * time_scale;
    pkt.timestamp = timestamp;
    bool alive = true;
    for (std::size_t i = 0; i < chain_.size() && alive; ++i) {
      FunctionStats& stats = report.functions[i];
      ++stats.processed;
      if (chain_[i]->process(pkt, timestamp) == Verdict::kForward) {
        ++stats.forwarded;
      } else {
        ++stats.dropped;
        alive = false;
      }
    }
    if (alive) ++report.delivered_packets;
  }
  telemetry::count("replay.packets_delivered", report.delivered_packets);
  report.trace_duration =
      (ordered.back()->timestamp - t0) * time_scale;
  for (auto& function : chain_) function->finish();
  return report;
}

}  // namespace repro::replay
