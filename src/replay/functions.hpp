// Stock network functions for the replay engine: counters, ACLs, a
// token-bucket rate limiter, and a NAT-style address rewriter. Together
// with ConntrackFunction these form a small but realistic middlebox
// chain for exercising replayed traces.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "net/flow.hpp"
#include "replay/engine.hpp"

namespace repro::replay {

/// Counts packets/bytes per flow and per protocol; never drops.
class FlowCounter : public NetworkFunction {
 public:
  struct FlowEntry {
    std::size_t packets = 0;
    std::size_t bytes = 0;
    double first_seen = 0.0;
    double last_seen = 0.0;
  };

  std::string name() const override { return "flow-counter"; }
  Verdict process(net::Packet& packet, double timestamp) override;

  const std::map<net::FlowKey, FlowEntry>& flows() const noexcept {
    return flows_;
  }
  std::size_t packets_by_protocol(net::IpProto proto) const;

 private:
  std::map<net::FlowKey, FlowEntry> flows_;
  std::map<net::IpProto, std::size_t> by_protocol_;
};

/// Drops packets whose destination port is on the deny list.
class PortAcl : public NetworkFunction {
 public:
  explicit PortAcl(std::set<std::uint16_t> denied_ports)
      : denied_(std::move(denied_ports)) {}

  std::string name() const override { return "port-acl"; }
  Verdict process(net::Packet& packet, double timestamp) override;

  std::size_t drops() const noexcept { return drops_; }

 private:
  std::set<std::uint16_t> denied_;
  std::size_t drops_ = 0;
};

/// Token-bucket rate limiter over the whole trace (bytes per second,
/// with a burst allowance). Uses packet timestamps, not wall time.
class RateLimiter : public NetworkFunction {
 public:
  RateLimiter(double bytes_per_second, double burst_bytes)
      : rate_(bytes_per_second), burst_(burst_bytes), tokens_(burst_bytes) {}

  std::string name() const override { return "rate-limiter"; }
  Verdict process(net::Packet& packet, double timestamp) override;

  std::size_t drops() const noexcept { return drops_; }

 private:
  double rate_;
  double burst_;
  double tokens_;
  double last_time_ = -1.0;
  std::size_t drops_ = 0;
};

/// Bidirectional source-NAT: private (RFC1918) source addresses are
/// rewritten to one public address on the way out, and return traffic
/// addressed to the public address is translated back using a
/// (protocol, client port) mapping recorded on the forward path — so
/// stateful functions behind the NAT still see one consistent 5-tuple
/// per connection. Checksums stay valid because the Packet struct
/// recomputes them on serialize().
class SourceNat : public NetworkFunction {
 public:
  explicit SourceNat(std::uint32_t public_address)
      : public_address_(public_address) {}

  std::string name() const override { return "source-nat"; }
  Verdict process(net::Packet& packet, double timestamp) override;

  std::size_t rewrites() const noexcept { return rewrites_; }
  std::size_t reverse_rewrites() const noexcept { return reverse_rewrites_; }

  static bool is_private(std::uint32_t address) noexcept;

 private:
  struct MappingKey {
    net::IpProto protocol;
    std::uint16_t client_port;
    auto operator<=>(const MappingKey&) const = default;
  };

  std::uint32_t public_address_;
  std::size_t rewrites_ = 0;
  std::size_t reverse_rewrites_ = 0;
  std::map<MappingKey, std::uint32_t> mappings_;  // -> private address
};

}  // namespace repro::replay
