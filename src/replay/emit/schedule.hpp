// Event scheduling for the open-loop emitter: a binary-heap queue of
// (timestamp, event) pairs plus the flow-arrival processes that decide
// *when* new flows enter the wire. Modeled on the BESS FlowGen design
// (event-queue load generator with exponential / Pareto arrivals): the
// emitter drains this queue in time order, so the whole replay is a
// discrete-event simulation that a pacer then maps onto a clock.
//
// Everything here is deterministic given `EmitConfig::seed`: arrival
// gaps come from repro::Rng and ties are broken by (flow id, packet
// index), never by heap insertion order or pointer identity.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/rng.hpp"

namespace repro::replay::emit {

enum class EventKind : std::uint8_t {
  kFlowArrival = 0,  // a new flow enters the system
  kPacket = 1,       // one packet of an active flow hits the wire
};

/// One scheduled occurrence. `flow_id` is the emitter-assigned arrival
/// ordinal (0, 1, 2, ...), not a 5-tuple hash, so the tie-break below is
/// stable across runs and thread counts.
struct Event {
  double time = 0.0;
  EventKind kind = EventKind::kFlowArrival;
  std::uint64_t flow_id = 0;
  std::uint32_t packet_index = 0;
};

/// Strict-weak ordering for the min-heap: earliest time first; equal
/// timestamps break by (flow id, kind, packet index) so simultaneous
/// events have one canonical order. Arrivals sort before packets at the
/// same instant so a flow's first packet can be scheduled at its own
/// arrival time.
struct EventAfter {
  bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.time != b.time) return a.time > b.time;
    if (a.flow_id != b.flow_id) return a.flow_id > b.flow_id;
    if (a.kind != b.kind) return a.kind > b.kind;
    return a.packet_index > b.packet_index;
  }
};

/// Binary-heap event queue. Thin wrapper over std::priority_queue so the
/// ordering policy lives in exactly one place.
class EventQueue {
 public:
  void push(const Event& event) { heap_.push(event); }

  /// Removes and returns the earliest event. Precondition: !empty().
  Event pop();

  const Event& top() const { return heap_.top(); }
  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }

 private:
  std::priority_queue<Event, std::vector<Event>, EventAfter> heap_;
};

/// Flow inter-arrival process.
enum class Arrival : std::uint8_t {
  kFixedRate,    // constant gap 1/rate — a perfectly paced source
  kExponential,  // Poisson arrivals at `rate` flows/sec
  kParetoBurst,  // heavy-tailed gaps (bursty), mean still 1/rate
};

/// Draws successive inter-arrival gaps, deterministic given the seed.
/// For kParetoBurst the scale is chosen so the mean gap stays 1/rate
/// (requires alpha > 1): xm = (alpha - 1) / (alpha * rate).
class ArrivalModel {
 public:
  ArrivalModel(Arrival kind, double flow_rate, double pareto_alpha,
               std::uint64_t seed);

  /// Next gap in seconds until the following flow arrival (> 0).
  double next_gap();

  Arrival kind() const noexcept { return kind_; }
  double flow_rate() const noexcept { return flow_rate_; }

 private:
  Arrival kind_;
  double flow_rate_;
  double pareto_alpha_;
  double pareto_xm_;
  Rng rng_;
};

/// Knobs for one open-loop emission run. The aggregate packet rate is
/// the primary target; the flow arrival rate is derived from it as
/// target_pps / packets_per_flow (BESS FlowGen's `flow_rate = pps /
/// flow_pkts` relation), so operators think in wire rate and the
/// scheduler thinks in flows.
struct EmitConfig {
  double target_pps = 10000.0;  // aggregate packets/sec to sustain
  // Packets per flow used to derive the flow arrival rate. 0 means
  // "calibrate from the first fetched flow" (then fixed for the run).
  std::size_t packets_per_flow_hint = 0;
  std::uint64_t total_flows = 0;  // stop after this many arrivals (0 = no cap)
  double duration = 0.0;          // stop arrivals after this horizon (0 = none)
  Arrival arrival = Arrival::kFixedRate;
  double pareto_alpha = 1.5;  // tail index for kParetoBurst (> 1)
  // Rescales intra-flow inter-packet gaps, same semantics as
  // ReplayEngine::replay (2.0 = twice as slow).
  double time_scale = 1.0;
  std::uint64_t seed = 1;
  // Cap on retained jitter/lateness samples (reservoir is a prefix cap:
  // percentiles describe the first N emissions).
  std::size_t max_jitter_samples = 1u << 20;
};

}  // namespace repro::replay::emit
