// Packet sinks for the open-loop emitter: where paced packets land.
//
//   * NullSink — counts packets/bytes, the pure rate-measurement sink;
//   * PcapSink — writes each emitted packet (stamped with its emission
//     time) through net::PcapWriter, so a paced run is replayable by
//     tcpreplay/Wireshark;
//   * ChainSink — drives packets through a ReplayEngine network-function
//     chain (NAT -> conntrack -> ...) via the engine's incremental API,
//     measuring e.g. strict-firewall acceptance *at rate* rather than on
//     a pre-sorted recorded trace.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "net/packet.hpp"
#include "net/pcap.hpp"
#include "replay/engine.hpp"

namespace repro::replay::emit {

/// Receives each paced packet at its (virtual or real) emission time.
class PacketSink {
 public:
  virtual ~PacketSink() = default;

  virtual std::string name() const = 0;

  /// One packet hitting the wire at `time` (seconds on the pacer axis).
  virtual void emit(const net::Packet& packet, double time) = 0;

  /// Called once after the last packet (flush files, close chains).
  virtual void finish() {}
};

/// Counts emissions; the sink for pure scheduling benchmarks.
class NullSink final : public PacketSink {
 public:
  std::string name() const override { return "null"; }

  void emit(const net::Packet& packet, double time) override {
    (void)time;
    ++packets_;
    bytes_ += packet.payload.size();
  }

  std::uint64_t packets() const noexcept { return packets_; }
  std::uint64_t payload_bytes() const noexcept { return bytes_; }

 private:
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
};

/// Writes emitted packets to a pcap stream, timestamped with emission
/// time — the on-the-wire record of the paced run.
class PcapSink final : public PacketSink {
 public:
  explicit PcapSink(std::ostream& out, std::uint32_t snaplen = 65535)
      : writer_(out, snaplen) {}

  std::string name() const override { return "pcap"; }
  void emit(const net::Packet& packet, double time) override;

  std::size_t packets_written() const noexcept {
    return writer_.records_written();
  }

 private:
  net::PcapWriter writer_;
};

/// Feeds emitted packets through a network-function chain. The sink
/// owns the engine; configure the chain through engine() before the
/// run, read the final ReplayReport through report() after finish().
class ChainSink final : public PacketSink {
 public:
  std::string name() const override { return "chain"; }

  /// Copies the packet (functions may rewrite headers) and runs it
  /// through the chain. Opens the engine run lazily on first emit so
  /// the chain can be configured after construction.
  void emit(const net::Packet& packet, double time) override;
  void finish() override;

  ReplayEngine& engine() noexcept { return engine_; }
  const ReplayReport& report() const noexcept { return report_; }

 private:
  ReplayEngine engine_;
  ReplayReport report_;
  bool began_ = false;
};

}  // namespace repro::replay::emit
