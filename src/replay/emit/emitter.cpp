#include "replay/emit/emitter.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "common/telemetry/metrics.hpp"
#include "common/telemetry/trace.hpp"

namespace repro::replay::emit {

namespace {

/// Nearest-rank percentile over an unsorted sample buffer (sorts it).
double percentile(std::vector<double>& samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto index = static_cast<std::size_t>(pos + 0.5);
  return samples[std::min(index, samples.size() - 1)];
}

}  // namespace

OpenLoopEmitter::OpenLoopEmitter(const EmitConfig& config, FlowSource& source,
                                 Pacer& pacer, PacketSink& sink)
    : config_(config), source_(source), pacer_(pacer), sink_(sink) {
  REPRO_REQUIRE(config_.target_pps > 0.0,
                "OpenLoopEmitter: target_pps must be > 0");
  REPRO_REQUIRE(config_.total_flows > 0 || config_.duration > 0.0,
                "OpenLoopEmitter: need a stop condition "
                "(total_flows or duration)");
  REPRO_REQUIRE(config_.time_scale > 0.0,
                "OpenLoopEmitter: time_scale must be > 0");
  packets_per_flow_ = config_.packets_per_flow_hint;
  report_.target_pps = config_.target_pps;
}

void OpenLoopEmitter::on_arrival(const Event& event) {
  ++report_.flows_scheduled;
  std::optional<net::Flow> flow = source_.next_flow();
  if (flow.has_value() && !flow->packets.empty()) {
    ++report_.flows_emitted;
    if (packets_per_flow_ == 0) {
      // Calibrate the flow arrival rate from the first real flow, then
      // keep it fixed so the schedule stays deterministic.
      packets_per_flow_ = flow->packets.size();
    }
    ActiveFlow active;
    active.packets = std::move(flow->packets);
    const double base = active.packets.front().timestamp;
    for (std::size_t j = 0; j < active.packets.size(); ++j) {
      Event pkt;
      pkt.time = event.time +
                 (active.packets[j].timestamp - base) * config_.time_scale;
      pkt.kind = EventKind::kPacket;
      pkt.flow_id = event.flow_id;
      pkt.packet_index = static_cast<std::uint32_t>(j);
      queue_.push(pkt);
    }
    report_.packets_scheduled += active.packets.size();
    active_.emplace(event.flow_id, std::move(active));
  } else {
    // Open-loop: the source could not keep up (or an empty flow was
    // served). Wire time does not stall; the miss is recorded.
    ++report_.underruns;
    if (packets_per_flow_ == 0) packets_per_flow_ = 1;
  }

  if (!arrivals_.has_value()) {
    const double flow_rate =
        config_.target_pps / static_cast<double>(packets_per_flow_);
    arrivals_.emplace(config_.arrival, flow_rate, config_.pareto_alpha,
                      config_.seed);
  }
  if (config_.total_flows > 0 && arrivals_scheduled_ >= config_.total_flows) {
    return;
  }
  const double next_time = event.time + arrivals_->next_gap();
  if (config_.duration > 0.0 && next_time > config_.duration) return;
  Event next;
  next.time = next_time;
  next.kind = EventKind::kFlowArrival;
  next.flow_id = next_flow_id_++;
  queue_.push(next);
  ++arrivals_scheduled_;
}

void OpenLoopEmitter::on_packet(const Event& event) {
  const double now = pacer_.wait_until(event.time);
  auto it = active_.find(event.flow_id);
  REPRO_REQUIRE(it != active_.end(), "emit: packet event for inactive flow");
  ActiveFlow& flow = it->second;

  // Emit with the *scheduled* time so the produced bytes are identical
  // under virtual and real pacing; `now - time` (lateness) captures the
  // real clock's deviation separately.
  sink_.emit(flow.packets[event.packet_index], event.time);
  ++report_.packets_emitted;

  if (lateness_samples_.size() < config_.max_jitter_samples) {
    lateness_samples_.push_back(now - event.time);
  }
  if (have_emit_ && jitter_samples_.size() < config_.max_jitter_samples) {
    const double ideal_gap = 1.0 / config_.target_pps;
    jitter_samples_.push_back(
        std::abs((event.time - prev_emit_) - ideal_gap));
  }
  if (!have_emit_) {
    report_.first_emit = event.time;
    have_emit_ = true;
  }
  report_.last_emit = event.time;
  prev_emit_ = event.time;

  ++flow.emitted;
  if (flow.emitted == flow.packets.size()) active_.erase(it);
}

EmitReport OpenLoopEmitter::run() {
  REPRO_SPAN("replay.emit.run");
  // Prime the schedule: the first flow arrives at t = 0.
  Event first;
  first.time = 0.0;
  first.kind = EventKind::kFlowArrival;
  first.flow_id = next_flow_id_++;
  queue_.push(first);
  ++arrivals_scheduled_;

  while (!queue_.empty()) {
    const Event event = queue_.pop();
    if (event.kind == EventKind::kFlowArrival) {
      on_arrival(event);
    } else {
      on_packet(event);
    }
  }
  sink_.finish();

  report_.packets_per_flow = packets_per_flow_;
  const double span = report_.last_emit - report_.first_emit;
  if (report_.packets_emitted > 1 && span > 0.0) {
    report_.achieved_pps =
        static_cast<double>(report_.packets_emitted - 1) / span;
  }
  report_.jitter_p50 = percentile(jitter_samples_, 0.50);
  report_.jitter_p95 = percentile(jitter_samples_, 0.95);
  report_.jitter_p99 = percentile(jitter_samples_, 0.99);
  report_.lateness_p50 = percentile(lateness_samples_, 0.50);
  report_.lateness_p95 = percentile(lateness_samples_, 0.95);
  report_.lateness_p99 = percentile(lateness_samples_, 0.99);

  telemetry::count("replay.emit.flows", report_.flows_emitted);
  telemetry::count("replay.emit.packets", report_.packets_emitted);
  telemetry::count("replay.emit.underruns", report_.underruns);
  REPRO_ENSURE(report_.conserved(), "emit: event conservation violated");
  return report_;
}

}  // namespace repro::replay::emit
