// Open-loop emitter: the discrete-event loop that ties the pieces
// together. Flow arrivals (replay/emit/schedule) fetch flows from a
// FlowSource, packet events pace through a Pacer and land in a
// PacketSink. Open-loop means the schedule never waits for the source:
// if a flow arrival fires and no flow is ready, the emitter records an
// underrun and wire time keeps moving — exactly how a hardware load
// generator behaves when its feeder can't keep up.
//
// Conservation invariant (checked by benches and tests):
//   flows_scheduled  == flows_emitted + underruns
//   packets_emitted  == packets_scheduled
// Every scheduled event is accounted for; nothing is silently dropped.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "net/packet.hpp"
#include "replay/emit/pacer.hpp"
#include "replay/emit/schedule.hpp"
#include "replay/emit/sink.hpp"
#include "replay/emit/source.hpp"

namespace repro::replay::emit {

struct EmitReport {
  // Event conservation.
  std::uint64_t flows_scheduled = 0;    ///< arrival events fired
  std::uint64_t flows_emitted = 0;      ///< arrivals that fetched a flow
  std::uint64_t underruns = 0;          ///< arrivals with no flow ready
  std::uint64_t packets_scheduled = 0;  ///< packet events pushed
  std::uint64_t packets_emitted = 0;    ///< packet events delivered

  // Rate actually achieved on the pacer's clock axis.
  double first_emit = 0.0;
  double last_emit = 0.0;
  double achieved_pps = 0.0;
  double target_pps = 0.0;
  /// Packets/flow used to derive the flow arrival rate (the hint, or
  /// the calibrated value from the first fetched flow).
  std::size_t packets_per_flow = 0;

  // Scheduling jitter: |inter-emission gap - 1/target_pps| percentiles,
  // i.e. distance from perfectly uniform wire spacing. Meaningful in
  // virtual and real time alike.
  double jitter_p50 = 0.0;
  double jitter_p95 = 0.0;
  double jitter_p99 = 0.0;

  // Pacer lateness: pacer.now() - deadline at each emission. Zero by
  // construction under VirtualPacer; the real-clock cost of pacing.
  double lateness_p50 = 0.0;
  double lateness_p95 = 0.0;
  double lateness_p99 = 0.0;

  bool conserved() const noexcept {
    return packets_emitted == packets_scheduled &&
           flows_scheduled == flows_emitted + underruns;
  }
};

/// Drives one emission run. Construct, then run() exactly once.
class OpenLoopEmitter {
 public:
  OpenLoopEmitter(const EmitConfig& config, FlowSource& source, Pacer& pacer,
                  PacketSink& sink);

  /// Executes the event loop to completion and returns the report.
  /// Calls sink.finish() before returning.
  EmitReport run();

 private:
  struct ActiveFlow {
    std::vector<net::Packet> packets;
    std::uint32_t emitted = 0;
  };

  void on_arrival(const Event& event);
  void on_packet(const Event& event);

  EmitConfig config_;
  FlowSource& source_;
  Pacer& pacer_;
  PacketSink& sink_;

  EventQueue queue_;
  std::map<std::uint64_t, ActiveFlow> active_;
  EmitReport report_;
  /// Constructed once packets_per_flow is known (hint or calibration):
  /// flow_rate = target_pps / packets_per_flow.
  std::optional<ArrivalModel> arrivals_;
  std::size_t packets_per_flow_ = 0;  // 0 until calibrated
  std::uint64_t arrivals_scheduled_ = 0;
  std::uint64_t next_flow_id_ = 0;
  bool have_emit_ = false;
  double prev_emit_ = 0.0;
  std::vector<double> jitter_samples_;
  std::vector<double> lateness_samples_;
};

}  // namespace repro::replay::emit
