#include "replay/emit/pacer.hpp"

// The ONLY translation unit in src/replay/ permitted to read the wall
// clock (lint rule RL024 allows exactly this file, mirroring RL006's
// src/serve/clock.cpp exemption). Every other replay component paces
// through the Pacer interface so runs stay deterministic and testable.

#include <chrono>
#include <thread>

#include "common/contracts.hpp"

namespace repro::replay::emit {

namespace {

class RealtimePacer final : public Pacer {
 public:
  explicit RealtimePacer(double spin_threshold)
      : spin_threshold_(spin_threshold),
        epoch_(std::chrono::steady_clock::now()) {}

  double now() override {
    const auto elapsed = std::chrono::steady_clock::now() - epoch_;
    return std::chrono::duration<double>(elapsed).count();
  }

  double wait_until(double deadline) override {
    // Coarse sleep leaves `spin_threshold_` seconds of slack for the
    // scheduler's wake-up jitter, then a spin closes the gap.
    double current = now();
    const double sleep_until = deadline - spin_threshold_;
    if (current < sleep_until) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(sleep_until - current));
      current = now();
    }
    while (current < deadline) {
      current = now();
    }
    return current;
  }

 private:
  double spin_threshold_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace

std::unique_ptr<Pacer> make_realtime_pacer(double spin_threshold) {
  REPRO_REQUIRE(spin_threshold >= 0.0,
                "make_realtime_pacer: spin_threshold must be >= 0");
  return std::make_unique<RealtimePacer>(spin_threshold);
}

}  // namespace repro::replay::emit
