#include "replay/emit/schedule.hpp"

#include "common/contracts.hpp"

namespace repro::replay::emit {

Event EventQueue::pop() {
  REPRO_REQUIRE(!heap_.empty(), "EventQueue::pop on empty queue");
  Event event = heap_.top();
  heap_.pop();
  return event;
}

ArrivalModel::ArrivalModel(Arrival kind, double flow_rate,
                           double pareto_alpha, std::uint64_t seed)
    : kind_(kind),
      flow_rate_(flow_rate),
      pareto_alpha_(pareto_alpha),
      pareto_xm_(0.0),
      rng_(seed) {
  REPRO_REQUIRE(flow_rate_ > 0.0, "ArrivalModel: flow_rate must be > 0");
  if (kind_ == Arrival::kParetoBurst) {
    // Mean of Pareto(xm, alpha) is xm * alpha / (alpha - 1); solve for
    // xm so the mean gap equals 1/flow_rate. Needs a finite mean.
    REPRO_REQUIRE(pareto_alpha_ > 1.0,
                  "ArrivalModel: Pareto alpha must be > 1 for a finite mean");
    pareto_xm_ = (pareto_alpha_ - 1.0) / (pareto_alpha_ * flow_rate_);
  }
}

double ArrivalModel::next_gap() {
  switch (kind_) {
    case Arrival::kFixedRate:
      return 1.0 / flow_rate_;
    case Arrival::kExponential:
      return rng_.exponential(flow_rate_);
    case Arrival::kParetoBurst:
      return rng_.pareto(pareto_xm_, pareto_alpha_);
  }
  return 1.0 / flow_rate_;  // unreachable; keeps -Werror happy
}

}  // namespace repro::replay::emit
