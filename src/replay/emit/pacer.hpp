// Pacing clocks for the open-loop emitter. The emitter never reads a
// clock directly: it asks a Pacer to advance to each scheduled
// timestamp. VirtualPacer jumps instantly (tests, benches, bit-exact
// determinism); the real-time pacer sleeps/spins against the steady
// clock. All wall-clock reads in src/replay/ are confined to pacer.cpp
// behind an audited lint exemption (RL024, mirroring RL006's
// serve/clock.cpp carve-out) — everything else stays replayable.
#pragma once

#include <memory>

namespace repro::replay::emit {

/// Clock abstraction the emitter paces against. Times are seconds on an
/// arbitrary monotonic axis starting near 0 at construction.
class Pacer {
 public:
  virtual ~Pacer() = default;

  /// Current time on the pacer's axis.
  virtual double now() = 0;

  /// Blocks (or virtually advances) until `deadline`, then returns
  /// now(). A deadline already in the past returns immediately — the
  /// emitter records the lateness, it never stalls the schedule.
  virtual double wait_until(double deadline) = 0;
};

/// Deterministic pacer: time is a variable that jumps to each deadline.
/// wait_until never moves time backwards, so late events (deadline <
/// now) observe their true lateness just like the real pacer.
class VirtualPacer final : public Pacer {
 public:
  double now() override { return now_; }

  double wait_until(double deadline) override {
    if (deadline > now_) now_ = deadline;
    return now_;
  }

 private:
  double now_ = 0.0;
};

/// Real-time pacer against the steady clock: coarse sleep until
/// `spin_threshold` seconds before the deadline, then spin for
/// precision. Defined in pacer.cpp — the only replay TU allowed to
/// touch the wall clock.
std::unique_ptr<Pacer> make_realtime_pacer(double spin_threshold = 0.0005);

}  // namespace repro::replay::emit
