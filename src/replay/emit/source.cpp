#include "replay/emit/source.hpp"

#include <chrono>
#include <utility>

#include "common/contracts.hpp"
#include "common/telemetry/metrics.hpp"

namespace repro::replay::emit {

std::optional<net::Flow> VectorFlowSource::next_flow() {
  if (flows_.empty()) return std::nullopt;
  if (next_ >= flows_.size()) {
    if (!loop_) return std::nullopt;
    next_ = 0;
  }
  return flows_[next_++];
}

LibraryFlowSource::LibraryFlowSource(diffusion::TraceDiffusion& pipeline,
                                     int class_id,
                                     diffusion::GenerateOptions options,
                                     std::uint64_t seed_base,
                                     std::uint64_t total_flows)
    : pipeline_(pipeline),
      class_id_(class_id),
      options_(options),
      seed_base_(seed_base),
      total_flows_(total_flows) {
  if (options_.count == 0) options_.count = 1;
}

std::optional<net::Flow> LibraryFlowSource::next_flow() {
  if (ready_.empty() && (total_flows_ == 0 || requested_ < total_flows_)) {
    diffusion::GenerateOptions opts = options_;
    if (total_flows_ > 0) {
      const std::uint64_t remaining = total_flows_ - requested_;
      if (opts.count > remaining) {
        opts.count = static_cast<std::size_t>(remaining);
      }
    }
    std::vector<net::Flow> flows =
        pipeline_.generate_seeded(class_id_, opts, seed_base_ + next_request_);
    ++next_request_;
    requested_ += flows.size();
    for (auto& flow : flows) ready_.push_back(std::move(flow));
  }
  if (ready_.empty()) return std::nullopt;
  net::Flow flow = std::move(ready_.front());
  ready_.pop_front();
  return flow;
}

ServedFlowSource::ServedFlowSource(serve::TraceService& service,
                                   ServedSourceConfig config)
    : service_(service), config_(std::move(config)) {
  REPRO_REQUIRE(config_.ring_capacity > 0,
                "ServedFlowSource: ring_capacity must be > 0");
  REPRO_REQUIRE(config_.flows_per_request > 0,
                "ServedFlowSource: flows_per_request must be > 0");
}

void ServedFlowSource::collect() {
  const auto zero = std::chrono::seconds(0);
  while (!in_flight_.empty() &&
         in_flight_.front().response.wait_for(zero) ==
             std::future_status::ready) {
    InFlight done = std::move(in_flight_.front());
    in_flight_.pop_front();
    in_flight_flows_ -= done.flows;
    const serve::Response& response = done.response.get();
    if (response.status == serve::ResponseStatus::kOk) {
      stats_.flows_received += response.flows.size();
      for (const auto& flow : response.flows) ready_.push_back(flow);
    } else {
      // Cancelled mid-flight (deadline sweep / shutdown): the committed
      // flows will never arrive.
      ++stats_.other_rejects;
      flows_committed_ -= done.flows;
    }
  }
}

void ServedFlowSource::prefetch() {
  while (!failed_) {
    if (config_.total_flows > 0 && flows_committed_ >= config_.total_flows) {
      break;
    }
    // Bound the working set: flows sitting in the ring plus flows the
    // service already owes us must stay under ring_capacity.
    if (ready_.size() + in_flight_flows_ >= config_.ring_capacity) break;
    // Steady-state backpressure probe: submit only what the queue would
    // admit. A raced kQueueFull below is still handled (and counted).
    if (service_.queue_headroom() == 0) break;

    std::size_t count = config_.flows_per_request;
    if (config_.total_flows > 0) {
      const std::uint64_t remaining = config_.total_flows - flows_committed_;
      if (count > remaining) count = static_cast<std::size_t>(remaining);
    }
    serve::GenerateRequest request;
    request.model = config_.model;
    request.class_id = config_.class_id;
    request.count = count;
    request.seed = config_.seed_base + next_request_;
    request.sampler = config_.sampler;
    request.ddim_steps = config_.ddim_steps;
    request.precision = config_.precision;

    serve::SubmitResult result = service_.submit(request);
    if (!result.accepted) {
      if (result.reject == serve::RejectReason::kQueueFull) {
        // Raced out of the probed headroom — record and back off; the
        // seed counter does not advance, so the request is retried
        // verbatim on the next prefetch and bit-identity holds.
        ++stats_.queue_full_rejects;
        telemetry::count("replay.emit.source.queue_full");
      } else {
        // Unknown model/class, shutdown, ...: permanent for this run.
        ++stats_.other_rejects;
        failed_ = true;
      }
      break;
    }
    ++stats_.submitted;
    ++next_request_;
    flows_committed_ += count;
    in_flight_flows_ += count;
    in_flight_.push_back(InFlight{result.response, count});
  }
}

std::optional<net::Flow> ServedFlowSource::next_flow() {
  collect();
  prefetch();
  collect();
  if (ready_.empty() && config_.pump_service && !in_flight_.empty()) {
    // Cooperative mode: no background worker is pumping, so drive the
    // service here. This costs model latency but not wire time — the
    // pacer's clock is independent of how long next_flow() takes.
    service_.drain();
    collect();
  }
  if (ready_.empty()) return std::nullopt;
  net::Flow flow = std::move(ready_.front());
  ready_.pop_front();
  ++stats_.flows_served;
  return flow;
}

bool ServedFlowSource::exhausted() const {
  if (!ready_.empty() || !in_flight_.empty()) return false;
  if (failed_) return true;
  return config_.total_flows > 0 && flows_committed_ >= config_.total_flows;
}

}  // namespace repro::replay::emit
