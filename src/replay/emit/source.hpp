// Flow sources for the open-loop emitter: where the flows scheduled by
// replay/emit/schedule actually come from. Three implementations:
//
//   * VectorFlowSource  — pre-materialized flows (tests, pcap replays);
//   * LibraryFlowSource — direct TraceDiffusion::generate_seeded calls,
//     the determinism reference for the served path;
//   * ServedFlowSource  — prefetches flows from serve::TraceService
//     through a bounded ring. Backpressure goes INTO the serve queue
//     (typed kQueueFull rejects, counted, never retried in a spin) and
//     never into the pacer: if the ring is empty when a flow arrival
//     fires, next_flow() returns nullopt and the emitter records an
//     *underrun* instead of stalling wire time.
//
// Seed discipline: LibraryFlowSource and ServedFlowSource both derive
// request r's seed as seed_base + r and only advance the counter on an
// accepted submit, so a served emission is bit-identical to the direct
// library source under the serving determinism contract.
#pragma once

#include <cstdint>
#include <deque>
#include <future>
#include <optional>
#include <string>
#include <vector>

#include "diffusion/pipeline.hpp"
#include "net/flow.hpp"
#include "serve/service.hpp"

namespace repro::replay::emit {

/// Pull interface the emitter fetches from at each flow arrival.
class FlowSource {
 public:
  virtual ~FlowSource() = default;

  virtual std::string name() const = 0;

  /// Next flow, or nullopt if none is available *right now* (the
  /// emitter records an underrun and keeps pacing).
  virtual std::optional<net::Flow> next_flow() = 0;

  /// True once the source will never produce another flow; lets the
  /// emitter distinguish "dry forever" from a transient underrun.
  virtual bool exhausted() const = 0;
};

/// Serves a fixed vector of flows, optionally looping forever.
class VectorFlowSource final : public FlowSource {
 public:
  explicit VectorFlowSource(std::vector<net::Flow> flows, bool loop = false)
      : flows_(std::move(flows)), loop_(loop) {}

  std::string name() const override { return "vector"; }
  std::optional<net::Flow> next_flow() override;
  bool exhausted() const override {
    return !loop_ && next_ >= flows_.size();
  }

 private:
  std::vector<net::Flow> flows_;
  bool loop_;
  std::size_t next_ = 0;
};

/// Direct in-process model calls through the seeded generation path.
/// Request r draws `options.count` flows at seed `seed_base + r` — the
/// exact derivation the serving layer applies, so this source is the
/// bit-identity reference for ServedFlowSource. total_flows == 0 means
/// unlimited.
class LibraryFlowSource final : public FlowSource {
 public:
  LibraryFlowSource(diffusion::TraceDiffusion& pipeline, int class_id,
                    diffusion::GenerateOptions options,
                    std::uint64_t seed_base, std::uint64_t total_flows);

  std::string name() const override { return "library"; }
  std::optional<net::Flow> next_flow() override;
  bool exhausted() const override {
    return ready_.empty() && total_flows_ > 0 && requested_ >= total_flows_;
  }

 private:
  diffusion::TraceDiffusion& pipeline_;
  int class_id_;
  diffusion::GenerateOptions options_;
  std::uint64_t seed_base_;
  std::uint64_t total_flows_;
  std::uint64_t requested_ = 0;  // flows asked of the model so far
  std::uint64_t next_request_ = 0;
  std::deque<net::Flow> ready_;
};

struct ServedSourceConfig {
  std::string model = "default";
  int class_id = 0;
  std::uint64_t seed_base = 1;
  std::uint64_t total_flows = 0;  ///< stop requesting after this many (0 = unlimited)
  /// Max flows resident in the prefetch ring + in flight, i.e. the
  /// open-loop generator's working-set bound against the service.
  std::size_t ring_capacity = 8;
  std::size_t flows_per_request = 1;
  diffusion::SamplerKind sampler = diffusion::SamplerKind::kDdim;
  std::size_t ddim_steps = 20;
  nn::Precision precision = nn::Precision::kFp32;
  /// Cooperative mode: when the ring runs dry, drive service.drain()
  /// from next_flow() so single-threaded tests/benches make progress.
  /// Disable when a background worker pumps the service.
  bool pump_service = true;
};

/// Counters the bench/CLI report alongside the emitter's own.
struct ServedSourceStats {
  std::uint64_t submitted = 0;
  std::uint64_t queue_full_rejects = 0;
  std::uint64_t other_rejects = 0;
  std::uint64_t flows_received = 0;
  std::uint64_t flows_served = 0;
};

/// Prefetches flows from a TraceService through a bounded ring.
///
/// prefetch() first probes queue_headroom() so steady-state operation
/// submits only what the service would admit; a raced kQueueFull reject
/// (another producer won the headroom) is counted and the seed counter
/// does NOT advance, preserving bit-identity with LibraryFlowSource.
class ServedFlowSource final : public FlowSource {
 public:
  ServedFlowSource(serve::TraceService& service, ServedSourceConfig config);

  std::string name() const override { return "served"; }
  std::optional<net::Flow> next_flow() override;
  bool exhausted() const override;

  const ServedSourceStats& stats() const noexcept { return stats_; }

  /// Issues as many submissions as the ring bound and the service's
  /// queue headroom allow. Called from next_flow(); exposed so callers
  /// can warm the ring before the first arrival fires.
  void prefetch();

 private:
  void collect();  // move ready futures' flows into the ring

  struct InFlight {
    std::shared_future<serve::Response> response;
    std::size_t flows = 0;  ///< flows this request committed to deliver
  };

  serve::TraceService& service_;
  ServedSourceConfig config_;
  ServedSourceStats stats_;
  std::uint64_t next_request_ = 0;    // advanced only on accepted submits
  std::uint64_t flows_committed_ = 0;  // flows accepted submits will yield
  std::size_t in_flight_flows_ = 0;
  bool failed_ = false;  // persistent reject (unknown model/class, ...)
  std::deque<InFlight> in_flight_;
  std::deque<net::Flow> ready_;
};

}  // namespace repro::replay::emit
