#include "replay/emit/sink.hpp"

namespace repro::replay::emit {

void PcapSink::emit(const net::Packet& packet, double time) {
  net::Packet stamped = packet;
  stamped.timestamp = time;
  writer_.write_packet(stamped);
}

void ChainSink::emit(const net::Packet& packet, double time) {
  if (!began_) {
    engine_.begin();
    began_ = true;
  }
  net::Packet copy = packet;
  engine_.process(copy, time);
}

void ChainSink::finish() {
  if (!began_) {
    engine_.begin();
    began_ = true;
  }
  report_ = engine_.finish();
  began_ = false;
}

}  // namespace repro::replay::emit
