#include "replay/conntrack.hpp"

namespace repro::replay {
namespace {

/// Sequence-number distance a - b interpreted modulo 2^32.
std::int64_t seq_delta(std::uint32_t a, std::uint32_t b) noexcept {
  return static_cast<std::int32_t>(a - b);
}

}  // namespace

ConntrackFunction::ConntrackFunction(ConntrackConfig config)
    : config_(config) {}

TcpState ConntrackFunction::state_of(const net::Packet& packet) const {
  const auto it = table_.find(net::FlowKey::from_packet(packet).canonical());
  return it == table_.end() ? TcpState::kNone : it->second.state;
}

Verdict ConntrackFunction::process(net::Packet& packet, double timestamp) {
  switch (packet.ip.protocol) {
    case net::IpProto::kTcp:
      return process_tcp(packet, timestamp);
    case net::IpProto::kUdp:
      ++stats_.udp_packets;
      return Verdict::kForward;
    case net::IpProto::kIcmp:
      ++stats_.icmp_packets;
      return Verdict::kForward;
  }
  return Verdict::kForward;
}

Verdict ConntrackFunction::process_tcp(net::Packet& packet,
                                       double timestamp) {
  ++stats_.tcp_packets;
  if (!packet.tcp) {
    ++stats_.invalid_state;
    return config_.enforce ? Verdict::kDrop : Verdict::kForward;
  }
  const net::TcpHeader& tcp = *packet.tcp;
  const net::FlowKey raw = net::FlowKey::from_packet(packet);
  const net::FlowKey key = raw.canonical();
  // Direction A = packet whose source equals the canonical key's source.
  const bool from_a =
      raw.src_addr == key.src_addr && raw.src_port == key.src_port;

  auto it = table_.find(key);
  if (it != table_.end() &&
      timestamp - it->second.last_seen > config_.idle_timeout) {
    table_.erase(it);
    it = table_.end();
  }

  auto accept = [&](Entry& entry) {
    entry.last_seen = timestamp;
    ++stats_.tcp_accepted;
    return Verdict::kForward;
  };
  auto reject = [&](std::size_t& counter) {
    ++counter;
    return config_.enforce ? Verdict::kDrop : Verdict::kForward;
  };

  if (it == table_.end()) {
    // Only a bare SYN may open a connection.
    if (!(tcp.syn && !tcp.ack_flag)) {
      return reject(stats_.invalid_state);
    }
    Entry entry;
    entry.state = TcpState::kSynSent;
    entry.last_seen = timestamp;
    if (from_a) {
      entry.next_seq_a = tcp.seq + 1;
      entry.has_seq_a = true;
    } else {
      entry.next_seq_b = tcp.seq + 1;
      entry.has_seq_b = true;
    }
    ++stats_.connections_tracked;
    auto [pos, inserted] = table_.emplace(key, entry);
    (void)inserted;
    ++stats_.tcp_accepted;
    return Verdict::kForward;
  }

  Entry& entry = it->second;
  std::uint32_t& next_seq_self = from_a ? entry.next_seq_a : entry.next_seq_b;
  bool& has_seq_self = from_a ? entry.has_seq_a : entry.has_seq_b;
  bool& fin_self = from_a ? entry.fin_a : entry.fin_b;

  // RST tears the connection down from any state.
  if (tcp.rst) {
    entry.state = TcpState::kClosed;
    return accept(entry);
  }

  switch (entry.state) {
    case TcpState::kNone:
      return reject(stats_.invalid_state);
    case TcpState::kSynSent: {
      // Expect SYN-ACK from the peer (the side without a recorded seq).
      if (tcp.syn && tcp.ack_flag && !has_seq_self) {
        next_seq_self = tcp.seq + 1;
        has_seq_self = true;
        entry.state = TcpState::kSynReceived;
        return accept(entry);
      }
      // SYN retransmission from the opener is tolerated.
      if (tcp.syn && !tcp.ack_flag && has_seq_self) {
        return accept(entry);
      }
      return reject(stats_.invalid_state);
    }
    case TcpState::kSynReceived: {
      // The handshake ACK completes establishment.
      if (!tcp.syn && tcp.ack_flag) {
        entry.state = TcpState::kEstablished;
        ++stats_.handshakes_completed;
        return accept(entry);
      }
      if (tcp.syn) {  // retransmitted SYN-ACK
        return accept(entry);
      }
      return reject(stats_.invalid_state);
    }
    case TcpState::kEstablished:
    case TcpState::kFinWait: {
      if (tcp.syn) {
        return reject(stats_.invalid_state);
      }
      if (config_.check_sequence && has_seq_self) {
        const std::int64_t delta = seq_delta(tcp.seq, next_seq_self);
        if (delta < 0 ||
            delta > static_cast<std::int64_t>(config_.max_sequence_jump)) {
          return reject(stats_.invalid_sequence);
        }
      }
      next_seq_self = tcp.seq + static_cast<std::uint32_t>(
                                    packet.payload.size()) +
                      (tcp.fin ? 1 : 0);
      has_seq_self = true;
      if (tcp.fin) {
        fin_self = true;
        if (entry.fin_a && entry.fin_b) {
          entry.state = TcpState::kClosed;
          ++stats_.teardowns_completed;
        } else {
          entry.state = TcpState::kFinWait;
        }
      }
      return accept(entry);
    }
    case TcpState::kClosed: {
      // Only the final ACK of the teardown is still legitimate.
      if (!tcp.syn && !tcp.fin && tcp.ack_flag) {
        return accept(entry);
      }
      return reject(stats_.invalid_state);
    }
  }
  return reject(stats_.invalid_state);
}

}  // namespace repro::replay
