// Trace replay engine: feeds a packet sequence through a chain of
// network functions in timestamp order, optionally rescaling time — the
// software analogue of a tcpreplay testbed. This is the substrate behind
// the paper's replayability claims: synthetic traces are only useful for
// "testing network functions" (§2.3/§3.2) if a packet-level engine can
// actually drive such functions with them.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/packet.hpp"

namespace repro::replay {

/// Verdict a network function returns for each packet.
enum class Verdict {
  kForward,  // pass to the next function
  kDrop,     // silently discard
};

/// A packet-processing network function. Functions are stateful and
/// processed in chain order; a packet reaches function i+1 only if
/// function i forwarded it.
class NetworkFunction {
 public:
  virtual ~NetworkFunction() = default;

  virtual std::string name() const = 0;

  /// Processes one packet at `timestamp`. The packet is mutable so
  /// functions may rewrite headers (NAT-style) before forwarding.
  virtual Verdict process(net::Packet& packet, double timestamp) = 0;

  /// Called once when the replay ends (flush statistics, close flows).
  virtual void finish() {}
};

/// Per-function counters gathered by the engine.
struct FunctionStats {
  std::string name;
  std::size_t processed = 0;
  std::size_t forwarded = 0;
  std::size_t dropped = 0;
};

struct ReplayReport {
  std::size_t input_packets = 0;
  std::size_t delivered_packets = 0;  // survived the whole chain
  double trace_duration = 0.0;        // last - first timestamp
  std::vector<FunctionStats> functions;
};

/// Replays packets through an ordered chain of functions.
///
/// Two driving modes share the same chain and report shape:
///   * batch: `replay()` sorts a recorded trace and walks it;
///   * incremental: `begin()` / `process()` / `finish()` let an external
///     scheduler (the open-loop emitter in replay/emit) feed packets one
///     at a time in its own event order. `replay()` is implemented on
///     top of the incremental API.
class ReplayEngine {
 public:
  /// Appends a function to the end of the chain; the engine owns it.
  /// Must be called before `begin()` / `replay()`.
  void add_function(std::unique_ptr<NetworkFunction> function);

  /// Resets per-run counters and opens an incremental run.
  void begin();

  /// Feeds one packet (already timestamped in trace time) through the
  /// chain. Returns true if the packet survived every function. The
  /// packet is mutable so NAT-style functions can rewrite it in place.
  bool process(net::Packet& packet, double timestamp);

  /// Closes the incremental run: flushes every function and returns the
  /// accumulated report.
  ReplayReport finish();

  /// Replays `packets` in timestamp order (stable-sorted copy).
  /// `time_scale` rescales inter-packet gaps (2.0 = twice as slow);
  /// only affects the timestamps functions observe, not wall time.
  ReplayReport replay(const std::vector<net::Packet>& packets,
                      double time_scale = 1.0);

  std::size_t function_count() const noexcept { return chain_.size(); }

 private:
  std::vector<std::unique_ptr<NetworkFunction>> chain_;
  ReplayReport report_;
  bool active_ = false;
  bool have_time_ = false;
  double first_time_ = 0.0;
  double last_time_ = 0.0;
};

}  // namespace repro::replay
