#include "replay/functions.hpp"

#include <algorithm>

namespace repro::replay {

Verdict FlowCounter::process(net::Packet& packet, double timestamp) {
  const net::FlowKey key = net::FlowKey::from_packet(packet).canonical();
  auto [it, inserted] = flows_.try_emplace(key);
  FlowEntry& entry = it->second;
  if (inserted) entry.first_seen = timestamp;
  entry.last_seen = timestamp;
  entry.packets += 1;
  entry.bytes += packet.datagram_length();
  ++by_protocol_[packet.ip.protocol];
  return Verdict::kForward;
}

std::size_t FlowCounter::packets_by_protocol(net::IpProto proto) const {
  const auto it = by_protocol_.find(proto);
  return it == by_protocol_.end() ? 0 : it->second;
}

Verdict PortAcl::process(net::Packet& packet, double /*timestamp*/) {
  std::uint16_t dport = 0;
  if (packet.tcp) {
    dport = packet.tcp->dst_port;
  } else if (packet.udp) {
    dport = packet.udp->dst_port;
  }
  if (denied_.count(dport)) {
    ++drops_;
    return Verdict::kDrop;
  }
  return Verdict::kForward;
}

Verdict RateLimiter::process(net::Packet& packet, double timestamp) {
  if (last_time_ >= 0.0 && timestamp > last_time_) {
    tokens_ = std::min(burst_, tokens_ + (timestamp - last_time_) * rate_);
  }
  last_time_ = std::max(last_time_, timestamp);
  const auto cost = static_cast<double>(packet.datagram_length());
  if (tokens_ >= cost) {
    tokens_ -= cost;
    return Verdict::kForward;
  }
  ++drops_;
  return Verdict::kDrop;
}

bool SourceNat::is_private(std::uint32_t address) noexcept {
  const std::uint32_t a = address >> 24;
  if (a == 10) return true;
  if (a == 192 && ((address >> 16) & 0xFF) == 168) return true;
  if (a == 172) {
    const std::uint32_t b = (address >> 16) & 0xFF;
    return b >= 16 && b <= 31;
  }
  return false;
}

Verdict SourceNat::process(net::Packet& packet, double /*timestamp*/) {
  const std::uint16_t sport = packet.tcp   ? packet.tcp->src_port
                              : packet.udp ? packet.udp->src_port
                                           : 0;
  const std::uint16_t dport = packet.tcp   ? packet.tcp->dst_port
                              : packet.udp ? packet.udp->dst_port
                                           : 0;
  if (is_private(packet.ip.src_addr)) {
    // Outbound: remember who owns this client port, then masquerade.
    mappings_[{packet.ip.protocol, sport}] = packet.ip.src_addr;
    packet.ip.src_addr = public_address_;
    ++rewrites_;
  } else if (packet.ip.dst_addr == public_address_) {
    // Return traffic: translate back to the recorded private host.
    const auto it = mappings_.find({packet.ip.protocol, dport});
    if (it != mappings_.end()) {
      packet.ip.dst_addr = it->second;
      ++reverse_rewrites_;
    }
  }
  return Verdict::kForward;
}

}  // namespace repro::replay
