#include "eval/fidelity.hpp"

#include <algorithm>

#include "common/stats.hpp"

namespace repro::eval {
namespace {

/// Column-major feature values of a record set.
std::vector<std::vector<double>> columns(
    const std::vector<gan::NetFlowRecord>& records) {
  std::vector<std::vector<double>> cols(gan::NetFlowRecord::kFeatureCount);
  for (const auto& record : records) {
    const auto features = record.features();
    for (std::size_t f = 0; f < features.size(); ++f) {
      cols[f].push_back(static_cast<double>(features[f]));
    }
  }
  return cols;
}

double histogram_jsd(const std::vector<double>& a,
                     const std::vector<double>& b) {
  double lo = a.front(), hi = a.front();
  for (double v : a) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  for (double v : b) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (hi <= lo) return 0.0;  // both constant and equal range
  const auto ha = normalize(histogram(a, lo, hi, 20));
  const auto hb = normalize(histogram(b, lo, hi, 20));
  return js_divergence(ha, hb);
}

}  // namespace

std::vector<FeatureFidelity> netflow_fidelity(
    const std::vector<gan::NetFlowRecord>& real,
    const std::vector<gan::NetFlowRecord>& synthetic) {
  if (real.empty() || synthetic.empty()) {
    throw std::invalid_argument("netflow_fidelity: empty record set");
  }
  const auto real_cols = columns(real);
  const auto syn_cols = columns(synthetic);
  const auto names = gan::NetFlowRecord::feature_names();
  std::vector<FeatureFidelity> out;
  out.reserve(names.size());
  for (std::size_t f = 0; f < names.size(); ++f) {
    FeatureFidelity fid;
    fid.feature = names[f];
    fid.ks = ks_statistic(real_cols[f], syn_cols[f]);
    fid.wasserstein = wasserstein1(real_cols[f], syn_cols[f]);
    fid.jsd = histogram_jsd(real_cols[f], syn_cols[f]);
    out.push_back(std::move(fid));
  }
  return out;
}

double mean_ks(const std::vector<FeatureFidelity>& fidelity) {
  if (fidelity.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& f : fidelity) sum += f.ks;
  return sum / static_cast<double>(fidelity.size());
}

double mean_jsd(const std::vector<FeatureFidelity>& fidelity) {
  if (fidelity.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& f : fidelity) sum += f.jsd;
  return sum / static_cast<double>(fidelity.size());
}

double class_conditional_ks(const std::vector<gan::NetFlowRecord>& real,
                            const std::vector<gan::NetFlowRecord>& synthetic,
                            std::size_t num_classes,
                            std::size_t min_samples) {
  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t cls = 0; cls < num_classes; ++cls) {
    std::vector<gan::NetFlowRecord> real_cls, syn_cls;
    for (const auto& r : real) {
      if (r.label == static_cast<int>(cls)) real_cls.push_back(r);
    }
    for (const auto& r : synthetic) {
      if (r.label == static_cast<int>(cls)) syn_cls.push_back(r);
    }
    if (real_cls.size() < min_samples || syn_cls.size() < min_samples) {
      continue;
    }
    total += mean_ks(netflow_fidelity(real_cls, syn_cls));
    ++counted;
  }
  return counted > 0 ? total / static_cast<double>(counted) : 1.0;
}

}  // namespace repro::eval
