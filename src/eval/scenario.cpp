#include "eval/scenario.hpp"

#include "common/contracts.hpp"
#include "ml/features.hpp"
#include "ml/metrics.hpp"
#include "ml/split.hpp"

namespace repro::eval {
namespace {

/// Trains the micro-level RF on `train`, scores it on `test`, and derives
/// the macro-level accuracy by collapsing micro predictions onto their
/// macro service (hierarchical evaluation: a flow is macro-correct when
/// its predicted application belongs to the true service category).
void score_both_levels(const ml::FeatureMatrix& train,
                       const ml::FeatureMatrix& test,
                       const ScenarioConfig& config, ScenarioResult& result) {
  result.train_size = train.size();
  result.test_size = test.size();

  ml::ForestConfig forest_cfg = config.forest;
  forest_cfg.seed = config.seed;

  ml::RandomForest forest(forest_cfg);
  forest.fit(train);
  const auto predicted = forest.predict(test);
  result.micro_accuracy = ml::accuracy(predicted, test.labels);
  result.micro_macro_f1 =
      ml::macro_f1(predicted, test.labels, flowgen::kNumApps);

  auto collapse = [](const std::vector<int>& labels) {
    std::vector<int> macro(labels.size());
    for (std::size_t i = 0; i < labels.size(); ++i) {
      macro[i] = labels[i] >= 0 &&
                         static_cast<std::size_t>(labels[i]) < flowgen::kNumApps
                     ? static_cast<int>(flowgen::macro_of(
                           static_cast<std::size_t>(labels[i])))
                     : -1;
    }
    return macro;
  };
  result.macro_accuracy =
      ml::accuracy(collapse(predicted), collapse(test.labels));
}

ml::FeatureMatrix flow_features(const std::vector<net::Flow>& flows,
                                Granularity granularity,
                                const ScenarioConfig& config) {
  if (granularity == Granularity::kNprintPcap) {
    return ml::nprint_features(flows, config.nprint_packets);
  }
  return ml::netflow_features(flows);
}

}  // namespace

std::string granularity_name(Granularity granularity) {
  return granularity == Granularity::kNprintPcap ? "nprint-formatted pcap"
                                                 : "NetFlow";
}

ScenarioResult run_cross_scenario(const std::string& name,
                                  const std::vector<net::Flow>& train_flows,
                                  const std::vector<net::Flow>& test_flows,
                                  Granularity granularity,
                                  const ScenarioConfig& config) {
  REPRO_REQUIRE(config.nprint_packets > 0,
                "run_cross_scenario: nprint matrices need >= 1 packet row");
  ScenarioResult result;
  result.name = name;
  result.granularity = granularity;
  const auto train = flow_features(train_flows, granularity, config);
  const auto test = flow_features(test_flows, granularity, config);
  score_both_levels(train, test, config, result);
  return result;
}

ScenarioResult run_real_real(const flowgen::Dataset& real,
                             Granularity granularity,
                             const ScenarioConfig& config) {
  REPRO_REQUIRE(config.test_fraction > 0.0 && config.test_fraction < 1.0,
                "run_real_real: test fraction must leave both sides non-empty");
  ScenarioResult result;
  result.name = "Real/Real";
  result.granularity = granularity;
  Rng rng(config.seed);
  const auto all = flow_features(real.flows, granularity, config);
  const auto split = ml::stratified_split(all, config.test_fraction, rng);
  score_both_levels(split.train, split.test, config, result);
  return result;
}

ml::FeatureMatrix netflow_record_features(
    const std::vector<gan::NetFlowRecord>& records) {
  ml::FeatureMatrix out;
  out.feature_count = gan::NetFlowRecord::kFeatureCount;
  out.rows.reserve(records.size());
  out.labels.reserve(records.size());
  for (const auto& r : records) {
    out.rows.push_back(r.features());
    out.labels.push_back(r.label);
  }
  return out;
}

ScenarioResult run_cross_scenario_netflow(
    const std::string& name, const std::vector<gan::NetFlowRecord>& train,
    const std::vector<gan::NetFlowRecord>& test,
    const ScenarioConfig& config) {
  ScenarioResult result;
  result.name = name;
  result.granularity = Granularity::kNetFlow;
  const auto train_features = netflow_record_features(train);
  const auto test_features = netflow_record_features(test);
  score_both_levels(train_features, test_features, config, result);
  return result;
}

}  // namespace repro::eval
