#include "eval/report.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace repro::eval {

std::string format_table(const std::vector<std::string>& headers,
                         const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(headers.size());
  for (std::size_t c = 0; c < headers.size(); ++c) {
    widths[c] = headers[c].size();
  }
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      if (c) out << "  ";
      out << std::left << std::setw(static_cast<int>(widths[c]))
          << (c < row.size() ? row[c] : "");
    }
    out << "\n";
  };
  emit_row(headers);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows) emit_row(row);
  return out.str();
}

std::string format_csv(const std::vector<std::string>& headers,
                       const std::vector<std::vector<std::string>>& rows) {
  auto quote = [](const std::string& field) {
    if (field.find_first_of(",\"\n") == std::string::npos) return field;
    std::string quoted = "\"";
    for (char c : field) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += '"';
    return quoted;
  };
  std::ostringstream out;
  for (std::size_t c = 0; c < headers.size(); ++c) {
    if (c) out << ",";
    out << quote(headers[c]);
  }
  out << "\n";
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ",";
      out << quote(row[c]);
    }
    out << "\n";
  }
  return out.str();
}

std::string fmt(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("write_text_file: cannot open " + path);
  out << text;
  if (!out) throw std::runtime_error("write_text_file: write failed " + path);
}

}  // namespace repro::eval
