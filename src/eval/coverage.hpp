// Figure 1 analysis: class-coverage comparison between real data,
// GAN-generated data, and diffusion-generated data — per-class
// proportions, imbalance ratio and Jensen–Shannon divergence to the
// uniform and real distributions.
#pragma once

#include <string>
#include <vector>

#include "net/flow.hpp"

namespace repro::eval {

struct CoverageSeries {
  std::string name;                  // "Real", "GAN", "Ours"
  std::vector<double> proportions;   // per class, sums to 1
};

struct CoverageReport {
  std::vector<std::string> class_names;
  std::vector<CoverageSeries> series;
};

/// Normalized proportions from labels; classes with ids outside
/// [0, num_classes) are dropped (GAN label drift makes this possible).
std::vector<double> label_proportions(const std::vector<int>& labels,
                                      std::size_t num_classes);

/// max/min proportion (1.0 = perfectly balanced).
double coverage_imbalance(const std::vector<double>& proportions);

/// JS divergence to the uniform distribution (0 = perfectly balanced).
double divergence_from_uniform(const std::vector<double>& proportions);

/// JS divergence between two series.
double divergence_between(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Renders the report as an aligned text table (percent per class plus
/// the imbalance/JSD summary rows).
std::string format_coverage_table(const CoverageReport& report);

/// Mean pairwise normalized Hamming distance between the nprint bit
/// matrices of up to `max_pairs` random flow pairs (0 = all identical —
/// mode collapse; real same-class traffic lands around 0.05-0.15).
/// Balanced class counts say nothing if every sample is a clone, so
/// Figure 1's coverage result is only meaningful alongside this.
double sample_diversity(const std::vector<net::Flow>& flows,
                        std::size_t packets, std::size_t max_pairs,
                        std::uint64_t seed);

}  // namespace repro::eval
