// Text-table / CSV rendering used by every bench binary so the printed
// rows line up with the paper's tables.
#pragma once

#include <string>
#include <vector>

namespace repro::eval {

/// Renders rows as an aligned monospace table with a header rule.
std::string format_table(const std::vector<std::string>& headers,
                         const std::vector<std::vector<std::string>>& rows);

/// CSV with minimal quoting (commas/quotes/newlines).
std::string format_csv(const std::vector<std::string>& headers,
                       const std::vector<std::vector<std::string>>& rows);

/// Fixed-precision double formatting ("0.94").
std::string fmt(double value, int precision = 2);

/// Writes text to a file, creating/truncating it. Throws on I/O failure.
void write_text_file(const std::string& path, const std::string& text);

}  // namespace repro::eval
