// Distribution-fidelity metrics between real and synthetic NetFlow
// records — the "similarity scores" the GAN literature optimizes. §2.3's
// key observation is that aggregate similarity can look good while the
// data is useless for classification ("despite the good performance of
// similarity scores"); bench/fidelity_report quantifies both sides.
#pragma once

#include <string>
#include <vector>

#include "gan/netflow.hpp"

namespace repro::eval {

/// Marginal-similarity metrics for one feature (lower = more similar).
struct FeatureFidelity {
  std::string feature;
  double ks = 0.0;           // Kolmogorov–Smirnov statistic
  double wasserstein = 0.0;  // W1 on the raw (squashed) feature values
  double jsd = 0.0;          // JSD over a 20-bin shared histogram
};

/// Per-feature marginal fidelity across all records.
std::vector<FeatureFidelity> netflow_fidelity(
    const std::vector<gan::NetFlowRecord>& real,
    const std::vector<gan::NetFlowRecord>& synthetic);

/// Means across features (the single-number "similarity score").
double mean_ks(const std::vector<FeatureFidelity>& fidelity);
double mean_jsd(const std::vector<FeatureFidelity>& fidelity);

/// Class-conditional fidelity: mean over classes of the per-class mean
/// KS. This is where GAN output degrades even when the aggregate looks
/// fine (the "per-class distribution shift" of §2.3). Classes with
/// fewer than `min_samples` on either side are skipped.
double class_conditional_ks(const std::vector<gan::NetFlowRecord>& real,
                            const std::vector<gan::NetFlowRecord>& synthetic,
                            std::size_t num_classes,
                            std::size_t min_samples = 5);

}  // namespace repro::eval
