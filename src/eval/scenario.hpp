// Table 2 scenario runner: trains a Random Forest on one dataset and
// tests on another, at either feature granularity, reporting macro- and
// micro-level accuracy exactly as the paper's rows do
// (Real/Real, Real/Synthetic, Synthetic/Real x {nprint pcap, NetFlow}).
#pragma once

#include <string>
#include <vector>

#include "flowgen/dataset.hpp"
#include "gan/netflow.hpp"
#include "ml/random_forest.hpp"

namespace repro::eval {

enum class Granularity { kNprintPcap, kNetFlow };

std::string granularity_name(Granularity granularity);

struct ScenarioResult {
  std::string name;
  Granularity granularity = Granularity::kNprintPcap;
  double macro_accuracy = 0.0;
  double micro_accuracy = 0.0;
  double micro_macro_f1 = 0.0;
  std::size_t train_size = 0;
  std::size_t test_size = 0;
};

struct ScenarioConfig {
  std::size_t nprint_packets = 10;  // packet rows fed to the RF
  ml::ForestConfig forest = default_forest();
  double test_fraction = 0.2;  // the paper's 80-20 split
  std::uint64_t seed = 17;

  /// nprint matrices are wide (10 x 1088 features) and sparse in
  /// informative bits; sqrt-feature sampling underfits them, so the
  /// scenario default examines 200 features per node (harmless for the
  /// 9-feature NetFlow mode, where mtry clamps to the feature count).
  static ml::ForestConfig default_forest() {
    ml::ForestConfig cfg;
    cfg.num_trees = 50;
    cfg.tree.max_features = 200;
    return cfg;
  }
};

/// Train on `train_flows`, test on `test_flows` (no splitting; callers
/// pass pre-split or cross-domain sets).
ScenarioResult run_cross_scenario(const std::string& name,
                                  const std::vector<net::Flow>& train_flows,
                                  const std::vector<net::Flow>& test_flows,
                                  Granularity granularity,
                                  const ScenarioConfig& config);

/// The Real/Real row: 80-20 stratified split of `real` at the given
/// granularity.
ScenarioResult run_real_real(const flowgen::Dataset& real,
                             Granularity granularity,
                             const ScenarioConfig& config);

/// NetFlow-record variants for GAN synthetic data (records instead of
/// flows on one side).
ScenarioResult run_cross_scenario_netflow(
    const std::string& name, const std::vector<gan::NetFlowRecord>& train,
    const std::vector<gan::NetFlowRecord>& test, const ScenarioConfig& config);

/// Feature matrix for NetFlow records (shared by the GAN paths).
ml::FeatureMatrix netflow_record_features(
    const std::vector<gan::NetFlowRecord>& records);

}  // namespace repro::eval
