#include "eval/coverage.hpp"

#include <iomanip>
#include <sstream>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "nprint/codec.hpp"

namespace repro::eval {

std::vector<double> label_proportions(const std::vector<int>& labels,
                                      std::size_t num_classes) {
  return normalize(class_counts(labels, num_classes));
}

double coverage_imbalance(const std::vector<double>& proportions) {
  return imbalance_ratio(proportions);
}

double divergence_from_uniform(const std::vector<double>& proportions) {
  const std::vector<double> uniform(
      proportions.size(), 1.0 / static_cast<double>(proportions.size()));
  return js_divergence(proportions, uniform);
}

double divergence_between(const std::vector<double>& a,
                          const std::vector<double>& b) {
  return js_divergence(a, b);
}

double sample_diversity(const std::vector<net::Flow>& flows,
                        std::size_t packets, std::size_t max_pairs,
                        std::uint64_t seed) {
  if (flows.size() < 2) return 0.0;
  Rng rng(seed);
  double total = 0.0;
  std::size_t pairs = 0;
  for (std::size_t k = 0; k < max_pairs; ++k) {
    const std::size_t i = rng.uniform_u64(flows.size());
    std::size_t j = rng.uniform_u64(flows.size() - 1);
    if (j >= i) ++j;
    const nprint::Matrix a = nprint::encode_flow(flows[i], packets, true);
    const nprint::Matrix b = nprint::encode_flow(flows[j], packets, true);
    std::size_t diff = 0;
    for (std::size_t n = 0; n < a.data().size(); ++n) {
      if (a.data()[n] != b.data()[n]) ++diff;
    }
    total += static_cast<double>(diff) / static_cast<double>(a.data().size());
    ++pairs;
  }
  return pairs > 0 ? total / static_cast<double>(pairs) : 0.0;
}

std::string format_coverage_table(const CoverageReport& report) {
  std::ostringstream out;
  out << std::left << std::setw(12) << "class";
  for (const auto& s : report.series) {
    out << std::right << std::setw(10) << (s.name + " %");
  }
  out << "\n";
  for (std::size_t c = 0; c < report.class_names.size(); ++c) {
    out << std::left << std::setw(12) << report.class_names[c];
    for (const auto& s : report.series) {
      out << std::right << std::setw(10) << std::fixed << std::setprecision(2)
          << (c < s.proportions.size() ? 100.0 * s.proportions[c] : 0.0);
    }
    out << "\n";
  }
  out << std::left << std::setw(12) << "imbalance";
  for (const auto& s : report.series) {
    out << std::right << std::setw(10) << std::fixed << std::setprecision(2)
        << coverage_imbalance(s.proportions);
  }
  out << "\n" << std::left << std::setw(12) << "JSD(unif)";
  for (const auto& s : report.series) {
    out << std::right << std::setw(10) << std::fixed << std::setprecision(4)
        << divergence_from_uniform(s.proportions);
  }
  out << "\n";
  return out.str();
}

}  // namespace repro::eval
