#include "net/packet.hpp"

#include <stdexcept>

namespace repro::net {

std::size_t Packet::l4_length() const noexcept {
  std::size_t len = payload.size();
  if (tcp) {
    len += tcp->header_length();
  } else if (udp) {
    len += UdpHeader::kLength;
  } else if (icmp) {
    len += IcmpHeader::kLength;
  }
  return len;
}

std::size_t Packet::datagram_length() const noexcept {
  return ip.header_length() + l4_length();
}

bool Packet::consistent() const noexcept {
  switch (ip.protocol) {
    case IpProto::kTcp:
      return tcp.has_value() && !udp && !icmp;
    case IpProto::kUdp:
      return udp.has_value() && !tcp && !icmp;
    case IpProto::kIcmp:
      return icmp.has_value() && !tcp && !udp;
  }
  return !tcp && !udp && !icmp;
}

std::vector<std::uint8_t> Packet::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(datagram_length());
  Ipv4Header header = ip;
  header.total_length = static_cast<std::uint16_t>(datagram_length());
  header.serialize(out);
  if (tcp) {
    tcp->serialize(out, payload, ip.src_addr, ip.dst_addr);
  } else if (udp) {
    udp->serialize(out, payload, ip.src_addr, ip.dst_addr);
  } else if (icmp) {
    icmp->serialize(out, payload);
  }
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Packet Packet::parse(std::span<const std::uint8_t> datagram, double timestamp) {
  ByteReader r(datagram);
  Packet pkt;
  pkt.timestamp = timestamp;
  pkt.ip = Ipv4Header::parse(r);
  switch (pkt.ip.protocol) {
    case IpProto::kTcp:
      pkt.tcp = TcpHeader::parse(r);
      break;
    case IpProto::kUdp:
      pkt.udp = UdpHeader::parse(r);
      break;
    case IpProto::kIcmp:
      pkt.icmp = IcmpHeader::parse(r);
      break;
    default:
      break;
  }
  auto rest = r.bytes(r.remaining());
  pkt.payload.assign(rest.begin(), rest.end());
  return pkt;
}

Packet make_tcp_packet(std::uint32_t src, std::uint32_t dst,
                       std::uint16_t sport, std::uint16_t dport,
                       std::size_t payload_len, double timestamp) {
  Packet pkt;
  pkt.timestamp = timestamp;
  pkt.ip.protocol = IpProto::kTcp;
  pkt.ip.src_addr = src;
  pkt.ip.dst_addr = dst;
  TcpHeader tcp;
  tcp.src_port = sport;
  tcp.dst_port = dport;
  pkt.tcp = tcp;
  pkt.payload.assign(payload_len, 0);
  pkt.ip.total_length = static_cast<std::uint16_t>(pkt.datagram_length());
  return pkt;
}

Packet make_udp_packet(std::uint32_t src, std::uint32_t dst,
                       std::uint16_t sport, std::uint16_t dport,
                       std::size_t payload_len, double timestamp) {
  Packet pkt;
  pkt.timestamp = timestamp;
  pkt.ip.protocol = IpProto::kUdp;
  pkt.ip.src_addr = src;
  pkt.ip.dst_addr = dst;
  UdpHeader udp;
  udp.src_port = sport;
  udp.dst_port = dport;
  udp.length = static_cast<std::uint16_t>(UdpHeader::kLength + payload_len);
  pkt.udp = udp;
  pkt.payload.assign(payload_len, 0);
  pkt.ip.total_length = static_cast<std::uint16_t>(pkt.datagram_length());
  return pkt;
}

Packet make_icmp_packet(std::uint32_t src, std::uint32_t dst,
                        std::uint8_t type, std::uint8_t code,
                        std::size_t payload_len, double timestamp) {
  Packet pkt;
  pkt.timestamp = timestamp;
  pkt.ip.protocol = IpProto::kIcmp;
  pkt.ip.src_addr = src;
  pkt.ip.dst_addr = dst;
  IcmpHeader icmp;
  icmp.type = type;
  icmp.code = code;
  pkt.icmp = icmp;
  pkt.payload.assign(payload_len, 0);
  pkt.ip.total_length = static_cast<std::uint16_t>(pkt.datagram_length());
  return pkt;
}

}  // namespace repro::net
