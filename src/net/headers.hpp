// Protocol header value types and their wire (de)serialization.
//
// These are the headers the nprint bit layout covers (IPv4, TCP, UDP,
// ICMP). Each struct stores fields in host order; `serialize` emits
// network-order bytes with a valid checksum, and `parse` round-trips them.
// Options are carried as raw bytes so header length is preserved exactly —
// the nprint codec needs bit-faithful round trips.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace repro::net {

/// IANA protocol numbers used throughout the library.
enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

/// Human-readable protocol name ("TCP", "UDP", "ICMP", or the number).
std::string proto_name(IpProto proto);

/// IPv4 header (RFC 791). `ihl` is derived from `options` on serialize.
struct Ipv4Header {
  std::uint8_t version = 4;
  std::uint8_t dscp = 0;        // 6 bits
  std::uint8_t ecn = 0;         // 2 bits
  std::uint16_t total_length = 0;
  std::uint16_t identification = 0;
  bool flag_reserved = false;
  bool flag_dont_fragment = true;
  bool flag_more_fragments = false;
  std::uint16_t fragment_offset = 0;  // 13 bits
  std::uint8_t ttl = 64;
  IpProto protocol = IpProto::kTcp;
  std::uint16_t header_checksum = 0;  // filled on serialize
  std::uint32_t src_addr = 0;
  std::uint32_t dst_addr = 0;
  std::vector<std::uint8_t> options;  // padded to a 4-byte multiple

  /// Header length in bytes (20 + options).
  std::size_t header_length() const noexcept { return 20 + options.size(); }

  /// Appends the header with a freshly computed checksum.
  void serialize(std::vector<std::uint8_t>& out) const;

  /// Parses a header from `r`, consuming exactly ihl*4 bytes.
  static Ipv4Header parse(ByteReader& r);
};

/// TCP header (RFC 793). `data_offset` is derived from `options`.
struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t reserved = 0;  // 4 bits (incl. historical NS bit slot)
  bool cwr = false;
  bool ece = false;
  bool urg = false;
  bool ack_flag = false;
  bool psh = false;
  bool rst = false;
  bool syn = false;
  bool fin = false;
  std::uint16_t window = 65535;
  std::uint16_t checksum = 0;  // filled on serialize when addresses given
  std::uint16_t urgent_pointer = 0;
  std::vector<std::uint8_t> options;  // padded to a 4-byte multiple

  std::size_t header_length() const noexcept { return 20 + options.size(); }

  /// Appends the header; if src/dst addresses are provided the checksum is
  /// computed over the pseudo-header + header + payload.
  void serialize(std::vector<std::uint8_t>& out,
                 std::span<const std::uint8_t> payload,
                 std::optional<std::uint32_t> src_addr = std::nullopt,
                 std::optional<std::uint32_t> dst_addr = std::nullopt) const;

  static TcpHeader parse(ByteReader& r);
};

/// UDP header (RFC 768).
struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  // derived from payload on serialize
  std::uint16_t checksum = 0;

  static constexpr std::size_t kLength = 8;

  void serialize(std::vector<std::uint8_t>& out,
                 std::span<const std::uint8_t> payload,
                 std::optional<std::uint32_t> src_addr = std::nullopt,
                 std::optional<std::uint32_t> dst_addr = std::nullopt) const;

  static UdpHeader parse(ByteReader& r);
};

/// ICMP header (RFC 792), first 8 bytes (type/code/checksum + rest-of-
/// header word, e.g. echo id/seq).
struct IcmpHeader {
  std::uint8_t type = 8;  // echo request
  std::uint8_t code = 0;
  std::uint16_t checksum = 0;
  std::uint32_t rest_of_header = 0;

  static constexpr std::size_t kLength = 8;

  void serialize(std::vector<std::uint8_t>& out,
                 std::span<const std::uint8_t> payload) const;

  static IcmpHeader parse(ByteReader& r);
};

/// Formats an IPv4 address as dotted-quad.
std::string ipv4_to_string(std::uint32_t addr);

/// Parses dotted-quad; throws std::invalid_argument on malformed input.
std::uint32_t ipv4_from_string(const std::string& text);

}  // namespace repro::net
