#include "net/flow.hpp"

#include <algorithm>
#include <tuple>

namespace repro::net {

FlowKey FlowKey::canonical() const noexcept {
  const auto a = std::make_tuple(src_addr, src_port);
  const auto b = std::make_tuple(dst_addr, dst_port);
  if (a <= b) return *this;
  FlowKey flipped = *this;
  std::swap(flipped.src_addr, flipped.dst_addr);
  std::swap(flipped.src_port, flipped.dst_port);
  return flipped;
}

std::string FlowKey::to_string() const {
  return ipv4_to_string(src_addr) + ":" + std::to_string(src_port) + " <-> " +
         ipv4_to_string(dst_addr) + ":" + std::to_string(dst_port) + " " +
         proto_name(protocol);
}

FlowKey FlowKey::from_packet(const Packet& packet) noexcept {
  FlowKey key;
  key.src_addr = packet.ip.src_addr;
  key.dst_addr = packet.ip.dst_addr;
  key.protocol = packet.ip.protocol;
  if (packet.tcp) {
    key.src_port = packet.tcp->src_port;
    key.dst_port = packet.tcp->dst_port;
  } else if (packet.udp) {
    key.src_port = packet.udp->src_port;
    key.dst_port = packet.udp->dst_port;
  }
  return key;
}

std::size_t Flow::byte_count() const noexcept {
  std::size_t total = 0;
  for (const auto& pkt : packets) total += pkt.datagram_length();
  return total;
}

double Flow::duration() const noexcept {
  if (packets.size() < 2) return 0.0;
  return packets.back().timestamp - packets.front().timestamp;
}

IpProto Flow::dominant_protocol() const noexcept {
  std::size_t counts[3] = {0, 0, 0};  // tcp, udp, icmp
  for (const auto& pkt : packets) {
    switch (pkt.ip.protocol) {
      case IpProto::kTcp:
        ++counts[0];
        break;
      case IpProto::kUdp:
        ++counts[1];
        break;
      case IpProto::kIcmp:
        ++counts[2];
        break;
    }
  }
  if (counts[0] >= counts[1] && counts[0] >= counts[2]) return IpProto::kTcp;
  if (counts[1] >= counts[2]) return IpProto::kUdp;
  return IpProto::kIcmp;
}

double Flow::protocol_fraction(IpProto proto) const noexcept {
  if (packets.empty()) return 0.0;
  std::size_t n = 0;
  for (const auto& pkt : packets) {
    if (pkt.ip.protocol == proto) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(packets.size());
}

std::vector<Flow> assemble_flows(const std::vector<Packet>& packets) {
  std::map<FlowKey, std::size_t> index;
  std::vector<Flow> flows;
  for (const auto& pkt : packets) {
    const FlowKey key = FlowKey::from_packet(pkt).canonical();
    auto [it, inserted] = index.try_emplace(key, flows.size());
    if (inserted) {
      Flow flow;
      flow.key = key;
      flows.push_back(std::move(flow));
    }
    flows[it->second].packets.push_back(pkt);
  }
  return flows;
}

std::vector<Packet> flatten_flows(const std::vector<Flow>& flows) {
  // Sort an index permutation, not the packets: Packet is heavy (three
  // optional headers plus a payload vector), so moving small entries is
  // much cheaper than shuffling whole packets through the sort — and it
  // sidesteps a GCC 12 -Wmaybe-uninitialized false positive in the
  // inlined stable_sort temporary-buffer path.
  struct Entry {
    const Packet* pkt;
    std::size_t flow_index;
    std::size_t packet_index;
  };
  std::vector<Entry> order;
  std::size_t total = 0;
  for (const auto& flow : flows) total += flow.packets.size();
  order.reserve(total);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    for (std::size_t p = 0; p < flows[f].packets.size(); ++p) {
      order.push_back(Entry{&flows[f].packets[p], f, p});
    }
  }
  // Equal timestamps break by (flow index, packet index) — the same
  // canonical tie order the replay emitter's event queue uses — so the
  // flattened sequence is one deterministic permutation even when flows
  // share a start time. The explicit key makes the tie-break part of
  // the contract rather than an accident of stable_sort input order.
  std::sort(order.begin(), order.end(), [](const Entry& a, const Entry& b) {
    if (a.pkt->timestamp != b.pkt->timestamp) {
      return a.pkt->timestamp < b.pkt->timestamp;
    }
    if (a.flow_index != b.flow_index) return a.flow_index < b.flow_index;
    return a.packet_index < b.packet_index;
  });
  std::vector<Packet> packets;
  packets.reserve(total);
  for (const Entry& entry : order) packets.push_back(*entry.pkt);
  return packets;
}

}  // namespace repro::net
