// A parsed packet: IPv4 header plus exactly one transport header and an
// opaque payload. This is the unit the traffic models emit, the pcap layer
// stores, and the nprint codec encodes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/headers.hpp"

namespace repro::net {

/// One IPv4 packet with its transport header. Exactly one of tcp/udp/icmp
/// is engaged, matching `ip.protocol`.
struct Packet {
  double timestamp = 0.0;  // seconds since trace start
  Ipv4Header ip;
  std::optional<TcpHeader> tcp;
  std::optional<UdpHeader> udp;
  std::optional<IcmpHeader> icmp;
  std::vector<std::uint8_t> payload;

  /// Transport + payload length in bytes.
  std::size_t l4_length() const noexcept;

  /// Full IP datagram length (what Ipv4Header::total_length should hold).
  std::size_t datagram_length() const noexcept;

  /// True when the engaged transport header matches ip.protocol.
  bool consistent() const noexcept;

  /// Serializes the full IP datagram (header + transport + payload) with
  /// correct lengths and checksums, regardless of the current
  /// total_length/checksum field values.
  std::vector<std::uint8_t> serialize() const;

  /// Parses an IP datagram. Throws std::invalid_argument /
  /// std::out_of_range on malformed input. Unknown transport protocols
  /// leave all three transport slots empty and put the bytes in payload.
  static Packet parse(std::span<const std::uint8_t> datagram,
                      double timestamp = 0.0);
};

/// Convenience constructors used heavily by the traffic models.
Packet make_tcp_packet(std::uint32_t src, std::uint32_t dst,
                       std::uint16_t sport, std::uint16_t dport,
                       std::size_t payload_len, double timestamp);
Packet make_udp_packet(std::uint32_t src, std::uint32_t dst,
                       std::uint16_t sport, std::uint16_t dport,
                       std::size_t payload_len, double timestamp);
Packet make_icmp_packet(std::uint32_t src, std::uint32_t dst,
                        std::uint8_t type, std::uint8_t code,
                        std::size_t payload_len, double timestamp);

}  // namespace repro::net
