#include "net/headers.hpp"

#include <stdexcept>

#include "net/checksum.hpp"

namespace repro::net {
namespace {

void add_pseudo_header(ChecksumAccumulator& acc, std::uint32_t src,
                       std::uint32_t dst, IpProto proto,
                       std::uint16_t l4_length) noexcept {
  acc.add_u32(src);
  acc.add_u32(dst);
  acc.add_u16(static_cast<std::uint16_t>(proto));
  acc.add_u16(l4_length);
}

void check_options_padding(const std::vector<std::uint8_t>& options,
                           const char* what) {
  if (options.size() % 4 != 0) {
    throw std::invalid_argument(std::string(what) +
                                ": options must be padded to 4 bytes");
  }
  if (options.size() > 40) {
    throw std::invalid_argument(std::string(what) + ": options exceed 40 bytes");
  }
}

}  // namespace

std::string proto_name(IpProto proto) {
  switch (proto) {
    case IpProto::kIcmp:
      return "ICMP";
    case IpProto::kTcp:
      return "TCP";
    case IpProto::kUdp:
      return "UDP";
  }
  return "proto-" + std::to_string(static_cast<int>(proto));
}

void Ipv4Header::serialize(std::vector<std::uint8_t>& out) const {
  check_options_padding(options, "Ipv4Header");
  const auto ihl = static_cast<std::uint8_t>(header_length() / 4);
  const std::size_t start = out.size();
  ByteWriter w(out);
  w.u8(static_cast<std::uint8_t>((version << 4) | ihl));
  w.u8(static_cast<std::uint8_t>((dscp << 2) | (ecn & 0x3)));
  w.u16_be(total_length);
  w.u16_be(identification);
  std::uint16_t frag = fragment_offset & 0x1FFF;
  if (flag_reserved) frag |= 0x8000;
  if (flag_dont_fragment) frag |= 0x4000;
  if (flag_more_fragments) frag |= 0x2000;
  w.u16_be(frag);
  w.u8(ttl);
  w.u8(static_cast<std::uint8_t>(protocol));
  w.u16_be(0);  // checksum placeholder
  w.u32_be(src_addr);
  w.u32_be(dst_addr);
  w.bytes(options);
  const std::uint16_t sum = internet_checksum(
      std::span<const std::uint8_t>(out.data() + start, header_length()));
  out[start + 10] = static_cast<std::uint8_t>(sum >> 8);
  out[start + 11] = static_cast<std::uint8_t>(sum);
}

Ipv4Header Ipv4Header::parse(ByteReader& r) {
  Ipv4Header h;
  const std::uint8_t vihl = r.u8();
  h.version = vihl >> 4;
  const std::uint8_t ihl = vihl & 0x0F;
  if (ihl < 5) throw std::invalid_argument("Ipv4Header: ihl < 5");
  const std::uint8_t tos = r.u8();
  h.dscp = tos >> 2;
  h.ecn = tos & 0x3;
  h.total_length = r.u16_be();
  h.identification = r.u16_be();
  const std::uint16_t frag = r.u16_be();
  h.flag_reserved = (frag & 0x8000) != 0;
  h.flag_dont_fragment = (frag & 0x4000) != 0;
  h.flag_more_fragments = (frag & 0x2000) != 0;
  h.fragment_offset = frag & 0x1FFF;
  h.ttl = r.u8();
  h.protocol = static_cast<IpProto>(r.u8());
  h.header_checksum = r.u16_be();
  h.src_addr = r.u32_be();
  h.dst_addr = r.u32_be();
  const std::size_t opt_len = static_cast<std::size_t>(ihl) * 4 - 20;
  auto opts = r.bytes(opt_len);
  h.options.assign(opts.begin(), opts.end());
  return h;
}

void TcpHeader::serialize(std::vector<std::uint8_t>& out,
                          std::span<const std::uint8_t> payload,
                          std::optional<std::uint32_t> src_addr,
                          std::optional<std::uint32_t> dst_addr) const {
  check_options_padding(options, "TcpHeader");
  const auto data_offset = static_cast<std::uint8_t>(header_length() / 4);
  const std::size_t start = out.size();
  ByteWriter w(out);
  w.u16_be(src_port);
  w.u16_be(dst_port);
  w.u32_be(seq);
  w.u32_be(ack);
  w.u8(static_cast<std::uint8_t>((data_offset << 4) | (reserved & 0x0F)));
  std::uint8_t flags = 0;
  if (cwr) flags |= 0x80;
  if (ece) flags |= 0x40;
  if (urg) flags |= 0x20;
  if (ack_flag) flags |= 0x10;
  if (psh) flags |= 0x08;
  if (rst) flags |= 0x04;
  if (syn) flags |= 0x02;
  if (fin) flags |= 0x01;
  w.u8(flags);
  w.u16_be(window);
  w.u16_be(0);  // checksum placeholder
  w.u16_be(urgent_pointer);
  w.bytes(options);
  if (src_addr && dst_addr) {
    ChecksumAccumulator acc;
    const auto l4_len =
        static_cast<std::uint16_t>(header_length() + payload.size());
    add_pseudo_header(acc, *src_addr, *dst_addr, IpProto::kTcp, l4_len);
    acc.add(std::span<const std::uint8_t>(out.data() + start, header_length()));
    acc.add(payload);
    const std::uint16_t sum = acc.finish();
    out[start + 16] = static_cast<std::uint8_t>(sum >> 8);
    out[start + 17] = static_cast<std::uint8_t>(sum);
  } else if (checksum != 0) {
    out[start + 16] = static_cast<std::uint8_t>(checksum >> 8);
    out[start + 17] = static_cast<std::uint8_t>(checksum);
  }
}

TcpHeader TcpHeader::parse(ByteReader& r) {
  TcpHeader h;
  h.src_port = r.u16_be();
  h.dst_port = r.u16_be();
  h.seq = r.u32_be();
  h.ack = r.u32_be();
  const std::uint8_t off_res = r.u8();
  const std::uint8_t data_offset = off_res >> 4;
  if (data_offset < 5) throw std::invalid_argument("TcpHeader: offset < 5");
  h.reserved = off_res & 0x0F;
  const std::uint8_t flags = r.u8();
  h.cwr = (flags & 0x80) != 0;
  h.ece = (flags & 0x40) != 0;
  h.urg = (flags & 0x20) != 0;
  h.ack_flag = (flags & 0x10) != 0;
  h.psh = (flags & 0x08) != 0;
  h.rst = (flags & 0x04) != 0;
  h.syn = (flags & 0x02) != 0;
  h.fin = (flags & 0x01) != 0;
  h.window = r.u16_be();
  h.checksum = r.u16_be();
  h.urgent_pointer = r.u16_be();
  const std::size_t opt_len = static_cast<std::size_t>(data_offset) * 4 - 20;
  auto opts = r.bytes(opt_len);
  h.options.assign(opts.begin(), opts.end());
  return h;
}

void UdpHeader::serialize(std::vector<std::uint8_t>& out,
                          std::span<const std::uint8_t> payload,
                          std::optional<std::uint32_t> src_addr,
                          std::optional<std::uint32_t> dst_addr) const {
  const std::size_t start = out.size();
  const auto len = static_cast<std::uint16_t>(kLength + payload.size());
  ByteWriter w(out);
  w.u16_be(src_port);
  w.u16_be(dst_port);
  w.u16_be(len);
  w.u16_be(0);  // checksum placeholder
  if (src_addr && dst_addr) {
    ChecksumAccumulator acc;
    add_pseudo_header(acc, *src_addr, *dst_addr, IpProto::kUdp, len);
    acc.add(std::span<const std::uint8_t>(out.data() + start, kLength));
    acc.add(payload);
    std::uint16_t sum = acc.finish();
    // RFC 768: a computed checksum of zero is transmitted as all ones.
    if (sum == 0) sum = 0xFFFF;
    out[start + 6] = static_cast<std::uint8_t>(sum >> 8);
    out[start + 7] = static_cast<std::uint8_t>(sum);
  } else if (checksum != 0) {
    out[start + 6] = static_cast<std::uint8_t>(checksum >> 8);
    out[start + 7] = static_cast<std::uint8_t>(checksum);
  }
}

UdpHeader UdpHeader::parse(ByteReader& r) {
  UdpHeader h;
  h.src_port = r.u16_be();
  h.dst_port = r.u16_be();
  h.length = r.u16_be();
  h.checksum = r.u16_be();
  return h;
}

void IcmpHeader::serialize(std::vector<std::uint8_t>& out,
                           std::span<const std::uint8_t> payload) const {
  const std::size_t start = out.size();
  ByteWriter w(out);
  w.u8(type);
  w.u8(code);
  w.u16_be(0);  // checksum placeholder
  w.u32_be(rest_of_header);
  ChecksumAccumulator acc;
  acc.add(std::span<const std::uint8_t>(out.data() + start, kLength));
  acc.add(payload);
  const std::uint16_t sum = acc.finish();
  out[start + 2] = static_cast<std::uint8_t>(sum >> 8);
  out[start + 3] = static_cast<std::uint8_t>(sum);
}

IcmpHeader IcmpHeader::parse(ByteReader& r) {
  IcmpHeader h;
  h.type = r.u8();
  h.code = r.u8();
  h.checksum = r.u16_be();
  h.rest_of_header = r.u32_be();
  return h;
}

std::string ipv4_to_string(std::uint32_t addr) {
  return std::to_string((addr >> 24) & 0xFF) + "." +
         std::to_string((addr >> 16) & 0xFF) + "." +
         std::to_string((addr >> 8) & 0xFF) + "." +
         std::to_string(addr & 0xFF);
}

std::uint32_t ipv4_from_string(const std::string& text) {
  std::uint32_t addr = 0;
  std::size_t pos = 0;
  for (int octet = 0; octet < 4; ++octet) {
    if (pos >= text.size()) {
      throw std::invalid_argument("ipv4_from_string: too few octets");
    }
    std::size_t consumed = 0;
    const int value = std::stoi(text.substr(pos), &consumed);
    if (value < 0 || value > 255 || consumed == 0) {
      throw std::invalid_argument("ipv4_from_string: octet out of range");
    }
    addr = (addr << 8) | static_cast<std::uint32_t>(value);
    pos += consumed;
    if (octet < 3) {
      if (pos >= text.size() || text[pos] != '.') {
        throw std::invalid_argument("ipv4_from_string: expected '.'");
      }
      ++pos;
    }
  }
  if (pos != text.size()) {
    throw std::invalid_argument("ipv4_from_string: trailing characters");
  }
  return addr;
}

}  // namespace repro::net
