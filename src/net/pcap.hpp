// Classic libpcap file format (magic 0xa1b2c3d4, microsecond resolution),
// implemented from scratch so synthetic traces are loadable by Wireshark,
// tcpreplay, and any libpcap consumer — the "replayable trace" requirement
// from the paper (§3.2, §4).
//
// We write LINKTYPE_RAW (101): packets begin directly with the IPv4
// header, which is exactly what `Packet::serialize` produces. The reader
// also accepts LINKTYPE_ETHERNET (1) by skipping the 14-byte MAC header of
// IPv4 frames.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "net/packet.hpp"

namespace repro::net {

/// Record as stored in the file: timestamp plus raw datagram bytes.
struct PcapRecord {
  double timestamp = 0.0;
  std::vector<std::uint8_t> data;
};

/// Writes records/packets to a pcap stream or file.
class PcapWriter {
 public:
  /// Writes the global header. `snaplen` bounds per-record capture length.
  explicit PcapWriter(std::ostream& out, std::uint32_t snaplen = 65535);

  /// Appends one raw record.
  void write_record(const PcapRecord& record);

  /// Serializes and appends one packet.
  void write_packet(const Packet& packet);

  std::size_t records_written() const noexcept { return count_; }

 private:
  std::ostream& out_;
  std::uint32_t snaplen_;
  std::size_t count_ = 0;
};

/// Reads an entire pcap stream into records. Throws std::runtime_error on
/// bad magic or truncated records.
class PcapReader {
 public:
  explicit PcapReader(std::istream& in);

  /// Link type from the global header (101 = raw IP, 1 = Ethernet).
  std::uint32_t link_type() const noexcept { return link_type_; }

  /// Reads the next record; returns false at clean EOF.
  bool next(PcapRecord& record);

  /// Reads and parses the next IPv4 packet, skipping link-layer framing
  /// and non-IPv4 frames. Returns false at EOF.
  bool next_packet(Packet& packet);

 private:
  std::istream& in_;
  std::uint32_t link_type_ = 0;
  bool swapped_ = false;  // file written with opposite byte order
};

/// Convenience: writes all packets to `path` (overwrites).
void write_pcap_file(const std::string& path,
                     const std::vector<Packet>& packets);

/// Convenience: parses all IPv4 packets from `path`.
std::vector<Packet> read_pcap_file(const std::string& path);

}  // namespace repro::net
