#include "net/checksum.hpp"

namespace repro::net {

void ChecksumAccumulator::add(std::span<const std::uint8_t> data) noexcept {
  std::size_t i = 0;
  if (odd_ && !data.empty()) {
    // Complete the previously-pending high byte with this buffer's first.
    sum_ += data[0];
    odd_ = false;
    i = 1;
  }
  for (; i + 1 < data.size(); i += 2) {
    sum_ += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
  }
  if (i < data.size()) {
    sum_ += static_cast<std::uint32_t>(data[i]) << 8;
    odd_ = true;
  }
}

void ChecksumAccumulator::add_u16(std::uint16_t value) noexcept {
  const std::uint8_t b[2] = {static_cast<std::uint8_t>(value >> 8),
                             static_cast<std::uint8_t>(value)};
  add(std::span<const std::uint8_t>(b, 2));
}

void ChecksumAccumulator::add_u32(std::uint32_t value) noexcept {
  add_u16(static_cast<std::uint16_t>(value >> 16));
  add_u16(static_cast<std::uint16_t>(value));
}

std::uint16_t ChecksumAccumulator::finish() const noexcept {
  std::uint64_t sum = sum_;
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept {
  ChecksumAccumulator acc;
  acc.add(data);
  return acc.finish();
}

}  // namespace repro::net
