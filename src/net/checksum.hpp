// RFC 1071 Internet checksum, used by the IPv4, TCP, UDP and ICMP
// serializers. Keeping it separate lets tests verify it against known
// vectors independently of header layout.
#pragma once

#include <cstdint>
#include <span>

namespace repro::net {

/// One's-complement sum of 16-bit words (RFC 1071). Odd trailing byte is
/// padded with zero. Returns the checksum field value (already
/// complemented); a buffer whose checksum field holds this value sums to
/// 0xFFFF.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept;

/// Incremental accumulator for checksums spanning several buffers (e.g.
/// TCP/UDP pseudo-header + segment).
class ChecksumAccumulator {
 public:
  void add(std::span<const std::uint8_t> data) noexcept;
  void add_u16(std::uint16_t value) noexcept;
  void add_u32(std::uint32_t value) noexcept;

  /// Finalizes: folds carries and complements.
  std::uint16_t finish() const noexcept;

 private:
  std::uint64_t sum_ = 0;
  bool odd_ = false;  // true when an odd byte is pending in `sum_`'s low half
};

}  // namespace repro::net
