#include "net/pcap.hpp"

#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "common/bytes.hpp"

namespace repro::net {
namespace {

constexpr std::uint32_t kMagicNative = 0xa1b2c3d4;   // microsecond pcap
constexpr std::uint32_t kMagicSwapped = 0xd4c3b2a1;
constexpr std::uint32_t kLinkTypeEthernet = 1;
constexpr std::uint32_t kLinkTypeRaw = 101;
constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;

std::uint32_t swap32(std::uint32_t v) noexcept {
  return ((v & 0x000000FF) << 24) | ((v & 0x0000FF00) << 8) |
         ((v & 0x00FF0000) >> 8) | ((v & 0xFF000000) >> 24);
}

bool read_exact(std::istream& in, std::uint8_t* out, std::size_t n) {
  return read_bytes(in, out, n);
}

}  // namespace

PcapWriter::PcapWriter(std::ostream& out, std::uint32_t snaplen)
    : out_(out), snaplen_(snaplen) {
  std::vector<std::uint8_t> header;
  ByteWriter w(header);
  w.u32_le(kMagicNative);
  w.u16_le(2);   // version major
  w.u16_le(4);   // version minor
  w.u32_le(0);   // thiszone
  w.u32_le(0);   // sigfigs
  w.u32_le(snaplen_);
  w.u32_le(kLinkTypeRaw);
  write_bytes(out_, header.data(), header.size());
}

void PcapWriter::write_record(const PcapRecord& record) {
  const auto caplen = static_cast<std::uint32_t>(
      std::min<std::size_t>(record.data.size(), snaplen_));
  const auto secs = static_cast<std::uint32_t>(record.timestamp);
  const auto usecs = static_cast<std::uint32_t>(
      std::llround((record.timestamp - static_cast<double>(secs)) * 1e6) %
      1000000);
  std::vector<std::uint8_t> header;
  ByteWriter w(header);
  w.u32_le(secs);
  w.u32_le(usecs);
  w.u32_le(caplen);
  w.u32_le(static_cast<std::uint32_t>(record.data.size()));
  write_bytes(out_, header.data(), header.size());
  write_bytes(out_, record.data.data(), caplen);
  ++count_;
}

void PcapWriter::write_packet(const Packet& packet) {
  write_record(PcapRecord{packet.timestamp, packet.serialize()});
}

PcapReader::PcapReader(std::istream& in) : in_(in) {
  std::uint8_t raw[24];
  if (!read_exact(in_, raw, sizeof raw)) {
    throw std::runtime_error("PcapReader: truncated global header");
  }
  ByteReader r(std::span<const std::uint8_t>(raw, sizeof raw));
  const std::uint32_t magic = r.u32_le();
  if (magic == kMagicNative) {
    swapped_ = false;
  } else if (magic == kMagicSwapped) {
    swapped_ = true;
  } else {
    throw std::runtime_error("PcapReader: bad magic");
  }
  r.skip(16);  // version, thiszone, sigfigs, snaplen
  std::uint32_t lt = r.u32_le();
  if (swapped_) lt = swap32(lt);
  link_type_ = lt;
  if (link_type_ != kLinkTypeRaw && link_type_ != kLinkTypeEthernet) {
    throw std::runtime_error("PcapReader: unsupported link type " +
                             std::to_string(link_type_));
  }
}

bool PcapReader::next(PcapRecord& record) {
  std::uint8_t raw[16];
  if (!read_exact(in_, raw, sizeof raw)) return false;  // clean EOF
  ByteReader r(std::span<const std::uint8_t>(raw, sizeof raw));
  std::uint32_t secs = r.u32_le();
  std::uint32_t usecs = r.u32_le();
  std::uint32_t caplen = r.u32_le();
  r.skip(4);  // original length
  if (swapped_) {
    secs = swap32(secs);
    usecs = swap32(usecs);
    caplen = swap32(caplen);
  }
  record.timestamp = static_cast<double>(secs) + 1e-6 * usecs;
  record.data.resize(caplen);
  if (!read_exact(in_, record.data.data(), caplen)) {
    throw std::runtime_error("PcapReader: truncated record body");
  }
  return true;
}

bool PcapReader::next_packet(Packet& packet) {
  PcapRecord record;
  while (next(record)) {
    std::span<const std::uint8_t> datagram(record.data);
    if (link_type_ == kLinkTypeEthernet) {
      if (datagram.size() < 14) continue;
      const std::uint16_t ether_type =
          static_cast<std::uint16_t>((datagram[12] << 8) | datagram[13]);
      if (ether_type != kEtherTypeIpv4) continue;
      datagram = datagram.subspan(14);
    }
    try {
      packet = Packet::parse(datagram, record.timestamp);
      return true;
    } catch (const std::exception&) {
      continue;  // skip malformed frames, keep reading
    }
  }
  return false;
}

void write_pcap_file(const std::string& path,
                     const std::vector<Packet>& packets) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("write_pcap_file: cannot open " + path);
  PcapWriter writer(out);
  for (const auto& pkt : packets) writer.write_packet(pkt);
}

std::vector<Packet> read_pcap_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_pcap_file: cannot open " + path);
  PcapReader reader(in);
  std::vector<Packet> packets;
  Packet pkt;
  while (reader.next_packet(pkt)) packets.push_back(pkt);
  return packets;
}

}  // namespace repro::net
