// Flow abstraction: a 5-tuple-keyed, time-ordered sequence of packets.
// The dataset unit for every experiment in the paper is a flow (Table 1
// counts flows; the diffusion model generates one flow image at a time).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/packet.hpp"

namespace repro::net {

/// Canonical bidirectional 5-tuple key. `canonical()` orders the endpoint
/// pair so both directions of a connection map to the same flow.
struct FlowKey {
  std::uint32_t src_addr = 0;
  std::uint32_t dst_addr = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  IpProto protocol = IpProto::kTcp;

  FlowKey canonical() const noexcept;
  auto operator<=>(const FlowKey&) const = default;
  std::string to_string() const;

  static FlowKey from_packet(const Packet& packet) noexcept;
};

/// A labeled flow: ordered packets plus the application label used by the
/// service-recognition task (-1 = unlabeled).
struct Flow {
  FlowKey key;
  int label = -1;
  std::vector<Packet> packets;

  std::size_t packet_count() const noexcept { return packets.size(); }
  std::size_t byte_count() const noexcept;
  double duration() const noexcept;

  /// The protocol carried by the majority of packets (the "dominant
  /// protocol type" the paper's controllability analysis checks).
  IpProto dominant_protocol() const noexcept;

  /// Fraction of packets whose protocol equals `proto`.
  double protocol_fraction(IpProto proto) const noexcept;
};

/// Groups packets into flows by canonical 5-tuple, preserving packet
/// order within each flow. Flows are returned in order of first packet.
std::vector<Flow> assemble_flows(const std::vector<Packet>& packets);

/// Flattens flows back into one time-sorted packet sequence. Equal
/// timestamps are broken by (flow index, packet index), so the result
/// is one canonical permutation even when flows share a start time —
/// the same tie order the replay emitter's event queue uses.
std::vector<Packet> flatten_flows(const std::vector<Flow>& flows);

}  // namespace repro::net
