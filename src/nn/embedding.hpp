// Embedding table (word/class embeddings) and the sinusoidal timestep
// encoding used by diffusion models.
#pragma once

#include "common/rng.hpp"
#include "nn/module.hpp"

namespace repro::nn {

/// Lookup table [vocab, dim]. Forward consumes integer ids (cast to float
/// in a [N] tensor) and yields [N, dim]. Backward scatters gradients into
/// the rows selected at forward time.
class Embedding : public Module {
 public:
  Embedding(std::size_t vocab, std::size_t dim, Rng& rng,
            const std::string& name = "embedding");

  Tensor forward(const Tensor& ids) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;

  std::size_t vocab() const noexcept { return vocab_; }
  std::size_t dim() const noexcept { return dim_; }
  Parameter& table() noexcept { return table_; }

 private:
  std::size_t vocab_, dim_;
  Parameter table_;
  std::vector<std::size_t> last_ids_;
};

/// Sinusoidal position/timestep encoding: out[2i] = sin(t / 10000^{2i/d}),
/// out[2i+1] = cos(...). `dim` must be even.
Tensor sinusoidal_embedding(const std::vector<float>& timesteps,
                            std::size_t dim);

}  // namespace repro::nn
