#include "nn/tensor.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "nn/kernels/gemm.hpp"

namespace repro::nn {
namespace {

std::size_t element_count(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return n;
}

}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(element_count(shape_), 0.0f) {}

Tensor::Tensor(std::vector<std::size_t> shape, float fill)
    : shape_(std::move(shape)), data_(element_count(shape_), fill) {}

Tensor Tensor::reshaped(std::vector<std::size_t> shape) const& {
  if (element_count(shape) != data_.size()) {
    throw std::invalid_argument("Tensor::reshaped: element count mismatch");
  }
  Tensor out;
  out.shape_ = std::move(shape);
  out.data_ = data_;
  return out;
}

Tensor Tensor::reshaped(std::vector<std::size_t> shape) && {
  reshape_inplace(std::move(shape));
  return std::move(*this);
}

void Tensor::reshape_inplace(std::vector<std::size_t> shape) {
  if (element_count(shape) != data_.size()) {
    throw std::invalid_argument(
        "Tensor::reshape_inplace: element count mismatch");
  }
  shape_ = std::move(shape);
}

void Tensor::fill(float value) noexcept {
  for (float& v : data_) v = value;
}

void Tensor::add(const Tensor& other) {
  require_shape(other.shape_, "Tensor::add");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::add_scaled(const Tensor& other, float s) {
  require_shape(other.shape_, "Tensor::add_scaled");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += s * other.data_[i];
  }
}

void Tensor::scale(float s) noexcept {
  for (float& v : data_) v *= s;
}

float Tensor::sum() const noexcept {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::mean() const noexcept {
  return data_.empty() ? 0.0f : sum() / static_cast<float>(data_.size());
}

float Tensor::abs_max() const noexcept {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::abs(v));
  return m;
}

float Tensor::l2_norm() const noexcept {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

void Tensor::require_shape(const std::vector<std::size_t>& shape,
                           const char* what) const {
  if (shape_ != shape) {
    throw std::invalid_argument(std::string(what) + ": shape mismatch");
  }
}

std::string Tensor::shape_string() const {
  std::string s = "[";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) s += ", ";
    s += std::to_string(shape_[i]);
  }
  return s + "]";
}

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.add(b);
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.add_scaled(b, -1.0f);
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  a.require_shape(b.shape(), "mul");
  Tensor out = a;
  for (std::size_t i = 0; i < out.size(); ++i) out[i] *= b[i];
  return out;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(0)) {
    throw std::invalid_argument("matmul: incompatible shapes " +
                                a.shape_string() + " x " + b.shape_string());
  }
  const std::size_t n = a.dim(0), k = a.dim(1), m = b.dim(1);
  Tensor c({n, m});
  kernels::gemm_nn(n, k, m, a.data(), b.data(), c.data());
  return c;
}

Tensor matmul_bt(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(1)) {
    throw std::invalid_argument("matmul_bt: incompatible shapes " +
                                a.shape_string() + " x " + b.shape_string());
  }
  const std::size_t n = a.dim(0), m = a.dim(1), k = b.dim(0);
  Tensor c({n, k});
  kernels::gemm_nt(n, m, k, a.data(), b.data(), c.data());
  return c;
}

Tensor matmul_at(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(0) != b.dim(0)) {
    throw std::invalid_argument("matmul_at: incompatible shapes " +
                                a.shape_string() + " x " + b.shape_string());
  }
  const std::size_t n = a.dim(0), k = a.dim(1), m = b.dim(1);
  Tensor c({k, m});
  kernels::gemm_tn(n, k, m, a.data(), b.data(), c.data());
  return c;
}

}  // namespace repro::nn
