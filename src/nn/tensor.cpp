#include "nn/tensor.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/parallel/parallel_for.hpp"

namespace repro::nn {
namespace {

std::size_t element_count(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return n;
}

}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(element_count(shape_), 0.0f) {}

Tensor::Tensor(std::vector<std::size_t> shape, float fill)
    : shape_(std::move(shape)), data_(element_count(shape_), fill) {}

Tensor Tensor::reshaped(std::vector<std::size_t> shape) const {
  if (element_count(shape) != data_.size()) {
    throw std::invalid_argument("Tensor::reshaped: element count mismatch");
  }
  Tensor out;
  out.shape_ = std::move(shape);
  out.data_ = data_;
  return out;
}

void Tensor::fill(float value) noexcept {
  for (float& v : data_) v = value;
}

void Tensor::add(const Tensor& other) {
  require_shape(other.shape_, "Tensor::add");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::add_scaled(const Tensor& other, float s) {
  require_shape(other.shape_, "Tensor::add_scaled");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += s * other.data_[i];
  }
}

void Tensor::scale(float s) noexcept {
  for (float& v : data_) v *= s;
}

float Tensor::sum() const noexcept {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::mean() const noexcept {
  return data_.empty() ? 0.0f : sum() / static_cast<float>(data_.size());
}

float Tensor::abs_max() const noexcept {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::abs(v));
  return m;
}

float Tensor::l2_norm() const noexcept {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

void Tensor::require_shape(const std::vector<std::size_t>& shape,
                           const char* what) const {
  if (shape_ != shape) {
    throw std::invalid_argument(std::string(what) + ": shape mismatch");
  }
}

std::string Tensor::shape_string() const {
  std::string s = "[";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) s += ", ";
    s += std::to_string(shape_[i]);
  }
  return s + "]";
}

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.add(b);
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out.add_scaled(b, -1.0f);
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  a.require_shape(b.shape(), "mul");
  Tensor out = a;
  for (std::size_t i = 0; i < out.size(); ++i) out[i] *= b[i];
  return out;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(0)) {
    throw std::invalid_argument("matmul: incompatible shapes " +
                                a.shape_string() + " x " + b.shape_string());
  }
  const std::size_t n = a.dim(0), k = a.dim(1), m = b.dim(1);
  Tensor c({n, m});
  // Row-blocked: each output row accumulates exactly as in the serial
  // loop, so results are bit-identical at any thread count.
  parallel::parallel_for(
      0, n, parallel::grain_for(k * m), [&](std::size_t rb, std::size_t re) {
        for (std::size_t i = rb; i < re; ++i) {
          const float* arow = a.data() + i * k;
          float* crow = c.data() + i * m;
          for (std::size_t p = 0; p < k; ++p) {
            const float av = arow[p];
            if (av == 0.0f) continue;
            const float* brow = b.data() + p * m;
            for (std::size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
          }
        }
      });
  return c;
}

Tensor matmul_bt(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(1)) {
    throw std::invalid_argument("matmul_bt: incompatible shapes " +
                                a.shape_string() + " x " + b.shape_string());
  }
  const std::size_t n = a.dim(0), m = a.dim(1), k = b.dim(0);
  Tensor c({n, k});
  parallel::parallel_for(
      0, n, parallel::grain_for(k * m), [&](std::size_t rb, std::size_t re) {
        for (std::size_t i = rb; i < re; ++i) {
          const float* arow = a.data() + i * m;
          float* crow = c.data() + i * k;
          for (std::size_t j = 0; j < k; ++j) {
            const float* brow = b.data() + j * m;
            double acc = 0.0;
            for (std::size_t p = 0; p < m; ++p) {
              acc += static_cast<double>(arow[p]) * brow[p];
            }
            crow[j] = static_cast<float>(acc);
          }
        }
      });
  return c;
}

Tensor matmul_at(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(0) != b.dim(0)) {
    throw std::invalid_argument("matmul_at: incompatible shapes " +
                                a.shape_string() + " x " + b.shape_string());
  }
  const std::size_t n = a.dim(0), k = a.dim(1), m = b.dim(1);
  Tensor c({k, m});
  // Output rows of c are indexed by p; give each chunk a disjoint p
  // range and keep the i-ascending accumulation order of the serial
  // loop so every c[p][j] sums in the identical order.
  parallel::parallel_for(
      0, k, parallel::grain_for(n * m), [&](std::size_t pb, std::size_t pe) {
        for (std::size_t i = 0; i < n; ++i) {
          const float* arow = a.data() + i * k;
          const float* brow = b.data() + i * m;
          for (std::size_t p = pb; p < pe; ++p) {
            const float av = arow[p];
            if (av == 0.0f) continue;
            float* crow = c.data() + p * m;
            for (std::size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
          }
        }
      });
  return c;
}

}  // namespace repro::nn
