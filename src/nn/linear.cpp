#include "nn/linear.hpp"

#include <cstring>

#include "common/parallel/parallel_for.hpp"
#include "common/telemetry/trace.hpp"
#include "nn/init.hpp"
#include "nn/kernels/gemm.hpp"

namespace repro::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng& rng,
               bool bias, const std::string& name)
    : in_(in_features),
      out_(out_features),
      has_bias_(bias),
      weight_(name + ".weight", Tensor({out_features, in_features})),
      bias_(name + ".bias", Tensor({out_features})) {
  kaiming_normal(weight_.value, in_features, rng);
}

Tensor Linear::forward(const Tensor& input) {
  REPRO_SPAN("nn.linear.forward");
  if (input.rank() != 2 || input.dim(1) != in_) {
    throw std::invalid_argument("Linear::forward: bad input " +
                                input.shape_string());
  }
  input_ = input;
  const std::size_t n = input.dim(0);
  Tensor out({n, out_});
  if (has_bias_) {
    // Seed each output row with the bias, then accumulate x W^T on top —
    // one pass over the output instead of a separate bias sweep.
    for (std::size_t i = 0; i < n; ++i) {
      std::memcpy(out.data() + i * out_, bias_.value.data(),
                  out_ * sizeof(float));
    }
  }
  const kernels::Accumulate acc = has_bias_ ? kernels::Accumulate::kAdd
                                            : kernels::Accumulate::kOverwrite;
  if (precision_ == Precision::kInt8) {
    if (!quant_valid_) refresh_quantized();
    kernels::qgemm_nt(n, in_, out_, input.data(), qweight_, out.data(), acc);
  } else {
    kernels::gemm_nt(n, in_, out_, input.data(), weight_.value.data(),
                     out.data(), acc);
  }
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  REPRO_SPAN("nn.linear.backward");
  grad_output.require_shape({input_.dim(0), out_}, "Linear::backward");
  // dW += g^T x ; db += sum_n g ; dx = g W
  const std::size_t n = grad_output.dim(0);
  kernels::gemm_tn(n, out_, in_, grad_output.data(), input_.data(),
                   weight_.grad.data(), kernels::Accumulate::kAdd);
  if (has_bias_) {
    // Each chunk owns a disjoint column range of the bias gradient and
    // accumulates it in the serial i-ascending order.
    parallel::parallel_for(
        0, out_, parallel::grain_for(n), [&](std::size_t jb, std::size_t je) {
          for (std::size_t i = 0; i < n; ++i) {
            const float* row = grad_output.data() + i * out_;
            for (std::size_t j = jb; j < je; ++j) bias_.grad[j] += row[j];
          }
        });
  }
  return matmul(grad_output, weight_.value);
}

std::vector<Parameter*> Linear::parameters() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

void Linear::set_trainable(bool trainable) noexcept {
  weight_.trainable = trainable;
  bias_.trainable = trainable;
}

void Linear::refresh_quantized() {
  qweight_ =
      kernels::quantize_tensor(weight_.value.data(), weight_.value.size());
  quant_valid_ = true;
}

void Linear::invalidate_quantized() {
  qweight_.clear();
  quant_valid_ = false;
}

}  // namespace repro::nn
