#include "nn/linear.hpp"

#include "common/parallel/parallel_for.hpp"
#include "common/telemetry/trace.hpp"
#include "nn/init.hpp"

namespace repro::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng& rng,
               bool bias, const std::string& name)
    : in_(in_features),
      out_(out_features),
      has_bias_(bias),
      weight_(name + ".weight", Tensor({out_features, in_features})),
      bias_(name + ".bias", Tensor({out_features})) {
  kaiming_normal(weight_.value, in_features, rng);
}

Tensor Linear::forward(const Tensor& input) {
  REPRO_SPAN("nn.linear.forward");
  if (input.rank() != 2 || input.dim(1) != in_) {
    throw std::invalid_argument("Linear::forward: bad input " +
                                input.shape_string());
  }
  input_ = input;
  Tensor out = matmul_bt(input, weight_.value);  // [N, out]
  if (has_bias_) {
    const std::size_t n = out.dim(0);
    parallel::parallel_for(
        0, n, parallel::grain_for(out_), [&](std::size_t rb, std::size_t re) {
          for (std::size_t i = rb; i < re; ++i) {
            float* row = out.data() + i * out_;
            for (std::size_t j = 0; j < out_; ++j) row[j] += bias_.value[j];
          }
        });
  }
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  REPRO_SPAN("nn.linear.backward");
  grad_output.require_shape({input_.dim(0), out_}, "Linear::backward");
  // dW += g^T x ; db += sum_n g ; dx = g W
  weight_.grad.add(matmul_at(grad_output, input_));
  if (has_bias_) {
    // Each chunk owns a disjoint column range of the bias gradient and
    // accumulates it in the serial i-ascending order.
    const std::size_t n = grad_output.dim(0);
    parallel::parallel_for(
        0, out_, parallel::grain_for(n), [&](std::size_t jb, std::size_t je) {
          for (std::size_t i = 0; i < n; ++i) {
            const float* row = grad_output.data() + i * out_;
            for (std::size_t j = jb; j < je; ++j) bias_.grad[j] += row[j];
          }
        });
  }
  return matmul(grad_output, weight_.value);
}

std::vector<Parameter*> Linear::parameters() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

void Linear::set_trainable(bool trainable) noexcept {
  weight_.trainable = trainable;
  bias_.trainable = trainable;
}

}  // namespace repro::nn
