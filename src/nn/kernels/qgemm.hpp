// Quantized int8 GEMM route — the fast-inference counterpart of
// gemm.hpp. Both operands are symmetric per-tensor int8 (scale =
// absmax / 127, zero point 0); products accumulate EXACTLY in int32 and
// a dequantizing epilogue scales the tile back to float:
//
//   C = or += (scale_a * scale_b) * (Aq int8 [M,K] . Bq int8 [K,N])
//
// Weights are quantized once (absmax calibration at checkpoint-load
// time or on the first int8 forward, cached as a QuantizedTensor);
// activations are quantized per call into arena scratch.
//
// Determinism contract: identical in structure to gemm.cpp — packed
// kNr-wide B panels, a kMr x kNr register micro-kernel, row-chunk-only
// parallelism with the grain rounded to kMr — and stronger in substance:
// int32 accumulation has no rounding at all, so any summation order
// would give the same bits. The fixed ascending-k order is kept anyway
// so the two kernels stay structurally interchangeable. int8 results
// differ from fp32 results, but int8@1 lane == int8@8 lanes, bit for
// bit (determinism_test.cpp locks this in). The epilogue rounds exactly
// twice — c = c + round(float(acc) * dq) — with fp contraction disabled
// for this translation unit (CMake: -ffp-contract=off), so kAdd bits
// cannot depend on whether a column landed in a full panel or the tail.
//
// This header is the ONLY sanctioned home for int8/uint8 quantization
// arithmetic in src/nn (lint rule RL023 confines the tokens to
// src/nn/kernels/); layers hold opaque QuantizedTensor caches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "nn/kernels/gemm.hpp"

namespace repro::nn::kernels {

/// An absmax-calibrated symmetric int8 copy of a float tensor:
/// q[i] = round(x[i] / scale) clamped to [-127, 127],
/// scale = absmax / 127 (1.0 for an all-zero tensor).
struct QuantizedTensor {
  std::vector<std::int8_t> data;
  float scale = 1.0f;

  std::size_t size() const noexcept { return data.size(); }
  bool empty() const noexcept { return data.empty(); }
  void clear() noexcept {
    data.clear();
    scale = 1.0f;
  }
};

/// Largest |x| over n floats (0 for n == 0).
float absmax(const float* x, std::size_t n);

/// Symmetric per-tensor scale for a given absolute maximum.
float quant_scale(float absmax_value) noexcept;

/// Quantizes n floats with `scale` into q (round half away from zero,
/// clamp to +-127). Deterministic elementwise pass.
void quantize(const float* x, std::size_t n, float scale, std::int8_t* q);

/// absmax + quantize in one call — the per-weight calibration pass.
QuantizedTensor quantize_tensor(const float* x, std::size_t n);

/// Strided int8 views mirroring gemm.hpp's AView/BView.
struct QAView {
  const std::int8_t* data;
  std::size_t row_stride;
  std::size_t k_stride;
};

struct QBView {
  const std::int8_t* data;
  std::size_t k_stride;
  std::size_t col_stride;
};

/// C[M, N] (row-major, ldc) = or += dequant * (A[M, K] . B[K, N]) with
/// exact int32 accumulation. `dequant` is the product of the two
/// per-tensor scales. k must stay below 2^17 so the worst-case
/// accumulator (127 * 127 * k) cannot overflow int32.
void qgemm(std::size_t m, std::size_t n, std::size_t k, QAView a, QBView b,
           float dequant, float* c, std::size_t ldc, Accumulate acc);

// --- Layer-facing adapters (mirroring gemm_nt / gemm_nn shapes). ---

/// C[n, k] = A[n, m] fp32 x Bq[k, m]^T — the Linear forward shape
/// (Bq = quantized [out, in] weight). A is quantized per call.
void qgemm_nt(std::size_t n, std::size_t m, std::size_t k, const float* a,
              const QuantizedTensor& bq, float* c,
              Accumulate acc = Accumulate::kOverwrite);

/// C[n, m] = Aq[n, k] x B[k, m] fp32 — the Conv1d im2col shape
/// (Aq = quantized [cout, cin*kernel] weight). B is quantized per call.
void qgemm_nn(std::size_t n, std::size_t k, std::size_t m,
              const QuantizedTensor& aq, const float* b, float* c,
              Accumulate acc = Accumulate::kOverwrite);

/// Reuse counters of the kernel-internal byte arena (quantized
/// activations + packed int8 panels; the float TensorArena cannot hold
/// them). Mirrors TensorArena::Stats for the arena-reuse tests.
struct QuantArenaStats {
  std::size_t allocs = 0;
  std::size_t reuses = 0;
  std::size_t free_buffers = 0;
};

QuantArenaStats quant_arena_stats();

/// Drops the byte arena's free list (tests only).
void quant_arena_trim();

}  // namespace repro::nn::kernels
