#include "nn/kernels/qgemm.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <mutex>

#include "common/contracts.hpp"
#include "common/parallel/parallel_for.hpp"

// The AVX2 micro-kernel below pairs k-steps through vpmaddwd (16 int8
// MACs per instruction); everything stays exact int32 arithmetic, so it
// produces bit-identical results to the portable kernel.
#if defined(__AVX2__) && REPRO_SIMD_WIDTH == 8
#include <immintrin.h>
#define REPRO_QGEMM_AVX2 1
#else
#define REPRO_QGEMM_AVX2 0
#endif

namespace repro::nn::kernels {
namespace {

constexpr std::size_t kW = REPRO_SIMD_WIDTH;
constexpr std::size_t kLanes = kNr / kW;

// The portable micro-kernel (and its vector helpers) only compiles when
// the AVX2 dot-product kernel is unavailable; both produce the same
// bits, so nothing observable depends on which one a build selects.
#if !REPRO_QGEMM_AVX2

#if REPRO_SIMD_WIDTH > 1
typedef std::int8_t QVec __attribute__((vector_size(kW)));
typedef std::int32_t IVec __attribute__((vector_size(kW * sizeof(std::int32_t))));
typedef float FVec __attribute__((vector_size(kW * sizeof(float))));

inline IVec load_widen(const std::int8_t* p) {
  QVec q;
  __builtin_memcpy(&q, p, sizeof(q));
  return __builtin_convertvector(q, IVec);
}

inline FVec to_float(IVec v) { return __builtin_convertvector(v, FVec); }
#else
using IVec = std::int32_t;
using FVec = float;

inline IVec load_widen(const std::int8_t* p) {
  return static_cast<std::int32_t>(*p);
}

inline FVec to_float(IVec v) { return static_cast<float>(v); }
#endif

inline FVec load_f(const float* p) {
  FVec v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

inline void store_f(float* p, FVec v) { __builtin_memcpy(p, &v, sizeof(v)); }

#endif  // !REPRO_QGEMM_AVX2

/// Byte arena for the kernel's int8 scratch (quantized activations and
/// packed panels). The float TensorArena cannot hold int8 data without
/// reinterpreting its storage, so the quantized route keeps its own
/// free list with the same lease-and-return discipline.
class ByteArena {
 public:
  class Handle {
   public:
    Handle() = default;
    Handle(Handle&& other) noexcept { swap(other); }
    Handle& operator=(Handle&& other) noexcept {
      if (this != &other) {
        release();
        swap(other);
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() { release(); }

    std::int8_t* data() { return buffer_ ? buffer_->data() : nullptr; }

   private:
    friend class ByteArena;
    Handle(ByteArena* arena, std::vector<std::int8_t>* buffer)
        : arena_(arena), buffer_(buffer) {}
    void swap(Handle& other) noexcept {
      std::swap(arena_, other.arena_);
      std::swap(buffer_, other.buffer_);
    }
    void release() {
      if (arena_ != nullptr && buffer_ != nullptr) {
        arena_->release_buffer(buffer_);
      }
      arena_ = nullptr;
      buffer_ = nullptr;
    }

    ByteArena* arena_ = nullptr;
    std::vector<std::int8_t>* buffer_ = nullptr;
  };

  Handle acquire(std::size_t size) {
    std::lock_guard<std::mutex> lock(mutex_);
    // Best fit: the smallest free buffer that can hold the request.
    std::size_t best = free_.size();
    for (std::size_t i = 0; i < free_.size(); ++i) {
      if (free_[i]->size() < size) continue;
      if (best == free_.size() || free_[i]->size() < free_[best]->size()) {
        best = i;
      }
    }
    if (best != free_.size()) {
      ++reuses_;
      std::unique_ptr<std::vector<std::int8_t>> buf = std::move(free_[best]);
      free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(best));
      leased_.push_back(std::move(buf));
      return Handle(this, leased_.back().get());
    }
    ++allocs_;
    leased_.push_back(std::make_unique<std::vector<std::int8_t>>(size));
    return Handle(this, leased_.back().get());
  }

  QuantArenaStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return QuantArenaStats{allocs_, reuses_, free_.size()};
  }

  void trim() {
    std::lock_guard<std::mutex> lock(mutex_);
    free_.clear();
  }

  static ByteArena& scratch() {
    static ByteArena arena;
    return arena;
  }

 private:
  void release_buffer(std::vector<std::int8_t>* buffer) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < leased_.size(); ++i) {
      if (leased_[i].get() != buffer) continue;
      free_.push_back(std::move(leased_[i]));
      leased_.erase(leased_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<std::vector<std::int8_t>>> free_;
  std::vector<std::unique_ptr<std::vector<std::int8_t>>> leased_;
  std::size_t allocs_ = 0;
  std::size_t reuses_ = 0;
};

#if !REPRO_QGEMM_AVX2
/// Packs the `ncols`-wide int8 panel of B starting at column j0 into
/// `panel` ([kc x kNr], k-major, zero-filled past ncols) — the exact
/// shape gemm.cpp packs, so the micro-kernel streams B contiguously.
void pack_panel(std::size_t kc, std::size_t ncols, QBView b, std::size_t j0,
                std::int8_t* panel) {
  for (std::size_t p = 0; p < kc; ++p) {
    std::int8_t* dst = panel + p * kNr;
    const std::int8_t* src = b.data + p * b.k_stride + j0 * b.col_stride;
    std::size_t j = 0;
    if (b.col_stride == 1) {
      std::memcpy(dst, src, ncols);
      j = ncols;
    } else {
      for (; j < ncols; ++j) dst[j] = src[j * b.col_stride];
    }
    for (; j < kNr; ++j) dst[j] = 0;
  }
}

/// R x kNr register tile with int32 accumulators; the epilogue converts
/// to float and applies the dequantization scale in one store (or add).
template <std::size_t R>
void micro_kernel(std::size_t kc, const std::int8_t* a, std::size_t ars,
                  std::size_t aks, const std::int8_t* panel, float dq,
                  float* c, std::size_t ldc, std::size_t ncols,
                  Accumulate mode) {
  IVec acc[R][kLanes]{};
  for (std::size_t p = 0; p < kc; ++p) {
    const std::int8_t* brow = panel + p * kNr;
    IVec bv[kLanes];
    for (std::size_t l = 0; l < kLanes; ++l) bv[l] = load_widen(brow + l * kW);
    for (std::size_t r = 0; r < R; ++r) {
      const std::int32_t av =
          static_cast<std::int32_t>(a[r * ars + p * aks]);
      for (std::size_t l = 0; l < kLanes; ++l) acc[r][l] += av * bv[l];
    }
  }
  if (ncols == kNr) {
    for (std::size_t r = 0; r < R; ++r) {
      float* crow = c + r * ldc;
      if (mode == Accumulate::kAdd) {
        for (std::size_t l = 0; l < kLanes; ++l) {
          store_f(crow + l * kW,
                  load_f(crow + l * kW) + to_float(acc[r][l]) * dq);
        }
      } else {
        for (std::size_t l = 0; l < kLanes; ++l) {
          store_f(crow + l * kW, to_float(acc[r][l]) * dq);
        }
      }
    }
    return;
  }
  // Tail panel: spill the dequantized tile, copy the valid columns.
  float tile[R][kNr];
  for (std::size_t r = 0; r < R; ++r) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      store_f(&tile[r][l * kW], to_float(acc[r][l]) * dq);
    }
  }
  for (std::size_t r = 0; r < R; ++r) {
    float* crow = c + r * ldc;
    if (mode == Accumulate::kAdd) {
      for (std::size_t j = 0; j < ncols; ++j) crow[j] += tile[r][j];
    } else {
      for (std::size_t j = 0; j < ncols; ++j) crow[j] = tile[r][j];
    }
  }
}

#endif  // !REPRO_QGEMM_AVX2

#if !REPRO_QGEMM_AVX2
/// Computes rows [rb, re) of C against one packed panel.
void run_panel(std::size_t rb, std::size_t re, std::size_t kc, QAView a,
               const std::int8_t* panel, float dq, float* c, std::size_t ldc,
               std::size_t ncols, Accumulate mode) {
  std::size_t i = rb;
  for (; i + kMr <= re; i += kMr) {
    micro_kernel<kMr>(kc, a.data + i * a.row_stride, a.row_stride, a.k_stride,
                      panel, dq, c + i * ldc, ldc, ncols, mode);
  }
  const std::int8_t* arow = a.data + i * a.row_stride;
  float* crow = c + i * ldc;
  switch (re - i) {
    case 3:
      micro_kernel<3>(kc, arow, a.row_stride, a.k_stride, panel, dq, crow,
                      ldc, ncols, mode);
      break;
    case 2:
      micro_kernel<2>(kc, arow, a.row_stride, a.k_stride, panel, dq, crow,
                      ldc, ncols, mode);
      break;
    case 1:
      micro_kernel<1>(kc, arow, a.row_stride, a.k_stride, panel, dq, crow,
                      ldc, ncols, mode);
      break;
    default:
      break;
  }
}
#endif  // !REPRO_QGEMM_AVX2

#if REPRO_QGEMM_AVX2
// --- AVX2 / VNNI route -------------------------------------------------
//
// k-steps are consumed in pairs through vpmaddwd (or vpdpwssd with
// VNNI), which multiplies 16 int16 pairs and sums each pair into an
// int32 lane — 16 exact int8 MACs per instruction. The pair sum
// a[p]*b[p][j] + a[p+1]*b[p+1][j] is ordinary int32 addition, so the
// accumulator holds exactly the same value as the ascending-k portable
// kernel and the two compile paths are bit-identical. Both operands are
// pre-widened to int16 at pack time (B pair-interleaved, A row-major
// padded to an even k) so the inner loop is nothing but loads,
// broadcasts, and multiply-accumulates.

/// One multiply-accumulate of 16 int16 pairs into 8 int32 lanes.
inline __m256i dot_acc(__m256i acc, __m256i a, __m256i b) {
#if defined(__AVXVNNI__)
  return _mm256_dpwssd_avx_epi32(acc, a, b);
#elif defined(__AVX512VNNI__) && defined(__AVX512VL__)
  return _mm256_dpwssd_epi32(acc, a, b);
#else
  return _mm256_add_epi32(acc, _mm256_madd_epi16(a, b));
#endif
}

// SIMD lane-pointer shims. The integer intrinsics API takes
// __m128i/__m256i pointers, so these three functions hold this file's
// only lane casts — all unaligned loadu/storeu forms, reading/writing
// exactly the 16 elements the surrounding pack/kernel code owns.
inline __m128i load_i8x16(const std::int8_t* p) {
  // repro-lint: allow(RL017) -- unaligned lane view required by _mm_loadu_si128
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}
inline __m256i load_i16x16(const std::int16_t* p) {
  // repro-lint: allow(RL017) -- unaligned lane view required by _mm256_loadu_si256
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}
inline void store_i16x16(std::int16_t* p, __m256i v) {
  // repro-lint: allow(RL017) -- unaligned lane view required by _mm256_storeu_si256
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

/// Packs the `ncols`-wide panel of B into k-pair-interleaved int16:
/// block pp holds 32 int16 where element 2*j + s is b[2*pp + s][j0 + j]
/// (cols 0..7 in the first 16, 8..15 in the second), zero-filled past
/// ncols and past an odd kc.
void pack_panel_pairs(std::size_t kc, std::size_t ncols, QBView b,
                      std::size_t j0, std::int16_t* panel) {
  const std::size_t kc2 = (kc + 1) / 2;
  for (std::size_t pp = 0; pp < kc2; ++pp) {
    const std::size_t p0 = 2 * pp;
    const bool two = p0 + 1 < kc;
    const std::int8_t* s0 = b.data + p0 * b.k_stride + j0 * b.col_stride;
    const std::int8_t* s1 = s0 + b.k_stride;  // only dereferenced if `two`
    std::int16_t* dst = panel + pp * (2 * kNr);
    if (b.col_stride == 1 && ncols == kNr) {
      const __m128i r0 = load_i8x16(s0);
      const __m128i r1 = two ? load_i8x16(s1) : _mm_setzero_si128();
      store_i16x16(dst, _mm256_cvtepi8_epi16(_mm_unpacklo_epi8(r0, r1)));
      store_i16x16(dst + kNr,
                   _mm256_cvtepi8_epi16(_mm_unpackhi_epi8(r0, r1)));
      continue;
    }
    for (std::size_t j = 0; j < kNr; ++j) {
      dst[2 * j] =
          j < ncols ? std::int16_t{s0[j * b.col_stride]} : std::int16_t{0};
      dst[2 * j + 1] = (two && j < ncols)
                           ? std::int16_t{s1[j * b.col_stride]}
                           : std::int16_t{0};
    }
  }
}

/// Widens rows [rb, re) of A to int16 (row-major, kc padded to even) so
/// the micro-kernel can broadcast an (a[p], a[p+1]) pair with a single
/// 32-bit load.
void pack_a_rows(std::size_t rb, std::size_t re, std::size_t kc,
                 std::size_t row16, QAView a, std::int16_t* apack) {
  for (std::size_t i = rb; i < re; ++i) {
    const std::int8_t* src = a.data + i * a.row_stride;
    std::int16_t* dst = apack + i * row16;
    if (a.k_stride == 1) {
      const std::int8_t* __restrict s = src;
      std::int16_t* __restrict d = dst;
      for (std::size_t p = 0; p < kc; ++p) d[p] = s[p];
    } else {
      for (std::size_t p = 0; p < kc; ++p) dst[p] = src[p * a.k_stride];
    }
    if (kc & 1) dst[kc] = 0;
  }
}

/// R x kNr register tile over pair-packed operands.
template <std::size_t R>
void micro_kernel_avx2(std::size_t kc2, const std::int16_t* a,
                       std::size_t row16, const std::int16_t* panel, float dq,
                       float* c, std::size_t ldc, std::size_t ncols,
                       Accumulate mode) {
  static_assert(kNr == 16, "AVX2 tile assumes 16-column panels");
  __m256i acc[R][2];
  for (std::size_t r = 0; r < R; ++r) {
    acc[r][0] = _mm256_setzero_si256();
    acc[r][1] = _mm256_setzero_si256();
  }
  for (std::size_t pp = 0; pp < kc2; ++pp) {
    const std::int16_t* blk = panel + pp * (2 * kNr);
    const __m256i blo = load_i16x16(blk);
    const __m256i bhi = load_i16x16(blk + kNr);
    for (std::size_t r = 0; r < R; ++r) {
      std::int32_t pair;
      std::memcpy(&pair, a + r * row16 + 2 * pp, sizeof(pair));
      const __m256i av = _mm256_set1_epi32(pair);
      acc[r][0] = dot_acc(acc[r][0], av, blo);
      acc[r][1] = dot_acc(acc[r][1], av, bhi);
    }
  }
  // Epilogue: identical two-rounding shape as the portable kernel
  // (convert, scale, then one store or one add into C).
  const __m256 dqv = _mm256_set1_ps(dq);
  if (ncols == kNr) {
    for (std::size_t r = 0; r < R; ++r) {
      float* crow = c + r * ldc;
      for (std::size_t l = 0; l < 2; ++l) {
        __m256 v = _mm256_mul_ps(_mm256_cvtepi32_ps(acc[r][l]), dqv);
        if (mode == Accumulate::kAdd) {
          v = _mm256_add_ps(_mm256_loadu_ps(crow + l * 8), v);
        }
        _mm256_storeu_ps(crow + l * 8, v);
      }
    }
    return;
  }
  float tile[R][kNr];
  for (std::size_t r = 0; r < R; ++r) {
    for (std::size_t l = 0; l < 2; ++l) {
      _mm256_storeu_ps(&tile[r][l * 8],
                       _mm256_mul_ps(_mm256_cvtepi32_ps(acc[r][l]), dqv));
    }
  }
  for (std::size_t r = 0; r < R; ++r) {
    float* crow = c + r * ldc;
    if (mode == Accumulate::kAdd) {
      for (std::size_t j = 0; j < ncols; ++j) crow[j] += tile[r][j];
    } else {
      for (std::size_t j = 0; j < ncols; ++j) crow[j] = tile[r][j];
    }
  }
}

/// Computes rows [rb, re) of C against one pair-packed panel.
void run_panel(std::size_t rb, std::size_t re, std::size_t kc2,
               const std::int16_t* apack, std::size_t row16,
               const std::int16_t* panel, float dq, float* c, std::size_t ldc,
               std::size_t ncols, Accumulate mode) {
  std::size_t i = rb;
  for (; i + kMr <= re; i += kMr) {
    micro_kernel_avx2<kMr>(kc2, apack + i * row16, row16, panel, dq,
                           c + i * ldc, ldc, ncols, mode);
  }
  const std::int16_t* arow = apack + i * row16;
  float* crow = c + i * ldc;
  switch (re - i) {
    case 3:
      micro_kernel_avx2<3>(kc2, arow, row16, panel, dq, crow, ldc, ncols,
                           mode);
      break;
    case 2:
      micro_kernel_avx2<2>(kc2, arow, row16, panel, dq, crow, ldc, ncols,
                           mode);
      break;
    case 1:
      micro_kernel_avx2<1>(kc2, arow, row16, panel, dq, crow, ldc, ncols,
                           mode);
      break;
    default:
      break;
  }
}
#endif  // REPRO_QGEMM_AVX2

}  // namespace

float absmax(const float* x, std::size_t n) {
  // Eight independent per-lane maxima so the loop vectorizes (a single
  // scalar max is a reduction the compiler won't reassociate without
  // fast-math); max is exact, so lane order cannot change the result.
  constexpr std::size_t kL = 8;
  float lanes[kL] = {};
  std::size_t i = 0;
  for (; i + kL <= n; i += kL) {
    for (std::size_t l = 0; l < kL; ++l) {
      const float v = std::fabs(x[i + l]);
      lanes[l] = lanes[l] > v ? lanes[l] : v;
    }
  }
  float m = 0.0f;
  for (std::size_t l = 0; l < kL; ++l) m = m > lanes[l] ? m : lanes[l];
  for (; i < n; ++i) {
    const float v = std::fabs(x[i]);
    if (v > m) m = v;
  }
  return m;
}

float quant_scale(float absmax_value) noexcept {
  return absmax_value > 0.0f ? absmax_value / 127.0f : 1.0f;
}

void quantize(const float* x, std::size_t n, float scale, std::int8_t* q) {
  const float inv = 1.0f / scale;
  // Elementwise with fixed chunks: disjoint writes, no accumulation, so
  // any lane count produces the same bytes. Rounding is branchless
  // half-away-from-zero: add a sign-carrying 0.5 and let the float->int
  // conversion truncate toward zero. Unlike lroundf (a per-element
  // libcall) every operation here — multiply, copysign, min/max, cvt,
  // narrowing store — maps to a SIMD instruction, and the loop
  // auto-vectorizes. Clamping in float keeps the conversion in-range.
  parallel::parallel_for(
      0, n, std::size_t{1} << 14, [&](std::size_t cb, std::size_t ce) {
        // Local __restrict copies: the int8 output writes are char-typed
        // stores, which the compiler must otherwise assume can alias the
        // closure (and the input floats), blocking vectorization.
        const float* __restrict xs = x;
        std::int8_t* __restrict qs = q;
        const float invs = inv;
        for (std::size_t i = cb; i < ce; ++i) {
          const float v = xs[i] * invs;
          float t = v + std::copysignf(0.5f, v);
          t = t > 127.0f ? 127.0f : t;
          t = t < -127.0f ? -127.0f : t;
          qs[i] = static_cast<std::int8_t>(static_cast<std::int32_t>(t));
        }
      });
}

QuantizedTensor quantize_tensor(const float* x, std::size_t n) {
  QuantizedTensor out;
  out.scale = quant_scale(absmax(x, n));
  out.data.resize(n);
  quantize(x, n, out.scale, out.data.data());
  return out;
}

void qgemm(std::size_t m, std::size_t n, std::size_t k, QAView a, QBView b,
           float dequant, float* c, std::size_t ldc, Accumulate acc) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    if (acc == Accumulate::kOverwrite) {
      for (std::size_t i = 0; i < m; ++i) {
        std::memset(c + i * ldc, 0, n * sizeof(float));
      }
    }
    return;
  }
  // 127 * 127 * k must fit int32; every shape in the network is orders
  // of magnitude below this bound.
  REPRO_REQUIRE(k < (std::size_t{1} << 17), "qgemm: k too large for int32");
  const std::size_t panels = (n + kNr - 1) / kNr;
  // Same small-problem / serial-context cutoff as gemm.cpp so the two
  // routes have identical dispatch behavior.
  const bool serial = m * n * k <= (std::size_t{1} << 16) ||
                      parallel::thread_count() == 1 || parallel::in_worker();
#if REPRO_QGEMM_AVX2
  const std::size_t kc2 = (k + 1) / 2;
  const std::size_t row16 = kc2 * 2;           // int16s per packed A row
  const std::size_t pstride = kc2 * 2 * kNr;   // int16s per packed panel
  ByteArena::Handle pack =
      ByteArena::scratch().acquire((panels * pstride + m * row16) *
                                   sizeof(std::int16_t));
  // repro-lint: allow(RL017) -- int16 rebind of the kernel's own byte arena (operator new alignment)
  std::int16_t* packed = reinterpret_cast<std::int16_t*>(pack.data());
  std::int16_t* apack = packed + panels * pstride;
  if (serial) {
    pack_a_rows(0, m, k, row16, a, apack);
    for (std::size_t pi = 0; pi < panels; ++pi) {
      const std::size_t j0 = pi * kNr;
      pack_panel_pairs(k, std::min(kNr, n - j0), b, j0, packed + pi * pstride);
    }
    for (std::size_t pi = 0; pi < panels; ++pi) {
      const std::size_t j0 = pi * kNr;
      run_panel(0, m, kc2, apack, row16, packed + pi * pstride, dequant,
                c + j0, ldc, std::min(kNr, n - j0), acc);
    }
    return;
  }
  parallel::parallel_for(
      0, panels, parallel::grain_for(k * kNr),
      [&](std::size_t pb, std::size_t pe) {
        for (std::size_t pi = pb; pi < pe; ++pi) {
          const std::size_t j0 = pi * kNr;
          pack_panel_pairs(k, std::min(kNr, n - j0), b, j0,
                           packed + pi * pstride);
        }
      });
  // Row blocks only, grain pinned to kMr multiples — the same
  // chunk-boundary invariance as the fp32 kernel (and the int32 sums
  // are exact anyway). Each block widens its own A rows first (disjoint
  // writes, so lane count cannot change the bytes).
  std::size_t grain = parallel::grain_for(n * k);
  grain = (grain + kMr - 1) / kMr * kMr;
  parallel::parallel_for(0, m, grain, [&](std::size_t rb, std::size_t re) {
    pack_a_rows(rb, re, k, row16, a, apack);
    for (std::size_t pi = 0; pi < panels; ++pi) {
      const std::size_t j0 = pi * kNr;
      run_panel(rb, re, kc2, apack, row16, packed + pi * pstride, dequant,
                c + j0, ldc, std::min(kNr, n - j0), acc);
    }
  });
#else
  ByteArena::Handle pack = ByteArena::scratch().acquire(panels * kNr * k);
  std::int8_t* packed = pack.data();
  if (serial) {
    for (std::size_t pi = 0; pi < panels; ++pi) {
      const std::size_t j0 = pi * kNr;
      pack_panel(k, std::min(kNr, n - j0), b, j0, packed + pi * kNr * k);
    }
    for (std::size_t pi = 0; pi < panels; ++pi) {
      const std::size_t j0 = pi * kNr;
      run_panel(0, m, k, a, packed + pi * kNr * k, dequant, c + j0, ldc,
                std::min(kNr, n - j0), acc);
    }
    return;
  }
  parallel::parallel_for(
      0, panels, parallel::grain_for(k * kNr),
      [&](std::size_t pb, std::size_t pe) {
        for (std::size_t pi = pb; pi < pe; ++pi) {
          const std::size_t j0 = pi * kNr;
          pack_panel(k, std::min(kNr, n - j0), b, j0, packed + pi * kNr * k);
        }
      });
  // Row blocks only, grain pinned to kMr multiples — the same
  // chunk-boundary invariance as the fp32 kernel (and the int32 sums
  // are exact anyway).
  std::size_t grain = parallel::grain_for(n * k);
  grain = (grain + kMr - 1) / kMr * kMr;
  parallel::parallel_for(0, m, grain, [&](std::size_t rb, std::size_t re) {
    for (std::size_t pi = 0; pi < panels; ++pi) {
      const std::size_t j0 = pi * kNr;
      run_panel(rb, re, k, a, packed + pi * kNr * k, dequant, c + j0, ldc,
                std::min(kNr, n - j0), acc);
    }
  });
#endif
}

void qgemm_nt(std::size_t n, std::size_t m, std::size_t k, const float* a,
              const QuantizedTensor& bq, float* c, Accumulate acc) {
  REPRO_REQUIRE(bq.size() == k * m, "qgemm_nt: weight size mismatch");
  ByteArena::Handle qa = ByteArena::scratch().acquire(n * m);
  const float scale_a = quant_scale(absmax(a, n * m));
  quantize(a, n * m, scale_a, qa.data());
  qgemm(n, k, m, QAView{qa.data(), m, 1}, QBView{bq.data.data(), 1, m},
        scale_a * bq.scale, c, k, acc);
}

void qgemm_nn(std::size_t n, std::size_t k, std::size_t m,
              const QuantizedTensor& aq, const float* b, float* c,
              Accumulate acc) {
  REPRO_REQUIRE(aq.size() == n * k, "qgemm_nn: weight size mismatch");
  ByteArena::Handle qb = ByteArena::scratch().acquire(k * m);
  const float scale_b = quant_scale(absmax(b, k * m));
  quantize(b, k * m, scale_b, qb.data());
  qgemm(n, m, k, QAView{aq.data.data(), k, 1}, QBView{qb.data(), m, 1},
        aq.scale * scale_b, c, m, acc);
}

QuantArenaStats quant_arena_stats() { return ByteArena::scratch().stats(); }

void quant_arena_trim() { ByteArena::scratch().trim(); }

}  // namespace repro::nn::kernels
