// Blocked, register-tiled GEMM kernels — the single compute core every
// matmul-shaped hot path (tensor matmul/matmul_bt/matmul_at, Linear,
// LoRA, Conv1d-as-im2col, attention scores/context) routes through.
//
// Design (see DESIGN.md "Inference performance"):
//   * The B operand is packed once per call into zero-padded column
//     panels of kNr floats (k-major inside a panel), so the micro-kernel
//     streams B contiguously regardless of the caller's layout (normal,
//     transposed, or strided). Packing buffers come from the scratch
//     TensorArena and are reused across calls.
//   * The inner micro-kernel accumulates a kMr x kNr register tile with
//     fully unrolled row/column loops. Column lanes are independent, so
//     the compiler can vectorize across them without reassociating any
//     per-element sum.
//   * REPRO_SIMD_WIDTH (compile-time, default 1 = portable scalar code)
//     widens the micro-kernel's column lanes with GCC/Clang vector
//     extensions. Any width produces bit-identical results: lanes never
//     share an accumulator, and each C element is always summed in
//     ascending-k order.
//
// Determinism contract: for a fixed kernel configuration (kMr/kNr,
// REPRO_SIMD_WIDTH, compiler flags), every output element is the
// ascending-k sum of its products, combined with the destination value
// in one final store (kOverwrite) or add (kAdd). That order is
// independent of the thread count and of how rows are chunked across
// the pool, so results are bit-identical at any REPRO_THREADS.
#pragma once

#include <cstddef>

namespace repro::nn::kernels {

#ifndef REPRO_SIMD_WIDTH
#define REPRO_SIMD_WIDTH 1
#endif

/// Register-tile height (rows of C per micro-kernel invocation).
inline constexpr std::size_t kMr = 4;
/// Register-tile width (columns of C per packed B panel).
inline constexpr std::size_t kNr = 16;

static_assert(REPRO_SIMD_WIDTH >= 1 && kNr % REPRO_SIMD_WIDTH == 0,
              "REPRO_SIMD_WIDTH must divide the kNr panel width");

/// Whether the kernel writes C (kOverwrite) or accumulates into it
/// (kAdd — used to fold gradient accumulation into the GEMM itself).
enum class Accumulate { kOverwrite, kAdd };

/// Strided view of the left operand: element (i, p) of the logical
/// [M, K] matrix lives at data[i * row_stride + p * k_stride]. Covers
/// normal (row_stride = lda, k_stride = 1) and transposed
/// (row_stride = 1, k_stride = lda) access without copying A.
struct AView {
  const float* data;
  std::size_t row_stride;
  std::size_t k_stride;
};

/// Strided view of the right operand: element (p, j) of the logical
/// [K, N] matrix lives at data[p * k_stride + j * col_stride]. The
/// kernel packs this into panels, so any stride combination runs at the
/// same inner-loop speed.
struct BView {
  const float* data;
  std::size_t k_stride;
  std::size_t col_stride;
};

/// C[M, N] (row-major, leading dimension ldc) = or += A[M, K] * B[K, N].
/// C must not alias A or B. Parallelizes over row blocks of C through
/// the global thread pool; see the determinism contract above.
void gemm(std::size_t m, std::size_t n, std::size_t k, AView a, BView b,
          float* c, std::size_t ldc, Accumulate acc);

// --- Shape adapters for the three tensor-level products. ---

/// C[n, m] = A[n, k] * B[k, m] (both row-major).
inline void gemm_nn(std::size_t n, std::size_t k, std::size_t m,
                    const float* a, const float* b, float* c,
                    Accumulate acc = Accumulate::kOverwrite) {
  gemm(n, m, k, AView{a, k, 1}, BView{b, m, 1}, c, m, acc);
}

/// C[n, k] = A[n, m] * B[k, m]^T (dot-product shape; both row-major).
inline void gemm_nt(std::size_t n, std::size_t m, std::size_t k,
                    const float* a, const float* b, float* c,
                    Accumulate acc = Accumulate::kOverwrite) {
  gemm(n, k, m, AView{a, m, 1}, BView{b, 1, m}, c, k, acc);
}

/// C[k, m] = A[n, k]^T * B[n, m] (outer-product shape; both row-major).
inline void gemm_tn(std::size_t n, std::size_t k, std::size_t m,
                    const float* a, const float* b, float* c,
                    Accumulate acc = Accumulate::kOverwrite) {
  gemm(k, m, n, AView{a, 1, k}, BView{b, m, 1}, c, m, acc);
}

}  // namespace repro::nn::kernels
