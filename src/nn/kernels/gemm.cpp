#include "nn/kernels/gemm.hpp"

#include <algorithm>
#include <cstring>

#include "common/parallel/parallel_for.hpp"
#include "nn/arena.hpp"

namespace repro::nn::kernels {
namespace {

constexpr std::size_t kW = REPRO_SIMD_WIDTH;
constexpr std::size_t kLanes = kNr / kW;

#if REPRO_SIMD_WIDTH > 1
typedef float Vec __attribute__((vector_size(kW * sizeof(float))));
#else
using Vec = float;
#endif

inline Vec load(const float* p) {
  Vec v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

inline void store(float* p, Vec v) { __builtin_memcpy(p, &v, sizeof(v)); }

/// Packs the `ncols`-wide panel of B starting at column j0 into
/// `panel` ([kc x kNr], k-major, columns beyond ncols zero-filled so the
/// micro-kernel always runs the full kNr width).
void pack_panel(std::size_t kc, std::size_t ncols, BView b, std::size_t j0,
                float* panel) {
  for (std::size_t p = 0; p < kc; ++p) {
    float* dst = panel + p * kNr;
    const float* src = b.data + p * b.k_stride + j0 * b.col_stride;
    std::size_t j = 0;
    if (b.col_stride == 1) {
      std::memcpy(dst, src, ncols * sizeof(float));
      j = ncols;
    } else {
      for (; j < ncols; ++j) dst[j] = src[j * b.col_stride];
    }
    for (; j < kNr; ++j) dst[j] = 0.0f;
  }
}

/// R x kNr register tile: C[i0..i0+R, j0..j0+ncols) (+)= A-rows * panel.
/// Every output element accumulates its k products in ascending-k order
/// from a zero register, independent of R, ncols, and chunking; the
/// result is combined with the destination in a single store or add.
template <std::size_t R>
void micro_kernel(std::size_t kc, const float* a, std::size_t ars,
                  std::size_t aks, const float* panel, float* c,
                  std::size_t ldc, std::size_t ncols, Accumulate mode) {
  Vec acc[R][kLanes]{};
  for (std::size_t p = 0; p < kc; ++p) {
    const float* brow = panel + p * kNr;
    Vec bv[kLanes];
    for (std::size_t l = 0; l < kLanes; ++l) bv[l] = load(brow + l * kW);
    for (std::size_t r = 0; r < R; ++r) {
      const float av = a[r * ars + p * aks];
      for (std::size_t l = 0; l < kLanes; ++l) acc[r][l] += av * bv[l];
    }
  }
  if (ncols == kNr) {
    for (std::size_t r = 0; r < R; ++r) {
      float* crow = c + r * ldc;
      if (mode == Accumulate::kAdd) {
        for (std::size_t l = 0; l < kLanes; ++l) {
          store(crow + l * kW, load(crow + l * kW) + acc[r][l]);
        }
      } else {
        for (std::size_t l = 0; l < kLanes; ++l) store(crow + l * kW, acc[r][l]);
      }
    }
    return;
  }
  // Tail panel: spill the tile and copy only the valid columns.
  float tile[R][kNr];
  for (std::size_t r = 0; r < R; ++r) {
    for (std::size_t l = 0; l < kLanes; ++l) store(&tile[r][l * kW], acc[r][l]);
  }
  for (std::size_t r = 0; r < R; ++r) {
    float* crow = c + r * ldc;
    if (mode == Accumulate::kAdd) {
      for (std::size_t j = 0; j < ncols; ++j) crow[j] += tile[r][j];
    } else {
      for (std::size_t j = 0; j < ncols; ++j) crow[j] = tile[r][j];
    }
  }
}

/// Computes rows [rb, re) of C against one packed panel.
void run_panel(std::size_t rb, std::size_t re, std::size_t kc, AView a,
               const float* panel, float* c, std::size_t ldc,
               std::size_t ncols, Accumulate mode) {
  std::size_t i = rb;
  for (; i + kMr <= re; i += kMr) {
    micro_kernel<kMr>(kc, a.data + i * a.row_stride, a.row_stride, a.k_stride,
                      panel, c + i * ldc, ldc, ncols, mode);
  }
  const float* arow = a.data + i * a.row_stride;
  float* crow = c + i * ldc;
  switch (re - i) {
    case 3:
      micro_kernel<3>(kc, arow, a.row_stride, a.k_stride, panel, crow, ldc,
                      ncols, mode);
      break;
    case 2:
      micro_kernel<2>(kc, arow, a.row_stride, a.k_stride, panel, crow, ldc,
                      ncols, mode);
      break;
    case 1:
      micro_kernel<1>(kc, arow, a.row_stride, a.k_stride, panel, crow, ldc,
                      ncols, mode);
      break;
    default:
      break;
  }
}

}  // namespace

void gemm(std::size_t m, std::size_t n, std::size_t k, AView a, BView b,
          float* c, std::size_t ldc, Accumulate acc) {
  if (m == 0 || n == 0) return;
  if (k == 0) {
    if (acc == Accumulate::kOverwrite) {
      for (std::size_t i = 0; i < m; ++i) {
        std::memset(c + i * ldc, 0, n * sizeof(float));
      }
    }
    return;
  }
  const std::size_t panels = (n + kNr - 1) / kNr;
  TensorArena::Handle pack = TensorArena::scratch().acquire(panels * kNr * k);
  float* packed = pack.data();
  // Small problems (or serial contexts) skip parallel_for entirely: the
  // std::function construction and chunk dispatch cost more than the
  // math for the network's many tiny GEMMs. The serial path is one
  // chunk [0, m) with the same per-element accumulation order, so
  // results stay bit-identical to the chunked path.
  const bool serial = m * n * k <= (std::size_t{1} << 16) ||
                      parallel::thread_count() == 1 || parallel::in_worker();
  if (serial) {
    for (std::size_t pi = 0; pi < panels; ++pi) {
      const std::size_t j0 = pi * kNr;
      pack_panel(k, std::min(kNr, n - j0), b, j0, packed + pi * kNr * k);
    }
    for (std::size_t pi = 0; pi < panels; ++pi) {
      const std::size_t j0 = pi * kNr;
      run_panel(0, m, k, a, packed + pi * kNr * k, c + j0, ldc,
                std::min(kNr, n - j0), acc);
    }
    return;
  }
  // Pack B once per call. Panels are disjoint, so parallel packing is
  // trivially deterministic.
  parallel::parallel_for(
      0, panels, parallel::grain_for(k * kNr),
      [&](std::size_t pb, std::size_t pe) {
        for (std::size_t pi = pb; pi < pe; ++pi) {
          const std::size_t j0 = pi * kNr;
          pack_panel(k, std::min(kNr, n - j0), b, j0, packed + pi * kNr * k);
        }
      });
  // Parallelize over disjoint row blocks only: each C element is
  // produced by exactly one chunk with full-k accumulation, so results
  // are bit-identical at any thread count. Rounding the grain to kMr
  // additionally pins row-tile grouping to absolute row indices.
  std::size_t grain = parallel::grain_for(n * k);
  grain = (grain + kMr - 1) / kMr * kMr;
  parallel::parallel_for(0, m, grain, [&](std::size_t rb, std::size_t re) {
    // Outer loop over panels keeps one packed panel hot in cache while
    // the chunk's A rows stream past it.
    for (std::size_t pi = 0; pi < panels; ++pi) {
      const std::size_t j0 = pi * kNr;
      run_panel(rb, re, k, a, packed + pi * kNr * k, c + j0, ldc,
                std::min(kNr, n - j0), acc);
    }
  });
}

}  // namespace repro::nn::kernels
