// LoRA (Hu et al. 2021): low-rank adaptation of a dense layer.
//
// y = W x + b + (alpha / r) * B (A x),  A: [r, in] (gaussian init),
// B: [out, r] (zero init, so the adapter starts as the identity delta).
// During fine-tuning the wrapped base layer is frozen and only A/B train —
// the paper uses LoRA to extend class coverage of the pre-trained base
// model (§3.1). `merged_weight()` folds the adapter into a dense matrix
// for inference-cost analysis.
#pragma once

#include <memory>

#include "nn/linear.hpp"

namespace repro::nn {

class LoraLinear : public Module {
 public:
  /// Wraps (and takes ownership of) `base`. rank == 0 means a pass-through
  /// wrapper with no adapter (used by ablations).
  LoraLinear(std::unique_ptr<Linear> base, std::size_t rank, float alpha,
             Rng& rng, const std::string& name = "lora");

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;

  /// Freezes the base layer; adapters stay trainable.
  void freeze_base() noexcept { base_->set_trainable(false); }
  void unfreeze_base() noexcept { base_->set_trainable(true); }

  std::size_t rank() const noexcept { return rank_; }
  Linear& base() noexcept { return *base_; }

  /// W + (alpha/r) * B A, shape [out, in].
  Tensor merged_weight() const;

  /// Quantized route: only the dense base runs int8; the rank-r adapter
  /// matmuls are tiny and stay fp32, so a fine-tuned adapter keeps full
  /// precision on top of the quantized base.
  void set_precision(Precision p) override { base_->set_precision(p); }
  void refresh_quantized() override { base_->refresh_quantized(); }
  void invalidate_quantized() override { base_->invalidate_quantized(); }

 private:
  std::unique_ptr<Linear> base_;
  std::size_t rank_;
  float scaling_;
  Parameter a_;  // [r, in]
  Parameter b_;  // [out, r]
  Tensor input_;
  Tensor ax_;  // cached A x^T intermediate, [N, r]
};

}  // namespace repro::nn
