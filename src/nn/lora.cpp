#include "nn/lora.hpp"

#include <cmath>

#include "nn/arena.hpp"
#include "nn/init.hpp"
#include "nn/kernels/gemm.hpp"

namespace repro::nn {

LoraLinear::LoraLinear(std::unique_ptr<Linear> base, std::size_t rank,
                       float alpha, Rng& rng, const std::string& name)
    : base_(std::move(base)),
      rank_(rank),
      scaling_(rank > 0 ? alpha / static_cast<float>(rank) : 0.0f),
      a_(name + ".A", Tensor({rank, base_->in_features()})),
      b_(name + ".B", Tensor({base_->out_features(), rank})) {
  if (rank_ > 0) {
    // A ~ N(0, 1/in); B = 0 so the initial adapter contributes nothing.
    normal_init(a_.value,
                1.0f / std::sqrt(static_cast<float>(base_->in_features())),
                rng);
    b_.value.fill(0.0f);
  }
}

Tensor LoraLinear::forward(const Tensor& input) {
  input_ = input;
  Tensor out = base_->forward(input);
  if (rank_ > 0) {
    const std::size_t n = input.dim(0);
    const std::size_t out_f = base_->out_features();
    if (ax_.shape() != std::vector<std::size_t>{n, rank_}) {
      ax_ = Tensor({n, rank_});
    }
    kernels::gemm_nt(n, base_->in_features(), rank_, input.data(),
                     a_.value.data(), ax_.data());
    // delta = (Ax) B^T into arena scratch, folded into out with scaling.
    TensorArena::Handle delta = TensorArena::scratch().acquire(n * out_f);
    kernels::gemm_nt(n, rank_, out_f, ax_.data(), b_.value.data(),
                     delta.data());
    float* o = out.data();
    const float* d = delta.data();
    for (std::size_t i = 0; i < n * out_f; ++i) o[i] += scaling_ * d[i];
  }
  return out;
}

Tensor LoraLinear::backward(const Tensor& grad_output) {
  Tensor grad_input = base_->backward(grad_output);
  if (rank_ > 0) {
    // delta = s * B (A x); dB += s * g^T (Ax); dAx = s * g B; dA += dAx^T x.
    const std::size_t n = grad_output.dim(0);
    const std::size_t in_f = base_->in_features();
    const std::size_t out_f = base_->out_features();
    TensorArena& arena = TensorArena::scratch();
    TensorArena::Handle gs = arena.acquire(n * out_f);
    const float* g = grad_output.data();
    for (std::size_t i = 0; i < n * out_f; ++i) gs.data()[i] = scaling_ * g[i];
    kernels::gemm_tn(n, out_f, rank_, gs.data(), ax_.data(), b_.grad.data(),
                     kernels::Accumulate::kAdd);
    TensorArena::Handle gax = arena.acquire(n * rank_);
    kernels::gemm_nn(n, out_f, rank_, gs.data(), b_.value.data(), gax.data());
    kernels::gemm_tn(n, rank_, in_f, gax.data(), input_.data(), a_.grad.data(),
                     kernels::Accumulate::kAdd);
    kernels::gemm_nn(n, rank_, in_f, gax.data(), a_.value.data(),
                     grad_input.data(), kernels::Accumulate::kAdd);
  }
  return grad_input;
}

std::vector<Parameter*> LoraLinear::parameters() {
  auto params = base_->parameters();
  if (rank_ > 0) {
    params.push_back(&a_);
    params.push_back(&b_);
  }
  return params;
}

Tensor LoraLinear::merged_weight() const {
  Tensor merged = base_->weight().value;
  if (rank_ > 0) {
    Tensor delta = matmul(b_.value, a_.value);  // [out, in]
    merged.add_scaled(delta, scaling_);
  }
  return merged;
}

}  // namespace repro::nn
