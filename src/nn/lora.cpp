#include "nn/lora.hpp"

#include <cmath>

#include "nn/init.hpp"

namespace repro::nn {

LoraLinear::LoraLinear(std::unique_ptr<Linear> base, std::size_t rank,
                       float alpha, Rng& rng, const std::string& name)
    : base_(std::move(base)),
      rank_(rank),
      scaling_(rank > 0 ? alpha / static_cast<float>(rank) : 0.0f),
      a_(name + ".A", Tensor({rank, base_->in_features()})),
      b_(name + ".B", Tensor({base_->out_features(), rank})) {
  if (rank_ > 0) {
    // A ~ N(0, 1/in); B = 0 so the initial adapter contributes nothing.
    normal_init(a_.value,
                1.0f / std::sqrt(static_cast<float>(base_->in_features())),
                rng);
    b_.value.fill(0.0f);
  }
}

Tensor LoraLinear::forward(const Tensor& input) {
  input_ = input;
  Tensor out = base_->forward(input);
  if (rank_ > 0) {
    ax_ = matmul_bt(input, a_.value);        // [N, r]
    Tensor delta = matmul_bt(ax_, b_.value);  // [N, out]
    out.add_scaled(delta, scaling_);
  }
  return out;
}

Tensor LoraLinear::backward(const Tensor& grad_output) {
  Tensor grad_input = base_->backward(grad_output);
  if (rank_ > 0) {
    // delta = s * B (A x); dB += s * g^T (Ax); dAx = s * g B; dA += dAx^T x.
    Tensor g_scaled = grad_output;
    g_scaled.scale(scaling_);
    b_.grad.add(matmul_at(g_scaled, ax_));
    Tensor grad_ax = matmul(g_scaled, b_.value);  // [N, r]
    a_.grad.add(matmul_at(grad_ax, input_));
    grad_input.add(matmul(grad_ax, a_.value));
  }
  return grad_input;
}

std::vector<Parameter*> LoraLinear::parameters() {
  auto params = base_->parameters();
  if (rank_ > 0) {
    params.push_back(&a_);
    params.push_back(&b_);
  }
  return params;
}

Tensor LoraLinear::merged_weight() const {
  Tensor merged = base_->weight().value;
  if (rank_ > 0) {
    Tensor delta = matmul(b_.value, a_.value);  // [out, in]
    merged.add_scaled(delta, scaling_);
  }
  return merged;
}

}  // namespace repro::nn
