#include "nn/optimizer.hpp"

#include <cmath>

namespace repro::nn {

Adam::Adam(std::vector<Parameter*> params)
    : Adam(std::move(params), Config{}) {}

Adam::Adam(std::vector<Parameter*> params, Config config)
    : params_(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Parameter* p : params_) {
    m_.push_back(Tensor::zeros(p->value.shape()));
    v_.push_back(Tensor::zeros(p->value.shape()));
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(config_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(config_.beta2, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    if (!p.trainable) continue;
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (std::size_t j = 0; j < p.value.size(); ++j) {
      const float g = p.grad[j];
      m[j] = config_.beta1 * m[j] + (1.0f - config_.beta1) * g;
      v[j] = config_.beta2 * v[j] + (1.0f - config_.beta2) * g * g;
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      p.value[j] -= config_.lr *
                    (mhat / (std::sqrt(vhat) + config_.eps) +
                     config_.weight_decay * p.value[j]);
    }
  }
}

void Adam::reset_state() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    m_[i].fill(0.0f);
    v_[i].fill(0.0f);
  }
  t_ = 0;
}

void Sgd::step() {
  for (Parameter* p : params_) {
    if (!p->trainable) continue;
    for (std::size_t j = 0; j < p->value.size(); ++j) {
      p->value[j] -= lr_ * p->grad[j];
    }
  }
}

float clip_grad_norm(const std::vector<Parameter*>& params, float max_norm) {
  double total = 0.0;
  for (const Parameter* p : params) {
    if (!p->trainable) continue;
    for (std::size_t j = 0; j < p->grad.size(); ++j) {
      total += static_cast<double>(p->grad[j]) * p->grad[j];
    }
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (Parameter* p : params) {
      if (!p->trainable) continue;
      p->grad.scale(scale);
    }
  }
  return norm;
}

}  // namespace repro::nn
