// Optimizers. Adam (Kingma & Ba) with optional decoupled weight decay,
// plus global-norm gradient clipping. Parameters flagged non-trainable
// (frozen base weights during LoRA fine-tuning) are skipped entirely.
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace repro::nn {

class Adam {
 public:
  struct Config {
    float lr = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float weight_decay = 0.0f;  // decoupled (AdamW-style)
  };

  explicit Adam(std::vector<Parameter*> params);
  Adam(std::vector<Parameter*> params, Config config);

  /// Applies one update from the accumulated gradients, then the caller
  /// typically zero-grads.
  void step();

  /// Resets moment estimates (e.g. when switching training phases).
  void reset_state();

  void set_lr(float lr) noexcept { config_.lr = lr; }
  float lr() const noexcept { return config_.lr; }
  const std::vector<Parameter*>& params() const noexcept { return params_; }

 private:
  std::vector<Parameter*> params_;
  Config config_;
  std::vector<Tensor> m_, v_;
  std::size_t t_ = 0;
};

/// Plain SGD (used by tests as a reference optimizer).
class Sgd {
 public:
  Sgd(std::vector<Parameter*> params, float lr) : params_(std::move(params)), lr_(lr) {}
  void step();

 private:
  std::vector<Parameter*> params_;
  float lr_;
};

/// Scales all gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
float clip_grad_norm(const std::vector<Parameter*>& params, float max_norm);

}  // namespace repro::nn
