// 1-D convolution over the packet axis of a flow image.
// Input [N, Cin, L], weight [Cout, Cin, K], zero padding, configurable
// stride (stride 2 = U-Net downsampling). Output length is
// (L + 2*pad - K)/stride + 1.
#pragma once

#include "common/rng.hpp"
#include "nn/kernels/qgemm.hpp"
#include "nn/module.hpp"

namespace repro::nn {

class Conv1d : public Module {
 public:
  Conv1d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, Rng& rng, std::size_t stride = 1,
         std::size_t padding = SIZE_MAX /* = kernel/2 ("same") */,
         const std::string& name = "conv1d");

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;

  std::size_t out_length(std::size_t in_length) const noexcept {
    return (in_length + 2 * padding_ - kernel_) / stride_ + 1;
  }

  Parameter& weight() noexcept { return weight_; }
  Parameter& bias() noexcept { return bias_; }
  void set_trainable(bool trainable) noexcept;

  /// Sets all weights/bias to zero — ControlNet's "zero convolution"
  /// fusion layers start as identity-of-nothing.
  void zero_init() noexcept;

  /// Int8 forward route: the im2col GEMM runs through kernels::qgemm_nn
  /// against an absmax-calibrated int8 weight cache. Backward stays fp32.
  void set_precision(Precision p) override { precision_ = p; }
  void refresh_quantized() override;
  void invalidate_quantized() override;

 private:
  std::size_t cin_, cout_, kernel_, stride_, padding_;
  Parameter weight_;  // [cout, cin, k]
  Parameter bias_;    // [cout]
  Tensor input_;
  Precision precision_ = Precision::kFp32;
  kernels::QuantizedTensor qweight_;  // [cout, cin*k], valid iff quant_valid_
  bool quant_valid_ = false;
};

}  // namespace repro::nn
