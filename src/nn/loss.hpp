// Loss functions. Each returns the scalar loss and writes the gradient
// w.r.t. the prediction (mean-reduced over all elements).
#pragma once

#include "nn/tensor.hpp"

namespace repro::nn {

/// Mean squared error; grad = 2 (pred - target) / N.
float mse_loss(const Tensor& pred, const Tensor& target, Tensor& grad);

/// Binary cross-entropy on logits (numerically stable); targets in {0,1}.
float bce_with_logits_loss(const Tensor& logits, const Tensor& targets,
                           Tensor& grad);

/// Mean absolute error; grad = sign(pred - target) / N.
float l1_loss(const Tensor& pred, const Tensor& target, Tensor& grad);

}  // namespace repro::nn
