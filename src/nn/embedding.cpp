#include "nn/embedding.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/init.hpp"

namespace repro::nn {

Embedding::Embedding(std::size_t vocab, std::size_t dim, Rng& rng,
                     const std::string& name)
    : vocab_(vocab), dim_(dim), table_(name, Tensor({vocab, dim})) {
  normal_init(table_.value, 0.02f, rng);
}

Tensor Embedding::forward(const Tensor& ids) {
  const std::size_t n = ids.size();
  last_ids_.resize(n);
  Tensor out({n, dim_});
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<std::size_t>(ids[i]);
    if (id >= vocab_) {
      throw std::out_of_range("Embedding::forward: id out of range");
    }
    last_ids_[i] = id;
    const float* row = table_.value.data() + id * dim_;
    float* orow = out.data() + i * dim_;
    for (std::size_t j = 0; j < dim_; ++j) orow[j] = row[j];
  }
  return out;
}

Tensor Embedding::backward(const Tensor& grad_output) {
  grad_output.require_shape({last_ids_.size(), dim_}, "Embedding::backward");
  for (std::size_t i = 0; i < last_ids_.size(); ++i) {
    float* grow = table_.grad.data() + last_ids_[i] * dim_;
    const float* g = grad_output.data() + i * dim_;
    for (std::size_t j = 0; j < dim_; ++j) grow[j] += g[j];
  }
  // Ids are not differentiable; return an empty gradient.
  return Tensor({last_ids_.size()});
}

std::vector<Parameter*> Embedding::parameters() { return {&table_}; }

Tensor sinusoidal_embedding(const std::vector<float>& timesteps,
                            std::size_t dim) {
  if (dim % 2 != 0) {
    throw std::invalid_argument("sinusoidal_embedding: dim must be even");
  }
  const std::size_t n = timesteps.size();
  const std::size_t half = dim / 2;
  Tensor out({n, dim});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < half; ++j) {
      const double freq =
          std::exp(-std::log(10000.0) * static_cast<double>(j) /
                   static_cast<double>(half));
      const double angle = static_cast<double>(timesteps[i]) * freq;
      out[i * dim + 2 * j] = static_cast<float>(std::sin(angle));
      out[i * dim + 2 * j + 1] = static_cast<float>(std::cos(angle));
    }
  }
  return out;
}

}  // namespace repro::nn
