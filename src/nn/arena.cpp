#include "nn/arena.hpp"

#include <algorithm>

#include "common/telemetry/metrics.hpp"

namespace repro::nn {

void TensorArena::Handle::release() {
  if (arena_ != nullptr && buffer_ != nullptr) {
    arena_->release_buffer(buffer_);
  }
  arena_ = nullptr;
  buffer_ = nullptr;
  size_ = 0;
}

TensorArena::Handle TensorArena::acquire(std::size_t size) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Best fit: the smallest free buffer that is large enough. Keeps big
    // buffers available for big requests instead of burning them on
    // small ones.
    std::size_t best = free_.size();
    for (std::size_t i = 0; i < free_.size(); ++i) {
      if (free_[i]->capacity() < size) continue;
      if (best == free_.size() ||
          free_[i]->capacity() < free_[best]->capacity()) {
        best = i;
      }
    }
    if (best != free_.size()) {
      std::unique_ptr<std::vector<float>> buffer = std::move(free_[best]);
      free_.erase(free_.begin() +
                  static_cast<std::ptrdiff_t>(best));
      ++reuses_;
      telemetry::count("nn.arena.reuse");
      // resize() within capacity never reallocates; new elements are
      // value-initialized but the contract already says "uninitialized".
      buffer->resize(size);
      return Handle(this, buffer.release(), size);
    }
    ++allocs_;
  }
  telemetry::count("nn.arena.alloc");
  auto buffer = std::make_unique<std::vector<float>>(size);
  return Handle(this, buffer.release(), size);
}

void TensorArena::release_buffer(std::vector<float>* buffer) {
  std::unique_ptr<std::vector<float>> owned(buffer);
  std::lock_guard<std::mutex> lock(mutex_);
  free_.push_back(std::move(owned));
}

TensorArena::Stats TensorArena::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.allocs = allocs_;
  s.reuses = reuses_;
  s.free_buffers = free_.size();
  return s;
}

void TensorArena::trim() {
  std::lock_guard<std::mutex> lock(mutex_);
  free_.clear();
}

TensorArena& TensorArena::scratch() {
  static TensorArena arena;
  return arena;
}

}  // namespace repro::nn
