#include "nn/loss.hpp"

#include <cmath>

namespace repro::nn {

float mse_loss(const Tensor& pred, const Tensor& target, Tensor& grad) {
  pred.require_shape(target.shape(), "mse_loss");
  grad = Tensor(pred.shape());
  const auto n = static_cast<float>(pred.size());
  double loss = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const float d = pred[i] - target[i];
    loss += static_cast<double>(d) * d;
    grad[i] = 2.0f * d / n;
  }
  return static_cast<float>(loss / n);
}

float bce_with_logits_loss(const Tensor& logits, const Tensor& targets,
                           Tensor& grad) {
  logits.require_shape(targets.shape(), "bce_with_logits_loss");
  grad = Tensor(logits.shape());
  const auto n = static_cast<float>(logits.size());
  double loss = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const float x = logits[i];
    const float t = targets[i];
    // log(1 + exp(-|x|)) + max(x, 0) - x t  (stable form)
    loss += std::log1p(std::exp(-std::abs(x))) + std::max(x, 0.0f) - x * t;
    const float sigma = 1.0f / (1.0f + std::exp(-x));
    grad[i] = (sigma - t) / n;
  }
  return static_cast<float>(loss / n);
}

float l1_loss(const Tensor& pred, const Tensor& target, Tensor& grad) {
  pred.require_shape(target.shape(), "l1_loss");
  grad = Tensor(pred.shape());
  const auto n = static_cast<float>(pred.size());
  double loss = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const float d = pred[i] - target[i];
    loss += std::abs(d);
    grad[i] = (d > 0.0f ? 1.0f : (d < 0.0f ? -1.0f : 0.0f)) / n;
  }
  return static_cast<float>(loss / n);
}

}  // namespace repro::nn
