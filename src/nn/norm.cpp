#include "nn/norm.hpp"

#include <cmath>
#include <stdexcept>

namespace repro::nn {

GroupNorm::GroupNorm(std::size_t channels, std::size_t groups,
                     const std::string& name, float eps)
    : channels_(channels),
      groups_(groups),
      eps_(eps),
      gamma_(name + ".gamma", Tensor::full({channels}, 1.0f)),
      beta_(name + ".beta", Tensor::zeros({channels})) {
  if (groups == 0 || channels % groups != 0) {
    throw std::invalid_argument("GroupNorm: channels must divide by groups");
  }
}

Tensor GroupNorm::forward(const Tensor& input) {
  if (input.rank() != 3 || input.dim(1) != channels_) {
    throw std::invalid_argument("GroupNorm::forward: bad input " +
                                input.shape_string());
  }
  input_ = input;
  const std::size_t n = input.dim(0), l = input.dim(2);
  const std::size_t cpg = channels_ / groups_;
  const std::size_t group_size = cpg * l;
  normalized_ = Tensor(input.shape());
  inv_std_.assign(n * groups_, 0.0f);
  Tensor out(input.shape());
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t g = 0; g < groups_; ++g) {
      const std::size_t c0 = g * cpg;
      double sum = 0.0, sq = 0.0;
      for (std::size_t c = c0; c < c0 + cpg; ++c) {
        const float* row = input.data() + (b * channels_ + c) * l;
        for (std::size_t t = 0; t < l; ++t) {
          sum += row[t];
          sq += static_cast<double>(row[t]) * row[t];
        }
      }
      const double mean = sum / static_cast<double>(group_size);
      const double var = sq / static_cast<double>(group_size) - mean * mean;
      const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
      inv_std_[b * groups_ + g] = inv_std;
      for (std::size_t c = c0; c < c0 + cpg; ++c) {
        const float* row = input.data() + (b * channels_ + c) * l;
        float* nrow = normalized_.data() + (b * channels_ + c) * l;
        float* orow = out.data() + (b * channels_ + c) * l;
        for (std::size_t t = 0; t < l; ++t) {
          const float xhat = (row[t] - static_cast<float>(mean)) * inv_std;
          nrow[t] = xhat;
          orow[t] = gamma_.value[c] * xhat + beta_.value[c];
        }
      }
    }
  }
  return out;
}

Tensor GroupNorm::backward(const Tensor& grad_output) {
  grad_output.require_shape(input_.shape(), "GroupNorm::backward");
  const std::size_t n = input_.dim(0), l = input_.dim(2);
  const std::size_t cpg = channels_ / groups_;
  const auto m = static_cast<double>(cpg * l);
  Tensor grad_input(input_.shape());
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t g = 0; g < groups_; ++g) {
      const std::size_t c0 = g * cpg;
      const float inv_std = inv_std_[b * groups_ + g];
      // dgamma/dbeta and the two reduction terms of the group-norm grad.
      double sum_gy = 0.0, sum_gy_xhat = 0.0;
      for (std::size_t c = c0; c < c0 + cpg; ++c) {
        const float* grow = grad_output.data() + (b * channels_ + c) * l;
        const float* nrow = normalized_.data() + (b * channels_ + c) * l;
        double dg = 0.0, db = 0.0;
        for (std::size_t t = 0; t < l; ++t) {
          dg += static_cast<double>(grow[t]) * nrow[t];
          db += grow[t];
          const double gy = static_cast<double>(grow[t]) * gamma_.value[c];
          sum_gy += gy;
          sum_gy_xhat += gy * nrow[t];
        }
        gamma_.grad[c] += static_cast<float>(dg);
        beta_.grad[c] += static_cast<float>(db);
      }
      for (std::size_t c = c0; c < c0 + cpg; ++c) {
        const float* grow = grad_output.data() + (b * channels_ + c) * l;
        const float* nrow = normalized_.data() + (b * channels_ + c) * l;
        float* irow = grad_input.data() + (b * channels_ + c) * l;
        for (std::size_t t = 0; t < l; ++t) {
          const double gy = static_cast<double>(grow[t]) * gamma_.value[c];
          irow[t] = static_cast<float>(
              inv_std * (gy - sum_gy / m - nrow[t] * sum_gy_xhat / m));
        }
      }
    }
  }
  return grad_input;
}

std::vector<Parameter*> GroupNorm::parameters() { return {&gamma_, &beta_}; }

void GroupNorm::set_trainable(bool trainable) noexcept {
  gamma_.trainable = trainable;
  beta_.trainable = trainable;
}

LayerNorm::LayerNorm(std::size_t dim, const std::string& name, float eps)
    : dim_(dim),
      eps_(eps),
      gamma_(name + ".gamma", Tensor::full({dim}, 1.0f)),
      beta_(name + ".beta", Tensor::zeros({dim})) {}

Tensor LayerNorm::forward(const Tensor& input) {
  if (input.rank() < 1 || input.shape().back() != dim_) {
    throw std::invalid_argument("LayerNorm::forward: bad input " +
                                input.shape_string());
  }
  in_shape_ = input.shape();
  const std::size_t rows = input.size() / dim_;
  normalized_ = Tensor(input.shape());
  inv_std_.assign(rows, 0.0f);
  Tensor out(input.shape());
  for (std::size_t r = 0; r < rows; ++r) {
    const float* x = input.data() + r * dim_;
    float* nrow = normalized_.data() + r * dim_;
    float* orow = out.data() + r * dim_;
    double sum = 0.0, sq = 0.0;
    for (std::size_t j = 0; j < dim_; ++j) {
      sum += x[j];
      sq += static_cast<double>(x[j]) * x[j];
    }
    const double mean = sum / static_cast<double>(dim_);
    const double var = sq / static_cast<double>(dim_) - mean * mean;
    const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
    inv_std_[r] = inv_std;
    for (std::size_t j = 0; j < dim_; ++j) {
      const float xhat = (x[j] - static_cast<float>(mean)) * inv_std;
      nrow[j] = xhat;
      orow[j] = gamma_.value[j] * xhat + beta_.value[j];
    }
  }
  return out;
}

Tensor LayerNorm::backward(const Tensor& grad_output) {
  grad_output.require_shape(in_shape_, "LayerNorm::backward");
  const std::size_t rows = grad_output.size() / dim_;
  const auto m = static_cast<double>(dim_);
  Tensor grad_input(in_shape_);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* grow = grad_output.data() + r * dim_;
    const float* nrow = normalized_.data() + r * dim_;
    float* irow = grad_input.data() + r * dim_;
    double sum_gy = 0.0, sum_gy_xhat = 0.0;
    for (std::size_t j = 0; j < dim_; ++j) {
      gamma_.grad[j] += grow[j] * nrow[j];
      beta_.grad[j] += grow[j];
      const double gy = static_cast<double>(grow[j]) * gamma_.value[j];
      sum_gy += gy;
      sum_gy_xhat += gy * nrow[j];
    }
    for (std::size_t j = 0; j < dim_; ++j) {
      const double gy = static_cast<double>(grow[j]) * gamma_.value[j];
      irow[j] = static_cast<float>(
          inv_std_[r] * (gy - sum_gy / m - nrow[j] * sum_gy_xhat / m));
    }
  }
  return grad_input;
}

std::vector<Parameter*> LayerNorm::parameters() { return {&gamma_, &beta_}; }

void LayerNorm::set_trainable(bool trainable) noexcept {
  gamma_.trainable = trainable;
  beta_.trainable = trainable;
}

}  // namespace repro::nn
