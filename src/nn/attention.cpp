#include "nn/attention.hpp"

#include <cmath>

#include "common/parallel/parallel_for.hpp"
#include "common/telemetry/trace.hpp"
#include "nn/arena.hpp"
#include "nn/kernels/gemm.hpp"
#include "nn/reshape.hpp"

namespace repro::nn {

SelfAttention1d::SelfAttention1d(std::size_t channels, Rng& rng,
                                 const std::string& name)
    : SelfAttention1d(
          channels, std::make_unique<Linear>(channels, channels, rng, true, name + ".q"),
          std::make_unique<Linear>(channels, channels, rng, true, name + ".k"),
          std::make_unique<Linear>(channels, channels, rng, true, name + ".v"),
          std::make_unique<Linear>(channels, channels, rng, true, name + ".o"),
          name) {}

SelfAttention1d::SelfAttention1d(std::size_t channels,
                                 std::unique_ptr<Module> proj_q,
                                 std::unique_ptr<Module> proj_k,
                                 std::unique_ptr<Module> proj_v,
                                 std::unique_ptr<Module> proj_out,
                                 const std::string& name)
    : channels_(channels),
      norm_(channels, name + ".norm"),
      q_(std::move(proj_q)),
      k_(std::move(proj_k)),
      v_(std::move(proj_v)),
      o_(std::move(proj_out)) {}

Tensor SelfAttention1d::forward(const Tensor& input) {
  REPRO_SPAN("nn.attention.forward");
  n_ = input.dim(0);
  l_ = input.dim(2);
  // Pre-norm over channels, position-major. rows_ is a member so the
  // staging buffer survives between forward calls.
  ncl_to_nlc_into(input, rows_);             // [N*L, C]
  Tensor normed = norm_.forward(rows_);
  q_rows_ = q_->forward(normed);
  k_rows_ = k_->forward(normed);
  v_rows_ = v_->forward(normed);

  const float scale = 1.0f / std::sqrt(static_cast<float>(channels_));
  attn_ = Tensor({n_, l_, l_});
  Tensor ctx({n_ * l_, channels_});
  // One batch element per work item: scores and context are GEMMs over
  // that element's [L, C] slices (run inline on the worker with fixed
  // accumulation order), softmax is a scalar pass between them. No
  // zero-skip on attention weights: a == 0 must still propagate
  // 0 * inf = NaN from a poisoned value row.
  parallel::parallel_for(
      0, n_, parallel::grain_for(l_ * l_ * channels_),
      [&](std::size_t bb, std::size_t be) {
        for (std::size_t b = bb; b < be; ++b) {
          const float* qb = q_rows_.data() + b * l_ * channels_;
          const float* kb = k_rows_.data() + b * l_ * channels_;
          const float* vb = v_rows_.data() + b * l_ * channels_;
          float* ab = attn_.data() + b * l_ * l_;
          kernels::gemm_nt(l_, channels_, l_, qb, kb, ab);
          for (std::size_t i = 0; i < l_; ++i) {
            float* arow = ab + i * l_;
            float row_max = -1e30f;
            for (std::size_t j = 0; j < l_; ++j) {
              arow[j] *= scale;
              row_max = std::max(row_max, arow[j]);
            }
            double denom = 0.0;
            for (std::size_t j = 0; j < l_; ++j) {
              const float e = std::exp(arow[j] - row_max);
              arow[j] = e;
              denom += e;
            }
            for (std::size_t j = 0; j < l_; ++j) {
              arow[j] = static_cast<float>(arow[j] / denom);
            }
          }
          kernels::gemm_nn(l_, l_, channels_, ab, vb,
                           ctx.data() + b * l_ * channels_);
        }
      });
  Tensor out_rows = o_->forward(ctx);
  // Residual connection.
  out_rows.add(rows_);
  return nlc_to_ncl(out_rows, n_, l_);
}

Tensor SelfAttention1d::backward(const Tensor& grad_output) {
  REPRO_SPAN("nn.attention.backward");
  Tensor grad_rows = ncl_to_nlc(grad_output);  // [N*L, C]
  // Residual: gradient flows both into o_ path and directly to input rows.
  Tensor grad_ctx = o_->backward(grad_rows);   // [N*L, C]

  Tensor grad_q(q_rows_.shape());
  Tensor grad_k(k_rows_.shape());
  Tensor grad_v(v_rows_.shape());
  const float scale = 1.0f / std::sqrt(static_cast<float>(channels_));
  // grad_k/grad_v rows are accumulated across every query row of the
  // same batch element, so the batch element is the finest race-free
  // unit here; the serial i-ascending accumulation order is kept.
  parallel::parallel_for(
      0, n_, parallel::grain_for(l_ * l_ * channels_),
      [&](std::size_t bb, std::size_t be) {
        // One scratch row reused across every (batch, query) pair of the
        // chunk instead of an allocation per query row.
        TensorArena::Handle dA_buf = TensorArena::scratch().acquire(l_);
        float* dA = dA_buf.data();
        for (std::size_t b = bb; b < be; ++b) {
          const float* qb = q_rows_.data() + b * l_ * channels_;
          const float* kb = k_rows_.data() + b * l_ * channels_;
          const float* vb = v_rows_.data() + b * l_ * channels_;
          const float* ab = attn_.data() + b * l_ * l_;
          float* gqb = grad_q.data() + b * l_ * channels_;
          float* gkb = grad_k.data() + b * l_ * channels_;
          float* gvb = grad_v.data() + b * l_ * channels_;
          for (std::size_t i = 0; i < l_; ++i) {
            const float* gc = grad_ctx.data() + (b * l_ + i) * channels_;
            // dA_ij = gc . v_j ; dv_j += A_ij * gc
            for (std::size_t j = 0; j < l_; ++j) {
              const float a = ab[i * l_ + j];
              const float* vrow = vb + j * channels_;
              float* gvrow = gvb + j * channels_;
              double d = 0.0;
              for (std::size_t c = 0; c < channels_; ++c) {
                d += static_cast<double>(gc[c]) * vrow[c];
                gvrow[c] += a * gc[c];
              }
              dA[j] = static_cast<float>(d);
            }
            // Softmax backward: dS_j = A_j * (dA_j - sum_k dA_k A_k).
            double dot = 0.0;
            for (std::size_t j = 0; j < l_; ++j) {
              dot += static_cast<double>(dA[j]) * ab[i * l_ + j];
            }
            for (std::size_t j = 0; j < l_; ++j) {
              const float dS =
                  ab[i * l_ + j] * (dA[j] - static_cast<float>(dot));
              const float g = dS * scale;
              // S_ij = scale * q_i . k_j
              const float* krow = kb + j * channels_;
              const float* qrow = qb + i * channels_;
              float* gqrow = gqb + i * channels_;
              float* gkrow = gkb + j * channels_;
              for (std::size_t c = 0; c < channels_; ++c) {
                gqrow[c] += g * krow[c];
                gkrow[c] += g * qrow[c];
              }
            }
          }
        }
      });

  Tensor grad_normed = q_->backward(grad_q);
  grad_normed.add(k_->backward(grad_k));
  grad_normed.add(v_->backward(grad_v));
  Tensor grad_input_rows = norm_.backward(grad_normed);
  grad_input_rows.add(grad_rows);  // residual path
  return nlc_to_ncl(grad_input_rows, n_, l_);
}

std::vector<Parameter*> SelfAttention1d::parameters() {
  std::vector<Parameter*> params = norm_.parameters();
  for (Module* m : {q_.get(), k_.get(), v_.get(), o_.get()}) {
    for (Parameter* p : m->parameters()) params.push_back(p);
  }
  return params;
}

}  // namespace repro::nn
