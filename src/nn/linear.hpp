// Fully-connected layer: y = x W^T + b, x: [N, in], W: [out, in].
#pragma once

#include "common/rng.hpp"
#include "nn/kernels/qgemm.hpp"
#include "nn/module.hpp"

namespace repro::nn {

class Linear : public Module {
 public:
  Linear(std::size_t in_features, std::size_t out_features, Rng& rng,
         bool bias = true, const std::string& name = "linear");

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;

  std::size_t in_features() const noexcept { return in_; }
  std::size_t out_features() const noexcept { return out_; }

  Parameter& weight() noexcept { return weight_; }
  Parameter& bias() noexcept { return bias_; }
  bool has_bias() const noexcept { return has_bias_; }

  /// Freeze/unfreeze the base weights (LoRA fine-tuning).
  void set_trainable(bool trainable) noexcept;

  /// Int8 forward route: x W^T runs through kernels::qgemm_nt against an
  /// absmax-calibrated int8 weight cache. Backward stays fp32.
  void set_precision(Precision p) override { precision_ = p; }
  void refresh_quantized() override;
  void invalidate_quantized() override;

 private:
  std::size_t in_, out_;
  bool has_bias_;
  Parameter weight_;  // [out, in]
  Parameter bias_;    // [out]
  Tensor input_;      // cached for backward
  Precision precision_ = Precision::kFp32;
  kernels::QuantizedTensor qweight_;  // valid iff quant_valid_
  bool quant_valid_ = false;
};

}  // namespace repro::nn
