// Normalization layers.
//
// GroupNorm operates on [N, C, L] (the U-Net's convolutional blocks);
// LayerNorm operates on the last axis of [N, D] or [N, L, D] (attention
// blocks). Both carry learnable per-channel scale and shift.
#pragma once

#include "nn/module.hpp"

namespace repro::nn {

class GroupNorm : public Module {
 public:
  GroupNorm(std::size_t channels, std::size_t groups,
            const std::string& name = "groupnorm", float eps = 1e-5f);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  void set_trainable(bool trainable) noexcept;

 private:
  std::size_t channels_, groups_;
  float eps_;
  Parameter gamma_;  // [C]
  Parameter beta_;   // [C]
  Tensor input_;
  Tensor normalized_;           // cached \hat x
  std::vector<float> inv_std_;  // per (n, group)
};

class LayerNorm : public Module {
 public:
  LayerNorm(std::size_t dim, const std::string& name = "layernorm",
            float eps = 1e-5f);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  void set_trainable(bool trainable) noexcept;

 private:
  std::size_t dim_;
  float eps_;
  Parameter gamma_;
  Parameter beta_;
  Tensor normalized_;
  std::vector<float> inv_std_;  // per row
  std::vector<std::size_t> in_shape_;
};

}  // namespace repro::nn
