#include "nn/init.hpp"

#include <cmath>

#include "nn/module.hpp"

namespace repro::nn {

void kaiming_normal(Tensor& w, std::size_t fan_in, Rng& rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = static_cast<float>(rng.gaussian(0.0, stddev));
  }
}

void xavier_uniform(Tensor& w, std::size_t fan_in, std::size_t fan_out,
                    Rng& rng) {
  const float limit =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = static_cast<float>(rng.uniform(-limit, limit));
  }
}

void normal_init(Tensor& w, float stddev, Rng& rng) {
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = static_cast<float>(rng.gaussian(0.0, stddev));
  }
}

std::vector<Parameter*> collect_parameters(
    const std::vector<Module*>& modules) {
  std::vector<Parameter*> params;
  for (Module* m : modules) {
    for (Parameter* p : m->parameters()) params.push_back(p);
  }
  return params;
}

}  // namespace repro::nn
