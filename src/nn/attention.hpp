// Single-head self-attention over the packet axis of a [N, C, L] feature
// map — the U-Net middle block's global mixing layer. Projections are
// pluggable Modules (plain Linear by default) so LoRA adapters can wrap
// them, mirroring where LoRA attaches in Stable Diffusion.
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "nn/linear.hpp"
#include "nn/norm.hpp"

namespace repro::nn {

class SelfAttention1d : public Module {
 public:
  /// Plain-Linear projections.
  SelfAttention1d(std::size_t channels, Rng& rng,
                  const std::string& name = "attn");

  /// Custom projections (must map [*, C] -> [*, C]); used to install
  /// LoraLinear wrappers.
  SelfAttention1d(std::size_t channels, std::unique_ptr<Module> proj_q,
                  std::unique_ptr<Module> proj_k,
                  std::unique_ptr<Module> proj_v,
                  std::unique_ptr<Module> proj_out,
                  const std::string& name = "attn");

  Tensor forward(const Tensor& input) override;  // [N, C, L] -> [N, C, L]
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;

  Module& proj_q() noexcept { return *q_; }
  Module& proj_k() noexcept { return *k_; }
  Module& proj_v() noexcept { return *v_; }
  Module& proj_out() noexcept { return *o_; }

  /// Quantized route covers the four projections (where the weights
  /// are); the data-dependent score/context GEMMs stay fp32 — two
  /// activation tensors share no calibrated weight scale, and the
  /// post-softmax values are already well-conditioned in fp32.
  void set_precision(Precision p) override {
    for (Module* m : {q_.get(), k_.get(), v_.get(), o_.get()}) {
      m->set_precision(p);
    }
  }
  void refresh_quantized() override {
    for (Module* m : {q_.get(), k_.get(), v_.get(), o_.get()}) {
      m->refresh_quantized();
    }
  }
  void invalidate_quantized() override {
    for (Module* m : {q_.get(), k_.get(), v_.get(), o_.get()}) {
      m->invalidate_quantized();
    }
  }

 private:
  std::size_t channels_;
  LayerNorm norm_;
  std::unique_ptr<Module> q_, k_, v_, o_;
  // Cached forward state.
  std::size_t n_ = 0, l_ = 0;
  Tensor rows_;                      // [N*L, C] pre-norm input rows
  Tensor q_rows_, k_rows_, v_rows_;  // [N*L, C]
  Tensor attn_;                      // [N, L, L]
};

}  // namespace repro::nn
