#include "nn/activation.hpp"

#include <cmath>

namespace repro::nn {
namespace {

inline float sigmoid_f(float x) noexcept { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

Tensor SiLU::forward(const Tensor& input) {
  input_ = input;
  Tensor out = input;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = input[i] * sigmoid_f(input[i]);
  }
  return out;
}

Tensor SiLU::backward(const Tensor& grad_output) {
  grad_output.require_shape(input_.shape(), "SiLU::backward");
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    const float s = sigmoid_f(input_[i]);
    grad[i] *= s * (1.0f + input_[i] * (1.0f - s));
  }
  return grad;
}

Tensor ReLU::forward(const Tensor& input) {
  input_ = input;
  Tensor out = input;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i] < 0.0f) out[i] = 0.0f;
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  grad_output.require_shape(input_.shape(), "ReLU::backward");
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    if (input_[i] <= 0.0f) grad[i] = 0.0f;
  }
  return grad;
}

Tensor LeakyReLU::forward(const Tensor& input) {
  input_ = input;
  Tensor out = input;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i] < 0.0f) out[i] *= slope_;
  }
  return out;
}

Tensor LeakyReLU::backward(const Tensor& grad_output) {
  grad_output.require_shape(input_.shape(), "LeakyReLU::backward");
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    if (input_[i] < 0.0f) grad[i] *= slope_;
  }
  return grad;
}

Tensor Tanh::forward(const Tensor& input) {
  Tensor out = input;
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::tanh(out[i]);
  output_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  grad_output.require_shape(output_.shape(), "Tanh::backward");
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    grad[i] *= 1.0f - output_[i] * output_[i];
  }
  return grad;
}

Tensor Sigmoid::forward(const Tensor& input) {
  Tensor out = input;
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = sigmoid_f(out[i]);
  output_ = out;
  return out;
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
  grad_output.require_shape(output_.shape(), "Sigmoid::backward");
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    grad[i] *= output_[i] * (1.0f - output_[i]);
  }
  return grad;
}

}  // namespace repro::nn
