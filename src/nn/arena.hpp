// TensorArena — reusable float scratch buffers for the nn/diffusion hot
// paths. The seed allocated a fresh std::vector for every temporary
// (im2col panels, packed GEMM panels, reshape staging, attention rows),
// which made the UNet forward allocator-bound. The arena keeps returned
// buffers on a free list and hands them back to the next request of a
// compatible size, so a steady-state sampler step performs zero heap
// allocations for scratch space.
//
// Lifetime rules (see DESIGN.md "Inference performance"):
//   * A Handle owns its buffer for the handle's scope only; the buffer
//     returns to the arena when the handle is destroyed. Never stash the
//     raw pointer beyond the handle's lifetime.
//   * Buffers are recycled without clearing — callers must treat the
//     contents as uninitialized.
//   * `scratch()` is a process-wide singleton usable from pool workers;
//     acquire/release take a mutex but never run inside inner loops
//     (one acquire per kernel call, not per element).
//
// Telemetry: `nn.arena.alloc` counts requests served by a fresh heap
// allocation, `nn.arena.reuse` counts requests served from the free
// list. A healthy steady-state trace has reuse >> alloc.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

namespace repro::nn {

class TensorArena {
 public:
  /// RAII lease of a float buffer. Movable, not copyable; returns the
  /// buffer to the owning arena on destruction.
  class Handle {
   public:
    Handle() = default;
    Handle(Handle&& other) noexcept { swap(other); }
    Handle& operator=(Handle&& other) noexcept {
      if (this != &other) {
        release();
        swap(other);
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() { release(); }

    float* data() { return buffer_ ? buffer_->data() : nullptr; }
    const float* data() const { return buffer_ ? buffer_->data() : nullptr; }
    /// Number of usable floats (the requested size, not the capacity of
    /// the recycled buffer, which may be larger).
    std::size_t size() const { return size_; }
    explicit operator bool() const { return buffer_ != nullptr; }

   private:
    friend class TensorArena;
    Handle(TensorArena* arena, std::vector<float>* buffer, std::size_t size)
        : arena_(arena), buffer_(buffer), size_(size) {}
    void swap(Handle& other) noexcept {
      std::swap(arena_, other.arena_);
      std::swap(buffer_, other.buffer_);
      std::swap(size_, other.size_);
    }
    void release();

    TensorArena* arena_ = nullptr;
    std::vector<float>* buffer_ = nullptr;
    std::size_t size_ = 0;
  };

  struct Stats {
    std::size_t allocs = 0;      ///< requests served by new heap buffers
    std::size_t reuses = 0;      ///< requests served from the free list
    std::size_t free_buffers = 0;  ///< buffers currently on the free list
  };

  TensorArena() = default;
  TensorArena(const TensorArena&) = delete;
  TensorArena& operator=(const TensorArena&) = delete;

  /// Leases a buffer of at least `size` floats (contents uninitialized).
  Handle acquire(std::size_t size);

  Stats stats() const;

  /// Drops every buffer on the free list (leased buffers are unaffected
  /// and still return normally). Primarily for tests.
  void trim();

  /// Process-wide scratch arena shared by the kernel layer and modules.
  static TensorArena& scratch();

 private:
  void release_buffer(std::vector<float>* buffer);

  mutable std::mutex mutex_;
  // Best-fit free list. Small (tens of entries) in practice, so a flat
  // vector scan beats ordered-container overhead.
  std::vector<std::unique_ptr<std::vector<float>>> free_;
  std::size_t allocs_ = 0;
  std::size_t reuses_ = 0;
};

}  // namespace repro::nn
