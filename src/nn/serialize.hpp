// Weight checkpointing: a simple tagged binary format (name, shape,
// float32 data per parameter). Loading verifies names and shapes so a
// checkpoint cannot be silently applied to the wrong architecture.
#pragma once

#include <string>
#include <vector>

#include "nn/module.hpp"

namespace repro::nn {

/// Writes all parameters to `path`. Throws std::runtime_error on I/O
/// failure.
void save_parameters(const std::string& path,
                     const std::vector<Parameter*>& params);

/// Loads parameters by position, verifying name and shape of each.
/// Throws std::runtime_error on mismatch or I/O failure.
void load_parameters(const std::string& path,
                     const std::vector<Parameter*>& params);

}  // namespace repro::nn
