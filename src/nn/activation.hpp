// Element-wise activation layers (shape-preserving, any rank).
#pragma once

#include "nn/module.hpp"

namespace repro::nn {

/// SiLU / swish: x * sigmoid(x) — the U-Net's activation.
class SiLU : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  Tensor input_;
};

class ReLU : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  Tensor input_;
};

/// LeakyReLU with fixed negative slope (GAN discriminators).
class LeakyReLU : public Module {
 public:
  explicit LeakyReLU(float slope = 0.2f) : slope_(slope) {}
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  float slope_;
  Tensor input_;
};

class Tanh : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  Tensor output_;
};

class Sigmoid : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  Tensor output_;
};

}  // namespace repro::nn
