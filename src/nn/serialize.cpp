#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

#include "common/bytes.hpp"

namespace repro::nn {
namespace {

constexpr std::uint32_t kMagic = 0x5052574E;  // "NWRP"

void write_u32(std::ostream& out, std::uint32_t v) {
  repro::write_pod(out, v);
}

std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v = 0;
  if (!repro::read_pod(in, v)) {
    throw std::runtime_error("checkpoint: truncated file");
  }
  return v;
}

}  // namespace

void save_parameters(const std::string& path,
                     const std::vector<Parameter*>& params) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("save_parameters: cannot open " + path);
  write_u32(out, kMagic);
  write_u32(out, static_cast<std::uint32_t>(params.size()));
  for (const Parameter* p : params) {
    write_u32(out, static_cast<std::uint32_t>(p->name.size()));
    out.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    write_u32(out, static_cast<std::uint32_t>(p->value.shape().size()));
    for (std::size_t d : p->value.shape()) {
      write_u32(out, static_cast<std::uint32_t>(d));
    }
    repro::write_bytes(out, p->value.data(), p->value.size());
  }
  if (!out) throw std::runtime_error("save_parameters: write failed");
}

void load_parameters(const std::string& path,
                     const std::vector<Parameter*>& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_parameters: cannot open " + path);
  if (read_u32(in) != kMagic) {
    throw std::runtime_error("load_parameters: bad magic in " + path);
  }
  const std::uint32_t count = read_u32(in);
  if (count != params.size()) {
    throw std::runtime_error("load_parameters: parameter count mismatch");
  }
  for (Parameter* p : params) {
    const std::uint32_t name_len = read_u32(in);
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    if (name != p->name) {
      throw std::runtime_error("load_parameters: expected parameter '" +
                               p->name + "', found '" + name + "'");
    }
    const std::uint32_t rank = read_u32(in);
    std::vector<std::size_t> shape(rank);
    for (auto& d : shape) d = read_u32(in);
    if (shape != p->value.shape()) {
      throw std::runtime_error("load_parameters: shape mismatch for " + name);
    }
    if (!repro::read_bytes(in, p->value.data(), p->value.size())) {
      throw std::runtime_error("load_parameters: truncated data");
    }
  }
}

}  // namespace repro::nn
