#include "nn/conv1d.hpp"

#include <cstring>

#include "common/parallel/parallel_for.hpp"
#include "common/telemetry/trace.hpp"
#include "nn/arena.hpp"
#include "nn/init.hpp"
#include "nn/kernels/gemm.hpp"

namespace repro::nn {

Conv1d::Conv1d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, Rng& rng, std::size_t stride,
               std::size_t padding, const std::string& name)
    : cin_(in_channels),
      cout_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding == SIZE_MAX ? kernel / 2 : padding),
      weight_(name + ".weight", Tensor({out_channels, in_channels, kernel})),
      bias_(name + ".bias", Tensor({out_channels})) {
  kaiming_normal(weight_.value, in_channels * kernel, rng);
}

Tensor Conv1d::forward(const Tensor& input) {
  REPRO_SPAN("nn.conv1d.forward");
  if (input.rank() != 3 || input.dim(1) != cin_) {
    throw std::invalid_argument("Conv1d::forward: bad input " +
                                input.shape_string());
  }
  input_ = input;
  const std::size_t n = input.dim(0), lin = input.dim(2);
  const std::size_t lout = out_length(lin);
  const std::size_t kc = cin_ * kernel_;
  Tensor out({n, cout_, lout});
  // im2col + GEMM over the WHOLE batch: every batch element's window
  // matrix is lowered into one [cin*kernel, n*lout] column panel
  // (zero-padded at the borders, in arena scratch, one column block per
  // batch element), then a single GEMM computes all output channels for
  // all batch elements at once. One kernel call instead of n amortizes
  // the per-call pack/dispatch cost that dominates the network's small
  // convolutions, and the boundary branch runs once per panel element
  // instead of inside the O(cout * cin * kernel * lout) loop. Each
  // output element is still the same ascending-k accumulation, so the
  // result is bit-identical to the per-batch form.
  const std::size_t cols = n * lout;
  TensorArena::Handle col = TensorArena::scratch().acquire(kc * cols);
  float* colp = col.data();
  for (std::size_t b = 0; b < n; ++b) {
    const float* in_b = input.data() + b * cin_ * lin;
    for (std::size_t ic = 0; ic < cin_; ++ic) {
      const float* irow = in_b + ic * lin;
      for (std::size_t k = 0; k < kernel_; ++k) {
        float* crow = colp + (ic * kernel_ + k) * cols + b * lout;
        const std::ptrdiff_t off = static_cast<std::ptrdiff_t>(k) -
                                   static_cast<std::ptrdiff_t>(padding_);
        for (std::size_t t = 0; t < lout; ++t) {
          const std::ptrdiff_t pos =
              static_cast<std::ptrdiff_t>(t * stride_) + off;
          crow[t] = (pos >= 0 && pos < static_cast<std::ptrdiff_t>(lin))
                        ? irow[static_cast<std::size_t>(pos)]
                        : 0.0f;
        }
      }
    }
  }
  // C buffer [cout, n*lout]: rows seeded with the bias, GEMM adds the
  // products, then rows scatter back to the [n, cout, lout] layout.
  TensorArena::Handle cbuf = TensorArena::scratch().acquire(cout_ * cols);
  float* cp = cbuf.data();
  for (std::size_t oc = 0; oc < cout_; ++oc) {
    const float bv = bias_.value[oc];
    float* crow = cp + oc * cols;
    for (std::size_t t = 0; t < cols; ++t) crow[t] = bv;
  }
  if (precision_ == Precision::kInt8) {
    if (!quant_valid_) refresh_quantized();
    kernels::qgemm_nn(cout_, kc, cols, qweight_, colp, cp,
                      kernels::Accumulate::kAdd);
  } else {
    kernels::gemm_nn(cout_, kc, cols, weight_.value.data(), colp, cp,
                     kernels::Accumulate::kAdd);
  }
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t oc = 0; oc < cout_; ++oc) {
      std::memcpy(out.data() + (b * cout_ + oc) * lout,
                  cp + oc * cols + b * lout, lout * sizeof(float));
    }
  }
  return out;
}

Tensor Conv1d::backward(const Tensor& grad_output) {
  REPRO_SPAN("nn.conv1d.backward");
  const std::size_t n = input_.dim(0), lin = input_.dim(2);
  const std::size_t lout = out_length(lin);
  grad_output.require_shape({n, cout_, lout}, "Conv1d::backward");
  Tensor grad_input(input_.shape());
  // Two passes with disjoint write sets. Pass 1: grad_input, one batch
  // element per chunk item (the serial oc/t/ic/k accumulation order is
  // preserved within each batch element).
  const std::size_t pair_ops = lout * cin_ * kernel_;
  parallel::parallel_for(
      0, n, parallel::grain_for(cout_ * pair_ops),
      [&](std::size_t bb, std::size_t be) {
        for (std::size_t b = bb; b < be; ++b) {
          for (std::size_t oc = 0; oc < cout_; ++oc) {
            const float* gorow = grad_output.data() + (b * cout_ + oc) * lout;
            const float* w = weight_.value.data() + oc * cin_ * kernel_;
            for (std::size_t t = 0; t < lout; ++t) {
              // No zero-skip: g == 0 must still propagate 0 * inf = NaN.
              const float g = gorow[t];
              const std::ptrdiff_t start =
                  static_cast<std::ptrdiff_t>(t * stride_) -
                  static_cast<std::ptrdiff_t>(padding_);
              for (std::size_t ic = 0; ic < cin_; ++ic) {
                float* girow = grad_input.data() + (b * cin_ + ic) * lin;
                const float* wrow = w + ic * kernel_;
                for (std::size_t k = 0; k < kernel_; ++k) {
                  const std::ptrdiff_t pos =
                      start + static_cast<std::ptrdiff_t>(k);
                  if (pos < 0 || pos >= static_cast<std::ptrdiff_t>(lin)) {
                    continue;
                  }
                  girow[static_cast<std::size_t>(pos)] += g * wrow[k];
                }
              }
            }
          }
        }
      });
  // Pass 2: weight and bias gradients, one out-channel per chunk item;
  // batches accumulate in ascending order exactly as the serial loop
  // did (b outer), so gradients stay bit-identical.
  parallel::parallel_for(
      0, cout_, parallel::grain_for(n * pair_ops),
      [&](std::size_t ob, std::size_t oe) {
        for (std::size_t oc = ob; oc < oe; ++oc) {
          float* gw = weight_.grad.data() + oc * cin_ * kernel_;
          for (std::size_t b = 0; b < n; ++b) {
            const float* gorow = grad_output.data() + (b * cout_ + oc) * lout;
            double gb = 0.0;
            for (std::size_t t = 0; t < lout; ++t) {
              const float g = gorow[t];
              gb += g;
              const std::ptrdiff_t start =
                  static_cast<std::ptrdiff_t>(t * stride_) -
                  static_cast<std::ptrdiff_t>(padding_);
              for (std::size_t ic = 0; ic < cin_; ++ic) {
                const float* irow = input_.data() + (b * cin_ + ic) * lin;
                float* gwrow = gw + ic * kernel_;
                for (std::size_t k = 0; k < kernel_; ++k) {
                  const std::ptrdiff_t pos =
                      start + static_cast<std::ptrdiff_t>(k);
                  if (pos < 0 || pos >= static_cast<std::ptrdiff_t>(lin)) {
                    continue;
                  }
                  gwrow[k] += g * irow[static_cast<std::size_t>(pos)];
                }
              }
            }
            bias_.grad[oc] += static_cast<float>(gb);
          }
        }
      });
  return grad_input;
}

std::vector<Parameter*> Conv1d::parameters() { return {&weight_, &bias_}; }

void Conv1d::set_trainable(bool trainable) noexcept {
  weight_.trainable = trainable;
  bias_.trainable = trainable;
}

void Conv1d::zero_init() noexcept {
  weight_.value.fill(0.0f);
  bias_.value.fill(0.0f);
  invalidate_quantized();
}

void Conv1d::refresh_quantized() {
  qweight_ =
      kernels::quantize_tensor(weight_.value.data(), weight_.value.size());
  quant_valid_ = true;
}

void Conv1d::invalidate_quantized() {
  qweight_.clear();
  quant_valid_ = false;
}

}  // namespace repro::nn
