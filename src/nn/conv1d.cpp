#include "nn/conv1d.hpp"

#include "common/parallel/parallel_for.hpp"
#include "common/telemetry/trace.hpp"
#include "nn/init.hpp"

namespace repro::nn {

Conv1d::Conv1d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, Rng& rng, std::size_t stride,
               std::size_t padding, const std::string& name)
    : cin_(in_channels),
      cout_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding == SIZE_MAX ? kernel / 2 : padding),
      weight_(name + ".weight", Tensor({out_channels, in_channels, kernel})),
      bias_(name + ".bias", Tensor({out_channels})) {
  kaiming_normal(weight_.value, in_channels * kernel, rng);
}

Tensor Conv1d::forward(const Tensor& input) {
  REPRO_SPAN("nn.conv1d.forward");
  if (input.rank() != 3 || input.dim(1) != cin_) {
    throw std::invalid_argument("Conv1d::forward: bad input " +
                                input.shape_string());
  }
  input_ = input;
  const std::size_t n = input.dim(0), lin = input.dim(2);
  const std::size_t lout = out_length(lin);
  Tensor out({n, cout_, lout});
  // Flattened (batch, out-channel) pairs: every output row is written by
  // exactly one chunk and computed exactly as in the serial loop.
  parallel::parallel_for(
      0, n * cout_, parallel::grain_for(lout * cin_ * kernel_),
      [&](std::size_t wb, std::size_t we) {
        for (std::size_t idx = wb; idx < we; ++idx) {
          const std::size_t b = idx / cout_;
          const std::size_t oc = idx % cout_;
          const float* w = weight_.value.data() + oc * cin_ * kernel_;
          float* orow = out.data() + (b * cout_ + oc) * lout;
          for (std::size_t t = 0; t < lout; ++t) {
            double acc = bias_.value[oc];
            const std::ptrdiff_t start =
                static_cast<std::ptrdiff_t>(t * stride_) -
                static_cast<std::ptrdiff_t>(padding_);
            for (std::size_t ic = 0; ic < cin_; ++ic) {
              const float* irow = input.data() + (b * cin_ + ic) * lin;
              const float* wrow = w + ic * kernel_;
              for (std::size_t k = 0; k < kernel_; ++k) {
                const std::ptrdiff_t pos =
                    start + static_cast<std::ptrdiff_t>(k);
                if (pos < 0 || pos >= static_cast<std::ptrdiff_t>(lin)) {
                  continue;
                }
                acc += static_cast<double>(wrow[k]) *
                       irow[static_cast<std::size_t>(pos)];
              }
            }
            orow[t] = static_cast<float>(acc);
          }
        }
      });
  return out;
}

Tensor Conv1d::backward(const Tensor& grad_output) {
  REPRO_SPAN("nn.conv1d.backward");
  const std::size_t n = input_.dim(0), lin = input_.dim(2);
  const std::size_t lout = out_length(lin);
  grad_output.require_shape({n, cout_, lout}, "Conv1d::backward");
  Tensor grad_input(input_.shape());
  // Two passes with disjoint write sets. Pass 1: grad_input, one batch
  // element per chunk item (the serial oc/t/ic/k accumulation order is
  // preserved within each batch element).
  const std::size_t pair_ops = lout * cin_ * kernel_;
  parallel::parallel_for(
      0, n, parallel::grain_for(cout_ * pair_ops),
      [&](std::size_t bb, std::size_t be) {
        for (std::size_t b = bb; b < be; ++b) {
          for (std::size_t oc = 0; oc < cout_; ++oc) {
            const float* gorow = grad_output.data() + (b * cout_ + oc) * lout;
            const float* w = weight_.value.data() + oc * cin_ * kernel_;
            for (std::size_t t = 0; t < lout; ++t) {
              const float g = gorow[t];
              if (g == 0.0f) continue;
              const std::ptrdiff_t start =
                  static_cast<std::ptrdiff_t>(t * stride_) -
                  static_cast<std::ptrdiff_t>(padding_);
              for (std::size_t ic = 0; ic < cin_; ++ic) {
                float* girow = grad_input.data() + (b * cin_ + ic) * lin;
                const float* wrow = w + ic * kernel_;
                for (std::size_t k = 0; k < kernel_; ++k) {
                  const std::ptrdiff_t pos =
                      start + static_cast<std::ptrdiff_t>(k);
                  if (pos < 0 || pos >= static_cast<std::ptrdiff_t>(lin)) {
                    continue;
                  }
                  girow[static_cast<std::size_t>(pos)] += g * wrow[k];
                }
              }
            }
          }
        }
      });
  // Pass 2: weight and bias gradients, one out-channel per chunk item;
  // batches accumulate in ascending order exactly as the serial loop
  // did (b outer), so gradients stay bit-identical.
  parallel::parallel_for(
      0, cout_, parallel::grain_for(n * pair_ops),
      [&](std::size_t ob, std::size_t oe) {
        for (std::size_t oc = ob; oc < oe; ++oc) {
          float* gw = weight_.grad.data() + oc * cin_ * kernel_;
          for (std::size_t b = 0; b < n; ++b) {
            const float* gorow = grad_output.data() + (b * cout_ + oc) * lout;
            double gb = 0.0;
            for (std::size_t t = 0; t < lout; ++t) {
              const float g = gorow[t];
              if (g == 0.0f) continue;
              gb += g;
              const std::ptrdiff_t start =
                  static_cast<std::ptrdiff_t>(t * stride_) -
                  static_cast<std::ptrdiff_t>(padding_);
              for (std::size_t ic = 0; ic < cin_; ++ic) {
                const float* irow = input_.data() + (b * cin_ + ic) * lin;
                float* gwrow = gw + ic * kernel_;
                for (std::size_t k = 0; k < kernel_; ++k) {
                  const std::ptrdiff_t pos =
                      start + static_cast<std::ptrdiff_t>(k);
                  if (pos < 0 || pos >= static_cast<std::ptrdiff_t>(lin)) {
                    continue;
                  }
                  gwrow[k] += g * irow[static_cast<std::size_t>(pos)];
                }
              }
            }
            bias_.grad[oc] += static_cast<float>(gb);
          }
        }
      });
  return grad_input;
}

std::vector<Parameter*> Conv1d::parameters() { return {&weight_, &bias_}; }

void Conv1d::set_trainable(bool trainable) noexcept {
  weight_.trainable = trainable;
  bias_.trainable = trainable;
}

void Conv1d::zero_init() noexcept {
  weight_.value.fill(0.0f);
  bias_.value.fill(0.0f);
}

}  // namespace repro::nn
