// Execution-precision knob for the forward pass.
//
// kFp32 is the bit-exact reference route every correctness statement is
// made against. kInt8 reroutes the matmul-shaped forwards (Linear,
// Conv1d-as-im2col, the LoRA base layer) through the quantized kernel
// (kernels/qgemm.hpp): per-tensor symmetric int8 operands, exact int32
// accumulation, dequantizing epilogue. Backward always runs fp32 —
// training never sees quantized arithmetic.
//
// Determinism contract (DESIGN.md §14): the int8 route produces
// different bytes than fp32, but its own output is bit-identical at any
// REPRO_THREADS because the int32 accumulation is exact and the kernel
// keeps the fp32 route's fixed ascending-k order and row-chunk-only
// parallelism.
#pragma once

namespace repro::nn {

enum class Precision { kFp32, kInt8 };

}  // namespace repro::nn
