// Module interface: a layer owning parameters, caching forward
// activations, and implementing an explicit backward pass.
//
// Contract: `forward` must be called before `backward`; `backward`
// consumes the gradient of the loss w.r.t. the module output and returns
// the gradient w.r.t. the module input, accumulating parameter gradients
// (`Parameter::grad`) as a side effect. Each module instance may be used
// once per forward/backward cycle (networks needing reuse instantiate the
// module twice, as ControlNet does with its trainable copy).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/precision.hpp"
#include "nn/tensor.hpp"

namespace repro::nn {

/// A learnable value with its gradient accumulator. `trainable` is turned
/// off for the frozen base weights during LoRA fine-tuning.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;
  bool trainable = true;

  Parameter() = default;
  Parameter(std::string name_, Tensor value_)
      : name(std::move(name_)),
        value(std::move(value_)),
        grad(Tensor::zeros(value.shape())) {}

  void zero_grad() noexcept { grad.fill(0.0f); }
};

class Module {
 public:
  virtual ~Module() = default;

  virtual Tensor forward(const Tensor& input) = 0;
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// All parameters owned by this module (and submodules).
  virtual std::vector<Parameter*> parameters() { return {}; }

  /// Execution mode for subsequent forward() calls (precision.hpp).
  /// Default no-op: only matmul-backed modules (Linear, Conv1d) and
  /// their wrappers have a quantized route; backward is always fp32.
  virtual void set_precision(Precision) {}

  /// Re-runs absmax calibration from the current weights, (re)building
  /// the cached int8 copy. Called at checkpoint-load time; the int8
  /// forward also calibrates lazily if the cache is missing.
  virtual void refresh_quantized() {}

  /// Drops the cached int8 weights (weights changed — end of training);
  /// the next int8 forward re-calibrates.
  virtual void invalidate_quantized() {}

  void zero_grad() {
    for (Parameter* p : parameters()) p->zero_grad();
  }

  /// Total learnable scalar count.
  std::size_t parameter_count() {
    std::size_t n = 0;
    for (Parameter* p : parameters()) n += p->value.size();
    return n;
  }
};

/// Collects parameters from several modules (for optimizers).
std::vector<Parameter*> collect_parameters(
    const std::vector<Module*>& modules);

}  // namespace repro::nn
