// Layout shuffles between the convolutional [N, C, L] layout and the
// position-major [N*L, C] layout dense layers consume. Both are copies;
// at the model sizes used here the copies are negligible next to the
// matmuls. The `_into` variants write a caller-owned tensor (reallocated
// only on shape change) so steady-state callers reuse their staging
// buffers instead of allocating per call.
#pragma once

#include "nn/tensor.hpp"

namespace repro::nn {

/// [N, C, L] -> [N*L, C] into `out` (resized only when the shape differs).
inline void ncl_to_nlc_into(const Tensor& x, Tensor& out) {
  const std::size_t n = x.dim(0), c = x.dim(1), l = x.dim(2);
  if (out.shape() != std::vector<std::size_t>{n * l, c}) {
    out = Tensor({n * l, c});
  }
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* row = x.data() + (b * c + ch) * l;
      for (std::size_t t = 0; t < l; ++t) {
        out[(b * l + t) * c + ch] = row[t];
      }
    }
  }
}

/// [N, C, L] -> [N*L, C].
inline Tensor ncl_to_nlc(const Tensor& x) {
  Tensor out;
  ncl_to_nlc_into(x, out);
  return out;
}

/// [N*L, C] -> [N, C, L] into `out` (resized only when the shape differs).
inline void nlc_to_ncl_into(const Tensor& x, std::size_t n, std::size_t l,
                            Tensor& out) {
  const std::size_t c = x.dim(1);
  if (out.shape() != std::vector<std::size_t>{n, c, l}) {
    out = Tensor({n, c, l});
  }
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t t = 0; t < l; ++t) {
      const float* row = x.data() + (b * l + t) * c;
      for (std::size_t ch = 0; ch < c; ++ch) {
        out[(b * c + ch) * l + t] = row[ch];
      }
    }
  }
}

/// [N*L, C] -> [N, C, L].
inline Tensor nlc_to_ncl(const Tensor& x, std::size_t n, std::size_t l) {
  Tensor out;
  nlc_to_ncl_into(x, n, l, out);
  return out;
}

}  // namespace repro::nn
