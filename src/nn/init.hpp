// Weight initialization schemes.
#pragma once

#include "common/rng.hpp"
#include "nn/tensor.hpp"

namespace repro::nn {

/// Kaiming/He normal: stddev = sqrt(2 / fan_in).
void kaiming_normal(Tensor& w, std::size_t fan_in, Rng& rng);

/// Xavier/Glorot uniform: limit = sqrt(6 / (fan_in + fan_out)).
void xavier_uniform(Tensor& w, std::size_t fan_in, std::size_t fan_out,
                    Rng& rng);

/// N(0, stddev^2).
void normal_init(Tensor& w, float stddev, Rng& rng);

}  // namespace repro::nn
