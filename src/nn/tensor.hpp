// Dense float tensor with row-major contiguous storage.
//
// The deep-learning substrate is deliberately minimal: fixed-topology
// networks with hand-written backward passes (no tape autograd), which
// keeps every gradient explicit and testable against finite differences
// (see tests/nn_gradcheck_test.cpp). Shapes used across the library:
// [N, D] for dense layers, [N, C, L] for 1-D convolutions over the packet
// axis of a flow image.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace repro::nn {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::vector<std::size_t> shape, float fill);

  static Tensor zeros(std::vector<std::size_t> shape) {
    return Tensor(std::move(shape), 0.0f);
  }
  static Tensor full(std::vector<std::size_t> shape, float value) {
    return Tensor(std::move(shape), value);
  }

  const std::vector<std::size_t>& shape() const noexcept { return shape_; }
  std::size_t rank() const noexcept { return shape_.size(); }
  std::size_t size() const noexcept { return data_.size(); }
  std::size_t dim(std::size_t axis) const { return shape_.at(axis); }
  bool empty() const noexcept { return data_.empty(); }

  float* data() noexcept { return data_.data(); }
  const float* data() const noexcept { return data_.data(); }
  std::vector<float>& vec() noexcept { return data_; }
  const std::vector<float>& vec() const noexcept { return data_; }

  float& operator[](std::size_t i) noexcept { return data_[i]; }
  float operator[](std::size_t i) const noexcept { return data_[i]; }

  // Indexed access for the common ranks (debug-checked via at()).
  float& at2(std::size_t i, std::size_t j) noexcept {
    return data_[i * shape_[1] + j];
  }
  float at2(std::size_t i, std::size_t j) const noexcept {
    return data_[i * shape_[1] + j];
  }
  float& at3(std::size_t i, std::size_t j, std::size_t k) noexcept {
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }
  float at3(std::size_t i, std::size_t j, std::size_t k) const noexcept {
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }

  /// Returns a copy with a new shape of equal element count.
  Tensor reshaped(std::vector<std::size_t> shape) const&;
  /// Rvalue overload: steals the data vector instead of deep-copying it,
  /// so `std::move(t).reshaped(...)` and reshapes of temporaries are
  /// allocation-free.
  Tensor reshaped(std::vector<std::size_t> shape) &&;
  /// Rebinds this tensor's shape in place (no data copy or move).
  void reshape_inplace(std::vector<std::size_t> shape);

  /// In-place element-wise helpers.
  void fill(float value) noexcept;
  void add(const Tensor& other);            // this += other
  void add_scaled(const Tensor& other, float s);  // this += s * other
  void scale(float s) noexcept;             // this *= s

  /// Reductions.
  float sum() const noexcept;
  float mean() const noexcept;
  float abs_max() const noexcept;
  float l2_norm() const noexcept;

  /// Throws std::invalid_argument unless shapes match exactly.
  void require_shape(const std::vector<std::size_t>& shape,
                     const char* what) const;

  std::string shape_string() const;

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

/// y = a + b (same shape).
Tensor add(const Tensor& a, const Tensor& b);
/// y = a - b (same shape).
Tensor sub(const Tensor& a, const Tensor& b);
/// y = a * b element-wise (same shape).
Tensor mul(const Tensor& a, const Tensor& b);

/// C[N,M] = A[N,K] @ B[K,M].
Tensor matmul(const Tensor& a, const Tensor& b);
/// C[N,K] = A[N,M] @ B[K,M]^T.
Tensor matmul_bt(const Tensor& a, const Tensor& b);
/// C[K,M] = A[N,K]^T @ B[N,M].
Tensor matmul_at(const Tensor& a, const Tensor& b);

}  // namespace repro::nn
