// Parametric per-application traffic models.
//
// This module is the repo's substitute for the paper's curated dataset of
// real captures (DESIGN.md §2): each of the 11 micro-applications in
// Table 1 is described by a generative profile whose parameters encode the
// qualitative, publicly documented behaviour of that service — dominant
// transport protocol (Netflix ≈ TCP, Teams/Meet/Zoom ≈ UDP), server port
// profile, packet-size mixture per direction, inter-arrival process,
// TTL/window/DSCP ranges, TCP option usage, and flow-length distribution.
// The profiles are deliberately *distinct* so that service recognition is
// learnable — which is precisely the property the paper's experiments
// measure on real data.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "net/headers.hpp"

namespace repro::flowgen {

/// The four macro services of Table 1.
enum class MacroService {
  kVideoStreaming = 0,
  kVideoConferencing = 1,
  kSocialMedia = 2,
  kIotDevice = 3,
};

std::string macro_service_name(MacroService service);
inline constexpr std::size_t kNumMacroServices = 4;

/// Packet-size mixture: three lognormal components (small control,
/// medium, near-MTU) with per-component weights. Sizes are payload bytes.
struct SizeMixture {
  double w_small = 0.2, mu_small = 3.5, sigma_small = 0.4;
  double w_mid = 0.3, mu_mid = 5.8, sigma_mid = 0.5;
  double w_large = 0.5, mu_large = 7.2, sigma_large = 0.1;

  /// Draws a payload size in [0, 1460].
  std::size_t sample(Rng& rng) const;
};

/// Inter-arrival process: base-rate exponential optionally modulated by a
/// periodic component (media chunking / RTP pacing).
struct ArrivalModel {
  double mean_gap = 0.01;      // seconds
  double jitter_sigma = 0.3;   // lognormal sigma on the gap
  double period = 0.0;         // >0: superimposed burst period (seconds)
  double burst_fraction = 0.0; // fraction of packets inside bursts

  double sample_gap(Rng& rng) const;
};

/// How the server's IP stack assigns the IPv4 identification field —
/// a classic OS/CDN fingerprint visible only at the bit level.
enum class IpIdMode {
  kIncrement,  // classic counter (Linux pre-4.x style)
  kRandom,     // randomized per packet
  kZero,       // zero with DF set (modern Linux for atomic datagrams)
};

/// How a TCP-based application uses the connection.
struct TcpBehavior {
  bool use_mss_option = true;
  bool use_sack_option = true;
  bool use_timestamps = true;
  bool use_window_scale = true;
  std::uint16_t mss = 1460;        // advertised in the SYN options
  std::uint8_t window_scale = 7;   // WS option shift count
  std::uint16_t base_window = 0xFFFF;
  double window_jitter = 0.15;     // relative stddev of advertised window
  double client_request_rate = 0.1; // fraction of data packets that are
                                    // upstream requests
  double psh_probability = 0.35;   // PSH on data segments
  double ack_every = 2.0;          // client ACKs per server segments
};

/// How a UDP-based application shapes its datagrams.
struct UdpBehavior {
  double upstream_fraction = 0.35;  // conferencing is bidirectional
  std::uint8_t dscp = 0;            // EF marking for RTP etc.
};

/// One micro-application profile.
struct AppProfile {
  std::string name;
  MacroService macro = MacroService::kVideoStreaming;

  /// Probability that a new flow of this app is TCP / UDP / ICMP. Must
  /// sum to 1; a flow keeps one protocol throughout (real flows do).
  double p_tcp = 1.0;
  double p_udp = 0.0;
  double p_icmp = 0.0;

  /// Candidate server ports with selection weights (e.g. 443 for TLS,
  /// 3478-3481 for Teams relay, 8801 for Zoom).
  std::vector<std::pair<std::uint16_t, double>> server_ports;

  SizeMixture downstream;  // server -> client payload sizes
  SizeMixture upstream;    // client -> server payload sizes
  ArrivalModel arrivals;
  TcpBehavior tcp;
  UdpBehavior udp;

  /// Server TTL range observed at the client (distance heuristics).
  std::uint8_t server_ttl_lo = 52, server_ttl_hi = 62;
  std::uint8_t client_ttl = 64;

  /// Server-side IPv4 identification behaviour.
  IpIdMode server_ip_id = IpIdMode::kIncrement;

  /// Flow length (packets): lognormal, clamped to [min_packets,
  /// max_packets].
  double len_mu = 4.5, len_sigma = 0.8;
  std::size_t min_packets = 6, max_packets = 4096;

  std::uint16_t sample_server_port(Rng& rng) const;
  std::size_t sample_flow_length(Rng& rng) const;
  net::IpProto sample_protocol(Rng& rng) const;
};

}  // namespace repro::flowgen
