// Stateful TCP session synthesis: three-way handshake, sequence/ack
// bookkeeping in both directions, delayed ACKs, PSH at message
// boundaries, advertised-window dynamics, and FIN/ACK teardown — the
// "inter-packet constraints (e.g., protocol usage patterns in flows)" the
// paper says generators must respect (§1 RQ2).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "flowgen/app_profile.hpp"
#include "net/flow.hpp"

namespace repro::flowgen {

/// Endpoint addresses/ports of a session (client is src of the first
/// packet).
struct Endpoints {
  std::uint32_t client_addr = 0;
  std::uint32_t server_addr = 0;
  std::uint16_t client_port = 0;
  std::uint16_t server_port = 0;
};

/// Generates one TCP flow of ~`target_packets` packets following the
/// profile's behaviour. The result always begins SYN / SYN-ACK / ACK and,
/// when the budget allows, ends FIN / FIN-ACK / ACK.
net::Flow generate_tcp_flow(const AppProfile& profile,
                            const Endpoints& endpoints,
                            std::size_t target_packets, Rng& rng);

}  // namespace repro::flowgen
