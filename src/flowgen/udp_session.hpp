// UDP flow synthesis: bidirectional datagram streams (RTP-like media or
// QUIC-like transfer) with profile-driven sizes, pacing and DSCP marking.
#pragma once

#include "common/rng.hpp"
#include "flowgen/app_profile.hpp"
#include "flowgen/tcp_session.hpp"  // Endpoints
#include "net/flow.hpp"

namespace repro::flowgen {

/// Generates one UDP flow of `target_packets` packets.
net::Flow generate_udp_flow(const AppProfile& profile,
                            const Endpoints& endpoints,
                            std::size_t target_packets, Rng& rng);

}  // namespace repro::flowgen
