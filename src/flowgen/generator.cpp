#include "flowgen/generator.hpp"

#include "flowgen/icmp_session.hpp"
#include "flowgen/tcp_session.hpp"
#include "flowgen/udp_session.hpp"

namespace repro::flowgen {
namespace {

/// Draws plausible endpoints: client in RFC1918 space with an ephemeral
/// port, server in public space on a profile port.
Endpoints sample_endpoints(const AppProfile& profile, Rng& rng) {
  Endpoints ep;
  // 192.168.x.y client.
  ep.client_addr = (192u << 24) | (168u << 16) |
                   static_cast<std::uint32_t>(rng.uniform_int(0, 255)) << 8 |
                   static_cast<std::uint32_t>(rng.uniform_int(2, 254));
  // Public /8s commonly used by CDNs, avoiding reserved ranges.
  static constexpr std::uint32_t kPublicFirstOctets[] = {13, 23, 34, 52, 99,
                                                         104, 142, 151};
  const auto first = kPublicFirstOctets[rng.uniform_u64(8)];
  ep.server_addr = (first << 24) |
                   static_cast<std::uint32_t>(rng.uniform_int(0, 255)) << 16 |
                   static_cast<std::uint32_t>(rng.uniform_int(0, 255)) << 8 |
                   static_cast<std::uint32_t>(rng.uniform_int(1, 254));
  ep.client_port = static_cast<std::uint16_t>(rng.uniform_int(32768, 60999));
  ep.server_port = profile.sample_server_port(rng);
  return ep;
}

}  // namespace

net::Flow generate_flow(App app, std::size_t target_packets, Rng& rng) {
  const AppProfile& profile = app_profile(app);
  const Endpoints ep = sample_endpoints(profile, rng);
  const std::size_t length =
      target_packets > 0 ? target_packets : profile.sample_flow_length(rng);

  net::Flow flow;
  switch (profile.sample_protocol(rng)) {
    case net::IpProto::kTcp:
      flow = generate_tcp_flow(profile, ep, length, rng);
      break;
    case net::IpProto::kUdp:
      flow = generate_udp_flow(profile, ep, length, rng);
      break;
    case net::IpProto::kIcmp:
      flow = generate_icmp_flow(profile, ep, length, rng);
      break;
  }
  flow.label = static_cast<int>(app);
  return flow;
}

net::Flow generate_flow(App app, Rng& rng) {
  return generate_flow(app, 0, rng);
}

}  // namespace repro::flowgen
