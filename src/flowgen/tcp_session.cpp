#include "flowgen/tcp_session.hpp"

#include <algorithm>
#include <cmath>

namespace repro::flowgen {
namespace {

/// Standard option encodings; always padded to a 4-byte multiple with
/// NOPs (0x01) / END (0x00) like real stacks emit. Appends byte-by-byte
/// (vector::insert of an initializer_list trips a GCC 12 -Wstringop-
/// overflow false positive when inlined at -O3).
std::vector<std::uint8_t> syn_options(const TcpBehavior& behavior, Rng& rng) {
  std::vector<std::uint8_t> opts;
  opts.reserve(40);
  const auto append = [&opts](std::initializer_list<std::uint8_t> bytes) {
    for (const std::uint8_t b : bytes) opts.push_back(b);
  };
  if (behavior.use_mss_option) {
    append({0x02, 0x04, static_cast<std::uint8_t>(behavior.mss >> 8),
            static_cast<std::uint8_t>(behavior.mss)});
  }
  if (behavior.use_sack_option) {
    append({0x01, 0x01, 0x04, 0x02});  // NOP NOP SACK-perm
  }
  if (behavior.use_timestamps) {
    const auto tsval = static_cast<std::uint32_t>(rng.next_u64());
    append({0x01, 0x01, 0x08, 0x0A, static_cast<std::uint8_t>(tsval >> 24),
            static_cast<std::uint8_t>(tsval >> 16),
            static_cast<std::uint8_t>(tsval >> 8),
            static_cast<std::uint8_t>(tsval), 0, 0, 0, 0});
  }
  if (behavior.use_window_scale) {
    append({0x01, 0x03, 0x03, behavior.window_scale});
  }
  while (opts.size() % 4 != 0) opts.push_back(0x00);
  if (opts.size() > 40) opts.resize(40);
  return opts;
}

std::uint16_t next_ip_id(IpIdMode mode, std::uint16_t& counter,
                         Rng& rng) noexcept {
  switch (mode) {
    case IpIdMode::kIncrement:
      return ++counter;
    case IpIdMode::kRandom:
      return static_cast<std::uint16_t>(rng.next_u64());
    case IpIdMode::kZero:
      return 0;
  }
  return 0;
}

std::uint16_t jittered_window(const TcpBehavior& behavior, Rng& rng) {
  const double w = rng.gaussian(static_cast<double>(behavior.base_window),
                                behavior.window_jitter *
                                    static_cast<double>(behavior.base_window));
  return static_cast<std::uint16_t>(std::clamp(w, 1024.0, 65535.0));
}

struct Direction {
  std::uint32_t seq;       // next sequence number to send
  std::uint32_t acked = 0;  // highest ack we have sent for the peer
};

net::Packet base_packet(const AppProfile& profile, const Endpoints& ep,
                        bool from_client, double t, std::uint16_t ip_id,
                        Rng& rng) {
  net::Packet pkt;
  pkt.timestamp = t;
  pkt.ip.protocol = net::IpProto::kTcp;
  pkt.ip.identification = ip_id;
  if (from_client) {
    pkt.ip.src_addr = ep.client_addr;
    pkt.ip.dst_addr = ep.server_addr;
    pkt.ip.ttl = profile.client_ttl;
  } else {
    pkt.ip.src_addr = ep.server_addr;
    pkt.ip.dst_addr = ep.client_addr;
    pkt.ip.ttl = static_cast<std::uint8_t>(
        rng.uniform_int(profile.server_ttl_lo, profile.server_ttl_hi));
  }
  net::TcpHeader tcp;
  tcp.src_port = from_client ? ep.client_port : ep.server_port;
  tcp.dst_port = from_client ? ep.server_port : ep.client_port;
  pkt.tcp = tcp;
  return pkt;
}

void finalize(net::Packet& pkt) {
  pkt.ip.total_length = static_cast<std::uint16_t>(pkt.datagram_length());
}

}  // namespace

net::Flow generate_tcp_flow(const AppProfile& profile,
                            const Endpoints& endpoints,
                            std::size_t target_packets, Rng& rng) {
  net::Flow flow;
  const auto& behavior = profile.tcp;
  double t = 0.0;
  const double rtt = rng.uniform(0.005, 0.06);

  Direction client{static_cast<std::uint32_t>(rng.next_u64())};
  Direction server{static_cast<std::uint32_t>(rng.next_u64())};

  auto emit = [&](net::Packet pkt) {
    finalize(pkt);
    flow.packets.push_back(std::move(pkt));
  };

  // Client stacks virtually all increment the IP ID; the server side
  // follows the profile's fingerprint.
  auto client_id = static_cast<std::uint16_t>(rng.next_u64());
  auto server_id = static_cast<std::uint16_t>(rng.next_u64());
  auto client_pkt = [&](double ts) {
    return base_packet(profile, endpoints, true, ts, ++client_id, rng);
  };
  auto server_pkt = [&](double ts) {
    return base_packet(profile, endpoints, false, ts,
                       next_ip_id(profile.server_ip_id, server_id, rng), rng);
  };

  // --- Three-way handshake. ---
  {
    net::Packet syn = client_pkt(t);
    syn.tcp->syn = true;
    syn.tcp->seq = client.seq;
    syn.tcp->window = jittered_window(behavior, rng);
    syn.tcp->options = syn_options(behavior, rng);
    emit(std::move(syn));
    client.seq += 1;

    t += rtt / 2;
    net::Packet synack = server_pkt(t);
    synack.tcp->syn = true;
    synack.tcp->ack_flag = true;
    synack.tcp->seq = server.seq;
    synack.tcp->ack = client.seq;
    synack.tcp->window = jittered_window(behavior, rng);
    synack.tcp->options = syn_options(behavior, rng);
    emit(std::move(synack));
    server.seq += 1;

    t += rtt / 2;
    net::Packet ack = client_pkt(t);
    ack.tcp->ack_flag = true;
    ack.tcp->seq = client.seq;
    ack.tcp->ack = server.seq;
    ack.tcp->window = jittered_window(behavior, rng);
    emit(std::move(ack));
  }

  // --- Data transfer. ---
  // Reserve 3 packets for the FIN / FIN-ACK / ACK teardown when the flow
  // is long enough to afford one.
  const bool with_teardown = target_packets >= 10;
  const std::size_t data_budget =
      target_packets > flow.packets.size() + (with_teardown ? 3 : 0)
          ? target_packets - flow.packets.size() - (with_teardown ? 3 : 0)
          : 0;

  double since_ack = 0.0;  // server segments since last client ACK
  for (std::size_t i = 0; i < data_budget; ++i) {
    t += profile.arrivals.sample_gap(rng);
    const bool upstream = rng.uniform() < behavior.client_request_rate;
    if (upstream) {
      net::Packet req = client_pkt(t);
      const std::size_t len = profile.upstream.sample(rng);
      req.tcp->seq = client.seq;
      req.tcp->ack = server.seq;
      req.tcp->ack_flag = true;
      req.tcp->psh = len > 0 && rng.bernoulli(behavior.psh_probability);
      req.tcp->window = jittered_window(behavior, rng);
      req.payload.assign(len, 0);
      emit(std::move(req));
      client.seq += static_cast<std::uint32_t>(len);
    } else {
      net::Packet seg = server_pkt(t);
      const std::size_t len = std::max<std::size_t>(profile.downstream.sample(rng), 1);
      seg.tcp->seq = server.seq;
      seg.tcp->ack = client.seq;
      seg.tcp->ack_flag = true;
      seg.tcp->psh = rng.bernoulli(behavior.psh_probability);
      seg.tcp->window = jittered_window(behavior, rng);
      seg.payload.assign(len, 0);
      emit(std::move(seg));
      server.seq += static_cast<std::uint32_t>(len);
      since_ack += 1.0;
      // Delayed ACK: client ACKs every ~ack_every segments (if budget).
      if (since_ack >= behavior.ack_every && i + 1 < data_budget) {
        ++i;
        t += rng.uniform(0.0001, 0.002);
        net::Packet ack = client_pkt(t);
        ack.tcp->ack_flag = true;
        ack.tcp->seq = client.seq;
        ack.tcp->ack = server.seq;
        ack.tcp->window = jittered_window(behavior, rng);
        emit(std::move(ack));
        since_ack = 0.0;
      }
    }
  }

  // --- Teardown: client FIN, server FIN-ACK, client ACK. ---
  if (with_teardown) {
    t += profile.arrivals.sample_gap(rng);
    net::Packet fin = client_pkt(t);
    fin.tcp->fin = true;
    fin.tcp->ack_flag = true;
    fin.tcp->seq = client.seq;
    fin.tcp->ack = server.seq;
    fin.tcp->window = jittered_window(behavior, rng);
    emit(std::move(fin));
    client.seq += 1;

    t += rtt / 2;
    net::Packet finack = server_pkt(t);
    finack.tcp->fin = true;
    finack.tcp->ack_flag = true;
    finack.tcp->seq = server.seq;
    finack.tcp->ack = client.seq;
    finack.tcp->window = jittered_window(behavior, rng);
    emit(std::move(finack));
    server.seq += 1;

    t += rtt / 2;
    net::Packet last = client_pkt(t);
    last.tcp->ack_flag = true;
    last.tcp->seq = client.seq;
    last.tcp->ack = server.seq;
    last.tcp->window = jittered_window(behavior, rng);
    emit(std::move(last));
  }

  flow.key = net::FlowKey::from_packet(flow.packets.front()).canonical();
  return flow;
}

}  // namespace repro::flowgen
