// The 11 micro-applications of Table 1, with the paper's flow counts and
// class ordering (Figure 1): netflix, youtube, amazon, twitch, teams,
// meet, zoom, facebook, twitter, instagram, other.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "flowgen/app_profile.hpp"

namespace repro::flowgen {

inline constexpr std::size_t kNumApps = 11;

/// Class ids in the paper's presentation order.
enum class App : int {
  kNetflix = 0,
  kYoutube = 1,
  kAmazon = 2,
  kTwitch = 3,
  kTeams = 4,
  kMeet = 5,
  kZoom = 6,
  kFacebook = 7,
  kTwitter = 8,
  kInstagram = 9,
  kOther = 10,
};

/// Profile for a given app (static catalog, index = class id).
const AppProfile& app_profile(App app);
const AppProfile& app_profile(std::size_t class_id);

/// All profiles in class-id order.
const std::vector<AppProfile>& all_profiles();

/// Class name ("netflix", ...) and id lookup.
std::string app_name(App app);
App app_from_name(const std::string& name);

/// Macro-service id (0..3) for a micro class id.
MacroService macro_of(std::size_t class_id);

/// The paper's Table 1 flow counts, class-id order:
/// {4104, 2702, 1509, 1150, 3886, 1313, 1312, 1477, 1260, 873, 3901}.
const std::vector<std::size_t>& table1_flow_counts();

}  // namespace repro::flowgen
