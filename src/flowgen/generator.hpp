// Top-level flow generator: samples endpoints, protocol and flow length
// from an application profile and dispatches to the TCP/UDP/ICMP session
// synthesizers.
#pragma once

#include "common/rng.hpp"
#include "flowgen/catalog.hpp"
#include "net/flow.hpp"

namespace repro::flowgen {

/// Generates one labeled flow for the given application class.
net::Flow generate_flow(App app, Rng& rng);

/// As above with an explicit packet-count target (0 = sample from the
/// profile's length distribution).
net::Flow generate_flow(App app, std::size_t target_packets, Rng& rng);

}  // namespace repro::flowgen
