#include "flowgen/dataset.hpp"

#include <algorithm>

#include "common/parallel/parallel_for.hpp"
#include "common/telemetry/trace.hpp"
#include "flowgen/generator.hpp"

namespace repro::flowgen {

std::vector<int> Dataset::micro_labels() const {
  std::vector<int> labels;
  labels.reserve(flows.size());
  for (const auto& flow : flows) labels.push_back(flow.label);
  return labels;
}

std::vector<int> Dataset::macro_labels() const {
  std::vector<int> labels;
  labels.reserve(flows.size());
  for (const auto& flow : flows) {
    labels.push_back(
        static_cast<int>(macro_of(static_cast<std::size_t>(flow.label))));
  }
  return labels;
}

std::vector<std::size_t> Dataset::per_class_counts() const {
  std::vector<std::size_t> counts(kNumApps, 0);
  for (const auto& flow : flows) {
    if (flow.label >= 0 && static_cast<std::size_t>(flow.label) < kNumApps) {
      ++counts[static_cast<std::size_t>(flow.label)];
    }
  }
  return counts;
}

Dataset Dataset::sample_per_class(std::size_t per_class, Rng& rng) const {
  // Collect indices per class, shuffle, take the first `per_class`.
  std::vector<std::vector<std::size_t>> buckets(kNumApps);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const int label = flows[i].label;
    if (label >= 0 && static_cast<std::size_t>(label) < kNumApps) {
      buckets[static_cast<std::size_t>(label)].push_back(i);
    }
  }
  Dataset out;
  for (auto& bucket : buckets) {
    const auto perm = rng.permutation(bucket.size());
    const std::size_t take = std::min(per_class, bucket.size());
    for (std::size_t k = 0; k < take; ++k) {
      out.flows.push_back(flows[bucket[perm[k]]]);
    }
  }
  return out;
}

Dataset build_dataset(const std::vector<std::size_t>& per_class_counts,
                      Rng& rng) {
  REPRO_SPAN("flowgen.build_dataset");
  // Every flow gets its own RNG stream, forked from the master stream in
  // a fixed (class, index) order; flow synthesis then parallelizes with
  // identical output at any thread count.
  struct FlowSeed {
    App app;
    Rng rng;
  };
  std::vector<FlowSeed> seeds;
  for (std::size_t cls = 0; cls < per_class_counts.size() && cls < kNumApps;
       ++cls) {
    for (std::size_t i = 0; i < per_class_counts[cls]; ++i) {
      seeds.push_back({static_cast<App>(cls), rng.fork()});
    }
  }
  Dataset ds;
  ds.flows.resize(seeds.size());
  parallel::parallel_for_each(0, seeds.size(), 4, [&](std::size_t i) {
    ds.flows[i] = generate_flow(seeds[i].app, seeds[i].rng);
  });
  // Shuffle so class order does not leak into splits.
  const auto perm = rng.permutation(ds.flows.size());
  Dataset shuffled;
  shuffled.flows.reserve(ds.flows.size());
  for (std::size_t idx : perm) shuffled.flows.push_back(std::move(ds.flows[idx]));
  return shuffled;
}

std::vector<std::size_t> scaled_table1_counts(std::size_t max_per_class) {
  const auto& paper = table1_flow_counts();
  const std::size_t biggest = *std::max_element(paper.begin(), paper.end());
  std::vector<std::size_t> scaled(paper.size());
  for (std::size_t i = 0; i < paper.size(); ++i) {
    scaled[i] = std::max<std::size_t>(
        1, paper[i] * max_per_class / biggest);
  }
  return scaled;
}

Dataset build_table1_dataset(std::size_t max_per_class, Rng& rng) {
  return build_dataset(scaled_table1_counts(max_per_class), rng);
}

Dataset build_uniform_dataset(std::size_t per_class, Rng& rng) {
  return build_dataset(std::vector<std::size_t>(kNumApps, per_class), rng);
}

}  // namespace repro::flowgen
