#include "flowgen/icmp_session.hpp"

namespace repro::flowgen {

net::Flow generate_icmp_flow(const AppProfile& profile,
                             const Endpoints& endpoints,
                             std::size_t target_packets, Rng& rng) {
  net::Flow flow;
  double t = 0.0;
  const auto ident = static_cast<std::uint16_t>(rng.next_u64());
  std::uint16_t seq = 1;
  const double rtt = rng.uniform(0.001, 0.05);
  for (std::size_t i = 0; i < target_packets; ++i) {
    const bool request = i % 2 == 0;
    if (request) {
      t += profile.arrivals.sample_gap(rng);
    } else {
      t += rtt;
    }
    net::Packet pkt;
    pkt.timestamp = t;
    pkt.ip.protocol = net::IpProto::kIcmp;
    pkt.ip.identification = static_cast<std::uint16_t>(rng.next_u64());
    net::IcmpHeader icmp;
    if (request) {
      pkt.ip.src_addr = endpoints.client_addr;
      pkt.ip.dst_addr = endpoints.server_addr;
      pkt.ip.ttl = profile.client_ttl;
      icmp.type = 8;  // echo request
    } else {
      pkt.ip.src_addr = endpoints.server_addr;
      pkt.ip.dst_addr = endpoints.client_addr;
      pkt.ip.ttl = static_cast<std::uint8_t>(
          rng.uniform_int(profile.server_ttl_lo, profile.server_ttl_hi));
      icmp.type = 0;  // echo reply
      ++seq;
    }
    icmp.code = 0;
    icmp.rest_of_header =
        (static_cast<std::uint32_t>(ident) << 16) | (seq & 0xFFFF);
    pkt.icmp = icmp;
    pkt.payload.assign(56, 0);  // classic ping payload size
    pkt.ip.total_length = static_cast<std::uint16_t>(pkt.datagram_length());
    flow.packets.push_back(std::move(pkt));
  }
  flow.key = net::FlowKey::from_packet(flow.packets.front()).canonical();
  return flow;
}

}  // namespace repro::flowgen
