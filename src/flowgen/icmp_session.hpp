// ICMP flow synthesis: echo request/reply trains (IoT liveness probes).
#pragma once

#include "common/rng.hpp"
#include "flowgen/app_profile.hpp"
#include "flowgen/tcp_session.hpp"  // Endpoints
#include "net/flow.hpp"

namespace repro::flowgen {

/// Generates an ICMP echo request/reply train of `target_packets`
/// packets with matching identifiers and incrementing sequence numbers.
net::Flow generate_icmp_flow(const AppProfile& profile,
                             const Endpoints& endpoints,
                             std::size_t target_packets, Rng& rng);

}  // namespace repro::flowgen
