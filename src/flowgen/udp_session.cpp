#include "flowgen/udp_session.hpp"

#include <algorithm>

namespace repro::flowgen {

net::Flow generate_udp_flow(const AppProfile& profile,
                            const Endpoints& endpoints,
                            std::size_t target_packets, Rng& rng) {
  net::Flow flow;
  double t = 0.0;
  auto client_id = static_cast<std::uint16_t>(rng.next_u64());
  auto server_id = static_cast<std::uint16_t>(rng.next_u64());
  for (std::size_t i = 0; i < target_packets; ++i) {
    t += profile.arrivals.sample_gap(rng);
    const bool upstream = rng.uniform() < profile.udp.upstream_fraction;
    net::Packet pkt;
    pkt.timestamp = t;
    pkt.ip.protocol = net::IpProto::kUdp;
    if (upstream) {
      pkt.ip.identification = ++client_id;
    } else {
      switch (profile.server_ip_id) {
        case IpIdMode::kIncrement:
          pkt.ip.identification = ++server_id;
          break;
        case IpIdMode::kRandom:
          pkt.ip.identification = static_cast<std::uint16_t>(rng.next_u64());
          break;
        case IpIdMode::kZero:
          pkt.ip.identification = 0;
          break;
      }
    }
    pkt.ip.dscp = profile.udp.dscp;
    net::UdpHeader udp;
    std::size_t len;
    if (upstream) {
      pkt.ip.src_addr = endpoints.client_addr;
      pkt.ip.dst_addr = endpoints.server_addr;
      pkt.ip.ttl = profile.client_ttl;
      udp.src_port = endpoints.client_port;
      udp.dst_port = endpoints.server_port;
      len = profile.upstream.sample(rng);
    } else {
      pkt.ip.src_addr = endpoints.server_addr;
      pkt.ip.dst_addr = endpoints.client_addr;
      pkt.ip.ttl = static_cast<std::uint8_t>(
          rng.uniform_int(profile.server_ttl_lo, profile.server_ttl_hi));
      udp.src_port = endpoints.server_port;
      udp.dst_port = endpoints.client_port;
      len = profile.downstream.sample(rng);
    }
    // Real media datagrams are never empty; keep at least an RTP header's
    // worth of payload.
    len = std::max<std::size_t>(len, 12);
    udp.length = static_cast<std::uint16_t>(net::UdpHeader::kLength + len);
    pkt.udp = udp;
    pkt.payload.assign(len, 0);
    pkt.ip.total_length = static_cast<std::uint16_t>(pkt.datagram_length());
    flow.packets.push_back(std::move(pkt));
  }
  flow.key = net::FlowKey::from_packet(flow.packets.front()).canonical();
  return flow;
}

}  // namespace repro::flowgen
