#include "flowgen/catalog.hpp"

#include <array>
#include <stdexcept>

namespace repro::flowgen {
namespace {

// Each profile encodes publicly documented, qualitatively distinct traffic
// behaviour; the comments note the facts the parameters derive from.

AppProfile make_netflix() {
  AppProfile p;
  p.name = "netflix";
  p.macro = MacroService::kVideoStreaming;
  // Netflix streams over TLS/TCP 443 (the paper's §2.3 cites "the
  // predominance of TCP packets in Netflix traffic").
  p.p_tcp = 1.0;
  p.p_udp = 0.0;
  p.server_ports = {{443, 1.0}};
  // Downstream dominated by MSS-sized video segments.
  p.downstream = {.w_small = 0.08, .mu_small = 3.6, .sigma_small = 0.4,
                  .w_mid = 0.12, .mu_mid = 6.0, .sigma_mid = 0.4,
                  .w_large = 0.80, .mu_large = 7.27, .sigma_large = 0.04};
  p.upstream = {.w_small = 0.85, .mu_small = 3.4, .sigma_small = 0.5,
                .w_mid = 0.13, .mu_mid = 5.2, .sigma_mid = 0.4,
                .w_large = 0.02, .mu_large = 7.0, .sigma_large = 0.2};
  // Chunked adaptive streaming: ~4s segment cadence with in-burst
  // back-to-back arrivals.
  p.arrivals = {.mean_gap = 0.004, .jitter_sigma = 0.8, .period = 4.0,
                .burst_fraction = 0.7};
  // Bit-level fingerprint (invisible to NetFlow features): MSS 1460,
  // WS=7, full window, incrementing IP ID, Open Connect TTLs.
  p.tcp.mss = 1460;
  p.tcp.window_scale = 7;
  p.tcp.base_window = 0xFFFF;
  p.tcp.client_request_rate = 0.02;
  p.tcp.psh_probability = 0.25;
  p.server_ttl_lo = 58;
  p.server_ttl_hi = 59;
  p.server_ip_id = IpIdMode::kIncrement;
  p.len_mu = 5.0;
  p.len_sigma = 0.9;
  return p;
}

AppProfile make_youtube() {
  AppProfile p;
  p.name = "youtube";
  p.macro = MacroService::kVideoStreaming;
  // YouTube delivers a large share of traffic over QUIC (UDP 443); the
  // rest over TLS/TCP.
  p.p_tcp = 0.40;
  p.p_udp = 0.60;
  p.server_ports = {{443, 1.0}};
  p.downstream = {.w_small = 0.10, .mu_small = 3.8, .sigma_small = 0.4,
                  .w_mid = 0.20, .mu_mid = 6.4, .sigma_mid = 0.3,
                  .w_large = 0.70, .mu_large = 7.14, .sigma_large = 0.06};
  p.upstream = {.w_small = 0.80, .mu_small = 3.5, .sigma_small = 0.4,
                .w_mid = 0.18, .mu_mid = 5.6, .sigma_mid = 0.3,
                .w_large = 0.02, .mu_large = 7.0, .sigma_large = 0.2};
  p.arrivals = {.mean_gap = 0.005, .jitter_sigma = 0.8, .period = 2.5,
                .burst_fraction = 0.6};
  p.udp.upstream_fraction = 0.18;  // QUIC ACK traffic upstream
  // Google frontend fingerprint: MSS 1430, WS=8, ID=0 w/ DF.
  p.tcp.mss = 1430;
  p.tcp.window_scale = 8;
  p.tcp.base_window = 0xFFE0;
  p.tcp.client_request_rate = 0.03;
  p.server_ttl_lo = 56;
  p.server_ttl_hi = 57;
  p.server_ip_id = IpIdMode::kZero;
  p.len_mu = 5.0;
  p.len_sigma = 0.9;
  return p;
}

AppProfile make_amazon() {
  AppProfile p;
  p.name = "amazon";
  p.macro = MacroService::kVideoStreaming;
  // Prime Video: TLS/TCP 443, CDN segments slightly below full MSS.
  p.p_tcp = 1.0;
  p.server_ports = {{443, 1.0}};
  p.downstream = {.w_small = 0.10, .mu_small = 3.7, .sigma_small = 0.4,
                  .w_mid = 0.25, .mu_mid = 6.6, .sigma_mid = 0.3,
                  .w_large = 0.65, .mu_large = 7.20, .sigma_large = 0.08};
  p.upstream = {.w_small = 0.88, .mu_small = 3.3, .sigma_small = 0.4,
                .w_mid = 0.10, .mu_mid = 5.0, .sigma_mid = 0.4,
                .w_large = 0.02, .mu_large = 6.8, .sigma_large = 0.2};
  p.arrivals = {.mean_gap = 0.006, .jitter_sigma = 0.8, .period = 6.0,
                .burst_fraction = 0.65};
  // CloudFront fingerprint: no TCP timestamps, MSS 1440, WS=6,
  // randomized IP IDs.
  p.tcp.use_timestamps = false;
  p.tcp.mss = 1440;
  p.tcp.window_scale = 6;
  p.tcp.base_window = 0xFFDC;
  p.server_ttl_lo = 49;
  p.server_ttl_hi = 50;
  p.server_ip_id = IpIdMode::kRandom;
  p.len_mu = 5.0;
  p.len_sigma = 0.9;
  return p;
}

AppProfile make_twitch() {
  AppProfile p;
  p.name = "twitch";
  p.macro = MacroService::kVideoStreaming;
  // Live HLS over TLS/TCP with a strong 2s chunk cadence.
  p.p_tcp = 1.0;
  p.server_ports = {{443, 1.0}};
  p.downstream = {.w_small = 0.12, .mu_small = 3.9, .sigma_small = 0.4,
                  .w_mid = 0.18, .mu_mid = 6.2, .sigma_mid = 0.4,
                  .w_large = 0.70, .mu_large = 7.24, .sigma_large = 0.05};
  p.upstream = {.w_small = 0.82, .mu_small = 3.6, .sigma_small = 0.4,
                .w_mid = 0.16, .mu_mid = 5.4, .sigma_mid = 0.3,
                .w_large = 0.02, .mu_large = 6.9, .sigma_large = 0.2};
  p.arrivals = {.mean_gap = 0.003, .jitter_sigma = 0.8, .period = 2.0,
                .burst_fraction = 0.8};
  p.tcp.psh_probability = 0.45;
  // Twitch edge fingerprint: MSS 1460, WS=8, small-ish window, ID=0.
  p.tcp.mss = 1460;
  p.tcp.window_scale = 8;
  p.tcp.base_window = 0xFAF0;
  p.server_ttl_lo = 52;
  p.server_ttl_hi = 53;
  p.server_ip_id = IpIdMode::kZero;
  p.len_mu = 5.1;
  p.len_sigma = 0.9;
  return p;
}

AppProfile make_teams() {
  AppProfile p;
  p.name = "teams";
  p.macro = MacroService::kVideoConferencing;
  // Teams media rides UDP (STUN/TURN relay ports 3478-3481) — the paper's
  // §2.3 example of "UDP packets in Teams traffic"; signalling over TCP.
  p.p_tcp = 0.10;
  p.p_udp = 0.90;
  p.server_ports = {{3478, 0.4}, {3479, 0.25}, {3480, 0.2}, {3481, 0.15}};
  // RTP audio (~120-300 B) + video (~900-1200 B) mixture.
  p.downstream = {.w_small = 0.45, .mu_small = 5.0, .sigma_small = 0.3,
                  .w_mid = 0.35, .mu_mid = 6.7, .sigma_mid = 0.2,
                  .w_large = 0.20, .mu_large = 7.05, .sigma_large = 0.1};
  p.upstream = {.w_small = 0.50, .mu_small = 4.9, .sigma_small = 0.3,
                .w_mid = 0.35, .mu_mid = 6.6, .sigma_mid = 0.2,
                .w_large = 0.15, .mu_large = 7.0, .sigma_large = 0.1};
  // ~20 ms RTP pacing, moderate jitter, no chunk bursts. The aggregate
  // statistics of the three conferencing apps deliberately overlap —
  // their reliable separators are bit-level (relay ports, DSCP, TTL).
  p.arrivals = {.mean_gap = 0.018, .jitter_sigma = 0.4, .period = 0.0,
                .burst_fraction = 0.0};
  p.udp.upstream_fraction = 0.45;
  p.udp.dscp = 46;  // EF
  p.server_ttl_lo = 58;
  p.server_ttl_hi = 59;
  p.len_mu = 5.5;
  p.len_sigma = 0.7;
  return p;
}

AppProfile make_meet() {
  AppProfile p;
  p.name = "meet";
  p.macro = MacroService::kVideoConferencing;
  // Google Meet: SRTP over UDP 19305.
  p.p_tcp = 0.08;
  p.p_udp = 0.92;
  p.server_ports = {{19305, 1.0}};
  p.downstream = {.w_small = 0.40, .mu_small = 4.8, .sigma_small = 0.3,
                  .w_mid = 0.40, .mu_mid = 6.9, .sigma_mid = 0.15,
                  .w_large = 0.20, .mu_large = 7.1, .sigma_large = 0.08};
  p.upstream = {.w_small = 0.45, .mu_small = 4.7, .sigma_small = 0.3,
                .w_mid = 0.40, .mu_mid = 6.8, .sigma_mid = 0.15,
                .w_large = 0.15, .mu_large = 7.05, .sigma_large = 0.08};
  p.arrivals = {.mean_gap = 0.017, .jitter_sigma = 0.4, .period = 0.0,
                .burst_fraction = 0.0};
  p.udp.upstream_fraction = 0.47;
  p.udp.dscp = 34;  // AF41
  p.server_ttl_lo = 56;
  p.server_ttl_hi = 57;
  p.len_mu = 5.5;
  p.len_sigma = 0.7;
  return p;
}

AppProfile make_zoom() {
  AppProfile p;
  p.name = "zoom";
  p.macro = MacroService::kVideoConferencing;
  // Zoom media over UDP 8801 (fallback 443/TCP).
  p.p_tcp = 0.12;
  p.p_udp = 0.88;
  p.server_ports = {{8801, 0.85}, {8802, 0.1}, {443, 0.05}};
  p.downstream = {.w_small = 0.35, .mu_small = 5.1, .sigma_small = 0.35,
                  .w_mid = 0.30, .mu_mid = 6.5, .sigma_mid = 0.25,
                  .w_large = 0.35, .mu_large = 7.0, .sigma_large = 0.12};
  p.upstream = {.w_small = 0.40, .mu_small = 5.0, .sigma_small = 0.35,
                .w_mid = 0.32, .mu_mid = 6.4, .sigma_mid = 0.25,
                .w_large = 0.28, .mu_large = 6.95, .sigma_large = 0.12};
  p.arrivals = {.mean_gap = 0.016, .jitter_sigma = 0.4, .period = 0.0,
                .burst_fraction = 0.0};
  p.udp.upstream_fraction = 0.44;
  p.udp.dscp = 0;  // Zoom commonly leaves DSCP unset
  p.server_ttl_lo = 53;
  p.server_ttl_hi = 54;
  p.len_mu = 5.5;
  p.len_sigma = 0.7;
  return p;
}

AppProfile make_facebook() {
  AppProfile p;
  p.name = "facebook";
  p.macro = MacroService::kSocialMedia;
  // Feed browsing: TLS/TCP 443, request/response with mixed object sizes.
  p.p_tcp = 0.97;
  p.p_udp = 0.03;  // some QUIC rollout
  p.server_ports = {{443, 1.0}};
  p.downstream = {.w_small = 0.30, .mu_small = 4.2, .sigma_small = 0.5,
                  .w_mid = 0.40, .mu_mid = 6.3, .sigma_mid = 0.5,
                  .w_large = 0.30, .mu_large = 7.15, .sigma_large = 0.08};
  p.upstream = {.w_small = 0.60, .mu_small = 4.0, .sigma_small = 0.5,
                .w_mid = 0.35, .mu_mid = 5.9, .sigma_mid = 0.4,
                .w_large = 0.05, .mu_large = 7.0, .sigma_large = 0.15};
  p.arrivals = {.mean_gap = 0.03, .jitter_sigma = 1.0, .period = 0.0,
                .burst_fraction = 0.0};
  p.tcp.client_request_rate = 0.22;  // interactive
  p.tcp.psh_probability = 0.55;
  // Meta edge fingerprint: MSS 1440, WS=9, distinct window, counter IDs.
  p.tcp.mss = 1440;
  p.tcp.window_scale = 9;
  p.tcp.base_window = 0xE000;
  p.server_ttl_lo = 55;
  p.server_ttl_hi = 56;
  p.server_ip_id = IpIdMode::kIncrement;
  p.len_mu = 4.0;
  p.len_sigma = 1.0;
  return p;
}

AppProfile make_twitter() {
  AppProfile p;
  p.name = "twitter";
  p.macro = MacroService::kSocialMedia;
  // Timeline API calls: many small TLS records.
  p.p_tcp = 1.0;
  p.server_ports = {{443, 1.0}};
  p.downstream = {.w_small = 0.45, .mu_small = 4.5, .sigma_small = 0.5,
                  .w_mid = 0.40, .mu_mid = 6.0, .sigma_mid = 0.5,
                  .w_large = 0.15, .mu_large = 7.1, .sigma_large = 0.1};
  p.upstream = {.w_small = 0.65, .mu_small = 4.2, .sigma_small = 0.5,
                .w_mid = 0.30, .mu_mid = 5.6, .sigma_mid = 0.4,
                .w_large = 0.05, .mu_large = 6.9, .sigma_large = 0.15};
  p.arrivals = {.mean_gap = 0.04, .jitter_sigma = 1.0, .period = 0.0,
                .burst_fraction = 0.0};
  p.tcp.client_request_rate = 0.28;
  p.tcp.psh_probability = 0.6;
  // Twitter edge fingerprint: no SACK, MSS 1380, odd window value,
  // randomized IDs.
  p.tcp.use_sack_option = false;
  p.tcp.mss = 1380;
  p.tcp.window_scale = 7;
  p.tcp.base_window = 0x7210;
  p.server_ttl_lo = 54;
  p.server_ttl_hi = 55;
  p.server_ip_id = IpIdMode::kRandom;
  p.len_mu = 3.9;
  p.len_sigma = 1.0;
  return p;
}

AppProfile make_instagram() {
  AppProfile p;
  p.name = "instagram";
  p.macro = MacroService::kSocialMedia;
  // Image/reel heavy: larger downstream objects than the other social
  // apps, still request/response shaped.
  p.p_tcp = 0.92;
  p.p_udp = 0.08;
  p.server_ports = {{443, 1.0}};
  p.downstream = {.w_small = 0.20, .mu_small = 4.3, .sigma_small = 0.5,
                  .w_mid = 0.30, .mu_mid = 6.5, .sigma_mid = 0.4,
                  .w_large = 0.50, .mu_large = 7.18, .sigma_large = 0.07};
  p.upstream = {.w_small = 0.62, .mu_small = 4.1, .sigma_small = 0.5,
                .w_mid = 0.33, .mu_mid = 5.8, .sigma_mid = 0.4,
                .w_large = 0.05, .mu_large = 7.0, .sigma_large = 0.15};
  p.arrivals = {.mean_gap = 0.025, .jitter_sigma = 1.0, .period = 0.0,
                .burst_fraction = 0.0};
  p.tcp.client_request_rate = 0.15;
  p.tcp.psh_probability = 0.5;
  // Instagram CDN fingerprint: MSS 1430, WS=7, high window, ID=0.
  p.tcp.mss = 1430;
  p.tcp.window_scale = 7;
  p.tcp.base_window = 0xFE88;
  p.server_ttl_lo = 60;
  p.server_ttl_hi = 61;
  p.server_ip_id = IpIdMode::kZero;
  p.len_mu = 4.0;
  p.len_sigma = 1.0;
  return p;
}

AppProfile make_other_iot() {
  AppProfile p;
  p.name = "other";
  p.macro = MacroService::kIotDevice;
  // Heterogeneous smart-home traffic: MQTT keepalives (TCP 1883/8883),
  // DNS/NTP (UDP 53/123), and ICMP liveness probes.
  p.p_tcp = 0.45;
  p.p_udp = 0.45;
  p.p_icmp = 0.10;
  p.server_ports = {{1883, 0.3}, {8883, 0.2}, {53, 0.25}, {123, 0.15},
                    {80, 0.1}};
  p.downstream = {.w_small = 0.75, .mu_small = 3.6, .sigma_small = 0.6,
                  .w_mid = 0.20, .mu_mid = 5.3, .sigma_mid = 0.5,
                  .w_large = 0.05, .mu_large = 6.8, .sigma_large = 0.3};
  p.upstream = {.w_small = 0.80, .mu_small = 3.4, .sigma_small = 0.6,
                .w_mid = 0.17, .mu_mid = 5.0, .sigma_mid = 0.5,
                .w_large = 0.03, .mu_large = 6.6, .sigma_large = 0.3};
  p.arrivals = {.mean_gap = 0.5, .jitter_sigma = 1.2, .period = 30.0,
                .burst_fraction = 0.2};
  p.udp.upstream_fraction = 0.5;
  p.tcp.use_window_scale = false;  // constrained embedded stacks
  p.tcp.use_timestamps = false;
  p.tcp.base_window = 5840;
  p.tcp.client_request_rate = 0.4;
  p.server_ttl_lo = 60;
  p.server_ttl_hi = 64;
  p.client_ttl = 255;  // many IoT stacks default to 255
  p.len_mu = 3.0;  // short chatty flows
  p.len_sigma = 0.8;
  p.min_packets = 4;
  return p;
}

std::vector<AppProfile> build_catalog() {
  return {make_netflix(), make_youtube(),  make_amazon(),   make_twitch(),
          make_teams(),   make_meet(),     make_zoom(),     make_facebook(),
          make_twitter(), make_instagram(), make_other_iot()};
}

}  // namespace

const std::vector<AppProfile>& all_profiles() {
  static const std::vector<AppProfile> catalog = build_catalog();
  return catalog;
}

const AppProfile& app_profile(std::size_t class_id) {
  const auto& catalog = all_profiles();
  if (class_id >= catalog.size()) {
    throw std::out_of_range("app_profile: class id out of range");
  }
  return catalog[class_id];
}

const AppProfile& app_profile(App app) {
  return app_profile(static_cast<std::size_t>(app));
}

std::string app_name(App app) {
  return app_profile(app).name;
}

App app_from_name(const std::string& name) {
  const auto& catalog = all_profiles();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (catalog[i].name == name) return static_cast<App>(i);
  }
  throw std::invalid_argument("app_from_name: unknown app " + name);
}

MacroService macro_of(std::size_t class_id) {
  return app_profile(class_id).macro;
}

const std::vector<std::size_t>& table1_flow_counts() {
  static const std::vector<std::size_t> counts = {
      4104, 2702, 1509, 1150, 3886, 1313, 1312, 1477, 1260, 873, 3901};
  return counts;
}

}  // namespace repro::flowgen
