#include "flowgen/app_profile.hpp"

#include <algorithm>
#include <cmath>

namespace repro::flowgen {

std::string macro_service_name(MacroService service) {
  switch (service) {
    case MacroService::kVideoStreaming:
      return "Video Streaming";
    case MacroService::kVideoConferencing:
      return "Video Conferencing";
    case MacroService::kSocialMedia:
      return "Social Media";
    case MacroService::kIotDevice:
      return "IoT Device";
  }
  return "?";
}

std::size_t SizeMixture::sample(Rng& rng) const {
  const double pick = rng.uniform() * (w_small + w_mid + w_large);
  double mu, sigma;
  if (pick < w_small) {
    mu = mu_small;
    sigma = sigma_small;
  } else if (pick < w_small + w_mid) {
    mu = mu_mid;
    sigma = sigma_mid;
  } else {
    mu = mu_large;
    sigma = sigma_large;
  }
  const double v = rng.log_normal(mu, sigma);
  return static_cast<std::size_t>(std::clamp(v, 0.0, 1460.0));
}

double ArrivalModel::sample_gap(Rng& rng) const {
  double gap = rng.log_normal(std::log(std::max(mean_gap, 1e-6)), jitter_sigma);
  if (period > 0.0 && rng.uniform() < burst_fraction) {
    // Inside a burst: packets arrive back-to-back; bursts repeat at
    // `period`, so occasionally insert the long inter-burst gap instead.
    gap = rng.bernoulli(0.15) ? period : gap * 0.05;
  }
  return std::clamp(gap, 1e-6, 10.0);
}

std::uint16_t AppProfile::sample_server_port(Rng& rng) const {
  if (server_ports.empty()) return 443;
  std::vector<double> weights;
  weights.reserve(server_ports.size());
  for (const auto& [port, w] : server_ports) weights.push_back(w);
  return server_ports[rng.weighted_choice(weights)].first;
}

std::size_t AppProfile::sample_flow_length(Rng& rng) const {
  const double v = rng.log_normal(len_mu, len_sigma);
  return static_cast<std::size_t>(
      std::clamp<double>(v, static_cast<double>(min_packets),
                         static_cast<double>(max_packets)));
}

net::IpProto AppProfile::sample_protocol(Rng& rng) const {
  const double u = rng.uniform();
  if (u < p_tcp) return net::IpProto::kTcp;
  if (u < p_tcp + p_udp) return net::IpProto::kUdp;
  return net::IpProto::kIcmp;
}

}  // namespace repro::flowgen
