// Labeled flow datasets: the container every experiment consumes, plus
// builders reproducing Table 1's composition (optionally scaled) and
// uniform per-class datasets.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "flowgen/catalog.hpp"
#include "net/flow.hpp"

namespace repro::flowgen {

/// A labeled dataset of flows. `flows[i].label` is the micro class id;
/// macro labels derive via `macro_of`.
struct Dataset {
  std::vector<net::Flow> flows;

  std::size_t size() const noexcept { return flows.size(); }

  /// Micro labels of all flows.
  std::vector<int> micro_labels() const;

  /// Macro-service labels of all flows.
  std::vector<int> macro_labels() const;

  /// Per-class flow counts (micro classes).
  std::vector<std::size_t> per_class_counts() const;

  /// Random subset with at most `per_class` flows of each class (the
  /// paper's 100-flows-per-class fine-tuning cap).
  Dataset sample_per_class(std::size_t per_class, Rng& rng) const;
};

/// Builds a dataset with the exact per-class counts given.
Dataset build_dataset(const std::vector<std::size_t>& per_class_counts,
                      Rng& rng);

/// Table 1 composition scaled so the largest class has ~`max_per_class`
/// flows (relative proportions preserved; every class keeps >= 1 flow).
Dataset build_table1_dataset(std::size_t max_per_class, Rng& rng);

/// Uniform dataset: `per_class` flows for each of the 11 classes.
Dataset build_uniform_dataset(std::size_t per_class, Rng& rng);

/// Table 1 per-class counts scaled as in `build_table1_dataset`.
std::vector<std::size_t> scaled_table1_counts(std::size_t max_per_class);

}  // namespace repro::flowgen
