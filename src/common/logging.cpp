#include "common/logging.hpp"

#include <atomic>
#include <cstdio>

namespace repro {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace repro
