#include "common/rng.hpp"

#include <cmath>

namespace repro {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not be seeded with all zeros; splitmix64 of any seed
  // cannot produce four zero words, but be defensive anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_u64(std::uint64_t n) noexcept {
  // Lemire's multiply-shift rejection method: unbiased without division in
  // the common case.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

double Rng::gaussian() noexcept {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::gaussian(double mean, double stddev) noexcept {
  return mean + stddev * gaussian();
}

double Rng::exponential(double rate) noexcept {
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return -std::log(u) / rate;
}

double Rng::log_normal(double mu, double sigma) noexcept {
  return std::exp(gaussian(mu, sigma));
}

double Rng::pareto(double xm, double alpha) noexcept {
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return xm / std::pow(u, 1.0 / alpha);
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::uint64_t Rng::geometric(double p) noexcept {
  if (p >= 1.0) return 0;
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
}

std::uint64_t Rng::poisson(double lambda) noexcept {
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    const double limit = std::exp(-lambda);
    double prod = uniform();
    std::uint64_t n = 0;
    while (prod > limit) {
      prod *= uniform();
      ++n;
    }
    return n;
  }
  const double x = gaussian(lambda, std::sqrt(lambda));
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

std::size_t Rng::weighted_choice(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w > 0.0 ? w : 0.0;
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = uniform_u64(i);
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

Rng Rng::fork() noexcept { return Rng(next_u64()); }

}  // namespace repro
