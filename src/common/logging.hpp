// Minimal leveled logger writing to stderr.
//
// Benches and examples use INFO for progress; the library itself only logs
// at DEBUG (silenced by default) so that embedding applications stay quiet.
#pragma once

#include <sstream>
#include <string>

namespace repro {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global threshold; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Writes one formatted line ("[level] message") to stderr if enabled.
void log_line(LogLevel level, const std::string& message);

namespace detail {

/// Stream-style accumulator; emits on destruction. Messages below the
/// global threshold skip formatting entirely: operator<< discards its
/// argument without touching the stream.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level)
      : level_(level),
        enabled_(static_cast<int>(level) >= static_cast<int>(log_level())) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() {
    if (enabled_) log_line(level_, stream_.str());
  }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace repro

#define REPRO_LOG_DEBUG() ::repro::detail::LogMessage(::repro::LogLevel::kDebug)
#define REPRO_LOG_INFO() ::repro::detail::LogMessage(::repro::LogLevel::kInfo)
#define REPRO_LOG_WARN() ::repro::detail::LogMessage(::repro::LogLevel::kWarn)
#define REPRO_LOG_ERROR() ::repro::detail::LogMessage(::repro::LogLevel::kError)
