// Byte-order-aware readers/writers over contiguous byte buffers.
//
// All on-the-wire protocol fields in this library (IPv4/TCP/UDP/ICMP
// headers) are big-endian; pcap file headers are little-endian. These
// helpers make each (de)serializer explicit about order and bounds-checked
// in debug builds.
#pragma once

#include <cstdint>
#include <cstddef>
#include <istream>
#include <ostream>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "common/contracts.hpp"

namespace repro {

/// Checked narrowing conversion: a static_cast whose REPRO_REQUIRE fires
/// (under -DREPRO_CHECKS=ON) when the value does not round-trip through
/// the destination type. Use this instead of a bare static_cast wherever
/// a wider arithmetic value is packed into a narrower wire/bit field.
template <typename To, typename From>
constexpr To narrow(From value) {
  static_assert(std::is_arithmetic_v<To> && std::is_arithmetic_v<From>,
                "narrow<To>() converts between arithmetic types");
  const To out = static_cast<To>(value);
  bool representable = static_cast<From>(out) == value;
  if constexpr (std::is_integral_v<To> && std::is_integral_v<From> &&
                std::is_signed_v<To> != std::is_signed_v<From>) {
    representable = representable && ((out < To{}) == (value < From{}));
  }
  REPRO_REQUIRE(representable, "narrow: value not representable in target");
  return out;
}

/// Appends big-endian integers to a growing byte vector.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) noexcept : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }

  void u16_be(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }

  void u32_be(std::uint32_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 24));
    out_.push_back(static_cast<std::uint8_t>(v >> 16));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }

  void u16_le(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
  }

  void u32_le(std::uint32_t v) {
    out_.push_back(static_cast<std::uint8_t>(v));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v >> 16));
    out_.push_back(static_cast<std::uint8_t>(v >> 24));
  }

  void bytes(std::span<const std::uint8_t> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }

 private:
  std::vector<std::uint8_t>& out_;
};

/// Sequential bounds-checked reader over a byte span. Throws
/// std::out_of_range on underflow — truncated input is a data error, not a
/// programming error.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  std::size_t position() const noexcept { return pos_; }

  std::uint8_t u8() {
    require(1);
    return data_[pos_++];
  }

  std::uint16_t u16_be() {
    require(2);
    const std::uint16_t v = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }

  std::uint32_t u32_be() {
    require(4);
    const std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                            (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                            (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                            static_cast<std::uint32_t>(data_[pos_ + 3]);
    pos_ += 4;
    return v;
  }

  std::uint16_t u16_le() {
    require(2);
    const std::uint16_t v = static_cast<std::uint16_t>(
        data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
  }

  std::uint32_t u32_le() {
    require(4);
    const std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) |
                            (static_cast<std::uint32_t>(data_[pos_ + 1]) << 8) |
                            (static_cast<std::uint32_t>(data_[pos_ + 2]) << 16) |
                            (static_cast<std::uint32_t>(data_[pos_ + 3]) << 24);
    pos_ += 4;
    return v;
  }

  std::span<const std::uint8_t> bytes(std::size_t n) {
    require(n);
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  void skip(std::size_t n) {
    require(n);
    pos_ += n;
  }

 private:
  void require(std::size_t n) const {
    if (remaining() < n) {
      throw std::out_of_range("ByteReader: truncated input");
    }
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Audited stream punning shims.
//
// repro_lint's RL017 bans reinterpret_cast on byte buffers outside the
// audited codec paths: scattered type-punning is exactly where
// packet-byte corruption hides. Every iostream (de)serializer funnels
// through these four helpers instead, so the casts below are the only
// sanctioned ones and carry the rule waivers.

/// Writes the object representation of a trivially-copyable value.
template <typename T>
void write_pod(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>,
                "write_pod requires a trivially copyable type");
  // Host byte order is part of the checkpoint format contract.
  // repro-lint: allow(RL017) -- the audited shim serializers funnel through
  out.write(reinterpret_cast<const char*>(&value),
            static_cast<std::streamsize>(sizeof(T)));
}

/// Reads the object representation of a trivially-copyable value.
/// Returns false (leaving `value` unspecified) on short reads.
template <typename T>
[[nodiscard]] bool read_pod(std::istream& in, T& value) {
  static_assert(std::is_trivially_copyable_v<T>,
                "read_pod requires a trivially copyable type");
  // repro-lint: allow(RL017) -- audited shim, paired with write_pod above
  in.read(reinterpret_cast<char*>(&value),
          static_cast<std::streamsize>(sizeof(T)));
  return static_cast<std::size_t>(in.gcount()) == sizeof(T) &&
         static_cast<bool>(in);
}

/// Writes a contiguous block of trivially-copyable elements.
template <typename T>
void write_bytes(std::ostream& out, const T* data, std::size_t count) {
  static_assert(std::is_trivially_copyable_v<T>,
                "write_bytes requires trivially copyable elements");
  // repro-lint: allow(RL017) -- audited bulk variant of write_pod.
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(count * sizeof(T)));
}

/// Reads a contiguous block of trivially-copyable elements. Returns
/// false on short reads.
template <typename T>
[[nodiscard]] bool read_bytes(std::istream& in, T* data, std::size_t count) {
  static_assert(std::is_trivially_copyable_v<T>,
                "read_bytes requires trivially copyable elements");
  const std::size_t want = count * sizeof(T);
  // repro-lint: allow(RL017) -- audited bulk variant of read_pod.
  in.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(want));
  return static_cast<std::size_t>(in.gcount()) == want &&
         static_cast<bool>(in);
}

}  // namespace repro
