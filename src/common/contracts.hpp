// Contract layer: machine-checkable pre/postconditions for the
// invariants the reproduction depends on (bit-exact determinism, ternary
// nprint semantics, pool lifecycle).
//
// Build modes (selected by the REPRO_CHECKS CMake option):
//   -DREPRO_CHECKS=1  REPRO_REQUIRE/REPRO_ENSURE evaluate their condition
//                     and throw repro::ContractViolation on failure;
//                     REPRO_UNREACHABLE throws unconditionally.
//   (default)         REPRO_REQUIRE/REPRO_ENSURE compile to non-evaluating
//                     no-ops (the condition is still type-checked inside a
//                     dead `if (false)` branch); REPRO_UNREACHABLE becomes
//                     __builtin_unreachable().
//
// Deliberate deviation from [[assume]] semantics: unchecked builds do NOT
// feed contract conditions to the optimizer. A violated assumption would
// be silent UB and could change generated bits between build modes, which
// is exactly what this repo's determinism guarantee forbids. Use
// REPRO_ASSUME for the rare hot-loop hint where that trade-off is wanted
// and the condition is locally provable.
//
// Contract conditions must be side-effect free: in default builds they
// are never evaluated.
#pragma once

#include <stdexcept>
#include <string>

namespace repro {

/// Thrown on a failed REPRO_REQUIRE/REPRO_ENSURE/REPRO_UNREACHABLE when
/// contracts are compiled in. Derives from std::logic_error: a contract
/// violation is a programming error, not a data error.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(const char* kind, const char* condition, const char* file,
                    int line, const char* message);

  const char* kind() const noexcept { return kind_; }

 private:
  const char* kind_;
};

namespace detail {

/// Formats and throws ContractViolation. Out-of-line so the macro
/// expansion stays one comparison + one call.
[[noreturn]] void contract_fail(const char* kind, const char* condition,
                                const char* file, int line,
                                const char* message);

}  // namespace detail

/// True when this translation unit was compiled with -DREPRO_CHECKS=1.
constexpr bool contracts_enabled() noexcept {
#ifdef REPRO_CHECKS
  return true;
#else
  return false;
#endif
}

}  // namespace repro

#ifdef REPRO_CHECKS

#define REPRO_REQUIRE(cond, msg)                                       \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::repro::detail::contract_fail("precondition", #cond, __FILE__,  \
                                     __LINE__, msg);                   \
    }                                                                  \
  } while (false)

#define REPRO_ENSURE(cond, msg)                                        \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::repro::detail::contract_fail("postcondition", #cond, __FILE__, \
                                     __LINE__, msg);                   \
    }                                                                  \
  } while (false)

#define REPRO_UNREACHABLE(msg)                                            \
  ::repro::detail::contract_fail("unreachable", "REPRO_UNREACHABLE",      \
                                 __FILE__, __LINE__, msg)

#else  // !REPRO_CHECKS

// Type-check but never evaluate: the branch is dead, so the condition
// costs nothing and a violated contract cannot become UB.
#define REPRO_REQUIRE(cond, msg)             \
  do {                                       \
    if (false) {                             \
      static_cast<void>(cond);               \
      static_cast<void>(msg);                \
    }                                        \
  } while (false)

#define REPRO_ENSURE(cond, msg) REPRO_REQUIRE(cond, msg)

#define REPRO_UNREACHABLE(msg) __builtin_unreachable()

#endif  // REPRO_CHECKS

/// Optimizer hint: the author asserts `cond` holds. Unlike REPRO_REQUIRE
/// this IS undefined behavior when violated in unchecked builds — reserve
/// it for locally provable facts on measured hot paths.
#ifdef REPRO_CHECKS
#define REPRO_ASSUME(cond) REPRO_REQUIRE(cond, "assumption")
#else
#define REPRO_ASSUME(cond)            \
  do {                                \
    if (!(cond)) {                    \
      __builtin_unreachable();        \
    }                                 \
  } while (false)
#endif
