#include "common/parallel/thread_pool.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/contracts.hpp"
#include "common/env.hpp"
#include "common/telemetry/metrics.hpp"
#include "common/telemetry/trace.hpp"

namespace repro::parallel {
namespace {

thread_local bool t_in_worker = false;

/// One in-flight parallel_for. Lives on the caller's stack; workers only
/// touch it between their draining++/-- window, and the caller retires
/// the job only once draining == 0 again.
struct Job {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t grain = 1;
  std::size_t num_chunks = 0;
  const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<int> draining{0};
  std::exception_ptr error;  // guarded by error_mutex
  std::mutex error_mutex;
  // repro-lint: allow(RL006) -- queue-wait telemetry timestamp, never data
  std::chrono::steady_clock::time_point submitted;
};

class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  std::size_t lanes() const noexcept {
    return lanes_.load(std::memory_order_relaxed);
  }

  void resize(std::size_t n) {
    if (n == 0) n = 1;
    std::lock_guard<std::mutex> config_lock(config_mutex_);
    join_workers();
    spawn_workers(n);
  }

  void run(Job& job) {
    // One job at a time: concurrent top-level callers serialize here
    // (nested calls never reach run(); they are inlined by the caller).
    std::lock_guard<std::mutex> run_lock(run_mutex_);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = &job;
      ++job_seq_;
    }
    work_cv_.notify_all();
    {
      // Mark the caller as inside the parallel region for the duration
      // of its own drain so nested parallel_for calls run inline
      // instead of deadlocking on run_mutex_.
      t_in_worker = true;
      drain(job, /*is_worker=*/false);
      t_in_worker = false;
    }
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return job.next.load(std::memory_order_acquire) >= job.num_chunks &&
             job.draining.load(std::memory_order_acquire) == 0;
    });
    job_ = nullptr;
  }

  /// Executes chunks of `job` until none remain (or an error aborts it).
  static void drain(Job& job, bool is_worker) {
    const bool telemetry_on = telemetry::enabled();
    if (telemetry_on && is_worker) {
      telemetry::observe(
          "parallel.queue_wait",
          // repro-lint: allow(RL006) -- feeds the queue_wait histogram only
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        job.submitted)
              .count());
    }
    REPRO_SPAN(is_worker ? "parallel.worker" : "parallel.caller");
    std::size_t executed = 0;
    for (;;) {
      const std::size_t chunk =
          job.next.fetch_add(1, std::memory_order_acq_rel);
      if (chunk >= job.num_chunks) break;
      const std::size_t chunk_begin = job.begin + chunk * job.grain;
      const std::size_t chunk_end =
          std::min(chunk_begin + job.grain, job.end);
      try {
        (*job.fn)(chunk_begin, chunk_end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job.error_mutex);
        if (!job.error) job.error = std::current_exception();
        // Park the cursor past the end so every lane stops pulling.
        job.next.store(job.num_chunks, std::memory_order_release);
        break;
      }
      ++executed;
    }
    if (telemetry_on && executed > 0) {
      telemetry::count("parallel.tasks", executed);
    }
  }

 private:
  Pool() {
    std::size_t n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
    spawn_workers(env_size("REPRO_THREADS", n));
  }

  ~Pool() {
    std::lock_guard<std::mutex> config_lock(config_mutex_);
    join_workers();
  }

  void spawn_workers(std::size_t lanes) {
    if (lanes == 0) lanes = 1;
    stop_ = false;
    lanes_.store(lanes, std::memory_order_relaxed);
    telemetry::gauge_set("parallel.threads", static_cast<double>(lanes));
    workers_.reserve(lanes - 1);
    for (std::size_t i = 0; i + 1 < lanes; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  void join_workers() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
    workers_.clear();
  }

  void worker_loop() {
    t_in_worker = true;
    std::uint64_t seen_seq = 0;
    for (;;) {
      Job* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_cv_.wait(lock, [&] {
          return stop_ || (job_ != nullptr && job_seq_ != seen_seq);
        });
        if (stop_) return;
        seen_seq = job_seq_;
        job = job_;
        job->draining.fetch_add(1, std::memory_order_acq_rel);
      }
      drain(*job, /*is_worker=*/true);
      job->draining.fetch_sub(1, std::memory_order_acq_rel);
      {
        // Lock-then-notify so the caller cannot miss the wakeup between
        // its predicate check and its wait.
        std::lock_guard<std::mutex> lock(mutex_);
      }
      done_cv_.notify_all();
    }
  }

  std::mutex config_mutex_;  // serializes resize/destruction
  std::mutex run_mutex_;     // serializes top-level jobs
  std::mutex mutex_;         // guards job_/job_seq_/stop_
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  Job* job_ = nullptr;
  std::uint64_t job_seq_ = 0;
  bool stop_ = false;
  std::atomic<std::size_t> lanes_{1};
};

}  // namespace

std::size_t thread_count() noexcept { return Pool::instance().lanes(); }

void set_thread_count(std::size_t n) { Pool::instance().resize(n); }

bool in_worker() noexcept { return t_in_worker; }

namespace detail {

void run_chunked(std::size_t begin, std::size_t end, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& fn) {
  REPRO_REQUIRE(grain > 0, "run_chunked: grain must be positive");
  REPRO_REQUIRE(end > begin, "run_chunked: empty ranges are the caller's "
                             "fast path, not the pool's");
  Job job;
  job.begin = begin;
  job.end = end;
  job.grain = grain;
  job.num_chunks = (end - begin + grain - 1) / grain;
  job.fn = &fn;
  // repro-lint: allow(RL006) -- queue-wait telemetry timestamp, never data
  job.submitted = std::chrono::steady_clock::now();
  Pool::instance().run(job);
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace detail

}  // namespace repro::parallel
