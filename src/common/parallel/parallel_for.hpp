// parallel_for — the library's single data-parallel primitive.
//
// parallel_for(begin, end, grain, fn) partitions [begin, end) into
// fixed chunks [begin + k*grain, begin + (k+1)*grain) and invokes
// fn(chunk_begin, chunk_end) once per chunk, distributing the chunks
// over the global thread pool (thread_pool.hpp).
//
// Determinism contract (see DESIGN.md "Parallel execution"):
//   * Chunk boundaries are a pure function of (begin, end, grain) —
//     they never depend on the thread count, so a caller that keeps
//     floating-point accumulation inside a chunk (or combines per-chunk
//     partials in chunk order, see chunk_count/chunk_index) computes
//     bit-identical results at every REPRO_THREADS setting.
//   * Chunks may run in any order and concurrently: fn must only write
//     state owned by its chunk (or per-chunk slots sized by
//     chunk_count).
//   * Exceptions thrown by fn abort remaining chunks and the first one
//     is rethrown on the calling thread.
//   * Nested calls (from inside fn) execute inline on the calling
//     worker — no deadlock, same chunk boundaries.
#pragma once

#include <cstddef>
#include <functional>

#include "common/parallel/thread_pool.hpp"

namespace repro::parallel {

/// Number of chunks parallel_for will create for `n` items at `grain`
/// (for sizing per-chunk partial-reduction buffers).
constexpr std::size_t chunk_count(std::size_t n, std::size_t grain) noexcept {
  if (grain == 0) grain = 1;
  return n == 0 ? 0 : (n + grain - 1) / grain;
}

/// Index of the chunk starting at `chunk_begin` (as passed to fn).
constexpr std::size_t chunk_index(std::size_t begin, std::size_t grain,
                                  std::size_t chunk_begin) noexcept {
  return grain == 0 ? chunk_begin - begin : (chunk_begin - begin) / grain;
}

/// Grain size so one chunk performs roughly `target_ops` operations when
/// each item costs `ops_per_item`; never returns 0.
constexpr std::size_t grain_for(std::size_t ops_per_item,
                                std::size_t target_ops = 1u << 16) noexcept {
  if (ops_per_item == 0) ops_per_item = 1;
  const std::size_t grain = target_ops / ops_per_item;
  return grain == 0 ? 1 : grain;
}

/// Applies `fn(chunk_begin, chunk_end)` over fixed-size chunks of
/// [begin, end). Runs inline (chunk-by-chunk, same boundaries) when the
/// pool is serial, the range fits one chunk, or the caller is already a
/// pool worker.
inline void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                         const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const std::size_t chunks = chunk_count(end - begin, grain);
  if (chunks == 1 || thread_count() == 1 || in_worker()) {
    for (std::size_t cb = begin; cb < end; cb += grain) {
      fn(cb, cb + grain < end ? cb + grain : end);
    }
    return;
  }
  detail::run_chunked(begin, end, grain, fn);
}

/// Item-wise convenience: fn(i) for each i in [begin, end).
inline void parallel_for_each(std::size_t begin, std::size_t end,
                              std::size_t grain,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for(begin, end, grain, [&](std::size_t cb, std::size_t ce) {
    for (std::size_t i = cb; i < ce; ++i) fn(i);
  });
}

}  // namespace repro::parallel
