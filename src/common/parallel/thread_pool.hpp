// Lazily-initialized global worker pool used by parallel_for (see
// parallel_for.hpp). The pool owns REPRO_THREADS - 1 background workers
// (the calling thread is the remaining lane); REPRO_THREADS defaults to
// std::thread::hardware_concurrency() and REPRO_THREADS=1 forces fully
// serial execution with zero thread machinery.
//
// Determinism contract: the pool never influences *what* is computed,
// only *where*. Work is split into chunks whose boundaries depend only
// on the range and grain (never on the thread count), so any per-chunk
// computation — including floating-point reductions combined in chunk
// order — is bit-identical at every thread count.
#pragma once

#include <cstddef>
#include <functional>

namespace repro::parallel {

/// Number of lanes (worker threads + the calling thread) the pool is
/// configured for. Reads REPRO_THREADS on first use; always >= 1.
std::size_t thread_count() noexcept;

/// Reconfigures the pool to `n` lanes (joins and respawns workers).
/// Intended for tests; must not be called while a parallel_for is in
/// flight. n is clamped to >= 1.
void set_thread_count(std::size_t n);

/// True when the calling thread is a pool worker (used to run nested
/// parallel_for calls inline instead of deadlocking on the pool).
bool in_worker() noexcept;

namespace detail {
/// Runs chunks [begin + k*grain, begin + (k+1)*grain) ∩ [begin, end) of
/// `fn` across the pool; rethrows the first worker exception on the
/// caller. `grain` must be >= 1 and begin < end.
void run_chunked(std::size_t begin, std::size_t end, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& fn);
}  // namespace detail

}  // namespace repro::parallel
