#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace repro {

double mean(const std::vector<double>& xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(const std::vector<double>& xs) noexcept {
  return std::sqrt(variance(xs));
}

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty sample");
  std::sort(xs.begin(), xs.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

std::vector<double> normalize(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w > 0.0 ? w : 0.0;
  std::vector<double> out(weights.size());
  if (total <= 0.0) {
    if (!weights.empty()) {
      const double u = 1.0 / static_cast<double>(weights.size());
      std::fill(out.begin(), out.end(), u);
    }
    return out;
  }
  for (std::size_t i = 0; i < weights.size(); ++i) {
    out[i] = weights[i] > 0.0 ? weights[i] / total : 0.0;
  }
  return out;
}

double kl_divergence(const std::vector<double>& p, const std::vector<double>& q,
                     double epsilon) {
  if (p.size() != q.size()) {
    throw std::invalid_argument("kl_divergence: size mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] <= 0.0) continue;
    acc += p[i] * std::log(p[i] / (q[i] + epsilon));
  }
  return acc;
}

double js_divergence(const std::vector<double>& p,
                     const std::vector<double>& q) {
  if (p.size() != q.size()) {
    throw std::invalid_argument("js_divergence: size mismatch");
  }
  std::vector<double> m(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) m[i] = 0.5 * (p[i] + q[i]);
  // Epsilon smoothing can push the sum a hair below zero for identical
  // inputs; clamp to the mathematical range.
  return std::max(0.0, 0.5 * kl_divergence(p, m) + 0.5 * kl_divergence(q, m));
}

double total_variation(const std::vector<double>& p,
                       const std::vector<double>& q) {
  if (p.size() != q.size()) {
    throw std::invalid_argument("total_variation: size mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) acc += std::abs(p[i] - q[i]);
  return 0.5 * acc;
}

double ks_statistic(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("ks_statistic: empty sample");
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  double d = 0.0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    // Advance past ties on both sides together so equal values never
    // create a spurious CDF gap.
    const double v = std::min(a[i], b[j]);
    while (i < a.size() && a[i] == v) ++i;
    while (j < b.size() && b[j] == v) ++j;
    const double fa = static_cast<double>(i) / static_cast<double>(a.size());
    const double fb = static_cast<double>(j) / static_cast<double>(b.size());
    d = std::max(d, std::abs(fa - fb));
  }
  return d;
}

double wasserstein1(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("wasserstein1: empty sample");
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  // Integrate |F_a(x) - F_b(x)| over the merged support.
  double acc = 0.0;
  std::size_t i = 0, j = 0;
  double prev = std::min(a.front(), b.front());
  while (i < a.size() || j < b.size()) {
    const double fa = static_cast<double>(i) / static_cast<double>(a.size());
    const double fb = static_cast<double>(j) / static_cast<double>(b.size());
    double next;
    if (j >= b.size() || (i < a.size() && a[i] <= b[j])) {
      next = a[i];
      ++i;
    } else {
      next = b[j];
      ++j;
    }
    acc += std::abs(fa - fb) * (next - prev);
    prev = next;
  }
  return acc;
}

double imbalance_ratio(const std::vector<double>& proportions) {
  if (proportions.empty()) return 1.0;
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (double p : proportions) {
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  if (lo <= 0.0) return std::numeric_limits<double>::infinity();
  return hi / lo;
}

std::vector<double> histogram(const std::vector<double>& xs, double lo,
                              double hi, std::size_t bins) {
  if (bins == 0 || hi <= lo) {
    throw std::invalid_argument("histogram: bad range or bin count");
  }
  std::vector<double> out(bins, 0.0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double x : xs) {
    auto idx = static_cast<std::ptrdiff_t>((x - lo) / width);
    idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                     static_cast<std::ptrdiff_t>(bins) - 1);
    out[static_cast<std::size_t>(idx)] += 1.0;
  }
  return out;
}

std::vector<double> class_counts(const std::vector<int>& labels,
                                 std::size_t num_classes) {
  std::vector<double> out(num_classes, 0.0);
  for (int label : labels) {
    if (label >= 0 && static_cast<std::size_t>(label) < num_classes) {
      out[static_cast<std::size_t>(label)] += 1.0;
    }
  }
  return out;
}

}  // namespace repro
