// Small statistics toolkit shared by the evaluation harness and tests:
// summary statistics, histograms, and distribution divergences used to
// quantify class-coverage drift (Figure 1) and feature-distribution
// fidelity.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace repro {

/// Mean of a sample (0 for empty input).
double mean(const std::vector<double>& xs) noexcept;

/// Unbiased sample variance (0 for fewer than two points).
double variance(const std::vector<double>& xs) noexcept;

/// Sample standard deviation.
double stddev(const std::vector<double>& xs) noexcept;

/// Linear-interpolated quantile, q in [0, 1]. Requires non-empty input.
double quantile(std::vector<double> xs, double q);

/// Normalizes non-negative weights to a probability vector. Zero-total
/// input yields the uniform distribution.
std::vector<double> normalize(const std::vector<double>& weights);

/// Kullback–Leibler divergence KL(p || q) in nats over aligned supports.
/// Terms where p_i == 0 contribute zero; q is smoothed with `epsilon` so
/// that empty bins do not yield infinities.
double kl_divergence(const std::vector<double>& p, const std::vector<double>& q,
                     double epsilon = 1e-12);

/// Jensen–Shannon divergence (symmetric, bounded by ln 2).
double js_divergence(const std::vector<double>& p, const std::vector<double>& q);

/// Total variation distance: 0.5 * sum |p_i - q_i|.
double total_variation(const std::vector<double>& p,
                       const std::vector<double>& q);

/// Two-sample Kolmogorov–Smirnov statistic (max CDF gap).
double ks_statistic(std::vector<double> a, std::vector<double> b);

/// Earth mover's distance between two 1-D samples (Wasserstein-1 on
/// empirical distributions).
double wasserstein1(std::vector<double> a, std::vector<double> b);

/// Ratio of largest to smallest class probability; 1.0 means perfectly
/// balanced. Classes with zero probability make the result infinity.
double imbalance_ratio(const std::vector<double>& proportions);

/// Fixed-width histogram over [lo, hi] with `bins` buckets; values outside
/// the range are clamped into the edge buckets.
std::vector<double> histogram(const std::vector<double>& xs, double lo,
                              double hi, std::size_t bins);

/// Counts occurrences of each label in a sequence of class ids, returning
/// a dense vector of length `num_classes`.
std::vector<double> class_counts(const std::vector<int>& labels,
                                 std::size_t num_classes);

}  // namespace repro
