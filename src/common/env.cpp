#include "common/env.hpp"

#include <cstdlib>

namespace repro {

std::size_t env_size(const char* name, std::size_t fallback) noexcept {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<std::size_t>(v);
}

double env_double(const char* name, double fallback) noexcept {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  if (end == raw) return fallback;
  return v;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return raw == nullptr ? fallback : std::string(raw);
}

}  // namespace repro
