#include "common/env.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <set>

#include "common/logging.hpp"

namespace repro {
namespace {

std::string_view trimmed(std::string_view text) noexcept {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

/// Logs the fallback warning at most once per variable name, so a knob
/// read in a loop (or from several subsystems) does not flood stderr.
void warn_invalid_once(const char* name, const char* raw,
                       const char* kind) noexcept {
  try {
    static std::mutex mutex;
    static std::set<std::string> warned;
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (!warned.insert(name).second) return;
    }
    REPRO_LOG_WARN() << name << "=\"" << raw << "\" is not a valid " << kind
                     << "; using the default";
  } catch (...) {
    // Logging is best-effort; an allocation failure here must not
    // surface through the noexcept env readers.
  }
}

}  // namespace

std::optional<std::size_t> parse_size(std::string_view text) noexcept {
  text = trimmed(text);
  if (!text.empty() && text.front() == '+') text.remove_prefix(1);
  if (text.empty()) return std::nullopt;
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  std::size_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    const auto digit = static_cast<std::size_t>(c - '0');
    if (value > (kMax - digit) / 10) return std::nullopt;  // would overflow
    value = value * 10 + digit;
  }
  return value;
}

std::optional<double> parse_double(std::string_view text) noexcept {
  text = trimmed(text);
  if (text.empty() || text.size() >= 64) return std::nullopt;
  char buf[64];
  text.copy(buf, text.size());
  buf[text.size()] = '\0';
  char* end = nullptr;
  const double value = std::strtod(buf, &end);
  if (end != buf + text.size()) return std::nullopt;
  if (!std::isfinite(value)) return std::nullopt;
  return value;
}

std::size_t env_size(const char* name, std::size_t fallback) noexcept {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  const std::optional<std::size_t> parsed = parse_size(raw);
  if (!parsed) {
    warn_invalid_once(name, raw, "non-negative integer");
    return fallback;
  }
  return *parsed;
}

double env_double(const char* name, double fallback) noexcept {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  const std::optional<double> parsed = parse_double(raw);
  if (!parsed) {
    warn_invalid_once(name, raw, "finite number");
    return fallback;
  }
  return *parsed;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return raw == nullptr ? fallback : std::string(raw);
}

}  // namespace repro
