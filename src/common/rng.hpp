// Deterministic pseudo-random number generation for the whole library.
//
// Everything that draws randomness (traffic models, neural-net init,
// diffusion noise, GAN training, random-forest bagging) takes an explicit
// `Rng&` so experiments are reproducible from a single seed. The engine is
// xoshiro256** (public-domain algorithm by Blackman & Vigna): fast, high
// quality, and trivially seedable — we do not depend on the unspecified
// distributions of <random> so results are identical across standard
// libraries.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

namespace repro {

/// Deterministic 64-bit PRNG (xoshiro256**) with distribution helpers.
class Rng {
 public:
  /// Seeds the engine via splitmix64 so that nearby seeds give unrelated
  /// streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, 1).
  double uniform() noexcept;

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_u64(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box–Muller (cached second value).
  double gaussian() noexcept;

  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double stddev) noexcept;

  /// Exponential with the given rate (lambda > 0).
  double exponential(double rate) noexcept;

  /// Log-normal parameterized by the underlying normal's mu/sigma.
  double log_normal(double mu, double sigma) noexcept;

  /// Pareto with scale xm > 0 and shape alpha > 0 (heavy-tailed sizes).
  double pareto(double xm, double alpha) noexcept;

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept;

  /// Geometric: number of failures before first success, p in (0, 1].
  std::uint64_t geometric(double p) noexcept;

  /// Poisson-distributed count (Knuth for small lambda, normal approx
  /// above 30).
  std::uint64_t poisson(double lambda) noexcept;

  /// Index drawn from an unnormalized weight vector. Requires a positive
  /// total weight.
  std::size_t weighted_choice(const std::vector<double>& weights) noexcept;

  /// Fisher–Yates shuffle of an index permutation [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derives an independent child stream (for per-worker determinism).
  Rng fork() noexcept;

 private:
  std::uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace repro
