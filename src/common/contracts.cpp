#include "common/contracts.hpp"

namespace repro {

namespace {

std::string format_violation(const char* kind, const char* condition,
                             const char* file, int line,
                             const char* message) {
  std::string out = "contract violation (";
  out += kind;
  out += ") at ";
  out += file;
  out += ':';
  out += std::to_string(line);
  out += ": ";
  out += condition;
  out += " — ";
  out += message;
  return out;
}

}  // namespace

ContractViolation::ContractViolation(const char* kind, const char* condition,
                                     const char* file, int line,
                                     const char* message)
    : std::logic_error(format_violation(kind, condition, file, line, message)),
      kind_(kind) {}

namespace detail {

void contract_fail(const char* kind, const char* condition, const char* file,
                   int line, const char* message) {
  throw ContractViolation(kind, condition, file, line, message);
}

}  // namespace detail

}  // namespace repro
