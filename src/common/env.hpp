// Environment-variable overrides used by benches and examples to scale
// experiments up or down (e.g. REPRO_FLOWS_PER_CLASS, REPRO_EPOCHS)
// without recompiling.
#pragma once

#include <cstddef>
#include <string>

namespace repro {

/// Returns the integer value of `name`, or `fallback` when unset/invalid.
std::size_t env_size(const char* name, std::size_t fallback) noexcept;

/// Returns the double value of `name`, or `fallback` when unset/invalid.
double env_double(const char* name, double fallback) noexcept;

/// Returns the string value of `name`, or `fallback` when unset.
std::string env_string(const char* name, const std::string& fallback);

}  // namespace repro
