// Environment-variable overrides used by benches and examples to scale
// experiments up or down (e.g. REPRO_FLOWS_PER_CLASS, REPRO_EPOCHS)
// without recompiling.
//
// All numeric lookups are total: a set-but-malformed or out-of-range
// value (e.g. REPRO_THREADS=banana or REPRO_THREADS=-3) falls back to the
// caller's default and emits one warning log per variable name, instead
// of silently truncating or throwing.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace repro {

/// Parses a non-negative decimal integer (optional surrounding
/// whitespace, optional leading '+'). Returns nullopt on empty input,
/// any non-digit character, a '-' sign, or overflow of std::size_t.
std::optional<std::size_t> parse_size(std::string_view text) noexcept;

/// Parses a finite double (strtod grammar, but the full string must be
/// consumed). Returns nullopt on empty/trailing garbage/inf/nan/range
/// errors.
std::optional<double> parse_double(std::string_view text) noexcept;

/// Returns the integer value of `name`; `fallback` when unset. A set but
/// invalid value also yields `fallback`, with one warning log per name.
std::size_t env_size(const char* name, std::size_t fallback) noexcept;

/// Returns the double value of `name`; `fallback` when unset. A set but
/// invalid value also yields `fallback`, with one warning log per name.
double env_double(const char* name, double fallback) noexcept;

/// Returns the string value of `name`, or `fallback` when unset.
std::string env_string(const char* name, const std::string& fallback);

/// Serving-layer knobs (tools/benches read them through env_size so a
/// malformed value falls back with a warning, like every other knob):
/// worker-lane count of the sharded service, and the TCP port of the
/// socket front-end (`repro_served --listen`).
inline constexpr const char* kEnvServeLanes = "REPRO_SERVE_LANES";
inline constexpr const char* kEnvServePort = "REPRO_SERVE_PORT";

}  // namespace repro
