#include "common/telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/env.hpp"

namespace repro::telemetry {
namespace {

std::atomic<bool> g_enabled{env_size("REPRO_TELEMETRY", 0) != 0};

/// Atomically accumulates into an atomic<double> (fetch_add on floating
/// point atomics is C++20 but not universally lock-free; CAS is portable).
void atomic_add(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur && !target.compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur && !target.compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

void Gauge::add(double v) noexcept { atomic_add(value_, v); }

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const std::uint64_t in_bucket = buckets[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      // Interpolate within [lower, upper]; clip the open edges to the
      // observed extrema so estimates never leave the data range.
      double lower = b == 0 ? min : bounds[b - 1];
      double upper = b < bounds.size() ? bounds[b] : max;
      lower = std::max(lower, min);
      upper = std::min(upper, max);
      if (upper <= lower) return upper;
      const double into =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lower + std::clamp(into, 0.0, 1.0) * (upper - lower);
    }
    cumulative += in_bucket;
  }
  return max;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) noexcept {
  if (std::isnan(v)) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = snap.count ? min_.load(std::memory_order_relaxed) : 0.0;
  snap.max = snap.count ? max_.load(std::memory_order_relaxed) : 0.0;
  snap.bounds = bounds_;
  snap.buckets.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

std::vector<double> Histogram::exponential_bounds(double lo, double hi,
                                                  std::size_t count) {
  std::vector<double> bounds;
  if (count == 0 || lo <= 0.0 || hi <= lo) return bounds;
  bounds.reserve(count);
  const double step = std::log(hi / lo) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(lo * std::exp(step * static_cast<double>(i)));
  }
  bounds.back() = hi;  // avoid rounding drift on the top edge
  return bounds;
}

const std::vector<double>& Histogram::duration_bounds() {
  static const std::vector<double> kBounds =
      exponential_bounds(1e-6, 100.0, 33);
  return kBounds;
}

Registry& Registry::instance() {
  static Registry* registry = new Registry();  // leaked: outlives all users
  return *registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(
        bounds.empty() ? Histogram::duration_bounds() : bounds);
  }
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms[name] = histogram->snapshot();
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

void count(const char* name, std::uint64_t n) {
  if (!enabled()) return;
  Registry::instance().counter(name).add(n);
}

void gauge_set(const char* name, double v) {
  if (!enabled()) return;
  Registry::instance().gauge(name).set(v);
}

void observe(const char* name, double v) {
  if (!enabled()) return;
  Registry::instance().histogram(name).observe(v);
}

}  // namespace repro::telemetry
