// Thread-safe metrics registry: named counters, gauges, and fixed-bucket
// histograms with quantile estimates.
//
// Telemetry is gated by the REPRO_TELEMETRY environment variable (any
// non-zero value enables it; see common/env.hpp). The convenience
// recorders (count/gauge_set/observe) and the REPRO_SPAN macro in
// trace.hpp are no-ops while telemetry is disabled: a single relaxed
// atomic load, no locks, no allocation. Metric objects returned by the
// Registry are never destroyed by reset(), so references may be cached
// across a reset.
//
// Naming convention: `subsystem.stage[.detail]`, lower-case, dot
// separated — e.g. "diffusion.sample.ddim_step", "ml.rf.trees_fit".
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace repro::telemetry {

/// Global on/off switch; initialized from REPRO_TELEMETRY at startup.
bool enabled() noexcept;

/// Overrides the environment-derived switch (tests, CLI tools).
void set_enabled(bool on) noexcept;

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar (also supports accumulation).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double v) noexcept;
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Read-only copy of a histogram's state plus quantile estimation.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<double> bounds;          ///< ascending bucket upper bounds
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (overflow last)

  double mean() const noexcept { return count ? sum / static_cast<double>(count) : 0.0; }
  /// Estimated q-quantile (q in [0,1]) by linear interpolation inside the
  /// containing bucket; exact at the observed min/max.
  double quantile(double q) const noexcept;
};

/// Fixed-bucket histogram; observation is lock-free.
class Histogram {
 public:
  /// `bounds` are ascending bucket upper limits; an implicit overflow
  /// bucket catches everything above the last bound.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;
  HistogramSnapshot snapshot() const;
  void reset() noexcept;

  /// `count` log-spaced upper bounds covering [lo, hi].
  static std::vector<double> exponential_bounds(double lo, double hi,
                                                std::size_t count);
  /// Default bounds for duration-style metrics: 1us .. 100s, 4/decade.
  static const std::vector<double>& duration_bounds();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Point-in-time copy of every registered metric.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Process-wide registry of named metrics.
class Registry {
 public:
  static Registry& instance();

  /// Find-or-create; returned references stay valid for the process
  /// lifetime (reset() zeroes values but keeps the objects).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// First call for a name fixes its buckets; empty `bounds` selects
  /// Histogram::duration_bounds().
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& bounds = {});

  MetricsSnapshot snapshot() const;
  /// Zeroes every metric in place (registered objects survive).
  void reset();

 private:
  Registry() = default;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// --- Convenience recorders: no-ops while telemetry is disabled. ---

/// Increments counter `name` by `n`.
void count(const char* name, std::uint64_t n = 1);
/// Sets gauge `name` to `v`.
void gauge_set(const char* name, double v);
/// Records `v` into histogram `name` (duration bounds by default).
void observe(const char* name, double v);

}  // namespace repro::telemetry
