#include "common/telemetry/export.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/env.hpp"

namespace repro::telemetry {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void JsonWriter::element_prefix() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!first_.empty()) {
    if (!first_.back()) out_ += ',';
    first_.back() = false;
  }
}

void JsonWriter::begin_object() {
  element_prefix();
  out_ += '{';
  first_.push_back(true);
}

void JsonWriter::end_object() {
  out_ += '}';
  first_.pop_back();
}

void JsonWriter::begin_array() {
  element_prefix();
  out_ += '[';
  first_.push_back(true);
}

void JsonWriter::end_array() {
  out_ += ']';
  first_.pop_back();
}

void JsonWriter::key(const std::string& k) {
  element_prefix();
  out_ += json_escape(k);
  out_ += ':';
  pending_key_ = true;
}

void JsonWriter::value(const std::string& v) {
  element_prefix();
  out_ += json_escape(v);
}

void JsonWriter::value(const char* v) { value(std::string(v)); }

void JsonWriter::value(double v) {
  element_prefix();
  if (!std::isfinite(v)) {
    out_ += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  out_ += buf;
}

void JsonWriter::value(std::uint64_t v) {
  element_prefix();
  out_ += std::to_string(v);
}

void JsonWriter::value(bool v) {
  element_prefix();
  out_ += v ? "true" : "false";
}

void JsonWriter::raw(const std::string& fragment) {
  element_prefix();
  out_ += fragment;
}

void append_metrics(JsonWriter& json, const MetricsSnapshot& snapshot) {
  json.begin_object();
  json.key("counters");
  json.begin_object();
  for (const auto& [name, value] : snapshot.counters) {
    json.key(name);
    json.value(value);
  }
  json.end_object();
  json.key("gauges");
  json.begin_object();
  for (const auto& [name, value] : snapshot.gauges) {
    json.key(name);
    json.value(value);
  }
  json.end_object();
  json.key("histograms");
  json.begin_object();
  for (const auto& [name, hist] : snapshot.histograms) {
    json.key(name);
    json.begin_object();
    json.key("count");
    json.value(hist.count);
    json.key("sum");
    json.value(hist.sum);
    json.key("min");
    json.value(hist.min);
    json.key("max");
    json.value(hist.max);
    json.key("mean");
    json.value(hist.mean());
    json.key("p50");
    json.value(hist.quantile(0.50));
    json.key("p95");
    json.value(hist.quantile(0.95));
    json.key("p99");
    json.value(hist.quantile(0.99));
    json.end_object();
  }
  json.end_object();
  json.end_object();
}

void append_span(JsonWriter& json, const SpanReport& span) {
  json.begin_object();
  json.key("name");
  json.value(span.name);
  json.key("calls");
  json.value(span.calls);
  json.key("total_ms");
  json.value(span.total_seconds * 1e3);
  json.key("self_ms");
  json.value(span.self_seconds * 1e3);
  json.key("children");
  json.begin_array();
  for (const auto& child : span.children) {
    append_span(json, child);
  }
  json.end_array();
  json.end_object();
}

std::string metrics_json(const MetricsSnapshot& snapshot) {
  JsonWriter json;
  append_metrics(json, snapshot);
  return std::move(json).str();
}

std::string telemetry_json() {
  JsonWriter json;
  json.begin_object();
  json.key("enabled");
  json.value(enabled());
  json.key("metrics");
  append_metrics(json, Registry::instance().snapshot());
  json.key("spans");
  json.begin_array();
  for (const auto& child : profile_snapshot().children) {
    append_span(json, child);
  }
  json.end_array();
  json.end_object();
  return std::move(json).str();
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

std::string report_path(const std::string& filename) {
  const std::string dir = env_string("REPRO_BENCH_DIR", "");
  if (dir.empty()) return filename;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort; the
  // subsequent write reports failure if the directory is unusable
  return (std::filesystem::path(dir) / filename).string();
}

}  // namespace repro::telemetry
