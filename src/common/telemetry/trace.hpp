// Hierarchical trace spans.
//
// REPRO_SPAN("subsystem.stage") opens an RAII span: while telemetry is
// enabled, entering builds/extends a per-thread parent/child profile
// tree (wall time + call counts) and records a Chrome trace_event slice;
// while disabled the constructor is a single atomic load — no locks, no
// allocation, no clock read.
//
// The aggregated tree is exported three ways:
//   * profile_text_report()  — indented table for terminals,
//   * chrome_trace_json()    — trace_event JSON for chrome://tracing or
//                              https://ui.perfetto.dev,
//   * profile_snapshot()     — structured tree for the JSON exporter.
//
// Span names must have static storage duration (string literals).
// reset_profile() must only be called while no spans are open on other
// threads.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/telemetry/metrics.hpp"

namespace repro::telemetry {

namespace detail {
struct ProfileNode;
struct ThreadProfile;

/// The calling thread's profile (created and registered on first use).
ThreadProfile& thread_profile();
ProfileNode* span_enter(ThreadProfile& tp, const char* name);
void span_exit(ThreadProfile& tp, ProfileNode* node,
               std::chrono::steady_clock::time_point start,
               std::string&& args) noexcept;
}  // namespace detail

/// Names the calling thread in Chrome-trace exports (emitted as a
/// thread_name metadata event). Dedicated scheduler threads (e.g. the
/// serve BackgroundWorker) call this once at startup so their slices are
/// attributable in chrome://tracing instead of appearing as an
/// anonymous colliding tid. Safe to call with telemetry disabled.
void set_thread_name(const char* name);

/// Aggregated view of one span node (merged across threads).
struct SpanReport {
  std::string name;
  std::uint64_t calls = 0;
  double total_seconds = 0.0;  ///< inclusive wall time
  double self_seconds = 0.0;   ///< total minus instrumented children
  std::vector<SpanReport> children;

  /// Depth-first count of nodes (excluding this synthetic root when
  /// called on the snapshot root).
  std::size_t node_count() const noexcept;
};

/// RAII span timer; use via REPRO_SPAN, or declare one explicitly to
/// attach args (key/value pairs shown in the Chrome-trace slice, e.g.
/// request id / batch size / model version for serve spans). arg() is a
/// no-op while telemetry is disabled — no allocation.
class SpanTimer {
 public:
  explicit SpanTimer(const char* name) noexcept {
    if (!enabled()) return;
    tp_ = &detail::thread_profile();
    node_ = detail::span_enter(*tp_, name);
    start_ = std::chrono::steady_clock::now();
  }
  ~SpanTimer() {
    if (tp_ != nullptr) {
      detail::span_exit(*tp_, node_, start_, std::move(args_));
    }
  }
  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  SpanTimer& arg(const char* key, std::uint64_t v);
  SpanTimer& arg(const char* key, double v);
  SpanTimer& arg(const char* key, const std::string& v);

 private:
  void arg_key(const char* key);

  detail::ThreadProfile* tp_ = nullptr;
  detail::ProfileNode* node_ = nullptr;
  std::chrono::steady_clock::time_point start_{};
  std::string args_;  ///< accumulated `"k":v` JSON members
};

/// Merged profile tree; the returned root is synthetic ("<root>") with
/// one child per top-level span name.
SpanReport profile_snapshot();

/// Human-readable indented tree (calls, total ms, self ms, % of parent).
std::string profile_text_report();

/// Chrome trace_event JSON (array-of-slices form). Events are capped per
/// thread (REPRO_TRACE_EVENTS, default 262144); drops are counted in the
/// "telemetry.trace.dropped_events" counter.
std::string chrome_trace_json();

/// Clears all span trees and trace events. Only call while no spans are
/// open on other threads.
void reset_profile();

}  // namespace repro::telemetry

#define REPRO_SPAN_CONCAT2(a, b) a##b
#define REPRO_SPAN_CONCAT(a, b) REPRO_SPAN_CONCAT2(a, b)
/// Opens a span covering the rest of the enclosing scope.
#define REPRO_SPAN(name) \
  ::repro::telemetry::SpanTimer REPRO_SPAN_CONCAT(repro_span_, __LINE__)(name)
