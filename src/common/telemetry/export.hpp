// JSON serialization of telemetry state: a dependency-free writer plus
// exporters for the metrics registry snapshot and the span profile tree.
//
// The writer produces compact single-line JSON. Doubles are emitted with
// enough precision to round-trip; NaN/Inf (not representable in JSON)
// become null.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/telemetry/metrics.hpp"
#include "common/telemetry/trace.hpp"

namespace repro::telemetry {

/// Escapes and quotes `s` for use as a JSON string token.
std::string json_escape(const std::string& s);

/// Minimal streaming JSON builder with automatic comma placement.
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(const std::string& k);
  void value(const std::string& v);
  void value(const char* v);
  void value(double v);
  void value(std::uint64_t v);
  void value(bool v);
  /// Splices `fragment` verbatim as the next element — the caller
  /// guarantees it is well-formed JSON (used for pre-built span args).
  void raw(const std::string& fragment);

  const std::string& str() const& { return out_; }
  std::string str() && { return std::move(out_); }

 private:
  void element_prefix();
  std::string out_;
  std::vector<bool> first_;  // one entry per open container
  bool pending_key_ = false;
};

/// Appends the registry snapshot as an object:
/// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,
///  max,mean,p50,p95,p99},...}}.
void append_metrics(JsonWriter& json, const MetricsSnapshot& snapshot);

/// Appends one span node (recursively) as
/// {"name":...,"calls":...,"total_ms":...,"self_ms":...,"children":[...]}.
void append_span(JsonWriter& json, const SpanReport& span);

/// The registry snapshot alone, as a JSON document.
std::string metrics_json(const MetricsSnapshot& snapshot);

/// Full telemetry state: {"enabled":...,"metrics":{...},"spans":[...]}
/// where "spans" holds the top-level children of the profile tree.
std::string telemetry_json();

/// Writes `content` to `path`, returning false on I/O failure.
bool write_text_file(const std::string& path, const std::string& content);

/// Resolves a report filename against REPRO_BENCH_DIR: when the
/// variable is set the directory is created on demand and
/// "<dir>/<filename>" returned, otherwise `filename` passes through
/// unchanged. Lets parallel `ctest -j` runs point bench/tool reports at
/// disjoint directories instead of clobbering the shared working
/// directory. Re-reads the environment on every call.
std::string report_path(const std::string& filename);

}  // namespace repro::telemetry
