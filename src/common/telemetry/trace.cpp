#include "common/telemetry/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>

#include "common/env.hpp"
#include "common/telemetry/export.hpp"

namespace repro::telemetry {
namespace detail {

struct ProfileNode {
  const char* name = "";  // static storage (REPRO_SPAN passes literals)
  ProfileNode* parent = nullptr;
  std::uint64_t calls = 0;
  double total_seconds = 0.0;
  std::vector<std::unique_ptr<ProfileNode>> children;
};

/// One completed span occurrence, for the Chrome trace timeline.
struct TraceEvent {
  const char* name;
  double ts_us;      ///< start, microseconds since the profile epoch
  double dur_us;     ///< duration, microseconds
  std::string args;  ///< accumulated `"k":v` members; empty for none
};

struct ThreadProfile {
  ProfileNode root;
  ProfileNode* current = nullptr;
  std::vector<TraceEvent> events;
  std::uint64_t dropped_events = 0;
  std::uint32_t tid = 0;
  std::string name;  ///< set_thread_name(); empty = anonymous

  ThreadProfile() {
    root.name = "<root>";
    current = &root;
  }
};

namespace {

struct GlobalState {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadProfile>> threads;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  std::size_t max_events_per_thread =
      env_size("REPRO_TRACE_EVENTS", 262144);
};

GlobalState& global() {
  static GlobalState* state = new GlobalState();  // leaked: outlives threads
  return *state;
}

}  // namespace

ThreadProfile& thread_profile() {
  // The registry owns every ThreadProfile and never removes entries, so
  // this cached pointer stays valid across reset_profile().
  thread_local ThreadProfile* profile = [] {
    GlobalState& g = global();
    std::lock_guard<std::mutex> lock(g.mutex);
    g.threads.push_back(std::make_unique<ThreadProfile>());
    g.threads.back()->tid = static_cast<std::uint32_t>(g.threads.size());
    return g.threads.back().get();
  }();
  return *profile;
}

ProfileNode* span_enter(ThreadProfile& tp, const char* name) {
  ProfileNode* parent = tp.current;
  for (const auto& child : parent->children) {
    if (child->name == name || std::strcmp(child->name, name) == 0) {
      tp.current = child.get();
      return tp.current;
    }
  }
  auto node = std::make_unique<ProfileNode>();
  node->name = name;
  node->parent = parent;
  parent->children.push_back(std::move(node));
  tp.current = parent->children.back().get();
  return tp.current;
}

void span_exit(ThreadProfile& tp, ProfileNode* node,
               std::chrono::steady_clock::time_point start,
               std::string&& args) noexcept {
  const auto end = std::chrono::steady_clock::now();
  const double seconds =
      std::chrono::duration<double>(end - start).count();
  node->calls += 1;
  node->total_seconds += seconds;
  tp.current = node->parent != nullptr ? node->parent : &tp.root;

  const GlobalState& g = global();
  if (tp.events.size() < g.max_events_per_thread) {
    const double ts_us =
        std::chrono::duration<double, std::micro>(start - g.epoch).count();
    tp.events.push_back(
        TraceEvent{node->name, ts_us, seconds * 1e6, std::move(args)});
  } else {
    tp.dropped_events += 1;
    // Cached reference: Registry metrics are never destroyed, and the
    // drop path is already past the cheap-case budget.
    static Counter& dropped =
        Registry::instance().counter("telemetry.trace.dropped_events");
    dropped.add();
  }
}

}  // namespace detail

void set_thread_name(const char* name) {
  // Registers the thread even while telemetry is disabled: naming
  // happens once at thread startup, and a later set_enabled(true) must
  // still attribute the thread's slices.
  detail::ThreadProfile& tp = detail::thread_profile();
  detail::GlobalState& g = detail::global();
  std::lock_guard<std::mutex> lock(g.mutex);
  tp.name = name;
}

void SpanTimer::arg_key(const char* key) {
  if (!args_.empty()) args_ += ',';
  args_ += '"';
  args_ += key;
  args_ += "\":";
}

SpanTimer& SpanTimer::arg(const char* key, std::uint64_t v) {
  if (tp_ == nullptr) return *this;
  arg_key(key);
  args_ += std::to_string(v);
  return *this;
}

SpanTimer& SpanTimer::arg(const char* key, double v) {
  if (tp_ == nullptr) return *this;
  arg_key(key);
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  args_ += buf;
  return *this;
}

SpanTimer& SpanTimer::arg(const char* key, const std::string& v) {
  if (tp_ == nullptr) return *this;
  arg_key(key);
  args_ += json_escape(v);
  return *this;
}

namespace {

SpanReport* find_or_add_child(SpanReport& parent, const char* name) {
  for (auto& child : parent.children) {
    if (child.name == name) return &child;
  }
  parent.children.push_back(SpanReport{});
  parent.children.back().name = name;
  return &parent.children.back();
}

void merge_node(const detail::ProfileNode& src, SpanReport& dst) {
  dst.calls += src.calls;
  dst.total_seconds += src.total_seconds;
  for (const auto& child : src.children) {
    merge_node(*child, *find_or_add_child(dst, child->name));
  }
}

void finalize(SpanReport& node) {
  std::sort(node.children.begin(), node.children.end(),
            [](const SpanReport& a, const SpanReport& b) {
              return a.total_seconds > b.total_seconds;
            });
  double child_total = 0.0;
  for (auto& child : node.children) {
    finalize(child);
    child_total += child.total_seconds;
  }
  node.self_seconds = std::max(node.total_seconds - child_total, 0.0);
}

void append_text(const SpanReport& node, std::size_t depth,
                 std::string& out) {
  std::string label(depth * 2, ' ');
  label += node.name;
  if (label.size() < 52) label.resize(52, ' ');
  char buf[128];
  std::snprintf(buf, sizeof buf, " %9llu %11.3f %11.3f\n",
                static_cast<unsigned long long>(node.calls),
                node.total_seconds * 1e3, node.self_seconds * 1e3);
  out += label;
  out += buf;
  for (const auto& child : node.children) {
    append_text(child, depth + 1, out);
  }
}

}  // namespace

std::size_t SpanReport::node_count() const noexcept {
  std::size_t n = 0;
  for (const auto& child : children) n += 1 + child.node_count();
  return n;
}

SpanReport profile_snapshot() {
  SpanReport root;
  root.name = "<root>";
  detail::GlobalState& g = detail::global();
  std::lock_guard<std::mutex> lock(g.mutex);
  for (const auto& tp : g.threads) {
    merge_node(tp->root, root);
  }
  root.calls = 0;
  root.total_seconds = 0.0;
  for (const auto& child : root.children) {
    root.total_seconds += child.total_seconds;
  }
  finalize(root);
  root.self_seconds = 0.0;
  return root;
}

std::string profile_text_report() {
  const SpanReport root = profile_snapshot();
  std::string out = "telemetry profile (wall time, merged across threads)\n";
  std::string header = "span";
  header.resize(52, ' ');
  out += header + "     calls    total_ms     self_ms\n";
  if (root.children.empty()) {
    out += "  (no spans recorded; set REPRO_TELEMETRY=1)\n";
    return out;
  }
  for (const auto& child : root.children) {
    append_text(child, 0, out);
  }
  return out;
}

std::string chrome_trace_json() {
  JsonWriter json;
  json.begin_array();
  detail::GlobalState& g = detail::global();
  std::lock_guard<std::mutex> lock(g.mutex);
  // thread_name metadata first, so viewers label every tid before the
  // first slice: named threads (BackgroundWorker, pool lanes) show as
  // their role, everything else stays tid-N.
  for (const auto& tp : g.threads) {
    if (tp->name.empty()) continue;
    json.begin_object();
    json.key("name");
    json.value("thread_name");
    json.key("ph");
    json.value("M");
    json.key("pid");
    json.value(std::uint64_t{1});
    json.key("tid");
    json.value(static_cast<std::uint64_t>(tp->tid));
    json.key("args");
    json.begin_object();
    json.key("name");
    json.value(tp->name);
    json.end_object();
    json.end_object();
  }
  for (const auto& tp : g.threads) {
    for (const auto& event : tp->events) {
      json.begin_object();
      json.key("name");
      json.value(event.name);
      json.key("cat");
      json.value("repro");
      json.key("ph");
      json.value("X");
      json.key("ts");
      json.value(event.ts_us);
      json.key("dur");
      json.value(event.dur_us);
      json.key("pid");
      json.value(std::uint64_t{1});
      json.key("tid");
      json.value(static_cast<std::uint64_t>(tp->tid));
      if (!event.args.empty()) {
        json.key("args");
        json.raw("{" + event.args + "}");
      }
      json.end_object();
    }
  }
  json.end_array();
  return std::move(json).str();
}

void reset_profile() {
  detail::GlobalState& g = detail::global();
  std::lock_guard<std::mutex> lock(g.mutex);
  for (const auto& tp : g.threads) {
    tp->root.children.clear();
    tp->root.calls = 0;
    tp->root.total_seconds = 0.0;
    tp->current = &tp->root;
    tp->events.clear();
    tp->dropped_events = 0;
  }
  g.epoch = std::chrono::steady_clock::now();
}

}  // namespace repro::telemetry
