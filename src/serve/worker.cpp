#include "serve/worker.hpp"

#include <chrono>

#include "common/telemetry/trace.hpp"

namespace repro::serve {

BackgroundWorker::BackgroundWorker(std::function<std::size_t()> step,
                                   double idle_wait_seconds)
    : step_(std::move(step)),
      idle_wait_seconds_(idle_wait_seconds),
      thread_([this] { loop(); }) {}

BackgroundWorker::~BackgroundWorker() { stop(); }

void BackgroundWorker::notify() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    work_hint_ = true;
  }
  cv_.notify_one();
}

void BackgroundWorker::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_one();
  if (thread_.joinable()) thread_.join();
}

void BackgroundWorker::loop() {
  // Name the worker for Chrome-trace exports: its spans otherwise show
  // up under an anonymous tid that collides with pool lanes.
  telemetry::set_thread_name("serve.worker");
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stop_) return;
    }
    const std::size_t done = step_();
    if (done > 0) continue;
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_for(lock, std::chrono::duration<double>(idle_wait_seconds_),
                 [this] { return stop_ || work_hint_; });
    work_hint_ = false;
  }
}

}  // namespace repro::serve
