#include "serve/shard.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/telemetry/export.hpp"

namespace repro::serve {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a64(const char* data, std::size_t n,
                      std::uint64_t h = kFnvOffset) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= kFnvPrime;
  }
  return h;
}

/// Avalanche finalizer (the 64-bit mix from MurmurHash3). Raw FNV-1a of
/// short keys that differ only in a trailing digit leaves the high bits
/// nearly constant, which collapses the whole key space onto one or two
/// ring arcs; the finalizer spreads every input bit across the word.
std::uint64_t mix64(std::uint64_t h) noexcept {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

/// Ranks SLO statuses so the fleet can report its worst lane.
int status_rank(const char* status) noexcept {
  if (std::strcmp(status, "breached") == 0) return 2;
  if (std::strcmp(status, "at_risk") == 0) return 1;
  return 0;
}

}  // namespace

std::uint64_t shard_key_hash(const std::string& model,
                             int class_id) noexcept {
  // Finalized fnv1a64("<model>:<class_id>") without building the string.
  std::uint64_t h = fnv1a64(model.data(), model.size());
  h = fnv1a64(":", 1, h);
  char digits[16];
  const int len = std::snprintf(digits, sizeof digits, "%d", class_id);
  return mix64(fnv1a64(digits, static_cast<std::size_t>(len), h));
}

ShardRing::ShardRing(std::size_t shards, std::size_t vnodes)
    : shards_(shards == 0 ? 1 : shards) {
  const std::size_t points = vnodes == 0 ? 1 : vnodes;
  points_.reserve(shards_ * points);
  for (std::size_t s = 0; s < shards_; ++s) {
    for (std::size_t v = 0; v < points; ++v) {
      char name[48];
      const int len = std::snprintf(name, sizeof name, "shard-%zu#%zu", s, v);
      points_.emplace_back(mix64(fnv1a64(name, static_cast<std::size_t>(len))),
                           static_cast<std::uint32_t>(s));
    }
  }
  std::sort(points_.begin(), points_.end());
}

std::size_t ShardRing::shard_of(const std::string& model,
                                int class_id) const {
  const std::uint64_t key = shard_key_hash(model, class_id);
  // First ring point clockwise from the key (wrap to the lowest point).
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), key,
      [](const std::pair<std::uint64_t, std::uint32_t>& point,
         std::uint64_t k) { return point.first < k; });
  return it == points_.end() ? points_.front().second : it->second;
}

ShardedService::ShardedService(ModelRegistry& registry, ShardedConfig config)
    : config_(std::move(config)),
      ring_(config_.lanes, config_.vnodes),
      id_source_(std::make_shared<std::atomic<std::uint64_t>>(1)),
      batch_id_source_(std::make_shared<std::atomic<std::uint64_t>>(1)),
      frontend_(config_.service.flightrec_capacity),
      clock_(config_.service.clock ? config_.service.clock
                                   : steady_clock_fn()),
      start_time_(clock_()) {
  if (config_.lanes == 0) config_.lanes = 1;
  frontend_.set_forced(config_.service.flightrec_force);
  shards_.reserve(config_.lanes);
  for (std::size_t s = 0; s < config_.lanes; ++s) {
    ServiceConfig shard_cfg = config_.service;
    shard_cfg.id_source = id_source_;
    shard_cfg.batch_id_source = batch_id_source_;
    shards_.push_back(std::make_unique<TraceService>(registry, shard_cfg));
  }
}

SubmitResult ShardedService::submit(const GenerateRequest& request) {
  return submit_traced(request, 0);
}

SubmitResult ShardedService::submit_traced(const GenerateRequest& request,
                                           std::uint64_t trace_id) {
  const std::size_t shard = ring_.shard_of(request.model, request.class_id);
  return shards_[shard]->submit_traced(request, trace_id);
}

std::size_t ShardedService::pump() {
  std::size_t done = 0;
  for (auto& shard : shards_) done += shard->pump();
  return done;
}

std::size_t ShardedService::drain() {
  std::size_t done = 0;
  for (auto& shard : shards_) done += shard->drain();
  return done;
}

void ShardedService::start() {
  for (auto& shard : shards_) shard->start();
}

void ShardedService::stop() {
  for (auto& shard : shards_) shard->stop();
}

void ShardedService::close() noexcept {
  for (auto& shard : shards_) shard->close();
}

std::size_t ShardedService::pending() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->pending();
  return total;
}

std::vector<observe::FlightEvent> ShardedService::merged_events() const {
  std::vector<observe::FlightEvent> events = frontend_.dump();
  for (const auto& shard : shards_) {
    const std::vector<observe::FlightEvent> part =
        shard->flight_recorder().dump();
    events.insert(events.end(), part.begin(), part.end());
  }
  // Stable sort: events with equal timestamps (fake clocks in tests)
  // keep their recorder order, so a merged dump is deterministic.
  std::stable_sort(events.begin(), events.end(),
                   [](const observe::FlightEvent& a,
                      const observe::FlightEvent& b) {
                     return a.time < b.time;
                   });
  return events;
}

std::string ShardedService::flight_dump_json() const {
  std::size_t capacity = frontend_.capacity();
  std::uint64_t recorded = frontend_.recorded();
  std::uint64_t overwritten = frontend_.overwritten();
  for (const auto& shard : shards_) {
    const auto& rec = shard->flight_recorder();
    capacity += rec.capacity();
    recorded += rec.recorded();
    overwritten += rec.overwritten();
  }
  return observe::flight_dump_json(merged_events(), capacity, recorded,
                                   overwritten);
}

std::string ShardedService::health_json() const {
  const double now = clock_();
  TraceService::InstanceCounters total;
  int worst = 0;
  for (const auto& shard : shards_) {
    const auto c = shard->counters();
    total.submitted += c.submitted;
    total.completed += c.completed;
    total.cancelled += c.cancelled;
    total.rejected += c.rejected;
    total.cache_hits += c.cache_hits;
    worst = std::max(worst, status_rank(shard->slo().overall_status(now)));
  }

  telemetry::JsonWriter json;
  json.begin_object();
  json.key("status");
  json.value(worst == 2 ? "breached" : worst == 1 ? "at_risk" : "ok");
  json.key("uptime_seconds");
  json.value(now - start_time_);
  json.key("lanes");
  json.value(static_cast<std::uint64_t>(shards_.size()));

  json.key("requests");
  json.begin_object();
  json.key("submitted");
  json.value(total.submitted);
  json.key("completed");
  json.value(total.completed);
  json.key("cancelled");
  json.value(total.cancelled);
  json.key("rejected");
  json.value(total.rejected);
  json.key("cache_hits");
  json.value(total.cache_hits);
  json.end_object();

  json.key("shards");
  json.begin_array();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const TraceService& shard = *shards_[s];
    const auto c = shard.counters();
    json.begin_object();
    json.key("shard");
    json.value(static_cast<std::uint64_t>(s));
    json.key("status");
    json.value(shard.slo().overall_status(now));
    json.key("queue_depth");
    json.value(static_cast<std::uint64_t>(shard.pending()));
    json.key("queue_capacity");
    json.value(static_cast<std::uint64_t>(shard.config().queue_capacity));
    json.key("submitted");
    json.value(c.submitted);
    json.key("completed");
    json.value(c.completed);
    json.key("cancelled");
    json.value(c.cancelled);
    json.key("rejected");
    json.value(c.rejected);
    json.key("cache_hits");
    json.value(c.cache_hits);
    json.end_object();
  }
  json.end_array();

  if (transport_health_) {
    json.key("connections");
    json.raw(transport_health_());
  }

  json.key("flight_recorder");
  json.begin_object();
  std::size_t capacity = frontend_.capacity();
  std::uint64_t recorded = frontend_.recorded();
  for (const auto& shard : shards_) {
    const auto& rec = shard->flight_recorder();
    capacity += rec.capacity();
    recorded += rec.recorded();
  }
  json.key("capacity");
  json.value(static_cast<std::uint64_t>(capacity));
  json.key("recorded");
  json.value(recorded);
  json.key("armed");
  json.value(frontend_.armed());
  json.end_object();

  json.end_object();
  return std::move(json).str();
}

}  // namespace repro::serve
