// Service metrics: queue depth, batch-size histogram, admission rejects,
// deadline cancellations, cache hits, and end-to-end latency
// percentiles — aggregate and broken out per priority lane
// (serve.lane{0,1,2}.*), with rejects counted per typed reason
// (serve.rejects.*).
//
// Unlike the REPRO_TELEMETRY-gated convenience recorders, ServiceStats
// holds direct references into the telemetry Registry (cached once at
// construction; registry metric objects live for the process), so the
// serving counters the acceptance tests assert on are recorded
// unconditionally — a production service's observability is not an
// opt-in debug feature. Export still goes through the ordinary registry
// snapshot (telemetry_json / BenchReport), and health_json() reads the
// per-lane instruments for its p50/p95/p99 block.
#pragma once

#include <array>

#include "common/telemetry/metrics.hpp"
#include "serve/request.hpp"

namespace repro::serve {

/// Per-priority-lane instruments (serve.lane{N}.*).
struct LaneStats {
  telemetry::Counter& admitted;     ///< serve.lane{N}.admitted
  telemetry::Counter& completed;    ///< serve.lane{N}.completed
  telemetry::Counter& cancelled;    ///< serve.lane{N}.cancelled
  telemetry::Gauge& queue_depth;    ///< serve.lane{N}.queue_depth
  telemetry::Histogram& queue_wait; ///< serve.lane{N}.queue_wait_seconds
  telemetry::Histogram& latency;    ///< serve.lane{N}.latency_seconds
};

struct ServiceStats {
  ServiceStats();

  telemetry::Counter& submitted;          ///< serve.requests.submitted
  telemetry::Counter& accepted;           ///< serve.requests.accepted
  telemetry::Counter& rejected_full;      ///< serve.requests.rejected_queue_full
  telemetry::Counter& rejected_invalid;   ///< serve.requests.rejected_invalid
  telemetry::Counter& cancelled_deadline; ///< serve.requests.cancelled_deadline
  telemetry::Counter& completed;          ///< serve.requests.completed
  telemetry::Counter& flows_served;       ///< serve.flows.served
  telemetry::Counter& cache_hits;         ///< serve.cache.hits
  telemetry::Counter& cache_misses;       ///< serve.cache.misses
  telemetry::Counter& batches;            ///< serve.batch.dispatched
  telemetry::Gauge& queue_depth;          ///< serve.queue.depth
  telemetry::Histogram& batch_size;       ///< serve.batch.size (flows/call)
  telemetry::Histogram& queue_wait;       ///< serve.latency.queue_wait_seconds
  telemetry::Histogram& latency;          ///< serve.latency.total_seconds

  std::array<LaneStats, kPriorityLanes> lane;

  /// serve.rejects.{queue_full,deadline_expired,unknown_model,
  /// unknown_class,bad_request,shutting_down} — one counter per typed
  /// reason, so overload rejects are distinguishable from bad input in
  /// the exported snapshot (the aggregate rejected_* counters remain).
  telemetry::Counter& reject_reason(RejectReason reason);

  LaneStats& lane_of(Priority priority) {
    return lane[static_cast<std::size_t>(priority)];
  }

 private:
  std::array<telemetry::Counter*, 6> rejects_;
};

}  // namespace repro::serve
