// Service metrics: queue depth, batch-size histogram, admission rejects,
// deadline cancellations, cache hits, and end-to-end latency
// percentiles.
//
// Unlike the REPRO_TELEMETRY-gated convenience recorders, ServiceStats
// holds direct references into the telemetry Registry (cached once at
// construction; registry metric objects live for the process), so the
// serving counters the acceptance tests assert on are recorded
// unconditionally — a production service's observability is not an
// opt-in debug feature. Export still goes through the ordinary registry
// snapshot (telemetry_json / BenchReport).
#pragma once

#include "common/telemetry/metrics.hpp"

namespace repro::serve {

struct ServiceStats {
  ServiceStats();

  telemetry::Counter& submitted;          ///< serve.requests.submitted
  telemetry::Counter& accepted;           ///< serve.requests.accepted
  telemetry::Counter& rejected_full;      ///< serve.requests.rejected_queue_full
  telemetry::Counter& rejected_invalid;   ///< serve.requests.rejected_invalid
  telemetry::Counter& cancelled_deadline; ///< serve.requests.cancelled_deadline
  telemetry::Counter& completed;          ///< serve.requests.completed
  telemetry::Counter& flows_served;       ///< serve.flows.served
  telemetry::Counter& cache_hits;         ///< serve.cache.hits
  telemetry::Counter& cache_misses;       ///< serve.cache.misses
  telemetry::Counter& batches;            ///< serve.batch.dispatched
  telemetry::Gauge& queue_depth;          ///< serve.queue.depth
  telemetry::Histogram& batch_size;       ///< serve.batch.size (flows/call)
  telemetry::Histogram& queue_wait;       ///< serve.latency.queue_wait_seconds
  telemetry::Histogram& latency;          ///< serve.latency.total_seconds
};

}  // namespace repro::serve
